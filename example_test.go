package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// The minimal session: build a system, run the paper's mechanism, read the
// savings. Everything is deterministic for a fixed seed.
func Example() {
	inst, err := repro.NewInstance(repro.InstanceConfig{
		Servers: 32, Objects: 200, Requests: 12000,
		RWRatio: 0.9, CapacityPercent: 20, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := inst.Solve(repro.AGTRAM, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d replicas in %d rounds\n", res.Replicas, res.Rounds)
	fmt.Printf("OTC savings: %.2f%%\n", res.SavingsPercent)
	// Output:
	// placed 380 replicas in 380 rounds
	// OTC savings: 42.64%
}

// Comparing the mechanism with two of the paper's baselines on the same
// instance.
func ExampleInstance_Solve() {
	inst, err := repro.NewInstance(repro.InstanceConfig{
		Servers: 32, Objects: 200, Requests: 12000,
		RWRatio: 0.9, CapacityPercent: 20, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range []repro.Method{repro.AGTRAM, repro.Greedy, repro.GRA} {
		res, err := inst.Solve(m, &repro.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %.2f%%\n", m, res.SavingsPercent)
	}
	// Output:
	// agt-ram  42.64%
	// greedy   42.56%
	// gra      38.72%
}
