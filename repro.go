// Package repro is the public API of the AGT-RAM reproduction: building
// Data Replication Problem (DRP) instances — from a statistical model, or
// from synthetic World Cup 1998-style access traces — and solving them with
// the paper's semi-distributed axiomatic game-theoretical mechanism
// (AGT-RAM), any of the five baselines the paper compares against
// (greedy, genetic/GRA, Aε-Star branch and bound, Dutch auction, English
// auction), or the Glauber-dynamics annealing extension.
//
// A minimal session:
//
//	inst, err := repro.NewInstance(repro.InstanceConfig{
//		Servers: 64, Objects: 400, Requests: 50000,
//		RWRatio: 0.9, CapacityPercent: 20, Seed: 1,
//	})
//	...
//	res, err := inst.Solve(repro.AGTRAM, nil)
//	fmt.Printf("OTC saved: %.1f%%\n", res.SavingsPercent)
//
// The quality metric throughout is the paper's: the percentage of Object
// Transfer Cost saved relative to the primary-copies-only placement.
package repro

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/agtram"
	"repro/internal/distoracle"
	"repro/internal/faultnet"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"

	// Every method package registers itself with the solver registry from
	// an init function; the facade dispatches by name only.
	_ "repro/internal/astar"
	_ "repro/internal/auction"
	_ "repro/internal/genetic"
	_ "repro/internal/glauber"
	_ "repro/internal/greedy"
)

// TopologyKind selects the network generator family of the experimental
// setup (Section 5 of the paper).
type TopologyKind string

// Supported topology families.
const (
	// TopologyRandom is the paper's default: a flat G(M, p) random graph
	// (GT-ITM's "pure random" method).
	TopologyRandom TopologyKind = "random"
	// TopologyWaxman places nodes in the unit square and wires them with
	// distance-dependent probability.
	TopologyWaxman TopologyKind = "waxman"
	// TopologyPowerLaw grows a preferential-attachment graph, the family
	// Inet produces for AS-level Internet maps.
	TopologyPowerLaw TopologyKind = "powerlaw"
	// TopologyTransitStub builds a GT-ITM-style two-level hierarchy.
	TopologyTransitStub TopologyKind = "transitstub"
	// TopologyTree grows a random recursive tree with weighted edges — the
	// family served by the exact O(1)-query tree distance oracle.
	TopologyTree TopologyKind = "tree"
	// TopologyGrid arranges servers in a near-square unit-weight grid.
	TopologyGrid TopologyKind = "grid"
)

// InstanceConfig describes a synthetic DRP instance.
type InstanceConfig struct {
	Servers  int // M
	Objects  int // N
	Requests int // total read+write volume to distribute

	// RWRatio is the read share of the request volume, in (0, 1].
	RWRatio float64
	// CapacityPercent sizes each server's storage at about this percentage
	// of the total object catalogue size (uniformly jittered in [0.5, 1.5)
	// of the target, never below the server's primary load), as in the
	// paper's setups. Must be positive.
	CapacityPercent float64

	// Topology selects the generator (default TopologyRandom).
	Topology TopologyKind
	// EdgeP is the edge probability for TopologyRandom (default 0.4, the
	// paper's first setting).
	EdgeP float64

	// Oracle selects the distance oracle backing c(i,j): "auto" (the
	// default — exact tree oracle on trees, dense matrix up to
	// distoracle.DenseAutoThreshold servers, lazy CSR above), "dense",
	// "csr", "landmark" (approximate), or "tree".
	Oracle string
	// Landmarks is the landmark count K for Oracle == "landmark"
	// (default distoracle.DefaultLandmarks; K = M is exact).
	Landmarks int
	// RowCacheRows bounds the CSR oracle's LRU row cache (default
	// distoracle.DefaultRowCacheRows).
	RowCacheRows int

	Seed int64
}

func (c InstanceConfig) withDefaults() InstanceConfig {
	if c.Topology == "" {
		c.Topology = TopologyRandom
	}
	if c.EdgeP == 0 {
		c.EdgeP = 0.4
	}
	return c
}

// Instance is a fully built DRP instance ready to be solved. Solving never
// mutates the instance: every Solve call starts from the primary-only
// placement.
type Instance struct {
	cfg  InstanceConfig
	prob *replication.Problem

	// Retained only for trace-driven instances, enabling Replay.
	trace     *trace.Log
	clientMap workload.ClientMap
}

// NewInstance builds the network, the workload and the capacities.
func NewInstance(cfg InstanceConfig) (*Instance, error) {
	cfg = cfg.withDefaults()
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers:  cfg.Servers,
		Objects:  cfg.Objects,
		Requests: cfg.Requests,
		RWRatio:  cfg.RWRatio,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return assemble(cfg, w)
}

// TraceConfig re-exports the synthetic World Cup 1998 trace model.
type TraceConfig = trace.Config

// Trace is an access trace plus its object catalogue.
type Trace = trace.Log

// GenerateTrace produces one synthetic access trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// GenerateFridays produces n independent trace instances, mirroring the
// paper's 13 Friday logs.
func GenerateFridays(cfg TraceConfig, n int) ([]*Trace, error) { return trace.Fridays(cfg, n) }

// NewInstanceFromTrace replays a trace into a DRP instance: clients are
// mapped onto servers with the paper's random 1-M mapping, demand is
// aggregated per (server, object), primaries land on random servers.
func NewInstanceFromTrace(tr *Trace, cfg InstanceConfig) (*Instance, error) {
	cfg = cfg.withDefaults()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	r := stats.NewRNG(stats.Mix64(cfg.Seed, 7))
	cm, err := workload.MapClients(int(tr.Clients), cfg.Servers, r)
	if err != nil {
		return nil, err
	}
	w, err := workload.FromTrace(tr, cm, cfg.Servers, r)
	if err != nil {
		return nil, err
	}
	inst, err := assemble(cfg, w)
	if err != nil {
		return nil, err
	}
	inst.trace = tr
	inst.clientMap = cm
	return inst, nil
}

func assemble(cfg InstanceConfig, w *workload.Workload) (*Instance, error) {
	r := stats.NewRNG(stats.Mix64(cfg.Seed, 11))
	var g *topology.Graph
	var err error
	switch cfg.Topology {
	case TopologyRandom:
		g, err = topology.Random(cfg.Servers, cfg.EdgeP, topology.DefaultWeights, r)
	case TopologyWaxman:
		g, err = topology.Waxman(cfg.Servers, 0.8, 0.3, topology.DefaultWeights, r)
	case TopologyPowerLaw:
		g, err = topology.PowerLaw(cfg.Servers, 2, topology.DefaultWeights, r)
	case TopologyTransitStub:
		g, err = transitStubFor(cfg.Servers, r)
	case TopologyTree:
		g, err = topology.RandomTree(cfg.Servers, topology.DefaultWeights, r)
	case TopologyGrid:
		g = gridFor(cfg.Servers)
	default:
		return nil, fmt.Errorf("repro: unknown topology kind %q", cfg.Topology)
	}
	if err != nil {
		return nil, err
	}
	mode, err := distoracle.ParseMode(cfg.Oracle)
	if err != nil {
		return nil, err
	}
	cost, err := distoracle.Build(g, distoracle.Options{
		Mode:         mode,
		Landmarks:    cfg.Landmarks,
		RowCacheRows: cfg.RowCacheRows,
	})
	if err != nil {
		return nil, err
	}
	caps, err := replication.GenerateCapacities(w, cfg.CapacityPercent, r)
	if err != nil {
		return nil, err
	}
	prob, err := replication.NewProblem(cost, w, caps)
	if err != nil {
		return nil, err
	}
	return &Instance{cfg: cfg, prob: prob}, nil
}

// gridFor arranges servers in the most-square grid whose dimensions
// multiply to exactly the server count (a prime count degenerates to a
// 1×M line).
func gridFor(servers int) *topology.Graph {
	rows := 1
	for r := 1; r*r <= servers; r++ {
		if servers%r == 0 {
			rows = r
		}
	}
	return topology.Grid(rows, servers/rows)
}

// transitStubFor picks transit-stub parameters that land at least cfg
// servers, then trims by building with exact sizes when possible.
func transitStubFor(servers int, r *stats.RNG) (*topology.Graph, error) {
	// Shape: d transit domains of 4 nodes, 2 stubs of s nodes per transit
	// node: total = 4d(1+2s). Solve for small d, s covering `servers`.
	for d := 1; d <= 8; d++ {
		base := 4 * d
		rest := servers - base
		if rest <= 0 {
			continue
		}
		s := rest / (base * 2)
		if s >= 1 && base*(1+2*s) == servers {
			return topology.TransitStub(topology.TransitStubConfig{
				TransitDomains:  d,
				TransitSize:     4,
				StubsPerTransit: 2,
				StubSize:        s,
				IntraP:          0.4,
			}, r)
		}
	}
	return nil, fmt.Errorf("repro: no transit-stub shape with exactly %d servers; use a multiple of 4d(1+2s)", servers)
}

// Servers reports M.
func (in *Instance) Servers() int { return in.prob.M }

// Objects reports N.
func (in *Instance) Objects() int { return in.prob.N }

// BaseOTC reports the OTC of the primary-copies-only placement.
func (in *Instance) BaseOTC() int64 { return in.prob.NewSchema().TotalCost() }

// Config returns the instance's configuration.
func (in *Instance) Config() InstanceConfig { return in.cfg }

// OracleKind names the distance oracle the instance was assembled with
// ("dense", "csr-lazy", "landmark", "tree").
func (in *Instance) OracleKind() string { return distoracle.Kind(in.prob.Cost) }

// Problem exposes the underlying model for in-module consumers (the bench
// harness); external users interact through Solve.
func (in *Instance) Problem() *replication.Problem { return in.prob }

// Method identifies a replica placement method.
type Method string

// The six methods of the paper's comparison, plus the Glauber-dynamics
// annealing extension (Etesami, PAPERS.md).
const (
	AGTRAM         Method = "agt-ram"
	Greedy         Method = "greedy"
	GRA            Method = "gra"
	AeStar         Method = "ae-star"
	DutchAuction   Method = "da"
	EnglishAuction Method = "ea"
	Glauber        Method = "glauber"
)

// Methods lists every method: the paper's six in its presentation order,
// then the Glauber extension.
func Methods() []Method {
	return []Method{GRA, AeStar, Greedy, AGTRAM, DutchAuction, EnglishAuction, Glauber}
}

// KnownMethod reports whether m resolves through the solver registry.
func KnownMethod(m Method) bool {
	_, ok := solver.Lookup(string(m))
	return ok
}

// MethodLabel returns the short human label the method registered for
// itself ("AGT-RAM" for "agt-ram"); unknown methods pass through unchanged.
func MethodLabel(m Method) string {
	if s, ok := solver.Lookup(string(m)); ok {
		if info, ok := s.(solver.Info); ok {
			return info.Label()
		}
	}
	return string(m)
}

// MethodInfo describes one registered method, straight from the registry.
type MethodInfo struct {
	Method      Method
	Label       string
	Description string
}

// MethodTable lists every method of Methods() with the label and one-line
// description its solver registered. The README's method table is generated
// from (and tested against) this, so the docs cannot drift from the code.
func MethodTable() []MethodInfo {
	out := make([]MethodInfo, 0, len(Methods()))
	for _, m := range Methods() {
		mi := MethodInfo{Method: m, Label: string(m)}
		if s, ok := solver.Lookup(string(m)); ok {
			if info, ok := s.(solver.Info); ok {
				mi.Label = info.Label()
				mi.Description = info.Description()
			}
		}
		out = append(out, mi)
	}
	return out
}

// Options tunes a Solve call; nil or zero fields select the defaults used
// throughout the paper reproduction.
type Options struct {
	// Workers bounds parallel fan-out for methods that have one.
	Workers int
	// Seed feeds the randomized methods (GRA).
	Seed int64
	// Sync forces AGT-RAM's synchronous engine (the literal PARFOR rescan
	// of Figure 2) instead of the default event-driven incremental one.
	// Both produce identical allocations and payments; the incremental
	// engine just performs far fewer valuation computations.
	Sync bool
	// Distributed runs AGT-RAM through its message-passing engine
	// (goroutine per agent) instead of the default one; the allocations
	// are identical.
	Distributed bool
	// Network runs AGT-RAM through gob-encoded net.Pipe connections.
	Network bool
	// TCPAddr, when non-empty, runs AGT-RAM over real loopback TCP sockets
	// listening on this address (use "127.0.0.1:0" for an ephemeral port).
	TCPAddr string
	// FirstPrice switches AGT-RAM's payment rule (truthfulness ablation).
	FirstPrice bool
	// ExactValuation switches AGT-RAM's agents to exact global deltas
	// (valuation ablation; incompatible with Distributed/Network, and
	// always served by the synchronous engine since it prices against
	// shared global state).
	ExactValuation bool
	// GRAGenerations overrides the GA's generation budget.
	GRAGenerations int
	// GlauberSweeps overrides the Glauber chain's annealing-sweep budget.
	GlauberSweeps int
	// RoundTimeout bounds each per-agent bid read and award write in the
	// AGT-RAM wire engines (Network, TCPAddr); an agent that misses a
	// deadline is evicted from the game and the auction continues over the
	// remaining bidders. Zero means no deadline.
	RoundTimeout time.Duration
	// Faults injects deterministic faults into the AGT-RAM wire engines'
	// links for testing (nil = none; the fault-free run is bit-identical
	// to the in-process engines). Requires Network or TCPAddr.
	Faults *FaultConfig
	// OnEvent, when non-nil, observes every placement the solver commits,
	// synchronously and in commit order (and every eviction, marked by
	// Event.Evicted).
	OnEvent func(Event)
	// RecordEvents collects the placement stream into Result.Events.
	RecordEvents bool
}

// FaultConfig describes deterministic faults to inject into the AGT-RAM
// wire engines: per-agent drop probability (severing the link), delivery
// delay, crash-at-round schedules, refused dials and truncated frames. See
// the field docs in internal/faultnet.
type FaultConfig = faultnet.Config

// Eviction records one agent's removal from a distributed game: the
// mechanism timed the agent out or lost its connection and continued with
// the remaining bidders. Round 0 means the agent never entered the game
// (dial failure or handshake timeout).
type Eviction struct {
	Agent  int
	Round  int
	Reason string
}

func (o *Options) orDefault() Options {
	if o == nil {
		return Options{}
	}
	return *o
}

// solverOptions validates the engine-selection fields and lowers Options to
// the registry's method-independent form. Exactly one engine may be
// selected, and the ExactValuation ablation cannot run on a distributed
// engine (agents would need the global schema the paper denies them).
func (o Options) solverOptions() (solver.Options, error) {
	var selected []string
	if o.Sync {
		selected = append(selected, "Sync")
	}
	if o.Distributed {
		selected = append(selected, "Distributed")
	}
	if o.Network {
		selected = append(selected, "Network")
	}
	if o.TCPAddr != "" {
		selected = append(selected, "TCPAddr")
	}
	if len(selected) > 1 {
		return solver.Options{}, fmt.Errorf("repro: conflicting engine selections %s: each Solve call picks exactly one engine",
			strings.Join(selected, " and "))
	}
	if o.ExactValuation && len(selected) == 1 && selected[0] != "Sync" {
		return solver.Options{}, fmt.Errorf("repro: ExactValuation conflicts with %s: exact global deltas need shared schema state, which only the synchronous engine has",
			selected[0])
	}
	if (o.Faults.Enabled() || o.RoundTimeout > 0) && !o.Network && o.TCPAddr == "" {
		return solver.Options{}, fmt.Errorf("repro: Faults and RoundTimeout apply to the wire engines only: select Network or TCPAddr")
	}
	so := solver.Options{
		Workers:        o.Workers,
		Seed:           o.Seed,
		TCPAddr:        o.TCPAddr,
		FirstPrice:     o.FirstPrice,
		ExactValuation: o.ExactValuation,
		GRAGenerations: o.GRAGenerations,
		GlauberSweeps:  o.GlauberSweeps,
		RoundTimeout:   o.RoundTimeout,
		Faults:         o.Faults,
		RecordEvents:   o.RecordEvents,
	}
	switch {
	case o.TCPAddr != "":
		so.Engine = agtram.EngineTCP
	case o.Network:
		so.Engine = agtram.EngineNetwork
	case o.Distributed:
		so.Engine = agtram.EngineDistributed
	case o.Sync:
		so.Engine = agtram.EngineSync
	}
	if o.OnEvent != nil {
		cb := o.OnEvent
		so.OnEvent = func(e solver.Event) { cb(Event(e)) }
	}
	return so, nil
}

// Event is one committed placement decision of a solve: round-by-round for
// AGT-RAM (with the Vickrey payment), placement-by-placement for greedy and
// the auctions, per generation/expansion (Object and Server are -1) for GRA
// and Aε-Star.
type Event struct {
	Round   int
	Object  int32
	Server  int32
	Value   int64
	Payment int64
	// Evicted marks an eviction event rather than a placement: Server is
	// the evicted agent, Round the round it was removed in (0 = before
	// the game started), Object is -1.
	Evicted bool
}

// Result reports a solved placement.
type Result struct {
	Method         Method
	OTC            int64         // final object transfer cost
	BaseOTC        int64         // primary-only OTC
	SavingsPercent float64       // the paper's metric
	Replicas       int           // replicas placed beyond primaries
	Runtime        time.Duration // wall-clock solve time
	// Work is the method's dominant operation count (valuations, benefit
	// evaluations, node expansions, clock polls or schema decodings).
	Work int64
	// Rounds counts mechanism rounds (AGT-RAM), passes (auctions) or
	// generations (GRA); zero for the single-sweep methods.
	Rounds int
	// Payments holds AGT-RAM's cumulative per-server motivational payments.
	Payments []int64
	// Events is the placement stream, recorded when Options.RecordEvents
	// was set.
	Events []Event
	// Evictions lists the agents the AGT-RAM wire engines removed from the
	// game (timeouts, broken links, failed dials), in eviction order;
	// empty for the in-process engines and for fault-free runs.
	Evictions []Eviction

	schema *replication.Schema
}

// WriteReport serializes the solved placement as an auditable JSON report:
// the full replica sets, per-server utilization and the OTC decomposition.
func (r *Result) WriteReport(w io.Writer) error {
	if r.schema == nil {
		return fmt.Errorf("repro: result carries no placement")
	}
	return r.schema.Report().WriteJSON(w)
}

// Breakdown decomposes the solved placement's OTC into read, update-ship
// and update-broadcast traffic.
func (r *Result) Breakdown() (read, ship, broadcast int64, err error) {
	if r.schema == nil {
		return 0, 0, 0, fmt.Errorf("repro: result carries no placement")
	}
	b := r.schema.Breakdown()
	return b.ReadCost, b.ShipCost, b.BroadcastCost, nil
}

// ReplayMetrics summarizes an event-by-event replay of the instance's
// trace against a solved placement.
type ReplayMetrics struct {
	Events        int
	TransferCost  int64
	ReadCost      int64
	WriteCost     int64
	LocalReads    int
	LoadImbalance float64 // Gini of per-server traffic, 0 = even
	MeanReadCost  float64
	P99ReadCost   float64
}

// Replay routes every event of the trace this instance was built from
// against the placement a Solve call produced, returning realized traffic
// metrics. The realized transfer cost equals the analytical OTC exactly.
// Only available on instances built with NewInstanceFromTrace.
func (in *Instance) Replay(res *Result) (*ReplayMetrics, error) {
	if in.trace == nil {
		return nil, fmt.Errorf("repro: Replay needs a trace-driven instance (NewInstanceFromTrace)")
	}
	if res == nil || res.schema == nil {
		return nil, fmt.Errorf("repro: Replay needs a solved result")
	}
	m, err := sim.Replay(in.trace, in.clientMap, res.schema)
	if err != nil {
		return nil, err
	}
	summary := m.ReadCostSummary()
	return &ReplayMetrics{
		Events:        m.Events,
		TransferCost:  m.TransferCost,
		ReadCost:      m.ReadCost,
		WriteCost:     m.WriteCost,
		LocalReads:    m.LocalReads,
		LoadImbalance: m.LoadImbalance(),
		MeanReadCost:  summary.Mean,
		P99ReadCost:   summary.P99,
	}, nil
}

// Solve runs the given method against the instance. It is the
// context.Background shim over SolveContext.
func (in *Instance) Solve(m Method, opts *Options) (*Result, error) {
	return in.SolveContext(context.Background(), m, opts)
}

// SolveContext runs the given method against the instance, dispatching
// through the solver registry. Every method honours ctx: cancellation is
// observed at least once per round / generation / expansion / clock tick,
// returns an error wrapping ctx.Err(), and leaves the instance untouched
// (every solve starts from a fresh primary-only schema).
func (in *Instance) SolveContext(ctx context.Context, m Method, opts *Options) (*Result, error) {
	s, ok := solver.Lookup(string(m))
	if !ok {
		return nil, fmt.Errorf("repro: unknown method %q (registered: %s)",
			m, strings.Join(solver.Names(), ", "))
	}
	so, err := opts.orDefault().solverOptions()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	out, err := s.Solve(ctx, in.prob, so)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Method:         m,
		OTC:            out.Schema.TotalCost(),
		BaseOTC:        out.Schema.BaseCost(),
		SavingsPercent: out.Schema.Savings(),
		Replicas:       out.Replicas,
		Runtime:        time.Since(start),
		Work:           out.Work,
		Rounds:         out.Rounds,
		Payments:       out.Payments,
		schema:         out.Schema,
	}
	if len(out.Events) > 0 {
		res.Events = make([]Event, len(out.Events))
		for i, e := range out.Events {
			res.Events[i] = Event(e)
		}
	}
	if len(out.Evictions) > 0 {
		res.Evictions = make([]Eviction, len(out.Evictions))
		for i, ev := range out.Evictions {
			res.Evictions[i] = Eviction(ev)
		}
	}
	return res, nil
}
