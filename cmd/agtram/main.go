// Command agtram solves one Data Replication Problem instance with a chosen
// method and reports the outcome: OTC savings, replicas placed, runtime and
// (for AGT-RAM) the mechanism's rounds and payments.
//
// Examples:
//
//	agtram -M 128 -N 800 -capacity 20 -rw 0.9
//	agtram -method greedy -M 128 -N 800 -capacity 20 -rw 0.9
//	agtram -method agt-ram -engine sync -M 64 -N 400
//	agtram -all -M 128 -N 800   # run all six methods, print a comparison
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/bench"
)

func main() {
	var (
		m        = flag.Int("M", 128, "number of servers")
		n        = flag.Int("N", 800, "number of objects")
		requests = flag.Int("requests", 0, "total request volume (default 60 per object)")
		rw       = flag.Float64("rw", 0.9, "read share of the request volume, in (0,1]")
		capacity = flag.Float64("capacity", 25, "server capacity parameter C%")
		topo     = flag.String("topology", "random", "topology: random|waxman|powerlaw|transitstub")
		edgeP    = flag.Float64("p", 0.4, "edge probability for the random topology")
		seed     = flag.Int64("seed", 1, "experiment seed")
		method   = flag.String("method", "agt-ram", "method: agt-ram|greedy|gra|ae-star|da|ea")
		engine   = flag.String("engine", "incremental", "AGT-RAM engine: incremental|sync|distributed|network")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		all      = flag.Bool("all", false, "run all six methods and print a comparison table")
		report   = flag.String("report", "", "write the solved placement as a JSON report to this file")
		timeout  = flag.Duration("timeout", 0, "abort the solve after this duration (0 = no limit)")
	)
	flag.Parse()

	if !*all && !repro.KnownMethod(repro.Method(*method)) {
		fatal(fmt.Errorf("unknown -method %q (want %s)", *method, methodList()))
	}
	engineSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			engineSet = true
		}
	})
	if engineSet && repro.Method(*method) != repro.AGTRAM {
		fatal(fmt.Errorf("-engine only applies to -method agt-ram (got -method %s)", *method))
	}
	switch *engine {
	case "incremental", "sync", "distributed", "network":
	default:
		fatal(fmt.Errorf("unknown -engine %q (want incremental|sync|distributed|network)", *engine))
	}
	if *requests == 0 {
		*requests = *n * 60
	}
	icfg := repro.InstanceConfig{
		Servers:         *m,
		Objects:         *n,
		Requests:        *requests,
		RWRatio:         *rw,
		CapacityPercent: *capacity,
		Topology:        repro.TopologyKind(*topo),
		EdgeP:           *edgeP,
		Seed:            *seed,
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *all {
		runAll(ctx, icfg, *workers, *seed)
		return
	}

	inst, err := repro.NewInstance(icfg)
	if err != nil {
		fatal(err)
	}
	opts := &repro.Options{
		Workers:     *workers,
		Seed:        *seed,
		Sync:        *engine == "sync",
		Distributed: *engine == "distributed",
		Network:     *engine == "network",
	}
	res, err := inst.SolveContext(ctx, repro.Method(*method), opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: M=%d N=%d requests=%d R/W=%.2f C=%.0f%% topology=%s seed=%d\n",
		*m, *n, *requests, *rw, *capacity, *topo, *seed)
	fmt.Printf("method:   %s", bench.MethodLabel(res.Method))
	if res.Method == repro.AGTRAM {
		fmt.Printf(" (%s engine)", *engine)
	}
	fmt.Println()
	fmt.Printf("base OTC: %d\n", res.BaseOTC)
	fmt.Printf("OTC:      %d\n", res.OTC)
	fmt.Printf("savings:  %.2f%%\n", res.SavingsPercent)
	fmt.Printf("replicas: %d\n", res.Replicas)
	fmt.Printf("runtime:  %s\n", res.Runtime.Round(time.Microsecond))
	fmt.Printf("work:     %d operations\n", res.Work)
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := res.WriteReport(f); err != nil {
			fatal(err)
		}
		fmt.Printf("report:   %s\n", *report)
	}
	if res.Method == repro.AGTRAM {
		fmt.Printf("rounds:   %d\n", res.Rounds)
		var paid int64
		winners := 0
		for _, p := range res.Payments {
			if p > 0 {
				winners++
				paid += p
			}
		}
		fmt.Printf("payments: %d units across %d winning servers\n", paid, winners)
	}
}

func runAll(ctx context.Context, icfg repro.InstanceConfig, workers int, seed int64) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tsavings %\treplicas\truntime\twork")
	for _, m := range repro.Methods() {
		inst, err := repro.NewInstance(icfg)
		if err != nil {
			fatal(err)
		}
		res, err := inst.SolveContext(ctx, m, &repro.Options{Workers: workers, Seed: seed})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%d\t%s\t%d\n",
			bench.MethodLabel(m), res.SavingsPercent, res.Replicas,
			res.Runtime.Round(time.Millisecond), res.Work)
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
}

func methodList() string {
	names := make([]string, 0, len(repro.Methods()))
	for _, m := range repro.Methods() {
		names = append(names, string(m))
	}
	return strings.Join(names, "|")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agtram:", err)
	os.Exit(1)
}
