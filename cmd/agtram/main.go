// Command agtram solves one Data Replication Problem instance with a chosen
// method and reports the outcome: OTC savings, replicas placed, runtime and
// (for AGT-RAM) the mechanism's rounds and payments.
//
// Examples:
//
//	agtram -M 128 -N 800 -capacity 20 -rw 0.9
//	agtram -method greedy -M 128 -N 800 -capacity 20 -rw 0.9
//	agtram -method agt-ram -engine sync -M 64 -N 400
//	agtram -all -M 128 -N 800   # run every method, print a comparison
//	agtram -json -M 64 -N 400   # machine-readable result on stdout
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro"
	"repro/cmd/internal/cliflags"
	"repro/internal/bench"
)

// jsonResult is the -json output shape: one object per solve.
type jsonResult struct {
	Method    string  `json:"method"`
	Engine    string  `json:"engine,omitempty"`
	Servers   int     `json:"servers"`
	Objects   int     `json:"objects"`
	Seed      int64   `json:"seed"`
	OTC       int64   `json:"otc"`
	BaseOTC   int64   `json:"base_otc"`
	Savings   float64 `json:"savings_percent"`
	Replicas  int     `json:"replicas"`
	RuntimeMS float64 `json:"runtime_ms"`
	Work      int64   `json:"work"`
	Rounds    int     `json:"rounds,omitempty"`
	Payments  int64   `json:"payments,omitempty"`
	Winners   int     `json:"winning_servers,omitempty"`
	Evictions []struct {
		Agent  int    `json:"agent"`
		Round  int    `json:"round"`
		Reason string `json:"reason"`
	} `json:"evictions,omitempty"`
}

func toJSONResult(icfg repro.InstanceConfig, engine string, res *repro.Result) jsonResult {
	out := jsonResult{
		Method:    string(res.Method),
		Servers:   icfg.Servers,
		Objects:   icfg.Objects,
		Seed:      icfg.Seed,
		OTC:       res.OTC,
		BaseOTC:   res.BaseOTC,
		Savings:   res.SavingsPercent,
		Replicas:  res.Replicas,
		RuntimeMS: float64(res.Runtime.Microseconds()) / 1e3,
		Work:      res.Work,
	}
	if res.Method == repro.AGTRAM {
		out.Engine = engine
		out.Rounds = res.Rounds
		for _, p := range res.Payments {
			if p > 0 {
				out.Winners++
				out.Payments += p
			}
		}
	}
	for _, ev := range res.Evictions {
		out.Evictions = append(out.Evictions, struct {
			Agent  int    `json:"agent"`
			Round  int    `json:"round"`
			Reason string `json:"reason"`
		}{ev.Agent, ev.Round, ev.Reason})
	}
	return out
}

func main() {
	inst := cliflags.AddInstance(flag.CommandLine)
	eng := cliflags.AddEngine(flag.CommandLine)
	prof := cliflags.AddProfile(flag.CommandLine)
	var (
		method  = flag.String("method", "agt-ram", "method: agt-ram|greedy|gra|ae-star|da|ea|glauber")
		all     = flag.Bool("all", false, "run every method and print a comparison table")
		report  = flag.String("report", "", "write the solved placement as a JSON report to this file")
		timeout = flag.Duration("timeout", 0, "abort the solve after this duration (0 = no limit)")
		asJSON  = flag.Bool("json", false, "emit the result as JSON on stdout")
	)
	flag.Parse()

	if !*all && !repro.KnownMethod(repro.Method(*method)) {
		fatal(fmt.Errorf("unknown -method %q (want %s)", *method, methodList()))
	}
	engineSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			engineSet = true
		}
	})
	if engineSet && repro.Method(*method) != repro.AGTRAM {
		fatal(fmt.Errorf("-engine only applies to -method agt-ram (got -method %s)", *method))
	}
	faults, err := eng.Validate()
	if err != nil {
		fatal(err)
	}
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()
	icfg := inst.Config()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *all {
		runAll(ctx, icfg, eng.Workers, icfg.Seed, *asJSON)
		return
	}

	in, err := repro.NewInstance(icfg)
	if err != nil {
		fatal(err)
	}
	opts := &repro.Options{
		Workers:       eng.Workers,
		Seed:          icfg.Seed,
		Sync:          eng.Engine == "sync",
		Distributed:   eng.Engine == "distributed",
		Network:       eng.Engine == "network",
		RoundTimeout:  eng.RoundTimeout,
		GlauberSweeps: eng.GlauberSweeps,
		Faults:        faults,
	}
	if eng.Engine == "tcp" {
		opts.TCPAddr = "127.0.0.1:0"
	}
	res, err := in.SolveContext(ctx, repro.Method(*method), opts)
	if err != nil {
		fatal(err)
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := res.WriteReport(f); err != nil {
			fatal(err)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(toJSONResult(icfg, eng.Engine, res)); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("instance: M=%d N=%d requests=%d R/W=%.2f C=%.0f%% topology=%s oracle=%s seed=%d\n",
		icfg.Servers, icfg.Objects, icfg.Requests, icfg.RWRatio, icfg.CapacityPercent, icfg.Topology, in.OracleKind(), icfg.Seed)
	fmt.Printf("method:   %s", bench.MethodLabel(res.Method))
	if res.Method == repro.AGTRAM {
		fmt.Printf(" (%s engine)", eng.Engine)
	}
	fmt.Println()
	fmt.Printf("base OTC: %d\n", res.BaseOTC)
	fmt.Printf("OTC:      %d\n", res.OTC)
	fmt.Printf("savings:  %.2f%%\n", res.SavingsPercent)
	fmt.Printf("replicas: %d\n", res.Replicas)
	fmt.Printf("runtime:  %s\n", res.Runtime.Round(time.Microsecond))
	fmt.Printf("work:     %d operations\n", res.Work)
	if *report != "" {
		fmt.Printf("report:   %s\n", *report)
	}
	if res.Method == repro.AGTRAM {
		fmt.Printf("rounds:   %d\n", res.Rounds)
		var paid int64
		winners := 0
		for _, p := range res.Payments {
			if p > 0 {
				winners++
				paid += p
			}
		}
		fmt.Printf("payments: %d units across %d winning servers\n", paid, winners)
	}
	for _, ev := range res.Evictions {
		if ev.Round == 0 {
			fmt.Printf("evicted:  agent %d before the game (%s)\n", ev.Agent, ev.Reason)
		} else {
			fmt.Printf("evicted:  agent %d in round %d (%s)\n", ev.Agent, ev.Round, ev.Reason)
		}
	}
}

func runAll(ctx context.Context, icfg repro.InstanceConfig, workers int, seed int64, asJSON bool) {
	var results []jsonResult
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if !asJSON {
		fmt.Fprintln(tw, "method\tsavings %\treplicas\truntime\twork")
	}
	for _, m := range repro.Methods() {
		in, err := repro.NewInstance(icfg)
		if err != nil {
			fatal(err)
		}
		res, err := in.SolveContext(ctx, m, &repro.Options{Workers: workers, Seed: seed})
		if err != nil {
			fatal(err)
		}
		if asJSON {
			results = append(results, toJSONResult(icfg, "", res))
			continue
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%d\t%s\t%d\n",
			bench.MethodLabel(m), res.SavingsPercent, res.Replicas,
			res.Runtime.Round(time.Millisecond), res.Work)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
		return
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
}

func methodList() string {
	names := make([]string, 0, len(repro.Methods()))
	for _, m := range repro.Methods() {
		names = append(names, string(m))
	}
	return strings.Join(names, "|")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agtram:", err)
	os.Exit(1)
}
