// Command agtram solves one Data Replication Problem instance with a chosen
// method and reports the outcome: OTC savings, replicas placed, runtime and
// (for AGT-RAM) the mechanism's rounds and payments.
//
// Examples:
//
//	agtram -M 128 -N 800 -capacity 20 -rw 0.9
//	agtram -method greedy -M 128 -N 800 -capacity 20 -rw 0.9
//	agtram -method agt-ram -engine sync -M 64 -N 400
//	agtram -all -M 128 -N 800   # run all six methods, print a comparison
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/bench"
)

func main() {
	var (
		m        = flag.Int("M", 128, "number of servers")
		n        = flag.Int("N", 800, "number of objects")
		requests = flag.Int("requests", 0, "total request volume (default 60 per object)")
		rw       = flag.Float64("rw", 0.9, "read share of the request volume, in (0,1]")
		capacity = flag.Float64("capacity", 25, "server capacity parameter C%")
		topo     = flag.String("topology", "random", "topology: random|waxman|powerlaw|transitstub")
		edgeP    = flag.Float64("p", 0.4, "edge probability for the random topology")
		seed     = flag.Int64("seed", 1, "experiment seed")
		method   = flag.String("method", "agt-ram", "method: agt-ram|greedy|gra|ae-star|da|ea")
		engine   = flag.String("engine", "incremental", "AGT-RAM engine: incremental|sync|distributed|network|tcp")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		all      = flag.Bool("all", false, "run all six methods and print a comparison table")
		report   = flag.String("report", "", "write the solved placement as a JSON report to this file")
		timeout  = flag.Duration("timeout", 0, "abort the solve after this duration (0 = no limit)")

		roundTimeout = flag.Duration("round-timeout", 0, "wire engines: per-agent bid/award deadline; agents that miss it are evicted (0 = none)")
		faultDrop    = flag.Float64("fault-drop", 0, "wire engines: per-write probability that an agent's link severs, in [0,1]")
		faultDelay   = flag.Duration("fault-delay", 0, "wire engines: delay injected before every agent write")
		faultCrash   = flag.String("fault-crash", "", "wire engines: comma-separated agent:round crash schedule (e.g. 3:2,7:1)")
		faultDial    = flag.String("fault-fail-dial", "", "wire engines: comma-separated agent ids whose dial always fails")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for the injected fault schedule")
	)
	flag.Parse()

	if !*all && !repro.KnownMethod(repro.Method(*method)) {
		fatal(fmt.Errorf("unknown -method %q (want %s)", *method, methodList()))
	}
	engineSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			engineSet = true
		}
	})
	if engineSet && repro.Method(*method) != repro.AGTRAM {
		fatal(fmt.Errorf("-engine only applies to -method agt-ram (got -method %s)", *method))
	}
	switch *engine {
	case "incremental", "sync", "distributed", "network", "tcp":
	default:
		fatal(fmt.Errorf("unknown -engine %q (want incremental|sync|distributed|network|tcp)", *engine))
	}
	faults, err := parseFaults(*faultDrop, *faultDelay, *faultCrash, *faultDial, *faultSeed)
	if err != nil {
		fatal(err)
	}
	if (faults != nil || *roundTimeout > 0) && *engine != "network" && *engine != "tcp" {
		fatal(fmt.Errorf("-fault-* and -round-timeout apply to the wire engines only (-engine network|tcp)"))
	}
	if *requests == 0 {
		*requests = *n * 60
	}
	icfg := repro.InstanceConfig{
		Servers:         *m,
		Objects:         *n,
		Requests:        *requests,
		RWRatio:         *rw,
		CapacityPercent: *capacity,
		Topology:        repro.TopologyKind(*topo),
		EdgeP:           *edgeP,
		Seed:            *seed,
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *all {
		runAll(ctx, icfg, *workers, *seed)
		return
	}

	inst, err := repro.NewInstance(icfg)
	if err != nil {
		fatal(err)
	}
	opts := &repro.Options{
		Workers:      *workers,
		Seed:         *seed,
		Sync:         *engine == "sync",
		Distributed:  *engine == "distributed",
		Network:      *engine == "network",
		RoundTimeout: *roundTimeout,
		Faults:       faults,
	}
	if *engine == "tcp" {
		opts.TCPAddr = "127.0.0.1:0"
	}
	res, err := inst.SolveContext(ctx, repro.Method(*method), opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: M=%d N=%d requests=%d R/W=%.2f C=%.0f%% topology=%s seed=%d\n",
		*m, *n, *requests, *rw, *capacity, *topo, *seed)
	fmt.Printf("method:   %s", bench.MethodLabel(res.Method))
	if res.Method == repro.AGTRAM {
		fmt.Printf(" (%s engine)", *engine)
	}
	fmt.Println()
	fmt.Printf("base OTC: %d\n", res.BaseOTC)
	fmt.Printf("OTC:      %d\n", res.OTC)
	fmt.Printf("savings:  %.2f%%\n", res.SavingsPercent)
	fmt.Printf("replicas: %d\n", res.Replicas)
	fmt.Printf("runtime:  %s\n", res.Runtime.Round(time.Microsecond))
	fmt.Printf("work:     %d operations\n", res.Work)
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := res.WriteReport(f); err != nil {
			fatal(err)
		}
		fmt.Printf("report:   %s\n", *report)
	}
	if res.Method == repro.AGTRAM {
		fmt.Printf("rounds:   %d\n", res.Rounds)
		var paid int64
		winners := 0
		for _, p := range res.Payments {
			if p > 0 {
				winners++
				paid += p
			}
		}
		fmt.Printf("payments: %d units across %d winning servers\n", paid, winners)
	}
	for _, ev := range res.Evictions {
		if ev.Round == 0 {
			fmt.Printf("evicted:  agent %d before the game (%s)\n", ev.Agent, ev.Reason)
		} else {
			fmt.Printf("evicted:  agent %d in round %d (%s)\n", ev.Agent, ev.Round, ev.Reason)
		}
	}
}

// parseFaults assembles a FaultConfig from the -fault-* flags, returning nil
// when none inject anything.
func parseFaults(drop float64, delay time.Duration, crash, dial string, seed int64) (*repro.FaultConfig, error) {
	cfg := &repro.FaultConfig{Seed: seed, DropAll: drop, DelayAll: delay}
	if drop < 0 || drop > 1 {
		return nil, fmt.Errorf("-fault-drop %v outside [0,1]", drop)
	}
	if crash != "" {
		cfg.CrashAtRound = map[int]int{}
		for _, part := range strings.Split(crash, ",") {
			var agent, round int
			if _, err := fmt.Sscanf(part, "%d:%d", &agent, &round); err != nil || round < 1 {
				return nil, fmt.Errorf("bad -fault-crash entry %q (want agent:round with round >= 1)", part)
			}
			cfg.CrashAtRound[agent] = round
		}
	}
	if dial != "" {
		cfg.FailDial = map[int]bool{}
		for _, part := range strings.Split(dial, ",") {
			var agent int
			if _, err := fmt.Sscanf(part, "%d", &agent); err != nil {
				return nil, fmt.Errorf("bad -fault-fail-dial entry %q (want an agent id)", part)
			}
			cfg.FailDial[agent] = true
		}
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	return cfg, nil
}

func runAll(ctx context.Context, icfg repro.InstanceConfig, workers int, seed int64) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tsavings %\treplicas\truntime\twork")
	for _, m := range repro.Methods() {
		inst, err := repro.NewInstance(icfg)
		if err != nil {
			fatal(err)
		}
		res, err := inst.SolveContext(ctx, m, &repro.Options{Workers: workers, Seed: seed})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%d\t%s\t%d\n",
			bench.MethodLabel(m), res.SavingsPercent, res.Replicas,
			res.Runtime.Round(time.Millisecond), res.Work)
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
}

func methodList() string {
	names := make([]string, 0, len(repro.Methods()))
	for _, m := range repro.Methods() {
		names = append(names, string(m))
	}
	return strings.Join(names, "|")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agtram:", err)
	os.Exit(1)
}
