// Command paperbench regenerates every table and figure of the paper's
// evaluation section, plus the repository's design ablations.
//
// Usage:
//
//	paperbench [flags] fig3|fig4|table1|table2|update-ratio|regions|adaptive|scenarios|multiseed|optgap|ablations|all
//
// Flags:
//
//	-scale f    fraction of the paper's problem sizes (default 0.08)
//	-seed n     experiment seed (default 42)
//	-workers n  parallel workers (0 = GOMAXPROCS)
//	-sync       force AGT-RAM's synchronous full-rescan engine instead of
//	            the default event-driven incremental one (identical
//	            results, more valuation work — see ablation-engine)
//	-csv dir    also write each result as CSV into dir
//	-chart      also render each result as an ASCII chart
//	-quiet      suppress per-run progress lines
//
// The ablation-engine wire rows (gob-netpipe, gob-tcp) additionally honour
// -round-timeout, -fault-drop, -fault-delay and -fault-seed, measuring the
// mechanism's graceful degradation under an imperfect network (evicted
// agents are reported per row).
//
// The paper's full sizes (M=3718, N=25000) correspond to -scale 1; the
// default scale reproduces every shape in minutes on a laptop.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/bench"
)

type experiment struct {
	name string
	run  func(context.Context, bench.Config) (*bench.Table, error)
}

var experiments = []experiment{
	{"fig3", bench.Figure3},
	{"fig4", bench.Figure4},
	{"table1", bench.Table1},
	{"table2", bench.Table2},
	{"update-ratio", bench.UpdateRatio},
	{"regions", bench.Regions},
	{"adaptive", bench.Adaptive},
	{"scenarios", bench.Scenarios},
	{"multiseed", func(ctx context.Context, cfg bench.Config) (*bench.Table, error) {
		return bench.MultiSeed(ctx, cfg, 10)
	}},
	{"optgap", func(ctx context.Context, cfg bench.Config) (*bench.Table, error) {
		return bench.OptimalityGap(ctx, cfg, 12)
	}},
	{"ablation-payment", bench.AblationPayment},
	{"ablation-valuation", bench.AblationValuation},
	{"ablation-engine", bench.AblationEngine},
	{"ablation-oracle", bench.AblationOracle},
}

func main() {
	var (
		scale   = flag.Float64("scale", 0.08, "fraction of the paper's problem sizes")
		seed    = flag.Int64("seed", 42, "experiment seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		sync    = flag.Bool("sync", false, "force AGT-RAM's synchronous full-rescan engine (default: incremental)")
		csvDir  = flag.String("csv", "", "directory to write CSV copies into")
		chart   = flag.Bool("chart", false, "also render each result as an ASCII chart")
		quiet   = flag.Bool("quiet", false, "suppress progress output")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")

		roundTimeout = flag.Duration("round-timeout", 0, "ablation-engine wire rows: per-agent deadline; slow agents are evicted (0 = none)")
		faultDrop    = flag.Float64("fault-drop", 0, "ablation-engine wire rows: per-write link-sever probability, in [0,1]")
		faultDelay   = flag.Duration("fault-delay", 0, "ablation-engine wire rows: delay injected before every agent write")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for the injected fault schedule")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: paperbench [flags] fig3|fig4|table1|table2|update-ratio|regions|adaptive|scenarios|multiseed|optgap|ablations|all")
		os.Exit(2)
	}
	target := flag.Arg(0)

	if *faultDrop < 0 || *faultDrop > 1 {
		fmt.Fprintf(os.Stderr, "paperbench: -fault-drop %v outside [0,1]\n", *faultDrop)
		os.Exit(2)
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed, Workers: *workers, Sync: *sync, RoundTimeout: *roundTimeout}
	if *faultDrop > 0 || *faultDelay > 0 {
		cfg.Faults = &repro.FaultConfig{Seed: *faultSeed, DropAll: *faultDrop, DelayAll: *faultDelay}
	}
	if !*quiet {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	selected := pick(target)
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "paperbench: unknown target %q\n", target)
		os.Exit(2)
	}
	for _, e := range selected {
		fmt.Fprintf(os.Stderr, "== %s (scale %.3f, seed %d)\n", e.name, *scale, *seed)
		table, err := e.run(ctx, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if err := table.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		if *chart {
			fmt.Println()
			if err := table.RenderChart(os.Stdout, 64, 16); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				os.Exit(1)
			}
		}
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.name, table); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				os.Exit(1)
			}
		}
	}
}

func pick(target string) []experiment {
	switch target {
	case "all":
		return experiments
	case "ablations":
		var out []experiment
		for _, e := range experiments {
			if strings.HasPrefix(e.name, "ablation-") {
				out = append(out, e)
			}
		}
		return out
	default:
		for _, e := range experiments {
			if e.name == target {
				return []experiment{e}
			}
		}
		return nil
	}
}

func writeCSV(dir, name string, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
