package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/online"
	"repro/internal/replication"
	"repro/internal/server"
	"repro/internal/sim"
)

// clusterArgs carries the -cluster* flag values into the role runners.
type clusterArgs struct {
	role          string // "coordinator" | "shard"
	rpcAddr       string // cluster-plane listen address
	httpAddr      string // HTTP API listen address
	shardID       int
	peers         string // coordinator: comma-separated shard RPC addresses
	coordinator   string // shard: the coordinator's RPC address
	codec         cluster.Codec
	probeInterval time.Duration
	scenario      sim.Generator
	scenarioTick  time.Duration
}

// runClusterMode dispatches on the daemon's cluster role. Both roles serve
// the single daemon's full HTTP surface (the coordinator from the merged
// mirror, a shard from its regional controller) plus GET /cluster for the
// membership/assignment view.
func runClusterMode(ctx context.Context, p *replication.Problem, ccfg online.Config, a clusterArgs) error {
	switch a.role {
	case "coordinator":
		return runCoordinator(ctx, p, ccfg, a)
	case "shard":
		return runShard(ctx, p, ccfg, a)
	default:
		return fmt.Errorf("unknown -cluster role %q (want coordinator|shard)", a.role)
	}
}

func runCoordinator(ctx context.Context, p *replication.Problem, ccfg online.Config, a clusterArgs) error {
	addrs := strings.Split(a.peers, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if len(addrs) == 0 || addrs[0] == "" {
		return fmt.Errorf("-cluster coordinator needs -peers (comma-separated shard RPC addresses)")
	}
	co, err := cluster.NewCoordinator(p, addrs, cluster.CoordinatorConfig{
		Codec:      a.codec,
		Controller: ccfg,
	})
	if err != nil {
		return err
	}
	defer co.Close()
	lis, err := net.Listen("tcp", a.rpcAddr)
	if err != nil {
		return fmt.Errorf("cluster RPC listen %s: %w", a.rpcAddr, err)
	}
	co.Serve(lis)
	logf("coordinator RPC on %s, %d shard(s): %s", co.Addr(), len(addrs), strings.Join(addrs, ", "))

	// Shards may still be starting: retry the first assignment with backoff
	// until every region lands (daemon start order must not matter).
	for {
		if err := co.AssignNow(ctx); err == nil {
			break
		} else {
			logf("waiting for shards: %v", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Second):
		}
	}
	logf("assigned generation %d, running initial cluster solve...", co.AssignVersion())
	if err := co.SolveNow(ctx); err != nil {
		return fmt.Errorf("initial cluster solve: %w", err)
	}
	m := co.Metrics()
	logf("solved: OTC %d, %.2f%% savings, %d replicas", m.OTC, m.Savings, m.Replicas)
	co.Start(ctx, a.probeInterval)

	if a.scenario != nil {
		driveScenario(ctx, a.scenario, a.scenarioTick, co.ApplyDeltas)
	}

	api := server.New(co)
	api.Extend("GET /cluster", co.HTTPHandler())
	return serveHTTP(ctx, a.httpAddr, api, "coordinator")
}

func runShard(ctx context.Context, p *replication.Problem, ccfg online.Config, a clusterArgs) error {
	sh := cluster.NewShard(a.shardID, p.Cost, cluster.ShardConfig{
		Codec:       a.codec,
		Controller:  ccfg,
		Coordinator: a.coordinator,
	})
	defer sh.Close()
	lis, err := net.Listen("tcp", a.rpcAddr)
	if err != nil {
		return fmt.Errorf("cluster RPC listen %s: %w", a.rpcAddr, err)
	}
	sh.Serve(lis)
	sh.Start(ctx, a.probeInterval)
	logf("shard %d RPC on %s (coordinator %s), waiting for assignment...", a.shardID, sh.Addr(), a.coordinator)
	if err := sh.WaitAssigned(ctx); err != nil {
		return err
	}
	logf("assigned generation %d (%s mode)", sh.AssignVersion(), sh.Mode())

	api := server.New(sh.Backend())
	api.Extend("GET /cluster", sh.HTTPHandler())
	return serveHTTP(ctx, a.httpAddr, api, fmt.Sprintf("shard %d", a.shardID))
}

// driveScenario replays the generator's delta schedule against apply, one
// batch per tick — the same in-process load generator the single daemon
// runs, here feeding the coordinator's forwarding plane.
func driveScenario(ctx context.Context, g sim.Generator, tick time.Duration, apply func([]online.Delta) (online.Applied, error)) {
	logf("driving scenario %s: %d ticks every %s", g.Name(), g.Ticks(), tick)
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for i := 0; i < g.Ticks(); i++ {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			ds := g.Batch(i)
			if len(ds) == 0 {
				continue
			}
			if a, err := apply(ds); err != nil {
				logf("scenario %s tick %d: %v", g.Name(), i, err)
			} else {
				logf("scenario %s tick %d/%d: %d deltas -> epoch %d (drift %.2f)",
					g.Name(), i+1, g.Ticks(), len(ds), a.Version, a.Drift)
			}
		}
		logf("scenario %s complete", g.Name())
	}()
}

// serveHTTP runs the API server until ctx cancels, then drains the epoch
// stream and shuts down — the same lifecycle as the single daemon.
func serveHTTP(ctx context.Context, addr string, api *server.Server, role string) error {
	httpSrv := &http.Server{Addr: addr, Handler: api}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logf("%s HTTP API on %s", role, addr)
	select {
	case <-ctx.Done():
		logf("shutting down...")
	case err := <-errc:
		return err
	}
	api.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logf("shutdown: %v", err)
	}
	return nil
}
