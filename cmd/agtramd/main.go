// Command agtramd runs the online replica-placement daemon: an HTTP service
// that routes reads against the live placement, absorbs workload deltas, and
// re-runs the configured solver when the placement drifts too far from what
// the mechanism last achieved.
//
// The instance flags (-M, -N, -capacity, ...) and the engine/fault flags
// (-engine, -round-timeout, -fault-*) are the same vocabulary cmd/agtram
// accepts, so an offline experiment's configuration carries onto the daemon
// unchanged.
//
// Endpoints:
//
//	GET  /route?server=i&object=k   nearest replica of k for server i (hot path, zero-alloc)
//	POST /route                     batch of {"server","object"} pairs, one epoch per batch
//	GET  /epochs?since=V            epoch stream: long-poll (&wait=5s) or SSE (&stream=sse)
//	GET  /placement                 full placement report (JSON, ETag/If-None-Match aware)
//	POST /deltas                    atomic delta batch (JSON array, WCTR or CLF trace)
//	POST /solve                     force a re-solve now
//	GET  /metrics                   controller + HTTP metrics
//	GET  /healthz                   liveness
//
// -scenario drives one of the built-in adversarial workloads (flash-crowd,
// diurnal, failures, rolling) against the live controller, one delta batch
// per -scenario-interval — a reproducible load generator for demos and
// soak tests, no external client needed.
//
// On SIGTERM/SIGINT the daemon first drains the epoch stream — every
// long-poll and SSE subscriber receives a terminal event so routing clients
// stop cleanly instead of reconnecting — then stops accepting requests, and
// — when -snapshot is set — persists the live placement as a JSON report
// that the next start restores instead of solving cold.
//
// Example:
//
//	agtramd -addr :8080 -M 64 -N 400 -drift 1.5 -debounce 2s -snapshot place.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/cmd/internal/cliflags"
	"repro/internal/cluster"
	"repro/internal/online"
	"repro/internal/replication"
	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	inst := cliflags.AddInstance(flag.CommandLine)
	eng := cliflags.AddEngine(flag.CommandLine)
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		method   = flag.String("method", "agt-ram", "solver run on drift: agt-ram|greedy|gra|ae-star|da|ea|glauber")
		drift    = flag.Float64("drift", 1.0, "drift threshold in percentage points of savings (<= 0 disables auto-solve)")
		debounce = flag.Duration("debounce", 2*time.Second, "minimum spacing between automatic re-solves")
		snapshot = flag.String("snapshot", "", "placement snapshot path: restored on start, written on shutdown")
		journal  = flag.Int("journal", online.DefaultJournal, "epoch-journal depth: placement diffs kept for GET /epochs replay before clients resync with a snapshot")
		warm     = flag.Bool("warm", false, "seed re-solves with the live placement instead of solving cold (less churn, timing-dependent placements)")
		debug    = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (profiling endpoints on the same listener)")

		scenarioName = flag.String("scenario", "", "drive a built-in adversarial workload against the live controller: "+strings.Join(sim.ScenarioNames(), "|")+" (empty disables)")
		scenarioTick = flag.Duration("scenario-interval", 2*time.Second, "spacing between -scenario delta batches")

		clusterRole = flag.String("cluster", "", "cluster role: coordinator|shard (empty runs the single daemon)")
		rpcAddr     = flag.String("rpc", ":9090", "cluster mode: RPC listen address for the inter-daemon plane")
		shardID     = flag.Int("shard", 0, "cluster shard mode: this shard's id (index into the coordinator's -peers list)")
		peers       = flag.String("peers", "", "cluster coordinator mode: comma-separated shard RPC addresses, shard i at position i")
		coordAddr   = flag.String("coordinator", "", "cluster shard mode: the coordinator's RPC address (empty runs the shard standalone-autonomous)")
		codecName   = flag.String("codec", "gob", "cluster mode: RPC frame codec, gob|json")
		probeEvery  = flag.Duration("probe-interval", 2*time.Second, "cluster mode: health-probe spacing for the failure detector")
	)
	flag.Parse()

	if !repro.KnownMethod(repro.Method(*method)) {
		fatal(fmt.Errorf("unknown -method %q", *method))
	}
	if *scenarioTick <= 0 {
		fatal(fmt.Errorf("-scenario-interval %v is not positive", *scenarioTick))
	}
	faults, err := eng.Validate()
	if err != nil {
		fatal(err)
	}
	if *warm && eng.Engine != "incremental" {
		fatal(fmt.Errorf("-warm requires -engine incremental (got %q)", eng.Engine))
	}

	in, err := repro.NewInstance(inst.Config())
	if err != nil {
		fatal(err)
	}
	p := in.Problem()
	var scenario sim.Generator
	if *scenarioName != "" {
		if scenario, err = sim.NewScenario(*scenarioName, sim.ShapeOf(p), inst.Seed); err != nil {
			fatal(err)
		}
	}
	ccfg := online.Config{
		Method:         *method,
		Engine:         engineOpt(*method, eng.Engine),
		Workers:        eng.Workers,
		Seed:           inst.Seed,
		RoundTimeout:   eng.RoundTimeout,
		GlauberSweeps:  eng.GlauberSweeps,
		Faults:         faults,
		DriftThreshold: *drift,
		SolveDebounce:  *debounce,
		WarmStart:      *warm,
		Journal:        *journal,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Cluster mode replaces the single controller with a regional shard or
	// the coordinating mirror; the same instance/engine/drift flags describe
	// the global game, so a single-daemon configuration lifts onto the
	// cluster unchanged.
	if *clusterRole != "" {
		codec, err := cluster.ParseCodec(*codecName)
		if err != nil {
			fatal(err)
		}
		if err := runClusterMode(ctx, p, ccfg, clusterArgs{
			role:          *clusterRole,
			rpcAddr:       *rpcAddr,
			httpAddr:      *addr,
			shardID:       *shardID,
			peers:         *peers,
			coordinator:   *coordAddr,
			codec:         codec,
			probeInterval: *probeEvery,
			scenario:      scenario,
			scenarioTick:  *scenarioTick,
		}); err != nil {
			fatal(err)
		}
		return
	}

	ctrl, err := online.New(p.Cost, p.Work, p.Capacity, ccfg)
	if err != nil {
		fatal(err)
	}

	// A snapshot written after shape-changing deltas (add-object,
	// server-join growth) no longer fits a fresh instance built from the
	// same flags, so an unusable snapshot falls back to a cold solve
	// instead of refusing to start.
	restored := false
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			rep, rerr := replication.ReadPlacement(f)
			f.Close()
			if rerr == nil {
				rerr = ctrl.RestorePlacement(rep)
			}
			if rerr != nil {
				logf("ignoring snapshot %s, solving cold: %v", *snapshot, rerr)
			} else {
				restored = true
				logf("restored placement from %s (OTC %d, %.2f%% savings)", *snapshot, rep.OTC, rep.Savings)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			fatal(err)
		}
	}
	if !restored {
		logf("initial solve (%s, M=%d N=%d)...", *method, p.M, p.N)
		if err := ctrl.SolveNow(ctx); err != nil {
			fatal(fmt.Errorf("initial solve: %w", err))
		}
		m := ctrl.Metrics()
		logf("solved: OTC %d, %.2f%% savings, %d replicas", m.OTC, m.Savings, m.Replicas)
	}
	ctrl.Start(ctx)

	// The scenario driver feeds the generator's delta schedule through the
	// live controller one batch per interval — the same POST /deltas path,
	// in-process — so drift-triggered re-solves, the epoch stream and
	// routing clients can be exercised against a reproducible adversarial
	// workload without an external load generator.
	if scenario != nil {
		logf("driving scenario %s: %d ticks every %s", scenario.Name(), scenario.Ticks(), *scenarioTick)
		go func() {
			tick := time.NewTicker(*scenarioTick)
			defer tick.Stop()
			for t := 0; t < scenario.Ticks(); t++ {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				ds := scenario.Batch(t)
				if len(ds) == 0 {
					continue
				}
				if a, err := ctrl.ApplyDeltas(ds); err != nil {
					logf("scenario %s tick %d: %v", scenario.Name(), t, err)
				} else {
					logf("scenario %s tick %d/%d: %d deltas -> epoch %d (drift %.2f)",
						scenario.Name(), t+1, scenario.Ticks(), len(ds), a.Version, a.Drift)
				}
			}
			logf("scenario %s complete", scenario.Name())
		}()
	}

	// The pprof endpoints are opt-in and share the service listener: a mux
	// claims /debug/pprof/ and hands everything else to the API handler.
	api := server.New(ctrl)
	var handler http.Handler = api
	if *debug {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logf("pprof endpoints enabled under /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logf("listening on %s (drift threshold %.2f, debounce %s)", *addr, *drift, *debounce)

	select {
	case <-ctx.Done():
		logf("shutting down...")
	case err := <-errc:
		fatal(err)
	}

	// Drain the epoch stream first: Shutdown only waits for idle
	// connections, and a long-poll or SSE subscriber is never idle until its
	// stream ends with a terminal event. Draining inside the same window
	// turns those handlers into completed requests instead of casualties.
	api.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logf("shutdown: %v", err)
	}
	ctrl.Close()

	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			fatal(err)
		}
		rep := ctrl.Placement()
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		logf("persisted placement to %s (OTC %d, %d servers, %d objects)", *snapshot, rep.OTC, rep.Servers, rep.Objects)
	}
}

// engineOpt maps the -engine flag onto solver options: only agt-ram has
// engines, every other method gets the empty default.
func engineOpt(method, engine string) string {
	if method == "agt-ram" {
		return engine
	}
	return ""
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "agtramd: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agtramd:", err)
	os.Exit(1)
}
