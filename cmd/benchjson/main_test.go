package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAGTRAMEnginesLarge/incremental-8         	      20	   3237119 ns/op	      6288 valuations/op	  721760 B/op	      51 allocs/op
BenchmarkAGTRAMEnginesLarge/sync-8                	       5	   48013210 ns/op	 8123456 valuations/op	 9923840 B/op	 120031 allocs/op
BenchmarkAGTRAMEnginesLarge/incremental-w4-8      	      20	   3301200 ns/op	      6290 valuations/op	  721800 B/op	      51 allocs/op
BenchmarkSolve/agtram                             	     100	    911234 ns/op	      4521 valuations/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	art, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(art.Benchmarks))
	}
	by := map[string]Benchmark{}
	for _, b := range art.Benchmarks {
		by[b.Name] = b
	}
	inc := by["AGTRAMEnginesLarge/incremental"]
	if inc.NsPerOp != 3237119 || inc.Procs != 8 || inc.Iterations != 20 {
		t.Fatalf("incremental parsed wrong: %+v", inc)
	}
	if inc.Metrics["allocs/op"] != 51 || inc.Metrics["valuations/op"] != 6288 {
		t.Fatalf("incremental metrics wrong: %+v", inc.Metrics)
	}
	w4 := by["AGTRAMEnginesLarge/incremental-w4"]
	if w4.Workers != 4 {
		t.Fatalf("worker suffix not parsed: %+v", w4)
	}
	// The -8 procs tag must not be mistaken for a worker count.
	if inc.Workers != 0 {
		t.Fatalf("default-engine run got workers=%d, want 0", inc.Workers)
	}
	solve := by["Solve/agtram"]
	if solve.Procs != 0 || solve.NsPerOp != 911234 {
		t.Fatalf("untagged benchmark parsed wrong: %+v", solve)
	}
}

func writeArtifact(t *testing.T, dir, name string, art Artifact) string {
	t.Helper()
	data, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", Artifact{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 10}},
		{Name: "B", NsPerOp: 2000, Metrics: map[string]float64{"routes/s": 6500}},
		{Name: "Gone", NsPerOp: 5},
	}})

	// Within threshold: +10% on A, improvement on B, one new benchmark with
	// a routing-throughput metric.
	newOK := writeArtifact(t, dir, "new_ok.json", Artifact{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 1100, Metrics: map[string]float64{"allocs/op": 0}},
		{Name: "B", NsPerOp: 900, Metrics: map[string]float64{"routes/s": 450000}},
		{Name: "New", NsPerOp: 7, Metrics: map[string]float64{"routes/s": 80.6e6}},
	}})
	var sb strings.Builder
	code, err := runCompare(&sb, oldPath, newOK, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d on a within-threshold comparison:\n%s", code, sb.String())
	}
	for _, want := range []string{"| A |", "+10.0%", "-55.0%", "| New | — |", "10 → 0", "80.6M", "6.5k → 450.0k"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}

	// Beyond threshold: +50% on B must fail.
	newBad := writeArtifact(t, dir, "new_bad.json", Artifact{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 3000},
	}})
	sb.Reset()
	code, err = runCompare(&sb, oldPath, newBad, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit code %d on a regressed comparison, want 2:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "1 benchmark(s) regressed") {
		t.Fatalf("report missing regression summary:\n%s", sb.String())
	}
}

func TestCompareMissingFile(t *testing.T) {
	if _, err := runCompare(&strings.Builder{}, "does-not-exist.json", "also-missing.json", 15, nil); err == nil {
		t.Fatal("comparing missing files succeeded")
	}
}

// TestCompareGatedMetrics pins the widened gate: a regression in a gated
// b.ReportMetric unit fails the compare even when ns/op held steady, while
// regressions in unlisted metrics and metrics without a baseline do not.
func TestCompareGatedMetrics(t *testing.T) {
	dir := t.TempDir()
	gates := []string{"region-solve-ns", "assign-bytes"}
	oldPath := writeArtifact(t, dir, "old.json", Artifact{Benchmarks: []Benchmark{
		{Name: "ClusterSolve/shards=4", NsPerOp: 16e6, Metrics: map[string]float64{
			"region-solve-ns": 1.4e6, "assign-bytes": 266000, "merge-ns": 9e6,
		}},
	}})

	// Within threshold on both gated units; merge-ns doubling is not gated.
	newOK := writeArtifact(t, dir, "new_ok.json", Artifact{Benchmarks: []Benchmark{
		{Name: "ClusterSolve/shards=4", NsPerOp: 16.1e6, Metrics: map[string]float64{
			"region-solve-ns": 1.5e6, "assign-bytes": 270000, "merge-ns": 18e6,
		}},
	}})
	var sb strings.Builder
	code, err := runCompare(&sb, oldPath, newOK, 15, gates)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d with gated metrics within threshold:\n%s", code, sb.String())
	}
	for _, want := range []string{"Gated metrics: region-solve-ns, assign-bytes", "region-solve-ns: 1400000 → 1500000"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}

	// Regional solve blowing up by 2x must fail even with ns/op flat.
	newBad := writeArtifact(t, dir, "new_bad.json", Artifact{Benchmarks: []Benchmark{
		{Name: "ClusterSolve/shards=4", NsPerOp: 16e6, Metrics: map[string]float64{
			"region-solve-ns": 2.8e6, "assign-bytes": 266000,
		}},
	}})
	sb.Reset()
	code, err = runCompare(&sb, oldPath, newBad, 15, gates)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit code %d on a gated-metric regression, want 2:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "1 benchmark(s) regressed") {
		t.Fatalf("report missing regression summary:\n%s", sb.String())
	}

	// A gated unit with no baseline (new on the PR side) never gates.
	newFresh := writeArtifact(t, dir, "new_fresh.json", Artifact{Benchmarks: []Benchmark{
		{Name: "ClusterSolve/shards=4", NsPerOp: 16e6, Metrics: map[string]float64{
			"assign-bytes": 266000, "wire-bytes": 1e9,
		}},
	}})
	sb.Reset()
	code, err = runCompare(&sb, oldPath, newFresh, 15, append(gates, "wire-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d when the gated unit has no baseline:\n%s", code, sb.String())
	}
}
