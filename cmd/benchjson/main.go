// Command benchjson turns `go test -bench` text output into a stable JSON
// artifact and compares two such artifacts for regressions.
//
// Parse mode (default) reads benchmark output on stdin and writes JSON:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Compare mode diffs two artifacts, prints a Markdown delta table (fit for
// a GitHub Actions job summary), and exits non-zero when any benchmark
// present in both regressed in ns/op by more than -threshold percent:
//
//	benchjson -compare main.json pr.json -threshold 15
//
// -gate-metrics widens the gate beyond ns/op to named b.ReportMetric units:
//
//	benchjson -compare main.json pr.json -gate-metrics region-solve-ns,assign-bytes
//
// A benchmark then also fails the gate when any listed metric, present in
// both artifacts, regressed (grew) by more than the threshold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and without
	// the trailing -GOMAXPROCS tag (which lands in Procs).
	Name  string `json:"name"`
	Procs int    `json:"procs,omitempty"`
	// Workers is the engine worker count encoded in a trailing "-wN" name
	// segment by the scaled engine benchmarks; 0 means the engine default.
	Workers    int     `json:"workers,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Secondary metrics (-benchmem and b.ReportMetric): B/op, allocs/op,
	// valuations/op, rounds, ... keyed by their unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the JSON document: environment stamp plus results.
type Artifact struct {
	Go         string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("o", "", "write JSON artifact to this file (default stdout)")
		compare   = flag.Bool("compare", false, "compare two artifacts: benchjson -compare old.json new.json")
		threshold = flag.Float64("threshold", 15, "compare: fail on ns/op regressions above this percent")
		gate      = flag.String("gate-metrics", "", "compare: comma-separated metric units also gated at the threshold (e.g. region-solve-ns,assign-bytes)")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json [-threshold pct] [-gate-metrics units]")
			os.Exit(1)
		}
		var gates []string
		for _, g := range strings.Split(*gate, ",") {
			if g = strings.TrimSpace(g); g != "" {
				gates = append(gates, g)
			}
		}
		code, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, gates)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		os.Exit(code)
	}

	art, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Parse reads `go test -bench` output and collects every result line.
// Non-benchmark lines (package headers, PASS/ok, warmup chatter) are
// ignored, so the whole `go test` stream can be piped through untouched.
func Parse(r io.Reader) (*Artifact, error) {
	art := &Artifact{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			art.Benchmarks = append(art.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(art.Benchmarks, func(i, j int) bool {
		return art.Benchmarks[i].Name < art.Benchmarks[j].Name
	})
	return art, nil
}

func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimPrefix(f[0], "Benchmark"), Metrics: map[string]float64{}}
	// Split the -GOMAXPROCS tag the testing package appends.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	// A trailing "/...-wN" segment is the engine worker count.
	if i := strings.LastIndex(b.Name, "-w"); i > 0 {
		if w, err := strconv.Atoi(b.Name[i+2:]); err == nil {
			b.Workers = w
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		if f[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[f[i+1]] = v
		}
	}
	if b.NsPerOp == 0 && len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

func load(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}

// runCompare writes the Markdown delta report and returns the exit code:
// 0 when everything holds, 2 when a shared benchmark regressed beyond the
// threshold — in ns/op, or in any of the gated metric units.
func runCompare(w io.Writer, oldPath, newPath string, threshold float64, gates []string) (int, error) {
	oldArt, err := load(oldPath)
	if err != nil {
		return 0, err
	}
	newArt, err := load(newPath)
	if err != nil {
		return 0, err
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldArt.Benchmarks {
		oldBy[b.Name] = b
	}

	fmt.Fprintf(w, "### Benchmark comparison (threshold %.0f%% ns/op)\n\n", threshold)
	gateCol := ""
	if len(gates) > 0 {
		fmt.Fprintf(w, "Gated metrics: %s\n\n", strings.Join(gates, ", "))
		gateCol = " gated |"
	}
	fmt.Fprintf(w, "| benchmark | old ns/op | new ns/op | Δ ns/op | Δ allocs/op | routes/s | RSS MiB |%s\n", gateCol)
	if len(gates) > 0 {
		fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---:|")
	} else {
		fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|")
	}
	regressions := 0
	for _, nb := range newArt.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok || ob.NsPerOp == 0 {
			cell := ""
			if len(gates) > 0 {
				c, _ := fmtGateDeltas(nil, nb.Metrics, gates, threshold)
				cell = " " + c + " |"
			}
			fmt.Fprintf(w, "| %s | — | %s | new | | %s | %s |%s\n",
				nb.Name, fmtNs(nb.NsPerOp),
				fmtRateDelta(0, nb.Metrics["routes/s"]),
				fmtRSSDelta(0, nb.Metrics["rss-MiB"]), cell)
			continue
		}
		delta := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		regressed := delta > threshold
		mark := ""
		if regressed {
			mark = " ⚠️"
		}
		cell := ""
		if len(gates) > 0 {
			c, bad := fmtGateDeltas(ob.Metrics, nb.Metrics, gates, threshold)
			cell = " " + c + " |"
			regressed = regressed || bad
		}
		if regressed {
			regressions++
		}
		fmt.Fprintf(w, "| %s | %s | %s | %+.1f%%%s | %s | %s | %s |%s\n",
			nb.Name, fmtNs(ob.NsPerOp), fmtNs(nb.NsPerOp), delta, mark,
			fmtAllocDelta(ob.Metrics["allocs/op"], nb.Metrics["allocs/op"]),
			fmtRateDelta(ob.Metrics["routes/s"], nb.Metrics["routes/s"]),
			fmtRSSDelta(ob.Metrics["rss-MiB"], nb.Metrics["rss-MiB"]), cell)
	}
	fmt.Fprintln(w)
	if regressions > 0 {
		fmt.Fprintf(w, "**%d benchmark(s) regressed more than %.0f%%.**\n", regressions, threshold)
		return 2, nil
	}
	fmt.Fprintln(w, "No regressions beyond the threshold.")
	return 0, nil
}

// fmtGateDeltas renders the gated-metrics cell ("unit: old → new" per unit
// present in either artifact) and reports whether any unit present in both
// grew by more than the threshold. Units absent on one side never gate —
// a metric newly added (or dropped) by the PR has no baseline to regress
// against.
func fmtGateDeltas(oldM, newM map[string]float64, gates []string, threshold float64) (string, bool) {
	var parts []string
	bad := false
	for _, g := range gates {
		ov, nv := oldM[g], newM[g]
		switch {
		case ov == 0 && nv == 0:
			continue
		case ov == 0:
			parts = append(parts, fmt.Sprintf("%s: %.0f", g, nv))
		default:
			mark := ""
			if nv > ov*(1+threshold/100) {
				bad = true
				mark = " ⚠️"
			}
			parts = append(parts, fmt.Sprintf("%s: %.0f → %.0f%s", g, ov, nv, mark))
		}
	}
	return strings.Join(parts, "<br>"), bad
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func fmtAllocDelta(oldA, newA float64) string {
	if oldA == 0 && newA == 0 {
		return ""
	}
	return fmt.Sprintf("%.0f → %.0f", oldA, newA)
}

// fmtRateDelta renders the routing-throughput column from the "routes/s"
// metric the routing-plane benchmarks report. Rates compress to k/M suffixes
// so the client-side path (tens of millions) and the HTTP path (thousands)
// share a readable column.
func fmtRateDelta(oldR, newR float64) string {
	switch {
	case oldR == 0 && newR == 0:
		return ""
	case oldR == 0:
		return fmtRate(newR)
	default:
		return fmtRate(oldR) + " → " + fmtRate(newR)
	}
}

func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}

// fmtRSSDelta renders the peak-memory trajectory column from the "rss-MiB"
// metric the oracle solve benchmarks report (process VmHWM, so the value is
// monotone within one bench run; absolute levels compare across artifacts).
func fmtRSSDelta(oldR, newR float64) string {
	switch {
	case oldR == 0 && newR == 0:
		return ""
	case oldR == 0:
		return fmt.Sprintf("%.0f", newR)
	default:
		return fmt.Sprintf("%.0f → %.0f", oldR, newR)
	}
}
