// Command tracegen generates synthetic World Cup 1998-style access traces,
// converts between the binary and common-log text formats, and summarizes
// trace statistics.
//
// Usage:
//
//	tracegen gen -objects 25000 -clients 500 -events 1500000 -o friday.wctr
//	tracegen stat friday.wctr
//	tracegen convert -format clf friday.wctr friday.log
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "stat":
		cmdStat(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracegen gen [-objects N] [-clients N] [-events N] [-write-ratio F] [-zipf F] [-seed N] -o FILE
  tracegen stat FILE
  tracegen convert [-format clf|binary] IN OUT`)
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	objects := fs.Int("objects", 25000, "catalogue size")
	clients := fs.Int("clients", 500, "distinct clients")
	events := fs.Int("events", 1500000, "total requests")
	writeRatio := fs.Float64("write-ratio", 0.05, "fraction of requests that are updates")
	zipf := fs.Float64("zipf", 1.1, "popularity skew exponent")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (binary format)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("gen: -o is required"))
	}
	l, err := trace.Generate(trace.Config{
		Objects:    *objects,
		Clients:    *clients,
		Events:     *events,
		WriteRatio: *writeRatio,
		ZipfS:      *zipf,
		Seed:       *seed,
	})
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := l.WriteBinary(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d events over %d objects to %s\n", len(l.Events), l.Objects, *out)
}

func cmdStat(args []string) {
	if len(args) != 1 {
		usage()
	}
	l := readAny(args[0])
	s := l.Summarize()
	fmt.Printf("events:        %d (%d reads, %d writes; write ratio %.3f)\n",
		s.Events, s.Reads, s.Writes, s.WriteRatio)
	fmt.Printf("objects:       %d declared, %d touched\n", l.Objects, s.DistinctObjs)
	fmt.Printf("clients:       %d\n", l.Clients)
	fmt.Printf("hottest object share: %.2f%%\n", 100*s.TopObjShare)
	fmt.Printf("object size:   mean %.1f, std %.1f data units\n", s.SizeMean, s.SizeStd)
	fmt.Printf("client volume Gini: %.3f\n", s.ClientGini)
}

func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	format := fs.String("format", "clf", "output format: clf or binary")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		usage()
	}
	l := readAny(rest[0])
	out, err := os.Create(rest[1])
	if err != nil {
		fatal(err)
	}
	defer out.Close()
	switch *format {
	case "clf":
		err = l.WriteCLF(out)
	case "binary":
		err = l.WriteBinary(out)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s)\n", rest[1], *format)
}

// readAny loads a trace in either format, sniffing by extension first and
// falling back to the other codec.
func readAny(path string) *trace.Log {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".log") || strings.HasSuffix(path, ".clf") {
		l, err := trace.ReadCLF(f)
		if err != nil {
			fatal(err)
		}
		return l
	}
	l, err := trace.ReadBinary(f)
	if err == nil {
		return l
	}
	// Retry as CLF.
	if _, serr := f.Seek(0, 0); serr != nil {
		fatal(err)
	}
	l, cerr := trace.ReadCLF(f)
	if cerr != nil {
		fatal(fmt.Errorf("not binary (%v) nor CLF (%v)", err, cerr))
	}
	return l
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
