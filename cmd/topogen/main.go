// Command topogen generates the network topologies of the paper's
// experimental setup and reports their structural statistics: node/edge
// counts, degree distribution, and the all-pairs communication-cost
// distribution c(i,j) that feeds the DRP.
//
// Usage:
//
//	topogen -kind random -n 200 -p 0.4
//	topogen -kind powerlaw -n 3718 -m 2
//	topogen -kind transitstub -domains 4 -transit 4 -stubs 2 -stubsize 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	var (
		kind     = flag.String("kind", "random", "random|waxman|powerlaw|transitstub|ring|grid")
		n        = flag.Int("n", 200, "node count (random/waxman/powerlaw/ring)")
		p        = flag.Float64("p", 0.4, "edge probability (random) / alpha (waxman)")
		beta     = flag.Float64("beta", 0.3, "waxman beta")
		mAttach  = flag.Int("m", 2, "attachments per node (powerlaw)")
		domains  = flag.Int("domains", 4, "transit domains (transitstub)")
		transit  = flag.Int("transit", 4, "nodes per transit domain")
		stubs    = flag.Int("stubs", 2, "stub domains per transit node")
		stubsize = flag.Int("stubsize", 3, "nodes per stub domain")
		rows     = flag.Int("rows", 10, "grid rows")
		cols     = flag.Int("cols", 10, "grid cols")
		seed     = flag.Int64("seed", 1, "generator seed")
		workers  = flag.Int("workers", 0, "APSP workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	r := stats.NewRNG(*seed)
	var (
		g   *topology.Graph
		err error
	)
	switch *kind {
	case "random":
		g, err = topology.Random(*n, *p, topology.DefaultWeights, r)
	case "waxman":
		g, err = topology.Waxman(*n, *p, *beta, topology.DefaultWeights, r)
	case "powerlaw":
		g, err = topology.PowerLaw(*n, *mAttach, topology.DefaultWeights, r)
	case "transitstub":
		g, err = topology.TransitStub(topology.TransitStubConfig{
			TransitDomains:  *domains,
			TransitSize:     *transit,
			StubsPerTransit: *stubs,
			StubSize:        *stubsize,
			IntraP:          0.4,
		}, r)
	case "ring":
		g = topology.Ring(*n)
	case "grid":
		g = topology.Grid(*rows, *cols)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}

	fmt.Printf("kind:      %s\n", *kind)
	fmt.Printf("nodes:     %d\n", g.N())
	fmt.Printf("edges:     %d\n", g.Edges())
	fmt.Printf("connected: %v\n", g.Connected())

	ds := g.DegreeSequence()
	degs := make([]float64, len(ds))
	for i, d := range ds {
		degs[i] = float64(d)
	}
	fmt.Printf("degree:    %s\n", stats.Summarize(degs))

	dist := topology.AllPairs(g, *workers)
	var costs []float64
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			if c := dist.At(i, j); c != topology.Infinity {
				costs = append(costs, float64(c))
			}
		}
	}
	fmt.Printf("c(i,j):    %s\n", stats.Summarize(costs))
	fmt.Printf("diameter:  %d\n", dist.MaxFinite())
}
