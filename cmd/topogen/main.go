// Command topogen generates the network topologies of the paper's
// experimental setup and reports their structural statistics: node/edge
// counts, degree distribution, and the communication-cost distribution
// c(i,j) that feeds the DRP — computed through a selectable distance
// oracle so statistics stay affordable past the dense O(n²) wall.
//
// Usage:
//
//	topogen -kind random -n 200 -p 0.4
//	topogen -kind powerlaw -n 3718 -m 2
//	topogen -kind tree -n 10000 -oracle tree
//	topogen -kind transitstub -domains 4 -transit 4 -stubs 2 -stubsize 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/distoracle"
	"repro/internal/stats"
	"repro/internal/topology"
)

// sampleSources bounds how many source rows feed the c(i,j) statistics
// when the oracle is not a fully materialized dense matrix.
const sampleSources = 64

func main() {
	var (
		kind      = flag.String("kind", "random", "random|waxman|powerlaw|transitstub|tree|ring|grid")
		n         = flag.Int("n", 200, "node count (random/waxman/powerlaw/tree/ring)")
		p         = flag.Float64("p", 0.4, "edge probability (random) / alpha (waxman)")
		beta      = flag.Float64("beta", 0.3, "waxman beta")
		mAttach   = flag.Int("m", 2, "attachments per node (powerlaw)")
		domains   = flag.Int("domains", 4, "transit domains (transitstub)")
		transit   = flag.Int("transit", 4, "nodes per transit domain")
		stubs     = flag.Int("stubs", 2, "stub domains per transit node")
		stubsize  = flag.Int("stubsize", 3, "nodes per stub domain")
		rows      = flag.Int("rows", 10, "grid rows")
		cols      = flag.Int("cols", 10, "grid cols")
		seed      = flag.Int64("seed", 1, "generator seed")
		workers   = flag.Int("workers", 0, "shortest-path workers (0 = GOMAXPROCS)")
		oracle    = flag.String("oracle", "auto", "distance oracle for the c(i,j) stats: auto|dense|csr|landmark|tree")
		landmarks = flag.Int("landmarks", 0, "landmark count K for -oracle landmark (0 = default)")
	)
	flag.Parse()

	r := stats.NewRNG(*seed)
	var (
		g   *topology.Graph
		err error
	)
	switch *kind {
	case "random":
		g, err = topology.Random(*n, *p, topology.DefaultWeights, r)
	case "waxman":
		g, err = topology.Waxman(*n, *p, *beta, topology.DefaultWeights, r)
	case "powerlaw":
		g, err = topology.PowerLaw(*n, *mAttach, topology.DefaultWeights, r)
	case "transitstub":
		g, err = topology.TransitStub(topology.TransitStubConfig{
			TransitDomains:  *domains,
			TransitSize:     *transit,
			StubsPerTransit: *stubs,
			StubSize:        *stubsize,
			IntraP:          0.4,
		}, r)
	case "tree":
		g, err = topology.RandomTree(*n, topology.DefaultWeights, r)
	case "ring":
		g = topology.Ring(*n)
	case "grid":
		g = topology.Grid(*rows, *cols)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}

	fmt.Printf("kind:      %s\n", *kind)
	fmt.Printf("nodes:     %d\n", g.N())
	fmt.Printf("edges:     %d\n", g.Edges())
	fmt.Printf("connected: %v\n", g.Connected())

	ds := g.DegreeSequence()
	degs := make([]float64, len(ds))
	for i, d := range ds {
		degs[i] = float64(d)
	}
	fmt.Printf("degree:    %s\n", stats.Summarize(degs))

	mode, err := distoracle.ParseMode(*oracle)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(2)
	}
	cost, err := distoracle.Build(g, distoracle.Options{
		Mode:      mode,
		Landmarks: *landmarks,
		Workers:   *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	fmt.Printf("oracle:    %s\n", distoracle.Kind(cost))

	if dist, ok := cost.(*topology.DistMatrix); ok {
		// Dense matrix in hand: exact distribution over every pair.
		var costs []float64
		for i := 0; i < g.N(); i++ {
			for j := i + 1; j < g.N(); j++ {
				if c := dist.At(i, j); c != topology.Infinity {
					costs = append(costs, float64(c))
				}
			}
		}
		fmt.Printf("c(i,j):    %s\n", stats.Summarize(costs))
		fmt.Printf("diameter:  %d\n", dist.MaxFinite())
		return
	}
	// Lazy/compact oracle: sample source rows instead of materializing
	// the O(n²) matrix; the diameter becomes a lower bound.
	srcs := sampleSources
	if srcs > g.N() {
		srcs = g.N()
	}
	perm := r.Perm(g.N())[:srcs]
	var costs []float64
	var maxSeen int32
	for _, s := range perm {
		for j := 0; j < g.N(); j++ {
			if j == s {
				continue
			}
			if c := cost.At(s, j); c != topology.Infinity {
				costs = append(costs, float64(c))
				if c > maxSeen {
					maxSeen = c
				}
			}
		}
	}
	fmt.Printf("c(i,j):    %s (sampled, %d source rows)\n", stats.Summarize(costs), srcs)
	fmt.Printf("diameter:  >= %d (sampled)\n", maxSeen)
	if cs, ok := cost.(interface{ Stats() distoracle.CacheStats }); ok {
		// The sampling above exercised the row cache; its counters show what
		// the budgeted oracle would do under this access pattern.
		st := cs.Stats()
		fmt.Printf("row cache: %d hits, %d misses, %d evictions, %d rows resident\n",
			st.Hits, st.Misses, st.Evictions, st.CachedRows)
	}
}
