// Package cliflags registers the flag vocabulary shared by cmd/agtram and
// cmd/agtramd — the synthetic-instance shape and the AGT-RAM engine/fault
// knobs — so both binaries accept identical spellings and defaults, and a
// fault schedule rehearsed offline with agtram carries verbatim onto the
// daemon.
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
)

// Instance collects the synthetic-instance flags.
type Instance struct {
	M, N, Requests int
	RW             float64
	Capacity       float64
	Topology       string
	EdgeP          float64
	Oracle         string
	Landmarks      int
	RowCache       int
	Seed           int64
}

// AddInstance registers the instance flags on fs and returns the struct the
// parsed values land in.
func AddInstance(fs *flag.FlagSet) *Instance {
	c := &Instance{}
	fs.IntVar(&c.M, "M", 128, "number of servers")
	fs.IntVar(&c.N, "N", 800, "number of objects")
	fs.IntVar(&c.Requests, "requests", 0, "total request volume (default 60 per object)")
	fs.Float64Var(&c.RW, "rw", 0.9, "read share of the request volume, in (0,1]")
	fs.Float64Var(&c.Capacity, "capacity", 25, "server capacity parameter C%")
	fs.StringVar(&c.Topology, "topology", "random", "topology: random|waxman|powerlaw|transitstub|tree|grid")
	fs.Float64Var(&c.EdgeP, "p", 0.4, "edge probability for the random topology")
	fs.StringVar(&c.Oracle, "oracle", "auto", "distance oracle: auto|dense|csr|landmark|tree (landmark is approximate)")
	fs.IntVar(&c.Landmarks, "landmarks", 0, "landmark count K for -oracle landmark (0 = default; K = M is exact)")
	fs.IntVar(&c.RowCache, "row-cache", 0, "cached distance rows for -oracle csr (0 = default)")
	fs.Int64Var(&c.Seed, "seed", 1, "experiment seed")
	return c
}

// Config materializes the parsed flags, applying the 60-per-object request
// default.
func (c *Instance) Config() repro.InstanceConfig {
	req := c.Requests
	if req == 0 {
		req = c.N * 60
	}
	return repro.InstanceConfig{
		Servers:         c.M,
		Objects:         c.N,
		Requests:        req,
		RWRatio:         c.RW,
		CapacityPercent: c.Capacity,
		Topology:        repro.TopologyKind(c.Topology),
		EdgeP:           c.EdgeP,
		Oracle:          c.Oracle,
		Landmarks:       c.Landmarks,
		RowCacheRows:    c.RowCache,
		Seed:            c.Seed,
	}
}

// Profile collects the pprof output flags.
type Profile struct {
	CPU string
	Mem string
}

// AddProfile registers -cpuprofile and -memprofile on fs.
func AddProfile(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given and returns the
// function that finishes both profiles; call it (usually deferred) on the
// way out. With neither flag set both Start and the returned func are
// no-ops.
func (p *Profile) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if p.Mem != "" {
			f, err := os.Create(p.Mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// Engine collects the AGT-RAM engine-selection and fault-injection flags.
type Engine struct {
	Engine        string
	Workers       int
	RoundTimeout  time.Duration
	GlauberSweeps int
	FaultDrop     float64
	FaultDelay    time.Duration
	FaultCrash    string
	FaultDial     string
	FaultSeed     int64
}

// AddEngine registers the engine flags on fs.
func AddEngine(fs *flag.FlagSet) *Engine {
	e := &Engine{}
	fs.StringVar(&e.Engine, "engine", "incremental", "AGT-RAM engine: incremental|sync|distributed|network|tcp")
	fs.IntVar(&e.Workers, "workers", 0, "parallel workers (0 = GOMAXPROCS)")
	fs.DurationVar(&e.RoundTimeout, "round-timeout", 0, "wire engines: per-agent bid/award deadline; agents that miss it are evicted (0 = none)")
	fs.IntVar(&e.GlauberSweeps, "glauber-sweeps", 0, "glauber method: annealing-sweep budget (0 = adaptive default scaling with M*N)")
	fs.Float64Var(&e.FaultDrop, "fault-drop", 0, "wire engines: per-write probability that an agent's link severs, in [0,1]")
	fs.DurationVar(&e.FaultDelay, "fault-delay", 0, "wire engines: delay injected before every agent write")
	fs.StringVar(&e.FaultCrash, "fault-crash", "", "wire engines: comma-separated agent:round crash schedule (e.g. 3:2,7:1)")
	fs.StringVar(&e.FaultDial, "fault-fail-dial", "", "wire engines: comma-separated agent ids whose dial always fails")
	fs.Int64Var(&e.FaultSeed, "fault-seed", 1, "seed for the injected fault schedule")
	return e
}

// Faults assembles a FaultConfig from the fault flags, nil when none inject
// anything.
func (e *Engine) Faults() (*repro.FaultConfig, error) {
	if e.FaultDrop < 0 || e.FaultDrop > 1 {
		return nil, fmt.Errorf("-fault-drop %v outside [0,1]", e.FaultDrop)
	}
	cfg := &repro.FaultConfig{Seed: e.FaultSeed, DropAll: e.FaultDrop, DelayAll: e.FaultDelay}
	if e.FaultCrash != "" {
		cfg.CrashAtRound = map[int]int{}
		for _, part := range strings.Split(e.FaultCrash, ",") {
			var agent, round int
			if _, err := fmt.Sscanf(part, "%d:%d", &agent, &round); err != nil || round < 1 {
				return nil, fmt.Errorf("bad -fault-crash entry %q (want agent:round with round >= 1)", part)
			}
			cfg.CrashAtRound[agent] = round
		}
	}
	if e.FaultDial != "" {
		cfg.FailDial = map[int]bool{}
		for _, part := range strings.Split(e.FaultDial, ",") {
			var agent int
			if _, err := fmt.Sscanf(part, "%d", &agent); err != nil {
				return nil, fmt.Errorf("bad -fault-fail-dial entry %q (want an agent id)", part)
			}
			cfg.FailDial[agent] = true
		}
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	return cfg, nil
}

// Validate checks the engine name and that faults/deadlines target a wire
// engine. It returns the parsed fault config so callers validate and read
// in one call.
func (e *Engine) Validate() (*repro.FaultConfig, error) {
	switch e.Engine {
	case "incremental", "sync", "distributed", "network", "tcp":
	default:
		return nil, fmt.Errorf("unknown -engine %q (want incremental|sync|distributed|network|tcp)", e.Engine)
	}
	faults, err := e.Faults()
	if err != nil {
		return nil, err
	}
	if (faults != nil || e.RoundTimeout > 0) && e.Engine != "network" && e.Engine != "tcp" {
		return nil, fmt.Errorf("-fault-* and -round-timeout apply to the wire engines only (-engine network|tcp)")
	}
	return faults, nil
}
