// BenchmarkScenarioMatrix drives every placement method through the four
// adversarial workload scenarios — flash crowd, diurnal wave, correlated
// failures, rolling topology — re-solving after every tick. Each cell
// reports wall time per full scenario plus the final OTC savings and the
// cumulative solver work, parsed into BENCH_8.json by `make scenarios` for
// the CI compare gate.
package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testutil"
)

func BenchmarkScenarioMatrix(b *testing.B) {
	p := testutil.MustBuild(testutil.Small(42))
	shape := sim.ShapeOf(p)
	for _, name := range sim.ScenarioNames() {
		for _, method := range repro.Methods() {
			b.Run(fmt.Sprintf("%s/%s", name, method), func(b *testing.B) {
				var savings float64
				var work int64
				for i := 0; i < b.N; i++ {
					gen, err := sim.NewScenario(name, shape, 42)
					if err != nil {
						b.Fatal(err)
					}
					ctrl, err := online.New(p.Cost, p.Work, p.Capacity, online.Config{
						Method: string(method), Seed: stats.Mix64(42, int64(len(method))),
					})
					if err != nil {
						b.Fatal(err)
					}
					res, err := sim.RunScenario(context.Background(), ctrl, gen, true, 0)
					ctrl.Close()
					if err != nil {
						b.Fatal(err)
					}
					savings = res.FinalSavings
					work += res.SolverWork
				}
				b.ReportMetric(savings, "savings-pct")
				b.ReportMetric(float64(work)/float64(b.N), "solverwork/op")
			})
		}
	}
}
