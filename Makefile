# Developer and CI entry points. `make ci` is what the GitHub Actions
# workflow runs: vet, staticcheck, build, the full test suite under the
# race detector (the incremental AGT-RAM engine shares work with pool
# workers and the cancellation tests exercise every engine's teardown, so
# the race run is load-bearing, not ceremonial), and one pass over every
# benchmark so the perf harness itself cannot rot.

GO ?= go
STATICCHECK ?= staticcheck

.PHONY: all vet staticcheck build test race bench bench-json ci fuzz faultmatrix loadtest scenarios cluster

all: build

vet:
	$(GO) vet ./...

# Skips with a notice when the binary is absent so offline checkouts still
# pass `make ci`; the GitHub workflow installs a pinned version.
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then 		$(STATICCHECK) ./...; 	else 		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; 	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: checks the harness runs, not the numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Machine-readable engine benchmarks: the six-method comparison
# (BenchmarkSolve) plus the AGT-RAM engine comparison at Table-1 scale
# (M=48), M=500 and M=1000 — including the incremental kernel's
# w1/w2/w4/w8 worker sweep — the distance-oracle micro-benchmarks, the
# dense/CSR/landmark solve matrix at M=1k and (BENCH_M10K=1, set here)
# M=10k with its rss-MiB peak-memory column, the routing-plane comparison
# (HTTP single vs batch vs client-side, routes/s column), and the cluster
# solve comparison with its per-phase metrics (region-solve-ns,
# assign-bytes, ... — gated in CI via benchjson -gate-metrics) — parsed
# into a JSON artifact (BENCH_*.json, CI regression gate). Tune with
#   make bench-json BENCH_PATTERN='AGTRAMEnginesLarge' BENCHTIME=10x BENCH_OUT=pr.json
BENCH_PATTERN ?= AGTRAMEngines|Solve$$|DistOracle
BENCHTIME ?= 5x
BENCH_OUT ?= BENCH.json
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCHTIME) . > bench.out
	BENCH_M10K=1 $(GO) test -run '^$$' -bench 'OracleSolve/M10k' -benchmem -benchtime 1x . >> bench.out
	$(GO) test -run '^$$' -bench 'RoutingPlane' -benchmem -benchtime $(BENCHTIME) ./internal/server >> bench.out
	$(GO) test -run '^$$' -bench 'ClusterSolve' -benchmem -benchtime $(BENCHTIME) ./internal/cluster >> bench.out
	@cat bench.out
	$(GO) run ./cmd/benchjson -o $(BENCH_OUT) < bench.out
	@rm -f bench.out

# The fault-matrix suite: injected crashes, truncated frames, severed and
# slow links against both wire engines, plus the fault-free differential
# check, run twice under the race detector so eviction paths and teardown
# cannot hide behind a lucky schedule.
faultmatrix:
	$(GO) test -race -count=2 -run 'TestFault|TestSolveTCP|TestEvicted|TestDifferentialEngines' ./internal/agtram
	$(GO) test -race -count=2 ./internal/faultnet

# The daemon's concurrency load tests plus the routing-plane benchmark.
# Load: /route reads race delta batches and background solves; SSE/long-poll
# epoch subscribers verify a gapless version sequence under the same churn;
# the controller-level journal suite and the routing client's differential
# tests run alongside — all under the race detector with goroutine-leak
# checking, twice so the RCU swap cannot pass on one lucky schedule.
# Bench: server-side vs client-side routing throughput (routes/s + tail
# latency), parsed into BENCH_7.json for the CI compare gate.
loadtest:
	$(GO) test -race -count=2 -run 'TestRouteUnderConcurrentDeltas|TestEpochStreamUnderLoad|TestRouteHandlerZeroAlloc' ./internal/server
	$(GO) test -race -count=2 -run 'TestConcurrentSubscribersGapless|TestSubscribe|TestSlowSubscriber|TestDrainSubscribers' ./internal/online
	$(GO) test -race -count=2 ./internal/routing
	$(GO) test -run '^$$' -bench 'RoutingPlane' -benchmem -benchtime 2s ./internal/server | tee routing_bench.out
	$(GO) run ./cmd/benchjson -o BENCH_7.json < routing_bench.out
	@rm -f routing_bench.out

# The adversarial-workload scenario matrix. Tests: every registered method
# through every scenario class (flash crowd, diurnal wave, correlated
# failures, rolling topology) with epoch-stream clients verifying routes
# bit-identically, leak-checked under the race detector, twice so generator
# purity and the controller's churn paths cannot pass on one lucky
# schedule. Bench: the full scenario x method matrix with per-tick
# re-solves (savings-pct + solverwork/op columns), parsed into BENCH_8.json
# for the CI compare gate.
scenarios:
	$(GO) test -race -count=2 -run 'TestScenario|TestRunScenario|TestCompose' ./internal/sim
	$(GO) test -run '^$$' -bench 'ScenarioMatrix' -benchmem -benchtime 1x . | tee scenario_bench.out
	$(GO) run ./cmd/benchjson -o BENCH_8.json < scenario_bench.out
	@rm -f scenario_bench.out

# The cluster plane's differential and fault suites. Differential: a
# 1-shard cluster must reproduce the single daemon bit-identically —
# placements, payments, versions, route answers — across deltas, solves and
# membership churn. Fault matrix: coordinator crash mid-epoch (shards
# degrade to autonomous and recover), shard eviction (re-partition onto the
# survivors, stale-generation fencing over real RPC), plus the RPC/
# membership transports and the hierarchy failure modes the degradation
# switch reuses — all leak-checked under the race detector, twice so probe
# loops and teardown cannot pass on one lucky schedule. Bench: multi-shard
# vs single-daemon solve wall-clock at M=1000 with per-phase metrics
# (partition/ship/regional-solve/merge, wire bytes per assignment), parsed
# into BENCH_10.json. 5 iterations so the steady state — where the merge
# memo and pooled frames pay off — dominates the cold first merge.
cluster:
	$(GO) test -race -count=2 ./internal/cluster
	$(GO) test -race -count=2 -run 'TestTopFails|TestFailedRegions|TestAllRegionsFailed|TestCancelledDuringDegraded' ./internal/hierarchy
	$(GO) test -run '^$$' -bench 'ClusterSolve' -benchmem -benchtime 5x ./internal/cluster | tee cluster_bench.out
	$(GO) run ./cmd/benchjson -o BENCH_10.json < cluster_bench.out
	@rm -f cluster_bench.out

# Short smoke of each fuzz target beyond its checked-in corpus.
fuzz:
	$(GO) test -fuzz FuzzSchemaPlaceRemove -fuzztime 10s ./internal/replication
	$(GO) test -fuzz FuzzReadGraph -fuzztime 10s ./internal/topology
	$(GO) test -fuzz FuzzDeltasDecoder -fuzztime 10s ./internal/server
	$(GO) test -fuzz FuzzCompactRoundTrip -fuzztime 10s ./internal/online

ci: vet staticcheck build race loadtest scenarios faultmatrix cluster bench
