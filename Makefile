# Developer and CI entry points. `make ci` is what the GitHub Actions
# workflow runs: vet, build, the full test suite under the race detector
# (the incremental AGT-RAM engine shares work with pool workers, so the
# race run is load-bearing, not ceremonial), and one pass over every
# benchmark so the perf harness itself cannot rot.

GO ?= go

.PHONY: all vet build test race bench ci fuzz

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: checks the harness runs, not the numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Short smoke of each fuzz target beyond its checked-in corpus.
fuzz:
	$(GO) test -fuzz FuzzSchemaPlaceRemove -fuzztime 10s ./internal/replication
	$(GO) test -fuzz FuzzReadGraph -fuzztime 10s ./internal/topology

ci: vet build race bench
