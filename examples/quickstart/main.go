// Quickstart: build a small distributed system, replicate its objects with
// AGT-RAM, and inspect the outcome.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A system of 64 servers on a flat random network holding 400 objects,
	// serving a read-heavy workload (90% reads), with every server sized at
	// the C=20% capacity point of the paper's sweep.
	inst, err := repro.NewInstance(repro.InstanceConfig{
		Servers:         64,
		Objects:         400,
		Requests:        24000,
		RWRatio:         0.90,
		CapacityPercent: 20,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d servers, %d objects, primary-only OTC %d\n",
		inst.Servers(), inst.Objects(), inst.BaseOTC())

	// Run the paper's mechanism. Agents (servers) compete in sealed-bid
	// rounds; the central body only decides replicate / don't replicate.
	res, err := inst.Solve(repro.AGTRAM, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AGT-RAM placed %d replicas in %d rounds (%s)\n",
		res.Replicas, res.Rounds, res.Runtime.Round(time.Millisecond))
	fmt.Printf("object transfer cost: %d -> %d (%.1f%% saved)\n",
		res.BaseOTC, res.OTC, res.SavingsPercent)

	// Every winning server was paid the second-best reported valuation
	// (Axiom 5) — count the winners.
	winners := 0
	var paid int64
	for _, p := range res.Payments {
		if p > 0 {
			winners++
			paid += p
		}
	}
	fmt.Printf("motivational payments: %d units across %d servers\n", paid, winners)

	// Compare against the strongest conventional baseline.
	g, err := inst.Solve(repro.Greedy, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("centralized greedy baseline: %.1f%% saved\n", g.SavingsPercent)
}
