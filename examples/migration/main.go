// Migration scenario: demand drifts over time — yesterday's hot objects go
// cold, new ones heat up. The paper frames AGT-RAM as "a protocol for
// automatic replication and migration of objects in response to demand
// changes"; this example runs the adaptive protocol over six drifting
// epochs and compares it with freezing the initial placement.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/adaptive"
	"repro/internal/replication"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	const (
		servers = 64
		objects = 400
		epochs  = 6
	)
	// A fixed system: catalogue, primaries, topology and capacities never
	// change. Only the demand drifts between epochs.
	ws, err := adaptive.GenerateEpochs(workload.SyntheticConfig{
		Servers: servers, Objects: objects, Requests: 24000,
		RWRatio: 0.9, Seed: 99,
	}, epochs)
	if err != nil {
		log.Fatal(err)
	}
	r := stats.NewRNG(100)
	g, err := topology.Random(servers, 0.3, topology.DefaultWeights, r)
	if err != nil {
		log.Fatal(err)
	}
	caps, err := replication.GenerateCapacities(ws[0], 15, r)
	if err != nil {
		log.Fatal(err)
	}
	cost := topology.AllPairs(g, 0)

	migrating, err := adaptive.Run(context.Background(), cost, ws, caps, adaptive.Config{})
	if err != nil {
		log.Fatal(err)
	}
	frozen, err := adaptive.Run(context.Background(), cost, ws, caps, adaptive.Config{FreezePlacement: true})
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "epoch\tkept\tdropped\tadded\tmigrating savings\tfrozen savings")
	for e := 0; e < epochs; e++ {
		a, f := migrating.Epochs[e], frozen.Epochs[e]
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.1f%%\t%.1f%%\n",
			e, a.Kept, a.Dropped, a.Added, a.Savings, f.Savings)
	}
	fmt.Fprintf(tw, "mean\t\t\t\t%.1f%%\t%.1f%%\n", migrating.MeanSavings(), frozen.MeanSavings())
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nFrozen replicas of cold objects keep receiving every update while")
	fmt.Println("saving no reads — they become pure liabilities. The migrating protocol")
	fmt.Println("drops them at each epoch boundary and re-runs the sealed-bid rounds")
	fmt.Println("for the new hot set.")
}
