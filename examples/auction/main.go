// Mechanism demo: why the paper builds AGT-RAM from six axioms instead of
// an arbitrary auction. This example shows (1) the axiom checklist for the
// second-price and first-price payment rules, (2) a concrete misreporting
// experiment demonstrating that truth-telling is a dominant strategy only
// under the second-price payment (Lemma 1 / Theorem 5), and (3) the end to
// end effect on a replica allocation run.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/mechanism"
)

func main() {
	// 1. The six axioms (Figure 1) as a checklist per payment rule.
	fmt.Println("The six axioms of the mechanism (Figure 1):")
	for _, a := range mechanism.Axioms() {
		fmt.Printf("  %d. %-18s %s\n", int(a), a.String()+":", a.Description())
	}
	fmt.Println()
	fmt.Print(mechanism.Compliance(mechanism.SecondPrice))
	fmt.Print(mechanism.Compliance(mechanism.FirstPrice))
	fmt.Println()

	// 2. Misreporting experiment. An agent truly values hosting an object
	// at 1000; three rivals bid 400, 700 and 900. Can lying help?
	others := []mechanism.Bid{
		{Agent: 1, Value: 400},
		{Agent: 2, Value: 700},
		{Agent: 3, Value: 900},
	}
	trueValue := int64(1000)
	misreports := []int64{100, 500, 901, 950, 1200, 5000}
	fmt.Printf("agent's true valuation: %d; rivals bid 400/700/900\n", trueValue)
	for _, rule := range []mechanism.PaymentRule{mechanism.SecondPrice, mechanism.FirstPrice} {
		gain := mechanism.ManipulationGain(rule, trueValue, misreports, others)
		fmt.Printf("  best misreport gain under %s: %d", rule, gain)
		if gain == 0 {
			fmt.Print("  (truth-telling is dominant)")
		} else {
			fmt.Print("  (agents profit from lying!)")
		}
		fmt.Println()
	}
	fmt.Println()

	// 3. End to end: the same instance solved under both payment rules.
	// Allocations are identical (the algorithmic output only depends on the
	// reports), but the first-price variant loses the truthfulness
	// guarantee — in the wild its reports would drift away from CoR and the
	// utilitarian objective of Axiom 4 would no longer be optimized.
	icfg := repro.InstanceConfig{
		Servers: 48, Objects: 300, Requests: 18000,
		RWRatio: 0.9, CapacityPercent: 20, Seed: 3,
	}
	for _, firstPrice := range []bool{false, true} {
		inst, err := repro.NewInstance(icfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := inst.Solve(repro.AGTRAM, &repro.Options{FirstPrice: firstPrice})
		if err != nil {
			log.Fatal(err)
		}
		var paid int64
		for _, p := range res.Payments {
			paid += p
		}
		rule := "second-price"
		if firstPrice {
			rule = "first-price"
		}
		fmt.Printf("%-12s  savings %.2f%%  replicas %d  total payments %d\n",
			rule, res.SavingsPercent, res.Replicas, paid)
	}
	fmt.Println("\nSame allocation, different payments: the second-price rule pays less")
	fmt.Println("than the winners asked for and still keeps them honest.")
}
