// Daemon walkthrough: run the online replica-placement controller behind
// its HTTP API, stream a synthetic World Cup-style trace into it as delta
// batches — the same bytes `tracegen gen` writes and `POST /deltas`
// accepts — and watch the placement drift and re-solve.
//
// The curl equivalent against a real agtramd process is in
// examples/daemon/README.md.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"repro"
	"repro/internal/online"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	// The system: 32 servers, 200 objects, the paper's read-heavy mix.
	inst, err := repro.NewInstance(repro.InstanceConfig{
		Servers: 32, Objects: 200, Requests: 12000,
		RWRatio: 0.90, CapacityPercent: 20, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	p := inst.Problem()

	// The controller re-solves when the live placement's savings fall more
	// than half a percentage point behind what the mechanism last achieved.
	ctrl, err := online.New(p.Cost, p.Work, p.Capacity, online.Config{
		DriftThreshold: 0.5,
		SolveDebounce:  50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl.Start(ctx)
	defer ctrl.Close()
	if err := ctrl.SolveNow(ctx); err != nil {
		log.Fatal(err)
	}

	ts := httptest.NewServer(server.New(ctrl))
	defer ts.Close()
	fmt.Printf("daemon up at %s\n", ts.URL)
	printMetrics(ts.URL, "after initial solve")

	// A day of traffic, generated exactly as `tracegen gen -objects 200
	// -clients 100 -events 20000` would, split into four six-hour batches.
	l, err := repro.GenerateTrace(repro.TraceConfig{
		Objects: 200, Clients: 100, Events: 20000, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	per := (len(l.Events) + 3) / 4
	for b := 0; b*per < len(l.Events); b++ {
		end := (b + 1) * per
		if end > len(l.Events) {
			end = len(l.Events)
		}
		chunk := &trace.Log{
			Objects: l.Objects, Clients: l.Clients,
			ObjectSizes: l.ObjectSizes, Events: l.Events[b*per : end],
		}
		var buf bytes.Buffer
		if err := chunk.WriteBinary(&buf); err != nil {
			log.Fatal(err)
		}
		// The same WCTR bytes a `tracegen gen` file holds: POST them raw.
		resp, err := http.Post(ts.URL+"/deltas?format=trace", "application/octet-stream", &buf)
		if err != nil {
			log.Fatal(err)
		}
		var applied online.Applied
		if err := json.NewDecoder(resp.Body).Decode(&applied); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("batch %d: %d deltas applied, drift %.2f pp, re-solve scheduled: %v\n",
			b+1, applied.Applied, applied.Drift, applied.SolveScheduled)
	}

	// Let the debounced background solver catch up, then route a few reads.
	time.Sleep(300 * time.Millisecond)
	printMetrics(ts.URL, "after the trace")
	for _, q := range []string{"server=3&object=17", "server=20&object=17", "server=9&object=150"} {
		body := get(ts.URL + "/route?" + q)
		fmt.Printf("route %-25s -> %s", q, body)
	}
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(b)
}

func printMetrics(base, label string) {
	var m struct {
		Controller online.Metrics `json:"controller"`
	}
	if err := json.Unmarshal([]byte(get(base+"/metrics")), &m); err != nil {
		log.Fatal(err)
	}
	c := m.Controller
	fmt.Printf("%s: version %d, OTC %d, savings %.2f%%, %d replicas, %d solves\n",
		label, c.Version, c.OTC, c.Savings, c.Replicas, c.SolvesRun)
}
