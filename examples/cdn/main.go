// CDN scenario: a content distribution network decides how much storage to
// provision at its edge servers. This example sweeps the capacity parameter
// across the paper's Figure 3 range and shows where extra storage stops
// paying off ("replicating an object that is already extensively replicated
// is unlikely to result in significant traffic savings"), comparing the
// game-theoretic mechanism with the conventional methods.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	methods := []repro.Method{repro.AGTRAM, repro.Greedy, repro.DutchAuction, repro.GRA}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "capacity C%")
	for _, m := range methods {
		fmt.Fprintf(tw, "\t%s", m)
	}
	fmt.Fprintln(tw, "\treplicas (AGT-RAM)")

	for _, capacity := range []float64{10, 15, 20, 25, 30, 35, 40} {
		cfg := repro.InstanceConfig{
			Servers:         96,
			Objects:         600,
			Requests:        36000,
			RWRatio:         0.95, // CDN traffic is read-dominated
			CapacityPercent: capacity,
			Topology:        repro.TopologyPowerLaw, // AS-level-like edge network
			Seed:            11,
		}
		fmt.Fprintf(tw, "%.0f", capacity)
		var agtReplicas int
		for _, m := range methods {
			inst, err := repro.NewInstance(cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := inst.Solve(m, &repro.Options{Seed: 11})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "\t%.1f%%", res.SavingsPercent)
			if m == repro.AGTRAM {
				agtReplicas = res.Replicas
			}
		}
		fmt.Fprintf(tw, "\t%d\n", agtReplicas)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading the table: savings climb steeply while capacity is the")
	fmt.Println("bottleneck, then flatten once every beneficial object is replicated —")
	fmt.Println("the provisioning knee of Figure 3. Past the knee, extra storage buys")
	fmt.Println("almost nothing.")
}
