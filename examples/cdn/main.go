// CDN scenario: a content distribution network decides how much storage to
// provision at its edge servers. This example sweeps the capacity parameter
// across the paper's Figure 3 range and shows where extra storage stops
// paying off ("replicating an object that is already extensively replicated
// is unlikely to result in significant traffic savings"), comparing the
// game-theoretic mechanism with the conventional methods.
//
// The second half is the serving-path walkthrough: the same CDN operated by
// the online controller, with edge boxes running routing.Client against the
// daemon's epoch stream — every cache-miss lookup answered locally instead
// of with a round-trip, and placement changes arriving as versioned diffs.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/online"
	"repro/internal/routing"
	"repro/internal/server"
)

func main() {
	methods := []repro.Method{repro.AGTRAM, repro.Greedy, repro.DutchAuction, repro.GRA}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "capacity C%")
	for _, m := range methods {
		fmt.Fprintf(tw, "\t%s", m)
	}
	fmt.Fprintln(tw, "\treplicas (AGT-RAM)")

	for _, capacity := range []float64{10, 15, 20, 25, 30, 35, 40} {
		cfg := repro.InstanceConfig{
			Servers:         96,
			Objects:         600,
			Requests:        36000,
			RWRatio:         0.95, // CDN traffic is read-dominated
			CapacityPercent: capacity,
			Topology:        repro.TopologyPowerLaw, // AS-level-like edge network
			Seed:            11,
		}
		fmt.Fprintf(tw, "%.0f", capacity)
		var agtReplicas int
		for _, m := range methods {
			inst, err := repro.NewInstance(cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := inst.Solve(m, &repro.Options{Seed: 11})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "\t%.1f%%", res.SavingsPercent)
			if m == repro.AGTRAM {
				agtReplicas = res.Replicas
			}
		}
		fmt.Fprintf(tw, "\t%d\n", agtReplicas)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading the table: savings climb steeply while capacity is the")
	fmt.Println("bottleneck, then flatten once every beneficial object is replicated —")
	fmt.Println("the provisioning knee of Figure 3. Past the knee, extra storage buys")
	fmt.Println("almost nothing.")

	edgeRouting()
}

// edgeRouting runs the client-side routing walkthrough: a controller behind
// the HTTP facade, an edge box following GET /epochs, and a placement change
// propagating as a diff the edge applies without refetching anything.
func edgeRouting() {
	fmt.Println("\n--- client-side edge routing over the epoch stream ---")

	cfg := repro.InstanceConfig{
		Servers: 32, Objects: 200, Requests: 12000,
		RWRatio: 0.95, CapacityPercent: 25,
		Topology: repro.TopologyPowerLaw, Seed: 11,
	}
	inst, err := repro.NewInstance(cfg)
	if err != nil {
		log.Fatal(err)
	}
	p := inst.Problem()
	ctrl, err := online.New(p.Cost, p.Work, p.Capacity, online.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := ctrl.SolveNow(context.Background()); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.New(ctrl))
	defer ts.Close()

	// An edge box: same cost oracle (built from the same topology), state
	// synced over HTTP. Follow runs until the daemon drains.
	edge := routing.NewClient(p.Cost)
	followDone := make(chan error, 1)
	go func() {
		followDone <- routing.Follow(context.Background(), edge,
			&routing.HTTPSource{Base: ts.URL, Wait: 500 * time.Millisecond})
	}()
	if err := edge.WaitVersion(context.Background(), ctrl.Current().Version, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge synced at epoch %d: lookups are now local (no HTTP per request)\n", edge.Version())
	from, err := edge.Route(5, 17)
	if err != nil {
		log.Fatal(err)
	}
	want, _ := ctrl.Route(5, 17)
	fmt.Printf("edge 5 reads object 17 from server %d (controller agrees: %d)\n", from, want)

	// A demand surge lands; the controller re-solves; the edge picks up the
	// new placement as a diff on the stream.
	if _, err := ctrl.ApplyDeltas([]online.Delta{
		{Kind: online.KindDemand, Server: 5, Object: 17, Reads: 50000},
	}); err != nil {
		log.Fatal(err)
	}
	if err := ctrl.SolveNow(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := edge.WaitVersion(context.Background(), ctrl.Current().Version, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	from2, err := edge.Route(5, 17)
	if err != nil {
		log.Fatal(err)
	}
	want2, _ := ctrl.Route(5, 17)
	updates, resyncs, _ := edge.Stats()
	fmt.Printf("after the surge + re-solve (epoch %d): edge answers %d, controller %d; "+
		"%d diffs applied, %d snapshot resyncs\n", edge.Version(), from2, want2, updates, resyncs)

	// Graceful end: draining the server sends a terminal event and Follow
	// returns nil instead of reconnect-looping.
	ctrl.DrainSubscribers()
	if err := <-followDone; err != nil {
		log.Fatal(err)
	}
	ctrl.Close()
	fmt.Println("daemon drained; edge follower stopped cleanly on the terminal event")
}
