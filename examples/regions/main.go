// Regions scenario: the paper's future-work sketch (Section 7) made
// concrete. A continental operator partitions its servers into regions;
// each region runs its own replica game and a thin top-level arbiter takes
// one binary decision per epoch. The demo shows the three headline
// properties: (1) hierarchical coordination loses nothing against the flat
// mechanism, (2) the top level sees R bids per epoch instead of M, and
// (3) the system survives the death of the central body.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/agtram"
	"repro/internal/hierarchy"
	"repro/internal/testutil"
)

func main() {
	cfg := testutil.InstanceConfig{
		Servers: 64, Objects: 400, Requests: 24000,
		RWRatio: 0.9, CapacityPercent: 15, EdgeP: 0.3, Seed: 21,
	}

	flat, err := agtram.Solve(context.Background(), testutil.MustBuild(cfg), agtram.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat AGT-RAM:        %.2f%% savings, central body saw %d bids/round (M agents)\n",
		flat.Schema.Savings(), cfg.Servers)

	for _, regions := range []int{4, 8} {
		h, err := hierarchy.Solve(context.Background(), testutil.MustBuild(cfg), hierarchy.Config{Regions: regions})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hierarchical (R=%d):  %.2f%% savings, top level saw %d bids/epoch\n",
			regions, h.Schema.Savings(), regions)
		for r, members := range h.Regions {
			fmt.Printf("  region %d: %d servers\n", r, len(members))
		}
	}

	// Kill the central body halfway through; the regions keep going.
	h, err := hierarchy.Solve(context.Background(), testutil.MustBuild(cfg), hierarchy.Config{
		Regions:       8,
		TopFailsAfter: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop level fails at epoch %d:\n", h.DegradedAtEpoch)
	fmt.Printf("  %d decisions were central, %d were taken regionally after the failure\n",
		h.TopDecisions, h.RegionalDecisions)
	fmt.Printf("  final savings: %.2f%% — the system degraded, it did not die\n",
		h.Schema.Savings())

	// A whole region can fail too.
	f, err := hierarchy.Solve(context.Background(), testutil.MustBuild(cfg), hierarchy.Config{
		Regions:       8,
		FailedRegions: []int{2, 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregions 2 and 5 dark from the start: %.2f%% savings from the survivors\n",
		f.Schema.Savings())
}
