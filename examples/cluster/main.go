// Cluster walkthrough: the semi-distributed architecture of the paper run
// as a 3-shard cluster in one process. A coordinator partitions the servers
// into regions by communication-cost proximity and ships each region to a
// shard daemon over the RPC plane; every shard runs its own regional
// AGT-RAM game concurrently; the coordinator merges the regional winners
// through the top-level delegate game and serves the merged placement.
//
// The second half is the failure story: the coordinator goes silent, the
// shards' failure detectors notice, and each shard degrades to autonomous
// mode — re-solving its own region on drift, exactly like a single daemon —
// until the coordinator comes back and the hierarchy re-forms.
//
// Everything runs over real loopback TCP: the same wire protocol, framing
// and membership probes the multi-process deployment uses (see the README's
// cluster quickstart for the agtramd flags).
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	_ "repro/internal/agtram"
	"repro/internal/cluster"
	"repro/internal/hierarchy"
	"repro/internal/online"
	"repro/internal/replication"
	"repro/internal/testutil"
)

const shards = 3

func main() {
	ctx := context.Background()

	// One global instance: M servers, N objects, the communication-cost
	// oracle both sides construct from the shared configuration (only
	// runtime state crosses the wire).
	p := testutil.MustBuild(testutil.InstanceConfig{
		Servers: 24, Objects: 120, Requests: 7200,
		RWRatio: 0.9, CapacityPercent: 25, EdgeP: 0.3, Seed: 7,
	})
	fmt.Printf("instance: M=%d servers, N=%d objects\n\n", p.M, p.N)

	// --- 1. Bring up the shard daemons. The coordinator's listener is
	// bound first so every shard's failure detector has a live top level to
	// probe; each shard listens on loopback and waits for the coordinator's
	// first assignment.
	coLis := listen()
	ctrlCfg := online.Config{Method: "agt-ram", Seed: 7, DriftThreshold: 1.0}
	var (
		shs   [shards]*cluster.Shard
		addrs [shards]string
	)
	for i := 0; i < shards; i++ {
		shs[i] = cluster.NewShard(i, p.Cost, cluster.ShardConfig{
			Codec:       cluster.CodecGob,
			Controller:  ctrlCfg,
			Coordinator: coLis.Addr().String(),
		})
		lis := listen()
		shs[i].Serve(lis)
		addrs[i] = shs[i].Addr()
		defer shs[i].Close()
	}

	// --- 2. The coordinator: global mirror + partitioner + delegate game.
	co, err := cluster.NewCoordinator(p, addrs[:], cluster.CoordinatorConfig{
		Codec:      cluster.CodecGob,
		Controller: ctrlCfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer co.Close()
	co.Serve(coLis)

	// --- 3. Form the cluster: partition servers into regions, ship the
	// masked assignments, run the regional games, merge the winners.
	if err := co.AssignNow(ctx); err != nil {
		log.Fatal(err)
	}
	st := co.Status(ctx)
	fmt.Printf("assignment generation %d:\n", st.AssignVersion)
	for _, sh := range st.Shards {
		fmt.Printf("  shard %d @ %s: %d servers, %s, %s mode\n",
			sh.ID, sh.Addr, sh.Members, sh.State, sh.Mode)
	}
	if err := co.SolveNow(ctx); err != nil {
		log.Fatal(err)
	}
	m := co.Metrics()
	fmt.Printf("\ncluster solve: OTC %d (base %d), %.2f%% savings, %d replicas\n",
		m.OTC, m.BaseOTC, m.Savings, m.Replicas)
	fmt.Printf("delegate game winner: shard %d\n\n", lastWinner(co, ctx))

	// --- 4. Live traffic: deltas hit the coordinator, which forwards each
	// to the shard that owns the target server; a re-merge folds the
	// regional reactions back into the global placement.
	fmt.Println("applying a read flash crowd on objects 0..9...")
	var ds []online.Delta
	for k := int32(0); k < 10; k++ {
		ds = append(ds, online.Delta{Kind: online.KindDemand, Server: 3, Object: k, Reads: 400})
	}
	a, err := co.ApplyDeltas(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  applied %d deltas -> epoch %d, drift %.2f\n", a.Applied, a.Version, a.Drift)
	rep, err := co.MergeNow(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  re-merge: %d regions, winner shard %d pays %d, %.2f%% savings\n\n",
		rep.Regions, rep.Winner, rep.Payment, rep.Savings)

	// Routing answers come from the merged placement — the coordinator and
	// every shard agree on where server 3 reads object 0.
	from, _ := co.Route(3, 0)
	fmt.Printf("route(server 3, object 0) = server %d (coordinator)\n", from)
	for i := 0; i < shards; i++ {
		if f, err := shs[i].Backend().Route(3, 0); err == nil {
			fmt.Printf("route(server 3, object 0) = server %d (shard %d)\n", f, i)
		}
	}

	// --- 5. The failure story. A fresh shard is wired to a coordinator
	// address that stops answering: its failure detector marks the top
	// level dead and the shard switches to autonomous mode, re-solving its
	// own region on drift like a single daemon.
	fmt.Println("\n--- coordinator failure ---")
	demoFailover(ctx, p, ctrlCfg)
}

// demoFailover runs the degradation switch in miniature: one shard, one
// coordinator, the coordinator crashes, the shard notices and degrades.
func demoFailover(ctx context.Context, p *replication.Problem, ctrlCfg online.Config) {
	coLis := listen()
	sh := cluster.NewShard(0, p.Cost, cluster.ShardConfig{
		Codec:          cluster.CodecGob,
		Controller:     ctrlCfg,
		Coordinator:    coLis.Addr().String(),
		DeathThreshold: 2,
		ProbeTimeout:   200 * time.Millisecond,
	})
	defer sh.Close()
	sh.Serve(listen())

	co, err := cluster.NewCoordinator(p, []string{sh.Addr()}, cluster.CoordinatorConfig{
		Codec: cluster.CodecGob, Controller: ctrlCfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	co.Serve(coLis)
	if err := co.AssignNow(ctx); err != nil {
		log.Fatal(err)
	}
	if err := co.SolveNow(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard mode with a live coordinator: %s\n", sh.Mode())

	// Crash the top level: close it and let the shard's probes fail past
	// the death threshold.
	co.Close()
	for i := 0; i < 3 && sh.Mode() != hierarchy.Autonomous; i++ {
		sh.ProbeCoordinator(ctx)
	}
	fmt.Printf("after the coordinator crash: %s mode\n", sh.Mode())
	fmt.Println("the shard now re-solves its own region on drift, like a single daemon")
}

func lastWinner(co *cluster.Coordinator, ctx context.Context) int {
	return co.Status(ctx).LastWinner
}

func listen() net.Listener {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return lis
}
