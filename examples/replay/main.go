// Replay scenario: beyond the aggregate OTC number, what does replication
// do to individual requests and to server load? This example builds a
// trace-driven instance, solves it with AGT-RAM, and then replays the
// trace event by event against both the primary-only and the replicated
// placements — measuring realized transfer cost (which matches the
// analytical OTC exactly), locally served reads, per-read cost percentiles
// (a latency proxy) and the load imbalance across servers.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	tr, err := repro.GenerateTrace(repro.TraceConfig{
		Objects:    800,
		Clients:    200,
		Events:     60000,
		WriteRatio: 0.05,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	inst, err := repro.NewInstanceFromTrace(tr, repro.InstanceConfig{
		Servers:         80,
		CapacityPercent: 20,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, res *repro.Result) {
		m, err := inst.Replay(res)
		if err != nil {
			log.Fatal(err)
		}
		if m.TransferCost != res.OTC {
			log.Fatalf("replay disagrees with the analytical OTC: %d vs %d", m.TransferCost, res.OTC)
		}
		fmt.Printf("%-14s realized cost %12d  local reads %5d  mean read cost %8.1f  p99 %8.1f  load Gini %.3f\n",
			name, m.TransferCost, m.LocalReads, m.MeanReadCost, m.P99ReadCost, m.LoadImbalance)
	}

	// Primary-only baseline: solve with a method but zero placements is not
	// expressible, so compare against greedy and the mechanism directly.
	agt, err := inst.Solve(repro.AGTRAM, nil)
	if err != nil {
		log.Fatal(err)
	}
	gre, err := inst.Solve(repro.Greedy, nil)
	if err != nil {
		log.Fatal(err)
	}
	gra, err := inst.Solve(repro.GRA, &repro.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace: %d events over %d objects, %d clients mapped onto %d servers\n\n",
		len(tr.Events), tr.Objects, tr.Clients, inst.Servers())
	show("AGT-RAM", agt)
	show("Greedy", gre)
	show("GRA", gra)

	read, ship, bcast, err := agt.Breakdown()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAGT-RAM OTC decomposition: reads %d, update shipments %d, update broadcasts %d\n",
		read, ship, bcast)
	fmt.Println("\nEvery replayed event was routed exactly as the cost model assumes —")
	fmt.Println("the realized transfer cost equals the analytical OTC to the unit.")
}
