// World Cup scenario: replay the paper's trace-driven methodology. The
// paper benchmarks against the Soccer World Cup 1998 access logs, one
// Friday per week from May 1 to July 24 (thirteen logs, the heaviest
// traffic day). This example generates thirteen synthetic Friday traces
// with the same statistical fingerprint (Zipf popularity, lognormal sizes,
// heavy-tailed client volumes, ~5% updates), maps the clients onto the
// servers with the paper's random 1-M mapping, and compares AGT-RAM with
// the greedy and auction baselines across all thirteen instances.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	base := repro.TraceConfig{
		Objects:    2000, // scaled from the paper's 25,000
		Clients:    500,  // the paper's top-500 clients
		Events:     120000,
		WriteRatio: 0.05,
		Seed:       1998,
	}
	fridays, err := repro.GenerateFridays(base, 13)
	if err != nil {
		log.Fatal(err)
	}

	methods := []repro.Method{repro.AGTRAM, repro.Greedy, repro.DutchAuction}
	sums := make(map[repro.Method]float64, len(methods))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "friday\trequests")
	for _, m := range methods {
		fmt.Fprintf(tw, "\t%s", m)
	}
	fmt.Fprintln(tw)

	for week, tr := range fridays {
		fmt.Fprintf(tw, "%d\t%d", week+1, len(tr.Events))
		for _, m := range methods {
			inst, err := repro.NewInstanceFromTrace(tr, repro.InstanceConfig{
				Servers:         150,
				CapacityPercent: 20,
				Seed:            int64(week + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := inst.Solve(m, nil)
			if err != nil {
				log.Fatal(err)
			}
			sums[m] += res.SavingsPercent
			fmt.Fprintf(tw, "\t%.1f%%", res.SavingsPercent)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "mean\t")
	for _, m := range methods {
		fmt.Fprintf(tw, "\t%.1f%%", sums[m]/13)
	}
	fmt.Fprintln(tw)
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nEach row is one synthetic Friday: same catalogue statistics,")
	fmt.Println("independent request stream — the paper's thirteen-log methodology.")
}
