// Benchmarks for the pluggable distance-oracle layer: micro-benchmarks of
// oracle build/query costs (BenchmarkDistOracle) and end-to-end solves at
// M=1k/10k comparing dense vs CSR-lazy vs landmark (BenchmarkOracleSolve),
// the numbers behind BENCH_6.json's O(M²) → O(KM) memory trajectory.
//
// The M=10k cases are gated behind BENCH_M10K=1 (set by `make bench-json`)
// so the run-everything CI sweep stays affordable; the solve benchmarks
// report "rss-MiB" (process peak RSS, VmHWM — monotone within a run, which
// is why the dense 10k case runs last) and "live-heap-MiB" (post-GC heap,
// the per-variant signal).
package repro_test

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro"
	"repro/internal/distoracle"
	"repro/internal/stats"
	"repro/internal/topology"
)

// peakRSSMiB reads the process high-water RSS (VmHWM) from /proc; 0 on
// platforms without procfs (the metric is simply omitted there).
func peakRSSMiB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			f := strings.Fields(rest)
			if len(f) >= 1 {
				kb, err := strconv.ParseFloat(f[0], 64)
				if err == nil {
					return kb / 1024
				}
			}
		}
	}
	return 0
}

// liveHeapMiB settles the heap and reports live bytes in MiB.
func liveHeapMiB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

func reportMemory(b *testing.B) {
	b.Helper()
	b.ReportMetric(liveHeapMiB(), "live-heap-MiB")
	if rss := peakRSSMiB(); rss > 0 {
		b.ReportMetric(rss, "rss-MiB")
	}
}

// BenchmarkDistOracle measures each oracle's build and query costs on one
// M=2000 sparse graph (power-law, the Inet family) and, for the tree
// oracle, a random recursive tree of the same size.
func BenchmarkDistOracle(b *testing.B) {
	const m = 2000
	r := stats.NewRNG(1)
	g, err := topology.PowerLaw(m, 2, topology.DefaultWeights, r)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := topology.RandomTree(m, topology.DefaultWeights, r)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-drawn query pairs so the RNG stays out of the timed loop.
	pairs := make([][2]int, 4096)
	for i := range pairs {
		pairs[i] = [2]int{r.Intn(m), r.Intn(m)}
	}

	b.Run("build/dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topology.AllPairs(g, 0)
		}
	})
	b.Run("build/csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			distoracle.NewCSRLazy(g, 0)
		}
	})
	b.Run("build/landmark", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := distoracle.NewLandmark(g, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("build/tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := distoracle.NewTree(tree); err != nil {
				b.Fatal(err)
			}
		}
	})

	dense := topology.AllPairs(g, 0)
	csr := distoracle.NewCSRLazy(g, 0)
	lm, err := distoracle.NewLandmark(g, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := distoracle.NewTree(tree)
	if err != nil {
		b.Fatal(err)
	}
	atBench := func(at func(i, j int) int32, qs [][2]int) func(*testing.B) {
		return func(b *testing.B) {
			var sink int32
			for i := 0; i < b.N; i++ {
				p := qs[i&(len(qs)-1)]
				sink += at(p[0], p[1])
			}
			_ = sink
		}
	}
	// The warm CSR case queries sources that fit the row cache (the
	// solver's pattern: hot rows are revisited across re-pricing passes);
	// the first touch of each source pays its Dijkstra before the timer.
	hotPairs := make([][2]int, len(pairs))
	for i := range hotPairs {
		hotPairs[i] = [2]int{pairs[i][0] % 128, pairs[i][1]}
		csr.Row(hotPairs[i][0])
	}
	b.Run("at/dense", atBench(dense.At, pairs))
	b.Run("at/csr-warm", atBench(csr.At, hotPairs))
	b.Run("at/landmark", atBench(lm.At, pairs))
	b.Run("at/tree", atBench(tr.At, pairs))

	b.Run("row/dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = dense.Row(i % m)
		}
	})
	b.Run("row/csr-cold", func(b *testing.B) {
		// A fresh tiny cache every lap: every Row is a Dijkstra.
		cold := distoracle.NewCSRLazy(g, 1)
		for i := 0; i < b.N; i++ {
			_ = cold.Row(i % m)
		}
	})
}

// oracleSolveCases are the BENCH_6.json matrix: dense vs CSR-lazy vs
// landmark at M=1k and M=10k on the same sparse topology family. Order
// matters: RSS is a process high-water mark, so the dense 10k case (whose
// matrix alone is ~381 MiB) runs last to keep the lazy oracles' readings
// honest.
var oracleSolveCases = []struct {
	name  string
	gated bool // only with BENCH_M10K=1
	cfg   repro.InstanceConfig
}{
	{"M1k/dense", false, oracleSolveConfig(1000, "dense")},
	{"M1k/csr", false, oracleSolveConfig(1000, "csr")},
	{"M1k/landmark", false, oracleSolveConfig(1000, "landmark")},
	{"M10k/csr", true, oracleSolveConfig(10000, "csr")},
	{"M10k/landmark", true, oracleSolveConfig(10000, "landmark")},
	{"M10k/dense", true, oracleSolveConfig(10000, "dense")},
}

func oracleSolveConfig(servers int, oracle string) repro.InstanceConfig {
	return repro.InstanceConfig{
		Servers:         servers,
		Objects:         servers + servers/2,
		Requests:        servers * 60,
		RWRatio:         0.9,
		CapacityPercent: 20,
		Topology:        repro.TopologyPowerLaw,
		Oracle:          oracle,
		Landmarks:       64,
		Seed:            42,
	}
}

// BenchmarkOracleSolve times the end-to-end pipeline — instance
// construction (topology, oracle build, workload, capacities) plus one
// incremental AGT-RAM solve — per oracle. Construction stays inside the
// timed loop on purpose: the dense oracle's O(M²) build is exactly the
// cost being eliminated.
func BenchmarkOracleSolve(b *testing.B) {
	for _, c := range oracleSolveCases {
		b.Run(c.name, func(b *testing.B) {
			if c.gated && os.Getenv("BENCH_M10K") == "" {
				b.Skip("M=10k solve benchmarks run with BENCH_M10K=1 (make bench-json)")
			}
			var work int64
			for i := 0; i < b.N; i++ {
				inst, err := repro.NewInstance(c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := inst.Solve(repro.AGTRAM, &repro.Options{Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
				work += res.Work
			}
			b.ReportMetric(float64(work)/float64(b.N), "valuations/op")
			reportMemory(b)
		})
	}
}
