package repro_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro"
)

// Every registered method must honour a context that is already cancelled:
// return context.Canceled before doing a single round, and leave the
// instance reusable.
func TestSolveContextCancelledAllMethods(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range repro.Methods() {
		inst, err := repro.NewInstance(smallConfig(50))
		if err != nil {
			t.Fatal(err)
		}
		res, err := inst.SolveContext(ctx, m, &repro.Options{Seed: 50})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", m, err)
		}
		if res != nil {
			t.Fatalf("%s: got a result alongside the cancellation error", m)
		}
		// The cancelled attempt must not have mutated the problem: the
		// instance solves normally afterwards.
		after, err := inst.SolveContext(context.Background(), m, &repro.Options{Seed: 50})
		if err != nil {
			t.Fatalf("%s: solve after cancelled attempt: %v", m, err)
		}
		if after.SavingsPercent <= 0 {
			t.Fatalf("%s: savings %.2f after cancelled attempt, want > 0", m, after.SavingsPercent)
		}
	}
}

// Conflicting engine selections must fail loudly instead of silently
// preferring one flag over another.
func TestOptionConflicts(t *testing.T) {
	inst, err := repro.NewInstance(smallConfig(51))
	if err != nil {
		t.Fatal(err)
	}
	bad := []repro.Options{
		{Sync: true, Distributed: true},
		{Sync: true, Network: true},
		{Distributed: true, Network: true},
		{Distributed: true, TCPAddr: "127.0.0.1:0"},
		{ExactValuation: true, Distributed: true},
		{ExactValuation: true, Network: true},
		{ExactValuation: true, TCPAddr: "127.0.0.1:0"},
	}
	for i, opts := range bad {
		opts := opts
		if _, err := inst.Solve(repro.AGTRAM, &opts); err == nil {
			t.Fatalf("conflict %d accepted: %+v", i, opts)
		}
	}
	// ExactValuation alone (or with Sync) stays legal.
	if _, err := inst.Solve(repro.AGTRAM, &repro.Options{Sync: true, ExactValuation: true}); err != nil {
		t.Fatalf("Sync+ExactValuation rejected: %v", err)
	}
}

// Engine selections are AGT-RAM-only: the single-engine baselines must
// reject them instead of silently ignoring them.
func TestEngineRejectedForBaselines(t *testing.T) {
	for _, m := range []repro.Method{repro.Greedy, repro.GRA, repro.AeStar, repro.DutchAuction, repro.EnglishAuction, repro.Glauber} {
		inst, err := repro.NewInstance(smallConfig(52))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Solve(m, &repro.Options{Sync: true}); err == nil {
			t.Fatalf("%s accepted the Sync engine selection", m)
		}
	}
}

// RecordEvents and OnEvent must expose the solve's decision stream.
func TestSolveEvents(t *testing.T) {
	inst, err := repro.NewInstance(smallConfig(53))
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	res, err := inst.Solve(repro.AGTRAM, &repro.Options{
		RecordEvents: true,
		OnEvent:      func(repro.Event) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("RecordEvents produced no events")
	}
	if streamed != len(res.Events) {
		t.Fatalf("OnEvent saw %d events, recorder kept %d", streamed, len(res.Events))
	}
	if len(res.Events) != res.Rounds {
		t.Fatalf("%d events for %d rounds", len(res.Events), res.Rounds)
	}
	for i, ev := range res.Events {
		if ev.Round != i+1 {
			t.Fatalf("event %d has round %d, want 1-based sequence", i, ev.Round)
		}
		if ev.Server < 0 || ev.Object < 0 {
			t.Fatalf("event %d missing placement: %+v", i, ev)
		}
	}
	// Without the flags the stream stays off.
	quiet, err := inst.Solve(repro.AGTRAM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(quiet.Events) != 0 {
		t.Fatalf("events recorded without RecordEvents: %d", len(quiet.Events))
	}
}

// The method table is the registry's view: complete, labelled, described.
func TestMethodTable(t *testing.T) {
	table := repro.MethodTable()
	methods := repro.Methods()
	if len(table) != len(methods) {
		t.Fatalf("table has %d rows for %d methods", len(table), len(methods))
	}
	for i, info := range table {
		if info.Method != methods[i] {
			t.Fatalf("row %d is %q, want %q (paper order)", i, info.Method, methods[i])
		}
		if info.Label == "" || info.Description == "" {
			t.Fatalf("%s: missing label or description", info.Method)
		}
		if !repro.KnownMethod(info.Method) {
			t.Fatalf("%s not resolvable through the registry", info.Method)
		}
	}
	if repro.KnownMethod("simulated-annealing") {
		t.Fatal("unregistered method reported as known")
	}
	if got := repro.MethodLabel("nope"); got != "nope" {
		t.Fatalf("unknown label = %q, want pass-through", got)
	}
}

// The README's method table is generated from repro.MethodTable. This test
// regenerates it and compares, so docs and registry cannot drift apart.
func TestReadmeMethodTable(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	s := string(readme)
	begin := strings.Index(s, "<!-- methods:begin")
	end := strings.Index(s, "<!-- methods:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("README.md is missing the methods:begin / methods:end markers")
	}
	block := s[begin:end]
	block = block[strings.Index(block, "-->")+len("-->"):]

	var want strings.Builder
	want.WriteString("\n| Method | `repro.Method` | What it is |\n|---|---|---|\n")
	for _, info := range repro.MethodTable() {
		fmt.Fprintf(&want, "| %s | `%s` | %s |\n", info.Label, info.Method, info.Description)
	}
	if strings.TrimSpace(block) != strings.TrimSpace(want.String()) {
		t.Fatalf("README method table drifted from the registry.\nhave:\n%s\nwant:\n%s", block, want.String())
	}
}
