package routing

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/online"
)

// Source is where a client's epoch stream comes from: the in-process
// controller, or the daemon's GET /epochs endpoint. Subscribe opens a stream
// resuming after version since; the returned cancel func releases it. The
// channel closes when the stream ends — the consumer resubscribes from its
// current version (Follow does this).
type Source interface {
	Subscribe(ctx context.Context, since uint64) (<-chan *online.Update, func(), error)
}

// ControllerSource streams epochs straight from an in-process Controller —
// the zero-copy path for clients embedded in the daemon or in simulations.
type ControllerSource struct {
	Ctrl *online.Controller
	// Buffer sizes the subscription channel (controller default when 0).
	Buffer int
}

// Subscribe opens a controller subscription. The cancel func unsubscribes.
func (s *ControllerSource) Subscribe(ctx context.Context, since uint64) (<-chan *online.Update, func(), error) {
	sub := s.Ctrl.Subscribe(since, s.Buffer)
	return sub.C, func() { s.Ctrl.Unsubscribe(sub) }, nil
}

// HTTPSource streams epochs by long-polling a daemon's GET /epochs endpoint.
// Each poll asks for everything after the client's version and blocks
// server-side up to Wait; 204 means "nothing yet, poll again".
type HTTPSource struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// Client is the HTTP client (http.DefaultClient when nil). Its timeout, if
	// any, must exceed Wait or every poll dies as a timeout.
	Client *http.Client
	// Wait is the server-side long-poll window per request (the server's
	// default when 0).
	Wait time.Duration
}

// Subscribe starts a poll loop feeding a channel. The loop ends — closing the
// channel — on context cancellation, on a terminal update, or on a decode
// error; transient HTTP errors back off and retry. A Client whose Timeout
// does not exceed Wait is rejected up front: such a source can never complete
// a quiet poll — every parked request dies as a client-side timeout and the
// loop degenerates into a silent retry storm.
func (s *HTTPSource) Subscribe(ctx context.Context, since uint64) (<-chan *online.Update, func(), error) {
	if s.Client != nil && s.Client.Timeout > 0 && s.Wait > 0 && s.Client.Timeout <= s.Wait {
		return nil, nil, fmt.Errorf("routing: HTTPSource client timeout %v must exceed long-poll wait %v",
			s.Client.Timeout, s.Wait)
	}
	ctx, cancel := context.WithCancel(ctx)
	ch := make(chan *online.Update, 16)
	go func() {
		defer close(ch)
		cur := since
		backoff := 10 * time.Millisecond
		for ctx.Err() == nil {
			updates, err := s.poll(ctx, cur)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					return
				}
				if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				continue
			}
			backoff = 10 * time.Millisecond
			for _, u := range updates {
				select {
				case ch <- u:
				case <-ctx.Done():
					return
				}
				if u.Terminal {
					return
				}
				cur = u.Version
			}
		}
	}()
	return ch, cancel, nil
}

func (s *HTTPSource) poll(ctx context.Context, since uint64) ([]*online.Update, error) {
	q := url.Values{"since": {strconv.FormatUint(since, 10)}}
	if s.Wait > 0 {
		q.Set("wait", s.Wait.String())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.Base+"/epochs?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	hc := s.Client
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var updates []*online.Update
		if err := json.NewDecoder(resp.Body).Decode(&updates); err != nil {
			return nil, err
		}
		return updates, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("routing: GET /epochs: %s", resp.Status)
	}
}

// Follow drives a Client from a Source until the stream ends for good: it
// subscribes from the client's current version, applies every update, and on
// any recoverable break — a closed stream, a dropped slow subscription, a
// stale diff — resubscribes from wherever the client got to, picking up via
// journal replay or snapshot resync. It returns nil on a terminal update
// (the controller drained) and ctx.Err() on cancellation.
func Follow(ctx context.Context, c *Client, src Source) error {
	for {
		ch, cancel, err := src.Subscribe(ctx, c.Version())
		if err != nil {
			return err
		}
		err = func() error {
			defer cancel()
			for {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case u, ok := <-ch:
					if !ok {
						return errResubscribe
					}
					if u.Terminal {
						return nil
					}
					if err := c.Apply(u); err != nil {
						// A stale or corrupt update: resubscribing from
						// Version() forces a journal replay or snapshot.
						return errResubscribe
					}
				}
			}
		}()
		if err != errResubscribe {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

var errResubscribe = fmt.Errorf("routing: resubscribe")
