package routing

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	_ "repro/internal/agtram" // register the agt-ram solver
	"repro/internal/online"
	"repro/internal/server"
	"repro/internal/testutil"
)

// newController builds a controller over a small deterministic instance.
func newController(t testing.TB, seed int64, cfg online.Config) *online.Controller {
	t.Helper()
	p := testutil.MustBuild(testutil.Small(seed))
	ctrl, err := online.New(p.Cost, p.Work, p.Capacity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// checkBitIdentical compares every (server, object) lookup of the client
// against the controller at the controller's current epoch. The caller must
// have converged the client onto that epoch first.
func checkBitIdentical(t *testing.T, ctrl *online.Controller, c *Client) int {
	t.Helper()
	e := ctrl.Current()
	if v := c.Version(); v != e.Version {
		t.Fatalf("client at version %d, controller at %d", v, e.Version)
	}
	checks := 0
	for i := 0; i < e.Problem.M; i++ {
		for k := int32(0); int(k) < e.Problem.N; k++ {
			want, err := ctrl.Route(i, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Route(i, k)
			if err != nil {
				t.Fatalf("client route(%d,%d): %v", i, k, err)
			}
			if got != want {
				t.Fatalf("route(%d,%d): client %d != controller %d at version %d", i, k, got, want, e.Version)
			}
			checks++
		}
	}
	return checks
}

// follow runs Follow in a goroutine and returns a stop func that cancels it
// and waits for exit.
func follow(t *testing.T, ctrl *online.Controller, c *Client) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Follow(ctx, c, &ControllerSource{Ctrl: ctrl}) }()
	return func() {
		cancel()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("follow: %v", err)
		}
	}
}

func waitFor(t *testing.T, c *Client, v uint64) {
	t.Helper()
	if err := c.WaitVersion(context.Background(), v, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestClientBitIdenticalAcrossTrace is the ISSUE's differential test: a
// client following the epoch stream answers every nearest-replica lookup
// bit-identically to Controller.Route across a trace of demand deltas,
// catalogue growth, membership churn and solves — including a second client
// that joins mid-stream from a stale version and must resync through a
// deliberately tiny journal.
func TestClientBitIdenticalAcrossTrace(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl := newController(t, 7, online.Config{Journal: 2})
	defer ctrl.Close()

	early := NewClient(ctrl.Current().Problem.Cost)
	stopEarly := follow(t, ctrl, early)
	defer stopEarly()

	apply := func(ds ...online.Delta) {
		t.Helper()
		if _, err := ctrl.ApplyDeltas(ds); err != nil {
			t.Fatal(err)
		}
	}
	step := func() {
		t.Helper()
		waitFor(t, early, ctrl.Current().Version)
		checkBitIdentical(t, ctrl, early)
	}

	// Demand shifts, then a solve that actually moves replicas.
	for i := 0; i < 4; i++ {
		apply(online.Delta{Kind: online.KindDemand, Server: i % 16, Object: int32(3 * i % 60), Reads: 4000})
		step()
	}
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	step()

	// A client joining mid-stream: the 2-deep journal cannot replay from
	// version 0, so its first update must be a snapshot resync.
	late := NewClient(ctrl.Current().Problem.Cost)
	stopLate := follow(t, ctrl, late)
	defer stopLate()
	waitFor(t, late, ctrl.Current().Version)
	checkBitIdentical(t, ctrl, late)

	// Catalogue growth and membership churn, both clients tracking.
	apply(online.Delta{Kind: online.KindAddObject, Object: 60, Size: 1, Primary: 2})
	apply(online.Delta{Kind: online.KindDemand, Server: 5, Object: 60, Reads: 9000})
	apply(online.Delta{Kind: online.KindServerLeave, Server: 3})
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	apply(online.Delta{Kind: online.KindServerJoin, Server: 3, Capacity: 1 << 40})
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	step()
	waitFor(t, late, ctrl.Current().Version)
	checkBitIdentical(t, ctrl, late)

	// The early client rode through everything on diffs alone (its journal
	// never outran it); the late one needed at most its initial snapshot.
	if _, resyncs, stales := early.Stats(); resyncs != 0 || stales != 0 {
		t.Fatalf("early client resynced %d / staled %d; want a pure diff ride", resyncs, stales)
	}
}

// TestClientStaleDetection checks Apply's chain validation: an update whose
// diff does not extend the client's version is rejected with ErrStale and
// leaves the table untouched.
func TestClientStaleDetection(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl := newController(t, 8, online.Config{})
	defer ctrl.Close()

	c := NewClient(ctrl.Current().Problem.Cost)
	if _, err := c.Route(0, 0); !errors.Is(err, ErrNotSynced) {
		t.Fatalf("unsynced Route error = %v, want ErrNotSynced", err)
	}
	if err := c.Apply(ctrl.Current().SnapshotUpdate()); err != nil {
		t.Fatal(err)
	}
	v := c.Version()

	// A diff from a version the client is not at.
	bad := &online.Update{Version: v + 5, Diff: &online.Diff{From: v + 4, Servers: 16}}
	if err := c.Apply(bad); !errors.Is(err, ErrStale) {
		t.Fatalf("gap diff error = %v, want ErrStale", err)
	}
	// A corrupt diff that chains correctly but removes an absent replica.
	bad = &online.Update{Version: v + 1, Diff: &online.Diff{
		From: v, Servers: 16,
		Remove: []online.ReplicaRef{{Object: 0, Server: 9}, {Object: 0, Server: 9}},
	}}
	if err := c.Apply(bad); !errors.Is(err, ErrStale) {
		t.Fatalf("corrupt diff error = %v, want ErrStale", err)
	}
	if c.Version() != v {
		t.Fatalf("rejected updates moved the version %d -> %d", v, c.Version())
	}
	if _, _, stales := c.Stats(); stales != 2 {
		t.Fatalf("stales = %d, want 2", stales)
	}
}

// TestFollowResubscribesAfterEviction forces the slow-subscriber path: a
// client whose subscription buffer is one update deep follows a controller
// publishing bursts. Evictions close its stream mid-ride; Follow must
// resubscribe (journal replay or snapshot) until the client converges, and
// the final answers must still be bit-identical.
func TestFollowResubscribesAfterEviction(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl := newController(t, 9, online.Config{Journal: 4})
	defer ctrl.Close()

	c := NewClient(ctrl.Current().Problem.Cost)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Follow(ctx, c, &ControllerSource{Ctrl: ctrl, Buffer: 1}) }()

	for i := 0; i < 40; i++ {
		if _, err := ctrl.ApplyDeltas([]online.Delta{{
			Kind: online.KindDemand, Server: i % 16, Object: int32(i % 60), Reads: int64(100 + i),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, c, ctrl.Current().Version)
	checkBitIdentical(t, ctrl, c)
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
}

// TestFollowStopsOnDrain checks the shutdown handshake: draining the
// controller ends Follow with nil, not an error and not a reconnect loop.
func TestFollowStopsOnDrain(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl := newController(t, 10, online.Config{})
	c := NewClient(ctrl.Current().Problem.Cost)
	done := make(chan error, 1)
	go func() { done <- Follow(context.Background(), c, &ControllerSource{Ctrl: ctrl}) }()
	waitFor(t, c, ctrl.Current().Version)
	ctrl.DrainSubscribers()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Follow after drain = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Follow did not stop on drain")
	}
	ctrl.Close()
}

// Regression: an HTTPSource whose client timeout cannot outlive the long-poll
// window used to start anyway, so every parked poll died as a timeout and the
// loop spun on backoff forever. Subscribe now rejects the configuration.
func TestHTTPSourceTimeoutVsWait(t *testing.T) {
	testutil.LeakCheck(t)
	ctx := context.Background()
	bad := []*HTTPSource{
		{Base: "http://127.0.0.1:1", Client: &http.Client{Timeout: time.Second}, Wait: time.Second},
		{Base: "http://127.0.0.1:1", Client: &http.Client{Timeout: 100 * time.Millisecond}, Wait: time.Second},
	}
	for _, s := range bad {
		if _, _, err := s.Subscribe(ctx, 0); err == nil {
			t.Fatalf("timeout %v <= wait %v accepted", s.Client.Timeout, s.Wait)
		}
	}
	// Timeout comfortably above Wait — or unset on either side — is fine.
	ok := []*HTTPSource{
		{Base: "http://127.0.0.1:1", Client: &http.Client{Timeout: 2 * time.Second}, Wait: time.Second},
		{Base: "http://127.0.0.1:1", Client: &http.Client{Timeout: time.Second}},
		{Base: "http://127.0.0.1:1", Wait: time.Second},
	}
	for _, s := range ok {
		ch, cancel, err := s.Subscribe(ctx, 0)
		if err != nil {
			t.Fatalf("valid source rejected: %v", err)
		}
		cancel()
		for range ch {
		}
	}
}

// TestHTTPSourceEndToEnd follows a real daemon over the long-poll transport:
// the client converges through GET /epochs, stays bit-identical through
// deltas and a solve, and ends cleanly when the server drains.
func TestHTTPSourceEndToEnd(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl := newController(t, 11, online.Config{})
	srv := server.New(ctrl)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := NewClient(ctrl.Current().Problem.Cost)
	done := make(chan error, 1)
	go func() {
		done <- Follow(context.Background(), c, &HTTPSource{Base: ts.URL, Wait: 250 * time.Millisecond})
	}()

	for i := 0; i < 5; i++ {
		if _, err := ctrl.ApplyDeltas([]online.Delta{{
			Kind: online.KindDemand, Server: (2 * i) % 16, Object: int32((7 * i) % 60), Reads: 3000,
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, c, ctrl.Current().Version)
	checkBitIdentical(t, ctrl, c)

	srv.Drain()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Follow after server drain = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Follow did not stop when the server drained")
	}
	ctrl.Close()
}
