// Package routing is the client side of the epoch-based placement plane:
// a library that subscribes to the online controller's epoch stream —
// in-process or over the daemon's GET /epochs endpoint — keeps a local copy
// of the replica sets, and answers nearest-replica lookups with zero server
// round-trips.
//
// The replication-game literature on selfish caching assumes every client
// can evaluate its own nearest-replica access cost locally; this package is
// exactly that capability for the reproduced mechanism. A synced Client
// answers Route bit-identically to the server's Controller.Route, because
// both sides evaluate the same pure function (replication.Nearest) over the
// same replica sets and the same cost oracle — the epoch stream replicates
// the sets, the deployment shares the oracle (the daemon and its clients are
// built from the same topology).
//
// Consistency contract: a Client is eventually consistent with the
// controller, trailing it by the delivery latency of the epoch stream.
// Within one epoch its answers are exact. A client that falls behind the
// controller's bounded journal — or receives an update that does not chain
// onto its version (ErrStale) — resynchronizes with a full snapshot; Follow
// automates the resubscribe/resync loop.
package routing

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/online"
	"repro/internal/replication"
)

// ErrNotSynced is returned by Route before the client has applied its first
// snapshot or while it awaits a resync.
var ErrNotSynced = errors.New("routing: client has no placement epoch yet")

// ErrStale reports an update that does not chain onto the client's current
// version (a gap in the stream or a corrupted diff). The caller should
// resubscribe from Version(); Follow does this automatically.
var ErrStale = errors.New("routing: update does not chain onto the client's epoch")

// table is one immutable client-side placement generation: the replica sets
// of every object at one epoch version. Route loads it with a single atomic
// pointer read — the controller's RCU discipline, replicated client-side.
type table struct {
	version  uint64
	servers  int
	replicas [][]int32 // per object, sorted ascending, primary included
}

// Client is a client-side router over the epoch stream.
type Client struct {
	cost  replication.CostFn
	state atomic.Pointer[table]

	updates atomic.Int64 // diffs applied
	resyncs atomic.Int64 // snapshots applied after the first
	stales  atomic.Int64 // updates rejected as stale
}

// NewClient builds an unsynced client over the deployment's cost oracle.
// The oracle must be the same metric the controller routes with; the epoch
// stream carries replica sets only, never distances.
func NewClient(cost replication.CostFn) *Client {
	return &Client{cost: cost}
}

// Version reports the epoch version the client has applied, 0 before sync.
func (c *Client) Version() uint64 {
	if t := c.state.Load(); t != nil {
		return t.version
	}
	return 0
}

// Synced reports whether the client holds a placement epoch.
func (c *Client) Synced() bool { return c.state.Load() != nil }

// Stats reports the client's stream accounting: diffs applied, snapshot
// resyncs beyond the initial one, and updates rejected as stale.
func (c *Client) Stats() (updates, resyncs, stales int64) {
	return c.updates.Load(), c.resyncs.Load(), c.stales.Load()
}

// Route answers "which server does server i read object k from" against the
// client's local replica sets — no locks, no I/O, bit-identical to the
// controller's answer at the same epoch version.
func (c *Client) Route(server int, object int32) (int32, error) {
	t := c.state.Load()
	if t == nil {
		return 0, ErrNotSynced
	}
	if server < 0 || server >= t.servers {
		return 0, fmt.Errorf("routing: server %d outside [0,%d)", server, t.servers)
	}
	if object < 0 || int(object) >= len(t.replicas) {
		return 0, fmt.Errorf("routing: object %d outside [0,%d)", object, len(t.replicas))
	}
	return replication.Nearest(c.cost, t.replicas[object], server), nil
}

// Apply folds one stream element into the client's state. Terminal updates
// are a no-op (the caller decides to stop). Snapshots replace the state;
// diffs must chain exactly onto the current version or Apply returns
// ErrStale and leaves the state untouched.
func (c *Client) Apply(u *online.Update) error {
	switch {
	case u.Terminal:
		return nil
	case u.Snapshot != nil:
		if err := u.Snapshot.Validate(); err != nil {
			return err
		}
		if c.state.Load() != nil {
			c.resyncs.Add(1)
		}
		c.state.Store(tableFromSnapshot(u.Version, u.Snapshot))
		return nil
	case u.Diff != nil:
		cur := c.state.Load()
		if cur == nil || cur.version != u.Diff.From || u.Version != u.Diff.From+1 {
			c.stales.Add(1)
			return ErrStale
		}
		next, err := cur.applyDiff(u.Version, u.Diff)
		if err != nil {
			c.stales.Add(1)
			return errors.Join(ErrStale, err)
		}
		c.state.Store(next)
		c.updates.Add(1)
		return nil
	default:
		return fmt.Errorf("routing: update %d carries neither snapshot nor diff", u.Version)
	}
}

func tableFromSnapshot(version uint64, ps *online.PlacementSnapshot) *table {
	t := &table{version: version, servers: ps.Servers, replicas: make([][]int32, ps.Objects)}
	for k := 0; k < ps.Objects; k++ {
		t.replicas[k] = append([]int32(nil), ps.ReplicaSet(k)...)
	}
	return t
}

// applyDiff produces the next table copy-on-write: untouched objects share
// their replica slices with the previous generation (they are immutable),
// touched objects get fresh sorted copies. Concurrent Route calls keep
// reading the old table until the atomic swap.
func (t *table) applyDiff(version uint64, d *online.Diff) (*table, error) {
	if d.Servers < t.servers {
		return nil, fmt.Errorf("routing: diff shrinks the system %d -> %d", t.servers, d.Servers)
	}
	nr := make([][]int32, len(t.replicas), len(t.replicas)+len(d.NewObjects))
	copy(nr, t.replicas)
	for _, om := range d.NewObjects {
		if int(om.Object) != len(nr) {
			return nil, fmt.Errorf("routing: new object %d out of order (have %d objects)", om.Object, len(nr))
		}
		nr = append(nr, []int32{om.Primary})
	}
	touched := make(map[int32]bool, len(d.Place)+len(d.Remove))
	mutable := func(k int32) ([]int32, error) {
		if k < 0 || int(k) >= len(nr) {
			return nil, fmt.Errorf("routing: diff references object %d outside [0,%d)", k, len(nr))
		}
		if !touched[k] {
			nr[k] = append([]int32(nil), nr[k]...)
			touched[k] = true
		}
		return nr[k], nil
	}
	for _, ref := range d.Remove {
		r, err := mutable(ref.Object)
		if err != nil {
			return nil, err
		}
		idx := searchInt32(r, ref.Server)
		if idx == len(r) || r[idx] != ref.Server {
			return nil, fmt.Errorf("routing: diff removes absent replica (%d on %d)", ref.Object, ref.Server)
		}
		nr[ref.Object] = append(r[:idx], r[idx+1:]...)
	}
	for _, ref := range d.Place {
		r, err := mutable(ref.Object)
		if err != nil {
			return nil, err
		}
		idx := searchInt32(r, ref.Server)
		if idx < len(r) && r[idx] == ref.Server {
			return nil, fmt.Errorf("routing: diff places duplicate replica (%d on %d)", ref.Object, ref.Server)
		}
		r = append(r, 0)
		copy(r[idx+1:], r[idx:])
		r[idx] = ref.Server
		nr[ref.Object] = r
	}
	for k := range touched {
		if len(nr[k]) == 0 {
			return nil, fmt.Errorf("routing: diff leaves object %d with no replicas", k)
		}
	}
	return &table{version: version, servers: d.Servers, replicas: nr}, nil
}

// searchInt32 is sort.SearchInt32s for the replica slices.
func searchInt32(r []int32, x int32) int {
	lo, hi := 0, len(r)
	for lo < hi {
		mid := (lo + hi) / 2
		if r[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WaitVersion blocks until the client has applied version v or later, the
// context ends, or the deadline d elapses (d <= 0 means context-only).
// Tests and replay harnesses use it to line clients up with the controller
// before comparing answers.
func (c *Client) WaitVersion(ctx context.Context, v uint64, d time.Duration) error {
	var deadline <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		deadline = t.C
	}
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
	for {
		if c.Version() >= v {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-deadline:
			return fmt.Errorf("routing: client stuck at version %d waiting for %d", c.Version(), v)
		case <-tick.C:
		}
	}
}
