// Package solver defines the common interface every placement method in
// this repository implements, and the registry that maps method names to
// implementations.
//
// A method package (agtram, greedy, genetic, astar, auction) registers an
// adapter from an init function; the public facade (package repro) looks the
// method up by name and calls Solve with a context. The registry is what
// makes adding a method — or a new engine behind an existing method — a
// single registration instead of a cross-cutting edit of the facade, the
// bench harness and both commands.
//
// The contract every registered solver honours:
//
//   - Solve works on a fresh Schema derived from p; the caller's Problem is
//     never mutated, even on error or cancellation.
//   - Cancellation is checked at least once per round / generation /
//     expansion / clock tick. On cancellation the solver returns
//     ctx.Err() wrapped with its package name ("agtram: context canceled")
//     and tears down every goroutine, listener and connection it started.
//   - A solve with an already-cancelled context returns before completing
//     a single round.
package solver

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/faultnet"
	"repro/internal/replication"
)

// Options carries the method-independent knobs the facade exposes. A solver
// reads what applies to it and ignores the rest (the bench harness passes
// one Options to every method).
type Options struct {
	// Workers bounds parallelism inside the solver; 0 means GOMAXPROCS.
	Workers int
	// Seed seeds any randomized search (genetic). Deterministic solvers
	// ignore it.
	Seed int64
	// Engine selects an execution engine for methods that have more than
	// one (AGT-RAM: incremental, sync, distributed, network, tcp). Empty
	// means the method's default. Methods with a single engine reject
	// non-empty values they don't recognise.
	Engine string
	// TCPAddr is the listen address for the AGT-RAM tcp engine
	// (host:port; port 0 picks a free port).
	TCPAddr string
	// FirstPrice switches AGT-RAM to first-price payments (an ablation;
	// the paper's mechanism is second-price).
	FirstPrice bool
	// ExactValuation switches AGT-RAM agents to the exact global OTC
	// delta instead of the paper's local CoR estimate.
	ExactValuation bool
	// GRAGenerations bounds the genetic method's generations; 0 means the
	// method default.
	GRAGenerations int
	// GlauberSweeps bounds the Glauber chain's annealing sweeps; 0 means
	// the method default.
	GlauberSweeps int
	// RoundTimeout bounds each per-agent read/write in the AGT-RAM wire
	// engines (network, tcp); an agent that misses a deadline is evicted.
	// Zero means no deadline. Rejected by other methods and engines.
	RoundTimeout time.Duration
	// Faults injects deterministic faults into the AGT-RAM wire engines'
	// links (nil = none). Rejected by other methods and engines.
	Faults *faultnet.Config
	// Warm, when non-nil, seeds the solve with an existing placement —
	// per-object replica server lists, the form Schema.Matrix returns —
	// instead of the primary-only start. Entries that are infeasible
	// against p (capacity shrank, server left) are silently dropped before
	// the solve. Supported by agt-ram's incremental engine, which continues
	// the auction from the carried placement; agt-ram rejects it on other
	// engines and methods without a warm path ignore it (they solve cold).
	Warm [][]int32
	// OnEvent, when non-nil, is invoked synchronously for every placement
	// the solver commits — and every eviction, for solvers that evict —
	// in commit order.
	OnEvent func(Event)
	// RecordEvents appends every placement to Outcome.Events.
	RecordEvents bool
}

// Event is one committed placement decision: round-by-round for AGT-RAM,
// placement-by-placement for the baselines (Round then counts passes,
// generations or expansions, as documented per method).
type Event struct {
	// Round is the 1-based round (AGT-RAM), pass (auctions), generation
	// (genetic) or expansion count (Aε-Star) at which the placement
	// committed.
	Round int
	// Object is the object replicated.
	Object int32
	// Server is the server that received the replica.
	Server int32
	// Value is the winning valuation/benefit/bid in OTC units.
	Value int64
	// Payment is the mechanism's payment to the winner (AGT-RAM only;
	// zero for the baselines).
	Payment int64
	// Evicted marks an eviction event rather than a placement: Server is
	// the evicted agent, Round the round it was removed in (0 = before the
	// game started), Object is -1, Value and Payment are zero.
	Evicted bool
}

// Outcome is the shared result type every solver returns.
type Outcome struct {
	// Schema is the solved placement.
	Schema *replication.Schema
	// Replicas is the number of replicas placed beyond the primaries.
	Replicas int
	// Work counts the method's dominant operation: valuations (AGT-RAM),
	// benefit evaluations (greedy, GRA), node expansions (Aε-Star) or
	// price polls (auctions).
	Work int64
	// Rounds counts mechanism rounds (AGT-RAM), passes (auctions) or
	// generations (genetic); zero for single-sweep methods.
	Rounds int
	// Payments holds the per-server mechanism payments (AGT-RAM only).
	Payments []int64
	// Events is the placement stream, populated when
	// Options.RecordEvents is set.
	Events []Event
	// Evictions lists the agents the AGT-RAM wire engines removed from
	// the game (timeouts, broken links, failed dials), in eviction order;
	// empty for every other method and for fault-free runs.
	Evictions []Eviction
}

// Eviction records one agent's removal from a distributed game: the
// mechanism timed the agent out or lost its connection and continued with
// the remaining bidders.
type Eviction struct {
	// Agent is the evicted server.
	Agent int
	// Round is the 1-based round during which the agent was evicted;
	// 0 means before the game started (dial failure or handshake timeout).
	Round int
	// Reason describes the fault, for diagnostics.
	Reason string
}

// Emit forwards ev to opts.OnEvent and records it when opts.RecordEvents is
// set. Solvers call it once per committed placement.
func (o *Outcome) Emit(opts Options, ev Event) {
	if opts.OnEvent != nil {
		opts.OnEvent(ev)
	}
	if opts.RecordEvents {
		o.Events = append(o.Events, ev)
	}
}

// Solver is one placement method.
type Solver interface {
	// Name is the registry key ("agt-ram", "greedy", ...).
	Name() string
	// Solve computes a placement for p. It must honour the package
	// contract: fresh schema, ctx checked every round, full teardown on
	// cancellation.
	Solve(ctx context.Context, p *replication.Problem, opts Options) (*Outcome, error)
}

// Info is optionally implemented by registered solvers to describe
// themselves; the README method table and cmd/agtram -all use it.
type Info interface {
	// Label is the short human name used in tables ("AGT-RAM", "GRA").
	Label() string
	// Description is a one-line summary of the method.
	Description() string
}

var (
	mu       sync.RWMutex
	registry = map[string]Solver{}
)

// Register adds s under s.Name(). It panics on a duplicate name: method
// packages register from init, and two packages claiming one name is a
// programming error.
func Register(s Solver) {
	mu.Lock()
	defer mu.Unlock()
	name := s.Name()
	if name == "" {
		panic("solver: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("solver: duplicate Register(%q)", name))
	}
	registry[name] = s
}

// Lookup returns the solver registered under name.
func Lookup(name string) (Solver, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns every registered method name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
