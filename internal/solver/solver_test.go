package solver

import (
	"context"
	"testing"

	"repro/internal/replication"
)

type fake struct{ name string }

func (f fake) Name() string { return f.name }
func (f fake) Solve(context.Context, *replication.Problem, Options) (*Outcome, error) {
	return &Outcome{}, nil
}

func TestRegistry(t *testing.T) {
	Register(fake{name: "zz-test-b"})
	Register(fake{name: "zz-test-a"})
	if _, ok := Lookup("zz-test-a"); !ok {
		t.Fatal("registered solver not found")
	}
	if _, ok := Lookup("zz-missing"); ok {
		t.Fatal("lookup invented a solver")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted and unique: %v", names)
		}
	}
	for _, p := range []Solver{fake{name: "zz-test-a"}, fake{name: ""}} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%q) did not panic", p.Name())
				}
			}()
			Register(p)
		}()
	}
}

func TestOutcomeEmit(t *testing.T) {
	var seen []Event
	opts := Options{OnEvent: func(e Event) { seen = append(seen, e) }, RecordEvents: true}
	out := &Outcome{}
	out.Emit(opts, Event{Round: 1, Object: 2, Server: 3, Value: 4})
	if len(out.Events) != 1 || len(seen) != 1 {
		t.Fatalf("emit lost events: recorded %d, streamed %d", len(out.Events), len(seen))
	}
	// Neither sink enabled: Emit is a no-op.
	quiet := &Outcome{}
	quiet.Emit(Options{}, Event{Round: 1})
	if len(quiet.Events) != 0 {
		t.Fatal("event recorded without RecordEvents")
	}
}
