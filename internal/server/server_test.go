package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	_ "repro/internal/agtram" // register the agt-ram solver
	"repro/internal/online"
	"repro/internal/testutil"
	"repro/internal/trace"
)

func newTestServer(t testing.TB, seed int64, cfg online.Config) (*online.Controller, *httptest.Server) {
	t.Helper()
	p := testutil.MustBuild(testutil.Small(seed))
	ctrl, err := online.New(p.Cost, p.Work, p.Capacity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(ctrl))
	t.Cleanup(ts.Close)
	return ctrl, ts
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func TestRouteEndpoint(t *testing.T) {
	ctrl, ts := newTestServer(t, 1, online.Config{})
	var out struct {
		Server   int   `json:"server"`
		Object   int32 `json:"object"`
		ReadFrom int32 `json:"read_from"`
	}
	resp := getJSON(t, ts.URL+"/route?server=3&object=7", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want, err := ctrl.Route(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.ReadFrom != want {
		t.Fatalf("read_from %d != controller answer %d", out.ReadFrom, want)
	}

	for _, bad := range []string{
		"/route?server=3",             // missing object
		"/route?server=x&object=1",    // non-numeric
		"/route?server=3&object=1e9",  // not an int
		"/route?server=-1&object=1",   // negative is parsed, then 404s
		"/route?server=999&object=1",  // out of range
		"/route?server=3&object=9999", // object out of range
	} {
		resp := getJSON(t, ts.URL+bad, nil)
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 400/404", bad, resp.StatusCode)
		}
	}
}

func TestPlacementAndHealthz(t *testing.T) {
	ctrl, ts := newTestServer(t, 2, online.Config{})
	var rep struct {
		Servers int   `json:"servers"`
		OTC     int64 `json:"otc"`
	}
	if resp := getJSON(t, ts.URL+"/placement", &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("placement status %d", resp.StatusCode)
	}
	if got := ctrl.Placement(); rep.Servers != got.Servers || rep.OTC != got.OTC {
		t.Fatalf("placement over HTTP %+v != controller %+v", rep, got)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestDeltasJSONAndSolve(t *testing.T) {
	ctrl, ts := newTestServer(t, 3, online.Config{})
	body := `[{"kind":"demand","server":1,"object":4,"reads":9000},
	          {"kind":"demand","server":2,"object":4,"reads":9000}]`
	resp, err := http.Post(ts.URL+"/deltas", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var applied online.Applied
	if err := json.NewDecoder(resp.Body).Decode(&applied); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || applied.Applied != 2 {
		t.Fatalf("status %d applied %+v", resp.StatusCode, applied)
	}

	resp, err = http.Post(ts.URL+"/solve", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	if m := ctrl.Metrics(); m.SolvesRun != 1 || m.Replicas == 0 {
		t.Fatalf("solve did not land: %+v", m)
	}

	// Batch atomicity over HTTP: one bad delta rejects the whole batch.
	before := ctrl.Metrics().Version
	resp, err = http.Post(ts.URL+"/deltas", "application/json",
		strings.NewReader(`[{"kind":"demand","server":0,"object":0,"reads":1},{"kind":"nope"}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch status %d, want 400", resp.StatusCode)
	}
	if got := ctrl.Metrics().Version; got != before {
		t.Fatalf("rejected batch advanced the version %d -> %d", before, got)
	}
}

// validTraceLog builds a tiny valid trace whose objects fit the test
// instance.
func validTraceLog() *trace.Log {
	return &trace.Log{
		Objects: 10, Clients: 4,
		ObjectSizes: []int32{1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		Events: []trace.Event{
			{Time: 0, Client: 0, Object: 3, Size: 1},
			{Time: 1, Client: 1, Object: 3, Size: 1, Write: true},
			{Time: 2, Client: 2, Object: 7, Size: 1},
		},
	}
}

// validTraceBytes renders the log as a WCTR binary stream.
func validTraceBytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := validTraceLog().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validCLFBytes renders the log in the repo's CLF text form.
func validCLFBytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := validTraceLog().WriteCLF(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDeltasTraceFormats(t *testing.T) {
	ctrl, ts := newTestServer(t, 4, online.Config{})
	resp, err := http.Post(ts.URL+"/deltas", "application/octet-stream",
		bytes.NewReader(validTraceBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	var applied online.Applied
	if err := json.NewDecoder(resp.Body).Decode(&applied); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || applied.Applied == 0 {
		t.Fatalf("binary trace: status %d applied %+v", resp.StatusCode, applied)
	}
	if ctrl.Metrics().DeltasApplied == 0 {
		t.Fatal("trace batch did not reach the controller")
	}

	// CLF text form.
	resp, err = http.Post(ts.URL+"/deltas?format=clf", "text/plain", bytes.NewReader(validCLFBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clf trace: status %d", resp.StatusCode)
	}

	// Unknown format.
	resp, err = http.Post(ts.URL+"/deltas?format=yaml", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 5, online.Config{})
	for i := 0; i < 5; i++ {
		getJSON(t, fmt.Sprintf("%s/route?server=%d&object=%d", ts.URL, i, i), nil)
	}
	var m struct {
		RoutesServed int64 `json:"routes_served"`
		Latency      struct {
			N int `json:"N"`
		} `json:"route_latency_us"`
		Controller online.Metrics `json:"controller"`
	}
	if resp := getJSON(t, ts.URL+"/metrics", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if m.RoutesServed != 5 || m.Controller.Version == 0 {
		t.Fatalf("metrics content: %+v", m)
	}
}

// FuzzDeltasDecoder throws arbitrary bytes at POST /deltas in all three
// encodings: the only acceptable outcomes are 200 and 400 — never a panic,
// never a partial state change on 400.
func FuzzDeltasDecoder(f *testing.F) {
	p := testutil.MustBuild(testutil.Small(6))
	ctrl, err := online.New(p.Cost, p.Work, p.Capacity, online.Config{})
	if err != nil {
		f.Fatal(err)
	}
	srv := New(ctrl)

	f.Add([]byte(`[{"kind":"demand","server":1,"object":2,"reads":10}]`), uint8(0))
	f.Add([]byte(`[]`), uint8(0))
	f.Add([]byte(`[{"kind":"server-leave","server":1}]`), uint8(0))
	f.Add([]byte(`{"kind":"demand"}`), uint8(0)) // object, not array
	f.Add([]byte(`[{"kind":"demand"}] trailing`), uint8(0))
	f.Add(validTraceBytes(f), uint8(1))
	f.Add([]byte("WCTR\x00\x00\x00\x00"), uint8(1))
	f.Add(validCLFBytes(f), uint8(2))
	f.Add([]byte("not a log line\n"), uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		url := "/deltas"
		ct := "application/json"
		switch mode % 3 {
		case 1:
			url, ct = "/deltas?format=trace", "application/octet-stream"
		case 2:
			url, ct = "/deltas?format=clf", "text/plain"
		}
		before := ctrl.Metrics()
		req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(data))
		req.Header.Set("Content-Type", ct)
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusOK:
		case http.StatusBadRequest:
			if after := ctrl.Metrics(); after.Version != before.Version {
				t.Fatalf("400 response advanced the version %d -> %d", before.Version, after.Version)
			}
		default:
			t.Fatalf("status %d, want 200 or 400 (body %q)", rr.Code, rr.Body.String())
		}
	})
}
