// Package server exposes the online controller over HTTP: lock-free routing
// on the hot path (single lookups zero-alloc, batches against one epoch),
// the epoch stream (long-poll and SSE) behind GET /epochs, batched workload
// deltas (JSON or trace streams), forced solves, versioned placement
// snapshots with ETag validation, and metrics. The handler is plain net/http.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/online"
	"repro/internal/stats"
	"repro/internal/trace"
)

// maxBody bounds delta payloads (JSON batches and trace streams) and batch
// route requests.
const maxBody = 32 << 20

// ringSize is the route-latency reservoir: the last ringSize observations,
// overwritten in arrival order. Power of two so the modulo is a mask.
const ringSize = 4096

// Backend is the controller surface the HTTP facade serves. The online
// controller implements it directly (the single-daemon case); the cluster
// coordinator wraps one to intercept delta batches (cross-shard forwarding)
// and solves (fan-out to regional games followed by the top-level merge)
// while serving routes and the epoch stream from its merged mirror.
type Backend interface {
	Current() *online.Epoch
	Route(server int, object int32) (int32, error)
	ApplyDeltas(ds []online.Delta) (online.Applied, error)
	SolveNow(ctx context.Context) error
	Metrics() online.Metrics
	Subscribe(since uint64, buf int) *online.Subscription
	Unsubscribe(sub *online.Subscription)
	DrainSubscribers()
}

// Server is the HTTP facade over one backend.
type Server struct {
	ctrl  Backend
	mux   *http.ServeMux
	start time.Time

	routes     atomic.Int64 // routes served (batch pairs each count)
	routeNanos [ringSize]atomic.Int64
}

// New wires the handler set for b.
func New(b Backend) *Server {
	s := &Server{ctrl: b, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /route", s.handleRoute)
	s.mux.HandleFunc("POST /route", s.handleRouteBatch)
	s.mux.HandleFunc("GET /epochs", s.handleEpochs)
	s.mux.HandleFunc("GET /placement", s.handlePlacement)
	s.mux.HandleFunc("POST /deltas", s.handleDeltas)
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Extend registers an additional handler on the server's mux — the cluster
// roles add their GET /cluster status endpoint this way. Patterns follow
// net/http mux syntax ("GET /cluster"); registration must happen before the
// server starts taking requests.
func (s *Server) Extend(pattern string, h http.HandlerFunc) { s.mux.HandleFunc(pattern, h) }

// Drain ends every epoch subscription with a terminal event and refuses new
// ones, so in-flight long-poll and SSE handlers return promptly. The daemon
// calls it before http.Server.Shutdown: Shutdown waits for idle connections,
// and a subscriber parked on the stream is never idle until its stream ends.
func (s *Server) Drain() { s.ctrl.DrainSubscribers() }

// jsonCT is the shared Content-Type header value for the zero-alloc route
// path: assigning a package-level slice into the header map allocates
// nothing per request.
var jsonCT = []string{"application/json"}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header()["Content-Type"] = jsonCT
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

var errRouteParams = errors.New("missing server= or object= query parameter")

// parseRouteQuery pulls server= and object= out of a raw query string
// without url.ParseQuery's per-request map. Values are decimal integers, so
// no unescaping is needed; unknown keys are ignored.
func parseRouteQuery(raw string) (server int, object int64, err error) {
	var haveS, haveO bool
	for raw != "" {
		var kv string
		kv, raw, _ = strings.Cut(raw, "&")
		k, v, _ := strings.Cut(kv, "=")
		switch k {
		case "server":
			if server, err = strconv.Atoi(v); err != nil {
				return 0, 0, fmt.Errorf("bad server: %w", err)
			}
			haveS = true
		case "object":
			if object, err = strconv.ParseInt(v, 10, 32); err != nil {
				return 0, 0, fmt.Errorf("bad object: %w", err)
			}
			haveO = true
		}
	}
	if !haveS || !haveO {
		return 0, 0, errRouteParams
	}
	return server, object, nil
}

// routeBufs recycles the small response buffers of the single-route path.
var routeBufs = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// handleRoute answers "which server does server i read object k from". It
// reads one atomic pointer and allocates nothing on the happy path: the
// query is scanned in place, the response body is built in a pooled buffer
// with strconv, and the Content-Type header value is shared
// (TestRouteHandlerZeroAlloc pins this at 0 allocs/op).
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	srv, obj, err := parseRouteQuery(r.URL.RawQuery)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	from, err := s.ctrl.Route(srv, int32(obj))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	bp := routeBufs.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, `{"server":`...)
	b = strconv.AppendInt(b, int64(srv), 10)
	b = append(b, `,"object":`...)
	b = strconv.AppendInt(b, obj, 10)
	b = append(b, `,"read_from":`...)
	b = strconv.AppendInt(b, int64(from), 10)
	b = append(b, '}', '\n')
	w.Header()["Content-Type"] = jsonCT
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
	*bp = b
	routeBufs.Put(bp)
	n := s.routes.Add(1)
	s.routeNanos[(n-1)&(ringSize-1)].Store(time.Since(t0).Nanoseconds())
}

// RoutePair is one lookup in a batch route request.
type RoutePair struct {
	Server int   `json:"server"`
	Object int32 `json:"object"`
}

// handleRouteBatch routes a JSON array of pairs in one request, every pair
// against the same epoch — a concurrent placement swap cannot tear the
// batch, and the response names the epoch version the answers belong to.
// Any invalid pair fails the whole batch.
func (s *Server) handleRouteBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var pairs []RoutePair
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&pairs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode batch: %w", err))
		return
	}
	e := s.ctrl.Current()
	out := make([]int32, len(pairs))
	for i, p := range pairs {
		from, err := e.Route(p.Server, p.Object)
		if err != nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("pair %d: %w", i, err))
			return
		}
		out[i] = from
	}
	writeJSON(w, http.StatusOK, map[string]any{"version": e.Version, "read_from": out})
	n := s.routes.Add(int64(len(pairs)))
	s.routeNanos[(n-1)&(ringSize-1)].Store(time.Since(t0).Nanoseconds())
}

// handlePlacement serves the live placement with version validation: the
// response carries ETag "<version>" and X-Epoch-Version from a single epoch
// read (report and version can never disagree), and If-None-Match answers
// 304 when the caller's placement is still current.
func (s *Server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	e := s.ctrl.Current()
	ver := strconv.FormatUint(e.Version, 10)
	etag := `"` + ver + `"`
	h := w.Header()
	h.Set("Etag", etag)
	h.Set("X-Epoch-Version", ver)
	if match := r.Header.Get("If-None-Match"); match == etag || match == "*" {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, e.Schema.Report())
}

// handleDeltas applies one atomic batch. Three encodings:
//
//   - JSON (default): a single JSON array of delta objects.
//   - binary trace ("WCTR"): Content-Type application/octet-stream or
//     ?format=trace — a trace.WriteBinary stream, aggregated into demand
//     deltas with the client-mod-M mapping.
//   - CLF: ?format=clf — a Common-Log-Format trace, same aggregation.
//
// Malformed input of any encoding is a 400; the controller state is never
// partially updated.
func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBody)
	ds, err := s.decodeDeltas(body, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.ctrl.ApplyDeltas(ds)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) decodeDeltas(body io.Reader, r *http.Request) ([]online.Delta, error) {
	format := r.URL.Query().Get("format")
	if format == "" {
		ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
		if ct == "application/octet-stream" {
			format = "trace"
		}
	}
	switch format {
	case "trace", "clf":
		var (
			l   *trace.Log
			err error
		)
		if format == "trace" {
			l, err = trace.ReadBinary(body)
		} else {
			l, err = trace.ReadCLF(body)
		}
		if err != nil {
			return nil, fmt.Errorf("decode %s stream: %w", format, err)
		}
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("invalid trace: %w", err)
		}
		return online.DeltasFromEvents(l.Events, nil, s.ctrl.Current().Problem.M)
	case "", "json":
		dec := json.NewDecoder(body)
		var ds []online.Delta
		if err := dec.Decode(&ds); err != nil {
			return nil, fmt.Errorf("decode JSON deltas: %w", err)
		}
		if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
			return nil, errors.New("trailing data after delta array")
		}
		return ds, nil
	default:
		return nil, fmt.Errorf("unknown format %q (want json|trace|clf)", format)
	}
}

// handleSolve forces a re-solve regardless of drift, synchronously.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if err := s.ctrl.SolveNow(r.Context()); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	m := s.ctrl.Metrics()
	writeJSON(w, http.StatusOK, map[string]any{
		"version": m.Version, "otc": m.OTC, "savings_percent": m.Savings,
		"replicas": m.Replicas, "solves_run": m.SolvesRun,
	})
}

// routeLatency summarizes the reservoir in microseconds.
func (s *Server) routeLatency() stats.Summary {
	n := s.routes.Load()
	if n > ringSize {
		n = ringSize
	}
	xs := make([]float64, 0, n)
	for i := int64(0); i < n; i++ {
		xs = append(xs, float64(s.routeNanos[i].Load())/1e3)
	}
	return stats.Summarize(xs)
}

// handleMetrics reports controller and server counters. The controller
// metrics come from one snapshot read, so the reported epoch version and
// placement economics always belong to the same epoch; X-Epoch-Version
// mirrors the body for scrapers that only look at headers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.ctrl.Metrics()
	w.Header().Set("X-Epoch-Version", strconv.FormatUint(m.Version, 10))
	writeJSON(w, http.StatusOK, map[string]any{
		"controller":       m,
		"epoch_version":    m.Version,
		"routes_served":    s.routes.Load(),
		"route_latency_us": s.routeLatency(),
		"uptime_seconds":   time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
