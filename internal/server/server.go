// Package server exposes the online controller over HTTP: lock-free routing
// on the hot path, batched workload deltas (JSON or trace streams), forced
// solves, placement snapshots and metrics. The handler is plain net/http
// with no per-request allocation on /route beyond the response itself.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/online"
	"repro/internal/stats"
	"repro/internal/trace"
)

// maxBody bounds delta payloads (JSON batches and trace streams).
const maxBody = 32 << 20

// ringSize is the route-latency reservoir: the last ringSize observations,
// overwritten in arrival order. Power of two so the modulo is a mask.
const ringSize = 4096

// Server is the HTTP facade over one controller.
type Server struct {
	ctrl  *online.Controller
	mux   *http.ServeMux
	start time.Time

	routes     atomic.Int64 // route requests served
	routeNanos [ringSize]atomic.Int64
}

// New wires the handler set for ctrl.
func New(ctrl *online.Controller) *Server {
	s := &Server{ctrl: ctrl, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /route", s.handleRoute)
	s.mux.HandleFunc("GET /placement", s.handlePlacement)
	s.mux.HandleFunc("POST /deltas", s.handleDeltas)
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleRoute answers "which server does server i read object k from". It
// reads one atomic pointer and two ints — no locks, no controller state.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	q := r.URL.Query()
	srv, err := strconv.Atoi(q.Get("server"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad server: %w", err))
		return
	}
	obj, err := strconv.ParseInt(q.Get("object"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad object: %w", err))
		return
	}
	from, err := s.ctrl.Route(srv, int32(obj))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"server": srv, "object": obj, "read_from": from,
	})
	n := s.routes.Add(1)
	s.routeNanos[(n-1)&(ringSize-1)].Store(time.Since(t0).Nanoseconds())
}

func (s *Server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ctrl.Placement())
}

// handleDeltas applies one atomic batch. Three encodings:
//
//   - JSON (default): a single JSON array of delta objects.
//   - binary trace ("WCTR"): Content-Type application/octet-stream or
//     ?format=trace — a trace.WriteBinary stream, aggregated into demand
//     deltas with the client-mod-M mapping.
//   - CLF: ?format=clf — a Common-Log-Format trace, same aggregation.
//
// Malformed input of any encoding is a 400; the controller state is never
// partially updated.
func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBody)
	ds, err := s.decodeDeltas(body, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.ctrl.ApplyDeltas(ds)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) decodeDeltas(body io.Reader, r *http.Request) ([]online.Delta, error) {
	format := r.URL.Query().Get("format")
	if format == "" {
		ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
		if ct == "application/octet-stream" {
			format = "trace"
		}
	}
	switch format {
	case "trace", "clf":
		var (
			l   *trace.Log
			err error
		)
		if format == "trace" {
			l, err = trace.ReadBinary(body)
		} else {
			l, err = trace.ReadCLF(body)
		}
		if err != nil {
			return nil, fmt.Errorf("decode %s stream: %w", format, err)
		}
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("invalid trace: %w", err)
		}
		return online.DeltasFromEvents(l.Events, nil, s.ctrl.Current().Problem.M)
	case "", "json":
		dec := json.NewDecoder(body)
		var ds []online.Delta
		if err := dec.Decode(&ds); err != nil {
			return nil, fmt.Errorf("decode JSON deltas: %w", err)
		}
		if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
			return nil, errors.New("trailing data after delta array")
		}
		return ds, nil
	default:
		return nil, fmt.Errorf("unknown format %q (want json|trace|clf)", format)
	}
}

// handleSolve forces a re-solve regardless of drift, synchronously.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if err := s.ctrl.SolveNow(r.Context()); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	m := s.ctrl.Metrics()
	writeJSON(w, http.StatusOK, map[string]any{
		"version": m.Version, "otc": m.OTC, "savings_percent": m.Savings,
		"replicas": m.Replicas, "solves_run": m.SolvesRun,
	})
}

// routeLatency summarizes the reservoir in microseconds.
func (s *Server) routeLatency() stats.Summary {
	n := s.routes.Load()
	if n > ringSize {
		n = ringSize
	}
	xs := make([]float64, 0, n)
	for i := int64(0); i < n; i++ {
		xs = append(xs, float64(s.routeNanos[i].Load())/1e3)
	}
	return stats.Summarize(xs)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"controller":       s.ctrl.Metrics(),
		"routes_served":    s.routes.Load(),
		"route_latency_us": s.routeLatency(),
		"uptime_seconds":   time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
