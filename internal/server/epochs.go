package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// defaultWait is the long-poll window when the client does not choose one;
// maxWait caps what a client may ask for so a handler never parks forever.
const (
	defaultWait = 30 * time.Second
	maxWait     = 60 * time.Second
)

// handleEpochs serves the epoch stream: the journalled sequence of placement
// updates (snapshots and diffs) the routing client library replays. Two
// transports over one subscription model:
//
//	GET /epochs?since=V[&wait=5s]     long-poll: JSON array of the updates
//	                                  after version V — immediately when the
//	                                  journal has them, otherwise blocking up
//	                                  to wait for the next publish; 204 when
//	                                  the window closes empty.
//	GET /epochs?since=V&stream=sse    server-sent events: one `data:` line per
//	                                  update, held open until the client goes
//	                                  away or the server drains.
//
// A client further behind than the journal receives one full snapshot
// instead of a replay; a draining server ends either transport with a
// terminal update ("terminal":true) so clients stop instead of reconnecting.
func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		var err error
		if since, err = strconv.ParseUint(v, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
			return
		}
	}
	if q.Get("stream") == "sse" {
		s.serveEpochSSE(w, r, since)
		return
	}
	wait := defaultWait
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait: %w", err))
			return
		}
		if d <= 0 {
			// A zero or negative window would degenerate the long poll into a
			// busy-looping reconnect storm; make the client choose a real one.
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait: %v is not positive", d))
			return
		}
		if d > maxWait {
			d = maxWait
		}
		wait = d
	}
	s.serveEpochPoll(w, r, since, wait)
}

func (s *Server) serveEpochPoll(w http.ResponseWriter, r *http.Request, since uint64, wait time.Duration) {
	sub := s.ctrl.Subscribe(since, 0)
	defer s.ctrl.Unsubscribe(sub)

	var updates []*json.RawMessage
	appendUpdate := func(u any) bool {
		raw, err := json.Marshal(u)
		if err != nil {
			return false
		}
		m := json.RawMessage(raw)
		updates = append(updates, &m)
		return true
	}
	// Catch-up first: everything already buffered goes out without waiting.
	drained, bad := false, false
drain:
	for {
		select {
		case u, ok := <-sub.C:
			if !ok {
				drained = true
				break drain
			}
			if !appendUpdate(u) {
				// An update that will not marshal must not punch a version gap
				// into the array: stop here and ship only the intact prefix,
				// exactly as the post-park sweep does. The client resumes from
				// its last good version on the next poll.
				bad = true
				break drain
			}
			if u.Terminal {
				drained = true
				break drain
			}
		default:
			break drain
		}
	}
	if bad && len(updates) == 0 {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("epochs: update failed to encode"))
		return
	}
	// Nothing buffered: park for the window's first publish, then sweep once
	// more so a burst goes out as one array.
	if len(updates) == 0 && !drained {
		t := time.NewTimer(wait)
		select {
		case <-r.Context().Done():
			t.Stop()
			return
		case <-t.C:
		case u, ok := <-sub.C:
			t.Stop()
			if ok {
				appendUpdate(u)
				if !u.Terminal {
				sweep:
					for {
						select {
						case u, ok := <-sub.C:
							if !ok || !appendUpdate(u) || u.Terminal {
								break sweep
							}
						default:
							break sweep
						}
					}
				}
			}
		}
	}
	if len(updates) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, updates)
}

func (s *Server) serveEpochSSE(w http.ResponseWriter, r *http.Request, since uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("sse: response writer cannot stream"))
		return
	}
	sub := s.ctrl.Subscribe(since, 0)
	defer s.ctrl.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case u, ok := <-sub.C:
			if !ok {
				// Dropped as a slow subscriber (Err()==ErrSlowSubscriber) or
				// unsubscribed: end the stream; the client reconnects with
				// since=<its version>.
				return
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			if err := enc.Encode(u); err != nil { // Encode appends the first \n
				return
			}
			if _, err := w.Write([]byte("\n")); err != nil {
				return
			}
			fl.Flush()
			if u.Terminal {
				return
			}
		}
	}
}
