package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/online"
	"repro/internal/routing"
	"repro/internal/testutil"
)

// nullResponseWriter discards the response: the zero-alloc test and the
// in-process benchmarks measure the handler, not the HTTP transport.
type nullResponseWriter struct{ h http.Header }

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

// TestRouteHandlerZeroAlloc pins the single-route hot path at zero
// allocations per request: query parsing scans RawQuery in place, the
// response body comes from a pooled buffer, and the Content-Type header
// value is shared. Any regression that re-introduces per-request garbage
// fails this test before it shows up in a profile.
func TestRouteHandlerZeroAlloc(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(51))
	ctrl, err := online.New(p.Cost, p.Work, p.Capacity, online.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ctrl)
	req := httptest.NewRequest(http.MethodGet, "/route?server=3&object=7", nil)
	w := &nullResponseWriter{h: make(http.Header)}
	srv.handleRoute(w, req) // warm the buffer pool and the header map
	if allocs := testing.AllocsPerRun(1000, func() {
		srv.handleRoute(w, req)
	}); allocs != 0 {
		t.Fatalf("handleRoute allocates %.1f times per request, want 0", allocs)
	}
}

// BenchmarkRoutingPlane is the routing-plane comparison the loadtest target
// records into BENCH_7.json: the same nearest-replica question answered
// three ways — one HTTP request per lookup, one HTTP request per 128-lookup
// batch, and entirely client-side against a routing.Client synced over the
// epoch stream. Each sub-benchmark reports routes/s; the HTTP paths also
// report p99 request latency. The client-side path is the reason the epoch
// plane exists: it must sustain well over 10x the single-request path.
func BenchmarkRoutingPlane(b *testing.B) {
	p := testutil.MustBuild(testutil.Small(52))
	ctrl, err := online.New(p.Cost, p.Work, p.Capacity, online.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := ctrl.SolveNow(context.Background()); err != nil {
		b.Fatal(err)
	}
	M, N := p.M, p.N
	ts := httptest.NewServer(New(ctrl))
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}

	b.Run("http-single", func(b *testing.B) {
		lat := make([]float64, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			resp, err := client.Get(fmt.Sprintf("%s/route?server=%d&object=%d", ts.URL, i%M, (i*7)%N))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			lat = append(lat, float64(time.Since(t0).Microseconds()))
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "routes/s")
		b.ReportMetric(p99(lat), "p99-us")
	})

	b.Run("http-batch", func(b *testing.B) {
		const batch = 128
		pairs := make([]RoutePair, batch)
		for j := range pairs {
			pairs[j] = RoutePair{Server: j % M, Object: int32((j * 11) % N)}
		}
		body, _ := json.Marshal(pairs)
		routes := 0
		lat := make([]float64, 0, b.N/batch+1)
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			t0 := time.Now()
			resp, err := client.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			routes += batch
			lat = append(lat, float64(time.Since(t0).Microseconds()))
		}
		b.StopTimer()
		b.ReportMetric(float64(routes)/b.Elapsed().Seconds(), "routes/s")
		b.ReportMetric(p99(lat), "p99-us")
	})

	b.Run("client-side", func(b *testing.B) {
		c := routing.NewClient(p.Cost)
		if err := c.Apply(ctrl.Current().SnapshotUpdate()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Route(i%M, int32((i*7)%N)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "routes/s")
	})
}

func p99(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	idx := len(xs) * 99 / 100
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}
