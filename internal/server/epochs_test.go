package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/online"
	"repro/internal/testutil"
)

func TestPlacementETag(t *testing.T) {
	ctrl, ts := newTestServer(t, 11, online.Config{})

	resp := getJSON(t, ts.URL+"/placement", nil)
	etag := resp.Header.Get("Etag")
	ver := resp.Header.Get("X-Epoch-Version")
	if etag == "" || ver == "" {
		t.Fatalf("placement missing validators: etag %q version %q", etag, ver)
	}
	if want := fmt.Sprintf("%d", ctrl.Current().Version); ver != want || etag != `"`+want+`"` {
		t.Fatalf("validators etag %q / version %q, want epoch %s", etag, ver, want)
	}

	// Same version: If-None-Match short-circuits to 304.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/placement", nil)
	req.Header.Set("If-None-Match", etag)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match: status %d, want 304", r2.StatusCode)
	}

	// A publish invalidates the tag.
	if _, err := ctrl.ApplyDeltas([]online.Delta{{Kind: online.KindDemand, Server: 1, Object: 2, Reads: 100}}); err != nil {
		t.Fatal(err)
	}
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match: status %d, want 200", r3.StatusCode)
	}
	if got := r3.Header.Get("Etag"); got == etag {
		t.Fatalf("etag did not change across a publish: %q", got)
	}
}

func TestRouteBatch(t *testing.T) {
	ctrl, ts := newTestServer(t, 12, online.Config{})
	pairs := []RoutePair{{Server: 0, Object: 1}, {Server: 3, Object: 7}, {Server: 15, Object: 59}}
	body, _ := json.Marshal(pairs)
	resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Version  uint64  `json:"version"`
		ReadFrom []int32 `json:"read_from"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out.Version != ctrl.Current().Version || len(out.ReadFrom) != len(pairs) {
		t.Fatalf("batch response %+v (status %d)", out, resp.StatusCode)
	}
	for i, p := range pairs {
		want, err := ctrl.Route(p.Server, p.Object)
		if err != nil {
			t.Fatal(err)
		}
		if out.ReadFrom[i] != want {
			t.Fatalf("pair %d: batch answered %d, controller %d", i, out.ReadFrom[i], want)
		}
	}

	// One bad pair fails the whole batch.
	resp, err = http.Post(ts.URL+"/route", "application/json",
		strings.NewReader(`[{"server":0,"object":1},{"server":999,"object":1}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad pair: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/route", "application/json", strings.NewReader(`{"server":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-array body: status %d, want 400", resp.StatusCode)
	}
}

// pollEpochs long-polls GET /epochs once and decodes the response array.
func pollEpochs(t *testing.T, base string, since uint64, wait string) (int, []*online.Update) {
	t.Helper()
	url := fmt.Sprintf("%s/epochs?since=%d&wait=%s", base, since, wait)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var updates []*online.Update
	if err := json.NewDecoder(resp.Body).Decode(&updates); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, updates
}

func TestEpochsLongPoll(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl, ts := newTestServer(t, 13, online.Config{})

	// since=0: one snapshot (the journal's origin is version 1's snapshot).
	code, updates := pollEpochs(t, ts.URL, 0, "1s")
	if code != http.StatusOK || len(updates) == 0 {
		t.Fatalf("cold poll: status %d, %d updates", code, len(updates))
	}
	if updates[0].Snapshot == nil {
		t.Fatalf("cold poll's first update is not a snapshot: %+v", updates[0])
	}
	last := updates[len(updates)-1].Version

	// Caught up: the window closes empty with 204.
	code, updates = pollEpochs(t, ts.URL, last, "50ms")
	if code != http.StatusNoContent || len(updates) != 0 {
		t.Fatalf("caught-up poll: status %d, %d updates, want 204", code, len(updates))
	}

	// A publish during the window wakes the parked poll.
	type res struct {
		code    int
		updates []*online.Update
	}
	ch := make(chan res, 1)
	go func() {
		code, u := pollEpochs(t, ts.URL, last, "10s")
		ch <- res{code, u}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	if _, err := ctrl.ApplyDeltas([]online.Delta{{Kind: online.KindDemand, Server: 0, Object: 0, Reads: 77}}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.code != http.StatusOK || len(r.updates) != 1 {
			t.Fatalf("parked poll: status %d, %d updates", r.code, len(r.updates))
		}
		u := r.updates[0]
		if u.Version != last+1 || u.Diff == nil || u.Diff.From != last {
			t.Fatalf("parked poll update %+v, want diff %d->%d", u, last, last+1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked long-poll never woke on publish")
	}

	// Bad parameters.
	if code, _ := pollEpochs(t, ts.URL, 0, "nonsense"); code != http.StatusBadRequest {
		t.Fatalf("bad wait: status %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/epochs?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: status %d, want 400", resp.StatusCode)
	}
}

// Regression: wait=0 (and any negative duration) used to slip past the
// upper-bound clamp and turn the long poll into an instant-return busy loop.
// Non-positive windows are a client error now; small positive ones still work.
func TestEpochsWaitValidation(t *testing.T) {
	testutil.LeakCheck(t)
	_, ts := newTestServer(t, 19, online.Config{})

	code, updates := pollEpochs(t, ts.URL, 0, "1s")
	if code != http.StatusOK || len(updates) == 0 {
		t.Fatalf("cold poll: status %d, %d updates", code, len(updates))
	}
	last := updates[len(updates)-1].Version

	for _, wait := range []string{"0", "0s", "-1s", "-250ms"} {
		if code, _ := pollEpochs(t, ts.URL, last, wait); code != http.StatusBadRequest {
			t.Fatalf("wait=%s: status %d, want 400", wait, code)
		}
	}
	// The floor is strict positivity, not a minimum window: tiny waits stay
	// usable for tests and impatient pollers.
	if code, _ := pollEpochs(t, ts.URL, last, "1ms"); code != http.StatusNoContent {
		t.Fatalf("wait=1ms caught up: status %d, want 204", code)
	}
}

func TestEpochsSSEDrain(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl, ts := newTestServer(t, 14, online.Config{})
	srv := tsHandler(t, ts)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/epochs?since=0&stream=sse", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("sse: status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	events := make(chan *online.Update, 16)
	scanErr := make(chan error, 1)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var u online.Update
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &u); err != nil {
				scanErr <- err
				return
			}
			events <- &u
		}
		scanErr <- sc.Err()
	}()

	next := func() *online.Update {
		t.Helper()
		select {
		case u, ok := <-events:
			if !ok {
				t.Fatal("sse stream ended early")
			}
			return u
		case err := <-scanErr:
			t.Fatalf("sse scan: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("sse event timed out")
		}
		return nil
	}

	first := next()
	if first.Snapshot == nil {
		t.Fatalf("sse catch-up is not a snapshot: %+v", first)
	}
	if _, err := ctrl.ApplyDeltas([]online.Delta{{Kind: online.KindDemand, Server: 2, Object: 3, Reads: 55}}); err != nil {
		t.Fatal(err)
	}
	if u := next(); u.Version != first.Version+1 || u.Diff == nil {
		t.Fatalf("sse live update %+v, want diff version %d", u, first.Version+1)
	}

	// Drain: the stream must end with a terminal event, promptly.
	go srv.Drain()
	if u := next(); !u.Terminal {
		t.Fatalf("sse drain event %+v, want terminal", u)
	}
	select {
	case _, ok := <-events:
		if ok {
			t.Fatal("events after the terminal update")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sse stream did not close after terminal event")
	}
}

// tsHandler digs the *Server out of the test fixture; newTestServer hands
// back the httptest server whose Handler is ours.
func tsHandler(t *testing.T, ts *httptest.Server) *Server {
	t.Helper()
	s, ok := ts.Config.Handler.(*Server)
	if !ok {
		t.Fatalf("test server handler is %T", ts.Config.Handler)
	}
	return s
}
