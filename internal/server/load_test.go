package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/online"
	"repro/internal/testutil"
)

// TestRouteUnderConcurrentDeltas is the concurrency-hardening load test:
// route reads hammer the hot path while delta batches and forced solves
// swap the View underneath them. Run under -race (make loadtest / make ci)
// it proves the RCU publication discipline: no torn reads, no locks on the
// read path, no goroutine leaks.
func TestRouteUnderConcurrentDeltas(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl, ts := newTestServer(t, 42, online.Config{
		DriftThreshold: 0.5,
		SolveDebounce:  5 * time.Millisecond,
	})
	p := ctrl.Current().Problem
	client := &http.Client{Timeout: 30 * time.Second}

	const (
		routers      = 8
		routesPerG   = 200
		deltaWriters = 2
		deltasPerG   = 40
		forcedSolves = 3
	)
	var (
		wg       sync.WaitGroup
		routeOK  atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
	)
	fail := func(err error) {
		failures.Add(1)
		firstErr.CompareAndSwap(nil, err)
	}
	do := func(req *http.Request, wantOK bool) (int, []byte) {
		resp, err := client.Do(req)
		if err != nil {
			fail(err)
			return 0, nil
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if wantOK && resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("%s %s: status %d: %s", req.Method, req.URL.Path, resp.StatusCode, b))
		}
		return resp.StatusCode, b
	}

	// Route readers: every answer must be a valid server id of the live
	// instance, whatever version is published at that instant.
	for g := 0; g < routers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < routesPerG; i++ {
				srv := (g*7 + i) % p.M
				obj := (g*13 + i) % p.N
				req, _ := http.NewRequest(http.MethodGet,
					fmt.Sprintf("%s/route?server=%d&object=%d", ts.URL, srv, obj), nil)
				code, body := do(req, true)
				if code != http.StatusOK {
					continue
				}
				var out struct {
					ReadFrom int32 `json:"read_from"`
				}
				if err := json.Unmarshal(body, &out); err != nil {
					fail(err)
					continue
				}
				if out.ReadFrom < 0 || int(out.ReadFrom) >= p.M {
					fail(fmt.Errorf("route answered server %d outside [0,%d)", out.ReadFrom, p.M))
					continue
				}
				routeOK.Add(1)
			}
		}(g)
	}

	// Delta writers: keep shifting demand so the drift loop stays busy.
	for g := 0; g < deltaWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < deltasPerG; i++ {
				srv := (g*5 + i) % p.M
				obj := (g*3 + 2*i) % p.N
				body := fmt.Sprintf(`[{"kind":"demand","server":%d,"object":%d,"reads":%d}]`,
					srv, obj, 500+100*i)
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/deltas", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				do(req, true)
			}
		}(g)
	}

	// Forced solves race the drift-triggered ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < forcedSolves; i++ {
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/solve", nil)
			do(req, true)
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl.Start(ctx)
	wg.Wait()
	ctrl.Close()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d request failures under load; first: %v", n, firstErr.Load())
	}
	if got, want := routeOK.Load(), int64(routers*routesPerG); got != want {
		t.Fatalf("only %d/%d routes verified", got, want)
	}
	// The placement the storm settled on must still satisfy every schema
	// invariant, and the metrics must add up.
	if err := ctrl.Current().Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
	m := ctrl.Metrics()
	if m.DeltasApplied != int64(deltaWriters*deltasPerG) {
		t.Fatalf("deltas applied %d, want %d", m.DeltasApplied, deltaWriters*deltasPerG)
	}
	if m.SolvesRun < forcedSolves {
		t.Fatalf("solves run %d, want at least %d", m.SolvesRun, forcedSolves)
	}
}
