package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/online"
	"repro/internal/testutil"
)

// TestRouteUnderConcurrentDeltas is the concurrency-hardening load test:
// route reads hammer the hot path while delta batches and forced solves
// swap the View underneath them. Run under -race (make loadtest / make ci)
// it proves the RCU publication discipline: no torn reads, no locks on the
// read path, no goroutine leaks.
func TestRouteUnderConcurrentDeltas(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl, ts := newTestServer(t, 42, online.Config{
		DriftThreshold: 0.5,
		SolveDebounce:  5 * time.Millisecond,
	})
	p := ctrl.Current().Problem
	client := &http.Client{Timeout: 30 * time.Second}

	const (
		routers      = 8
		routesPerG   = 200
		deltaWriters = 2
		deltasPerG   = 40
		forcedSolves = 3
	)
	var (
		wg       sync.WaitGroup
		routeOK  atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
	)
	fail := func(err error) {
		failures.Add(1)
		firstErr.CompareAndSwap(nil, err)
	}
	do := func(req *http.Request, wantOK bool) (int, []byte) {
		resp, err := client.Do(req)
		if err != nil {
			fail(err)
			return 0, nil
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if wantOK && resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("%s %s: status %d: %s", req.Method, req.URL.Path, resp.StatusCode, b))
		}
		return resp.StatusCode, b
	}

	// Route readers: every answer must be a valid server id of the live
	// instance, whatever version is published at that instant.
	for g := 0; g < routers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < routesPerG; i++ {
				srv := (g*7 + i) % p.M
				obj := (g*13 + i) % p.N
				req, _ := http.NewRequest(http.MethodGet,
					fmt.Sprintf("%s/route?server=%d&object=%d", ts.URL, srv, obj), nil)
				code, body := do(req, true)
				if code != http.StatusOK {
					continue
				}
				var out struct {
					ReadFrom int32 `json:"read_from"`
				}
				if err := json.Unmarshal(body, &out); err != nil {
					fail(err)
					continue
				}
				if out.ReadFrom < 0 || int(out.ReadFrom) >= p.M {
					fail(fmt.Errorf("route answered server %d outside [0,%d)", out.ReadFrom, p.M))
					continue
				}
				routeOK.Add(1)
			}
		}(g)
	}

	// Delta writers: keep shifting demand so the drift loop stays busy.
	for g := 0; g < deltaWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < deltasPerG; i++ {
				srv := (g*5 + i) % p.M
				obj := (g*3 + 2*i) % p.N
				body := fmt.Sprintf(`[{"kind":"demand","server":%d,"object":%d,"reads":%d}]`,
					srv, obj, 500+100*i)
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/deltas", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				do(req, true)
			}
		}(g)
	}

	// Forced solves race the drift-triggered ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < forcedSolves; i++ {
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/solve", nil)
			do(req, true)
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl.Start(ctx)
	wg.Wait()
	ctrl.Close()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d request failures under load; first: %v", n, firstErr.Load())
	}
	if got, want := routeOK.Load(), int64(routers*routesPerG); got != want {
		t.Fatalf("only %d/%d routes verified", got, want)
	}
	// The placement the storm settled on must still satisfy every schema
	// invariant, and the metrics must add up.
	if err := ctrl.Current().Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
	m := ctrl.Metrics()
	if m.DeltasApplied != int64(deltaWriters*deltasPerG) {
		t.Fatalf("deltas applied %d, want %d", m.DeltasApplied, deltaWriters*deltasPerG)
	}
	if m.SolvesRun < forcedSolves {
		t.Fatalf("solves run %d, want at least %d", m.SolvesRun, forcedSolves)
	}
}

// TestEpochStreamUnderLoad hammers the epoch subscription path while delta
// batches and solves publish concurrently: SSE and long-poll subscribers join
// at random points and each must observe a strictly increasing, gapless
// version sequence — every update is prev+1, or a snapshot (which may jump
// forward but never back). Run under -race -count=2 via make loadtest, it is
// the HTTP-level companion to the controller's
// TestConcurrentSubscribersGapless.
func TestEpochStreamUnderLoad(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl, ts := newTestServer(t, 43, online.Config{Journal: 8})
	srv := tsHandler(t, ts)

	const (
		sseSubs      = 4
		pollSubs     = 4
		deltaWriters = 2
		deltasPerG   = 30
		forcedSolves = 2
	)
	var (
		wg       sync.WaitGroup
		observed atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
	)
	fail := func(err error) {
		failures.Add(1)
		firstErr.CompareAndSwap(nil, err)
	}
	// checkSeq folds one update into a subscriber's (last, synced) cursor,
	// failing on any gap or regression.
	checkSeq := func(last uint64, synced bool, u *online.Update) (uint64, bool) {
		switch {
		case u.Snapshot != nil:
			if synced && u.Version < last {
				fail(fmt.Errorf("snapshot went backwards: %d after %d", u.Version, last))
			}
		case u.Diff != nil:
			if synced && u.Version != last+1 {
				fail(fmt.Errorf("version gap: %d after %d", u.Version, last))
			}
			if u.Diff.From != u.Version-1 {
				fail(fmt.Errorf("diff %d chains from %d", u.Version, u.Diff.From))
			}
		}
		observed.Add(1)
		return u.Version, true
	}

	// SSE subscribers ride one stream each until the drain.
	for g := 0; g < sseSubs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/epochs?since=0&stream=sse")
			if err != nil {
				fail(err)
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			var last uint64
			synced := false
			for sc.Scan() {
				line := sc.Text()
				if !strings.HasPrefix(line, "data: ") {
					continue
				}
				var u online.Update
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &u); err != nil {
					fail(err)
					return
				}
				if u.Terminal {
					return
				}
				last, synced = checkSeq(last, synced, &u)
			}
		}()
	}

	// Long-poll subscribers: repeated windows, resuming from their cursor.
	pollCtx, stopPolls := context.WithCancel(context.Background())
	defer stopPolls()
	for g := 0; g < pollSubs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			synced := false
			for pollCtx.Err() == nil {
				req, _ := http.NewRequestWithContext(pollCtx, http.MethodGet,
					fmt.Sprintf("%s/epochs?since=%d&wait=100ms", ts.URL, last), nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return // context canceled mid-poll
				}
				if resp.StatusCode == http.StatusNoContent {
					resp.Body.Close()
					continue
				}
				var updates []*online.Update
				err = json.NewDecoder(resp.Body).Decode(&updates)
				resp.Body.Close()
				if err != nil {
					fail(err)
					return
				}
				for _, u := range updates {
					if u.Terminal {
						return
					}
					last, synced = checkSeq(last, synced, u)
				}
			}
		}()
	}

	var writerWG sync.WaitGroup
	client := &http.Client{Timeout: 30 * time.Second}
	for g := 0; g < deltaWriters; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; i < deltasPerG; i++ {
				body := fmt.Sprintf(`[{"kind":"demand","server":%d,"object":%d,"reads":%d}]`,
					(g*5+i)%16, (g*3+2*i)%60, 200+10*i)
				resp, err := client.Post(ts.URL+"/deltas", "application/json", strings.NewReader(body))
				if err != nil {
					fail(err)
					return
				}
				resp.Body.Close()
			}
		}(g)
	}
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; i < forcedSolves; i++ {
			resp, err := client.Post(ts.URL+"/solve", "application/json", nil)
			if err != nil {
				fail(err)
				return
			}
			resp.Body.Close()
		}
	}()
	writerWG.Wait()

	// Drain ends the SSE streams with a terminal event; long-polls stop on
	// their next window (terminal or context).
	srv.Drain()
	stopPolls()
	wg.Wait()
	ctrl.Close()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d stream violations; first: %v", n, firstErr.Load())
	}
	if observed.Load() == 0 {
		t.Fatal("no updates observed: the load test is vacuous")
	}
	want := uint64(1 + deltaWriters*deltasPerG + forcedSolves)
	if got := ctrl.Current().Version; got != want {
		t.Fatalf("final version %d, want %d", got, want)
	}
}
