// Package adaptive implements the protocol view of AGT-RAM stated in the
// paper's conclusions: "a protocol for automatic replication and migration
// of objects in response to demand changes". The system runs in epochs; at
// every epoch boundary the demand shifts (object popularity drifts while
// the catalogue, primaries, topology and capacities stay fixed), and the
// mechanism reacts with migrations:
//
//  1. carry the previous epoch's replicas forward,
//  2. de-allocate replicas whose removal now *reduces* OTC (reads moved
//     away; keeping the copy only costs update broadcasts),
//  3. resume sealed-bid rounds for new placements until no agent benefits.
//
// Each epoch reports how many replicas were kept, dropped and added, and
// the savings achieved against that epoch's primary-only baseline — so the
// value of migrating (versus freezing the initial placement) is measurable.
package adaptive

import (
	"context"
	"fmt"

	"repro/internal/candidates"
	"repro/internal/mechanism"
	"repro/internal/replication"
	"repro/internal/workload"
)

// Config tunes the adaptive run.
type Config struct {
	// Payment selects the mechanism's payment rule (default second-price).
	Payment mechanism.PaymentRule
	// MaxRoundsPerEpoch caps the addition rounds per epoch; <= 0 unbounded.
	MaxRoundsPerEpoch int
	// FreezePlacement disables migration: the first epoch's placement is
	// carried forward untouched. This is the control the adaptive protocol
	// is measured against.
	FreezePlacement bool
}

// EpochStats reports one epoch.
type EpochStats struct {
	Epoch     int
	Kept      int     // replicas carried over and retained
	Dropped   int     // replicas de-allocated at the boundary
	Added     int     // replicas placed by the mechanism this epoch
	Savings   float64 // OTC savings vs this epoch's primary-only baseline
	Cost      int64
	BaseCost  int64
	Migration int // Dropped + Added: the migration traffic proxy
}

// Result is the outcome of an adaptive run.
type Result struct {
	Epochs []EpochStats
	// Final is the last epoch's schema.
	Final *replication.Schema
}

// MeanSavings averages the per-epoch savings.
func (r *Result) MeanSavings() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range r.Epochs {
		sum += e.Savings
	}
	return sum / float64(len(r.Epochs))
}

// Run executes the adaptive protocol over a sequence of per-epoch
// workloads. All workloads must describe the same system: identical M, N,
// object sizes and primary assignments. The cost matrix and capacities are
// shared across epochs. ctx is checked at every epoch boundary and every
// resumed mechanism round; on cancellation Run returns ctx.Err() wrapped
// with the package name.
func Run(ctx context.Context, cost replication.CostFn, epochs []*workload.Workload, capacity []int64, cfg Config) (*Result, error) {
	if len(epochs) == 0 {
		return nil, fmt.Errorf("adaptive: no epochs")
	}
	base := epochs[0]
	for e, w := range epochs[1:] {
		if err := sameSystem(base, w); err != nil {
			return nil, fmt.Errorf("adaptive: epoch %d: %w", e+1, err)
		}
	}

	res := &Result{}
	type placement struct {
		object int32
		server int32
	}
	var carried []placement

	for e, w := range epochs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("adaptive: %w", err)
		}
		prob, err := replication.NewProblem(cost, w, capacity)
		if err != nil {
			return nil, fmt.Errorf("adaptive: epoch %d: %w", e, err)
		}
		schema := prob.NewSchema()
		stats := EpochStats{Epoch: e}

		// 1. Carry the surviving placement forward. Capacities and sizes
		// are epoch-invariant, so carried replicas always fit.
		for _, pl := range carried {
			if _, err := schema.PlaceReplica(pl.object, int(pl.server)); err != nil {
				return nil, fmt.Errorf("adaptive: epoch %d: carrying (%d on %d): %w", e, pl.object, pl.server, err)
			}
		}
		stats.Kept = len(carried)

		if !cfg.FreezePlacement || e == 0 {
			// 2. Migration out: drop replicas whose removal lowers OTC.
			stats.Dropped = dropHarmful(schema)
			stats.Kept -= stats.Dropped

			// 3. Migration in: resume the sealed-bid mechanism.
			added, err := resumeMechanism(ctx, schema, cfg)
			if err != nil {
				return nil, err
			}
			stats.Added = added
		}

		stats.Cost = schema.TotalCost()
		stats.BaseCost = schema.BaseCost()
		stats.Savings = schema.Savings()
		stats.Migration = stats.Dropped + stats.Added
		res.Epochs = append(res.Epochs, stats)
		res.Final = schema

		carried = carried[:0]
		for k := 0; k < prob.N; k++ {
			for _, srv := range schema.Replicas(int32(k)) {
				if srv != w.Primary[k] {
					carried = append(carried, placement{object: int32(k), server: srv})
				}
			}
		}
	}
	return res, nil
}

// dropHarmful removes replicas until no single removal lowers the OTC.
// Each sweep rescans all placed replicas; removals only make other removals
// less attractive on the read side but can expose new ones on the write
// side of different objects, so we iterate to a fixpoint.
func dropHarmful(s *replication.Schema) int {
	p := s.Problem()
	dropped := 0
	for {
		improved := false
		for k := 0; k < p.N; k++ {
			replicas := append([]int32(nil), s.Replicas(int32(k))...)
			for _, srv := range replicas {
				if srv == p.Work.Primary[k] {
					continue
				}
				if s.DeltaIfRemoved(int32(k), int(srv)) < 0 {
					if _, err := s.RemoveReplica(int32(k), int(srv)); err == nil {
						dropped++
						improved = true
					}
				}
			}
		}
		if !improved {
			return dropped
		}
	}
}

// resumeMechanism runs AGT-RAM rounds starting from the carried schema.
func resumeMechanism(ctx context.Context, s *replication.Schema, cfg Config) (int, error) {
	p := s.Problem()
	agents := candidates.BuildAgentsFrom(s)
	added := 0
	for cfg.MaxRoundsPerEpoch <= 0 || added < cfg.MaxRoundsPerEpoch {
		if err := ctx.Err(); err != nil {
			return added, fmt.Errorf("adaptive: %w", err)
		}
		bids := make([]mechanism.Bid, 0, len(agents))
		live := agents[:0]
		for _, a := range agents {
			obj, val, ok := a.Best()
			if !ok {
				continue
			}
			live = append(live, a)
			bids = append(bids, mechanism.Bid{Agent: a.ID, Item: obj, Value: val})
		}
		agents = live
		round, ok := mechanism.RunRound(bids, cfg.Payment)
		if !ok {
			return added, nil
		}
		win := round.Winner
		if _, err := s.PlaceReplica(win.Item, win.Agent); err != nil {
			return added, fmt.Errorf("adaptive: resuming mechanism: %w", err)
		}
		added++
		for _, a := range agents {
			if a.ID == win.Agent {
				a.Won(win.Item)
			} else {
				a.Observe(win.Item, p.Cost.At(a.ID, win.Agent))
			}
		}
	}
	return added, nil
}

// sameSystem verifies two workloads describe the same fixed system.
func sameSystem(a, b *workload.Workload) error {
	if a.M != b.M || a.N != b.N {
		return fmt.Errorf("system shape changed: %dx%d vs %dx%d", a.M, a.N, b.M, b.N)
	}
	for k := 0; k < a.N; k++ {
		if a.ObjectSize[k] != b.ObjectSize[k] {
			return fmt.Errorf("object %d changed size", k)
		}
		if a.Primary[k] != b.Primary[k] {
			return fmt.Errorf("object %d changed primary", k)
		}
	}
	return nil
}

// GenerateEpochs builds a demand-drift sequence: one synthetic workload per
// epoch with a fixed catalogue (sizes, primaries) and freshly drawn demand.
func GenerateEpochs(base workload.SyntheticConfig, epochs int) ([]*workload.Workload, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("adaptive: epochs must be positive, got %d", epochs)
	}
	out := make([]*workload.Workload, epochs)
	for e := 0; e < epochs; e++ {
		cfg := base
		if e > 0 {
			cfg.DemandSeed = base.Seed + int64(e)*1_000_003
		}
		w, err := workload.Synthetic(cfg)
		if err != nil {
			return nil, err
		}
		out[e] = w
	}
	return out, nil
}
