package adaptive

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/replication"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

func testSystem(t *testing.T, seed int64, epochs int) (replication.CostFn, []*workload.Workload, []int64) {
	t.Helper()
	ws, err := GenerateEpochs(workload.SyntheticConfig{
		Servers: 16, Objects: 80, Requests: 6000, RWRatio: 0.9, Seed: seed,
	}, epochs)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(seed + 99)
	g, err := topology.Random(16, 0.3, topology.DefaultWeights, r)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := replication.GenerateCapacities(ws[0], 20, r)
	if err != nil {
		t.Fatal(err)
	}
	return topology.AllPairs(g, 0), ws, caps
}

func TestGenerateEpochsFixedCatalogue(t *testing.T) {
	ws, err := GenerateEpochs(workload.SyntheticConfig{
		Servers: 8, Objects: 40, Requests: 2000, RWRatio: 0.9, Seed: 1,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("got %d epochs", len(ws))
	}
	for e := 1; e < 4; e++ {
		if err := sameSystem(ws[0], ws[e]); err != nil {
			t.Fatalf("epoch %d catalogue drifted: %v", e, err)
		}
	}
	// Demand must actually change between epochs.
	same := true
	for i := 0; i < ws[0].M && same; i++ {
		a, b := ws[0].Demands(i), ws[1].Demands(i)
		if len(a) != len(b) {
			same = false
			break
		}
		for j := range a {
			if a[j] != b[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("epoch demand did not drift")
	}
	if _, err := GenerateEpochs(workload.SyntheticConfig{}, 0); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestRunSingleEpochMatchesMechanism(t *testing.T) {
	cost, ws, caps := testSystem(t, 2, 1)
	res, err := Run(context.Background(), cost, ws, caps, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 1 {
		t.Fatalf("got %d epoch stats", len(res.Epochs))
	}
	e := res.Epochs[0]
	if e.Kept != 0 || e.Dropped != 0 {
		t.Fatalf("first epoch should start empty: %+v", e)
	}
	if e.Added <= 0 || e.Savings <= 0 {
		t.Fatalf("first epoch placed nothing: %+v", e)
	}
	if err := res.Final.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunMigratesUnderDrift(t *testing.T) {
	cost, ws, caps := testSystem(t, 3, 5)
	res, err := Run(context.Background(), cost, ws, caps, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 5 {
		t.Fatalf("got %d epochs", len(res.Epochs))
	}
	migrated := 0
	for e := 1; e < 5; e++ {
		st := res.Epochs[e]
		migrated += st.Migration
		if st.Savings <= 0 {
			t.Fatalf("epoch %d: savings %.2f", e, st.Savings)
		}
	}
	if migrated == 0 {
		t.Fatal("demand drift triggered no migration at all")
	}
	if err := res.Final.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Migrating must beat freezing the initial placement across drifting
// epochs — the reason the paper frames AGT-RAM as a protocol.
func TestMigrationBeatsFrozenPlacement(t *testing.T) {
	cost, ws, caps := testSystem(t, 4, 6)
	adaptiveRes, err := Run(context.Background(), cost, ws, caps, Config{})
	if err != nil {
		t.Fatal(err)
	}
	frozenRes, err := Run(context.Background(), cost, ws, caps, Config{FreezePlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if adaptiveRes.MeanSavings() <= frozenRes.MeanSavings() {
		t.Fatalf("adaptive %.2f%% should beat frozen %.2f%%",
			adaptiveRes.MeanSavings(), frozenRes.MeanSavings())
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(context.Background(), nil, nil, nil, Config{}); err == nil {
		t.Fatal("empty epochs accepted")
	}
	cost, ws, caps := testSystem(t, 5, 2)
	// Corrupt the second epoch's catalogue.
	ws[1].ObjectSize[0]++
	if _, err := Run(context.Background(), cost, ws, caps, Config{}); err == nil {
		t.Fatal("catalogue drift accepted")
	}
	ws[1].ObjectSize[0]--
	ws[1].Primary[3] = (ws[1].Primary[3] + 1) % int32(ws[1].M)
	if _, err := Run(context.Background(), cost, ws, caps, Config{}); err == nil {
		t.Fatal("primary drift accepted")
	}
}

func TestMaxRoundsPerEpoch(t *testing.T) {
	cost, ws, caps := testSystem(t, 6, 2)
	res, err := Run(context.Background(), cost, ws, caps, Config{MaxRoundsPerEpoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Epochs {
		if e.Added > 3 {
			t.Fatalf("epoch %d added %d replicas, cap 3", e.Epoch, e.Added)
		}
	}
}

func TestMeanSavingsEmpty(t *testing.T) {
	if (&Result{}).MeanSavings() != 0 {
		t.Fatal("empty result should average to 0")
	}
}

// Property: the adaptive loop preserves schema invariants for arbitrary
// drift seeds, and every epoch's final placement never costs more than that
// epoch's primary-only baseline.
func TestAdaptiveValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		ws, err := GenerateEpochs(workload.SyntheticConfig{
			Servers: 10, Objects: 40, Requests: 3000, RWRatio: 0.85, Seed: seed,
		}, 3)
		if err != nil {
			return false
		}
		r := stats.NewRNG(seed + 1)
		g, err := topology.Random(10, 0.4, topology.DefaultWeights, r)
		if err != nil {
			return false
		}
		caps, err := replication.GenerateCapacities(ws[0], 25, r)
		if err != nil {
			return false
		}
		res, err := Run(context.Background(), topology.AllPairs(g, 0), ws, caps, Config{})
		if err != nil {
			return false
		}
		for _, e := range res.Epochs {
			if e.Cost > e.BaseCost {
				return false
			}
		}
		return res.Final.ValidateInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
