// Package hierarchy implements the paper's future-work extension
// (Section 7): regional, self-governed mechanisms. The flat AGT-RAM has a
// single central body; here the servers are partitioned into geographic
// regions (by communication-cost proximity), each region runs its own
// sealed-bid game over its members, and a thin top-level mechanism
// arbitrates between the regional winners.
//
// Two operating modes realize the two designs sketched in the paper:
//
//   - Hierarchical: each epoch, every regional mechanism forwards its best
//     regional bid; the top level picks the single global best. The
//     allocation sequence is provably identical to flat AGT-RAM (the
//     maximum of regional maxima is the global maximum) while the top
//     level sees R bids per epoch instead of M.
//
//   - Autonomous: there is no top level; every region places its own
//     winner each epoch. Decisions are fully regional — the mode the
//     system degrades to when the central body fails — at some cost in
//     solution quality under capacity pressure.
//
// Failure injection covers both sketches: TopFails switches a hierarchical
// system to autonomous operation mid-protocol, and FailedRegions silences
// whole regions ("less vulnerable to the failures of a single mechanism").
package hierarchy

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/candidates"
	"repro/internal/mechanism"
	"repro/internal/replication"
)

// Mode selects the coordination scheme.
type Mode int

const (
	// Hierarchical keeps a thin top-level arbiter over the regional games.
	Hierarchical Mode = iota
	// Autonomous lets every region allocate independently.
	Autonomous
)

// String names the mode.
func (m Mode) String() string {
	if m == Autonomous {
		return "autonomous"
	}
	return "hierarchical"
}

// Config tunes the regional mechanism.
type Config struct {
	// Regions is the number of regions to partition the servers into
	// (default 4, clamped to the server count).
	Regions int
	// Mode selects hierarchical or autonomous coordination.
	Mode Mode
	// Payment is the per-region payment rule (default second-price).
	Payment mechanism.PaymentRule
	// TopFailsAfter, when > 0, fails the top-level mechanism after that
	// many epochs: the system continues autonomously (hierarchical mode
	// only).
	TopFailsAfter int
	// FailedRegions lists regions whose mechanism is down from the start;
	// their servers never replicate anything.
	FailedRegions []int
	// MaxEpochs caps the number of epochs; <= 0 means unbounded.
	MaxEpochs int
}

// Result is the outcome of a run.
type Result struct {
	Schema *replication.Schema
	// Regions maps each region to its member servers.
	Regions [][]int32
	// Epochs counts protocol epochs.
	Epochs int
	// Placed counts replicas placed.
	Placed int
	// TopDecisions counts binary decisions taken by the top level.
	TopDecisions int
	// RegionalDecisions counts decisions taken regionally (autonomous
	// placements).
	RegionalDecisions int
	// DegradedAtEpoch records when the top level failed (-1 if never).
	DegradedAtEpoch int
}

// Partition splits the servers into k regions by communication-cost
// proximity: greedy farthest-point seeding, then nearest-seed assignment.
// Deterministic for a given cost matrix.
func Partition(p *replication.Problem, k int) [][]int32 {
	if k < 1 {
		k = 1
	}
	if k > p.M {
		k = p.M
	}
	seeds := farthestSeeds(p, k)
	regions := make([][]int32, k)
	for i := 0; i < p.M; i++ {
		best, bestD := 0, int64(p.Cost.At(i, seeds[0]))
		for r := 1; r < k; r++ {
			if d := int64(p.Cost.At(i, seeds[r])); d < bestD {
				best, bestD = r, d
			}
		}
		regions[best] = append(regions[best], int32(i))
	}
	return regions
}

// PartitionBalanced splits the servers into k regions of near-equal size
// (at most ceil(M/k) members each). Seeding is the same farthest-point
// traversal as Partition; assignment is by proximity under the capacity
// cap, processing servers in decreasing order of how much the choice
// matters to them (the cost gap between their nearest and second-nearest
// seed), so the servers squeezed out of a full region are the ones that
// care least. Deterministic for a given cost matrix.
//
// On cost metrics with a dense core, nearest-seed assignment piles most of
// the servers onto the core seed (the other seeds are peripheral
// outliers); the cluster coordinator partitions with the balanced variant
// so a regional sub-instance never grows into the whole globe — the point
// of compaction is that a regional solve costs the region's share, and
// that only holds when the partition does its part.
func PartitionBalanced(p *replication.Problem, k int) [][]int32 {
	if k < 1 {
		k = 1
	}
	if k > p.M {
		k = p.M
	}
	seeds := farthestSeeds(p, k)
	dist := make([]int64, p.M*k)
	order := make([]int32, p.M)
	gap := make([]int64, p.M)
	for i := 0; i < p.M; i++ {
		best, second := int64(1)<<62, int64(1)<<62
		for r, s := range seeds {
			d := int64(p.Cost.At(i, s))
			dist[i*k+r] = d
			if d < best {
				best, second = d, best
			} else if d < second {
				second = d
			}
		}
		order[i] = int32(i)
		gap[i] = second - best
	}
	sort.SliceStable(order, func(a, b int) bool { return gap[order[a]] > gap[order[b]] })
	cap_ := (p.M + k - 1) / k
	regions := make([][]int32, k)
	for _, srv := range order {
		best, bestD := -1, int64(1)<<62
		for r := 0; r < k; r++ {
			if len(regions[r]) >= cap_ {
				continue
			}
			if d := dist[int(srv)*k+r]; d < bestD {
				best, bestD = r, d
			}
		}
		regions[best] = append(regions[best], srv)
	}
	for _, members := range regions {
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
	}
	return regions
}

// farthestSeeds picks k seed servers by greedy farthest-point traversal
// from server 0, returned sorted.
func farthestSeeds(p *replication.Problem, k int) []int {
	seeds := make([]int, 0, k)
	seeds = append(seeds, 0)
	minDist := make([]int64, p.M)
	for i := range minDist {
		minDist[i] = int64(p.Cost.At(i, 0))
	}
	for len(seeds) < k {
		far, farD := -1, int64(-1)
		for i := 0; i < p.M; i++ {
			if minDist[i] > farD {
				far, farD = i, minDist[i]
			}
		}
		seeds = append(seeds, far)
		for i := 0; i < p.M; i++ {
			if d := int64(p.Cost.At(i, far)); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	sort.Ints(seeds)
	return seeds
}

// Solve runs the regional mechanism to completion. ctx is checked at the
// top of every epoch; on cancellation Solve returns ctx.Err() wrapped with
// the package name.
func Solve(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("hierarchy: nil problem")
	}
	if cfg.Regions == 0 {
		cfg.Regions = 4
	}
	if cfg.Regions < 0 {
		return nil, fmt.Errorf("hierarchy: negative region count %d", cfg.Regions)
	}
	regions := Partition(p, cfg.Regions)
	for _, r := range cfg.FailedRegions {
		if r < 0 || r >= len(regions) {
			return nil, fmt.Errorf("hierarchy: failed region %d out of range [0,%d)", r, len(regions))
		}
	}

	schema := p.NewSchema()
	res := &Result{Schema: schema, Regions: regions, DegradedAtEpoch: -1}

	failed := make(map[int]bool, len(cfg.FailedRegions))
	for _, r := range cfg.FailedRegions {
		failed[r] = true
	}

	// Regional agent pools (only servers of live regions participate).
	regionOf := make([]int, p.M)
	for r, members := range regions {
		for _, i := range members {
			regionOf[i] = r
		}
	}
	byRegion := make([][]*candidates.Agent, len(regions))
	for _, a := range candidates.BuildAgents(p) {
		r := regionOf[a.ID]
		if failed[r] {
			continue
		}
		byRegion[r] = append(byRegion[r], a)
	}

	hierarchical := cfg.Mode == Hierarchical
	for cfg.MaxEpochs <= 0 || res.Epochs < cfg.MaxEpochs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hierarchy: %w", err)
		}
		if hierarchical && cfg.TopFailsAfter > 0 && res.Epochs >= cfg.TopFailsAfter && res.DegradedAtEpoch < 0 {
			// The central body dies; the regions keep going on their own.
			hierarchical = false
			res.DegradedAtEpoch = res.Epochs
		}
		// Each regional mechanism runs one sealed-bid round over its agents.
		type regionalWinner struct {
			region int
			round  mechanism.Round
			ok     bool
		}
		winners := make([]regionalWinner, 0, len(regions))
		for r := range regions {
			agents := byRegion[r]
			if len(agents) == 0 {
				continue
			}
			bids := make([]mechanism.Bid, 0, len(agents))
			live := agents[:0]
			for _, a := range agents {
				obj, val, ok := a.Best()
				if !ok {
					continue
				}
				live = append(live, a)
				bids = append(bids, mechanism.Bid{Agent: a.ID, Item: obj, Value: val})
			}
			byRegion[r] = live
			round, ok := mechanism.RunRound(bids, cfg.Payment)
			if ok {
				winners = append(winners, regionalWinner{region: r, round: round, ok: true})
			}
		}
		if len(winners) == 0 {
			break
		}
		res.Epochs++

		var toPlace []mechanism.Round
		if hierarchical {
			// Top level: one binary decision over the regional winners.
			top := make([]mechanism.Bid, 0, len(winners))
			for _, w := range winners {
				top = append(top, w.round.Winner)
			}
			final, ok := mechanism.RunRound(top, cfg.Payment)
			if !ok {
				break
			}
			toPlace = []mechanism.Round{{Winner: final.Winner, Payment: final.Payment}}
			res.TopDecisions++
		} else {
			for _, w := range winners {
				toPlace = append(toPlace, w.round)
				res.RegionalDecisions++
			}
		}

		for _, round := range toPlace {
			win := round.Winner
			if err := schema.CanPlace(win.Item, win.Agent); err != nil {
				// In autonomous mode two regions can race for the last slot
				// of an object's feasibility only via capacity on their own
				// servers, which they own exclusively — so this indicates
				// corruption.
				return nil, fmt.Errorf("hierarchy: winner infeasible: %w", err)
			}
			if _, err := schema.PlaceReplica(win.Item, win.Agent); err != nil {
				return nil, err
			}
			res.Placed++
			// Broadcast to every live agent in every region.
			for r := range byRegion {
				for _, a := range byRegion[r] {
					if a.ID == win.Agent {
						a.Won(win.Item)
					} else {
						a.Observe(win.Item, p.Cost.At(a.ID, win.Agent))
					}
				}
			}
		}
	}
	return res, nil
}
