package hierarchy

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/testutil"
)

// The cluster plane reuses this package's failure semantics (the shard's
// degradation switch is hierarchy.Mode, the coordinator's partitioner is
// Partition), so the failure modes get their own leak-checked suite: the
// top level dying mid-protocol, regions silenced from the start, and both
// at once — all run under `make race`, twice in `make cluster`.

// TestTopFailsEverySwitchPoint flips the top-level failure at every epoch of
// the protocol's natural run and checks the degradation contract at each
// point: the switch happens exactly when configured, decisions before it are
// top-level, decisions after it are regional, and the placement stays
// feasible.
func TestTopFailsEverySwitchPoint(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(4))
	healthy, err := Solve(context.Background(), p, Config{Regions: 4})
	if err != nil {
		t.Fatal(err)
	}
	for after := 1; after <= healthy.Epochs; after += 7 {
		res, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(4)), Config{Regions: 4, TopFailsAfter: after})
		if err != nil {
			t.Fatalf("TopFailsAfter=%d: %v", after, err)
		}
		if res.DegradedAtEpoch != after {
			t.Fatalf("TopFailsAfter=%d: degraded at %d", after, res.DegradedAtEpoch)
		}
		if res.TopDecisions != after {
			t.Fatalf("TopFailsAfter=%d: %d top decisions", after, res.TopDecisions)
		}
		if res.RegionalDecisions == 0 {
			t.Fatalf("TopFailsAfter=%d: no regional decisions after the failure", after)
		}
		if err := res.Schema.ValidateInvariants(); err != nil {
			t.Fatalf("TopFailsAfter=%d: %v", after, err)
		}
		if res.Schema.Savings() <= 0 {
			t.Fatalf("TopFailsAfter=%d: savings %.2f", after, res.Schema.Savings())
		}
	}
}

// TestTopFailsDeterministic pins that the degradation path is as
// reproducible as the healthy one: two runs with the same seed and the same
// mid-protocol failure produce bit-identical placements. The cluster's
// differential test leans on exactly this property.
func TestTopFailsDeterministic(t *testing.T) {
	testutil.LeakCheck(t)
	cfg := Config{Regions: 4, TopFailsAfter: 2}
	a, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(8)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(8)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Schema.Matrix(), b.Schema.Matrix()) {
		t.Fatal("degraded runs with identical seeds diverged")
	}
	if a.Epochs != b.Epochs || a.TopDecisions != b.TopDecisions || a.RegionalDecisions != b.RegionalDecisions {
		t.Fatalf("decision counts diverged: %+v vs %+v", a, b)
	}
}

// TestFailedRegionsCombinedWithTopFailure runs both fault injections at
// once: a silenced region and a top level that dies mid-protocol. The
// silenced region must stay silent through the degradation (its servers
// never host a non-primary replica), and the survivors keep replicating.
func TestFailedRegionsCombinedWithTopFailure(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(5))
	res, err := Solve(context.Background(), p, Config{Regions: 4, FailedRegions: []int{2}, TopFailsAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedAtEpoch != 2 {
		t.Fatalf("degraded at %d, want 2", res.DegradedAtEpoch)
	}
	silenced := map[int32]bool{}
	for _, i := range res.Regions[2] {
		silenced[i] = true
	}
	for k := 0; k < p.N; k++ {
		for _, srv := range res.Schema.Replicas(int32(k)) {
			if srv != p.Work.Primary[k] && silenced[srv] {
				t.Fatalf("silenced region's server %d hosts a replica of %d after degradation", srv, k)
			}
		}
	}
	if res.Schema.Savings() <= 0 {
		t.Fatalf("savings %.2f with combined faults", res.Schema.Savings())
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAllRegionsFailed silences every region: the protocol has no agents,
// places nothing, and terminates immediately instead of spinning.
func TestAllRegionsFailed(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(6))
	res, err := Solve(context.Background(), p, Config{Regions: 3, FailedRegions: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 0 {
		t.Fatalf("all-failed system ran %d epochs", res.Epochs)
	}
	if res.Placed != 0 {
		t.Fatalf("all-failed system placed %d replicas", res.Placed)
	}
	if res.Schema.Savings() != 0 {
		t.Fatalf("all-failed system reports savings %.2f", res.Schema.Savings())
	}
}

// TestCancelledDuringDegradedRun cancels the context after the top level has
// already failed: the solve must abort with the context error, not keep
// grinding regional epochs.
func TestCancelledDuringDegradedRun(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(7))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, p, Config{Regions: 4, TopFailsAfter: 1}); err == nil {
		t.Fatal("cancelled degraded solve returned nil error")
	}
}
