package hierarchy

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/agtram"
	"repro/internal/testutil"
)

func TestPartitionCoversAllServers(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(1))
	for _, k := range []int{1, 2, 4, 7, 16, 100} {
		regions := Partition(p, k)
		wantK := k
		if wantK > p.M {
			wantK = p.M
		}
		if len(regions) != wantK {
			t.Fatalf("k=%d: got %d regions", k, len(regions))
		}
		seen := make([]bool, p.M)
		for _, members := range regions {
			for _, i := range members {
				if seen[i] {
					t.Fatalf("server %d in two regions", i)
				}
				seen[i] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("server %d unassigned", i)
			}
		}
	}
	if got := Partition(p, 0); len(got) != 1 {
		t.Fatalf("k=0 should clamp to 1, got %d", len(got))
	}
}

// The headline property of the hierarchical mode: the max of regional
// maxima is the global max, so the final placement cost matches flat
// AGT-RAM exactly.
func TestHierarchicalMatchesFlatAGTRAM(t *testing.T) {
	for _, regions := range []int{1, 2, 4, 8} {
		cfg := testutil.Small(2)
		h, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{Regions: regions})
		if err != nil {
			t.Fatal(err)
		}
		flat, err := agtram.Solve(context.Background(), testutil.MustBuild(cfg), agtram.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if h.Schema.TotalCost() != flat.Schema.TotalCost() {
			t.Fatalf("regions=%d: hierarchical %d != flat %d",
				regions, h.Schema.TotalCost(), flat.Schema.TotalCost())
		}
		if h.TopDecisions != h.Placed {
			t.Fatalf("top decisions %d != placements %d", h.TopDecisions, h.Placed)
		}
		if err := h.Schema.ValidateInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAutonomousMode(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(3))
	res, err := Solve(context.Background(), p, Config{Regions: 4, Mode: Autonomous})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Savings() <= 0 {
		t.Fatalf("autonomous savings %.2f", res.Schema.Savings())
	}
	if res.TopDecisions != 0 {
		t.Fatalf("autonomous mode took %d top decisions", res.TopDecisions)
	}
	if res.RegionalDecisions != res.Placed {
		t.Fatalf("regional decisions %d != placements %d", res.RegionalDecisions, res.Placed)
	}
	// Autonomous places up to R replicas per epoch, so it needs fewer epochs.
	h, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(3)), Config{Regions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed > 4 && res.Epochs >= h.Epochs {
		t.Fatalf("autonomous epochs %d should be below hierarchical %d", res.Epochs, h.Epochs)
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTopLevelFailureDegradesGracefully(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(4))
	res, err := Solve(context.Background(), p, Config{Regions: 4, TopFailsAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedAtEpoch != 3 {
		t.Fatalf("degraded at epoch %d, want 3", res.DegradedAtEpoch)
	}
	if res.TopDecisions != 3 {
		t.Fatalf("top decisions %d, want 3 (then failure)", res.TopDecisions)
	}
	if res.RegionalDecisions == 0 {
		t.Fatal("no autonomous decisions after the failure")
	}
	// The system keeps replicating: total savings remain positive.
	if res.Schema.Savings() <= 0 {
		t.Fatalf("savings %.2f after degradation", res.Schema.Savings())
	}
}

func TestFailedRegionsAreSilent(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(5))
	res, err := Solve(context.Background(), p, Config{Regions: 4, FailedRegions: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	// No server of region 1 may hold a non-primary replica.
	inRegion := make(map[int32]bool)
	for _, i := range res.Regions[1] {
		inRegion[i] = true
	}
	for k := 0; k < p.N; k++ {
		for _, srv := range res.Schema.Replicas(int32(k)) {
			if srv == p.Work.Primary[k] {
				continue
			}
			if inRegion[srv] {
				t.Fatalf("failed region's server %d hosts a replica of %d", srv, k)
			}
		}
	}
	// Everyone else still replicates.
	if res.Schema.Savings() <= 0 {
		t.Fatalf("savings %.2f with one failed region", res.Schema.Savings())
	}
	// Against a fully healthy run, quality can only be lower or equal.
	healthy, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(5)), Config{Regions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Savings() > healthy.Schema.Savings()+1e-9 {
		t.Fatalf("failed-region run (%.2f) beat the healthy run (%.2f)",
			res.Schema.Savings(), healthy.Schema.Savings())
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(context.Background(), nil, Config{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := testutil.MustBuild(testutil.Small(6))
	if _, err := Solve(context.Background(), p, Config{Regions: -2}); err == nil {
		t.Fatal("negative regions accepted")
	}
	if _, err := Solve(context.Background(), p, Config{Regions: 4, FailedRegions: []int{9}}); err == nil {
		t.Fatal("out-of-range failed region accepted")
	}
}

func TestMaxEpochs(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(7))
	res, err := Solve(context.Background(), p, Config{Regions: 4, MaxEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs > 2 {
		t.Fatalf("epochs %d, want <= 2", res.Epochs)
	}
}

func TestModeString(t *testing.T) {
	if Hierarchical.String() != "hierarchical" || Autonomous.String() != "autonomous" {
		t.Fatal("mode names wrong")
	}
}

// Property: for any region count and mode, the result satisfies all schema
// invariants and autonomous savings never exceed the capacity-unconstrained
// optimum embodied by the hierarchical run by more than rounding noise.
func TestSolveValidProperty(t *testing.T) {
	f := func(seed int64, rawRegions uint8, autonomous bool) bool {
		cfg := testutil.InstanceConfig{
			Servers: 12, Objects: 40, Requests: 3000, RWRatio: 0.85,
			CapacityPercent: 25, EdgeP: 0.4, Seed: seed,
		}
		p, err := testutil.Build(cfg)
		if err != nil {
			return false
		}
		mode := Hierarchical
		if autonomous {
			mode = Autonomous
		}
		res, err := Solve(context.Background(), p, Config{Regions: int(rawRegions%6) + 1, Mode: mode})
		if err != nil {
			return false
		}
		return res.Schema.ValidateInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
