package mechanism

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAxiomStringsAndDescriptions(t *testing.T) {
	if len(Axioms()) != 6 {
		t.Fatalf("want 6 axioms, got %d", len(Axioms()))
	}
	for _, a := range Axioms() {
		if a.String() == "" || a.Description() == "" {
			t.Fatalf("axiom %d lacks name or description", int(a))
		}
	}
	if !strings.Contains(Axiom(99).String(), "99") {
		t.Fatal("unknown axiom String should embed the number")
	}
	if Axiom(99).Description() != "" {
		t.Fatal("unknown axiom should have empty description")
	}
}

func TestPaymentRuleSatisfies(t *testing.T) {
	for _, a := range Axioms() {
		if !SecondPrice.Satisfies(a) {
			t.Fatalf("second price should satisfy %s", a)
		}
	}
	if FirstPrice.Satisfies(AxiomTruthful) {
		t.Fatal("first price must violate truthfulness")
	}
	if !FirstPrice.Satisfies(AxiomMotivation) {
		t.Fatal("first price still pays agents")
	}
	if SecondPrice.String() != "second-price" || FirstPrice.String() != "first-price" {
		t.Fatal("rule names wrong")
	}
}

func TestRunRoundEmpty(t *testing.T) {
	if _, ok := RunRound(nil, SecondPrice); ok {
		t.Fatal("empty round should report ok=false")
	}
}

func TestRunRoundSingleBid(t *testing.T) {
	r, ok := RunRound([]Bid{{Agent: 3, Item: 7, Value: 42}}, SecondPrice)
	if !ok || r.Winner.Agent != 3 || r.Winner.Item != 7 {
		t.Fatalf("bad round: %+v", r)
	}
	if r.Payment != 0 {
		t.Fatalf("lone bidder payment = %d, want 0", r.Payment)
	}
}

func TestRunRoundSecondPrice(t *testing.T) {
	bids := []Bid{
		{Agent: 0, Value: 10},
		{Agent: 1, Value: 30},
		{Agent: 2, Value: 20},
	}
	r, ok := RunRound(bids, SecondPrice)
	if !ok || r.Winner.Agent != 1 {
		t.Fatalf("winner = %+v", r.Winner)
	}
	if r.Payment != 20 {
		t.Fatalf("payment = %d, want 20", r.Payment)
	}
	if r.NumBids != 3 {
		t.Fatalf("NumBids = %d", r.NumBids)
	}
}

func TestRunRoundFirstPrice(t *testing.T) {
	bids := []Bid{{Agent: 0, Value: 10}, {Agent: 1, Value: 30}}
	r, _ := RunRound(bids, FirstPrice)
	if r.Payment != 30 {
		t.Fatalf("first-price payment = %d, want 30", r.Payment)
	}
}

func TestRunRoundTieBreak(t *testing.T) {
	bids := []Bid{
		{Agent: 5, Value: 30},
		{Agent: 2, Value: 30},
		{Agent: 7, Value: 30},
	}
	r, _ := RunRound(bids, SecondPrice)
	if r.Winner.Agent != 2 {
		t.Fatalf("tie should go to lowest agent, got %d", r.Winner.Agent)
	}
	if r.Payment != 30 {
		t.Fatalf("tie payment = %d, want 30", r.Payment)
	}
}

func TestRunRoundBestArrivesLast(t *testing.T) {
	bids := []Bid{
		{Agent: 0, Value: 5},
		{Agent: 1, Value: 7},
		{Agent: 2, Value: 50},
	}
	r, _ := RunRound(bids, SecondPrice)
	if r.Winner.Agent != 2 || r.Payment != 7 {
		t.Fatalf("round = %+v", r)
	}
}

func TestUtility(t *testing.T) {
	bids := []Bid{{Agent: 0, Value: 10}, {Agent: 1, Value: 30}}
	r, _ := RunRound(bids, SecondPrice)
	if u := Utility(r, SecondPrice, 1, 30); u != 20 {
		t.Fatalf("winner utility = %d, want 20", u)
	}
	if u := Utility(r, SecondPrice, 0, 10); u != 0 {
		t.Fatalf("loser utility = %d, want 0", u)
	}
	rf, _ := RunRound(bids, FirstPrice)
	if u := Utility(rf, FirstPrice, 1, 30); u != 0 {
		t.Fatalf("truthful first-price winner utility = %d, want 0", u)
	}
}

func TestSocialWelfare(t *testing.T) {
	bids := []Bid{{Agent: 0, Value: 10}, {Agent: 1, Value: 30}}
	r, _ := RunRound(bids, SecondPrice)
	if w := SocialWelfare(r, map[int]int64{0: 10, 1: 30}); w != 30 {
		t.Fatalf("welfare = %d, want 30", w)
	}
}

// Lemma 1 / Theorem 5: under the second-price payment, no misreport ever
// beats truth-telling, for any profile of competing bids.
func TestSecondPriceTruthfulProperty(t *testing.T) {
	f := func(trueVal int16, mis int16, rawOthers []int16) bool {
		others := make([]Bid, len(rawOthers))
		for i, v := range rawOthers {
			others[i] = Bid{Agent: i, Value: int64(v)}
		}
		return TruthfulIsDominant(SecondPrice, int64(trueVal), int64(mis), others)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// First-price payments are manipulable: there must exist scenarios where a
// misreport strictly beats the truth.
func TestFirstPriceIsManipulable(t *testing.T) {
	others := []Bid{{Agent: 0, Value: 10}}
	// True value 100; under-bidding to 11 still wins and pockets 100-11.
	if TruthfulIsDominant(FirstPrice, 100, 11, others) {
		t.Fatal("first price should reward bid-shading here")
	}
}

func TestManipulationGain(t *testing.T) {
	others := []Bid{{Agent: 0, Value: 10}}
	misreports := []int64{0, 5, 11, 50, 99, 101, 200}
	if g := ManipulationGain(SecondPrice, 100, misreports, others); g != 0 {
		t.Fatalf("second-price manipulation gain = %d, want 0", g)
	}
	if g := ManipulationGain(FirstPrice, 100, misreports, others); g <= 0 {
		t.Fatalf("first-price manipulation gain = %d, want > 0", g)
	}
}

// Property: second-price manipulation gain is never positive.
func TestManipulationGainProperty(t *testing.T) {
	f := func(trueVal uint16, rawMis []uint16, rawOthers []uint16) bool {
		others := make([]Bid, len(rawOthers))
		for i, v := range rawOthers {
			others[i] = Bid{Agent: i, Value: int64(v)}
		}
		mis := make([]int64, len(rawMis))
		for i, v := range rawMis {
			mis[i] = int64(v)
		}
		return ManipulationGain(SecondPrice, int64(trueVal), mis, others) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the winner is always a maximum-value bidder and the payment
// never exceeds the winning value under second price.
func TestRunRoundWinnerMaximalProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		bids := make([]Bid, len(raw))
		var max int64
		for i, v := range raw {
			bids[i] = Bid{Agent: i, Value: int64(v)}
			if int64(v) > max {
				max = int64(v)
			}
		}
		r, ok := RunRound(bids, SecondPrice)
		if !ok {
			return false
		}
		return r.Winner.Value == max && r.Payment <= r.Winner.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestComplianceReport(t *testing.T) {
	rep := Compliance(SecondPrice)
	if len(rep.Verdicts) != 6 {
		t.Fatalf("verdict count = %d", len(rep.Verdicts))
	}
	for a, v := range rep.Verdicts {
		if !v {
			t.Fatalf("second price should satisfy %s", a)
		}
	}
	s := rep.String()
	if !strings.Contains(s, "second-price") || !strings.Contains(s, "Truthful") {
		t.Fatalf("report missing content: %s", s)
	}
	repF := Compliance(FirstPrice)
	if repF.Verdicts[AxiomTruthful] {
		t.Fatal("first price compliance should flag truthfulness")
	}
	if !strings.Contains(repF.String(), "VIOLATED") {
		t.Fatal("violation not rendered")
	}
}

// Theorem 3: the second-price mechanism satisfies the minimization
// utilitarian characterization on arbitrary scenarios.
func TestVCGCharacterizationProperty(t *testing.T) {
	f := func(raw [][]uint16) bool {
		scenarios := make([]VCGScenario, len(raw))
		for i, vals := range raw {
			tv := make([]int64, len(vals))
			for j, v := range vals {
				tv[j] = int64(v)
			}
			scenarios[i] = VCGScenario{TrueValues: tv}
		}
		idx, err := VerifyVCGCharacterization(SecondPrice, scenarios)
		return idx == -1 && err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVCGCharacterizationSingleBidder(t *testing.T) {
	idx, err := VerifyVCGCharacterization(SecondPrice, []VCGScenario{
		{TrueValues: []int64{42}},
		{TrueValues: nil},
	})
	if idx != -1 || err != nil {
		t.Fatalf("lone bidder failed: %d %v", idx, err)
	}
}

func TestVCGCharacterizationFirstPrice(t *testing.T) {
	// First-price rounds are still allocatively efficient and pay the
	// winning bid; the characterization accepts them under their own form.
	idx, err := VerifyVCGCharacterization(FirstPrice, []VCGScenario{
		{TrueValues: []int64{5, 9, 3}},
	})
	if idx != -1 || err != nil {
		t.Fatalf("first-price form check failed: %d %v", idx, err)
	}
}
