// Package mechanism implements the generalized axiomatic game-theoretical
// mechanism of Section 3 of the paper: sealed-bid single-winner rounds with
// a configurable payment rule, the six axioms of Figure 1 as checkable
// properties, and utilities for verifying dominant-strategy truthfulness
// (Lemma 1 / Theorems 1–5).
//
// The mapping to the paper: each round, every agent i reports its dominant
// (best) private valuation t_i — in the replica game, the cost-of-replication
// benefit CoR of its favourite object. The mechanism's algorithmic output
// x(t) allocates to the highest report, and the payment p_i(t) hands the
// winner the overall second-best report (Axiom 5's "very strong incentive"),
// making truth-telling a weakly dominant strategy exactly as in a Vickrey
// auction. The winner's utility is u = v_i(t_i, x) + h(t_-i) with
// h = -(second-best), i.e. trueValue - secondBid.
package mechanism

import (
	"fmt"
	"sort"
)

// Axiom identifies one of the six axioms of Figure 1.
type Axiom int

// The six axioms, in paper order.
const (
	AxiomIngredients Axiom = iota + 1
	AxiomAgentDisposition
	AxiomTruthful
	AxiomUtilitarian
	AxiomMotivation
	AxiomAlgorithmicOutput
)

// String names the axiom.
func (a Axiom) String() string {
	switch a {
	case AxiomIngredients:
		return "Ingredients"
	case AxiomAgentDisposition:
		return "Agent disposition"
	case AxiomTruthful:
		return "Truthful"
	case AxiomUtilitarian:
		return "Utilitarian"
	case AxiomMotivation:
		return "Motivation"
	case AxiomAlgorithmicOutput:
		return "Algorithmic output"
	default:
		return fmt.Sprintf("Axiom(%d)", int(a))
	}
}

// Description returns the paper's one-line statement of the axiom.
func (a Axiom) Description() string {
	switch a {
	case AxiomIngredients:
		return "A mechanism should have an algorithmic output specification and agents' utility functions."
	case AxiomAgentDisposition:
		return "Every agent has a private true value; everything else is public knowledge."
	case AxiomTruthful:
		return "The mechanism should have agents that project dominant strategies."
	case AxiomUtilitarian:
		return "The mechanism's objective function should be to sum the agents' valuations."
	case AxiomMotivation:
		return "The mechanism should reward the agents with a payment."
	case AxiomAlgorithmicOutput:
		return "The mechanism's algorithmic output should be a function that aids the agents to execute their preferences."
	default:
		return ""
	}
}

// Axioms lists all six in paper order.
func Axioms() []Axiom {
	return []Axiom{
		AxiomIngredients, AxiomAgentDisposition, AxiomTruthful,
		AxiomUtilitarian, AxiomMotivation, AxiomAlgorithmicOutput,
	}
}

// PaymentRule selects how the winner of a round is paid.
type PaymentRule int

const (
	// SecondPrice pays the winner the second-best report (the paper's
	// Axiom 5 payment; truthful).
	SecondPrice PaymentRule = iota
	// FirstPrice pays the winner its own report (ablation baseline; not
	// truthful — agents gain by misreporting).
	FirstPrice
)

// String names the rule.
func (r PaymentRule) String() string {
	if r == FirstPrice {
		return "first-price"
	}
	return "second-price"
}

// Satisfies reports whether the rule satisfies the given axiom. Only the
// truthfulness axiom distinguishes the rules: first-price payments break
// dominant-strategy truth-telling (verified empirically in tests).
func (r PaymentRule) Satisfies(a Axiom) bool {
	if a == AxiomTruthful {
		return r == SecondPrice
	}
	return true
}

// Bid is one agent's sealed report for one round: "replicating Item on my
// server is worth Value to me".
type Bid struct {
	Agent int
	Item  int32
	Value int64
}

// Round is the outcome of one sealed-bid round.
type Round struct {
	Winner  Bid
	Payment int64 // second-best (or own, for first-price) report
	NumBids int
}

// RunRound selects the winner (highest value; ties break toward the lowest
// agent id for determinism) and computes the payment. ok is false when no
// bids were submitted.
func RunRound(bids []Bid, rule PaymentRule) (round Round, ok bool) {
	if len(bids) == 0 {
		return Round{}, false
	}
	best := bids[0]
	second := int64(0) // a lone bidder is paid 0 (no competition to beat)
	hasSecond := false
	for _, b := range bids[1:] {
		if b.Value > best.Value || (b.Value == best.Value && b.Agent < best.Agent) {
			second, hasSecond = best.Value, true
			best = b
		} else if !hasSecond || b.Value > second {
			second, hasSecond = b.Value, true
		}
	}
	payment := second
	if rule == FirstPrice {
		payment = best.Value
	}
	return Round{Winner: best, Payment: payment, NumBids: len(bids)}, true
}

// Utility returns an agent's utility for a round given its true value: the
// winner earns trueValue - secondBid under second-price (trueValue - ownBid
// under first-price reduces to 0 when truthful); losers earn 0. This is the
// paper's u_i = p_i + v_i with h_i(t_-i) = -min second-best.
func Utility(r Round, rule PaymentRule, agent int, trueValue int64) int64 {
	if r.Winner.Agent != agent {
		return 0
	}
	switch rule {
	case FirstPrice:
		return trueValue - r.Winner.Value
	default:
		return trueValue - r.Payment
	}
}

// SocialWelfare is the utilitarian objective g(t,x) = Σ v_i(t_i, x)
// (Theorem 2): with a single-winner allocation it is the winner's true
// value.
func SocialWelfare(r Round, trueValues map[int]int64) int64 {
	return trueValues[r.Winner.Agent]
}

// TruthfulIsDominant checks dominant-strategy truthfulness on one concrete
// scenario: an agent with the given true value, considering one misreport,
// against a fixed profile of other agents' reports. It returns true when
// reporting the truth yields at least the misreport's utility.
func TruthfulIsDominant(rule PaymentRule, trueValue, misreport int64, others []Bid) bool {
	truthBids := append(append([]Bid(nil), others...), Bid{Agent: -1, Value: trueValue})
	misBids := append(append([]Bid(nil), others...), Bid{Agent: -1, Value: misreport})
	rT, _ := RunRound(truthBids, rule)
	rM, _ := RunRound(misBids, rule)
	return Utility(rT, rule, -1, trueValue) >= Utility(rM, rule, -1, trueValue)
}

// ManipulationGain returns the maximum utility improvement the agent can
// extract by misreporting over the given candidate misreports. A truthful
// mechanism yields 0 for every scenario.
func ManipulationGain(rule PaymentRule, trueValue int64, misreports []int64, others []Bid) int64 {
	truthBids := append(append([]Bid(nil), others...), Bid{Agent: -1, Value: trueValue})
	rT, _ := RunRound(truthBids, rule)
	base := Utility(rT, rule, -1, trueValue)
	var gain int64
	for _, m := range misreports {
		bids := append(append([]Bid(nil), others...), Bid{Agent: -1, Value: m})
		r, _ := RunRound(bids, rule)
		if u := Utility(r, rule, -1, trueValue); u-base > gain {
			gain = u - base
		}
	}
	return gain
}

// VCGScenario is one concrete situation for the Theorem 3 characterization
// check: the agents' true values for a single-item round.
type VCGScenario struct {
	TrueValues []int64
}

// VerifyVCGCharacterization checks Theorem 3's two conditions on concrete
// scenarios: (1) the allocation maximizes the reported social value
// (x(t) ∈ argmax Σ v_i), and (2) the winner's payment equals the
// externality form p_i = Σ_{j≠i} v_j(x) + h_i(t_-i) with
// h_i = -(best competing value) — which reduces, for a single-item round,
// to the second-best report. It returns the first scenario violating
// either condition, or -1 when all pass.
func VerifyVCGCharacterization(rule PaymentRule, scenarios []VCGScenario) (int, error) {
	for idx, sc := range scenarios {
		if len(sc.TrueValues) == 0 {
			continue
		}
		bids := make([]Bid, len(sc.TrueValues))
		var max, second int64
		haveMax := false
		for i, v := range sc.TrueValues {
			bids[i] = Bid{Agent: i, Value: v}
			switch {
			case !haveMax || v > max:
				second, max, haveMax = max, v, true
			case v > second:
				second = v
			}
		}
		if len(sc.TrueValues) == 1 {
			second = 0
		}
		round, ok := RunRound(bids, rule)
		if !ok {
			return idx, fmt.Errorf("mechanism: round failed on scenario %d", idx)
		}
		// Condition 1: allocative efficiency.
		if round.Winner.Value != max {
			return idx, fmt.Errorf("mechanism: scenario %d: winner value %d is not the maximum %d",
				idx, round.Winner.Value, max)
		}
		// Condition 2: the Groves payment form.
		if rule == SecondPrice && round.Payment != second {
			return idx, fmt.Errorf("mechanism: scenario %d: payment %d != externality form %d",
				idx, round.Payment, second)
		}
		if rule == FirstPrice && round.Payment != round.Winner.Value {
			return idx, fmt.Errorf("mechanism: scenario %d: first-price payment %d != winning bid %d",
				idx, round.Payment, round.Winner.Value)
		}
	}
	return -1, nil
}

// ComplianceReport relates a payment rule to the six axioms, for
// documentation and the examples.
type ComplianceReport struct {
	Rule     PaymentRule
	Verdicts map[Axiom]bool
}

// Compliance builds the report for a rule.
func Compliance(rule PaymentRule) ComplianceReport {
	rep := ComplianceReport{Rule: rule, Verdicts: make(map[Axiom]bool, 6)}
	for _, a := range Axioms() {
		rep.Verdicts[a] = rule.Satisfies(a)
	}
	return rep
}

// String renders the compliance report, axioms in paper order.
func (c ComplianceReport) String() string {
	out := fmt.Sprintf("payment rule %s:\n", c.Rule)
	axioms := Axioms()
	sort.Slice(axioms, func(i, j int) bool { return axioms[i] < axioms[j] })
	for _, a := range axioms {
		mark := "satisfied"
		if !c.Verdicts[a] {
			mark = "VIOLATED"
		}
		out += fmt.Sprintf("  axiom %d (%s): %s\n", int(a), a, mark)
	}
	return out
}
