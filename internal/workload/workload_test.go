package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/trace"
)

func TestNewAndFinalize(t *testing.T) {
	w := New(2, 3)
	w.ObjectSize[0], w.ObjectSize[1], w.ObjectSize[2] = 1, 2, 3
	w.PerServer[0] = []Demand{
		{Object: 2, Reads: 5},
		{Object: 0, Reads: 1, Writes: 1},
		{Object: 2, Writes: 3}, // duplicate to be merged
	}
	w.PerServer[1] = []Demand{{Object: 0, Reads: 4}}
	w.Finalize()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	ds := w.Demands(0)
	if len(ds) != 2 || ds[0].Object != 0 || ds[1].Object != 2 {
		t.Fatalf("finalize failed: %+v", ds)
	}
	if ds[1].Reads != 5 || ds[1].Writes != 3 {
		t.Fatalf("duplicate merge failed: %+v", ds[1])
	}
	if w.TotalReads[0] != 5 || w.TotalWrites[2] != 3 {
		t.Fatalf("aggregates wrong: reads0=%d writes2=%d", w.TotalReads[0], w.TotalWrites[2])
	}
}

func TestReadsWrites(t *testing.T) {
	w := New(1, 5)
	for k := range w.ObjectSize {
		w.ObjectSize[k] = 1
	}
	w.PerServer[0] = []Demand{{Object: 1, Reads: 10, Writes: 2}, {Object: 3, Reads: 7}}
	w.Finalize()
	r, wr := w.ReadsWrites(0, 1)
	if r != 10 || wr != 2 {
		t.Fatalf("ReadsWrites(0,1) = %d,%d", r, wr)
	}
	r, wr = w.ReadsWrites(0, 2)
	if r != 0 || wr != 0 {
		t.Fatalf("missing pair should be zero, got %d,%d", r, wr)
	}
}

func TestValidateErrors(t *testing.T) {
	w := New(1, 1)
	w.ObjectSize[0] = 0
	if err := w.Validate(); err == nil {
		t.Error("zero size accepted")
	}
	w = New(1, 1)
	w.ObjectSize[0] = 1
	w.Primary[0] = 5
	if err := w.Validate(); err == nil {
		t.Error("bad primary accepted")
	}
	w = New(1, 1)
	w.ObjectSize[0] = 1
	w.PerServer[0] = []Demand{{Object: 9}}
	if err := w.Validate(); err == nil {
		t.Error("bad object ref accepted")
	}
	w = New(1, 2)
	w.ObjectSize[0], w.ObjectSize[1] = 1, 1
	w.PerServer[0] = []Demand{{Object: 0, Reads: -1}}
	if err := w.Validate(); err == nil {
		t.Error("negative reads accepted")
	}
	w = New(1, 2)
	w.ObjectSize[0], w.ObjectSize[1] = 1, 1
	w.PerServer[0] = []Demand{{Object: 1}, {Object: 0}}
	if err := w.Validate(); err == nil {
		t.Error("unsorted list accepted")
	}
}

func TestMapClients(t *testing.T) {
	r := stats.NewRNG(1)
	cm, err := MapClients(500, 40, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm) != 500 {
		t.Fatalf("len = %d", len(cm))
	}
	counts := make([]int, 40)
	for _, s := range cm {
		if s < 0 || s >= 40 {
			t.Fatalf("server %d out of range", s)
		}
		counts[s]++
	}
	// 1-M mapping: at least one server shared by multiple clients.
	shared := false
	for _, c := range counts {
		if c > 1 {
			shared = true
		}
	}
	if !shared {
		t.Fatal("expected a 1-M (shared) mapping")
	}
	if _, err := MapClients(0, 5, r); err == nil {
		t.Error("0 clients accepted")
	}
	if _, err := MapClients(5, 0, r); err == nil {
		t.Error("0 servers accepted")
	}
}

func TestFromTrace(t *testing.T) {
	l, err := trace.Generate(trace.Config{
		Objects: 100, Clients: 30, Events: 10000, WriteRatio: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(4)
	cm, err := MapClients(30, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FromTrace(l, cm, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Conservation: every trace event must land in exactly one demand cell.
	if got := w.TotalRequests(); got != int64(len(l.Events)) {
		t.Fatalf("request conservation broken: %d vs %d", got, len(l.Events))
	}
	s := l.Summarize()
	if math.Abs(w.ReadWriteRatio()-(1-s.WriteRatio)) > 1e-9 {
		t.Fatalf("read ratio mismatch: %v vs %v", w.ReadWriteRatio(), 1-s.WriteRatio)
	}
	if w.TotalPrimarySize() <= 0 {
		t.Fatal("primary size should be positive")
	}
}

func TestFromTraceShortClientMap(t *testing.T) {
	l, _ := trace.Generate(trace.Config{Objects: 10, Clients: 30, Events: 100, Seed: 1})
	r := stats.NewRNG(1)
	cm, _ := MapClients(5, 10, r)
	if _, err := FromTrace(l, cm, 10, r); err == nil {
		t.Fatal("short client map accepted")
	}
}

func TestSyntheticBasics(t *testing.T) {
	w, err := Synthetic(SyntheticConfig{
		Servers: 20, Objects: 100, Requests: 50000, RWRatio: 0.8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.TotalRequests() == 0 {
		t.Fatal("no requests distributed")
	}
	// Realized R/W ratio should be near the requested one.
	if math.Abs(w.ReadWriteRatio()-0.8) > 0.05 {
		t.Fatalf("R/W ratio %v too far from 0.8", w.ReadWriteRatio())
	}
}

func TestSyntheticRWRatioSweep(t *testing.T) {
	for _, rw := range []float64{0.2, 0.5, 0.95} {
		w, err := Synthetic(SyntheticConfig{
			Servers: 15, Objects: 80, Requests: 30000, RWRatio: rw, Seed: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.ReadWriteRatio()-rw) > 0.07 {
			t.Fatalf("requested R/W %v, realized %v", rw, w.ReadWriteRatio())
		}
	}
}

func TestSyntheticSkew(t *testing.T) {
	w, err := Synthetic(SyntheticConfig{
		Servers: 10, Objects: 500, Requests: 100000, RWRatio: 0.9, ZipfS: 1.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	vols := make([]float64, w.N)
	for k := 0; k < w.N; k++ {
		vols[k] = float64(w.TotalReads[k] + w.TotalWrites[k])
	}
	if g := stats.GiniCoefficient(vols); g < 0.5 {
		t.Fatalf("object volume Gini %v — not Zipf-skewed", g)
	}
}

func TestSyntheticErrors(t *testing.T) {
	bad := []SyntheticConfig{
		{Servers: 0, Objects: 1, Requests: 1, RWRatio: 0.5},
		{Servers: 1, Objects: 0, Requests: 1, RWRatio: 0.5},
		{Servers: 1, Objects: 1, Requests: 0, RWRatio: 0.5},
		{Servers: 1, Objects: 1, Requests: 1, RWRatio: 0},
		{Servers: 1, Objects: 1, Requests: 1, RWRatio: 1.5},
		{Servers: 1, Objects: 1, Requests: 1, RWRatio: 0.5, DemandFraction: -1},
	}
	for i, cfg := range bad {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	cfg := SyntheticConfig{Servers: 8, Objects: 40, Requests: 5000, RWRatio: 0.7, Seed: 11}
	a, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.M; i++ {
		da, db := a.Demands(i), b.Demands(i)
		if len(da) != len(db) {
			t.Fatalf("server %d demand lengths differ", i)
		}
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("server %d demand %d differs", i, j)
			}
		}
	}
}

// Property: synthetic workloads conserve request volume exactly.
func TestSyntheticConservationProperty(t *testing.T) {
	f := func(seed int64, rawM, rawN uint8, rawReq uint16) bool {
		cfg := SyntheticConfig{
			Servers:  int(rawM%20) + 2,
			Objects:  int(rawN%50) + 2,
			Requests: int(rawReq%5000) + 100,
			RWRatio:  0.75,
			Seed:     seed,
		}
		w, err := Synthetic(cfg)
		if err != nil {
			return false
		}
		return w.TotalRequests() == int64(cfg.Requests) && w.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDemandSeedKeepsCatalogueFixed(t *testing.T) {
	base := SyntheticConfig{Servers: 10, Objects: 50, Requests: 4000, RWRatio: 0.85, Seed: 42}
	a, err := Synthetic(base)
	if err != nil {
		t.Fatal(err)
	}
	drift := base
	drift.DemandSeed = 777
	b, err := Synthetic(drift)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < a.N; k++ {
		if a.ObjectSize[k] != b.ObjectSize[k] {
			t.Fatalf("object %d size drifted", k)
		}
		if a.Primary[k] != b.Primary[k] {
			t.Fatalf("object %d primary drifted", k)
		}
	}
	// Demand must actually differ.
	same := true
	for i := 0; i < a.M && same; i++ {
		da, db := a.Demands(i), b.Demands(i)
		if len(da) != len(db) {
			same = false
			break
		}
		for j := range da {
			if da[j] != db[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("DemandSeed did not change the demand")
	}
}
