// Package workload turns an access trace (or a direct synthetic model) into
// the demand matrices of the Data Replication Problem: per-server read and
// write frequencies r_ik and w_ik, object sizes o_k, and primary-server
// assignments P_k (Section 2 of the paper).
//
// The matrices are stored sparsely: real traces touch only a small fraction
// of the M x N server/object pairs, and the paper's own algorithm keeps a
// per-server candidate list L_i rather than a dense matrix.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Demand records one server's read/write frequency for one object.
type Demand struct {
	Object int32
	Reads  int64
	Writes int64
}

// Workload is the demand side of a DRP instance.
type Workload struct {
	M int // servers
	N int // objects

	ObjectSize []int64    // o_k, len N, all >= 1
	Primary    []int32    // P_k, len N
	PerServer  [][]Demand // per server, sorted by Object, at most one entry per object

	// Aggregates derived by Finalize.
	TotalReads  []int64 // per object Σ_i r_ik
	TotalWrites []int64 // per object Σ_i w_ik
}

// New returns an empty workload for M servers and N objects.
func New(m, n int) *Workload {
	return &Workload{
		M:          m,
		N:          n,
		ObjectSize: make([]int64, n),
		Primary:    make([]int32, n),
		PerServer:  make([][]Demand, m),
	}
}

// Finalize sorts per-server demand lists and computes per-object aggregates.
// It must be called after all demand has been added and before the workload
// is used to build a replication problem.
func (w *Workload) Finalize() {
	w.TotalReads = make([]int64, w.N)
	w.TotalWrites = make([]int64, w.N)
	for i := range w.PerServer {
		ds := w.PerServer[i]
		sort.Slice(ds, func(a, b int) bool { return ds[a].Object < ds[b].Object })
		// Merge duplicate object entries.
		out := ds[:0]
		for _, d := range ds {
			if len(out) > 0 && out[len(out)-1].Object == d.Object {
				out[len(out)-1].Reads += d.Reads
				out[len(out)-1].Writes += d.Writes
			} else {
				out = append(out, d)
			}
		}
		w.PerServer[i] = out
		for _, d := range out {
			w.TotalReads[d.Object] += d.Reads
			w.TotalWrites[d.Object] += d.Writes
		}
	}
}

// Validate checks structural invariants.
func (w *Workload) Validate() error {
	if len(w.ObjectSize) != w.N || len(w.Primary) != w.N || len(w.PerServer) != w.M {
		return fmt.Errorf("workload: shape mismatch: sizes=%d primaries=%d servers=%d (M=%d N=%d)",
			len(w.ObjectSize), len(w.Primary), len(w.PerServer), w.M, w.N)
	}
	for k, s := range w.ObjectSize {
		if s < 1 {
			return fmt.Errorf("workload: object %d has size %d < 1", k, s)
		}
		if w.Primary[k] < 0 || int(w.Primary[k]) >= w.M {
			return fmt.Errorf("workload: object %d primary %d out of range", k, w.Primary[k])
		}
	}
	for i, ds := range w.PerServer {
		for j, d := range ds {
			if d.Object < 0 || int(d.Object) >= w.N {
				return fmt.Errorf("workload: server %d demand %d references object %d", i, j, d.Object)
			}
			if d.Reads < 0 || d.Writes < 0 {
				return fmt.Errorf("workload: server %d object %d has negative demand", i, d.Object)
			}
			if j > 0 && ds[j-1].Object >= d.Object {
				return fmt.Errorf("workload: server %d demand list unsorted or duplicated at %d", i, j)
			}
		}
	}
	return nil
}

// Clone returns an independent deep copy of the workload: mutating the
// copy's demand lists, catalogue or aggregates never affects the original.
func (w *Workload) Clone() *Workload {
	c := &Workload{
		M:          w.M,
		N:          w.N,
		ObjectSize: append([]int64(nil), w.ObjectSize...),
		Primary:    append([]int32(nil), w.Primary...),
		PerServer:  make([][]Demand, len(w.PerServer)),
	}
	for i, ds := range w.PerServer {
		c.PerServer[i] = append([]Demand(nil), ds...)
	}
	if w.TotalReads != nil {
		c.TotalReads = append([]int64(nil), w.TotalReads...)
	}
	if w.TotalWrites != nil {
		c.TotalWrites = append([]int64(nil), w.TotalWrites...)
	}
	return c
}

// Demands returns server i's demand list (sorted by object).
func (w *Workload) Demands(i int) []Demand { return w.PerServer[i] }

// ReadsWrites returns (r_ik, w_ik) for a specific pair via binary search.
func (w *Workload) ReadsWrites(i int, k int32) (int64, int64) {
	ds := w.PerServer[i]
	idx := sort.Search(len(ds), func(j int) bool { return ds[j].Object >= k })
	if idx < len(ds) && ds[idx].Object == k {
		return ds[idx].Reads, ds[idx].Writes
	}
	return 0, 0
}

// TotalPrimarySize returns Σ_k o_k, the figure the paper scales server
// capacities against.
func (w *Workload) TotalPrimarySize() int64 {
	var total int64
	for _, s := range w.ObjectSize {
		total += s
	}
	return total
}

// ClientMap maps trace clients onto servers. The paper performs a random
// 1-M (not 1-1) mapping of the top clients onto topology nodes to obtain a
// skewed workload.
type ClientMap []int32

// MapClients builds a random client-to-server map. Every client is assigned
// to a uniformly random server; multiple clients may share a server and some
// servers may receive none, exactly the paper's 1-M mapping.
func MapClients(clients, servers int, r *stats.RNG) (ClientMap, error) {
	if clients <= 0 || servers <= 0 {
		return nil, fmt.Errorf("workload: MapClients needs positive counts, got %d clients %d servers", clients, servers)
	}
	m := make(ClientMap, clients)
	for c := range m {
		m[c] = int32(r.Intn(servers))
	}
	return m, nil
}

// FromTrace aggregates a trace into a workload: reads and writes are counted
// per (server, object) pair through the client map; primaries are assigned
// to uniformly random servers ("the primary replicas' original server was
// mimicked by choosing random locations").
func FromTrace(l *trace.Log, cm ClientMap, servers int, r *stats.RNG) (*Workload, error) {
	if len(cm) < int(l.Clients) {
		return nil, fmt.Errorf("workload: client map covers %d clients, trace has %d", len(cm), l.Clients)
	}
	w := New(servers, int(l.Objects))
	for k, s := range l.ObjectSizes {
		w.ObjectSize[k] = int64(s)
		w.Primary[k] = int32(r.Intn(servers))
	}
	type key struct {
		server int32
		object int32
	}
	acc := make(map[key]*Demand, len(l.Events)/4)
	for _, e := range l.Events {
		srv := cm[e.Client]
		if int(srv) >= servers || srv < 0 {
			return nil, fmt.Errorf("workload: client map sends client %d to invalid server %d", e.Client, srv)
		}
		kk := key{server: srv, object: e.Object}
		d := acc[kk]
		if d == nil {
			d = &Demand{Object: e.Object}
			acc[kk] = d
		}
		if e.Write {
			d.Writes++
		} else {
			d.Reads++
		}
	}
	for kk, d := range acc {
		w.PerServer[kk.server] = append(w.PerServer[kk.server], *d)
	}
	w.Finalize()
	return w, nil
}

// SyntheticConfig parameterizes a direct (trace-free) workload model used by
// the experiment harness, where the read/write ratio and total request
// volume are controlled exactly.
type SyntheticConfig struct {
	Servers  int
	Objects  int
	Requests int     // total request volume to distribute
	RWRatio  float64 // fraction of requests that are reads, in (0,1]
	ZipfS    float64 // object popularity skew (default 1.1)
	MeanSize float64 // default 8
	SizeStd  float64 // default 12
	// DemandFraction is the fraction of servers that have any demand for a
	// given object (default 0.25): real workloads never touch every pair.
	DemandFraction float64
	Seed           int64
	// DemandSeed, when non-zero, reseeds only the demand side (object
	// popularity and its spread over servers) while the catalogue — object
	// sizes and primary assignments — stays exactly as under Seed. The
	// adaptive extension uses this to model demand drift over a fixed
	// system.
	DemandSeed int64
}

// Synthetic builds a workload directly from the statistical model. The
// request volume of each object follows a Zipf law; each object's demand is
// spread over a random subset of servers.
func Synthetic(cfg SyntheticConfig) (*Workload, error) {
	if cfg.Servers <= 0 || cfg.Objects <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("workload: Synthetic needs positive Servers/Objects/Requests, got %d/%d/%d",
			cfg.Servers, cfg.Objects, cfg.Requests)
	}
	if cfg.RWRatio <= 0 || cfg.RWRatio > 1 {
		return nil, fmt.Errorf("workload: RWRatio must be in (0,1], got %v", cfg.RWRatio)
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.MeanSize == 0 {
		cfg.MeanSize = 8
	}
	if cfg.SizeStd == 0 {
		cfg.SizeStd = 12
	}
	if cfg.DemandFraction == 0 {
		cfg.DemandFraction = 0.25
	}
	if cfg.DemandFraction < 0 || cfg.DemandFraction > 1 {
		return nil, fmt.Errorf("workload: DemandFraction must be in (0,1], got %v", cfg.DemandFraction)
	}
	root := stats.NewRNG(cfg.Seed)
	sizeRNG := root.Split(1)
	primRNG := root.Split(4)
	demandRoot := root
	if cfg.DemandSeed != 0 {
		demandRoot = stats.NewRNG(cfg.DemandSeed)
	}
	popRNG := demandRoot.Split(2)
	demRNG := demandRoot.Split(3)

	w := New(cfg.Servers, cfg.Objects)
	ln, err := stats.LognormalFromMeanStd(cfg.MeanSize, cfg.SizeStd)
	if err != nil {
		return nil, err
	}
	for k := 0; k < cfg.Objects; k++ {
		s := int64(ln.Sample(sizeRNG))
		if s < 1 {
			s = 1
		}
		w.ObjectSize[k] = s
		w.Primary[k] = int32(primRNG.Intn(cfg.Servers))
	}

	// Distribute total request volume over objects by sampling the Zipf law.
	zipf, err := stats.NewZipf(popRNG, cfg.ZipfS, uint64(cfg.Objects))
	if err != nil {
		return nil, err
	}
	perObject := make([]int64, cfg.Objects)
	rankToObject := popRNG.Perm32(cfg.Objects)
	for i := 0; i < cfg.Requests; i++ {
		perObject[rankToObject[zipf.Sample(popRNG)]]++
	}

	// Spread each object's volume over a random server subset with a
	// geometric (heavy-tailed) split: the top demander takes about half,
	// the next a quarter, and so on. This mirrors the paper's skewed
	// 1-M client-to-server mapping, where a few servers dominate each
	// object's traffic — the regime in which replication pays off.
	for k := 0; k < cfg.Objects; k++ {
		vol := perObject[k]
		if vol == 0 {
			continue
		}
		nServers := int(float64(cfg.Servers)*cfg.DemandFraction + 0.5)
		if nServers < 1 {
			nServers = 1
		}
		subset := demRNG.Perm32(cfg.Servers)[:nServers]
		reads := int64(float64(vol)*cfg.RWRatio + 0.5)
		writes := vol - reads
		readShares := geometricSplit(reads, nServers)
		writeShares := geometricSplit(writes, nServers)
		for si, srv := range subset {
			r, wr := readShares[si], writeShares[si]
			if r == 0 && wr == 0 {
				continue
			}
			w.PerServer[srv] = append(w.PerServer[srv], Demand{Object: int32(k), Reads: r, Writes: wr})
		}
	}
	w.Finalize()
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// ReadWriteRatio reports the realized fraction of requests that are reads.
func (w *Workload) ReadWriteRatio() float64 {
	var r, t int64
	for k := 0; k < w.N; k++ {
		r += w.TotalReads[k]
		t += w.TotalReads[k] + w.TotalWrites[k]
	}
	if t == 0 {
		return 0
	}
	return float64(r) / float64(t)
}

// TotalRequests reports Σ (reads + writes).
func (w *Workload) TotalRequests() int64 {
	var t int64
	for k := 0; k < w.N; k++ {
		t += w.TotalReads[k] + w.TotalWrites[k]
	}
	return t
}

// geometricSplit partitions total into buckets with a geometric taper: the
// first bucket receives about half, the second a quarter, and so on, with
// the remainder folded into the last bucket. The split is exact
// (Σ out == total).
func geometricSplit(total int64, buckets int) []int64 {
	out := make([]int64, buckets)
	rem := total
	for j := 0; j < buckets-1 && rem > 0; j++ {
		share := (rem + 1) / 2
		out[j] = share
		rem -= share
	}
	out[buckets-1] += rem
	return out
}
