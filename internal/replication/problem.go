// Package replication models the Data Replication Problem (DRP) of
// Section 2 of the paper: M servers with storage capacities, N objects with
// primary copies, per-server read/write frequencies, and the Object
// Transfer Cost (OTC) objective
//
//	C = Σ_i Σ_k ( R_ik + W_ik )
//	R_ik = r_ik · o_k · c(i, NN_ik)                                (Eq. 1)
//	W_ik = w_ik · o_k · ( c(i, P_k) + Σ_{j∈R_k, j≠i} c(P_k, j) )   (Eq. 2)
//
// subject to Σ_k X_ik·o_k ≤ s_i and X_{P_k,k} = 1 (Eq. 4's constraints).
//
// The central type is Schema, a mutable replica placement that maintains
// the exact OTC incrementally: placing one replica costs O(demanders(k))
// instead of a full O(M·N·|R|) recomputation. Every solver in the
// repository (AGT-RAM and the five baselines) runs against this engine, so
// their reported savings are directly comparable.
package replication

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/workload"
)

// CostFn is the communication-cost oracle c(i,j). topology.DistMatrix
// implements it; tests may use synthetic metrics.
type CostFn interface {
	// At returns the cost of moving one data unit between servers i and j.
	At(i, j int) int32
	// N reports the number of servers covered.
	N() int
}

// RowCostFn is an optional CostFn fast path: a symmetric cost oracle whose
// rows are stored contiguously exposes Row(i), the shared slice of costs
// c(i, ·) — which, by symmetry, is also the column c(·, i). Hot
// per-demander walks index the slice directly instead of paying a virtual
// At call per server. topology.DistMatrix implements it (its symmetry is a
// validated metric invariant); asymmetric oracles must not.
type RowCostFn interface {
	CostFn
	Row(i int) []int32
}

// RowInvalidator is an optional CostFn capability: oracles that cache
// distance rows keyed by server (the CSR-lazy oracle in internal/distoracle)
// expose InvalidateRow so topology deltas — a server joining or leaving —
// can drop the affected cached rows instead of rebuilding the whole oracle.
// Dense matrices and stateless oracles simply don't implement it.
type RowInvalidator interface {
	// InvalidateRow drops any cached distance row for server i. Safe to
	// call with out-of-range i (a no-op) and concurrently with readers.
	InvalidateRow(i int)
}

// CostColumn returns the cost column c(·, m) as a shared slice when the
// oracle supports it, nil otherwise. Callers must keep an At-based fallback
// and must not mutate the slice. The slice may have been materialized
// lazily by the oracle (and may later be evicted from its cache), but it
// remains valid and immutable for as long as the caller holds it.
func (p *Problem) CostColumn(m int) []int32 {
	if rc, ok := p.Cost.(RowCostFn); ok {
		return rc.Row(m)
	}
	return nil
}

// Problem is an immutable DRP instance.
type Problem struct {
	M, N     int
	Cost     CostFn
	Work     *workload.Workload
	Capacity []int64 // s_i, total storage per server (includes primary load)

	// byObject indexes demand cells by object: all (server, demand-slot)
	// pairs with demand on object k. Built once; shared by all schemas.
	byObject [][]DemandRef
	// primaryLoad is Σ_{k: P_k = i} o_k per server.
	primaryLoad []int64
	// cellBase[i] is the global id of server i's first demand cell; len M+1.
	// Flat per-cell tables (the schema's NN tables, the arena's slot map)
	// index with CellBase[i]+slot instead of nested slices.
	cellBase []int32
	// cellReads[cell] caches Work.PerServer[i][slot].Reads so the placement
	// hot loop reads one flat slice instead of chasing the nested workload.
	cellReads []int64
}

// DemandRef locates one demand cell: Work.PerServer[Server][Slot]. The
// per-object index of these refs is what lets solvers touch only the
// demanders of a placed object instead of rescanning every agent. Cell is
// the same cell's precomputed global id, CellBase()[Server]+Slot.
type DemandRef struct {
	Server int32
	Slot   int32 // index into Work.PerServer[Server]
	Cell   int32 // global demand-cell id
}

// NewProblem validates and indexes a DRP instance. The capacity slice must
// leave room for each server's primary copies.
func NewProblem(cost CostFn, w *workload.Workload, capacity []int64) (*Problem, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if cost.N() < w.M {
		return nil, fmt.Errorf("replication: cost matrix covers %d servers, workload needs %d", cost.N(), w.M)
	}
	if len(capacity) != w.M {
		return nil, fmt.Errorf("replication: capacity has %d entries, want %d", len(capacity), w.M)
	}
	p := &Problem{
		M:           w.M,
		N:           w.N,
		Cost:        cost,
		Work:        w,
		Capacity:    capacity,
		byObject:    make([][]DemandRef, w.N),
		primaryLoad: make([]int64, w.M),
	}
	for k := 0; k < w.N; k++ {
		p.primaryLoad[w.Primary[k]] += w.ObjectSize[k]
	}
	p.cellBase = make([]int32, w.M+1)
	var cells int32
	for i := 0; i < w.M; i++ {
		p.cellBase[i] = cells
		cells += int32(len(w.PerServer[i]))
	}
	p.cellBase[w.M] = cells
	p.cellReads = make([]int64, cells)
	for i := 0; i < w.M; i++ {
		if capacity[i] < p.primaryLoad[i] {
			return nil, fmt.Errorf("replication: server %d capacity %d below its primary load %d",
				i, capacity[i], p.primaryLoad[i])
		}
		base := p.cellBase[i]
		for slot, d := range w.PerServer[i] {
			cell := base + int32(slot)
			p.cellReads[cell] = d.Reads
			p.byObject[d.Object] = append(p.byObject[d.Object],
				DemandRef{Server: int32(i), Slot: int32(slot), Cell: cell})
		}
	}
	return p, nil
}

// CellBase returns the demand-cell prefix table: server i's demand cells
// occupy global ids [CellBase()[i], CellBase()[i+1]). The slice is shared;
// callers must not mutate it.
func (p *Problem) CellBase() []int32 { return p.cellBase }

// Cells reports the total number of demand cells across all servers.
func (p *Problem) Cells() int { return len(p.cellReads) }

// PrimaryLoad reports the storage consumed on server i by primary copies.
func (p *Problem) PrimaryLoad(i int) int64 { return p.primaryLoad[i] }

// Demanders reports how many servers have demand for object k.
func (p *Problem) Demanders(k int32) int { return len(p.byObject[k]) }

// DemandersOf returns the demand index of object k: every (server, slot)
// with demand on k. The slice is shared; callers must not mutate it.
func (p *Problem) DemandersOf(k int32) []DemandRef { return p.byObject[k] }

// ReplicationHeadroom converts the paper's capacity percentage C% into a
// system-wide replica budget: at C%, the servers together can hold about
// C/100 × ReplicationHeadroom extra copies of the whole catalogue. The
// constant is calibrated so that the Figure 3 sweep (C = 10..40%) crosses
// the binding-to-saturated transition inside the plotted range, as in the
// paper. (Taken literally, the paper's capacity description — every server
// holds 0.5x to 1.5x the *total* primary size — never binds and would make
// Figure 3 flat; see DESIGN.md for the substitution note.)
const ReplicationHeadroom = 20.0

// GenerateCapacities draws per-server capacities for the paper's C%
// parameter: each server targets (C/100)·ReplicationHeadroom·T/M storage
// units (T = total primary size, M = servers), jittered uniformly in
// [0.5, 1.5) of the target and always at least the server's primary load so
// the instance is feasible.
func GenerateCapacities(w *workload.Workload, percent float64, r *stats.RNG) ([]int64, error) {
	if percent <= 0 {
		return nil, fmt.Errorf("replication: capacity percent must be positive, got %v", percent)
	}
	total := w.TotalPrimarySize()
	target := float64(total) * percent / 100 * ReplicationHeadroom / float64(w.M)
	primaryLoad := make([]int64, w.M)
	for k := 0; k < w.N; k++ {
		primaryLoad[w.Primary[k]] += w.ObjectSize[k]
	}
	caps := make([]int64, w.M)
	for i := range caps {
		jitter := 0.5 + r.Float64() // uniform in [0.5, 1.5)
		c := int64(target * jitter)
		if c < primaryLoad[i] {
			c = primaryLoad[i]
		}
		caps[i] = c
	}
	return caps, nil
}

// UniformCost is a trivial CostFn for tests: c(i,j) = w for i != j, 0 on the
// diagonal.
type UniformCost struct {
	Nodes  int
	Weight int32
}

// At implements CostFn.
func (u UniformCost) At(i, j int) int32 {
	if i == j {
		return 0
	}
	return u.Weight
}

// N implements CostFn.
func (u UniformCost) N() int { return u.Nodes }
