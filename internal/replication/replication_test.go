package replication

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// tinyProblem: 3 servers on a line (0-1-2, unit edges), 2 objects.
//
//	object 0: size 2, primary at server 0
//	object 1: size 1, primary at server 2
//	server 0: reads obj1 x10
//	server 1: reads obj0 x4, writes obj0 x1
//	server 2: reads obj0 x6, writes obj1 x2
func tinyProblem(t *testing.T, capacity int64) *Problem {
	t.Helper()
	w := workload.New(3, 2)
	w.ObjectSize[0], w.ObjectSize[1] = 2, 1
	w.Primary[0], w.Primary[1] = 0, 2
	w.PerServer[0] = []workload.Demand{{Object: 1, Reads: 10}}
	w.PerServer[1] = []workload.Demand{{Object: 0, Reads: 4, Writes: 1}}
	w.PerServer[2] = []workload.Demand{{Object: 0, Reads: 6}, {Object: 1, Writes: 2}}
	w.Finalize()
	dist := topology.AllPairs(topology.Line(3), 1)
	caps := []int64{capacity, capacity, capacity}
	p, err := NewProblem(dist, w, caps)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBaseCostByHand(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	// Primary-only OTC:
	//  server0 reads obj1 from primary 2: 10*1*c(0,2)=10*1*2 = 20
	//  server1 reads obj0 from primary 0: 4*2*1 = 8
	//  server1 writes obj0: 1*2*(c(1,0)+0) = 2
	//  server2 reads obj0: 6*2*2 = 24
	//  server2 writes obj1 to primary 2: 2*1*(0+0) = 0
	want := int64(20 + 8 + 2 + 24)
	if s.BaseCost() != want {
		t.Fatalf("base cost = %d, want %d", s.BaseCost(), want)
	}
	if s.TotalCost() != want || s.Savings() != 0 {
		t.Fatalf("initial state wrong: cost=%d savings=%v", s.TotalCost(), s.Savings())
	}
}

func TestPlaceReplicaByHand(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	// Place obj0 on server 2.
	// Read side: server2's reads of obj0 go from cost 2 to 0: 6*2*(0-2) = -24.
	//            server1's NN stays primary 0 (c=1) vs c(1,2)=1: tie, no change.
	// Write side: total writes of obj0 = 1 (from server1), new replica at 2:
	//            o*c(P0,2)*(W-w_2k) = 2*2*(1-0) = +4.
	delta, err := s.PlaceReplica(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if delta != -20 {
		t.Fatalf("delta = %d, want -20", delta)
	}
	if s.TotalCost() != 54-20 {
		t.Fatalf("cost = %d, want 34", s.TotalCost())
	}
	if err := s.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Placed() != 1 {
		t.Fatalf("Placed = %d", s.Placed())
	}
	if !s.HasReplica(0, 2) || s.HasReplica(0, 1) {
		t.Fatal("replica membership wrong")
	}
	if s.Residual(2) != 10-1-2 { // capacity 10, primary obj1 size 1, replica obj0 size 2
		t.Fatalf("residual = %d", s.Residual(2))
	}
}

func TestNNUpdates(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	if nn := s.NN(0, 1); nn != 2 {
		t.Fatalf("initial NN(0,1) = %d, want primary 2", nn)
	}
	if _, err := s.PlaceReplica(1, 1); err != nil {
		t.Fatal(err)
	}
	if nn := s.NN(0, 1); nn != 1 {
		t.Fatalf("NN(0,1) after replica on 1 = %d, want 1", nn)
	}
	// NN for a server with no demand on the object is computed on the fly.
	if nn := s.NN(1, 1); nn != 1 {
		t.Fatalf("NN(1,1) = %d, want itself", nn)
	}
}

func TestCanPlaceErrors(t *testing.T) {
	p := tinyProblem(t, 3)
	s := p.NewSchema()
	if err := s.CanPlace(-1, 0); err == nil {
		t.Error("negative object accepted")
	}
	if err := s.CanPlace(5, 0); err == nil {
		t.Error("out-of-range object accepted")
	}
	if err := s.CanPlace(0, -1); err == nil {
		t.Error("negative server accepted")
	}
	if err := s.CanPlace(0, 3); err == nil {
		t.Error("out-of-range server accepted")
	}
	if err := s.CanPlace(0, 0); err == nil {
		t.Error("placing on primary accepted")
	}
	// Server 2 has capacity 3, primary load 1 → residual 2; obj0 size 2 fits,
	// then nothing else does.
	if _, err := s.PlaceReplica(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.CanPlace(1, 2); err == nil {
		t.Error("over-capacity placement accepted")
	}
	if _, err := s.PlaceReplica(0, 2); err == nil {
		t.Error("duplicate placement accepted")
	}
}

func TestDeltaMatchesPlacement(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	d1 := s.DeltaIfPlaced(0, 1)
	got, err := s.PlaceReplica(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != got {
		t.Fatalf("DeltaIfPlaced %d != PlaceReplica %d", d1, got)
	}
	if err := s.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalBenefitByHand(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	// Agent 2 considering obj0: reads 6, size 2, NN cost 2 → read side 24.
	// Update side: other writers (server1, w=1) * size 2 * c(P0=0, 2)=2 → 4.
	if b := s.LocalBenefit(2, 0); b != 24-4 {
		t.Fatalf("LocalBenefit(2,0) = %d, want 20", b)
	}
	// Agent 0 considering obj0: no demand → pure cost (0 - 1*2*c(0,0)=0).
	if b := s.LocalBenefit(0, 0); b != 0 {
		t.Fatalf("LocalBenefit(0,0) = %d, want 0 (no reads, primary at 0)", b)
	}
	// Agent 1 considering obj1: no reads on obj1, writers elsewhere (server2,
	// w=2), c(P1=2, 1) = 1, size 1 → benefit -2.
	if b := s.LocalBenefit(1, 1); b != -2 {
		t.Fatalf("LocalBenefit(1,1) = %d, want -2", b)
	}
}

func TestGenerateCapacities(t *testing.T) {
	w := workload.New(4, 3)
	w.ObjectSize[0], w.ObjectSize[1], w.ObjectSize[2] = 10, 20, 30
	w.Primary[0], w.Primary[1], w.Primary[2] = 0, 0, 1
	w.Finalize()
	r := stats.NewRNG(1)
	caps, err := GenerateCapacities(w, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 4 {
		t.Fatalf("len = %d", len(caps))
	}
	// Server 0 holds primaries of size 30; capacity must cover it.
	if caps[0] < 30 {
		t.Fatalf("capacity %d below primary load", caps[0])
	}
	// Target is 50% x 60 x 20/4 = 150; jitter in [0.5,1.5) → [75,225).
	for i, c := range caps {
		if c > 225 {
			t.Fatalf("server %d capacity %d above jitter ceiling", i, c)
		}
		if c < 75 && c != 75 { // floor could only raise, never lower
			if c < 75 {
				t.Fatalf("server %d capacity %d below jitter floor", i, c)
			}
		}
	}
	if _, err := GenerateCapacities(w, 0, r); err == nil {
		t.Error("zero percent accepted")
	}
}

func TestNewProblemErrors(t *testing.T) {
	w := workload.New(3, 1)
	w.ObjectSize[0] = 1
	w.Primary[0] = 0
	w.Finalize()
	dist := topology.AllPairs(topology.Line(3), 1)
	if _, err := NewProblem(dist, w, []int64{1, 1}); err == nil {
		t.Error("wrong capacity length accepted")
	}
	if _, err := NewProblem(dist, w, []int64{0, 1, 1}); err == nil {
		t.Error("capacity below primary load accepted")
	}
	small := topology.AllPairs(topology.Line(2), 1)
	if _, err := NewProblem(small, w, []int64{1, 1, 1}); err == nil {
		t.Error("undersized cost matrix accepted")
	}
	bad := workload.New(1, 1)
	bad.ObjectSize[0] = 0
	if _, err := NewProblem(dist, bad, []int64{1}); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestClone(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	if _, err := s.PlaceReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if c.TotalCost() != s.TotalCost() || c.Placed() != s.Placed() {
		t.Fatal("clone differs from original")
	}
	// Mutating the clone must not affect the original.
	if _, err := c.PlaceReplica(1, 1); err != nil {
		t.Fatal(err)
	}
	if s.HasReplica(1, 1) {
		t.Fatal("clone mutation leaked into original")
	}
	if err := s.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixExport(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	if _, err := s.PlaceReplica(0, 2); err != nil {
		t.Fatal(err)
	}
	m := s.Matrix()
	if len(m) != 2 || len(m[0]) != 2 || m[0][0] != 0 || m[0][1] != 2 {
		t.Fatalf("matrix export wrong: %v", m)
	}
	// Export is a copy.
	m[0][0] = 99
	if s.Replicas(0)[0] == 99 {
		t.Fatal("Matrix returned shared storage")
	}
}

func TestUniformCost(t *testing.T) {
	u := UniformCost{Nodes: 3, Weight: 7}
	if u.N() != 3 || u.At(0, 0) != 0 || u.At(0, 2) != 7 {
		t.Fatal("UniformCost wrong")
	}
}

// randomProblem builds a random but consistent instance for property tests.
func randomProblem(seed int64, m, n int) (*Problem, error) {
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: m, Objects: n, Requests: 2000, RWRatio: 0.8, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(seed + 1)
	g, err := topology.Random(m, 0.3, topology.DefaultWeights, r)
	if err != nil {
		return nil, err
	}
	caps, err := GenerateCapacities(w, 30, r)
	if err != nil {
		return nil, err
	}
	return NewProblem(topology.AllPairs(g, 2), w, caps)
}

// Property: after any sequence of random feasible placements, the
// incremental cost equals the recomputed cost and all invariants hold.
func TestIncrementalCostProperty(t *testing.T) {
	f := func(seed int64) bool {
		p, err := randomProblem(seed, 12, 30)
		if err != nil {
			return false
		}
		s := p.NewSchema()
		r := stats.NewRNG(seed)
		for step := 0; step < 40; step++ {
			k := int32(r.Intn(p.N))
			m := r.Intn(p.M)
			if s.CanPlace(k, m) != nil {
				continue
			}
			want := s.DeltaIfPlaced(k, m)
			got, err := s.PlaceReplica(k, m)
			if err != nil || got != want {
				return false
			}
		}
		return s.ValidateInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: placing a replica never increases any server's read cost, so a
// placement with zero write volume can only decrease total OTC.
func TestReadOnlyPlacementsMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		w, err := workload.Synthetic(workload.SyntheticConfig{
			Servers: 10, Objects: 20, Requests: 1000, RWRatio: 1.0, Seed: seed,
		})
		if err != nil {
			return false
		}
		r := stats.NewRNG(seed)
		g, err := topology.Random(10, 0.3, topology.DefaultWeights, r)
		if err != nil {
			return false
		}
		caps, err := GenerateCapacities(w, 40, r)
		if err != nil {
			return false
		}
		p, err := NewProblem(topology.AllPairs(g, 1), w, caps)
		if err != nil {
			return false
		}
		s := p.NewSchema()
		prev := s.TotalCost()
		for step := 0; step < 30; step++ {
			k := int32(r.Intn(p.N))
			m := r.Intn(p.M)
			if s.CanPlace(k, m) != nil {
				continue
			}
			if _, err := s.PlaceReplica(k, m); err != nil {
				return false
			}
			if s.TotalCost() > prev {
				return false
			}
			prev = s.TotalCost()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: LocalBenefit equals the true global delta restricted to the
// agent's own terms; in particular, when the agent is the only demander of
// the object, -LocalBenefit must equal DeltaIfPlaced exactly.
func TestLocalBenefitMatchesDeltaForSoleDemander(t *testing.T) {
	w := workload.New(3, 1)
	w.ObjectSize[0] = 3
	w.Primary[0] = 0
	w.PerServer[2] = []workload.Demand{{Object: 0, Reads: 5, Writes: 2}}
	w.Finalize()
	dist := topology.AllPairs(topology.Line(3), 1)
	p, err := NewProblem(dist, w, []int64{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSchema()
	if b, d := s.LocalBenefit(2, 0), s.DeltaIfPlaced(0, 2); b != -d {
		t.Fatalf("sole demander: benefit %d != -delta %d", b, d)
	}
}
