package replication

import (
	"fmt"
	"sort"
)

// Schema is a mutable replica placement over a Problem. It starts at the
// paper's initial state — primary copies only — and maintains the exact
// OTC, per-server residual capacity, per-object replica sets, and the
// nearest-neighbor (NN) tables incrementally as replicas are placed.
type Schema struct {
	p *Problem

	replicas [][]int32 // per object: sorted server ids holding a copy (incl. primary)
	// NN tables, flat and indexed by global demand-cell id (Problem.cellBase):
	// one contiguous array each instead of M row slices, so the placement
	// hot loop does a single load per demander.
	nnCost   []int32 // c(i, NN_ik) per demand cell
	nnServer []int32 // NN_ik per demand cell
	sumBcast []int64 // S_k = Σ_{j∈R_k} c(P_k, j)
	residual []int64 // remaining capacity per server
	cost     int64   // current total OTC, maintained incrementally
	baseCost int64   // OTC of the primary-only placement
	placed   int     // replicas placed beyond primaries
}

// NewSchema returns the primary-copies-only placement.
func (p *Problem) NewSchema() *Schema {
	s := &Schema{
		p:        p,
		replicas: make([][]int32, p.N),
		nnCost:   make([]int32, p.Cells()),
		nnServer: make([]int32, p.Cells()),
		sumBcast: make([]int64, p.N),
		residual: make([]int64, p.M),
	}
	// One backing array for the N replica lists instead of N tiny
	// allocations. Each list gets room for a primary plus three replicas —
	// enough for the typical placement — before its first grow-copy; the
	// full-slice expression walls lists off from their neighbors.
	backing := make([]int32, 4*p.N)
	for k := 0; k < p.N; k++ {
		backing[4*k] = p.Work.Primary[k]
		s.replicas[k] = backing[4*k : 4*k+1 : 4*k+4]
	}
	for i := 0; i < p.M; i++ {
		s.residual[i] = p.Capacity[i] - p.primaryLoad[i]
		base := p.cellBase[i]
		for j, d := range p.Work.PerServer[i] {
			pk := p.Work.Primary[d.Object]
			s.nnServer[base+int32(j)] = pk
			s.nnCost[base+int32(j)] = p.Cost.At(i, int(pk))
		}
	}
	s.baseCost = s.RecomputeCost()
	s.cost = s.baseCost
	return s
}

// Problem returns the underlying instance.
func (s *Schema) Problem() *Problem { return s.p }

// TotalCost returns the incrementally maintained OTC of the placement.
func (s *Schema) TotalCost() int64 { return s.cost }

// BaseCost returns the OTC of the primary-only placement.
func (s *Schema) BaseCost() int64 { return s.baseCost }

// Savings returns the paper's performance metric: the percentage of OTC
// saved relative to the primary-only placement.
func (s *Schema) Savings() float64 {
	if s.baseCost == 0 {
		return 0
	}
	return 100 * float64(s.baseCost-s.cost) / float64(s.baseCost)
}

// Residual reports server i's remaining capacity.
func (s *Schema) Residual(i int) int64 { return s.residual[i] }

// Placed reports the number of replicas placed beyond the primaries.
func (s *Schema) Placed() int { return s.placed }

// Replicas returns the sorted replica set of object k (shared slice; do not
// mutate).
func (s *Schema) Replicas(k int32) []int32 { return s.replicas[k] }

// HasReplica reports whether server m holds a copy of object k.
func (s *Schema) HasReplica(k int32, m int) bool {
	r := s.replicas[k]
	idx := sort.Search(len(r), func(i int) bool { return r[i] >= int32(m) })
	return idx < len(r) && r[idx] == int32(m)
}

// NN returns the nearest replicator of object k from server i. For servers
// without demand on k it is computed on the fly.
func (s *Schema) NN(i int, k int32) int32 {
	if slot, ok := s.demandSlot(i, k); ok {
		return s.nnServer[s.p.cellBase[i]+int32(slot)]
	}
	best, bestCost := s.replicas[k][0], s.p.Cost.At(i, int(s.replicas[k][0]))
	for _, j := range s.replicas[k][1:] {
		if c := s.p.Cost.At(i, int(j)); c < bestCost {
			best, bestCost = j, c
		}
	}
	return best
}

func (s *Schema) demandSlot(i int, k int32) (int, bool) {
	ds := s.p.Work.PerServer[i]
	idx := sort.Search(len(ds), func(j int) bool { return ds[j].Object >= k })
	if idx < len(ds) && ds[idx].Object == k {
		return idx, true
	}
	return 0, false
}

// CanPlace checks the DRP constraints for placing a replica of k on m:
// the server must exist, must not already hold a copy, and must have
// residual capacity for o_k.
func (s *Schema) CanPlace(k int32, m int) error {
	if k < 0 || int(k) >= s.p.N {
		return fmt.Errorf("replication: object %d out of range", k)
	}
	if m < 0 || m >= s.p.M {
		return fmt.Errorf("replication: server %d out of range", m)
	}
	if s.HasReplica(k, m) {
		return fmt.Errorf("replication: server %d already holds object %d", m, k)
	}
	if s.residual[m] < s.p.Work.ObjectSize[k] {
		return fmt.Errorf("replication: server %d residual %d below object %d size %d",
			m, s.residual[m], k, s.p.Work.ObjectSize[k])
	}
	return nil
}

// DeltaIfPlaced returns the exact change in total OTC that placing a
// replica of k on m would cause, without mutating the schema. Negative
// deltas are improvements.
func (s *Schema) DeltaIfPlaced(k int32, m int) int64 {
	p := s.p
	ok := p.Work.ObjectSize[k]
	pk := int(p.Work.Primary[k])
	cPm := int64(p.Cost.At(pk, m))

	// Write side: S_k grows by c(P_k, m); server m stops paying the
	// broadcast share for its own writes (Eq. 2's j != i exclusion).
	wm, _ := s.writeOf(m, k)
	totalW := p.Work.TotalWrites[k]
	delta := ok * cPm * (totalW - wm)

	// Read side: every demander whose NN cost exceeds c(i, m) improves.
	for _, ref := range p.byObject[k] {
		r := p.cellReads[ref.Cell]
		if r == 0 {
			continue
		}
		oldC := int64(s.nnCost[ref.Cell])
		newC := int64(p.Cost.At(int(ref.Server), m))
		if newC < oldC {
			delta += r * ok * (newC - oldC)
		}
	}
	return delta
}

func (s *Schema) writeOf(i int, k int32) (int64, int64) {
	if slot, ok := s.demandSlot(i, k); ok {
		d := s.p.Work.PerServer[i][slot]
		return d.Writes, d.Reads
	}
	return 0, 0
}

// LocalBenefit is the agent-local valuation CoR of Section 4 (Eq. 5's
// essence): the read traffic server i saves by holding k, minus the update
// traffic it newly attracts from everyone else's writes. It uses only
// information available to agent i (its own demand, its NN table, the
// object's public write volume) — this locality is what makes the mechanism
// semi-distributed. Positive values are beneficial.
func (s *Schema) LocalBenefit(i int, k int32) int64 {
	slot, ok := s.demandSlot(i, k)
	var reads int64
	oldC := int64(0)
	if ok {
		d := s.p.Work.PerServer[i][slot]
		reads = d.Reads
		oldC = int64(s.nnCost[s.p.cellBase[i]+int32(slot)])
	} else {
		oldC = int64(s.p.Cost.At(i, int(s.NN(i, k))))
	}
	okSize := s.p.Work.ObjectSize[k]
	wi, _ := s.writeOf(i, k)
	pk := int(s.p.Work.Primary[k])
	update := (s.p.Work.TotalWrites[k] - wi) * okSize * int64(s.p.Cost.At(pk, i))
	return reads*okSize*oldC - update
}

// PlaceReplica places a replica of k on m, updating cost, capacity, replica
// set and all NN entries of k's demanders. It returns the exact OTC delta.
func (s *Schema) PlaceReplica(k int32, m int) (int64, error) {
	if err := s.CanPlace(k, m); err != nil {
		return 0, err
	}
	delta := s.applyPlacement(k, m)
	return delta, nil
}

// applyPlacement performs the mutation; callers must have validated.
func (s *Schema) applyPlacement(k int32, m int) int64 {
	p := s.p
	ok := p.Work.ObjectSize[k]
	pk := int(p.Work.Primary[k])
	cPm := int64(p.Cost.At(pk, m))

	wm, _ := s.writeOf(m, k)
	delta := ok * cPm * (p.Work.TotalWrites[k] - wm)

	// The demander walk is the placement's hot loop; with a row-view oracle
	// the per-demander cost is one slice load instead of a virtual call, and
	// the flat cell-indexed NN tables make the update a single store.
	if col := p.CostColumn(m); col != nil {
		for _, ref := range p.byObject[k] {
			newC := col[ref.Server]
			if newC < s.nnCost[ref.Cell] {
				if r := p.cellReads[ref.Cell]; r > 0 {
					delta += r * ok * int64(newC-s.nnCost[ref.Cell])
				}
				s.nnCost[ref.Cell] = newC
				s.nnServer[ref.Cell] = int32(m)
			}
		}
	} else {
		for _, ref := range p.byObject[k] {
			newC := p.Cost.At(int(ref.Server), m)
			if newC < s.nnCost[ref.Cell] {
				if r := p.cellReads[ref.Cell]; r > 0 {
					delta += r * ok * int64(newC-s.nnCost[ref.Cell])
				}
				s.nnCost[ref.Cell] = newC
				s.nnServer[ref.Cell] = int32(m)
			}
		}
	}

	// Insert m into the sorted replica list.
	r := s.replicas[k]
	idx := sort.Search(len(r), func(i int) bool { return r[i] >= int32(m) })
	r = append(r, 0)
	copy(r[idx+1:], r[idx:])
	r[idx] = int32(m)
	s.replicas[k] = r

	s.sumBcast[k] += cPm
	s.residual[m] -= ok
	s.cost += delta
	s.placed++
	return delta
}

// CanRemove checks whether a replica of k on m can be dropped: the copy
// must exist and must not be the primary (the primary copy "cannot be
// de-allocated" per Section 2).
func (s *Schema) CanRemove(k int32, m int) error {
	if k < 0 || int(k) >= s.p.N {
		return fmt.Errorf("replication: object %d out of range", k)
	}
	if m < 0 || m >= s.p.M {
		return fmt.Errorf("replication: server %d out of range", m)
	}
	if int(s.p.Work.Primary[k]) == m {
		return fmt.Errorf("replication: cannot de-allocate the primary copy of object %d", k)
	}
	if !s.HasReplica(k, m) {
		return fmt.Errorf("replication: server %d holds no replica of object %d", m, k)
	}
	return nil
}

// RemoveReplica drops the replica of k from m — the migration primitive of
// the adaptive extension ("automatic replication and migration of objects
// in response to demand changes", Section 7). It returns the exact OTC
// delta (usually positive: reads fall back to farther replicas; the update
// broadcast shrinks).
func (s *Schema) RemoveReplica(k int32, m int) (int64, error) {
	if err := s.CanRemove(k, m); err != nil {
		return 0, err
	}
	p := s.p
	ok := p.Work.ObjectSize[k]
	pk := int(p.Work.Primary[k])
	cPm := int64(p.Cost.At(pk, m))

	// Write side: the broadcast no longer reaches m (inverse of placement).
	wm, _ := s.writeOf(m, k)
	delta := -ok * cPm * (p.Work.TotalWrites[k] - wm)

	// Drop m from the sorted replica list first, so NN rescans see the
	// post-removal set.
	r := s.replicas[k]
	idx := sort.Search(len(r), func(i int) bool { return r[i] >= int32(m) })
	s.replicas[k] = append(r[:idx], r[idx+1:]...)

	// Read side: demanders whose nearest replica was m rescan.
	for _, ref := range p.byObject[k] {
		i := int(ref.Server)
		if s.nnServer[ref.Cell] != int32(m) {
			continue
		}
		best, bestCost := s.replicas[k][0], p.Cost.At(i, int(s.replicas[k][0]))
		for _, j := range s.replicas[k][1:] {
			if c := p.Cost.At(i, int(j)); c < bestCost {
				best, bestCost = j, c
			}
		}
		if r := p.cellReads[ref.Cell]; r > 0 {
			delta += r * ok * int64(bestCost-s.nnCost[ref.Cell])
		}
		s.nnServer[ref.Cell] = best
		s.nnCost[ref.Cell] = bestCost
	}

	s.sumBcast[k] -= cPm
	s.residual[m] += ok
	s.cost += delta
	s.placed--
	return delta, nil
}

// DeltaIfRemoved returns the exact OTC change dropping the replica of k
// from m would cause, without mutating the schema.
func (s *Schema) DeltaIfRemoved(k int32, m int) int64 {
	p := s.p
	ok := p.Work.ObjectSize[k]
	pk := int(p.Work.Primary[k])
	cPm := int64(p.Cost.At(pk, m))
	wm, _ := s.writeOf(m, k)
	delta := -ok * cPm * (p.Work.TotalWrites[k] - wm)
	for _, ref := range p.byObject[k] {
		i := int(ref.Server)
		if s.nnServer[ref.Cell] != int32(m) {
			continue
		}
		best := Infinity32
		for _, j := range s.replicas[k] {
			if int(j) == m {
				continue
			}
			if c := p.Cost.At(i, int(j)); c < best {
				best = c
			}
		}
		if r := p.cellReads[ref.Cell]; r > 0 {
			delta += r * ok * int64(best-s.nnCost[ref.Cell])
		}
	}
	return delta
}

// RecomputeCost computes the OTC from scratch (Eqs. 1–3). It is the ground
// truth the incremental engine is verified against in tests.
func (s *Schema) RecomputeCost() int64 {
	p := s.p
	var total int64
	for i := 0; i < p.M; i++ {
		for _, d := range p.Work.PerServer[i] {
			k := d.Object
			ok := p.Work.ObjectSize[k]
			pk := int(p.Work.Primary[k])
			// Reads to the true nearest replicator.
			if d.Reads > 0 {
				best := int64(p.Cost.At(i, int(s.replicas[k][0])))
				for _, j := range s.replicas[k][1:] {
					if c := int64(p.Cost.At(i, int(j))); c < best {
						best = c
					}
				}
				total += d.Reads * ok * best
			}
			// Writes: ship to primary, then broadcast to all replicators
			// except the writer itself.
			if d.Writes > 0 {
				var bcast int64
				for _, j := range s.replicas[k] {
					if int(j) != i {
						bcast += int64(p.Cost.At(pk, int(j)))
					}
				}
				total += d.Writes * ok * (int64(p.Cost.At(i, pk)) + bcast)
			}
		}
	}
	return total
}

// Clone returns an independent deep copy of the schema, used by the search
// baselines (GRA, Aε-Star) to explore alternatives.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		p:        s.p,
		replicas: make([][]int32, len(s.replicas)),
		nnCost:   append([]int32(nil), s.nnCost...),
		nnServer: append([]int32(nil), s.nnServer...),
		sumBcast: append([]int64(nil), s.sumBcast...),
		residual: append([]int64(nil), s.residual...),
		cost:     s.cost,
		baseCost: s.baseCost,
		placed:   s.placed,
	}
	for k := range s.replicas {
		c.replicas[k] = append([]int32(nil), s.replicas[k]...)
	}
	return c
}

// Matrix exports the replication matrix X as per-object replica sets.
func (s *Schema) Matrix() [][]int32 {
	out := make([][]int32, len(s.replicas))
	for k := range s.replicas {
		out[k] = append([]int32(nil), s.replicas[k]...)
	}
	return out
}

// ValidateInvariants cross-checks the incremental state against a full
// recomputation: exact cost agreement, capacity non-negativity, primary
// membership, NN correctness. Used by tests and by solvers in debug runs.
func (s *Schema) ValidateInvariants() error {
	if got := s.RecomputeCost(); got != s.cost {
		return fmt.Errorf("replication: incremental cost %d != recomputed %d", s.cost, got)
	}
	for i, r := range s.residual {
		if r < 0 {
			return fmt.Errorf("replication: server %d residual negative: %d", i, r)
		}
	}
	used := make([]int64, s.p.M)
	for k := range s.replicas {
		if !s.HasReplica(int32(k), int(s.p.Work.Primary[k])) {
			return fmt.Errorf("replication: object %d lost its primary copy", k)
		}
		for idx, j := range s.replicas[k] {
			if idx > 0 && s.replicas[k][idx-1] >= j {
				return fmt.Errorf("replication: object %d replica list unsorted", k)
			}
			used[j] += s.p.Work.ObjectSize[k]
		}
	}
	for i := 0; i < s.p.M; i++ {
		if used[i]+s.residual[i] != s.p.Capacity[i] {
			return fmt.Errorf("replication: server %d capacity accounting broken: used=%d residual=%d cap=%d",
				i, used[i], s.residual[i], s.p.Capacity[i])
		}
	}
	// NN tables must point at true nearest replicators.
	for i := 0; i < s.p.M; i++ {
		base := s.p.cellBase[i]
		for slot, d := range s.p.Work.PerServer[i] {
			best := int32(Infinity32)
			for _, j := range s.replicas[d.Object] {
				if c := s.p.Cost.At(i, int(j)); c < best {
					best = c
				}
			}
			if s.nnCost[base+int32(slot)] != best {
				return fmt.Errorf("replication: NN cost stale for server %d object %d: have %d want %d",
					i, d.Object, s.nnCost[base+int32(slot)], best)
			}
		}
	}
	return nil
}

// Infinity32 is a sentinel larger than any realistic path cost.
const Infinity32 = int32(1<<31 - 1)
