package replication

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestRemoveReplicaRoundTrip(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	base := s.TotalCost()
	dPlace, err := s.PlaceReplica(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	dRemove, err := s.RemoveReplica(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dPlace+dRemove != 0 {
		t.Fatalf("place delta %d + remove delta %d != 0", dPlace, dRemove)
	}
	if s.TotalCost() != base {
		t.Fatalf("cost %d after round trip, want %d", s.TotalCost(), base)
	}
	if s.Placed() != 0 {
		t.Fatalf("placed counter %d after round trip", s.Placed())
	}
	if err := s.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveReplicaErrors(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	if _, err := s.RemoveReplica(0, 0); err == nil {
		t.Error("removing the primary accepted")
	}
	if _, err := s.RemoveReplica(0, 1); err == nil {
		t.Error("removing a non-existent replica accepted")
	}
	if _, err := s.RemoveReplica(-1, 1); err == nil {
		t.Error("negative object accepted")
	}
	if _, err := s.RemoveReplica(0, 99); err == nil {
		t.Error("out-of-range server accepted")
	}
}

func TestDeltaIfRemovedMatches(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	if _, err := s.PlaceReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlaceReplica(0, 2); err != nil {
		t.Fatal(err)
	}
	want := s.DeltaIfRemoved(0, 1)
	got, err := s.RemoveReplica(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("DeltaIfRemoved %d != RemoveReplica %d", want, got)
	}
	if err := s.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: any interleaving of feasible placements and removals keeps the
// incremental cost exactly equal to the recomputed cost, with all
// invariants intact.
func TestMixedPlaceRemoveProperty(t *testing.T) {
	f := func(seed int64) bool {
		p, err := randomProblem(seed, 10, 25)
		if err != nil {
			return false
		}
		s := p.NewSchema()
		r := stats.NewRNG(seed)
		type placed struct {
			k int32
			m int
		}
		var pool []placed
		for step := 0; step < 60; step++ {
			if len(pool) > 0 && r.Bool(0.4) {
				idx := r.Intn(len(pool))
				pr := pool[idx]
				want := s.DeltaIfRemoved(pr.k, pr.m)
				got, err := s.RemoveReplica(pr.k, pr.m)
				if err != nil || got != want {
					return false
				}
				pool = append(pool[:idx], pool[idx+1:]...)
				continue
			}
			k := int32(r.Intn(p.N))
			m := r.Intn(p.M)
			if s.CanPlace(k, m) != nil {
				continue
			}
			if _, err := s.PlaceReplica(k, m); err != nil {
				return false
			}
			pool = append(pool, placed{k: k, m: m})
		}
		return s.ValidateInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
