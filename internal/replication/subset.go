package replication

// Sub-instance cost views: a compacted regional instance indexes its servers
// 0..M'-1, but the cost oracle both cluster sides share is built over the
// global server ids. SubsetCost bridges the two — a CostFn over the region's
// dense index space that answers from the global oracle through the region's
// server mapping, so shard-side schemas, arenas and kernel rounds are sized
// to the region while distances stay exact.

// maxSubsetGather bounds the eager dense gather: up to this many cells the
// subset is materialized into region-local rows (giving the kernel its
// RowCostFn fast path); past it the subset stays a virtual view that maps
// every At through the id table. 2048² cells is 16 MiB of int32 — cheap next
// to the regional solve it feeds, and gathered once per assignment, not per
// round.
const maxSubsetGather = 2048 * 2048

// SubsetCost restricts a cost oracle to the servers in ids (region index i
// answers for global server ids[i]). Three shapes, picked by inspection:
//
//   - ids is the identity prefix 0..len(ids)-1: the base oracle is returned
//     unchanged. This is the 1-shard cluster's path and the reason a full
//     region stays bit-identical to the single daemon — no wrapper, no
//     indirection, the very same oracle object.
//   - small regions: the sub-matrix is gathered eagerly into dense local
//     rows. Row is only exposed when the base oracle itself declares the
//     symmetric row contract.
//   - large regions: a virtual view mapping At calls through ids.
//
// ids entries must be valid rows of base; callers ship the mapping and the
// oracle from the same assignment, so this is a construction invariant, not
// a runtime check.
func SubsetCost(base CostFn, ids []int32) CostFn {
	identity := true
	for i, g := range ids {
		if int(g) != i {
			identity = false
			break
		}
	}
	if identity {
		return base
	}
	n := len(ids)
	if n*n <= maxSubsetGather {
		rows := make([][]int32, n)
		flat := make([]int32, n*n)
		if rc, ok := base.(RowCostFn); ok {
			for i, g := range ids {
				row := rc.Row(int(g))
				dst := flat[i*n : (i+1)*n]
				for j, h := range ids {
					dst[j] = row[h]
				}
				rows[i] = dst
			}
			return &denseSubsetRows{denseSubset{rows: rows}}
		}
		for i, g := range ids {
			dst := flat[i*n : (i+1)*n]
			for j, h := range ids {
				dst[j] = base.At(int(g), int(h))
			}
			rows[i] = dst
		}
		return &denseSubset{rows: rows}
	}
	return &mappedSubset{base: base, ids: append([]int32(nil), ids...)}
}

// denseSubset is the eagerly gathered sub-matrix.
type denseSubset struct {
	rows [][]int32
}

func (d *denseSubset) At(i, j int) int32 { return d.rows[i][j] }
func (d *denseSubset) N() int            { return len(d.rows) }

// denseSubsetRows additionally exposes the RowCostFn fast path; only built
// when the base oracle declared symmetry by implementing Row itself.
type denseSubsetRows struct {
	denseSubset
}

func (d *denseSubsetRows) Row(i int) []int32 { return d.rows[i] }

// mappedSubset is the virtual view for regions too large to gather.
type mappedSubset struct {
	base CostFn
	ids  []int32
}

func (m *mappedSubset) At(i, j int) int32 { return m.base.At(int(m.ids[i]), int(m.ids[j])) }
func (m *mappedSubset) N() int            { return len(m.ids) }
