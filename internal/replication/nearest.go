package replication

// Nearest returns the canonical nearest holder of an object for reader
// `from`: the replica with the lowest transfer cost, ties broken toward the
// lowest server id. replicas must be non-empty and sorted ascending — the
// form Schema.Replicas maintains — so the strict `<` scan resolves ties
// deterministically.
//
// This rule is deliberately stateless: unlike the Schema's incremental NN
// tables (whose tie-breaks depend on placement order), Nearest is a pure
// function of (cost oracle, replica set, reader). The online controller's
// routing path and the client-side routing library in internal/routing both
// answer through it, which is what makes client-side lookups bit-identical
// to the server's without shipping the NN tables over the wire. The chosen
// server always has the minimum cost, so OTC accounting — which depends on
// costs, not ids — is unaffected by the tie-break.
func Nearest(cost CostFn, replicas []int32, from int) int32 {
	best, bestC := replicas[0], cost.At(from, int(replicas[0]))
	for _, j := range replicas[1:] {
		if c := cost.At(from, int(j)); c < bestC {
			best, bestC = j, c
		}
	}
	return best
}
