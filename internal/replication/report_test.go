package replication

import (
	"bytes"
	"testing"

	"repro/internal/stats"
)

func TestBreakdownSumsToTotal(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	if b := s.Breakdown(); b.Total() != s.TotalCost() {
		t.Fatalf("initial breakdown %+v != total %d", b, s.TotalCost())
	}
	if _, err := s.PlaceReplica(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlaceReplica(1, 0); err != nil {
		t.Fatal(err)
	}
	b := s.Breakdown()
	if b.Total() != s.TotalCost() {
		t.Fatalf("breakdown %+v != total %d", b, s.TotalCost())
	}
	if b.ReadCost < 0 || b.ShipCost < 0 || b.BroadcastCost < 0 {
		t.Fatalf("negative component: %+v", b)
	}
}

func TestBreakdownPropertyOnRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p, err := randomProblem(seed, 10, 30)
		if err != nil {
			t.Fatal(err)
		}
		s := p.NewSchema()
		r := stats.NewRNG(seed)
		for step := 0; step < 25; step++ {
			k := int32(r.Intn(p.N))
			m := r.Intn(p.M)
			if s.CanPlace(k, m) == nil {
				if _, err := s.PlaceReplica(k, m); err != nil {
					t.Fatal(err)
				}
			}
		}
		if b := s.Breakdown(); b.Total() != s.TotalCost() {
			t.Fatalf("seed %d: breakdown %d != total %d", seed, b.Total(), s.TotalCost())
		}
	}
}

func TestReportAndRestoreRoundTrip(t *testing.T) {
	p, err := randomProblem(3, 12, 40)
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSchema()
	r := stats.NewRNG(3)
	for step := 0; step < 30; step++ {
		k := int32(r.Intn(p.N))
		m := r.Intn(p.M)
		if s.CanPlace(k, m) == nil {
			if _, err := s.PlaceReplica(k, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep := s.Report()
	if rep.OTC != s.TotalCost() || rep.Savings != s.Savings() {
		t.Fatalf("report headline wrong: %+v", rep)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlacement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := p.Restore(back)
	if err != nil {
		t.Fatal(err)
	}
	if restored.TotalCost() != s.TotalCost() || restored.Placed() != s.Placed() {
		t.Fatalf("restore mismatch: %d/%d vs %d/%d",
			restored.TotalCost(), restored.Placed(), s.TotalCost(), s.Placed())
	}
	if err := restored.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	p, err := randomProblem(4, 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	rep := p.NewSchema().Report()
	rep.Servers++
	if _, err := p.Restore(rep); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	rep = p.NewSchema().Report()
	rep.PerObject[0].Primary = (rep.PerObject[0].Primary + 1) % int32(p.M)
	if _, err := p.Restore(rep); err == nil {
		t.Fatal("primary mismatch accepted")
	}
}

func TestReadPlacementGarbage(t *testing.T) {
	if _, err := ReadPlacement(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadPlacementRejectsTrailingData(t *testing.T) {
	p := tinyProblem(t, 10)
	var buf bytes.Buffer
	if err := p.NewSchema().Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	clean := append([]byte(nil), buf.Bytes()...)
	if _, err := ReadPlacement(bytes.NewReader(clean)); err != nil {
		t.Fatalf("clean document rejected: %v", err)
	}
	for _, trailer := range []string{"{}", "garbage", `{"servers":1}`} {
		dirty := append(append([]byte(nil), clean...), trailer...)
		if _, err := ReadPlacement(bytes.NewReader(dirty)); err == nil {
			t.Fatalf("trailing %q accepted", trailer)
		}
	}
}

func TestRestoreRejectsDuplicateObjects(t *testing.T) {
	p, err := randomProblem(4, 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	rep := p.NewSchema().Report()
	rep.PerObject = append(rep.PerObject, rep.PerObject[0])
	if _, err := p.Restore(rep); err == nil {
		t.Fatal("duplicate PerObject entry accepted")
	}
}

func TestServerReportAccounting(t *testing.T) {
	p := tinyProblem(t, 10)
	s := p.NewSchema()
	if _, err := s.PlaceReplica(0, 2); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	// Server 2: primary of obj1 (size 1) + replica of obj0 (size 2).
	sr := rep.PerServer[2]
	if sr.Primary != 1 || sr.Replicas != 1 || sr.Used != 3 {
		t.Fatalf("server 2 report wrong: %+v", sr)
	}
	top := rep.TopLoadedServers(1)
	if len(top) != 1 || top[0].Server != 2 {
		t.Fatalf("top loaded = %+v", top)
	}
	if len(rep.TopLoadedServers(99)) != 3 {
		t.Fatal("TopLoadedServers should clamp")
	}
}
