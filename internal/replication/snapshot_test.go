package replication_test

import (
	"reflect"
	"testing"

	"repro/internal/testutil"
	"repro/internal/workload"
)

// TestSnapshotNoAliasing mutates every mutable surface of a snapshot and
// verifies the original problem is untouched (and vice versa).
func TestSnapshotNoAliasing(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(7))
	base := p.NewSchema().TotalCost()
	baseWork := p.Work.Clone()
	baseCaps := append([]int64(nil), p.Capacity...)

	c := p.Snapshot()
	if c.M != p.M || c.N != p.N {
		t.Fatalf("snapshot shape %dx%d != original %dx%d", c.M, c.N, p.M, p.N)
	}
	if got := c.NewSchema().TotalCost(); got != base {
		t.Fatalf("snapshot base OTC %d != original %d", got, base)
	}

	// Mutate the copy everywhere a delta could reach.
	for i := range c.Capacity {
		c.Capacity[i] += 1000
	}
	for i := range c.Work.PerServer {
		for j := range c.Work.PerServer[i] {
			c.Work.PerServer[i][j].Reads += 99
			c.Work.PerServer[i][j].Writes += 99
		}
	}
	for k := range c.Work.ObjectSize {
		c.Work.ObjectSize[k]++
	}
	for k := range c.Work.TotalReads {
		c.Work.TotalReads[k] += 5
		c.Work.TotalWrites[k] += 5
	}

	if !reflect.DeepEqual(p.Work, baseWork) {
		t.Fatal("mutating the snapshot's workload reached the original")
	}
	if !reflect.DeepEqual(p.Capacity, baseCaps) {
		t.Fatal("mutating the snapshot's capacities reached the original")
	}
	if got := p.NewSchema().TotalCost(); got != base {
		t.Fatalf("original base OTC drifted after snapshot mutation: %d != %d", got, base)
	}

	// And the other direction: placements on the original must not leak into
	// schemas derived from the snapshot.
	c2 := p.Snapshot()
	s := p.NewSchema()
	placed := false
	for k := int32(0); int(k) < p.N && !placed; k++ {
		for m := 0; m < p.M; m++ {
			if s.CanPlace(k, m) == nil {
				if _, err := s.PlaceReplica(k, m); err != nil {
					t.Fatal(err)
				}
				placed = true
				break
			}
		}
	}
	if !placed {
		t.Skip("no feasible placement on this instance")
	}
	if got, want := c2.NewSchema().Placed(), 0; got != want {
		t.Fatalf("snapshot schema saw %d placements from the original", got)
	}
}

// TestWorkloadCloneIndependence covers the Clone helper directly.
func TestWorkloadCloneIndependence(t *testing.T) {
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: 8, Objects: 30, Requests: 4000, RWRatio: 0.8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := w.Clone()
	if !reflect.DeepEqual(w, c) {
		t.Fatal("clone differs from original before mutation")
	}
	if len(c.PerServer[0]) > 0 {
		c.PerServer[0][0].Reads += 1234
	}
	c.ObjectSize[0] += 7
	c.Primary[0] = (c.Primary[0] + 1) % int32(c.M)
	c.TotalReads[0] += 9
	if reflect.DeepEqual(w, c) {
		t.Fatal("mutation of the clone did not register")
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("original invalid after clone mutation: %v", err)
	}
}

// TestCarryOver verifies feasible replicas survive and infeasible ones are
// dropped with an accurate count.
func TestCarryOver(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(11))
	s := p.NewSchema()
	// Place a handful of replicas greedily.
	placedMatrix := [][]int32(nil)
	for k := int32(0); int(k) < p.N; k++ {
		for m := 0; m < p.M && s.Placed() < 12; m++ {
			if s.CanPlace(k, m) == nil && s.DeltaIfPlaced(k, m) < 0 {
				if _, err := s.PlaceReplica(k, m); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	placedMatrix = s.Matrix()

	// Carrying onto an identical problem loses nothing.
	got, dropped := p.Snapshot().CarryOver(placedMatrix)
	if dropped != 0 {
		t.Fatalf("carry-over onto identical problem dropped %d replicas", dropped)
	}
	if got.TotalCost() != s.TotalCost() || got.Placed() != s.Placed() {
		t.Fatalf("carry-over OTC %d/placed %d != original %d/%d",
			got.TotalCost(), got.Placed(), s.TotalCost(), s.Placed())
	}
	if err := got.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}

	// Shrink every capacity to its primary load: every surplus replica must
	// be dropped, none may slip through.
	tight := p.Snapshot()
	for i := range tight.Capacity {
		tight.Capacity[i] = tight.PrimaryLoad(i)
	}
	bare, droppedAll := tight.CarryOver(placedMatrix)
	if droppedAll != s.Placed() {
		t.Fatalf("tight carry-over dropped %d, want all %d", droppedAll, s.Placed())
	}
	if bare.Placed() != 0 {
		t.Fatalf("tight carry-over still holds %d replicas", bare.Placed())
	}
	if err := bare.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}
