package replication

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Breakdown decomposes the OTC into the three traffic classes of Eqs. 1–2:
// reads to the nearest replica, update shipments to the primary, and the
// primary's broadcast of updates to the other replicators. The components
// always sum to TotalCost.
type Breakdown struct {
	ReadCost      int64 // Σ r_ik · o_k · c(i, NN_ik)
	ShipCost      int64 // Σ w_ik · o_k · c(i, P_k)
	BroadcastCost int64 // Σ w_ik · o_k · Σ_{j∈R_k, j≠i} c(P_k, j)
}

// Total sums the components.
func (b Breakdown) Total() int64 { return b.ReadCost + b.ShipCost + b.BroadcastCost }

// Breakdown computes the OTC decomposition of the current placement.
func (s *Schema) Breakdown() Breakdown {
	p := s.p
	var b Breakdown
	for i := 0; i < p.M; i++ {
		for slot, d := range p.Work.PerServer[i] {
			k := d.Object
			ok := p.Work.ObjectSize[k]
			pk := int(p.Work.Primary[k])
			if d.Reads > 0 {
				b.ReadCost += d.Reads * ok * int64(s.nnCost[p.cellBase[i]+int32(slot)])
			}
			if d.Writes > 0 {
				b.ShipCost += d.Writes * ok * int64(p.Cost.At(i, pk))
				var bcast int64
				for _, j := range s.replicas[k] {
					if int(j) != i {
						bcast += int64(p.Cost.At(pk, int(j)))
					}
				}
				b.BroadcastCost += d.Writes * ok * bcast
			}
		}
	}
	return b
}

// ServerReport summarizes one server's role in a placement.
type ServerReport struct {
	Server   int   `json:"server"`
	Capacity int64 `json:"capacity"`
	Used     int64 `json:"used"`
	Primary  int   `json:"primaries"`
	Replicas int   `json:"replicas"`
}

// ObjectReport summarizes one object's replication state.
type ObjectReport struct {
	Object   int32   `json:"object"`
	Size     int64   `json:"size"`
	Primary  int32   `json:"primary"`
	Replicas []int32 `json:"replicas"`
}

// PlacementReport is a JSON-exportable snapshot of a placement: enough to
// reconstruct the replica schema and audit it offline.
type PlacementReport struct {
	Servers   int            `json:"servers"`
	Objects   int            `json:"objects"`
	OTC       int64          `json:"otc"`
	BaseOTC   int64          `json:"base_otc"`
	Savings   float64        `json:"savings_percent"`
	Breakdown Breakdown      `json:"-"`
	PerServer []ServerReport `json:"per_server"`
	PerObject []ObjectReport `json:"per_object"`
}

// Report builds the snapshot.
func (s *Schema) Report() PlacementReport {
	p := s.p
	rep := PlacementReport{
		Servers:   p.M,
		Objects:   p.N,
		OTC:       s.TotalCost(),
		BaseOTC:   s.BaseCost(),
		Savings:   s.Savings(),
		Breakdown: s.Breakdown(),
	}
	primaries := make([]int, p.M)
	replicas := make([]int, p.M)
	used := make([]int64, p.M)
	for k := 0; k < p.N; k++ {
		rep.PerObject = append(rep.PerObject, ObjectReport{
			Object:   int32(k),
			Size:     p.Work.ObjectSize[k],
			Primary:  p.Work.Primary[k],
			Replicas: append([]int32(nil), s.replicas[k]...),
		})
		for _, j := range s.replicas[k] {
			used[j] += p.Work.ObjectSize[k]
			if j == p.Work.Primary[k] {
				primaries[j]++
			} else {
				replicas[j]++
			}
		}
	}
	for i := 0; i < p.M; i++ {
		rep.PerServer = append(rep.PerServer, ServerReport{
			Server:   i,
			Capacity: p.Capacity[i],
			Used:     used[i],
			Primary:  primaries[i],
			Replicas: replicas[i],
		})
	}
	return rep
}

// WriteJSON serializes the report.
func (r PlacementReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadPlacement parses a report written by WriteJSON. The input must be a
// single JSON document: trailing garbage after it is rejected, so a
// truncated-then-concatenated or otherwise corrupted file cannot silently
// pass as a valid report.
func ReadPlacement(r io.Reader) (PlacementReport, error) {
	var rep PlacementReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return rep, fmt.Errorf("replication: decoding placement: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return PlacementReport{}, fmt.Errorf("replication: trailing data after placement document")
	}
	return rep, nil
}

// Restore rebuilds a schema from a report's per-object replica sets against
// a compatible problem: same shape, same primaries. It verifies feasibility
// as it goes.
func (p *Problem) Restore(rep PlacementReport) (*Schema, error) {
	if rep.Servers != p.M || rep.Objects != p.N {
		return nil, fmt.Errorf("replication: report shape %dx%d does not match problem %dx%d",
			rep.Servers, rep.Objects, p.M, p.N)
	}
	s := p.NewSchema()
	seen := make(map[int32]bool, len(rep.PerObject))
	for _, obj := range rep.PerObject {
		if obj.Object < 0 || int(obj.Object) >= p.N {
			return nil, fmt.Errorf("replication: report references object %d", obj.Object)
		}
		if seen[obj.Object] {
			return nil, fmt.Errorf("replication: report lists object %d twice", obj.Object)
		}
		seen[obj.Object] = true
		if p.Work.Primary[obj.Object] != obj.Primary {
			return nil, fmt.Errorf("replication: object %d primary mismatch: report %d, problem %d",
				obj.Object, obj.Primary, p.Work.Primary[obj.Object])
		}
		for _, srv := range obj.Replicas {
			if srv == obj.Primary {
				continue
			}
			if _, err := s.PlaceReplica(obj.Object, int(srv)); err != nil {
				return nil, fmt.Errorf("replication: restoring (%d on %d): %w", obj.Object, srv, err)
			}
		}
	}
	return s, nil
}

// TopLoadedServers returns the n servers with the highest storage
// utilization (used/capacity), busiest first.
func (r PlacementReport) TopLoadedServers(n int) []ServerReport {
	out := append([]ServerReport(nil), r.PerServer...)
	sort.Slice(out, func(a, b int) bool {
		ua := float64(out[a].Used) / float64(out[a].Capacity)
		ub := float64(out[b].Used) / float64(out[b].Capacity)
		if ua != ub {
			return ua > ub
		}
		return out[a].Server < out[b].Server
	})
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}
