package replication

// Snapshot returns an independent deep copy of the problem: the workload,
// capacities, demand index and primary-load table are all duplicated, so
// mutating the copy's demand matrices or capacities never affects the
// original. The cost oracle is shared — every CostFn in the repository
// (distance matrices, UniformCost) is immutable after construction.
//
// The online controller solves against a snapshot so a buggy solver can
// never corrupt the placement being served, and the bench harness uses it
// to hand the same instance to several mutually isolated experiments.
func (p *Problem) Snapshot() *Problem {
	np := &Problem{
		M:           p.M,
		N:           p.N,
		Cost:        p.Cost,
		Work:        p.Work.Clone(),
		Capacity:    append([]int64(nil), p.Capacity...),
		byObject:    make([][]DemandRef, len(p.byObject)),
		primaryLoad: append([]int64(nil), p.primaryLoad...),
		cellBase:    append([]int32(nil), p.cellBase...),
		cellReads:   append([]int64(nil), p.cellReads...),
	}
	for k, refs := range p.byObject {
		np.byObject[k] = append([]DemandRef(nil), refs...)
	}
	return np
}

// CarryOver rebuilds a placement from per-object replica sets (the form
// Schema.Matrix returns) against p, skipping any replica that is no longer
// feasible — the server's capacity shrank, the server left the system, or
// the object's primary moved. Objects beyond len(matrix) — new arrivals —
// stay primary-only. It returns the schema and the number of replicas that
// had to be dropped.
//
// This is the re-pricing primitive of the online controller: after a delta
// batch mutates the problem, the live placement is carried onto the new
// problem to see what it now costs.
func (p *Problem) CarryOver(matrix [][]int32) (*Schema, int) {
	s := p.NewSchema()
	dropped := 0
	for k, servers := range matrix {
		if k >= p.N {
			break
		}
		for _, m := range servers {
			if int32(p.Work.Primary[k]) == m {
				continue // the primary copy is implicit in NewSchema
			}
			if _, err := s.PlaceReplica(int32(k), int(m)); err != nil {
				dropped++
			}
		}
	}
	return s, dropped
}
