package replication

import (
	"testing"

	"repro/internal/workload"
)

// fuzzCost is a deterministic symmetric cost oracle with a zero diagonal
// and enough irregularity that nearest-neighbor choices actually move
// around as replicas are placed and removed.
type fuzzCost struct{ n int }

func (c fuzzCost) At(i, j int) int32 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	d := int32(j - i)
	return 1 + d*3 + int32((i*7+j*13)%5)
}

func (c fuzzCost) N() int { return c.n }

func fuzzProblem(t testing.TB, seed int64) *Problem {
	const m, n = 6, 14
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: m, Objects: n, Requests: 900, RWRatio: 0.8, Seed: seed,
	})
	if err != nil {
		t.Skip("infeasible synthetic workload:", err)
	}
	caps := make([]int64, m)
	total := w.TotalPrimarySize()
	for i := range caps {
		// Enough headroom that placements succeed often, small enough that
		// capacity pruning is exercised too.
		caps[i] = total/2 + int64(i)*3
	}
	p, err := NewProblem(fuzzCost{n: m}, w, caps)
	if err != nil {
		t.Skip("infeasible problem:", err)
	}
	return p
}

// FuzzSchemaPlaceRemove interleaves random PlaceReplica/RemoveReplica calls
// and cross-checks every piece of incremental bookkeeping the solvers lean
// on: the returned deltas against the preview Delta* forms, the running
// cost against both the per-op delta sum and a from-scratch recomputation,
// and the full invariant sweep (NN tables, capacity accounting, replica
// sets) at the end. Run with
// `go test -fuzz=FuzzSchemaPlaceRemove ./internal/replication` to explore;
// the seed corpus runs on every plain `go test`.
func FuzzSchemaPlaceRemove(f *testing.F) {
	f.Add(int64(1), []byte{0x00, 0x12, 0x81, 0x23, 0x05, 0x31})
	f.Add(int64(2), []byte{0x10, 0x01, 0x90, 0x01, 0x10, 0x01, 0x90, 0x01})
	f.Add(int64(3), []byte{})
	f.Add(int64(4), []byte{0xff, 0xff, 0x7f, 0x00, 0x42, 0x42, 0x13, 0x37, 0x99, 0x21})

	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		p := fuzzProblem(t, seed%64)
		s := p.NewSchema()
		running := s.TotalCost()
		for len(ops) >= 3 {
			op, kb, mb := ops[0], ops[1], ops[2]
			ops = ops[3:]
			k := int32(int(kb) % p.N)
			m := int(mb) % p.M
			if op&1 == 0 {
				if s.CanPlace(k, m) != nil {
					continue
				}
				preview := s.DeltaIfPlaced(k, m)
				delta, err := s.PlaceReplica(k, m)
				if err != nil {
					t.Fatalf("CanPlace passed but PlaceReplica(%d,%d) failed: %v", k, m, err)
				}
				if delta != preview {
					t.Fatalf("PlaceReplica(%d,%d) delta %d != DeltaIfPlaced %d", k, m, delta, preview)
				}
				running += delta
			} else {
				if s.CanRemove(k, m) != nil {
					continue
				}
				preview := s.DeltaIfRemoved(k, m)
				delta, err := s.RemoveReplica(k, m)
				if err != nil {
					t.Fatalf("CanRemove passed but RemoveReplica(%d,%d) failed: %v", k, m, err)
				}
				if delta != preview {
					t.Fatalf("RemoveReplica(%d,%d) delta %d != DeltaIfRemoved %d", k, m, delta, preview)
				}
				running += delta
			}
			if got := s.TotalCost(); got != running {
				t.Fatalf("incremental cost %d drifted from delta sum %d", got, running)
			}
		}
		if got, want := s.TotalCost(), s.RecomputeCost(); got != want {
			t.Fatalf("incremental cost %d != recomputed %d", got, want)
		}
		if err := s.ValidateInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
