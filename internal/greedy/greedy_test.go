package greedy

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/testutil"
)

func TestSolveImproves(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(1))
	res, err := Solve(context.Background(), p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Savings() <= 0 {
		t.Fatalf("savings = %v", res.Schema.Savings())
	}
	if res.Placed != res.Schema.Placed() {
		t.Fatalf("placed mismatch: %d vs %d", res.Placed, res.Schema.Placed())
	}
	if res.Evaluations <= 0 {
		t.Fatal("no evaluations counted")
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveNil(t *testing.T) {
	if _, err := Solve(context.Background(), nil, DefaultConfig()); err == nil {
		t.Fatal("nil problem accepted")
	}
}

func TestDensityVsRawBenefit(t *testing.T) {
	pd := testutil.MustBuild(testutil.Small(2))
	pr := testutil.MustBuild(testutil.Small(2))
	dens, err := Solve(context.Background(), pd, Config{ByDensity: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Solve(context.Background(), pr, Config{ByDensity: false})
	if err != nil {
		t.Fatal(err)
	}
	// Both are valid greedy runs that improve the placement.
	if dens.Schema.Savings() <= 0 || raw.Schema.Savings() <= 0 {
		t.Fatalf("savings: density=%v raw=%v", dens.Schema.Savings(), raw.Schema.Savings())
	}
}

// Greedy never places a replica whose local benefit was non-positive, so
// the OTC decreases monotonically; final cost is strictly below base cost
// whenever anything was placed.
func TestSolveMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := testutil.InstanceConfig{
			Servers: 10, Objects: 40, Requests: 4000, RWRatio: 0.8,
			CapacityPercent: 30, EdgeP: 0.4, Seed: seed,
		}
		p, err := testutil.Build(cfg)
		if err != nil {
			return false
		}
		res, err := Solve(context.Background(), p, DefaultConfig())
		if err != nil {
			return false
		}
		if res.Placed > 0 && res.Schema.TotalCost() >= res.Schema.BaseCost() {
			return false
		}
		return res.Schema.ValidateInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The lazy heap must be exact: for both key rules it must reach the same
// final cost as the faithful eager rescan engine, with fewer evaluations.
func TestLazyHeapMatchesEager(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, byDensity := range []bool{true, false} {
			cfg := testutil.InstanceConfig{
				Servers: 8, Objects: 30, Requests: 3000, RWRatio: 0.85,
				CapacityPercent: 15, EdgeP: 0.4, Seed: seed,
			}
			lazy, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{ByDensity: byDensity, Lazy: true})
			if err != nil {
				t.Fatal(err)
			}
			eager, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{ByDensity: byDensity})
			if err != nil {
				t.Fatal(err)
			}
			if lazy.Schema.TotalCost() != eager.Schema.TotalCost() {
				t.Fatalf("seed %d density=%v: lazy %d != eager %d",
					seed, byDensity, lazy.Schema.TotalCost(), eager.Schema.TotalCost())
			}
			if lazy.Placed != eager.Placed {
				t.Fatalf("seed %d density=%v: lazy placed %d, eager %d",
					seed, byDensity, lazy.Placed, eager.Placed)
			}
		}
	}
}

// The lazy engine exists because it does strictly less work.
func TestLazyDoesFewerEvaluations(t *testing.T) {
	cfg := testutil.Medium(10)
	lazy, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{ByDensity: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{ByDensity: true})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Evaluations >= eager.Evaluations {
		t.Fatalf("lazy evaluations %d not below eager %d", lazy.Evaluations, eager.Evaluations)
	}
}
