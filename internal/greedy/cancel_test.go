package greedy

import (
	"context"
	"errors"
	"testing"

	"repro/internal/testutil"
)

func TestSolveCancelled(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		testutil.LeakCheck(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		cfg := DefaultConfig()
		cfg.Lazy = lazy
		if _, err := Solve(ctx, testutil.MustBuild(testutil.Small(47)), cfg); !errors.Is(err, context.Canceled) {
			t.Fatalf("lazy=%v: err = %v, want context.Canceled", lazy, err)
		}
	}
}
