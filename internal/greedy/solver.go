package greedy

import (
	"context"
	"fmt"

	"repro/internal/replication"
	"repro/internal/solver"
)

// greedySolver adapts the greedy baseline to the solver registry.
type greedySolver struct{}

func init() { solver.Register(greedySolver{}) }

func (greedySolver) Name() string  { return "greedy" }
func (greedySolver) Label() string { return "Greedy" }
func (greedySolver) Description() string {
	return "centralized greedy of [26]: best benefit per unit of storage until nothing beneficial fits"
}

func (greedySolver) Solve(ctx context.Context, p *replication.Problem, opts solver.Options) (*solver.Outcome, error) {
	switch opts.Engine {
	case "", "eager":
	case "lazy":
	default:
		return nil, fmt.Errorf("greedy: unknown engine %q (want eager|lazy)", opts.Engine)
	}
	cfg := DefaultConfig()
	cfg.Workers = opts.Workers
	cfg.Lazy = opts.Engine == "lazy"
	out := &solver.Outcome{}
	if opts.OnEvent != nil || opts.RecordEvents {
		placed := 0
		cfg.OnPlace = func(object int32, server int, benefit int64) {
			placed++
			out.Emit(opts, solver.Event{
				Round: placed, Object: object, Server: int32(server), Value: benefit,
			})
		}
	}
	res, err := Solve(ctx, p, cfg)
	if err != nil {
		return nil, err
	}
	out.Schema = res.Schema
	out.Replicas = res.Placed
	out.Work = res.Evaluations
	return out, nil
}
