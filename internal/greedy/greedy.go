// Package greedy implements the centralized greedy baseline of the paper's
// comparison (Qiu, Padmanabhan and Voelker, INFOCOM 2001, [26]): repeatedly
// place the replica with the best benefit per unit of storage until nothing
// beneficial fits.
//
// The default engine is the faithful one from [26]: every iteration rescans
// all remaining candidates and places the best (candidates that can never
// recover — non-positive benefit, or too big for the shrinking residual —
// are dropped permanently). Config.Lazy switches to a lazy-evaluation
// max-heap, a modern optimization that is exact here because per-pair
// benefits are non-increasing as replicas appear; the engine ablation bench
// quantifies the speedup.
package greedy

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"

	"repro/internal/candidates"
	"repro/internal/pool"
	"repro/internal/replication"
)

// Config tunes the baseline.
type Config struct {
	// ByDensity keys selection by benefit/size (the knapsack-style rule of
	// [26], default via DefaultConfig). When false, raw benefit is used —
	// which makes the allocation order identical to AGT-RAM's and serves
	// as the "centralized scan" engine ablation.
	ByDensity bool
	// Lazy enables the lazy-evaluation heap instead of full rescans.
	Lazy bool
	// Workers bounds the rescan fan-out of the eager engine; <= 0 selects
	// GOMAXPROCS. Ignored by the lazy engine (inherently sequential).
	Workers int
	// OnPlace, when non-nil, observes every placement as it commits:
	// the object, the receiving server, and the benefit that won.
	OnPlace func(object int32, server int, benefit int64)
}

// DefaultConfig is the paper's greedy: eager rescans, benefit per unit of
// storage.
func DefaultConfig() Config { return Config{ByDensity: true} }

// Result is the outcome of a run.
type Result struct {
	Schema *replication.Schema
	Placed int
	// Evaluations counts benefit computations, the dominant cost term.
	Evaluations int64
}

// Solve runs the greedy baseline. ctx is checked once per pass (eager) or
// per heap settle (lazy); on cancellation Solve returns ctx.Err() wrapped
// with the package name.
func Solve(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("greedy: nil problem")
	}
	schema := p.NewSchema()
	res := &Result{Schema: schema}
	pairs := candidates.Build(p, true)
	if cfg.Lazy {
		if err := solveLazy(ctx, schema, pairs, cfg, res); err != nil {
			return nil, err
		}
	} else {
		if err := solveEager(ctx, schema, pairs, cfg, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func keyOf(cfg Config, benefit, size int64) float64 {
	if cfg.ByDensity {
		return float64(benefit) / float64(size)
	}
	return float64(benefit)
}

// solveEager is the textbook loop of [26]: full rescan, place best, repeat.
// Each candidate carries cached pricing state (its nearest-replica cost and
// its constant update-traffic term), refreshed lazily when its object was
// the last one placed, so an evaluation is O(1) just as for the AGT-RAM
// agents. The rescan fans out over a worker pool; each chunk compacts
// survivors in place and reports its local best, then a serial reduction
// picks the global winner (first occurrence on key ties, matching the
// sequential scan order).
func solveEager(ctx context.Context, schema *replication.Schema, pairs []candidates.Pair, cfg Config, res *Result) error {
	nWorkers := cfg.Workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	workers := pool.New(nWorkers)
	defer workers.Close()

	p := schema.Problem()
	live := make([]cand, 0, len(pairs))
	for _, pr := range pairs {
		r, w := p.Work.ReadsWrites(pr.Server, pr.Object)
		pk := int(p.Work.Primary[pr.Object])
		live = append(live, cand{
			server:  pr.Server,
			object:  pr.Object,
			size:    pr.Size,
			reads:   r,
			nnCost:  p.Cost.At(pr.Server, pk),
			updCost: (p.Work.TotalWrites[pr.Object] - w) * pr.Size * int64(p.Cost.At(pk, pr.Server)),
		})
	}

	type chunkBest struct {
		lo, hi int // surviving range after in-place compaction
		idx    int // index of local best within [lo, hi), or -1
		key    float64
		evals  int64
	}
	results := make([]chunkBest, nWorkers)
	lastObj, lastServer := int32(-1), -1
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("greedy: %w", err)
		}
		nChunks := 0
		chunk := (len(live) + nWorkers - 1) / nWorkers
		if chunk > 0 {
			nChunks = (len(live) + chunk - 1) / chunk
		}
		workers.Batch(len(live), func(lo, hi int) {
			ci := lo / chunk
			cb := chunkBest{lo: lo, idx: -1}
			out := lo
			for j := lo; j < hi; j++ {
				c := live[j]
				if c.object == lastObj {
					// Refresh the nearest-replica cost against the replica
					// placed last round (all older placements were folded in
					// the round after they happened).
					if nc := p.Cost.At(c.server, lastServer); nc < c.nnCost {
						c.nnCost = nc
					}
				}
				if schema.Residual(c.server) < c.size {
					continue // permanent prune
				}
				b := c.reads*c.size*int64(c.nnCost) - c.updCost
				cb.evals++
				if b <= 0 {
					continue // permanent prune: benefits only shrink
				}
				live[out] = c
				if key := keyOf(cfg, b, c.size); cb.idx == -1 || key > cb.key {
					cb.idx, cb.key = out, key
				}
				out++
			}
			cb.hi = out
			results[ci] = cb
		})
		// Serial reduction: stitch surviving ranges, track the global best.
		bestIdx := -1
		var bestKey float64
		out := 0
		for c := 0; c < nChunks; c++ {
			cb := results[c]
			res.Evaluations += cb.evals
			for j := cb.lo; j < cb.hi; j++ {
				live[out] = live[j]
				if j == cb.idx {
					if bestIdx == -1 || cb.key > bestKey {
						bestIdx, bestKey = out, cb.key
					}
				}
				out++
			}
		}
		live = live[:out]
		if bestIdx == -1 {
			return nil
		}
		c := live[bestIdx]
		if _, err := schema.PlaceReplica(c.object, c.server); err != nil {
			return fmt.Errorf("greedy: placing (%d on %d): %w", c.object, c.server, err)
		}
		res.Placed++
		if cfg.OnPlace != nil {
			// live[bestIdx] carries this pass's refreshed pricing state, so
			// the O(1) benefit formula reproduces the evaluated value.
			cfg.OnPlace(c.object, c.server, c.reads*c.size*int64(c.nnCost)-c.updCost)
		}
		lastObj, lastServer = c.object, c.server
		live = append(live[:bestIdx], live[bestIdx+1:]...)
	}
}

// cand is one candidate with cached pricing state for O(1) evaluation.
type cand struct {
	server  int
	object  int32
	size    int64
	reads   int64
	nnCost  int32
	updCost int64
}

// solveLazy runs the same rule through a lazy max-heap: pop the top,
// re-evaluate, place only if it still dominates the runner-up. Exact,
// because keys only decrease over time.
func solveLazy(ctx context.Context, schema *replication.Schema, pairs []candidates.Pair, cfg Config, res *Result) error {
	h := make(maxHeap, 0, len(pairs))
	for _, pr := range pairs {
		b := schema.LocalBenefit(pr.Server, pr.Object)
		res.Evaluations++
		if b > 0 {
			h = append(h, item{pair: pr, key: keyOf(cfg, b, pr.Size)})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("greedy: %w", err)
		}
		top := h[0]
		pr := top.pair
		if schema.HasReplica(pr.Object, pr.Server) || schema.Residual(pr.Server) < pr.Size {
			heap.Pop(&h)
			continue
		}
		b := schema.LocalBenefit(pr.Server, pr.Object)
		res.Evaluations++
		if b <= 0 {
			heap.Pop(&h)
			continue
		}
		key := keyOf(cfg, b, pr.Size)
		if key < top.key {
			h[0].key = key
			heap.Fix(&h, 0)
			continue
		}
		if _, err := schema.PlaceReplica(pr.Object, pr.Server); err != nil {
			return fmt.Errorf("greedy: placing (%d on %d): %w", pr.Object, pr.Server, err)
		}
		res.Placed++
		if cfg.OnPlace != nil {
			cfg.OnPlace(pr.Object, pr.Server, b)
		}
		heap.Pop(&h)
	}
	return nil
}

type item struct {
	pair candidates.Pair
	// key is the cached priority from the last evaluation; the true value
	// only shrinks over time.
	key float64
}

type maxHeap []item

func (h maxHeap) Len() int { return len(h) }
func (h maxHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key > h[j].key
	}
	if h[i].pair.Server != h[j].pair.Server {
		return h[i].pair.Server < h[j].pair.Server
	}
	return h[i].pair.Object < h[j].pair.Object
}
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
