// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5): Figure 3 (OTC savings versus server capacity),
// Figure 4 (OTC savings versus read/write ratio), Table 1 (running time
// versus problem size) and Table 2 (savings on ten random instances), plus
// the three design ablations called out in DESIGN.md.
//
// The paper's full scale (M=3718 servers, N=25,000 objects, 1–2 million
// requests) is reproduced shape-faithfully at a configurable Scale: the
// default shrinks M and N by about 12x so a whole experiment runs in
// seconds to minutes on a laptop, and every driver accepts a larger scale
// to grow toward the original sizes.
package bench

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/stats"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies the paper's M and N (default 0.08).
	Scale float64
	// Seed drives every randomized component.
	Seed int64
	// Workers bounds solver fan-out; <= 0 selects GOMAXPROCS.
	Workers int
	// Sync forces AGT-RAM's synchronous full-rescan engine across every
	// experiment instead of the default incremental one (identical
	// results; only the work counts and wall time differ).
	Sync bool
	// Methods to run (default: all six, paper order).
	Methods []repro.Method
	// GRAGenerations overrides the GA budget (default 30).
	GRAGenerations int
	// RoundTimeout bounds per-agent reads/writes in the AGT-RAM wire
	// engines during the engine ablation; agents that miss it are evicted.
	RoundTimeout time.Duration
	// Faults injects deterministic faults into the AGT-RAM wire engines
	// during the engine ablation (nil = none).
	Faults *repro.FaultConfig
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.08
	}
	if len(c.Methods) == 0 {
		c.Methods = repro.Methods()
	}
	if c.GRAGenerations == 0 {
		c.GRAGenerations = 30
	}
	return c
}

func (c Config) progress(format string, args ...interface{}) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

// scaled shrinks a paper dimension, keeping a usable floor.
func scaled(paper int, scale float64, floor int) int {
	v := int(float64(paper) * scale)
	if v < floor {
		return floor
	}
	return v
}

// requestsFor sizes the request volume like the paper: roughly 60 requests
// per object (25k objects saw 1.5M requests).
func requestsFor(objects int) int { return objects * 60 }

// Table is a rendered experiment: one row per sweep point, one column per
// method (plus optional extra columns).
type Table struct {
	Title    string
	RowLabel string // meaning of the row key
	Unit     string // meaning of the cell values
	Columns  []string
	Rows     []Row
}

// Row is one line of a Table.
type Row struct {
	Label  string
	Values []float64
}

// Value returns the cell under the named column (NaN-free; ok=false when
// the column does not exist).
func (t *Table) Value(rowIdx int, column string) (float64, bool) {
	for ci, c := range t.Columns {
		if c == column {
			return t.Rows[rowIdx].Values[ci], true
		}
	}
	return 0, false
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n(%s by %s)\n", t.Title, t.Unit, t.RowLabel); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", t.RowLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(tw, "\t%.2f", v)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteCSV writes the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{t.RowLabel}, t.Columns...)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 0, len(r.Values)+1)
		rec = append(rec, r.Label)
		for _, v := range r.Values {
			rec = append(rec, strconv.FormatFloat(v, 'f', 4, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// methodColumns renders method names the way the paper labels them.
func methodColumns(methods []repro.Method) []string {
	out := make([]string, len(methods))
	for i, m := range methods {
		out[i] = MethodLabel(m)
	}
	return out
}

// MethodLabel maps a method to the paper's label, straight from the solver
// registry (unknown methods pass through unchanged).
func MethodLabel(m repro.Method) string { return repro.MethodLabel(m) }

// runAll solves one instance config with every configured method, building
// a fresh instance per method so no state leaks between runs. The Sync
// engine override only applies to AGT-RAM — engine selection is meaningless
// for the single-engine baselines and the facade now rejects it.
func runAll(ctx context.Context, cfg Config, icfg repro.InstanceConfig) (map[repro.Method]*repro.Result, error) {
	out := make(map[repro.Method]*repro.Result, len(cfg.Methods))
	for _, m := range cfg.Methods {
		inst, err := repro.NewInstance(icfg)
		if err != nil {
			return nil, fmt.Errorf("bench: building instance for %s: %w", m, err)
		}
		res, err := inst.SolveContext(ctx, m, &repro.Options{
			Workers:        cfg.Workers,
			Sync:           cfg.Sync && m == repro.AGTRAM,
			Seed:           stats.Mix64(cfg.Seed, int64(len(m))),
			GRAGenerations: cfg.GRAGenerations,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: solving with %s: %w", m, err)
		}
		out[m] = res
		cfg.progress("%s: savings %.2f%% in %s", MethodLabel(m), res.SavingsPercent, res.Runtime.Round(time.Millisecond))
	}
	return out, nil
}
