package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro"
)

// tiny keeps experiment tests fast: the smallest usable scale.
func tiny() Config {
	return Config{Scale: 0.008, Seed: 7, GRAGenerations: 6}
}

func TestFigure3ShapeAndContent(t *testing.T) {
	tab, err := Figure3(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("got %d capacity points, want 7", len(tab.Rows))
	}
	// Monotone-ish growth for AGT-RAM: last point must beat the first.
	first, ok := tab.Value(0, "AGT-RAM")
	if !ok {
		t.Fatal("AGT-RAM column missing")
	}
	last, _ := tab.Value(len(tab.Rows)-1, "AGT-RAM")
	if last <= first {
		t.Fatalf("no capacity growth: first=%.2f last=%.2f", first, last)
	}
	// GRA trails AGT-RAM at every capacity point (the paper's headline).
	for i := range tab.Rows {
		agt, _ := tab.Value(i, "AGT-RAM")
		gra, _ := tab.Value(i, "GRA")
		if gra >= agt {
			t.Fatalf("row %d: GRA %.2f >= AGT-RAM %.2f", i, gra, agt)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	tab, err := Figure4(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("got %d R/W points, want 10", len(tab.Rows))
	}
	// Savings must grow with the read share: compare R/W=0.5 and 0.95.
	mid, _ := tab.Value(4, "AGT-RAM")
	top, _ := tab.Value(9, "AGT-RAM")
	if top <= mid {
		t.Fatalf("savings should grow with reads: 0.5->%.2f 0.95->%.2f", mid, top)
	}
}

func TestTable1Columns(t *testing.T) {
	cfg := tiny()
	cfg.Methods = []repro.Method{repro.AGTRAM, repro.Greedy, repro.GRA}
	tab, err := Table1(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("got %d problem sizes, want 9", len(tab.Rows))
	}
	if tab.Columns[len(tab.Columns)-1] != "AGT-RAM gain %" {
		t.Fatalf("missing gain column: %v", tab.Columns)
	}
	for i := range tab.Rows {
		if v, _ := tab.Value(i, "AGT-RAM"); v <= 0 {
			t.Fatalf("row %d: non-positive runtime", i)
		}
	}
}

func TestTable2RowsAndGain(t *testing.T) {
	cfg := tiny()
	cfg.Methods = []repro.Method{repro.AGTRAM, repro.GRA}
	tab, err := Table2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("got %d instances, want 10", len(tab.Rows))
	}
	// Against GRA alone, AGT-RAM must never lose, and must win outright on
	// most instances (write-heavy rows can leave both near zero savings).
	positive := 0
	for i := range tab.Rows {
		gain, ok := tab.Value(i, "AGT-RAM gain %")
		if !ok {
			t.Fatal("gain column missing")
		}
		if gain < 0 {
			t.Fatalf("row %d: AGT-RAM loses to GRA by %.2f%%", i, -gain)
		}
		if gain > 0 {
			positive++
		}
	}
	if positive < 7 {
		t.Fatalf("AGT-RAM beat GRA on only %d/10 instances", positive)
	}
}

func TestAblationPayment(t *testing.T) {
	tab, err := AblationPayment(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		second, _ := tab.Value(i, "second-price")
		first, _ := tab.Value(i, "first-price")
		if second != 0 {
			t.Fatalf("batch %d: second-price manipulation gain %.2f, want 0", i, second)
		}
		if first <= 0 {
			t.Fatalf("batch %d: first-price manipulation gain %.2f, want > 0", i, first)
		}
	}
}

func TestAblationValuation(t *testing.T) {
	tab, err := AblationValuation(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	for i := range tab.Rows {
		local, _ := tab.Value(i, "local savings")
		exact, _ := tab.Value(i, "exact savings")
		if local <= 0 || exact <= 0 {
			t.Fatalf("row %d: non-positive savings %.2f/%.2f", i, local, exact)
		}
	}
}

func TestAblationEngine(t *testing.T) {
	tab, err := AblationEngine(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("got %d rows, want 6 (five engines + control)", len(tab.Rows))
	}
	// All five engines produce identical savings.
	s0, _ := tab.Value(0, "savings")
	for i := 1; i < 5; i++ {
		if si, _ := tab.Value(i, "savings"); si != s0 {
			t.Fatalf("engine row %d disagrees: %.4f vs %.4f", i, si, s0)
		}
	}
	// The incremental engine (row 0) must beat the synchronous rescan
	// (row 1) on valuation computations.
	vInc, _ := tab.Value(0, "valuations")
	vSync, _ := tab.Value(1, "valuations")
	if vInc <= 0 || vInc >= vSync {
		t.Fatalf("incremental valuations %.0f not below synchronous %.0f", vInc, vSync)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		Title:    "demo",
		RowLabel: "x",
		Unit:     "y",
		Columns:  []string{"a", "b"},
		Rows: []Row{
			{Label: "1", Values: []float64{1.5, 2.5}},
			{Label: "2", Values: []float64{3, 4}},
		},
	}
	var text bytes.Buffer
	if err := tab.Render(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "demo") || !strings.Contains(text.String(), "2.50") {
		t.Fatalf("render missing content:\n%s", text.String())
	}
	var csvBuf bytes.Buffer
	if err := tab.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 || lines[0] != "x,a,b" {
		t.Fatalf("csv wrong:\n%s", csvBuf.String())
	}
	if _, ok := tab.Value(0, "missing"); ok {
		t.Fatal("Value found a missing column")
	}
}

func TestMethodLabels(t *testing.T) {
	for _, m := range repro.Methods() {
		if MethodLabel(m) == string(m) && m != "unknown" {
			// All six methods have pretty labels distinct from their ids.
			t.Fatalf("method %q has no label", m)
		}
	}
	if MethodLabel("custom") != "custom" {
		t.Fatal("unknown methods should pass through")
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := tiny()
	cfg.Methods = []repro.Method{repro.AGTRAM}
	var lines []string
	cfg.Progress = func(s string) { lines = append(lines, s) }
	if _, err := Figure4(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no progress reported")
	}
}

func TestRenderChart(t *testing.T) {
	tab := &Table{
		Title:    "chart demo",
		RowLabel: "x",
		Columns:  []string{"a", "b"},
		Rows: []Row{
			{Label: "10", Values: []float64{10, 40}},
			{Label: "20", Values: []float64{30, 45}},
			{Label: "30", Values: []float64{50, 48}},
		},
	}
	var buf bytes.Buffer
	if err := tab.RenderChart(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chart demo", "*=a", "o=b", "(x)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Marker characters must appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("no series markers:\n%s", out)
	}
	// Empty table degrades gracefully.
	var empty bytes.Buffer
	if err := (&Table{}).RenderChart(&empty, 10, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "empty") {
		t.Fatal("empty table not reported")
	}
}

// The entire experiment pipeline is deterministic: regenerating Figure 3
// at the same scale and seed yields cell-identical tables.
func TestPipelineDeterminism(t *testing.T) {
	cfg := tiny()
	cfg.Methods = []repro.Method{repro.AGTRAM, repro.GRA}
	a, err := Figure3(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure3(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for j := range a.Rows[i].Values {
			if a.Rows[i].Values[j] != b.Rows[i].Values[j] {
				t.Fatalf("cell (%d,%d) differs across runs: %v vs %v",
					i, j, a.Rows[i].Values[j], b.Rows[i].Values[j])
			}
		}
	}
}

func TestAblationOracle(t *testing.T) {
	tab, err := AblationOracle(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 topologies x 2 scales)", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		dense, _ := tab.Value(i, "dense savings")
		lm, _ := tab.Value(i, "landmark savings")
		if dense <= 0 || lm <= 0 {
			t.Fatalf("%s: non-positive savings %.2f/%.2f", row.Label, dense, lm)
		}
		// The landmark placement is re-costed under the exact metric; the
		// acceptance bound is 5% of the exact savings, in either direction —
		// AGT-RAM is a heuristic, so the approximate metric occasionally
		// steers it to a marginally better placement.
		if lm < dense*0.95 || lm > dense*1.05 {
			t.Fatalf("%s: landmark savings %.2f outside 5%% of dense %.2f", row.Label, lm, dense)
		}
		// Landmark estimates never underestimate, so both stats are
		// non-negative; p95 below the mean is legitimate (>95% exact pairs
		// with a long tail), so the stats are not ordered against each other.
		p95, _ := tab.Value(i, "p95 rel err")
		mean, _ := tab.Value(i, "mean rel err")
		if mean < 0 || p95 < 0 {
			t.Fatalf("%s: negative error stats mean=%.4f p95=%.4f", row.Label, mean, p95)
		}
	}
}
