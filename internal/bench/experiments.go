package bench

import (
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/stats"
)

// Paper-scale constants of Section 5.
const (
	paperM = 3718  // AS-level node count estimated with Inet for 1998
	paperN = 25000 // objects present in all thirteen Friday logs
)

// Figure3 reproduces "OTC savings versus server capacity": M=3718,
// N=25,000, R/W=0.95, capacity swept from 10% to 40%.
func Figure3(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := scaled(paperM, cfg.Scale, 24)
	n := scaled(paperN, cfg.Scale, 120)
	t := &Table{
		Title:    fmt.Sprintf("Figure 3: OTC savings versus server capacity [M=%d, N=%d, R/W=0.95]", m, n),
		RowLabel: "capacity%",
		Unit:     "OTC savings %",
		Columns:  methodColumns(cfg.Methods),
	}
	for _, capacity := range []float64{10, 15, 20, 25, 30, 35, 40} {
		cfg.progress("Figure 3: capacity %.0f%%", capacity)
		results, err := runAll(ctx, cfg, repro.InstanceConfig{
			Servers:         m,
			Objects:         n,
			Requests:        requestsFor(n),
			RWRatio:         0.95,
			CapacityPercent: capacity,
			Seed:            cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		row := Row{Label: fmt.Sprintf("%.0f", capacity)}
		for _, meth := range cfg.Methods {
			row.Values = append(row.Values, results[meth].SavingsPercent)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure4 reproduces "OTC savings versus read/write ratio": M=3718,
// N=25,000, C=45%, R/W swept from 0.10 to 0.95.
func Figure4(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := scaled(paperM, cfg.Scale, 24)
	n := scaled(paperN, cfg.Scale, 120)
	t := &Table{
		Title:    fmt.Sprintf("Figure 4: OTC savings versus read/write ratio [M=%d, N=%d, C=45%%]", m, n),
		RowLabel: "R/W",
		Unit:     "OTC savings %",
		Columns:  methodColumns(cfg.Methods),
	}
	for _, rw := range []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95} {
		cfg.progress("Figure 4: R/W %.2f", rw)
		results, err := runAll(ctx, cfg, repro.InstanceConfig{
			Servers:         m,
			Objects:         n,
			Requests:        requestsFor(n),
			RWRatio:         rw,
			CapacityPercent: 45,
			Seed:            cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		row := Row{Label: fmt.Sprintf("%.2f", rw)}
		for _, meth := range cfg.Methods {
			row.Values = append(row.Values, results[meth].SavingsPercent)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table1 reproduces "running time of the replica placement methods":
// C=45%, R/W=0.85, problem sizes (M, N) from 2500x15k to 3718x25k. The
// extra column reports the paper's headline: the percentage by which
// AGT-RAM's running time beats the fastest baseline.
func Table1(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []struct{ m, n int }{
		{2500, 15000}, {2500, 20000}, {2500, 25000},
		{3000, 15000}, {3000, 20000}, {3000, 25000},
		{3718, 15000}, {3718, 20000}, {3718, 25000},
	}
	t := &Table{
		Title:    "Table 1: running time of the replica placement methods [C=45%, R/W=0.85, best of 3 runs]",
		RowLabel: "problem size",
		Unit:     "seconds",
		Columns:  append(methodColumns(cfg.Methods), "AGT-RAM gain %"),
	}
	const repeats = 3
	for _, sz := range sizes {
		m := scaled(sz.m, cfg.Scale, 16)
		n := scaled(sz.n, cfg.Scale, 80)
		cfg.progress("Table 1: M=%d N=%d", m, n)
		icfg := repro.InstanceConfig{
			Servers:         m,
			Objects:         n,
			Requests:        requestsFor(n),
			RWRatio:         0.85,
			CapacityPercent: 45,
			Seed:            stats.Mix64(cfg.Seed, int64(sz.m*31+sz.n)),
		}
		// Best-of-N timing: single runs at laptop scale are dominated by
		// scheduler noise.
		best := make(map[repro.Method]time.Duration, len(cfg.Methods))
		for r := 0; r < repeats; r++ {
			results, err := runAll(ctx, cfg, icfg)
			if err != nil {
				return nil, err
			}
			for _, meth := range cfg.Methods {
				rt := results[meth].Runtime
				if prev, ok := best[meth]; !ok || rt < prev {
					best[meth] = rt
				}
			}
		}
		row := Row{Label: fmt.Sprintf("M=%d, N=%d", m, n)}
		var agt time.Duration
		bestOther := time.Duration(0)
		for _, meth := range cfg.Methods {
			rt := best[meth]
			row.Values = append(row.Values, rt.Seconds())
			if meth == repro.AGTRAM {
				agt = rt
			} else if bestOther == 0 || rt < bestOther {
				bestOther = rt
			}
		}
		gain := 0.0
		if bestOther > 0 {
			gain = 100 * float64(bestOther-agt) / float64(bestOther)
		}
		row.Values = append(row.Values, gain)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table2 reproduces "average OTC savings under randomly chosen problem
// instances": the paper's ten (M, N, C, R/W) combinations. The extra
// column reports the percentage by which AGT-RAM's savings beat the best
// baseline's, matching the paper's improvement column.
func Table2(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rows := []struct {
		m, n int
		c    float64
		rw   float64
	}{
		{100, 1000, 20, 0.75},
		{200, 2000, 20, 0.80},
		{500, 3000, 25, 0.95},
		{1000, 5000, 35, 0.95},
		{1500, 10000, 25, 0.75},
		{2000, 15000, 30, 0.65},
		{2500, 15000, 25, 0.85},
		{3000, 20000, 25, 0.65},
		{3500, 25000, 35, 0.50},
		{3718, 25000, 10, 0.40},
	}
	t := &Table{
		Title:    "Table 2: average OTC savings under randomly chosen problem instances",
		RowLabel: "instance",
		Unit:     "OTC savings %",
		Columns:  append(methodColumns(cfg.Methods), "AGT-RAM gain %", "gain vs mean %"),
	}
	for i, spec := range rows {
		m := scaled(spec.m, cfg.Scale, 16)
		n := scaled(spec.n, cfg.Scale, 80)
		cfg.progress("Table 2: instance %d (M=%d N=%d C=%.0f%% R/W=%.2f)", i+1, m, n, spec.c, spec.rw)
		results, err := runAll(ctx, cfg, repro.InstanceConfig{
			Servers:         m,
			Objects:         n,
			Requests:        requestsFor(n),
			RWRatio:         spec.rw,
			CapacityPercent: spec.c,
			Seed:            stats.Mix64(cfg.Seed, int64(i+1)),
		})
		if err != nil {
			return nil, err
		}
		row := Row{Label: fmt.Sprintf("M=%d, N=%d [C=%.0f%%, R/W=%.2f]", m, n, spec.c, spec.rw)}
		var agt, bestOther, sumOther float64
		others := 0
		for _, meth := range cfg.Methods {
			s := results[meth].SavingsPercent
			row.Values = append(row.Values, s)
			if meth == repro.AGTRAM {
				agt = s
			} else {
				if s > bestOther {
					bestOther = s
				}
				sumOther += s
				others++
			}
		}
		gain := 0.0
		if bestOther > 0 {
			gain = 100 * (agt - bestOther) / bestOther
		}
		gainMean := 0.0
		if others > 0 && sumOther > 0 {
			mean := sumOther / float64(others)
			gainMean = 100 * (agt - mean) / mean
		}
		row.Values = append(row.Values, gain, gainMean)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
