package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderChart draws the table as an ASCII line chart — one series per
// column — so Figures 3 and 4 render as figures on a terminal. Rows are the
// x axis (their labels), cell values the y axis. Width and height are the
// plot area in characters; sensible minimums are enforced.
func (t *Table) RenderChart(w io.Writer, width, height int) error {
	if len(t.Rows) == 0 || len(t.Columns) == 0 {
		_, err := fmt.Fprintln(w, "(empty table)")
		return err
	}
	if width < 2*len(t.Rows) {
		width = 2 * len(t.Rows)
	}
	if width < 40 {
		width = 40
	}
	if height < 8 {
		height = 8
	}

	// Series markers: one distinct rune per column.
	markers := []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Value range over all series.
	min, max := math.Inf(1), math.Inf(-1)
	for _, r := range t.Rows {
		for _, v := range r.Values {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if min > 0 {
		min = 0 // anchor savings-style charts at zero
	}
	if max <= min {
		max = min + 1
	}

	grid := make([][]rune, height)
	for y := range grid {
		grid[y] = make([]rune, width)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	plot := func(row, col int, v float64) {
		x := 0
		if len(t.Rows) > 1 {
			x = row * (width - 1) / (len(t.Rows) - 1)
		}
		frac := (v - min) / (max - min)
		y := height - 1 - int(frac*float64(height-1)+0.5)
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		m := markers[col%len(markers)]
		if grid[y][x] != ' ' && grid[y][x] != m {
			grid[y][x] = '=' // collision: series overlap here
		} else {
			grid[y][x] = m
		}
	}
	for ci := range t.Columns {
		for ri, r := range t.Rows {
			if ci < len(r.Values) {
				plot(ri, ci, r.Values[ci])
			}
		}
	}

	if _, err := fmt.Fprintln(w, t.Title); err != nil {
		return err
	}
	for y := 0; y < height; y++ {
		v := max - (max-min)*float64(y)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%8.1f |%s\n", v, string(grid[y])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	// X labels: first and last row labels.
	first, last := t.Rows[0].Label, t.Rows[len(t.Rows)-1].Label
	pad := width - len(first) - len(last)
	if pad < 1 {
		pad = 1
	}
	if _, err := fmt.Fprintf(w, "%8s  %s%s%s   (%s)\n", "", first, strings.Repeat(" ", pad), last, t.RowLabel); err != nil {
		return err
	}
	// Legend.
	var legend []string
	for ci, c := range t.Columns {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[ci%len(markers)], c))
	}
	_, err := fmt.Fprintf(w, "%8s  %s\n", "", strings.Join(legend, "  "))
	return err
}
