package bench

import (
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Scenarios benchmarks every configured method across the canonical
// adversarial-workload matrix (flash crowd, diurnal wave, correlated
// failures, rolling topology): one fresh controller per (scenario, method)
// cell ingests the scenario's delta schedule, re-solves after every tick,
// and the cell reports the OTC savings of the placement it ended on. Rows
// are scenarios; a trailing "steady" row runs no deltas at all, anchoring
// each method's undisturbed savings on the same instance.
func Scenarios(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := scaled(paperM, cfg.Scale/2, 16)
	n := scaled(paperN, cfg.Scale/2, 60)
	icfg := repro.InstanceConfig{
		Servers:         m,
		Objects:         n,
		Requests:        requestsFor(n),
		RWRatio:         0.85,
		CapacityPercent: 20,
		Seed:            cfg.Seed,
	}

	t := &Table{
		Title: fmt.Sprintf("Scenario matrix: OTC savings after adversarial churn [M=%d, N=%d, C=20%%, R/W=0.85]",
			m, n),
		RowLabel: "scenario",
		Unit:     "OTC savings %",
		Columns:  methodColumns(cfg.Methods),
	}

	names := append(sim.ScenarioNames(), "steady")
	for _, name := range names {
		row := Row{Label: name, Values: make([]float64, len(cfg.Methods))}
		for mi, meth := range cfg.Methods {
			inst, err := repro.NewInstance(icfg)
			if err != nil {
				return nil, fmt.Errorf("bench: scenario instance: %w", err)
			}
			p := inst.Problem()
			ctrl, err := online.New(p.Cost, p.Work, p.Capacity, online.Config{
				Method:  string(meth),
				Workers: cfg.Workers,
				Seed:    stats.Mix64(cfg.Seed, int64(len(meth))),
			})
			if err != nil {
				return nil, fmt.Errorf("bench: scenario controller for %s: %w", meth, err)
			}
			start := time.Now()
			var savings float64
			if name == "steady" {
				if err := ctrl.SolveNow(ctx); err != nil {
					ctrl.Close()
					return nil, fmt.Errorf("bench: steady solve with %s: %w", meth, err)
				}
				savings = ctrl.Current().Schema.Savings()
				cfg.progress("steady/%s: savings %.2f%% in %s",
					MethodLabel(meth), savings, time.Since(start).Round(time.Millisecond))
			} else {
				gen, err := sim.NewScenario(name, sim.ShapeOf(p), stats.Mix64(cfg.Seed, 0x5ce9))
				if err != nil {
					ctrl.Close()
					return nil, err
				}
				res, err := sim.RunScenario(ctx, ctrl, gen, true, 0)
				if err != nil {
					ctrl.Close()
					return nil, fmt.Errorf("bench: scenario %s with %s: %w", name, meth, err)
				}
				savings = res.FinalSavings
				cfg.progress("%s/%s: savings %.2f%%, %d solves, %d work in %s",
					name, MethodLabel(meth), savings, res.Solves, res.SolverWork,
					time.Since(start).Round(time.Millisecond))
			}
			ctrl.Close()
			row.Values[mi] = savings
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
