package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro"
	"repro/internal/distoracle"
	"repro/internal/mechanism"
	"repro/internal/replication"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// AblationPayment quantifies why the paper's Axiom 5 payment matters: for a
// batch of synthetic bid scenarios, it measures the best utility gain an
// agent can extract by misreporting under the second-price rule (always 0)
// versus the first-price rule (strictly positive whenever shading pays).
func AblationPayment(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	r := stats.NewRNG(cfg.Seed)
	t := &Table{
		Title:    "Ablation A: manipulation gain by payment rule (Axiom 5)",
		RowLabel: "scenario batch",
		Unit:     "mean best misreport gain (utility units)",
		Columns:  []string{"second-price", "first-price"},
	}
	for batch := 0; batch < 5; batch++ {
		var gainSecond, gainFirst float64
		const scenarios = 200
		for sc := 0; sc < scenarios; sc++ {
			trueVal := r.Int64Range(100, 100000)
			others := make([]mechanism.Bid, r.IntnInclusive(1, 8))
			for i := range others {
				others[i] = mechanism.Bid{Agent: i, Value: r.Int64Range(100, 100000)}
			}
			var mis []int64
			for f := 1; f <= 8; f++ {
				mis = append(mis, trueVal*int64(f)/4) // 0.25x .. 2x
			}
			gainSecond += float64(mechanism.ManipulationGain(mechanism.SecondPrice, trueVal, mis, others))
			gainFirst += float64(mechanism.ManipulationGain(mechanism.FirstPrice, trueVal, mis, others))
		}
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("batch %d (%d scenarios)", batch+1, scenarios),
			Values: []float64{gainSecond / scenarios, gainFirst / scenarios},
		})
	}
	return t, nil
}

// AblationValuation compares the paper's local CoR valuation against the
// exact global OTC delta an omniscient agent could compute: solution
// quality (savings) and the per-run wall time of each.
func AblationValuation(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := scaled(paperM, cfg.Scale/2, 20)
	n := scaled(paperN, cfg.Scale/2, 100)
	t := &Table{
		Title:    fmt.Sprintf("Ablation B: AGT-RAM valuation rule [M=%d, N=%d, R/W=0.90]", m, n),
		RowLabel: "capacity%",
		Unit:     "savings % | seconds",
		Columns:  []string{"local savings", "exact savings", "local s", "exact s"},
	}
	for _, capacity := range []float64{10, 20, 30} {
		icfg := repro.InstanceConfig{
			Servers: m, Objects: n, Requests: requestsFor(n),
			RWRatio: 0.90, CapacityPercent: capacity, Seed: cfg.Seed,
		}
		instL, err := repro.NewInstance(icfg)
		if err != nil {
			return nil, err
		}
		local, err := instL.SolveContext(ctx, repro.AGTRAM, &repro.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		instE, err := repro.NewInstance(icfg)
		if err != nil {
			return nil, err
		}
		exact, err := instE.SolveContext(ctx, repro.AGTRAM, &repro.Options{Workers: cfg.Workers, Sync: true, ExactValuation: true})
		if err != nil {
			return nil, err
		}
		cfg.progress("Ablation B: C=%.0f%% local=%.2f%% exact=%.2f%%", capacity, local.SavingsPercent, exact.SavingsPercent)
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%.0f", capacity),
			Values: []float64{
				local.SavingsPercent, exact.SavingsPercent,
				local.Runtime.Seconds(), exact.Runtime.Seconds(),
			},
		})
	}
	return t, nil
}

// AblationEngine compares the five AGT-RAM engines (event-driven
// incremental, synchronous-parallel, goroutine message passing, gob over
// net.Pipe, gob over loopback TCP) — identical allocations, different
// execution substrate — and the centralized raw-benefit scan (greedy
// without density) as the non-mechanism control. The valuations column
// isolates the incremental engine's algorithmic win from wall-clock noise.
// Config.RoundTimeout and Config.Faults apply to the two wire rows,
// measuring the mechanism's degradation under an imperfect network.
func AblationEngine(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := scaled(paperM, cfg.Scale/2, 20)
	n := scaled(paperN, cfg.Scale/2, 100)
	icfg := repro.InstanceConfig{
		Servers: m, Objects: n, Requests: requestsFor(n),
		RWRatio: 0.90, CapacityPercent: 20, Seed: cfg.Seed,
	}
	t := &Table{
		Title:    fmt.Sprintf("Ablation C: AGT-RAM engines [M=%d, N=%d, C=20%%, R/W=0.90]", m, n),
		RowLabel: "engine",
		Unit:     "savings % / seconds / valuation computations",
		Columns:  []string{"savings", "seconds", "valuations"},
	}
	engines := []struct {
		name string
		opts repro.Options
	}{
		{"incremental", repro.Options{Workers: cfg.Workers}},
		{"sync-parallel", repro.Options{Workers: cfg.Workers, Sync: true}},
		{"goroutine-msgs", repro.Options{Workers: cfg.Workers, Distributed: true}},
		{"gob-netpipe", repro.Options{Workers: cfg.Workers, Network: true,
			RoundTimeout: cfg.RoundTimeout, Faults: cfg.Faults}},
		{"gob-tcp", repro.Options{Workers: cfg.Workers, TCPAddr: "127.0.0.1:0",
			RoundTimeout: cfg.RoundTimeout, Faults: cfg.Faults}},
	}
	for _, e := range engines {
		inst, err := repro.NewInstance(icfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := inst.SolveContext(ctx, repro.AGTRAM, &e.opts)
		if err != nil {
			return nil, err
		}
		cfg.progress("Ablation C: %s %.2f%% in %s (%d valuations, %d evictions)",
			e.name, res.SavingsPercent, time.Since(start).Round(time.Millisecond), res.Work, len(res.Evictions))
		t.Rows = append(t.Rows, Row{Label: e.name,
			Values: []float64{res.SavingsPercent, res.Runtime.Seconds(), float64(res.Work)}})
	}
	// Control: the same allocation rule run as one centralized scan.
	inst, err := repro.NewInstance(icfg)
	if err != nil {
		return nil, err
	}
	res, err := inst.SolveContext(ctx, repro.Greedy, &repro.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "centralized-greedy",
		Values: []float64{res.SavingsPercent, res.Runtime.Seconds(), float64(res.Work)}})
	return t, nil
}

// AblationOracle quantifies the landmark distance oracle's approximation
// cost in solution quality: the incremental AGT-RAM savings with the exact
// dense matrix versus the K-landmark estimate, on three topology families
// (sparse random, grid, random recursive tree) at the Table-1 scale point
// and a large point that reaches M=5000 at the default Scale — plus the
// oracle's measured distance-error distribution on each graph. The delta
// column is the quality the O(KM)-memory oracle gives up; the CSR-lazy and
// tree oracles are bit-exact and need no quality ablation.
func AblationOracle(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	const landmarks = 64
	small := scaled(paperM, cfg.Scale/2, 20)
	// 62500*0.08 = 5000 at the default Scale; the cap keeps scale-up runs
	// off the dense oracle's O(M²) wall (the exact baseline is the cost).
	large := scaled(62500, cfg.Scale, 400)
	if large > 5000 {
		large = 5000
	}
	t := &Table{
		Title:    fmt.Sprintf("Ablation D: landmark oracle vs exact distances [K=%d, C=20%%, R/W=0.90]", landmarks),
		RowLabel: "topology / M",
		Unit:     "savings % | relative distance error",
		Columns:  []string{"dense savings", "landmark savings", "delta pp", "mean rel err", "p95 rel err"},
	}
	for _, m := range []int{small, large} {
		for _, kind := range []string{"random", "grid", "tree"} {
			g, err := oracleAblationGraph(kind, m, cfg.Seed)
			if err != nil {
				return nil, err
			}
			n := g.N() + g.N()/2
			w, err := workload.Synthetic(workload.SyntheticConfig{
				Servers: g.N(), Objects: n, Requests: requestsFor(n), RWRatio: 0.90, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			caps, err := replication.GenerateCapacities(w, 20, stats.NewRNG(stats.Mix64(cfg.Seed, 17)))
			if err != nil {
				return nil, err
			}
			lm, err := distoracle.NewLandmark(g, landmarks, cfg.Workers)
			if err != nil {
				return nil, err
			}
			denseProb, err := replication.NewProblem(topology.AllPairs(g, cfg.Workers), w, caps)
			if err != nil {
				return nil, err
			}
			denseSchema, err := oracleSolve(ctx, denseProb, cfg)
			if err != nil {
				return nil, err
			}
			denseSav := denseSchema.Savings()
			lmProb, err := replication.NewProblem(lm, w, caps)
			if err != nil {
				return nil, err
			}
			lmSchema, err := oracleSolve(ctx, lmProb, cfg)
			if err != nil {
				return nil, err
			}
			// Re-cost the landmark-guided placement under the exact metric:
			// savings percentages are only comparable in one metric, and the
			// approximate one flatters itself.
			lmSav, err := recostSavings(denseProb, lmSchema)
			if err != nil {
				return nil, err
			}
			ed := lm.ErrorStats(g, 0, stats.Mix64(cfg.Seed, 23))
			cfg.progress("Ablation D: %s M=%d dense=%.2f%% landmark=%.2f%% err mean=%.4f p95=%.4f",
				kind, g.N(), denseSav, lmSav, ed.MeanRel, ed.P95Rel)
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s M=%d", kind, g.N()),
				Values: []float64{
					denseSav, lmSav, denseSav - lmSav, ed.MeanRel, ed.P95Rel,
				},
			})
		}
	}
	return t, nil
}

// oracleAblationGraph builds one ablation topology. The random family
// holds average degree near 12 instead of a fixed edge probability: at
// M=5000, p=0.4 would mean ~5M edges and a near-uniform metric where any
// oracle looks exact.
func oracleAblationGraph(kind string, m int, seed int64) (*topology.Graph, error) {
	r := stats.NewRNG(stats.Mix64(seed, 29))
	switch kind {
	case "random":
		p := 12.0 / float64(m-1)
		if p > 0.4 {
			p = 0.4
		}
		return topology.Random(m, p, topology.DefaultWeights, r)
	case "grid":
		// The most-square grid whose dimensions multiply to exactly m.
		rows := int(math.Sqrt(float64(m)))
		for m%rows != 0 {
			rows--
		}
		return topology.Grid(rows, m/rows), nil
	case "tree":
		return topology.RandomTree(m, topology.DefaultWeights, r)
	}
	return nil, fmt.Errorf("bench: unknown ablation topology %q", kind)
}

// oracleSolve runs the incremental AGT-RAM solver against the problem and
// returns the final schema. The workload and capacities are shared across
// oracles by construction: only the distance function differs between the
// compared rows.
func oracleSolve(ctx context.Context, prob *replication.Problem, cfg Config) (*replication.Schema, error) {
	s, ok := solver.Lookup(string(repro.AGTRAM))
	if !ok {
		return nil, fmt.Errorf("bench: AGT-RAM solver not registered")
	}
	out, err := s.Solve(ctx, prob, solver.Options{Seed: cfg.Seed, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return out.Schema, nil
}

// recostSavings replays a placement found under one metric into a fresh
// schema over prob (the exact-metric problem) and reports its savings
// there. Feasibility is metric-independent — sizes and capacities are
// identical — so every replica replays cleanly.
func recostSavings(prob *replication.Problem, from *replication.Schema) (float64, error) {
	s := prob.NewSchema()
	for k := int32(0); k < int32(prob.N); k++ {
		pk := prob.Work.Primary[k]
		for _, m := range from.Replicas(k) {
			if m == pk {
				continue // Replicas includes the primary copy
			}
			if _, err := s.PlaceReplica(k, int(m)); err != nil {
				return 0, err
			}
		}
	}
	return s.Savings(), nil
}
