package bench

import (
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/mechanism"
	"repro/internal/stats"
)

// AblationPayment quantifies why the paper's Axiom 5 payment matters: for a
// batch of synthetic bid scenarios, it measures the best utility gain an
// agent can extract by misreporting under the second-price rule (always 0)
// versus the first-price rule (strictly positive whenever shading pays).
func AblationPayment(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	r := stats.NewRNG(cfg.Seed)
	t := &Table{
		Title:    "Ablation A: manipulation gain by payment rule (Axiom 5)",
		RowLabel: "scenario batch",
		Unit:     "mean best misreport gain (utility units)",
		Columns:  []string{"second-price", "first-price"},
	}
	for batch := 0; batch < 5; batch++ {
		var gainSecond, gainFirst float64
		const scenarios = 200
		for sc := 0; sc < scenarios; sc++ {
			trueVal := r.Int64Range(100, 100000)
			others := make([]mechanism.Bid, r.IntnInclusive(1, 8))
			for i := range others {
				others[i] = mechanism.Bid{Agent: i, Value: r.Int64Range(100, 100000)}
			}
			var mis []int64
			for f := 1; f <= 8; f++ {
				mis = append(mis, trueVal*int64(f)/4) // 0.25x .. 2x
			}
			gainSecond += float64(mechanism.ManipulationGain(mechanism.SecondPrice, trueVal, mis, others))
			gainFirst += float64(mechanism.ManipulationGain(mechanism.FirstPrice, trueVal, mis, others))
		}
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("batch %d (%d scenarios)", batch+1, scenarios),
			Values: []float64{gainSecond / scenarios, gainFirst / scenarios},
		})
	}
	return t, nil
}

// AblationValuation compares the paper's local CoR valuation against the
// exact global OTC delta an omniscient agent could compute: solution
// quality (savings) and the per-run wall time of each.
func AblationValuation(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := scaled(paperM, cfg.Scale/2, 20)
	n := scaled(paperN, cfg.Scale/2, 100)
	t := &Table{
		Title:    fmt.Sprintf("Ablation B: AGT-RAM valuation rule [M=%d, N=%d, R/W=0.90]", m, n),
		RowLabel: "capacity%",
		Unit:     "savings % | seconds",
		Columns:  []string{"local savings", "exact savings", "local s", "exact s"},
	}
	for _, capacity := range []float64{10, 20, 30} {
		icfg := repro.InstanceConfig{
			Servers: m, Objects: n, Requests: requestsFor(n),
			RWRatio: 0.90, CapacityPercent: capacity, Seed: cfg.Seed,
		}
		instL, err := repro.NewInstance(icfg)
		if err != nil {
			return nil, err
		}
		local, err := instL.SolveContext(ctx, repro.AGTRAM, &repro.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		instE, err := repro.NewInstance(icfg)
		if err != nil {
			return nil, err
		}
		exact, err := instE.SolveContext(ctx, repro.AGTRAM, &repro.Options{Workers: cfg.Workers, Sync: true, ExactValuation: true})
		if err != nil {
			return nil, err
		}
		cfg.progress("Ablation B: C=%.0f%% local=%.2f%% exact=%.2f%%", capacity, local.SavingsPercent, exact.SavingsPercent)
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%.0f", capacity),
			Values: []float64{
				local.SavingsPercent, exact.SavingsPercent,
				local.Runtime.Seconds(), exact.Runtime.Seconds(),
			},
		})
	}
	return t, nil
}

// AblationEngine compares the five AGT-RAM engines (event-driven
// incremental, synchronous-parallel, goroutine message passing, gob over
// net.Pipe, gob over loopback TCP) — identical allocations, different
// execution substrate — and the centralized raw-benefit scan (greedy
// without density) as the non-mechanism control. The valuations column
// isolates the incremental engine's algorithmic win from wall-clock noise.
// Config.RoundTimeout and Config.Faults apply to the two wire rows,
// measuring the mechanism's degradation under an imperfect network.
func AblationEngine(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := scaled(paperM, cfg.Scale/2, 20)
	n := scaled(paperN, cfg.Scale/2, 100)
	icfg := repro.InstanceConfig{
		Servers: m, Objects: n, Requests: requestsFor(n),
		RWRatio: 0.90, CapacityPercent: 20, Seed: cfg.Seed,
	}
	t := &Table{
		Title:    fmt.Sprintf("Ablation C: AGT-RAM engines [M=%d, N=%d, C=20%%, R/W=0.90]", m, n),
		RowLabel: "engine",
		Unit:     "savings % / seconds / valuation computations",
		Columns:  []string{"savings", "seconds", "valuations"},
	}
	engines := []struct {
		name string
		opts repro.Options
	}{
		{"incremental", repro.Options{Workers: cfg.Workers}},
		{"sync-parallel", repro.Options{Workers: cfg.Workers, Sync: true}},
		{"goroutine-msgs", repro.Options{Workers: cfg.Workers, Distributed: true}},
		{"gob-netpipe", repro.Options{Workers: cfg.Workers, Network: true,
			RoundTimeout: cfg.RoundTimeout, Faults: cfg.Faults}},
		{"gob-tcp", repro.Options{Workers: cfg.Workers, TCPAddr: "127.0.0.1:0",
			RoundTimeout: cfg.RoundTimeout, Faults: cfg.Faults}},
	}
	for _, e := range engines {
		inst, err := repro.NewInstance(icfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := inst.SolveContext(ctx, repro.AGTRAM, &e.opts)
		if err != nil {
			return nil, err
		}
		cfg.progress("Ablation C: %s %.2f%% in %s (%d valuations, %d evictions)",
			e.name, res.SavingsPercent, time.Since(start).Round(time.Millisecond), res.Work, len(res.Evictions))
		t.Rows = append(t.Rows, Row{Label: e.name,
			Values: []float64{res.SavingsPercent, res.Runtime.Seconds(), float64(res.Work)}})
	}
	// Control: the same allocation rule run as one centralized scan.
	inst, err := repro.NewInstance(icfg)
	if err != nil {
		return nil, err
	}
	res, err := inst.SolveContext(ctx, repro.Greedy, &repro.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "centralized-greedy",
		Values: []float64{res.SavingsPercent, res.Runtime.Seconds(), float64(res.Work)}})
	return t, nil
}
