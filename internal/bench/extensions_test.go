package bench

import (
	"context"
	"testing"

	"repro"
)

func TestUpdateRatioSweep(t *testing.T) {
	tab, err := UpdateRatio(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 || len(tab.Columns) != 3 {
		t.Fatalf("shape wrong: %d rows %d cols", len(tab.Rows), len(tab.Columns))
	}
	// The paper's claim: all three update ratios show the same trend —
	// savings at the highest capacity beat savings at the lowest.
	for _, col := range tab.Columns {
		lo, _ := tab.Value(0, col)
		hi, _ := tab.Value(len(tab.Rows)-1, col)
		if hi <= lo {
			t.Fatalf("%s: no capacity trend (%.2f -> %.2f)", col, lo, hi)
		}
	}
	// Fewer updates leave more to save: at full capacity, U=5%% >= U=20%%.
	u5, _ := tab.Value(len(tab.Rows)-1, "U=5%")
	u20, _ := tab.Value(len(tab.Rows)-1, "U=20%")
	if u5 < u20 {
		t.Fatalf("U=5%% (%.2f) should outsave U=20%% (%.2f)", u5, u20)
	}
}

func TestRegionsExperiment(t *testing.T) {
	tab, err := Regions(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("got %d region counts", len(tab.Rows))
	}
	// Hierarchical savings are identical across region counts (they all
	// equal flat AGT-RAM).
	first, _ := tab.Value(0, "hier savings")
	for i := range tab.Rows {
		h, _ := tab.Value(i, "hier savings")
		if h != first {
			t.Fatalf("hierarchical savings vary: %.4f vs %.4f", h, first)
		}
		// Failure runs keep working.
		f, _ := tab.Value(i, "fail savings")
		if f <= 0 {
			t.Fatalf("row %d: failed-top run saved %.2f", i, f)
		}
	}
	// More regions -> fewer autonomous epochs.
	e1, _ := tab.Value(0, "auto epochs")
	e16, _ := tab.Value(len(tab.Rows)-1, "auto epochs")
	if e16 >= e1 {
		t.Fatalf("autonomous epochs should shrink with regions: %v -> %v", e1, e16)
	}
}

func TestAdaptiveExperiment(t *testing.T) {
	tab, err := Adaptive(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 { // 6 epochs + mean
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	meanRow := len(tab.Rows) - 1
	mig, _ := tab.Value(meanRow, "migrating savings")
	fro, _ := tab.Value(meanRow, "frozen savings")
	if mig <= fro {
		t.Fatalf("migration (%.2f%%) should beat frozen placement (%.2f%%)", mig, fro)
	}
	// Drift must trigger actual migration after epoch 0.
	var moves float64
	for e := 1; e < meanRow; e++ {
		d, _ := tab.Value(e, "dropped")
		a, _ := tab.Value(e, "added")
		moves += d + a
	}
	if moves == 0 {
		t.Fatal("no migration happened under drift")
	}
}

func TestMultiSeed(t *testing.T) {
	cfg := tiny()
	tab, err := MultiSeed(context.Background(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(repro.Methods()) {
		t.Fatalf("got %d method rows, want %d", len(tab.Rows), len(repro.Methods()))
	}
	_ = cfg
	var totalWins float64
	for i, row := range tab.Rows {
		mean, _ := tab.Value(i, "mean")
		std, _ := tab.Value(i, "std")
		if mean <= 0 {
			t.Fatalf("%s: mean %.2f", row.Label, mean)
		}
		if std < 0 {
			t.Fatalf("%s: negative std", row.Label)
		}
		w, _ := tab.Value(i, "wins")
		totalWins += w
	}
	if totalWins < 4 {
		t.Fatalf("only %v wins across 4 runs", totalWins)
	}
	// The paper's claim: AGT-RAM is among the most frequent winners of the
	// six methods it compares. The Glauber annealing extension sits outside
	// that claim and may legitimately out-win it.
	var agtWins, maxWins float64
	for i, row := range tab.Rows {
		if row.Label == MethodLabel(repro.Glauber) {
			continue
		}
		w, _ := tab.Value(i, "wins")
		if row.Label == "AGT-RAM" {
			agtWins = w
		}
		if w > maxWins {
			maxWins = w
		}
	}
	if agtWins < maxWins {
		t.Fatalf("AGT-RAM won %v of 4, best method won %v", agtWins, maxWins)
	}
}

func TestOptimalityGap(t *testing.T) {
	cfg := tiny()
	tab, err := OptimalityGap(context.Background(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(repro.Methods()) {
		t.Fatalf("got %d rows, want %d", len(tab.Rows), len(repro.Methods()))
	}
	for i, row := range tab.Rows {
		mean, _ := tab.Value(i, "mean gap %")
		if mean < 0 {
			t.Fatalf("%s: negative gap %.3f — heuristic beat the proven optimum", row.Label, mean)
		}
		maxg, _ := tab.Value(i, "max gap %")
		if maxg < mean {
			t.Fatalf("%s: max %.3f below mean %.3f", row.Label, maxg, mean)
		}
	}
}
