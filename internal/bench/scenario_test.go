package bench

import (
	"context"
	"testing"

	"repro"
	"repro/internal/sim"
)

func TestScenariosMatrixShape(t *testing.T) {
	cfg := tiny()
	// Two methods keep the 5x|methods| controller matrix quick; the full
	// method sweep runs in the scenarios make target and paperbench.
	cfg.Methods = []repro.Method{repro.Greedy, repro.Glauber}
	tab, err := Scenarios(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(sim.ScenarioNames()) + 1 // + the steady anchor row
	if len(tab.Rows) != wantRows || len(tab.Columns) != len(cfg.Methods) {
		t.Fatalf("shape %dx%d, want %dx%d", len(tab.Rows), len(tab.Columns), wantRows, len(cfg.Methods))
	}
	if tab.Rows[wantRows-1].Label != "steady" {
		t.Fatalf("last row %q, want the steady anchor", tab.Rows[wantRows-1].Label)
	}
	for i, row := range tab.Rows {
		for _, col := range tab.Columns {
			v, ok := tab.Value(i, col)
			if !ok || v <= 0 {
				t.Fatalf("%s/%s: savings %.2f", row.Label, col, v)
			}
		}
	}
}
