package bench

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/adaptive"
	"repro/internal/exhaustive"
	"repro/internal/hierarchy"
	"repro/internal/replication"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// UpdateRatio reproduces the experiment the paper reports but does not
// plot ("further experiments with various update ratios (5%, 10%, and 20%)
// showed similar plot trends"): the Figure 3 capacity sweep for AGT-RAM
// under three update ratios U% (i.e. R/W = 1 - U/100).
func UpdateRatio(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := scaled(paperM, cfg.Scale, 24)
	n := scaled(paperN, cfg.Scale, 120)
	ratios := []float64{5, 10, 20}
	t := &Table{
		Title:    fmt.Sprintf("Update-ratio sweep: AGT-RAM OTC savings versus capacity [M=%d, N=%d]", m, n),
		RowLabel: "capacity%",
		Unit:     "OTC savings %",
	}
	for _, u := range ratios {
		t.Columns = append(t.Columns, fmt.Sprintf("U=%.0f%%", u))
	}
	for _, capacity := range []float64{10, 15, 20, 25, 30, 35, 40} {
		row := Row{Label: fmt.Sprintf("%.0f", capacity)}
		for _, u := range ratios {
			inst, err := repro.NewInstance(repro.InstanceConfig{
				Servers:         m,
				Objects:         n,
				Requests:        requestsFor(n),
				RWRatio:         1 - u/100,
				CapacityPercent: capacity,
				Seed:            cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			res, err := inst.SolveContext(ctx, repro.AGTRAM, &repro.Options{Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, res.SavingsPercent)
			cfg.progress("UpdateRatio: C=%.0f%% U=%.0f%% -> %.2f%%", capacity, u, res.SavingsPercent)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Regions measures the Section 7 extension: regional mechanisms at
// different region counts, in both coordination modes, plus a run whose
// central body fails mid-protocol. The headline: hierarchical coordination
// matches the flat mechanism's quality with R (not M) reports reaching the
// top, and the system survives the top's failure with graceful degradation.
func Regions(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := scaled(paperM, cfg.Scale/2, 20)
	n := scaled(paperN, cfg.Scale/2, 100)
	flat, err := repro.NewInstance(repro.InstanceConfig{
		Servers: m, Objects: n, Requests: requestsFor(n),
		RWRatio: 0.90, CapacityPercent: 15, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	flatRes, err := flat.SolveContext(ctx, repro.AGTRAM, &repro.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:    fmt.Sprintf("Regions: hierarchical vs autonomous mechanisms [M=%d, N=%d, C=15%%, R/W=0.90; flat AGT-RAM: %.2f%%]", m, n, flatRes.SavingsPercent),
		RowLabel: "regions",
		Unit:     "savings % / decisions",
		Columns:  []string{"hier savings", "auto savings", "fail savings", "top decisions", "auto epochs"},
	}
	base, err := buildProblem(cfg, m, n, 0.90, 15)
	if err != nil {
		return nil, err
	}
	for _, regions := range []int{1, 2, 4, 8, 16} {
		hier, err := hierarchy.Solve(ctx, base.Snapshot(), hierarchy.Config{Regions: regions})
		if err != nil {
			return nil, err
		}
		auto, err := hierarchy.Solve(ctx, base.Snapshot(), hierarchy.Config{Regions: regions, Mode: hierarchy.Autonomous})
		if err != nil {
			return nil, err
		}
		fail, err := hierarchy.Solve(ctx, base.Snapshot(), hierarchy.Config{Regions: regions, TopFailsAfter: hier.Epochs / 2})
		if err != nil {
			return nil, err
		}
		cfg.progress("Regions: R=%d hier=%.2f%% auto=%.2f%% fail=%.2f%%",
			regions, hier.Schema.Savings(), auto.Schema.Savings(), fail.Schema.Savings())
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%d", regions),
			Values: []float64{
				hier.Schema.Savings(), auto.Schema.Savings(), fail.Schema.Savings(),
				float64(hier.TopDecisions), float64(auto.Epochs),
			},
		})
	}
	return t, nil
}

// Adaptive measures the migration protocol over drifting demand: per-epoch
// savings with migration versus a frozen first placement.
func Adaptive(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := scaled(paperM, cfg.Scale/2, 20)
	n := scaled(paperN, cfg.Scale/2, 100)
	const epochs = 6
	ws, err := adaptive.GenerateEpochs(workload.SyntheticConfig{
		Servers: m, Objects: n, Requests: requestsFor(n), RWRatio: 0.90, Seed: cfg.Seed,
	}, epochs)
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(stats.Mix64(cfg.Seed, 3))
	g, err := topology.Random(m, 0.4, topology.DefaultWeights, r)
	if err != nil {
		return nil, err
	}
	caps, err := replication.GenerateCapacities(ws[0], 15, r)
	if err != nil {
		return nil, err
	}
	cost := topology.AllPairs(g, 0)

	migrating, err := adaptive.Run(ctx, cost, ws, caps, adaptive.Config{})
	if err != nil {
		return nil, err
	}
	frozen, err := adaptive.Run(ctx, cost, ws, caps, adaptive.Config{FreezePlacement: true})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:    fmt.Sprintf("Adaptive: migration under demand drift [M=%d, N=%d, C=15%%, R/W=0.90]", m, n),
		RowLabel: "epoch",
		Unit:     "savings % / replica moves",
		Columns:  []string{"migrating savings", "frozen savings", "dropped", "added"},
	}
	for e := 0; e < epochs; e++ {
		a, f := migrating.Epochs[e], frozen.Epochs[e]
		cfg.progress("Adaptive: epoch %d migrating=%.2f%% frozen=%.2f%%", e, a.Savings, f.Savings)
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("%d", e),
			Values: []float64{a.Savings, f.Savings, float64(a.Dropped), float64(a.Added)},
		})
	}
	t.Rows = append(t.Rows, Row{
		Label:  "mean",
		Values: []float64{migrating.MeanSavings(), frozen.MeanSavings(), 0, 0},
	})
	return t, nil
}

// buildProblem constructs one replication problem for the extension
// experiments; callers that need independent copies take
// replication.Problem.Snapshot of the result.
func buildProblem(cfg Config, m, n int, rw, capacity float64) (*replication.Problem, error) {
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: m, Objects: n, Requests: requestsFor(n), RWRatio: rw, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(stats.Mix64(cfg.Seed, 11))
	g, err := topology.Random(m, 0.4, topology.DefaultWeights, r)
	if err != nil {
		return nil, err
	}
	caps, err := replication.GenerateCapacities(w, capacity, r)
	if err != nil {
		return nil, err
	}
	return replication.NewProblem(topology.AllPairs(g, 0), w, caps)
}

// OptimalityGap measures, on tiny instances solvable to proven optimality,
// how far each heuristic lands from the true optimum — the calibration
// view the paper's NP-completeness discussion implies but cannot measure
// at its scale. Values are mean percentage cost above optimal over the
// sampled instances (0 = always optimal).
func OptimalityGap(ctx context.Context, cfg Config, instances int) (*Table, error) {
	cfg = cfg.withDefaults()
	if instances <= 0 {
		instances = 12
	}
	gaps := make(map[repro.Method][]float64, len(cfg.Methods))
	optimal := make(map[repro.Method]int, len(cfg.Methods))
	for run := 0; run < instances; run++ {
		seed := stats.Mix64(cfg.Seed, int64(run+1000))
		prob, err := tinyProblem(seed)
		if err != nil {
			return nil, err
		}
		opt, err := exhaustive.Solve(ctx, prob, 0)
		if err != nil {
			return nil, err
		}
		optCost := opt.Schema.TotalCost()
		for _, meth := range cfg.Methods {
			prob2, err := tinyProblem(seed)
			if err != nil {
				return nil, err
			}
			cost, err := solveDirect(ctx, meth, prob2, seed, cfg.GRAGenerations)
			if err != nil {
				return nil, err
			}
			gap := 0.0
			if optCost > 0 {
				gap = 100 * float64(cost-optCost) / float64(optCost)
			}
			gaps[meth] = append(gaps[meth], gap)
			if cost == optCost {
				optimal[meth]++
			}
		}
		cfg.progress("OptimalityGap: instance %d/%d done", run+1, instances)
	}
	t := &Table{
		Title:    fmt.Sprintf("Optimality gap on %d tiny instances (proven optimum via branch and bound)", instances),
		RowLabel: "method",
		Unit:     "% cost above optimal",
		Columns:  []string{"mean gap %", "max gap %", "optimal count"},
	}
	for _, meth := range cfg.Methods {
		sum := stats.Summarize(gaps[meth])
		t.Rows = append(t.Rows, Row{
			Label:  MethodLabel(meth),
			Values: []float64{sum.Mean, sum.Max, float64(optimal[meth])},
		})
	}
	return t, nil
}

// tinyProblem builds a 4x6 instance small enough for exhaustive search.
func tinyProblem(seed int64) (*replication.Problem, error) {
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: 4, Objects: 6, Requests: 800, RWRatio: 0.85,
		DemandFraction: 0.6, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(seed + 1)
	g, err := topology.Random(4, 0.5, topology.DefaultWeights, r)
	if err != nil {
		return nil, err
	}
	caps, err := replication.GenerateCapacities(w, 20, r)
	if err != nil {
		return nil, err
	}
	return replication.NewProblem(topology.AllPairs(g, 1), w, caps)
}

// solveDirect runs a method against a prebuilt problem (the facade only
// builds its own instances) and returns the final OTC. Every method goes
// through the same solver registry the facade uses, so there is no second
// method switch to drift out of sync.
func solveDirect(ctx context.Context, meth repro.Method, prob *replication.Problem, seed int64, gens int) (int64, error) {
	s, ok := solver.Lookup(string(meth))
	if !ok {
		return 0, fmt.Errorf("bench: unknown method %q", meth)
	}
	out, err := s.Solve(ctx, prob, solver.Options{Seed: seed, GRAGenerations: gens})
	if err != nil {
		return 0, err
	}
	return out.Schema.TotalCost(), nil
}
