package bench

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/stats"
)

// MultiSeed runs the paper's headline comparison across many independent
// instances (one per seed) and reports mean and standard deviation of the
// OTC savings per method — the statistical-robustness view single-seed
// tables cannot give. Rows: one per method; columns: mean, std, min, max,
// and wins (count of seeds where the method achieved the best savings,
// ties counted for every winner).
func MultiSeed(ctx context.Context, cfg Config, runs int) (*Table, error) {
	cfg = cfg.withDefaults()
	if runs <= 0 {
		runs = 10
	}
	m := scaled(paperM, cfg.Scale/2, 20)
	n := scaled(paperN, cfg.Scale/2, 100)

	samples := make(map[repro.Method][]float64, len(cfg.Methods))
	wins := make(map[repro.Method]int, len(cfg.Methods))
	for run := 0; run < runs; run++ {
		seed := stats.Mix64(cfg.Seed, int64(run+1))
		icfg := repro.InstanceConfig{
			Servers:         m,
			Objects:         n,
			Requests:        requestsFor(n),
			RWRatio:         0.90,
			CapacityPercent: 15,
			Seed:            seed,
		}
		results, err := runAll(ctx, cfg, icfg)
		if err != nil {
			return nil, err
		}
		best := -1.0
		for _, meth := range cfg.Methods {
			s := results[meth].SavingsPercent
			samples[meth] = append(samples[meth], s)
			if s > best {
				best = s
			}
		}
		for _, meth := range cfg.Methods {
			if results[meth].SavingsPercent >= best-1e-9 {
				wins[meth]++
			}
		}
		cfg.progress("MultiSeed: run %d/%d done", run+1, runs)
	}

	t := &Table{
		Title: fmt.Sprintf("Multi-seed robustness: OTC savings over %d instances [M=%d, N=%d, C=15%%, R/W=0.90]",
			runs, m, n),
		RowLabel: "method",
		Unit:     "OTC savings %",
		Columns:  []string{"mean", "std", "min", "max", "wins"},
	}
	for _, meth := range cfg.Methods {
		sum := stats.Summarize(samples[meth])
		t.Rows = append(t.Rows, Row{
			Label:  MethodLabel(meth),
			Values: []float64{sum.Mean, sum.Std, sum.Min, sum.Max, float64(wins[meth])},
		})
	}
	return t, nil
}
