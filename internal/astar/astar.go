// Package astar implements the Aε-Star baseline of the paper's comparison
// (Khan and Ahmad [16]): an ε-admissible best-first branch-and-bound over
// sequences of replica placements.
//
// A search node is a partial placement (a schema). Its score is
//
//	f(n) = g(n) + (1+ε)·h(n)
//
// where g is the node's exact OTC and h is an optimistic (admissible)
// estimate of the remaining improvement: the sum of all currently positive
// candidate benefits, each counted once (benefits only shrink, so no future
// sequence can beat it). The ε relaxation trades optimality for node count,
// as in the original Aε algorithm. Search is bounded by a node budget;
// every expanded node is also completed greedily so the incumbent solution
// improves monotonically and the method degrades gracefully into greedy
// when the budget is tight — matching the paper's observation that Aε-Star
// is competitive in quality but much slower.
package astar

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"repro/internal/candidates"
	"repro/internal/replication"
)

// Config tunes the search.
type Config struct {
	// Epsilon is the admissibility relaxation (>= 0). Default 0.2.
	Epsilon float64
	// Branch bounds the children expanded per node. Default 3.
	Branch int
	// NodeBudget bounds the number of node expansions. Default 24 — enough
	// to explore alternatives near the root while keeping the method in the
	// running-time band the paper reports (slower than the auctions,
	// faster than GRA).
	NodeBudget int
	// OnExpand, when non-nil, observes each node expansion: the running
	// expansion count and the incumbent's OTC after the expansion.
	OnExpand func(expanded int, incumbent int64)
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.2
	}
	if c.Branch <= 0 {
		c.Branch = 3
	}
	if c.NodeBudget <= 0 {
		c.NodeBudget = 24
	}
	return c
}

// Result is the outcome of a run.
type Result struct {
	Schema *replication.Schema
	Placed int
	// Expanded counts node expansions, the dominant cost term.
	Expanded int
}

type node struct {
	schema *replication.Schema
	pairs  []candidates.Pair // candidates still plausible for this node
	f      float64
	seq    int // insertion order, for deterministic ties
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].f != h[j].f {
		return h[i].f < h[j].f
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs the bounded Aε-Star search. ctx is checked before every node
// expansion; on cancellation Solve returns ctx.Err() wrapped with the
// package name.
func Solve(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("astar: nil problem")
	}
	if cfg.Epsilon < 0 {
		return nil, fmt.Errorf("astar: negative epsilon %v", cfg.Epsilon)
	}
	cfg = cfg.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("astar: %w", err)
	}

	root := &node{schema: p.NewSchema(), pairs: candidates.Build(p, true)}
	root.f = score(root, cfg.Epsilon)

	best := completeGreedily(root.schema.Clone(), root.pairs)
	res := &Result{Schema: best}

	open := nodeHeap{root}
	heap.Init(&open)
	seq := 1

	for open.Len() > 0 && res.Expanded < cfg.NodeBudget {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("astar: %w", err)
		}
		n := heap.Pop(&open).(*node)
		res.Expanded++
		if cfg.OnExpand != nil {
			cfg.OnExpand(res.Expanded, res.Schema.TotalCost())
		}

		// Rank this node's live candidates by current benefit.
		type scored struct {
			pair    candidates.Pair
			benefit int64
		}
		var live []scored
		keep := n.pairs[:0]
		for _, pr := range n.pairs {
			if n.schema.HasReplica(pr.Object, pr.Server) || n.schema.Residual(pr.Server) < pr.Size {
				continue
			}
			b := n.schema.LocalBenefit(pr.Server, pr.Object)
			if b <= 0 {
				continue
			}
			keep = append(keep, pr)
			live = append(live, scored{pair: pr, benefit: b})
		}
		n.pairs = keep
		if len(live) == 0 {
			if n.schema.TotalCost() < res.Schema.TotalCost() {
				res.Schema = n.schema
			}
			continue
		}
		sort.Slice(live, func(a, b int) bool {
			if live[a].benefit != live[b].benefit {
				return live[a].benefit > live[b].benefit
			}
			if live[a].pair.Server != live[b].pair.Server {
				return live[a].pair.Server < live[b].pair.Server
			}
			return live[a].pair.Object < live[b].pair.Object
		})

		branch := cfg.Branch
		if branch > len(live) {
			branch = len(live)
		}
		for c := 0; c < branch; c++ {
			child := &node{schema: n.schema.Clone(), pairs: append([]candidates.Pair(nil), n.pairs...), seq: seq}
			seq++
			pr := live[c].pair
			if _, err := child.schema.PlaceReplica(pr.Object, pr.Server); err != nil {
				return nil, fmt.Errorf("astar: expanding (%d on %d): %w", pr.Object, pr.Server, err)
			}
			child.f = score(child, cfg.Epsilon)
			heap.Push(&open, child)

			// Keep the incumbent fresh: complete the most promising child
			// greedily (rolling out every child would triple the work for
			// marginal incumbent gains).
			if c == 0 {
				done := completeGreedily(child.schema.Clone(), child.pairs)
				if done.TotalCost() < res.Schema.TotalCost() {
					res.Schema = done
				}
			}
		}
	}
	res.Placed = res.Schema.Placed()
	return res, nil
}

// score computes f = g + (1+ε)h with h = -Σ positive benefits (optimistic:
// every beneficial candidate realized at its current value).
func score(n *node, eps float64) float64 {
	var h int64
	for _, pr := range n.pairs {
		if n.schema.HasReplica(pr.Object, pr.Server) || n.schema.Residual(pr.Server) < pr.Size {
			continue
		}
		if b := n.schema.LocalBenefit(pr.Server, pr.Object); b > 0 {
			h += b
		}
	}
	return float64(n.schema.TotalCost()) - (1+eps)*float64(h)
}

// completeGreedily rolls a partial placement out to a full solution with
// best-benefit-first placements, using a lazy max-heap (exact, because
// benefits only shrink as replicas appear).
func completeGreedily(s *replication.Schema, pairs []candidates.Pair) *replication.Schema {
	h := make(rolloutHeap, 0, len(pairs))
	for _, pr := range pairs {
		if s.HasReplica(pr.Object, pr.Server) || s.Residual(pr.Server) < pr.Size {
			continue
		}
		if b := s.LocalBenefit(pr.Server, pr.Object); b > 0 {
			h = append(h, rolloutItem{pair: pr, benefit: b})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		top := h[0]
		pr := top.pair
		if s.HasReplica(pr.Object, pr.Server) || s.Residual(pr.Server) < pr.Size {
			heap.Pop(&h)
			continue
		}
		b := s.LocalBenefit(pr.Server, pr.Object)
		if b <= 0 {
			heap.Pop(&h)
			continue
		}
		if b < top.benefit {
			h[0].benefit = b
			heap.Fix(&h, 0)
			continue
		}
		if _, err := s.PlaceReplica(pr.Object, pr.Server); err != nil {
			return s
		}
		heap.Pop(&h)
	}
	return s
}

type rolloutItem struct {
	pair    candidates.Pair
	benefit int64
}

type rolloutHeap []rolloutItem

func (h rolloutHeap) Len() int { return len(h) }
func (h rolloutHeap) Less(i, j int) bool {
	if h[i].benefit != h[j].benefit {
		return h[i].benefit > h[j].benefit
	}
	if h[i].pair.Server != h[j].pair.Server {
		return h[i].pair.Server < h[j].pair.Server
	}
	return h[i].pair.Object < h[j].pair.Object
}
func (h rolloutHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *rolloutHeap) Push(x interface{}) { *h = append(*h, x.(rolloutItem)) }
func (h *rolloutHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
