package astar

import (
	"context"
	"errors"
	"testing"

	"repro/internal/testutil"
)

func TestSolveCancelled(t *testing.T) {
	testutil.LeakCheck(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, testutil.MustBuild(testutil.Small(43)), Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveCancelMidSearch(t *testing.T) {
	testutil.LeakCheck(t)
	// Survive the entry check and a few expansions, then die.
	ctx := testutil.CancelAfterPolls(5)
	_, err := Solve(ctx, testutil.MustBuild(testutil.Small(44)), Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
