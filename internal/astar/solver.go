package astar

import (
	"context"
	"fmt"

	"repro/internal/replication"
	"repro/internal/solver"
)

// astarSolver adapts Aε-Star to the solver registry.
type astarSolver struct{}

func init() { solver.Register(astarSolver{}) }

func (astarSolver) Name() string  { return "ae-star" }
func (astarSolver) Label() string { return "Ae-Star" }
func (astarSolver) Description() string {
	return "ε-admissible branch and bound of [16] with greedy rollouts and a node budget"
}

func (astarSolver) Solve(ctx context.Context, p *replication.Problem, opts solver.Options) (*solver.Outcome, error) {
	if opts.Engine != "" {
		return nil, fmt.Errorf("astar: unknown engine %q (ae-star has a single engine)", opts.Engine)
	}
	cfg := Config{}
	out := &solver.Outcome{}
	if opts.OnEvent != nil || opts.RecordEvents {
		// Aε-Star improves an incumbent placement rather than committing
		// replicas one by one, so its event stream is per expansion: Round
		// is the expansion count, Value the incumbent OTC, Object/Server -1.
		cfg.OnExpand = func(expanded int, incumbent int64) {
			out.Emit(opts, solver.Event{Round: expanded, Object: -1, Server: -1, Value: incumbent})
		}
	}
	res, err := Solve(ctx, p, cfg)
	if err != nil {
		return nil, err
	}
	out.Schema = res.Schema
	out.Replicas = res.Placed
	out.Work = int64(res.Expanded)
	return out, nil
}
