package astar

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/greedy"
	"repro/internal/testutil"
)

func TestSolveImproves(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(1))
	res, err := Solve(context.Background(), p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Savings() <= 0 {
		t.Fatalf("savings = %v", res.Schema.Savings())
	}
	if res.Expanded <= 0 {
		t.Fatal("no expansions counted")
	}
	if res.Placed != res.Schema.Placed() {
		t.Fatalf("placed mismatch: %d vs %d", res.Placed, res.Schema.Placed())
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(context.Background(), nil, Config{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := testutil.MustBuild(testutil.Small(2))
	if _, err := Solve(context.Background(), p, Config{Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

func TestNodeBudgetRespected(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(3))
	res, err := Solve(context.Background(), p, Config{NodeBudget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expanded > 5 {
		t.Fatalf("expanded %d nodes, budget 5", res.Expanded)
	}
	// Even with a tiny budget, the greedy rollouts give a full solution.
	if res.Schema.Savings() <= 0 {
		t.Fatalf("savings = %v", res.Schema.Savings())
	}
}

// With the incumbent kept by greedy rollouts, Aε-Star can never be worse
// than plain best-benefit greedy.
func TestNeverWorseThanGreedyRollout(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := testutil.InstanceConfig{
			Servers: 10, Objects: 40, Requests: 4000, RWRatio: 0.85,
			CapacityPercent: 25, EdgeP: 0.4, Seed: seed,
		}
		a, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{NodeBudget: 60})
		if err != nil {
			t.Fatal(err)
		}
		g, err := greedy.Solve(context.Background(), testutil.MustBuild(cfg), greedy.Config{ByDensity: false})
		if err != nil {
			t.Fatal(err)
		}
		if a.Schema.TotalCost() > g.Schema.TotalCost() {
			t.Fatalf("seed %d: astar %d worse than raw-benefit greedy %d",
				seed, a.Schema.TotalCost(), g.Schema.TotalCost())
		}
	}
}

func TestDeterministic(t *testing.T) {
	cfg := testutil.Small(7)
	a, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{NodeBudget: 40})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{NodeBudget: 40})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema.TotalCost() != b.Schema.TotalCost() || a.Expanded != b.Expanded {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d",
			a.Schema.TotalCost(), a.Expanded, b.Schema.TotalCost(), b.Expanded)
	}
}

// Property: the search result is always a feasible improvement.
func TestSolveValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := testutil.InstanceConfig{
			Servers: 8, Objects: 20, Requests: 2000, RWRatio: 0.8,
			CapacityPercent: 30, EdgeP: 0.4, Seed: seed,
		}
		p, err := testutil.Build(cfg)
		if err != nil {
			return false
		}
		res, err := Solve(context.Background(), p, Config{NodeBudget: 30})
		if err != nil {
			return false
		}
		if res.Schema.TotalCost() > res.Schema.BaseCost() {
			return false
		}
		return res.Schema.ValidateInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
