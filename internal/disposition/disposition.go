// Package disposition makes Section 4's Axiom 2 case analysis concrete.
// The paper distinguishes three information structures for the DRP:
//
//	DRP[π]   — the cost of replication CoR is private, capacity public;
//	DRP[σ]   — the capacity is private, CoR public;
//	DRP[π,σ] — both are private;
//
// and argues DRP[π] is "the only natural choice": knowing other agents'
// capacities gives no advantage, while a private capacity is not worth
// lying about. This package implements the DRP[σ] game — agents report a
// claimed capacity alongside their bids — and measures empirically what a
// capacity misreport buys: over-claiming wins allocations that fail
// feasibility and gets the agent ejected; under-claiming only forfeits the
// agent's own opportunities. Either way, truthful capacity reporting
// dominates, which is why the mechanism can safely treat capacity as
// public knowledge.
package disposition

import (
	"fmt"

	"repro/internal/candidates"
	"repro/internal/mechanism"
	"repro/internal/replication"
)

// Variant identifies one of Axiom 2's information structures.
type Variant int

// The three cases of the paper's Section 4.
const (
	PrivateValuation Variant = iota // DRP[π]
	PrivateCapacity                 // DRP[σ]
	PrivateBoth                     // DRP[π,σ]
)

// String names the variant in the paper's notation.
func (v Variant) String() string {
	switch v {
	case PrivateValuation:
		return "DRP[π]"
	case PrivateCapacity:
		return "DRP[σ]"
	case PrivateBoth:
		return "DRP[π,σ]"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Description returns the paper's characterization.
func (v Variant) Description() string {
	switch v {
	case PrivateValuation:
		return "each agent holds the cost to replicate CoR privately; capacity and everything else is public — the paper's natural choice"
	case PrivateCapacity:
		return "each agent holds its available capacity privately; CoR and everything else is public"
	case PrivateBoth:
		return "each agent holds both the cost of replication and the capacity privately"
	default:
		return ""
	}
}

// Outcome summarizes one agent's run through the DRP[σ] game.
type Outcome struct {
	// Wins counts allocations the agent received and kept.
	Wins int
	// Utility accumulates the paper's u = p + v over kept wins: the
	// mechanism's payment plus the agent's true valuation at award time.
	Utility int64
	// Ejected reports whether an over-claimed win failed feasibility and
	// the agent was removed from the game.
	Ejected bool
	// SystemSavings is the final OTC savings of the whole system.
	SystemSavings float64
}

// CapacityMisreport plays the DRP[σ] game twice — once with the chosen
// agent reporting its capacity truthfully, once claiming factor times the
// truth — and returns both outcomes. factor > 1 over-claims (risking
// ejection on the first infeasible award), factor < 1 under-claims
// (forfeiting opportunities), factor == 1 reproduces the truthful game.
func CapacityMisreport(build func() (*replication.Problem, error), agentID int, factor float64) (truthful, misreport Outcome, err error) {
	if factor <= 0 {
		return truthful, misreport, fmt.Errorf("disposition: factor must be positive, got %v", factor)
	}
	pT, err := build()
	if err != nil {
		return truthful, misreport, err
	}
	if agentID < 0 || agentID >= pT.M {
		return truthful, misreport, fmt.Errorf("disposition: agent %d out of range [0,%d)", agentID, pT.M)
	}
	truthful, err = playSigma(pT, agentID, 1.0)
	if err != nil {
		return truthful, misreport, err
	}
	pM, err := build()
	if err != nil {
		return truthful, misreport, err
	}
	misreport, err = playSigma(pM, agentID, factor)
	return truthful, misreport, err
}

// playSigma runs the sealed-bid game with the chosen agent's *claimed*
// capacity scaled by factor. All other agents are truthful.
func playSigma(p *replication.Problem, agentID int, factor float64) (Outcome, error) {
	var out Outcome
	schema := p.NewSchema()
	agents := candidates.BuildAgents(p)

	// Scale the liar's claimed residual. Its candidate pruning then uses
	// the claim; the schema keeps the truth.
	for _, a := range agents {
		if a.ID == agentID {
			a.Residual = int64(float64(a.Residual) * factor)
		}
	}

	ejected := false
	for {
		bids := make([]mechanism.Bid, 0, len(agents))
		live := agents[:0]
		for _, a := range agents {
			if ejected && a.ID == agentID {
				continue
			}
			obj, val, ok := a.Best()
			if !ok {
				continue
			}
			live = append(live, a)
			bids = append(bids, mechanism.Bid{Agent: a.ID, Item: obj, Value: val})
		}
		agents = live
		round, ok := mechanism.RunRound(bids, mechanism.SecondPrice)
		if !ok {
			break
		}
		win := round.Winner
		if err := schema.CanPlace(win.Item, win.Agent); err != nil {
			// The claimed capacity was a lie: the award is infeasible. The
			// mechanism ejects the agent; the round is void.
			if win.Agent != agentID {
				return out, fmt.Errorf("disposition: truthful agent %d produced an infeasible bid: %v", win.Agent, err)
			}
			ejected = true
			out.Ejected = true
			continue
		}
		if _, err := schema.PlaceReplica(win.Item, win.Agent); err != nil {
			return out, err
		}
		if win.Agent == agentID {
			out.Wins++
			out.Utility += round.Payment + win.Value
		}
		for _, a := range agents {
			if a.ID == win.Agent {
				a.Won(win.Item)
			} else {
				a.Observe(win.Item, p.Cost.At(a.ID, win.Agent))
			}
		}
	}
	out.SystemSavings = schema.Savings()
	return out, nil
}
