package disposition

import (
	"strings"
	"testing"

	"repro/internal/replication"
	"repro/internal/testutil"
)

func TestVariantStrings(t *testing.T) {
	for _, v := range []Variant{PrivateValuation, PrivateCapacity, PrivateBoth} {
		if v.String() == "" || v.Description() == "" {
			t.Fatalf("variant %d lacks name or description", int(v))
		}
	}
	if PrivateValuation.String() != "DRP[π]" {
		t.Fatalf("got %q", PrivateValuation.String())
	}
	if !strings.Contains(Variant(9).String(), "9") {
		t.Fatal("unknown variant string")
	}
	if Variant(9).Description() != "" {
		t.Fatal("unknown variant should have empty description")
	}
}

// busyAgent finds a server that wins something in the truthful game, so
// misreporting experiments have a subject with skin in the game.
func busyAgent(t *testing.T, build func() (*replication.Problem, error)) int {
	t.Helper()
	for id := 0; id < 16; id++ {
		truth, _, err := CapacityMisreport(build, id, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if truth.Wins > 2 {
			return id
		}
	}
	t.Skip("no busy agent on this instance")
	return -1
}

func buildFor(seed int64) func() (*replication.Problem, error) {
	return func() (*replication.Problem, error) {
		cfg := testutil.Small(seed)
		cfg.CapacityPercent = 10 // binding, so capacity lies have teeth
		return testutil.Build(cfg)
	}
}

func TestFactorOneIsIdentity(t *testing.T) {
	build := buildFor(1)
	truth, mis, err := CapacityMisreport(build, 0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if truth != mis {
		t.Fatalf("factor 1.0 changed the outcome: %+v vs %+v", truth, mis)
	}
	if truth.Ejected {
		t.Fatal("truthful agent ejected")
	}
}

// Over-claiming capacity gets the agent ejected on its first infeasible
// award and never improves utility — the reason the mechanism can treat
// capacity as public (Axiom 2's remark).
func TestOverClaimNeverHelps(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		build := buildFor(seed)
		agent := busyAgent(t, build)
		truth, mis, err := CapacityMisreport(build, agent, 4.0)
		if err != nil {
			t.Fatal(err)
		}
		if mis.Utility > truth.Utility {
			t.Fatalf("seed %d: over-claiming raised utility %d -> %d",
				seed, truth.Utility, mis.Utility)
		}
	}
}

func TestOverClaimEjectsUnderPressure(t *testing.T) {
	ejectedSomewhere := false
	for seed := int64(1); seed <= 6; seed++ {
		build := buildFor(seed)
		agent := busyAgent(t, build)
		_, mis, err := CapacityMisreport(build, agent, 8.0)
		if err != nil {
			t.Fatal(err)
		}
		if mis.Ejected {
			ejectedSomewhere = true
			break
		}
	}
	if !ejectedSomewhere {
		t.Fatal("an 8x capacity over-claim never triggered an ejection under binding capacity")
	}
}

// Under-claiming only forfeits the agent's own opportunities.
func TestUnderClaimNeverHelps(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		build := buildFor(seed)
		agent := busyAgent(t, build)
		truth, mis, err := CapacityMisreport(build, agent, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if mis.Ejected {
			t.Fatalf("seed %d: under-claiming cannot be infeasible", seed)
		}
		if mis.Utility > truth.Utility {
			t.Fatalf("seed %d: under-claiming raised utility %d -> %d",
				seed, truth.Utility, mis.Utility)
		}
		if mis.Wins > truth.Wins {
			t.Fatalf("seed %d: under-claiming won more allocations", seed)
		}
	}
}

func TestCapacityMisreportErrors(t *testing.T) {
	build := buildFor(1)
	if _, _, err := CapacityMisreport(build, 0, 0); err == nil {
		t.Fatal("zero factor accepted")
	}
	if _, _, err := CapacityMisreport(build, -1, 1.5); err == nil {
		t.Fatal("negative agent accepted")
	}
	if _, _, err := CapacityMisreport(build, 9999, 1.5); err == nil {
		t.Fatal("out-of-range agent accepted")
	}
}
