package candidates

import (
	"testing"

	"repro/internal/replication"
	"repro/internal/testutil"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestBuildFiltersAndSorts(t *testing.T) {
	w := workload.New(3, 3)
	w.ObjectSize[0], w.ObjectSize[1], w.ObjectSize[2] = 1, 1, 1
	w.Primary[0], w.Primary[1], w.Primary[2] = 0, 1, 2
	// server0: reads obj2 (candidate), writes obj1 only (no candidate).
	w.PerServer[0] = []workload.Demand{{Object: 1, Writes: 5}, {Object: 2, Reads: 3}}
	// server1: reads its own primary obj1 (no candidate), reads obj0 (candidate).
	w.PerServer[1] = []workload.Demand{{Object: 0, Reads: 2}, {Object: 1, Reads: 9}}
	w.Finalize()
	p, err := replication.NewProblem(topology.AllPairs(topology.Line(3), 1), w, []int64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	got := Build(p, true)
	if len(got) != 2 {
		t.Fatalf("got %d candidates: %+v", len(got), got)
	}
	if got[0].Server != 0 || got[0].Object != 2 || got[1].Server != 1 || got[1].Object != 0 {
		t.Fatalf("unexpected candidates: %+v", got)
	}
}

func TestBuildOnlyBeneficial(t *testing.T) {
	// A read-light, write-heavy object should be excluded when
	// onlyBeneficial is set but included otherwise.
	w := workload.New(2, 1)
	w.ObjectSize[0] = 1
	w.Primary[0] = 0
	w.PerServer[0] = []workload.Demand{{Object: 0, Writes: 100}}
	w.PerServer[1] = []workload.Demand{{Object: 0, Reads: 1}}
	w.Finalize()
	p, err := replication.NewProblem(topology.AllPairs(topology.Line(2), 1), w, []int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := Build(p, true); len(got) != 0 {
		t.Fatalf("write-heavy candidate not filtered: %+v", got)
	}
	if got := Build(p, false); len(got) != 1 {
		t.Fatalf("unfiltered build wrong: %+v", got)
	}
}

func TestBuildOnRandomInstance(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(1))
	pairs := Build(p, true)
	if len(pairs) == 0 {
		t.Fatal("no candidates on a read-heavy instance")
	}
	s := p.NewSchema()
	for _, pr := range pairs {
		if int(p.Work.Primary[pr.Object]) == pr.Server {
			t.Fatalf("primary pair leaked: %+v", pr)
		}
		if s.LocalBenefit(pr.Server, pr.Object) <= 0 {
			t.Fatalf("non-beneficial pair leaked: %+v", pr)
		}
		if pr.Size != p.Work.ObjectSize[pr.Object] {
			t.Fatalf("size mismatch: %+v", pr)
		}
	}
}
