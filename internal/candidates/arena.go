package candidates

import (
	"repro/internal/pool"
	"repro/internal/replication"
)

// Arena is the struct-of-arrays form of every agent's candidate list,
// allocated once per solve. Candidate c of server i lives at one index of
// the parallel slices; server i's candidates occupy the contiguous segment
// [Start[i], Start[i+1]), sorted by object id. The flat layout is what the
// incremental engine's round kernel iterates: no per-candidate boxing, no
// map lookups, and the per-agent segment doubles as the backing store of
// the agent's lazy heap.
type Arena struct {
	M int // servers

	// Candidate attributes, indexed by arena slot.
	Objs     []int32
	Sizes    []int64
	Reads    []int64
	NNCosts  []int32 // agent-local c(i, NN_ik); only ever decreases
	UpdCosts []int64 // constant update-traffic term of CoR

	// Start[i] is the first slot of server i's segment; len M+1.
	Start []int32
	// Residual is each server's free capacity at build time.
	Residual []int64

	// Slot2Cand maps demand cells to arena slots so a broadcast for object
	// k reaches a demander's candidate in O(1): the cell
	// Work.PerServer[i][slot] maps to Slot2Cand[SlotBase[i]+slot], which is
	// the candidate's arena slot or -1 when the cell never qualified.
	SlotBase  []int32 // len M+1
	Slot2Cand []int32
}

// Benefit is the candidate's CoR valuation (Eq. 5's essence) at its current
// cached nearest-neighbor cost.
func (a *Arena) Benefit(c int32) int64 {
	return a.Reads[c]*a.Sizes[c]*int64(a.NNCosts[c]) - a.UpdCosts[c]
}

// Len reports the size of server i's segment.
func (a *Arena) Len(i int) int { return int(a.Start[i+1] - a.Start[i]) }

// Cands reports the total candidate count.
func (a *Arena) Cands() int { return len(a.Objs) }

// BuildArena builds the arena against the initial (primary-only) placement:
// every candidate a server reads, does not primarily hold, and that is
// beneficial and capacity-feasible — the same filter as the AGT-RAM agents'
// candidate lists. Construction fans out over pl; servers are independent.
func BuildArena(p *replication.Problem, pl *pool.Pool) *Arena {
	return buildArena(p, nil, pl)
}

// BuildArenaFrom builds the arena priced against an existing placement:
// nearest-neighbor costs and residual capacities come from the schema, and
// objects a server already holds (primary or replica) are excluded. The
// schema is only read.
func BuildArenaFrom(s *replication.Schema, pl *pool.Pool) *Arena {
	return buildArena(s.Problem(), s, pl)
}

// buildArena runs the two-pass construction: a parallel pricing pass that
// values every demand cell once (marking qualifiers in Slot2Cand and
// parking the priced terms in slot-indexed scratch), serial prefix sums
// fixing every segment, then a parallel compaction of the qualifiers into
// their disjoint segments. BatchGuided spreads the skew of uneven
// per-server demand lists.
func buildArena(p *replication.Problem, s *replication.Schema, pl *pool.Pool) *Arena {
	w := p.Work
	a := &Arena{
		M:        p.M,
		Start:    make([]int32, p.M+1),
		Residual: make([]int64, p.M),
		SlotBase: p.CellBase(), // shared, read-only
	}

	slots := int32(p.Cells())
	a.Slot2Cand = make([]int32, slots)

	// Pricing scratch, indexed by demand cell; compaction moves the values
	// of qualifying cells into the arena without re-pricing.
	nnScratch := make([]int32, slots)
	updScratch := make([]int64, slots)

	counts := make([]int32, p.M)
	pl.BatchGuided(p.M, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var residual int64
			if s != nil {
				residual = s.Residual(i)
			} else {
				residual = p.Capacity[i] - p.PrimaryLoad(i)
			}
			a.Residual[i] = residual
			// c(i, ·) doubles as c(·, i) on symmetric row-view oracles,
			// pricing the whole demand list without virtual At calls. The
			// row may be materialized lazily by the oracle on this call
			// (distoracle.CSRLazy runs a Dijkstra per first touch, safe
			// under this parallel fan-out); approximate oracles return nil
			// here and the At fallback below prices per cell.
			row := p.CostColumn(i)
			base := a.SlotBase[i]
			var n int32
			for slot, d := range w.PerServer[i] {
				cell := base + int32(slot)
				a.Slot2Cand[cell] = -1
				if d.Reads == 0 {
					continue // a write-only object never benefits from a copy
				}
				k := d.Object
				if s != nil {
					if s.HasReplica(k, i) {
						continue // a copy (primary or carried) is already local
					}
				} else if int(w.Primary[k]) == i {
					continue // the primary copy is already local
				}
				size := w.ObjectSize[k]
				if size > residual {
					continue
				}
				pk := int(w.Primary[k])
				var nn, cPk int32
				if row != nil {
					cPk = row[pk]
					nn = cPk
					if s != nil {
						nn = row[s.NN(i, k)]
					}
				} else {
					cPk = p.Cost.At(pk, i)
					nn = cPk
					if s != nil {
						nn = p.Cost.At(i, int(s.NN(i, k)))
					}
				}
				upd := (w.TotalWrites[k] - d.Writes) * size * int64(cPk)
				if d.Reads*size*int64(nn)-upd <= 0 {
					continue // never beneficial: benefits only shrink
				}
				nnScratch[cell] = nn
				updScratch[cell] = upd
				a.Slot2Cand[cell] = 1 // qualifier; compaction assigns the slot
				n++
			}
			counts[i] = n
		}
	})

	var total int32
	for i := 0; i < p.M; i++ {
		a.Start[i] = total
		total += counts[i]
	}
	a.Start[p.M] = total

	a.Objs = make([]int32, total)
	a.Sizes = make([]int64, total)
	a.Reads = make([]int64, total)
	a.NNCosts = make([]int32, total)
	a.UpdCosts = make([]int64, total)

	pl.BatchGuided(p.M, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := a.Start[i]
			base := a.SlotBase[i]
			for slot, d := range w.PerServer[i] {
				cell := base + int32(slot)
				if a.Slot2Cand[cell] < 0 {
					continue
				}
				k := d.Object
				a.Objs[c] = k
				a.Sizes[c] = w.ObjectSize[k]
				a.Reads[c] = d.Reads
				a.NNCosts[c] = nnScratch[cell]
				a.UpdCosts[c] = updScratch[cell]
				a.Slot2Cand[cell] = c
				c++
			}
		}
	})
	return a
}
