package candidates

import (
	"testing"

	"repro/internal/testutil"
)

func TestBuildAgentsBasics(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(1))
	agents := BuildAgents(p)
	if len(agents) == 0 {
		t.Fatal("no agents built")
	}
	for _, a := range agents {
		if !a.Active() {
			t.Fatalf("agent %d built inactive", a.ID)
		}
		if a.Residual != p.Capacity[a.ID]-p.PrimaryLoad(a.ID) {
			t.Fatalf("agent %d residual wrong", a.ID)
		}
		for j := 1; j < len(a.Cands); j++ {
			if a.Cands[j-1].Object >= a.Cands[j].Object {
				t.Fatalf("agent %d candidates unsorted", a.ID)
			}
		}
		for _, c := range a.Cands {
			if c.Benefit() <= 0 {
				t.Fatalf("agent %d carries non-beneficial candidate %d", a.ID, c.Object)
			}
		}
	}
}

func TestAgentBestObserveWon(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(2))
	agents := BuildAgents(p)
	a := agents[0]
	obj, val, ok := a.Best()
	if !ok || val <= 0 {
		t.Fatalf("Best() = %d,%d,%v", obj, val, ok)
	}
	// Observing a replica at distance 0 kills the candidate's read side.
	a.Observe(obj, 0)
	obj2, val2, ok2 := a.Best()
	if ok2 && obj2 == obj && val2 >= val {
		t.Fatalf("observe did not reduce the valuation: %d -> %d", val, val2)
	}
	// Winning consumes capacity and retires the candidate.
	before := a.Residual
	if obj3, _, ok3 := a.Best(); ok3 {
		a.Won(obj3)
		if a.Residual >= before {
			t.Fatal("Won did not consume capacity")
		}
		for _, c := range a.Cands {
			if c.Object == obj3 {
				t.Fatal("won candidate still in list")
			}
		}
	}
}

func TestBuildAgentsFromMatchesSchemaState(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(3))
	s := p.NewSchema()
	// Place a few replicas, then rebuild agents from the live schema.
	placed := 0
	for k := int32(0); k < int32(p.N) && placed < 5; k++ {
		for m := 0; m < p.M && placed < 5; m++ {
			if s.CanPlace(k, m) == nil {
				if _, err := s.PlaceReplica(k, m); err != nil {
					t.Fatal(err)
				}
				placed++
			}
		}
	}
	agents := BuildAgentsFrom(s)
	for _, a := range agents {
		if a.Residual != s.Residual(a.ID) {
			t.Fatalf("agent %d residual %d != schema %d", a.ID, a.Residual, s.Residual(a.ID))
		}
		for _, c := range a.Cands {
			if s.HasReplica(c.Object, a.ID) {
				t.Fatalf("agent %d offered an object it already holds", a.ID)
			}
			wantNN := p.Cost.At(a.ID, int(s.NN(a.ID, c.Object)))
			if c.NNCost != wantNN {
				t.Fatalf("agent %d object %d NN cost %d != schema %d", a.ID, c.Object, c.NNCost, wantNN)
			}
			if c.Benefit() != s.LocalBenefit(a.ID, c.Object) {
				t.Fatalf("agent %d object %d benefit %d != schema %d",
					a.ID, c.Object, c.Benefit(), s.LocalBenefit(a.ID, c.Object))
			}
		}
	}
}
