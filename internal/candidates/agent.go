package candidates

import (
	"sort"

	"repro/internal/replication"
)

// Cand is one candidate replica with the cached pricing state needed to
// value it in O(1): the agent-local nearest-replica cost (only ever drops)
// and the constant update-traffic term of the CoR valuation.
type Cand struct {
	Object  int32
	Size    int64
	Reads   int64
	NNCost  int32
	UpdCost int64
}

// Benefit is the CoR valuation of Eq. 5's essence: read traffic saved by a
// local copy minus the update traffic it attracts.
func (c *Cand) Benefit() int64 {
	return c.Reads*c.Size*int64(c.NNCost) - c.UpdCost
}

// Agent is the purely local replica-bidding state of one server, shared by
// the auction baselines and the hierarchical mechanism. (The AGT-RAM
// package keeps its own equivalent type — it is the paper's central
// abstraction and its documentation anchors to the paper's notation.)
type Agent struct {
	ID       int
	Residual int64
	Cands    []Cand // sorted by Object
}

// BuildAgentsFrom constructs agents priced against an existing placement
// instead of the primary-only initial state: nearest-replica costs and
// residual capacities come from the schema, and objects a server already
// holds are excluded. The adaptive extension uses this to resume the
// mechanism after demand drift.
func BuildAgentsFrom(s *replication.Schema) []*Agent {
	p := s.Problem()
	var agents []*Agent
	w := p.Work
	for i := 0; i < p.M; i++ {
		a := &Agent{ID: i, Residual: s.Residual(i)}
		for _, d := range w.PerServer[i] {
			if d.Reads == 0 || int(w.Primary[d.Object]) == i {
				continue
			}
			if s.HasReplica(d.Object, i) {
				continue
			}
			pk := int(w.Primary[d.Object])
			c := Cand{
				Object:  d.Object,
				Size:    w.ObjectSize[d.Object],
				Reads:   d.Reads,
				NNCost:  p.Cost.At(i, int(s.NN(i, d.Object))),
				UpdCost: (w.TotalWrites[d.Object] - d.Writes) * w.ObjectSize[d.Object] * int64(p.Cost.At(pk, i)),
			}
			if c.Benefit() > 0 && c.Size <= a.Residual {
				a.Cands = append(a.Cands, c)
			}
		}
		if len(a.Cands) > 0 {
			sort.Slice(a.Cands, func(x, y int) bool { return a.Cands[x].Object < a.Cands[y].Object })
			agents = append(agents, a)
		}
	}
	return agents
}

// BuildAgents constructs the per-server agents of an instance: every server
// with at least one initially beneficial, capacity-feasible candidate.
func BuildAgents(p *replication.Problem) []*Agent {
	var agents []*Agent
	w := p.Work
	for i := 0; i < p.M; i++ {
		a := &Agent{ID: i, Residual: p.Capacity[i] - p.PrimaryLoad(i)}
		for _, d := range w.PerServer[i] {
			if d.Reads == 0 || int(w.Primary[d.Object]) == i {
				continue
			}
			pk := int(w.Primary[d.Object])
			c := Cand{
				Object:  d.Object,
				Size:    w.ObjectSize[d.Object],
				Reads:   d.Reads,
				NNCost:  p.Cost.At(i, pk),
				UpdCost: (w.TotalWrites[d.Object] - d.Writes) * w.ObjectSize[d.Object] * int64(p.Cost.At(pk, i)),
			}
			if c.Benefit() > 0 && c.Size <= a.Residual {
				a.Cands = append(a.Cands, c)
			}
		}
		if len(a.Cands) > 0 {
			sort.Slice(a.Cands, func(x, y int) bool { return a.Cands[x].Object < a.Cands[y].Object })
			agents = append(agents, a)
		}
	}
	return agents
}

// Best returns the agent's dominant valuation: the highest positive benefit
// among candidates that still fit. Dead candidates — too big for the
// shrinking residual, or no longer beneficial — are pruned permanently
// (both conditions are monotone).
func (a *Agent) Best() (obj int32, val int64, ok bool) {
	out := a.Cands[:0]
	for i := range a.Cands {
		c := a.Cands[i]
		if c.Size > a.Residual {
			continue
		}
		b := c.Benefit()
		if b <= 0 {
			continue
		}
		out = append(out, c)
		if !ok || b > val || (b == val && c.Object < obj) {
			val, obj, ok = b, c.Object, true
		}
	}
	a.Cands = out
	return obj, val, ok
}

// Observe processes the broadcast "object k replicated at cost c from me".
func (a *Agent) Observe(k int32, cost int32) {
	idx := sort.Search(len(a.Cands), func(j int) bool { return a.Cands[j].Object >= k })
	if idx < len(a.Cands) && a.Cands[idx].Object == k && cost < a.Cands[idx].NNCost {
		a.Cands[idx].NNCost = cost
	}
}

// Won records a winning bid: capacity shrinks and the candidate retires.
func (a *Agent) Won(k int32) {
	idx := sort.Search(len(a.Cands), func(j int) bool { return a.Cands[j].Object >= k })
	if idx < len(a.Cands) && a.Cands[idx].Object == k {
		a.Residual -= a.Cands[idx].Size
		a.Cands = append(a.Cands[:idx], a.Cands[idx+1:]...)
	}
}

// Active reports whether the agent still has candidates.
func (a *Agent) Active() bool { return len(a.Cands) > 0 }
