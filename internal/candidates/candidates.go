// Package candidates enumerates the feasible (server, object) replica
// candidates of a DRP instance: pairs where the server reads the object,
// does not already hold its primary, and where replication is at least
// initially beneficial. All baseline solvers draw from this set; the
// AGT-RAM agents build the same set independently from their local data.
package candidates

import (
	"sort"

	"repro/internal/replication"
)

// Pair is one candidate placement.
type Pair struct {
	Server int
	Object int32
	Size   int64
}

// Build returns all candidate pairs of the instance, sorted by (server,
// object) for determinism. onlyBeneficial drops pairs whose benefit is not
// positive in the initial (primary-only) schema; since benefits only shrink
// as replicas appear, such pairs can never become attractive.
func Build(p *replication.Problem, onlyBeneficial bool) []Pair {
	s := p.NewSchema()
	var out []Pair
	for i := 0; i < p.M; i++ {
		for _, d := range p.Work.PerServer[i] {
			if d.Reads == 0 {
				continue
			}
			if int(p.Work.Primary[d.Object]) == i {
				continue
			}
			if onlyBeneficial && s.LocalBenefit(i, d.Object) <= 0 {
				continue
			}
			out = append(out, Pair{Server: i, Object: d.Object, Size: p.Work.ObjectSize[d.Object]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Server != out[b].Server {
			return out[a].Server < out[b].Server
		}
		return out[a].Object < out[b].Object
	})
	return out
}
