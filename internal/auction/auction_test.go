package auction

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/testutil"
)

func TestDutchImproves(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(1))
	res, err := Solve(context.Background(), p, Config{Kind: Dutch})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Savings() <= 0 {
		t.Fatalf("savings = %v", res.Schema.Savings())
	}
	if res.Ticks <= 0 || res.Polls <= 0 {
		t.Fatalf("clock counters missing: ticks=%d polls=%d", res.Ticks, res.Polls)
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEnglishImproves(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(2))
	res, err := Solve(context.Background(), p, Config{Kind: English})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Savings() <= 0 {
		t.Fatalf("savings = %v", res.Schema.Savings())
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveNilAndBadStep(t *testing.T) {
	if _, err := Solve(context.Background(), nil, Config{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := testutil.MustBuild(testutil.Small(3))
	if _, err := Solve(context.Background(), p, Config{Step: -0.1}); err == nil {
		t.Fatal("negative step accepted")
	}
}

func TestMaxPlacements(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(4))
	res, err := Solve(context.Background(), p, Config{Kind: Dutch, MaxPlacements: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed > 2 {
		t.Fatalf("placed %d, want <= 2", res.Placed)
	}
}

func TestKindString(t *testing.T) {
	if Dutch.String() != "dutch" || English.String() != "english" {
		t.Fatal("kind names wrong")
	}
}

// The English clock polls far more than the paper's sealed-bid mechanism
// would: its tick count must exceed the number of allocations.
func TestEnglishClockOverhead(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(5))
	res, err := Solve(context.Background(), p, Config{Kind: English})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed > 0 && res.Ticks <= int64(res.Placed) {
		t.Fatalf("english auction should tick more than once per round: ticks=%d placed=%d",
			res.Ticks, res.Placed)
	}
}

// Coarser clocks lose more quality: a very coarse Dutch clock must not beat
// a fine one by more than noise, and both must stay valid.
func TestStepGranularityEffect(t *testing.T) {
	fine, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(6)), Config{Kind: Dutch, Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(6)), Config{Kind: Dutch, Step: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Schema.Savings() <= 0 || coarse.Schema.Savings() <= 0 {
		t.Fatalf("savings: fine=%v coarse=%v", fine.Schema.Savings(), coarse.Schema.Savings())
	}
	// The fine clock approximates the sealed-bid optimum better (or ties).
	if coarse.Schema.Savings() > fine.Schema.Savings()+1 {
		t.Fatalf("coarse clock (%v) should not meaningfully beat fine clock (%v)",
			coarse.Schema.Savings(), fine.Schema.Savings())
	}
}

// Property: both auctions terminate, respect constraints, and never
// increase cost.
func TestAuctionsValidProperty(t *testing.T) {
	f := func(seed int64, english bool) bool {
		cfg := testutil.InstanceConfig{
			Servers: 8, Objects: 25, Requests: 2500, RWRatio: 0.8,
			CapacityPercent: 30, EdgeP: 0.4, Seed: seed,
		}
		p, err := testutil.Build(cfg)
		if err != nil {
			return false
		}
		kind := Dutch
		if english {
			kind = English
		}
		res, err := Solve(context.Background(), p, Config{Kind: kind})
		if err != nil {
			return false
		}
		if res.Schema.TotalCost() > res.Schema.BaseCost() {
			return false
		}
		return res.Schema.ValidateInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}
