// Package auction implements the two price-clock baselines the paper
// compares against (Khan and Ahmad [15]): a Dutch (descending-clock)
// auction and an English (ascending-clock) auction for replica allocation.
//
// Unlike AGT-RAM, which holds one sealed-bid contest over *all* (server,
// object) valuations per round, the auction methods sell one object at a
// time: objects are auctioned in public-popularity order, in repeated
// passes, each auction placing at most one new replica of that object on
// the winning server. Two structural handicaps follow, and they are exactly
// the gaps Tables 1–2 and Figures 3–4 report:
//
//   - selection is per-object, so under binding capacity servers fill up on
//     early (popular) objects even when later objects would have been
//     globally better — a quality loss against AGT-RAM's global pick;
//   - the winner is discovered by walking a quantized price clock, so every
//     auction costs ticks×bidders agent polls instead of one sealed bid per
//     agent — a running-time loss. The ascending English clock starts at
//     the floor and therefore needs either many ticks or a coarse step;
//     its coarser default step loses additional quality to tie-breaks.
package auction

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/replication"
)

// Kind selects the clock direction.
type Kind int

const (
	// Dutch descends from a public ceiling; the first agent to accept wins.
	Dutch Kind = iota
	// English ascends from the floor; the last agent standing wins.
	English
)

// String names the auction kind.
func (k Kind) String() string {
	if k == English {
		return "english"
	}
	return "dutch"
}

// Config tunes the clock.
type Config struct {
	Kind Kind
	// Step is the multiplicative clock step (> 0). Defaults: 0.05 for
	// Dutch, 0.2 for English (the ascending clock must cross the whole
	// price range, so it runs coarser to terminate in reasonable time).
	Step float64
	// MaxPlacements caps the number of replicas placed; <= 0 is unbounded.
	MaxPlacements int
	// OnPlace, when non-nil, observes every placement as it commits: the
	// object, the winning server, and the winner's valuation.
	OnPlace func(object int32, server int, value int64)
}

func (c Config) step() float64 {
	if c.Step > 0 {
		return c.Step
	}
	if c.Kind == English {
		return 0.2
	}
	return 0.05
}

// Result is the outcome of a run.
type Result struct {
	Schema *replication.Schema
	Placed int
	// Passes counts sweeps over the object list.
	Passes int
	// Ticks counts clock ticks across all auctions.
	Ticks int64
	// Polls counts agent valuation polls (the auctions' overhead versus the
	// single sealed-bid exchange per round of AGT-RAM).
	Polls int64
}

// Solve runs repeated per-object clock auctions until a full pass places
// nothing. ctx is checked before every per-object auction and at every
// clock tick; on cancellation Solve returns ctx.Err() wrapped with the
// package name.
func Solve(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("auction: nil problem")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("auction: %w", err)
	}
	if cfg.Step < 0 {
		return nil, fmt.Errorf("auction: negative step %v", cfg.Step)
	}
	step := cfg.step()
	schema := p.NewSchema()
	res := &Result{Schema: schema}

	// Public popularity order: total request volume, descending.
	order := make([]int32, p.N)
	for k := range order {
		order[k] = int32(k)
	}
	sort.Slice(order, func(a, b int) bool {
		va := p.Work.TotalReads[order[a]] + p.Work.TotalWrites[order[a]]
		vb := p.Work.TotalReads[order[b]] + p.Work.TotalWrites[order[b]]
		if va != vb {
			return va > vb
		}
		return order[a] < order[b]
	})

	// The Dutch clock descends from a public per-object ceiling: no
	// valuation of object k can exceed its total read volume times its size
	// times the network diameter, all public knowledge.
	diameter := float64(maxCost(p))

	for {
		res.Passes++
		placedThisPass := 0
		for _, k := range order {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("auction: %w", err)
			}
			if cfg.MaxPlacements > 0 && res.Placed >= cfg.MaxPlacements {
				return res, nil
			}
			ceiling := (float64(p.Work.TotalReads[k])*float64(p.Work.ObjectSize[k])*diameter + 1) * (1 + step)
			winner, val, ok, err := auctionObject(ctx, p, schema, k, cfg.Kind, step, ceiling, res)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			if _, err := schema.PlaceReplica(k, winner); err != nil {
				return nil, fmt.Errorf("auction: placing object %d on %d: %w", k, winner, err)
			}
			res.Placed++
			placedThisPass++
			if cfg.OnPlace != nil {
				cfg.OnPlace(k, winner, val)
			}
		}
		if placedThisPass == 0 {
			break
		}
	}
	return res, nil
}

// auctionObject runs one clock auction for object k and returns the winning
// server and its valuation, if any agent values a new replica of k. ctx is
// checked at every clock tick (the Dutch clock in particular can walk many
// ticks before the price reaches the acceptance region).
func auctionObject(ctx context.Context, p *replication.Problem, s *replication.Schema, k int32,
	kind Kind, step, ceiling float64, res *Result) (int, int64, bool, error) {

	// Collect the bidders: servers with positive valuation and capacity.
	type bid struct {
		server int
		val    int64
	}
	var bids []bid
	size := p.Work.ObjectSize[k]
	for i := 0; i < p.M; i++ {
		if s.HasReplica(k, i) || s.Residual(i) < size {
			continue
		}
		res.Polls++
		if v := s.LocalBenefit(i, k); v > 0 {
			bids = append(bids, bid{server: i, val: v})
		}
	}
	if len(bids) == 0 {
		return 0, 0, false, nil
	}

	switch kind {
	case English:
		// Ascend from the floor; agents drop out as the price passes their
		// valuation; the last group standing ties by server id.
		price := 1.0
		remaining := bids
		for len(remaining) > 1 {
			if err := ctx.Err(); err != nil {
				return 0, 0, false, fmt.Errorf("auction: %w", err)
			}
			res.Ticks++
			next := remaining[:0]
			for _, b := range remaining {
				res.Polls++
				if float64(b.val) >= price*(1+step) {
					next = append(next, b)
				}
			}
			if len(next) == 0 {
				break // all dropped in one tick: id tie-break over `remaining`
			}
			remaining = next
			price *= 1 + step
		}
		w := remaining[0]
		for _, b := range remaining[1:] {
			if b.server < w.server {
				w = b
			}
		}
		return w.server, w.val, true, nil
	default:
		// Dutch: descend from the public ceiling until someone accepts; all
		// acceptors inside the tick window tie by server id.
		price := ceiling
		for {
			if err := ctx.Err(); err != nil {
				return 0, 0, false, fmt.Errorf("auction: %w", err)
			}
			res.Ticks++
			var first *bid
			for idx := range bids {
				res.Polls++
				if float64(bids[idx].val) >= price {
					if first == nil || bids[idx].server < first.server {
						first = &bids[idx]
					}
				}
			}
			if first != nil {
				return first.server, first.val, true, nil
			}
			price /= 1 + step
		}
	}
}

// maxCost returns the largest pairwise communication cost (public).
func maxCost(p *replication.Problem) int32 {
	var max int32 = 1
	for i := 0; i < p.M; i++ {
		for j := i + 1; j < p.M; j++ {
			if c := p.Cost.At(i, j); c > max {
				max = c
			}
		}
	}
	return max
}
