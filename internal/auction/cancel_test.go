package auction

import (
	"context"
	"errors"
	"testing"

	"repro/internal/testutil"
)

func TestSolveCancelled(t *testing.T) {
	for _, kind := range []Kind{Dutch, English} {
		testutil.LeakCheck(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Solve(ctx, testutil.MustBuild(testutil.Small(45)), Config{Kind: kind}); !errors.Is(err, context.Canceled) {
			t.Fatalf("kind %v: err = %v, want context.Canceled", kind, err)
		}
	}
}

func TestSolveCancelMidClock(t *testing.T) {
	for _, kind := range []Kind{Dutch, English} {
		testutil.LeakCheck(t)
		// Survive the entry check and a few price-clock ticks, then die.
		ctx := testutil.CancelAfterPolls(10)
		_, err := Solve(ctx, testutil.MustBuild(testutil.Small(46)), Config{Kind: kind})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("kind %v: err = %v, want context.Canceled", kind, err)
		}
	}
}
