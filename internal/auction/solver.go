package auction

import (
	"context"
	"fmt"

	"repro/internal/replication"
	"repro/internal/solver"
)

// clockSolver adapts one auction kind to the solver registry; the package
// registers both the Dutch ("da") and English ("ea") clocks.
type clockSolver struct {
	name, label, desc string
	kind              Kind
}

func init() {
	solver.Register(clockSolver{
		name: "da", label: "DA", kind: Dutch,
		desc: "Dutch descending-clock per-object auction of [15]",
	})
	solver.Register(clockSolver{
		name: "ea", label: "EA", kind: English,
		desc: "English ascending-clock per-object auction of [15]",
	})
}

func (s clockSolver) Name() string        { return s.name }
func (s clockSolver) Label() string       { return s.label }
func (s clockSolver) Description() string { return s.desc }

func (s clockSolver) Solve(ctx context.Context, p *replication.Problem, opts solver.Options) (*solver.Outcome, error) {
	if opts.Engine != "" {
		return nil, fmt.Errorf("auction: unknown engine %q (%s has a single engine)", opts.Engine, s.name)
	}
	cfg := Config{Kind: s.kind}
	out := &solver.Outcome{}
	if opts.OnEvent != nil || opts.RecordEvents {
		placed := 0
		cfg.OnPlace = func(object int32, server int, value int64) {
			placed++
			out.Emit(opts, solver.Event{
				Round: placed, Object: object, Server: int32(server), Value: value,
			})
		}
	}
	res, err := Solve(ctx, p, cfg)
	if err != nil {
		return nil, err
	}
	out.Schema = res.Schema
	out.Replicas = res.Placed
	out.Work = res.Polls
	out.Rounds = res.Passes
	return out, nil
}
