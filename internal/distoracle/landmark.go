package distoracle

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/topology"
)

// Landmark is an approximate distance oracle: K landmark nodes chosen by
// farthest-point sampling, with one exact Dijkstra row stored per landmark
// (K×M int32 total). Queries answer the triangle upper bound
//
//	d̂(i,j) = min_L d(i,L) + d(L,j)  >=  d(i,j)
//
// in O(K) time with no graph access. The estimate is exact whenever some
// landmark lies on a shortest i–j path — in particular whenever i or j is
// itself a landmark, so K = M degenerates to the exact oracle. Landmark is
// deliberately NOT a replication.RowCostFn: it has no contiguous exact rows
// to share, and handing solvers an approximate row as if it were exact
// would cross the determinism boundary documented in DESIGN.md §13.
type Landmark struct {
	n, k int
	ids  []int32 // chosen landmark nodes, in selection order
	rows []int32 // k*n flat; rows[l*n+j] = exact d(ids[l], j)
}

// NewLandmark picks k landmarks over g by farthest-point sampling: the
// first landmark is node 0, each next is the node maximizing the distance
// to its nearest chosen landmark (ties to the lowest id). k <= 0 selects
// DefaultLandmarks; k is clamped to g.N(). workers is accepted for
// signature symmetry with Build; selection is inherently sequential (each
// choice depends on the previous row), so it is unused.
func NewLandmark(g *topology.Graph, k, workers int) (*Landmark, error) {
	_ = workers
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("distoracle: landmark oracle needs a non-empty graph")
	}
	if k <= 0 {
		k = DefaultLandmarks
	}
	if k > n {
		k = n
	}
	lm := &Landmark{
		n:    n,
		k:    k,
		ids:  make([]int32, 0, k),
		rows: make([]int32, k*n),
	}
	chosen := make([]bool, n)
	// minDist[v] = distance from v to its nearest chosen landmark.
	minDist := make([]int32, n)
	next := 0
	for l := 0; l < k; l++ {
		lm.ids = append(lm.ids, int32(next))
		chosen[next] = true
		row := lm.rows[l*n : (l+1)*n]
		topology.ShortestPathsFrom(g, next, row)
		best, bestDist := -1, int32(-1)
		for v := 0; v < n; v++ {
			if l == 0 || row[v] < minDist[v] {
				minDist[v] = row[v]
			}
			if !chosen[v] && minDist[v] > bestDist {
				best, bestDist = v, minDist[v]
			}
		}
		if best < 0 {
			break // every node is a landmark (k == n)
		}
		next = best
	}
	return lm, nil
}

// N implements replication.CostFn.
func (lm *Landmark) N() int { return lm.n }

// K reports the landmark count.
func (lm *Landmark) K() int { return lm.k }

// Landmarks returns the chosen landmark ids; callers must not mutate.
func (lm *Landmark) Landmarks() []int32 { return lm.ids }

// At implements replication.CostFn with the O(K) triangle upper bound.
func (lm *Landmark) At(i, j int) int32 {
	if i == j {
		return 0
	}
	best := int32(math.MaxInt32)
	for l := 0; l < lm.k; l++ {
		row := lm.rows[l*lm.n : (l+1)*lm.n]
		di, dj := row[i], row[j]
		if di == math.MaxInt32 || dj == math.MaxInt32 {
			continue
		}
		if s := di + dj; s < best {
			best = s
		}
	}
	return best
}

// ErrorDist summarizes the estimate error of the landmark oracle against
// exact Dijkstra rows from sampled sources: rel = (d̂ - d) / d over pairs
// with d > 0 (d̂ >= d always, so every rel is non-negative).
type ErrorDist struct {
	Sources   int     // sampled source rows
	Pairs     int64   // (source, target) pairs measured
	ExactFrac float64 // fraction of pairs with d̂ == d
	MeanRel   float64
	P95Rel    float64
	MaxRel    float64
}

// ErrorStats measures the oracle's distance-error distribution on g by
// comparing against exact rows from `sources` uniformly sampled nodes
// (clamped to N; <= 0 selects min(64, N)).
func (lm *Landmark) ErrorStats(g *topology.Graph, sources int, seed int64) ErrorDist {
	n := lm.n
	if sources <= 0 {
		sources = 64
	}
	if sources > n {
		sources = n
	}
	r := stats.NewRNG(seed)
	perm := r.Perm(n)
	exact := make([]int32, n)
	rels := make([]float64, 0, sources*(n-1))
	var pairs, exactPairs int64
	var sum float64
	for _, s := range perm[:sources] {
		topology.ShortestPathsFrom(g, s, exact)
		for j := 0; j < n; j++ {
			if j == s || exact[j] <= 0 || exact[j] == math.MaxInt32 {
				continue
			}
			est := lm.At(s, j)
			rel := float64(est-exact[j]) / float64(exact[j])
			pairs++
			if est == exact[j] {
				exactPairs++
			}
			sum += rel
			rels = append(rels, rel)
		}
	}
	d := ErrorDist{Sources: sources, Pairs: pairs}
	if pairs == 0 {
		return d
	}
	sort.Float64s(rels)
	d.ExactFrac = float64(exactPairs) / float64(pairs)
	d.MeanRel = sum / float64(pairs)
	d.P95Rel = rels[int(float64(len(rels)-1)*0.95)]
	d.MaxRel = rels[len(rels)-1]
	return d
}
