package distoracle

import (
	"testing"

	"repro/internal/topology"
)

// FuzzTreeOracleLCA cross-checks the Euler-tour/LCA tree oracle against
// plain Dijkstra on trees decoded from the fuzz input: byte i (1-based
// node) picks the parent among earlier nodes and an edge weight, so every
// input is a valid weighted recursive tree.
func FuzzTreeOracleLCA(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{255, 0, 128, 7, 7, 7, 0, 0, 0, 9, 200, 13, 77, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data)
		if n == 0 {
			return
		}
		if n > 256 {
			n = 256
			data = data[:n]
		}
		g := topology.NewGraph(n)
		for u := 1; u < n; u++ {
			parent := int(data[u]) % u
			weight := 1 + int32(data[u-1])%9
			if err := g.AddEdge(u, parent, weight); err != nil {
				t.Fatalf("tree construction: %v", err)
			}
		}
		if !IsTree(g) {
			t.Fatalf("decoded graph is not a tree: n=%d edges=%d", g.N(), g.Edges())
		}
		tr, err := NewTree(g)
		if err != nil {
			t.Fatalf("NewTree: %v", err)
		}
		dist := make([]int32, n)
		for i := 0; i < n; i++ {
			topology.ShortestPathsFrom(g, i, dist)
			for j := 0; j < n; j++ {
				if got := tr.At(i, j); got != dist[j] {
					t.Fatalf("tree At(%d,%d) = %d, Dijkstra says %d", i, j, got, dist[j])
				}
			}
		}
	})
}
