package distoracle

import (
	"container/list"
	"math"
	"sync"

	"repro/internal/topology"
)

// CSRLazy is an exact distance oracle that stores only the graph, in
// compressed-sparse-row form, and materializes distance rows on demand with
// Dijkstra. Finished rows live in a bounded LRU cache so solver re-pricing
// passes that revisit the same servers hit memory instead of recomputing.
//
// Memory is O(E) for the CSR arrays plus O(cacheRows·M) for the cache —
// versus O(M²) for the dense matrix. Concurrency: the mutex guards only
// cache bookkeeping; Dijkstra runs outside it, so goroutines requesting
// distinct rows compute in parallel, and an in-flight map deduplicates
// goroutines racing for the same row. Evicted rows stay valid for callers
// that already hold them (the GC reclaims them when the last reference
// drops), which is what lets the arena and kernel keep lazily materialized
// column slices across a solve.
type CSRLazy struct {
	n      int
	rowPtr []int32 // len n+1; node u's edges are [rowPtr[u], rowPtr[u+1])
	col    []int32 // edge target
	wt     []int32 // edge weight
	cap    int     // max cached rows

	scratch sync.Pool // *csrScratch

	mu       sync.Mutex
	rows     map[int32]*list.Element // node -> LRU element holding *csrRow
	lru      *list.List              // front = most recently used
	inflight map[int32]chan struct{} // rows being computed right now

	hits, misses, evictions int64 // guarded by mu
}

type csrRow struct {
	node int32
	dist []int32
}

// NewCSRLazy converts g to CSR form and returns an empty-cache oracle.
// cacheRows bounds the LRU cache; <= 0 selects DefaultRowCacheRows.
func NewCSRLazy(g *topology.Graph, cacheRows int) *CSRLazy {
	if cacheRows <= 0 {
		cacheRows = DefaultRowCacheRows
	}
	n := g.N()
	c := &CSRLazy{
		n:        n,
		rowPtr:   make([]int32, n+1),
		cap:      cacheRows,
		rows:     make(map[int32]*list.Element, cacheRows),
		lru:      list.New(),
		inflight: make(map[int32]chan struct{}),
	}
	edges := 0
	for u := 0; u < n; u++ {
		edges += len(g.Neighbors(u))
	}
	c.col = make([]int32, edges)
	c.wt = make([]int32, edges)
	at := int32(0)
	for u := 0; u < n; u++ {
		c.rowPtr[u] = at
		for _, e := range g.Neighbors(u) {
			c.col[at] = e.To
			c.wt[at] = e.Weight
			at++
		}
	}
	c.rowPtr[n] = at
	c.scratch.New = func() interface{} {
		return &csrScratch{
			visited: make([]bool, n),
			heap:    make([]int64, 0, 64),
		}
	}
	return c
}

// N implements replication.CostFn.
func (c *CSRLazy) N() int { return c.n }

// At implements replication.CostFn. The diagonal short-circuits to zero and
// either endpoint's cached row can answer (distances are symmetric), so
// row-then-column access patterns like RecomputeCost never trigger one
// Dijkstra per cell.
func (c *CSRLazy) At(i, j int) int32 {
	if i == j {
		return 0
	}
	c.mu.Lock()
	if e, ok := c.rows[int32(i)]; ok {
		c.lru.MoveToFront(e)
		v := e.Value.(*csrRow).dist[j]
		c.hits++
		c.mu.Unlock()
		return v
	}
	if e, ok := c.rows[int32(j)]; ok {
		c.lru.MoveToFront(e)
		v := e.Value.(*csrRow).dist[i]
		c.hits++
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	return c.Row(i)[j]
}

// Row implements replication.RowCostFn: the full distance row c(i, ·),
// computed on first touch and cached. The returned slice is immutable and
// remains valid after eviction.
func (c *CSRLazy) Row(i int) []int32 {
	key := int32(i)
	c.mu.Lock()
	for {
		if e, ok := c.rows[key]; ok {
			c.lru.MoveToFront(e)
			row := e.Value.(*csrRow).dist
			c.hits++
			c.mu.Unlock()
			return row
		}
		ch, busy := c.inflight[key]
		if !busy {
			break
		}
		// Another goroutine is computing this row; wait and re-check (the
		// row can be evicted between its insert and our wakeup).
		c.mu.Unlock()
		<-ch
		c.mu.Lock()
	}
	ch := make(chan struct{})
	c.inflight[key] = ch
	c.misses++
	c.mu.Unlock()

	dist := make([]int32, c.n)
	c.dijkstra(i, dist)

	c.mu.Lock()
	delete(c.inflight, key)
	e := c.lru.PushFront(&csrRow{node: key, dist: dist})
	c.rows[key] = e
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.rows, back.Value.(*csrRow).node)
		c.evictions++
	}
	c.mu.Unlock()
	close(ch)
	return dist
}

// InvalidateRow implements replication.RowInvalidator: topology deltas
// (server join/leave) drop the affected row so the next access recomputes
// it. Out-of-range i is a no-op. Callers that already hold the evicted
// slice keep a consistent pre-delta view until they re-fetch.
func (c *CSRLazy) InvalidateRow(i int) {
	if i < 0 || i >= c.n {
		return
	}
	c.mu.Lock()
	if e, ok := c.rows[int32(i)]; ok {
		c.lru.Remove(e)
		delete(c.rows, int32(i))
		c.evictions++
	}
	c.mu.Unlock()
}

// CacheStats reports cache behavior since construction. The daemon surfaces
// it under /metrics (controller.row_cache) and topogen prints it after
// sampled stats, so a solve that thrashes the LRU (M far beyond the cache
// budget — the Dijkstra-bound regime) shows up as a miss/evict ratio instead
// of silent slowness.
type CacheStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	CachedRows int   `json:"cached_rows"`
}

// Stats returns a snapshot of the cache counters.
func (c *CSRLazy) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, CachedRows: c.lru.Len()}
}

// csrScratch holds per-goroutine Dijkstra buffers. The heap stores packed
// int64 keys (dist in the high 32 bits) so ordering is a plain integer
// compare with no interface boxing.
type csrScratch struct {
	visited []bool
	heap    []int64
}

func pack(dist, node int32) int64 { return int64(dist)<<32 | int64(node) }

// dijkstra fills dist with single-source shortest paths from s over the
// CSR arrays. Lazy-deletion binary heap; unreachable nodes get
// topology.Infinity (generators always return connected graphs).
func (c *CSRLazy) dijkstra(s int, dist []int32) {
	sc := c.scratch.Get().(*csrScratch)
	visited := sc.visited
	for i := range dist {
		dist[i] = math.MaxInt32
		visited[i] = false
	}
	dist[s] = 0
	h := sc.heap[:0]
	h = heapPush(h, pack(0, int32(s)))
	for len(h) > 0 {
		var top int64
		top, h = heapPop(h)
		u := int32(top & 0xffffffff)
		if visited[u] {
			continue
		}
		visited[u] = true
		du := dist[u]
		for e := c.rowPtr[u]; e < c.rowPtr[u+1]; e++ {
			v := c.col[e]
			if visited[v] {
				continue
			}
			nd := du + c.wt[e]
			if nd < dist[v] {
				dist[v] = nd
				h = heapPush(h, pack(nd, v))
			}
		}
	}
	sc.heap = h
	c.scratch.Put(sc)
}

func heapPush(h []int64, x int64) []int64 {
	h = append(h, x)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func heapPop(h []int64) (int64, []int64) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top, h
}
