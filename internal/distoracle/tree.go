package distoracle

import (
	"fmt"
	"math/bits"

	"repro/internal/topology"
)

// IsTree reports whether g is a tree: connected with exactly N-1 edges.
// The empty graph is not a tree; a single node is.
func IsTree(g *topology.Graph) bool {
	n := g.N()
	return n > 0 && g.Edges() == n-1 && g.Connected()
}

// maxTreeDepth bounds the weighted root distance so that any pairwise
// distance distTo[i]+distTo[j] fits int32 without overflow.
const maxTreeDepth = int64(1) << 30

// Tree is an exact O(1)-query distance oracle for tree graphs, following
// the tree-network replica placement line of work: in a tree the unique
// i–j path runs through their lowest common ancestor, so
//
//	d(i,j) = distTo[i] + distTo[j] - 2·distTo[LCA(i,j)]
//
// with distTo the weighted root distance. LCA is answered by a sparse-table
// range-minimum over the Euler tour (O(M log M) build, O(1) query), so no
// per-pair storage exists at all — the whole oracle is O(M log M) ints.
type Tree struct {
	n      int
	distTo []int32 // weighted distance from root 0
	first  []int32 // first Euler-tour index of each node
	euler  []int32 // Euler tour node sequence, len 2n-1
	depth  []int32 // unweighted depth of euler[i], the RMQ key
	// sparse[l][i] = index into euler of the min-depth entry in
	// [i, i+2^l); stored flat as sparse[l*len(euler)+i].
	sparse []int32
	levels int
}

// NewTree builds the oracle. Errors if g is not a tree or its weighted
// depth exceeds maxTreeDepth (pairwise sums must stay inside int32).
func NewTree(g *topology.Graph) (*Tree, error) {
	if !IsTree(g) {
		return nil, fmt.Errorf("distoracle: graph with %d nodes / %d edges is not a tree", g.N(), g.Edges())
	}
	n := g.N()
	t := &Tree{
		n:      n,
		distTo: make([]int32, n),
		first:  make([]int32, n),
		euler:  make([]int32, 0, 2*n-1),
		depth:  make([]int32, 0, 2*n-1),
	}
	// Iterative Euler-tour DFS from root 0. The stack replays each node
	// once per child boundary so the tour records a re-visit between
	// subtrees, which is what makes LCA = RMQ over the tour work.
	type frame struct {
		node, parent int32
		edge         int // next neighbor index to descend into
		udepth       int32
	}
	dist64 := make([]int64, n)
	stack := []frame{{node: 0, parent: -1}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.edge == 0 || f.edge < len(g.Neighbors(int(f.node))) {
			// Record (or re-record, between children) the node.
			if f.edge == 0 {
				t.first[f.node] = int32(len(t.euler))
			}
			t.euler = append(t.euler, f.node)
			t.depth = append(t.depth, f.udepth)
		}
		descended := false
		for f.edge < len(g.Neighbors(int(f.node))) {
			e := g.Neighbors(int(f.node))[f.edge]
			f.edge++
			if e.To == f.parent {
				continue
			}
			dist64[e.To] = dist64[f.node] + int64(e.Weight)
			if dist64[e.To] > maxTreeDepth {
				return nil, fmt.Errorf("distoracle: tree depth %d at node %d exceeds %d", dist64[e.To], e.To, maxTreeDepth)
			}
			stack = append(stack, frame{node: e.To, parent: f.node, udepth: f.udepth + 1})
			descended = true
			break
		}
		if !descended {
			stack = stack[:len(stack)-1]
		}
	}
	for i, d := range dist64 {
		t.distTo[i] = int32(d)
	}
	// Sparse table over the Euler depth sequence.
	m := len(t.euler)
	t.levels = bits.Len(uint(m))
	t.sparse = make([]int32, t.levels*m)
	for i := 0; i < m; i++ {
		t.sparse[i] = int32(i)
	}
	for l := 1; l < t.levels; l++ {
		span := 1 << l
		prev := t.sparse[(l-1)*m:]
		cur := t.sparse[l*m:]
		for i := 0; i+span <= m; i++ {
			a, b := prev[i], prev[i+span/2]
			if t.depth[b] < t.depth[a] {
				a = b
			}
			cur[i] = a
		}
	}
	return t, nil
}

// N implements replication.CostFn.
func (t *Tree) N() int { return t.n }

// LCA returns the lowest common ancestor of i and j (rooted at node 0).
func (t *Tree) LCA(i, j int) int {
	a, b := t.first[i], t.first[j]
	if a > b {
		a, b = b, a
	}
	l := bits.Len(uint(b-a+1)) - 1
	m := len(t.euler)
	x := t.sparse[l*m+int(a)]
	y := t.sparse[l*m+int(b)-(1<<l)+1]
	if t.depth[y] < t.depth[x] {
		x = y
	}
	return int(t.euler[x])
}

// At implements replication.CostFn in O(1).
func (t *Tree) At(i, j int) int32 {
	if i == j {
		return 0
	}
	return t.distTo[i] + t.distTo[j] - 2*t.distTo[t.LCA(i, j)]
}
