package distoracle

import (
	"sync"
	"testing"

	"repro/internal/replication"
	"repro/internal/stats"
	"repro/internal/topology"
)

// diffAgainstAllPairs asserts bit-identity between an oracle and the dense
// AllPairs matrix over every pair.
func diffAgainstAllPairs(t *testing.T, name string, c replication.CostFn, exact *topology.DistMatrix) {
	t.Helper()
	n := exact.N()
	if c.N() != n {
		t.Fatalf("%s: N() = %d, want %d", name, c.N(), n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got, want := c.At(i, j), exact.At(i, j); got != want {
				t.Fatalf("%s: At(%d,%d) = %d, want %d", name, i, j, got, want)
			}
		}
	}
}

// Differential: the CSR-lazy oracle is bit-identical to AllPairs on random,
// power-law, and grid graphs, including with a cache far smaller than N
// (forcing evictions) and under the symmetric-row At fast path.
func TestCSRLazyMatchesAllPairs(t *testing.T) {
	r := stats.NewRNG(42)
	graphs := map[string]*topology.Graph{}
	g, err := topology.Random(120, 0.08, topology.DefaultWeights, r)
	if err != nil {
		t.Fatal(err)
	}
	graphs["random"] = g
	if g, err = topology.PowerLaw(150, 2, topology.DefaultWeights, r); err != nil {
		t.Fatal(err)
	}
	graphs["powerlaw"] = g
	graphs["grid"] = topology.Grid(9, 13)
	for name, g := range graphs {
		exact := topology.AllPairs(g, 0)
		diffAgainstAllPairs(t, name+"/big-cache", NewCSRLazy(g, g.N()), exact)
		diffAgainstAllPairs(t, name+"/cache-4", NewCSRLazy(g, 4), exact)
	}
}

// Differential: the landmark oracle with K = M (every node a landmark) is
// exact — the promised degenerate case.
func TestLandmarkKEqualsMExact(t *testing.T) {
	r := stats.NewRNG(7)
	g, err := topology.Random(100, 0.1, topology.DefaultWeights, r)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewLandmark(g, g.N(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if lm.K() != g.N() {
		t.Fatalf("K() = %d, want %d", lm.K(), g.N())
	}
	diffAgainstAllPairs(t, "landmark-K=M", lm, topology.AllPairs(g, 0))
}

// The landmark estimate is an upper bound on the true distance, never an
// underestimate, and is exact whenever one endpoint is a landmark.
func TestLandmarkUpperBound(t *testing.T) {
	r := stats.NewRNG(11)
	g, err := topology.PowerLaw(200, 2, topology.DefaultWeights, r)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewLandmark(g, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact := topology.AllPairs(g, 0)
	isLandmark := make(map[int32]bool)
	for _, id := range lm.Landmarks() {
		isLandmark[id] = true
	}
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			est, want := lm.At(i, j), exact.At(i, j)
			if est < want {
				t.Fatalf("At(%d,%d) = %d underestimates exact %d", i, j, est, want)
			}
			if (isLandmark[int32(i)] || isLandmark[int32(j)]) && est != want {
				t.Fatalf("At(%d,%d) = %d with landmark endpoint, want exact %d", i, j, est, want)
			}
		}
	}
	ed := lm.ErrorStats(g, 32, 1)
	if ed.Pairs == 0 || ed.MeanRel < 0 || ed.MaxRel < ed.P95Rel || ed.P95Rel < 0 {
		t.Fatalf("implausible error distribution: %+v", ed)
	}
}

// Differential: the tree oracle is bit-identical to AllPairs on random
// recursive trees and the deterministic tree fixtures.
func TestTreeMatchesAllPairs(t *testing.T) {
	r := stats.NewRNG(3)
	for _, n := range []int{1, 2, 3, 17, 180} {
		g, err := topology.RandomTree(n, topology.DefaultWeights, r)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTree(g)
		if err != nil {
			t.Fatal(err)
		}
		diffAgainstAllPairs(t, "random-tree", tr, topology.AllPairs(g, 0))
	}
	for name, g := range map[string]*topology.Graph{
		"star": topology.Star(50),
		"line": topology.Line(64),
	} {
		tr, err := NewTree(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		diffAgainstAllPairs(t, name, tr, topology.AllPairs(g, 0))
	}
}

func TestIsTreeAndBuildSelection(t *testing.T) {
	r := stats.NewRNG(5)
	tree, err := topology.RandomTree(300, topology.DefaultWeights, r)
	if err != nil {
		t.Fatal(err)
	}
	if !IsTree(tree) {
		t.Fatal("RandomTree output not recognized as tree")
	}
	ring := topology.Ring(10)
	if IsTree(ring) {
		t.Fatal("ring misclassified as tree")
	}
	if _, err := NewTree(ring); err == nil {
		t.Fatal("NewTree accepted a ring")
	}

	// Auto selection: tree -> Tree, small non-tree -> dense, large
	// non-tree -> CSR. Auto must never pick the approximate oracle.
	c, err := Build(tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Kind(c) != "tree" {
		t.Fatalf("auto on tree picked %s", Kind(c))
	}
	c, err = Build(ring, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Kind(c) != "dense" {
		t.Fatalf("auto on small ring picked %s", Kind(c))
	}
	big, err := topology.PowerLaw(DenseAutoThreshold+1, 2, topology.DefaultWeights, r)
	if err != nil {
		t.Fatal(err)
	}
	c, err = Build(big, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Kind(c) != "csr-lazy" {
		t.Fatalf("auto on large graph picked %s", Kind(c))
	}
	c, err = Build(ring, Options{Mode: ModeLandmark, Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if Kind(c) != "landmark" {
		t.Fatalf("explicit landmark picked %s", Kind(c))
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"auto": ModeAuto, "": ModeAuto, "dense": ModeDense,
		"csr": ModeCSR, "csr-lazy": ModeCSR, "landmark": ModeLandmark, "tree": ModeTree,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted bogus")
	}
	for _, m := range []Mode{ModeAuto, ModeDense, ModeCSR, ModeLandmark, ModeTree} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Fatalf("round trip %v -> %q -> %v, %v", m, m.String(), back, err)
		}
	}
}

// Concurrent Row/At/InvalidateRow hammering with a tiny cache: exercises
// the in-flight dedup and eviction paths under the race detector, and
// checks every returned value stays exact.
func TestCSRLazyConcurrent(t *testing.T) {
	r := stats.NewRNG(9)
	g, err := topology.Random(80, 0.1, topology.DefaultWeights, r)
	if err != nil {
		t.Fatal(err)
	}
	exact := topology.AllPairs(g, 0)
	c := NewCSRLazy(g, 3)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := stats.NewRNG(seed)
			for it := 0; it < 400; it++ {
				i, j := rr.Intn(80), rr.Intn(80)
				switch it % 3 {
				case 0:
					if got := c.At(i, j); got != exact.At(i, j) {
						errs <- "At mismatch"
						return
					}
				case 1:
					row := c.Row(i)
					if row[j] != exact.At(i, j) {
						errs <- "Row mismatch"
						return
					}
				case 2:
					c.InvalidateRow(i)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	st := c.Stats()
	if st.CachedRows > 3 {
		t.Fatalf("cache exceeded bound: %+v", st)
	}
	if st.Misses == 0 {
		t.Fatalf("expected misses, got %+v", st)
	}
}

// Invalidation forces a recompute (a fresh miss) and out-of-range ids are
// harmless no-ops.
func TestCSRLazyInvalidate(t *testing.T) {
	g := topology.Grid(6, 6)
	c := NewCSRLazy(g, 16)
	_ = c.Row(5)
	before := c.Stats()
	c.InvalidateRow(5)
	c.InvalidateRow(-1)
	c.InvalidateRow(10_000)
	if got := c.Stats(); got.CachedRows != before.CachedRows-1 {
		t.Fatalf("invalidate did not drop the row: %+v -> %+v", before, got)
	}
	_ = c.Row(5)
	if got := c.Stats(); got.Misses != before.Misses+1 {
		t.Fatalf("re-fetch after invalidate should miss: %+v -> %+v", before, got)
	}
	// The interface seam the online layer uses.
	var _ replication.RowInvalidator = c
	var _ replication.RowCostFn = c
}

// topology.AllPairs overflow guard: n beyond MaxDenseNodes must panic
// loudly instead of silently wrapping int32 index math. (Constructing the
// guard case via Build returns an error instead.)
func TestDenseOverflowGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AllPairs beyond MaxDenseNodes did not panic")
		}
	}()
	g := topology.NewGraph(topology.MaxDenseNodes + 1)
	topology.AllPairs(g, 1)
}
