// Package distoracle provides pluggable distance oracles behind the
// replication.CostFn seam, breaking the O(M²) dense-matrix wall that caps
// instances near M≈1000.
//
// The mechanism in the paper only ever needs per-agent distance rows and
// nearest-replica lookups, never the full matrix at once, so the package
// offers three storage/accuracy trade-offs:
//
//   - CSRLazy: the graph in compressed-sparse-row form plus an on-demand
//     Dijkstra per row with a bounded LRU row cache. Exact, O(M) memory per
//     cached row; concurrent callers compute distinct rows in parallel.
//   - Landmark: K landmarks chosen by farthest-point sampling, K×M stored
//     rows, d(i,j) ≈ min_L d(i,L)+d(L,j). Approximate (an upper bound on
//     the true distance) with a measurable error distribution; degenerates
//     to exact when K = M.
//   - Tree: Euler tour + LCA sparse table for tree graphs. Exact, O(M log M)
//     build, O(1) query, no per-pair storage at all.
//
// Build selects an oracle automatically: exact tree oracle for trees, the
// dense matrix below DenseAutoThreshold nodes (bit-identical with the
// historical behavior), CSRLazy above it. Approximate oracles are never
// auto-selected — an approximation must be an explicit caller choice.
package distoracle

import (
	"fmt"

	"repro/internal/replication"
	"repro/internal/topology"
)

// Mode selects an oracle implementation.
type Mode int

const (
	// ModeAuto picks Tree for trees, dense below DenseAutoThreshold,
	// CSRLazy otherwise. Never selects an approximate oracle.
	ModeAuto Mode = iota
	// ModeDense builds the full topology.AllPairs matrix.
	ModeDense
	// ModeCSR builds the lazy CSR + LRU-row-cache oracle.
	ModeCSR
	// ModeLandmark builds the approximate K-landmark oracle.
	ModeLandmark
	// ModeTree builds the exact LCA tree oracle (errors on non-trees).
	ModeTree
)

// String returns the CLI spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeDense:
		return "dense"
	case ModeCSR:
		return "csr"
	case ModeLandmark:
		return "landmark"
	case ModeTree:
		return "tree"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the CLI spelling of a mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "auto", "":
		return ModeAuto, nil
	case "dense":
		return ModeDense, nil
	case "csr", "csr-lazy":
		return ModeCSR, nil
	case "landmark":
		return ModeLandmark, nil
	case "tree":
		return ModeTree, nil
	}
	return ModeAuto, fmt.Errorf("distoracle: unknown oracle %q (want auto|dense|csr|landmark|tree)", s)
}

// DenseAutoThreshold is the node count at or below which ModeAuto keeps the
// dense matrix: small instances fit comfortably in O(M²) and every
// historical result stays bit-identical. Above it, auto switches to the
// exact lazy CSR oracle.
const DenseAutoThreshold = 1024

// DefaultLandmarks is the landmark count used when Options.Landmarks is
// unset. 32 rows keeps memory at O(32·M) while the farthest-point spread
// covers the graph's periphery well on the paper's topology families.
const DefaultLandmarks = 32

// DefaultRowCacheRows bounds the CSRLazy cache when Options.RowCacheRows is
// unset. 256 rows serve the solver's working set (broadcast columns plus
// the arena build's row streams) while capping memory at O(256·M).
const DefaultRowCacheRows = 256

// Options configures Build.
type Options struct {
	// Mode selects the oracle; ModeAuto (the zero value) auto-selects an
	// exact oracle from the graph's shape.
	Mode Mode
	// Landmarks is the K for ModeLandmark; DefaultLandmarks if <= 0,
	// clamped to the node count. K = M is exact.
	Landmarks int
	// RowCacheRows bounds the CSRLazy LRU cache; DefaultRowCacheRows if
	// <= 0.
	RowCacheRows int
	// Workers bounds build-time parallelism (dense fan-out, landmark row
	// sweeps); <= 0 selects GOMAXPROCS.
	Workers int
}

// Build constructs the selected distance oracle over g. The result always
// implements replication.CostFn; dense and CSR results additionally
// implement replication.RowCostFn, and CSR implements
// replication.RowInvalidator.
func Build(g *topology.Graph, opts Options) (replication.CostFn, error) {
	mode := opts.Mode
	if mode == ModeAuto {
		switch {
		case IsTree(g):
			mode = ModeTree
		case g.N() <= DenseAutoThreshold:
			mode = ModeDense
		default:
			mode = ModeCSR
		}
	}
	switch mode {
	case ModeDense:
		if g.N() > topology.MaxDenseNodes {
			return nil, fmt.Errorf("distoracle: dense oracle needs n <= %d, got %d (use csr or landmark)",
				topology.MaxDenseNodes, g.N())
		}
		return topology.AllPairs(g, opts.Workers), nil
	case ModeCSR:
		return NewCSRLazy(g, opts.RowCacheRows), nil
	case ModeLandmark:
		return NewLandmark(g, opts.Landmarks, opts.Workers)
	case ModeTree:
		return NewTree(g)
	}
	return nil, fmt.Errorf("distoracle: invalid mode %v", opts.Mode)
}

// Kind names the concrete oracle behind a CostFn, for logs and result
// metadata.
func Kind(c replication.CostFn) string {
	switch c.(type) {
	case *topology.DistMatrix:
		return "dense"
	case *CSRLazy:
		return "csr-lazy"
	case *Landmark:
		return "landmark"
	case *Tree:
		return "tree"
	}
	return fmt.Sprintf("%T", c)
}
