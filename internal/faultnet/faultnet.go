// Package faultnet injects deterministic faults into net.Conn links for
// testing distributed protocols under failure: per-agent message drop
// (severing the link — on a reliable in-order stream a lost frame is
// indistinguishable from a broken connection), fixed delivery delay,
// crash-at-round schedules, refused dials and truncated frames.
//
// The package is a leaf: it depends only on the standard library and the
// deterministic RNG substrate, so both the engines (internal/agtram) and
// the registry options (internal/solver) can share one Config type without
// an import cycle. All randomness derives from Config.Seed and the agent
// id, so a fault schedule replays bit-for-bit.
package faultnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/stats"
)

// Config describes the faults to inject into a set of agent links. A nil
// *Config (or the zero value) injects nothing — engines accept it on every
// path and the fault-free run stays bit-identical to the in-process solve.
//
// The *All fields apply to every agent; the per-agent maps override them
// for individual agents. Crash, dial-failure and truncation schedules are
// per-agent only, since they name a specific victim.
type Config struct {
	// Seed seeds the per-link RNGs (mixed with the agent id), making drop
	// schedules reproducible.
	Seed int64
	// DropAll is the probability, in [0,1], that any single write on an
	// agent's link severs the connection.
	DropAll float64
	// Drop overrides DropAll per agent id.
	Drop map[int]float64
	// DelayAll is slept before every write on every agent's link,
	// modelling a slow or congested path.
	DelayAll time.Duration
	// Delay overrides DelayAll per agent id.
	Delay map[int]time.Duration
	// CrashAtRound maps agent id -> the 1-based protocol round at whose
	// start the agent crashes: it closes its link instead of bidding.
	CrashAtRound map[int]int
	// FailDial marks agents whose dial/connect always fails, modelling an
	// unroutable host.
	FailDial map[int]bool
	// TruncateAfter maps agent id -> a byte budget: the link delivers
	// exactly that many bytes of the agent's output, then severs
	// mid-frame, leaving the reader a truncated gob message.
	TruncateAfter map[int]int
}

// Enabled reports whether the config injects any fault at all. Nil-safe.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.DropAll > 0 || len(c.Drop) > 0 ||
		c.DelayAll > 0 || len(c.Delay) > 0 ||
		len(c.CrashAtRound) > 0 || len(c.FailDial) > 0 || len(c.TruncateAfter) > 0
}

// DropProb returns the per-write sever probability for the agent. Nil-safe.
func (c *Config) DropProb(agent int) float64 {
	if c == nil {
		return 0
	}
	if p, ok := c.Drop[agent]; ok {
		return p
	}
	return c.DropAll
}

// DelayFor returns the per-write delay for the agent. Nil-safe.
func (c *Config) DelayFor(agent int) time.Duration {
	if c == nil {
		return 0
	}
	if d, ok := c.Delay[agent]; ok {
		return d
	}
	return c.DelayAll
}

// CrashRound returns the 1-based round at which the agent crashes, or 0
// when it never does. Nil-safe.
func (c *Config) CrashRound(agent int) int {
	if c == nil {
		return 0
	}
	return c.CrashAtRound[agent]
}

// DialFails reports whether the agent's dial is scheduled to fail. Nil-safe.
func (c *Config) DialFails(agent int) bool {
	if c == nil {
		return false
	}
	return c.FailDial[agent]
}

// TruncateBudget returns the agent's delivery byte budget, if one is set.
// Nil-safe.
func (c *Config) TruncateBudget(agent int) (int, bool) {
	if c == nil {
		return 0, false
	}
	b, ok := c.TruncateAfter[agent]
	return b, ok
}

// wrapNeeded reports whether the agent's link needs a write-path wrapper.
// Crash/dial faults are enforced by the protocol loops, not the conn.
func (c *Config) wrapNeeded(agent int) bool {
	if c == nil {
		return false
	}
	if c.DropProb(agent) > 0 || c.DelayFor(agent) > 0 {
		return true
	}
	_, trunc := c.TruncateBudget(agent)
	return trunc
}

// Conn injects the configured write-path faults of one agent into an
// underlying connection. Reads pass through untouched: the wrapper sits on
// the agent side of a link, where outbound messages are the ones a lossy
// network would damage.
type Conn struct {
	net.Conn
	agent int
	cfg   *Config

	mu      sync.Mutex
	rng     *stats.RNG
	written int
	severed bool
}

// Wrap returns conn unchanged when cfg schedules no write-path faults for
// the agent, and a fault-injecting wrapper otherwise.
func Wrap(conn net.Conn, agent int, cfg *Config) net.Conn {
	if !cfg.wrapNeeded(agent) {
		return conn
	}
	return &Conn{
		Conn:  conn,
		agent: agent,
		cfg:   cfg,
		rng:   stats.NewRNG(stats.Mix64(cfg.Seed, int64(agent)+0x5eed)),
	}
}

// Write delivers b through the fault schedule: sleep the configured delay,
// maybe sever the link instead of writing, and never deliver more than the
// truncation budget. A severed or truncated link is closed, so the peer
// observes a broken stream rather than a silent gap (on TCP a lost frame
// and a dead peer look the same).
func (c *Conn) Write(b []byte) (int, error) {
	if d := c.cfg.DelayFor(c.agent); d > 0 {
		time.Sleep(d)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.severed {
		return 0, fmt.Errorf("faultnet: agent %d link already severed", c.agent)
	}
	if p := c.cfg.DropProb(c.agent); p > 0 && c.rng.Float64() < p {
		c.severed = true
		c.Conn.Close()
		return 0, fmt.Errorf("faultnet: agent %d link severed (injected drop)", c.agent)
	}
	if budget, ok := c.cfg.TruncateBudget(c.agent); ok && c.written+len(b) > budget {
		keep := budget - c.written
		if keep < 0 {
			keep = 0
		}
		n, _ := c.Conn.Write(b[:keep])
		c.written += n
		c.severed = true
		c.Conn.Close()
		return n, fmt.Errorf("faultnet: agent %d link truncated after %d bytes (injected)", c.agent, budget)
	}
	n, err := c.Conn.Write(b)
	c.written += n
	return n, err
}
