package faultnet

import (
	"net"
	"testing"
	"time"
)

func TestNilConfigIsInert(t *testing.T) {
	var c *Config
	if c.Enabled() {
		t.Fatal("nil config enabled")
	}
	if c.DropProb(3) != 0 || c.DelayFor(3) != 0 || c.CrashRound(3) != 0 || c.DialFails(3) {
		t.Fatal("nil config injects faults")
	}
	if _, ok := c.TruncateBudget(3); ok {
		t.Fatal("nil config truncates")
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if Wrap(a, 3, c) != a {
		t.Fatal("nil config wrapped the conn")
	}
	if Wrap(a, 3, &Config{}) != a {
		t.Fatal("zero config wrapped the conn")
	}
}

func TestPerAgentOverridesAll(t *testing.T) {
	c := &Config{
		DropAll:  0.5,
		Drop:     map[int]float64{1: 0},
		DelayAll: time.Second,
		Delay:    map[int]time.Duration{1: 0},
	}
	if !c.Enabled() {
		t.Fatal("config with faults not enabled")
	}
	if c.DropProb(1) != 0 || c.DropProb(2) != 0.5 {
		t.Fatalf("drop override wrong: %v %v", c.DropProb(1), c.DropProb(2))
	}
	if c.DelayFor(1) != 0 || c.DelayFor(2) != time.Second {
		t.Fatalf("delay override wrong: %v %v", c.DelayFor(1), c.DelayFor(2))
	}
}

func TestDropSeversDeterministically(t *testing.T) {
	sever := func() int {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		go func() { // drain so pipe writes complete
			buf := make([]byte, 64)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		w := Wrap(a, 7, &Config{Seed: 42, Drop: map[int]float64{7: 0.5}})
		for i := 1; i <= 100; i++ {
			if _, err := w.Write([]byte("x")); err != nil {
				return i
			}
		}
		return 0
	}
	first := sever()
	if first == 0 {
		t.Fatal("p=0.5 link never severed in 100 writes")
	}
	if again := sever(); again != first {
		t.Fatalf("sever point not deterministic: %d vs %d", first, again)
	}
	// A severed link stays severed.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	w := Wrap(a, 7, &Config{Seed: 42, Drop: map[int]float64{7: 1}})
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("p=1 write survived")
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write on severed link survived")
	}
}

func TestTruncateAfterBudget(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		total := 0
		for {
			n, err := b.Read(buf[total:])
			total += n
			if err != nil {
				got <- buf[:total]
				return
			}
		}
	}()
	w := Wrap(a, 2, &Config{TruncateAfter: map[int]int{2: 5}})
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatalf("write under budget failed: %v", err)
	}
	if n, err := w.Write([]byte("defgh")); err == nil || n != 2 {
		t.Fatalf("truncating write: n=%d err=%v, want n=2 and an error", n, err)
	}
	if s := string(<-got); s != "abcde" {
		t.Fatalf("peer received %q, want exactly the 5-byte budget", s)
	}
}

func TestDelaySleepsPerWrite(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		buf := make([]byte, 8)
		b.Read(buf)
	}()
	w := Wrap(a, 0, &Config{DelayAll: 30 * time.Millisecond})
	start := time.Now()
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("write returned after %v, want >= 30ms delay", d)
	}
}
