package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/testutil"
)

// echoEndpoint serves an "echo" method that returns its request, and a
// "boom" method that always fails.
func echoEndpoint(t *testing.T, codec Codec) *Endpoint {
	t.Helper()
	ep := NewEndpoint(codec)
	HandleFunc(ep, "echo", func(ctx context.Context, req *echoMsg) (any, error) {
		return &echoMsg{Text: req.Text, N: req.N + 1}, nil
	})
	HandleFunc(ep, "boom", func(ctx context.Context, req *echoMsg) (any, error) {
		return nil, errors.New("handler exploded")
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep.Serve(lis)
	t.Cleanup(ep.Close)
	return ep
}

type echoMsg struct {
	Text string
	N    int
}

func TestRPCRoundTripBothCodecs(t *testing.T) {
	testutil.LeakCheck(t)
	for _, codec := range []Codec{CodecGob, CodecJSON} {
		t.Run(string(codec), func(t *testing.T) {
			ep := echoEndpoint(t, codec)
			c := NewClient(ep.Addr(), codec, nil)
			defer c.Close()
			for i := 0; i < 5; i++ {
				var rep echoMsg
				if err := c.Call(context.Background(), "echo", &echoMsg{Text: "hi", N: i}, &rep); err != nil {
					t.Fatalf("call %d: %v", i, err)
				}
				if rep.Text != "hi" || rep.N != i+1 {
					t.Fatalf("call %d: got %+v", i, rep)
				}
			}
		})
	}
}

func TestRPCRemoteError(t *testing.T) {
	testutil.LeakCheck(t)
	ep := echoEndpoint(t, CodecGob)
	c := NewClient(ep.Addr(), CodecGob, nil)
	defer c.Close()

	err := c.Call(context.Background(), "boom", &echoMsg{}, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if !strings.Contains(remote.Msg, "handler exploded") {
		t.Fatalf("remote error lost the message: %v", remote)
	}
	// A remote error does not poison the connection: the next call works.
	var rep echoMsg
	if err := c.Call(context.Background(), "echo", &echoMsg{Text: "after"}, &rep); err != nil {
		t.Fatalf("call after remote error: %v", err)
	}
}

func TestRPCUnknownMethod(t *testing.T) {
	testutil.LeakCheck(t)
	ep := echoEndpoint(t, CodecJSON)
	c := NewClient(ep.Addr(), CodecJSON, nil)
	defer c.Close()
	err := c.Call(context.Background(), "nope", &echoMsg{}, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "unknown method") {
		t.Fatalf("want unknown-method RemoteError, got %v", err)
	}
}

func TestRPCConcurrentClients(t *testing.T) {
	testutil.LeakCheck(t)
	ep := echoEndpoint(t, CodecGob)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := NewClient(ep.Addr(), CodecGob, nil)
			defer cl.Close()
			for i := 0; i < 20; i++ {
				var rep echoMsg
				if err := cl.Call(context.Background(), "echo", &echoMsg{N: c*100 + i}, &rep); err != nil {
					t.Errorf("client %d call %d: %v", c, i, err)
					return
				}
				if rep.N != c*100+i+1 {
					t.Errorf("client %d call %d: got %d", c, i, rep.N)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestRPCRedialAfterEndpointRestart(t *testing.T) {
	testutil.LeakCheck(t)
	ep := NewEndpoint(CodecGob)
	HandleFunc(ep, "echo", func(ctx context.Context, req *echoMsg) (any, error) {
		return req, nil
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep.Serve(lis)
	addr := ep.Addr()

	c := NewClient(addr, CodecGob, nil)
	defer c.Close()
	if err := c.Call(context.Background(), "echo", &echoMsg{Text: "one"}, &echoMsg{}); err != nil {
		t.Fatal(err)
	}
	ep.Close()

	// Dead endpoint: calls fail with a transport error, not a hang.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	err = c.Call(ctx, "echo", &echoMsg{Text: "two"}, &echoMsg{})
	cancel()
	if err == nil {
		t.Fatal("call against a closed endpoint succeeded")
	}
	var remote *RemoteError
	if errors.As(err, &remote) {
		t.Fatalf("transport failure misreported as remote error: %v", err)
	}

	// Restart on the same address: the client redials transparently.
	ep2 := NewEndpoint(CodecGob)
	HandleFunc(ep2, "echo", func(ctx context.Context, req *echoMsg) (any, error) {
		return req, nil
	})
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	ep2.Serve(lis2)
	defer ep2.Close()
	if err := c.Call(context.Background(), "echo", &echoMsg{Text: "three"}, &echoMsg{}); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
}

func TestRPCFaultyDialerFailDial(t *testing.T) {
	testutil.LeakCheck(t)
	ep := echoEndpoint(t, CodecGob)
	faults := &faultnet.Config{FailDial: map[int]bool{3: true}}

	blocked := NewClient(ep.Addr(), CodecGob, FaultyDialer(faults, 3))
	defer blocked.Close()
	if err := blocked.Call(context.Background(), "echo", &echoMsg{}, nil); err == nil {
		t.Fatal("FailDial peer dialed successfully")
	}

	open := NewClient(ep.Addr(), CodecGob, FaultyDialer(faults, 4))
	defer open.Close()
	if err := open.Call(context.Background(), "echo", &echoMsg{}, &echoMsg{}); err != nil {
		t.Fatalf("fault-free peer failed: %v", err)
	}
}

func TestRPCTruncatedLinkFailsCall(t *testing.T) {
	testutil.LeakCheck(t)
	ep := echoEndpoint(t, CodecGob)
	// The link delivers 10 bytes then goes silent mid-frame: the call must
	// fail by deadline, not hang.
	faults := &faultnet.Config{TruncateAfter: map[int]int{1: 10}}
	c := NewClient(ep.Addr(), CodecGob, FaultyDialer(faults, 1))
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := c.Call(ctx, "echo", &echoMsg{Text: strings.Repeat("x", 100)}, &echoMsg{}); err == nil {
		t.Fatal("call over a truncated link succeeded")
	}
}

// TestRPCSteadyStateAllocs pins the transport's allocation budget: after
// warm-up, a round-trip reuses the client's and the connection's frame
// buffers, so the only per-call allocations left are the codec's own (gob
// re-sends type info per message). The bound has headroom over the measured
// ~350 — it exists to catch the envelope regressing to per-call buffer or
// double-encode allocations (BENCH_9 measured 47k allocs/op for a 2-shard
// solve before frames were pooled).
func TestRPCSteadyStateAllocs(t *testing.T) {
	testutil.LeakCheck(t)
	ep := echoEndpoint(t, CodecGob)
	c := NewClient(ep.Addr(), CodecGob, nil)
	defer c.Close()
	var rep echoMsg
	for i := 0; i < 5; i++ {
		if err := c.Call(context.Background(), "echo", &echoMsg{Text: "warm", N: i}, &rep); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.Call(context.Background(), "echo", &echoMsg{Text: "steady", N: 1}, &rep); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 500 {
		t.Errorf("steady-state RPC round-trip allocates %.0f objects (budget 500)", allocs)
	}
	sent, recv := c.WireBytes()
	if sent == 0 || recv == 0 {
		t.Errorf("wire byte counters not advancing: sent=%d recv=%d", sent, recv)
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	// Read side: a length prefix past maxFrame is rejected before any
	// allocation, so a hostile or corrupt peer cannot OOM the daemon.
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(maxFrame+1))
	var scratch []byte
	if _, _, err := readFrame(&buf, &scratch); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	if scratch != nil {
		t.Fatal("oversized frame length allocated a buffer")
	}
}

func TestParseCodec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Codec
		err  bool
	}{
		{"", CodecGob, false},
		{"gob", CodecGob, false},
		{"json", CodecJSON, false},
		{"xml", "", true},
	} {
		got, err := ParseCodec(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseCodec(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestEndpointCloseUnblocksInFlight(t *testing.T) {
	testutil.LeakCheck(t)
	ep := NewEndpoint(CodecGob)
	started := make(chan struct{})
	HandleFunc(ep, "slow", func(ctx context.Context, req *echoMsg) (any, error) {
		close(started)
		<-ctx.Done() // blocks until Close cancels the endpoint context
		return nil, fmt.Errorf("canceled: %w", ctx.Err())
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep.Serve(lis)

	c := NewClient(ep.Addr(), CodecGob, nil)
	defer c.Close()
	errc := make(chan error, 1)
	go func() { errc <- c.Call(context.Background(), "slow", &echoMsg{}, nil) }()
	<-started
	ep.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("in-flight call returned nil after endpoint close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call still blocked after endpoint close")
	}
}
