package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/hierarchy"
	"repro/internal/online"
	"repro/internal/replication"
)

// ShardConfig tunes one shard daemon.
type ShardConfig struct {
	// Codec is the RPC codec (must match the coordinator's).
	Codec Codec
	// Controller configures the regional online controller rebuilt on every
	// assignment: method, engine, seed, drift threshold, Glauber sweeps —
	// the same vocabulary as the single daemon.
	Controller online.Config
	// Coordinator is the coordinator's RPC address. Empty runs the shard
	// standalone-autonomous from the start (no probes, no degradation
	// switch — there is nothing to degrade from).
	Coordinator string
	// ProbeTimeout and DeathThreshold tune the coordinator failure
	// detector (Membership defaults apply).
	ProbeTimeout   time.Duration
	DeathThreshold int
	// Dial overrides the dialer toward the coordinator (fault injection).
	Dial func(peer Peer) DialFunc
}

// Shard runs one regional AGT-RAM game: an online controller over the
// compacted M'×N' sub-instance the coordinator assigned, exposed over the
// RPC endpoint. The controller, its arenas and the distance-oracle view are
// all sized to the region; RPC requests and replies carry global ids and are
// translated through the assignment's index mapping at this boundary. In
// hierarchical mode the coordinator decides when to solve; when the
// coordinator stops answering probes the shard degrades to autonomous mode
// — the paper's failure story — and re-solves itself on drift, exactly like
// a single daemon, until the coordinator comes back and re-assigns.
type Shard struct {
	id   int
	cost replication.CostFn
	cfg  ShardConfig
	ep   *Endpoint

	mu         sync.Mutex
	ctrl       *online.Controller
	region     *online.CompactRegion // guarded by mu, swapped with ctrl
	members    []int32
	memberOf   []bool // indexed by global server id
	assignVer  uint64
	mode       hierarchy.Mode
	assigns    int64
	selfSolves int64
	closed     bool

	coord *Membership // probes the coordinator; nil when standalone

	solveKick  chan struct{}
	loopCancel context.CancelFunc
	wg         sync.WaitGroup
}

// ErrUnassigned reports shard operations before the first assignment.
var ErrUnassigned = errors.New("cluster: shard has no assignment yet")

// NewShard builds a shard over the instance's cost oracle (both sides of
// the cluster construct the oracle from the shared instance configuration;
// only runtime state crosses the wire). Call Serve to accept RPCs and Start
// to run the coordinator failure detector.
func NewShard(id int, cost replication.CostFn, cfg ShardConfig) *Shard {
	s := &Shard{
		id:        id,
		cost:      cost,
		cfg:       cfg,
		ep:        NewEndpoint(cfg.Codec),
		mode:      hierarchy.Hierarchical,
		solveKick: make(chan struct{}, 1),
	}
	if cfg.Coordinator == "" {
		s.mode = hierarchy.Autonomous
	} else {
		s.coord = NewMembership([]Peer{{ID: id, Addr: cfg.Coordinator}}, MembershipConfig{
			Codec:          cfg.Codec,
			ProbeTimeout:   cfg.ProbeTimeout,
			DeathThreshold: cfg.DeathThreshold,
			Dial:           cfg.Dial,
			OnChange: func(_ Peer, _, to PeerState) {
				switch to {
				case Dead:
					s.setMode(hierarchy.Autonomous)
				case Alive:
					s.setMode(hierarchy.Hierarchical)
				}
			},
		})
	}
	HandleFunc(s.ep, MethodPing, s.handlePing)
	HandleFunc(s.ep, MethodAssign, s.handleAssign)
	HandleFunc(s.ep, MethodDeltas, s.handleDeltas)
	HandleFunc(s.ep, MethodSolve, s.handleSolve)
	HandleFunc(s.ep, MethodPlacement, s.handlePlacement)
	HandleFunc(s.ep, MethodMetrics, s.handleMetrics)
	HandleFunc(s.ep, MethodRoute, s.handleRoute)
	return s
}

// ID returns the shard id.
func (s *Shard) ID() int { return s.id }

// Serve starts accepting RPCs on lis.
func (s *Shard) Serve(lis net.Listener) { s.ep.Serve(lis) }

// Addr returns the RPC listen address.
func (s *Shard) Addr() string { return s.ep.Addr() }

// Start launches the background loops: the coordinator failure detector
// (when configured) and the autonomous self-solve worker.
func (s *Shard) Start(ctx context.Context, probeInterval time.Duration) {
	ctx, cancel := context.WithCancel(ctx)
	s.loopCancel = cancel
	if s.coord != nil {
		s.coord.Start(ctx, probeInterval)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-s.solveKick:
			}
			if _, err := s.SolveNow(ctx); err != nil && ctx.Err() != nil {
				return
			}
		}
	}()
}

// ProbeCoordinator runs one probe round against the coordinator — the
// deterministic test hook for the degradation switch. No-op when standalone.
func (s *Shard) ProbeCoordinator(ctx context.Context) {
	if s.coord != nil {
		s.coord.ProbeOnce(ctx)
	}
}

// Mode reports the shard's current coordination mode.
func (s *Shard) Mode() hierarchy.Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

func (s *Shard) setMode(m hierarchy.Mode) {
	s.mu.Lock()
	s.mode = m
	s.mu.Unlock()
}

// AssignVersion reports the assignment generation the shard runs (0 before
// the first assignment).
func (s *Shard) AssignVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.assignVer
}

// controller returns the live regional controller, or nil before the first
// assignment.
func (s *Shard) controller() *online.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl
}

func (s *Shard) handlePing(ctx context.Context, req *PingRequest) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &PingReply{Role: "shard", Shard: s.id, Assign: s.assignVer, Mode: s.mode.String()}
	if s.ctrl != nil {
		rep.Version = s.ctrl.Current().Version
	}
	return rep, nil
}

// handleAssign installs a new region: a fresh controller over the compacted
// sub-instance, the shipped region-local placement carried onto it. Stale
// generations (version at or below the current one) are rejected so a
// delayed re-send cannot roll the shard back.
func (s *Shard) handleAssign(ctx context.Context, req *AssignRequest) (any, error) {
	if req.Region == nil || req.Region.State == nil {
		return nil, errors.New("assign without region sub-instance")
	}
	ctrl, err := online.NewFromCompact(s.cost, req.Region, s.cfg.Controller)
	if err != nil {
		return nil, fmt.Errorf("rebuild controller: %w", err)
	}
	dropped := 0
	if req.Carry != nil {
		dropped = ctrl.InstallPlacement(req.Carry)
	}
	maxID := -1
	for _, i := range req.Members {
		if int(i) > maxID {
			maxID = int(i)
		}
	}
	memberOf := make([]bool, maxID+1)
	for _, i := range req.Members {
		if i >= 0 {
			memberOf[i] = true
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ctrl.Close()
		return nil, errClosed
	}
	if req.Version <= s.assignVer {
		cur := s.assignVer
		s.mu.Unlock()
		ctrl.Close()
		return nil, fmt.Errorf("stale assignment %d (running %d)", req.Version, cur)
	}
	old := s.ctrl
	s.ctrl = ctrl
	s.region = req.Region
	s.assignVer = req.Version
	s.members = append([]int32(nil), req.Members...)
	s.memberOf = memberOf
	s.assigns++
	s.mu.Unlock()
	if old != nil {
		// Drains the old controller's epoch subscribers; HTTP streamers get a
		// terminal update and resubscribe against the new controller.
		old.Close()
	}
	return &AssignReply{Version: req.Version, Dropped: dropped}, nil
}

// applyGuarded is the shared delta path for the RPC handler and the HTTP
// backend. Deltas arrive in global coordinates; the guards (generation,
// ownership, kind) run on them first, then the batch is translated through
// the region mapping and applied. Add-object deltas extend the object
// mapping, but the extension is committed only after the controller accepted
// the batch — and only if this is still the same assignment — so a rejected
// batch cannot desynchronize mapping and state. Direct posts (assign 0, the
// HTTP backend) may not add objects: global object ids are allocated by the
// coordinator's mirror, which also means concurrent mapping extensions can
// only come from the coordinator's serialized forwarding path.
func (s *Shard) applyGuarded(assign uint64, ds []online.Delta) (online.Applied, error) {
	s.mu.Lock()
	ctrl, region, memberOf, ver, mode := s.ctrl, s.region, s.memberOf, s.assignVer, s.mode
	if ctrl == nil {
		s.mu.Unlock()
		return online.Applied{}, ErrUnassigned
	}
	if assign != 0 && assign != ver {
		s.mu.Unlock()
		return online.Applied{}, fmt.Errorf("cluster: delta batch for assignment %d, shard runs %d", assign, ver)
	}
	for i, d := range ds {
		switch d.Kind {
		case online.KindServerJoin, online.KindServerLeave:
			s.mu.Unlock()
			return online.Applied{}, fmt.Errorf("cluster: delta %d: membership changes go through the coordinator", i)
		case online.KindDemand:
			if d.Server < 0 || d.Server >= len(memberOf) || !memberOf[d.Server] {
				s.mu.Unlock()
				return online.Applied{}, fmt.Errorf("cluster: delta %d: server %d is not a member of shard %d", i, d.Server, s.id)
			}
		case online.KindAddObject:
			if assign == 0 {
				s.mu.Unlock()
				return online.Applied{}, fmt.Errorf("cluster: delta %d: object ids are allocated by the coordinator; add-object goes through it", i)
			}
			if d.Primary < 0 || d.Primary >= len(memberOf) || !memberOf[d.Primary] {
				s.mu.Unlock()
				return online.Applied{}, fmt.Errorf("cluster: delta %d: add-object primary %d is not a member of shard %d", i, d.Primary, s.id)
			}
		}
	}
	local, commit, terr := region.TranslateDeltas(ds)
	s.mu.Unlock()
	if terr != nil {
		return online.Applied{}, terr
	}
	a, err := ctrl.ApplyDeltas(local)
	if err == nil {
		s.mu.Lock()
		if s.region == region {
			commit()
		}
		s.mu.Unlock()
	}
	if err == nil && a.SolveScheduled && mode == hierarchy.Autonomous {
		// Degraded: nobody will call solve for us. Kick the self-solve
		// worker, like the single daemon's drift loop.
		select {
		case s.solveKick <- struct{}{}:
		default:
		}
	}
	return a, err
}

func (s *Shard) handleDeltas(ctx context.Context, req *DeltasRequest) (any, error) {
	a, err := s.applyGuarded(req.Assign, req.Deltas)
	if err != nil {
		return nil, err
	}
	return &a, nil
}

// SolveNow runs the regional game synchronously and reports it. Payments
// come back in region coordinates together with the assignment generation
// they are valid under; ElapsedNs isolates the solve itself from RPC time.
func (s *Shard) SolveNow(ctx context.Context) (*SolveReply, error) {
	s.mu.Lock()
	ctrl, ver := s.ctrl, s.assignVer
	s.mu.Unlock()
	if ctrl == nil {
		return nil, ErrUnassigned
	}
	start := time.Now()
	if err := ctrl.SolveNow(ctx); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	s.mu.Lock()
	s.selfSolves++
	s.mu.Unlock()
	m := ctrl.Metrics()
	return &SolveReply{
		Assign: ver, Version: m.Version, OTC: m.OTC, BaseOTC: m.BaseOTC, Savings: m.Savings,
		Work: m.SolverWork, ElapsedNs: elapsed.Nanoseconds(), Payments: ctrl.LastSolvePayments(),
	}, nil
}

func (s *Shard) handleSolve(ctx context.Context, req *SolveRequest) (any, error) {
	return s.SolveNow(ctx)
}

func (s *Shard) handlePlacement(ctx context.Context, req *PlacementRequest) (any, error) {
	s.mu.Lock()
	ctrl, members, ver := s.ctrl, s.members, s.assignVer
	s.mu.Unlock()
	if ctrl == nil {
		return nil, ErrUnassigned
	}
	e := ctrl.Current()
	return &PlacementReply{
		Assign:   ver,
		Version:  e.Version,
		Members:  append([]int32(nil), members...),
		Matrix:   e.Schema.Matrix(),
		OTC:      e.Schema.TotalCost(),
		BaseOTC:  e.Schema.BaseCost(),
		Savings:  e.Schema.Savings(),
		SavedOTC: e.Schema.BaseCost() - e.Schema.TotalCost(),
		Border:   borderAds(e.Schema),
	}, nil
}

// borderAds advertises every surplus replica the regional game placed with
// its reserve price: the regional OTC increase its removal would cause.
// The merge's boundary exchange re-judges each ad against the merged global
// placement — a replica whose demand is served cheaper by another region's
// copy prices below zero there and is dropped.
func borderAds(sch *replication.Schema) []BorderAd {
	p := sch.Problem()
	var ads []BorderAd
	for k := int32(0); int(k) < p.N; k++ {
		primary := p.Work.Primary[k]
		for _, m := range sch.Replicas(k) {
			if m == primary {
				continue
			}
			ads = append(ads, BorderAd{Object: k, Server: m, Gain: sch.DeltaIfRemoved(k, int(m))})
		}
	}
	return ads
}

func (s *Shard) handleMetrics(ctx context.Context, req *MetricsRequest) (any, error) {
	s.mu.Lock()
	ctrl, region, members, ver, mode := s.ctrl, s.region, s.members, s.assignVer, s.mode
	var regionServers, regionObjects int
	if region != nil {
		regionServers, regionObjects = len(region.Servers), len(region.Objects)
	}
	s.mu.Unlock()
	if ctrl == nil {
		return nil, ErrUnassigned
	}
	return &MetricsReply{
		Shard: s.id, Assign: ver, Mode: mode.String(),
		Members:       append([]int32(nil), members...),
		RegionServers: regionServers, RegionObjects: regionObjects,
		Metrics: ctrl.Metrics(),
	}, nil
}

// routeGlobal answers a nearest-replica query in global coordinates: the
// query is translated into the region, the regional placement answers, and
// the answer is translated back.
func (s *Shard) routeGlobal(server int, object int32) (int32, error) {
	s.mu.Lock()
	ctrl, region := s.ctrl, s.region
	if ctrl == nil {
		s.mu.Unlock()
		return 0, ErrUnassigned
	}
	ls, okS := region.LocalServer(server)
	lk, okK := region.LocalObject(object)
	s.mu.Unlock()
	if !okS {
		return 0, fmt.Errorf("cluster: server %d is not in shard %d's region", server, s.id)
	}
	if !okK {
		return 0, fmt.Errorf("cluster: object %d is not in shard %d's region", object, s.id)
	}
	from, err := ctrl.Route(ls, lk)
	if err != nil {
		return 0, err
	}
	g, ok := region.GlobalServer(int(from))
	if !ok {
		return 0, fmt.Errorf("cluster: route answer %d is outside shard %d's region", from, s.id)
	}
	return int32(g), nil
}

func (s *Shard) handleRoute(ctx context.Context, req *RouteRequest) (any, error) {
	from, err := s.routeGlobal(req.Server, req.Object)
	if err != nil {
		return nil, err
	}
	return &RouteReply{ReadFrom: from}, nil
}

// Close tears the shard down: RPC endpoint first (no new work), then the
// background loops, then the regional controller.
func (s *Shard) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ctrl := s.ctrl
	s.mu.Unlock()
	s.ep.Close()
	if s.loopCancel != nil {
		s.loopCancel()
	}
	s.wg.Wait()
	if s.coord != nil {
		s.coord.Close()
	}
	if ctrl != nil {
		ctrl.Close()
	}
}
