package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/online"
	"repro/internal/server"
)

// ShardInfo is one shard's row in the coordinator's cluster status.
type ShardInfo struct {
	ID    int    `json:"id"`
	Addr  string `json:"addr"`
	State string `json:"state"`
	// Assign, Mode, Members and Metrics come from the shard's metrics RPC;
	// Error carries the RPC failure when the pull did not land.
	Assign  uint64 `json:"assign,omitempty"`
	Mode    string `json:"mode,omitempty"`
	Members int    `json:"members,omitempty"`
	// RegionServers × RegionObjects is the compacted sub-instance shape the
	// shard actually solves (M'×N').
	RegionServers int             `json:"region_servers,omitempty"`
	RegionObjects int             `json:"region_objects,omitempty"`
	Metrics       *online.Metrics `json:"metrics,omitempty"`
	Error         string          `json:"error,omitempty"`
}

// ClusterStatus is the GET /cluster payload: the coordinator's aggregated
// view (membership, assignment, delegate-game accounting, per-shard
// metrics), or a shard's local view of itself.
type ClusterStatus struct {
	Role          string `json:"role"`
	AssignVersion uint64 `json:"assign_version"`
	EpochVersion  uint64 `json:"epoch_version"`
	// Shard-side fields.
	Shard int    `json:"shard,omitempty"`
	Mode  string `json:"mode,omitempty"`
	// Coordinator-side aggregation.
	Merges           int64         `json:"merges,omitempty"`
	Repartitions     int64         `json:"repartitions,omitempty"`
	TopDecisions     int64         `json:"top_decisions,omitempty"`
	LastWinner       int           `json:"last_winner"`
	DelegatePayments map[int]int64 `json:"delegate_payments,omitempty"`
	ForwardErrors    int64         `json:"forward_errors,omitempty"`
	LastError        string        `json:"last_error,omitempty"`
	Shards           []ShardInfo   `json:"shards,omitempty"`
	Payments         []int64       `json:"payments,omitempty"`
}

// Status aggregates the cluster view: membership states locally, per-shard
// metrics over RPC (bounded by ForwardTimeout; a failed pull reports the
// error in the shard's row instead of failing the whole status).
func (co *Coordinator) Status(ctx context.Context) ClusterStatus {
	co.mu.Lock()
	st := ClusterStatus{
		Role:             "coordinator",
		AssignVersion:    co.assignVer,
		Merges:           co.merges,
		Repartitions:     co.repartitions,
		TopDecisions:     co.topDecisions,
		LastWinner:       co.lastWinner,
		ForwardErrors:    co.forwardErrors,
		LastError:        co.lastErr,
		DelegatePayments: make(map[int]int64, len(co.delegatePayments)),
		Payments:         append([]int64(nil), co.lastPayments...),
	}
	for id, p := range co.delegatePayments {
		st.DelegatePayments[id] = p
	}
	co.mu.Unlock()
	st.EpochVersion = co.mirror.Current().Version

	peers := co.membership.Snapshot()
	rows := make([]ShardInfo, len(peers))
	done := make(chan int, len(peers))
	for i, p := range peers {
		rows[i] = ShardInfo{ID: p.ID, Addr: p.Addr, State: p.State.String()}
		if p.State == Dead {
			done <- i
			continue
		}
		go func(i int, id int) {
			cctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
			defer cancel()
			var rep MetricsReply
			if err := co.membership.Client(id).Call(cctx, MethodMetrics, &MetricsRequest{}, &rep); err != nil {
				rows[i].Error = err.Error()
			} else {
				rows[i].Assign = rep.Assign
				rows[i].Mode = rep.Mode
				rows[i].Members = len(rep.Members)
				rows[i].RegionServers = rep.RegionServers
				rows[i].RegionObjects = rep.RegionObjects
				rows[i].Metrics = &rep.Metrics
			}
			done <- i
		}(i, p.ID)
	}
	for range peers {
		<-done
	}
	st.Shards = rows
	return st
}

// HTTPHandler serves GET /cluster on the coordinator's API server (wire it
// with server.Extend).
func (co *Coordinator) HTTPHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		writeStatus(w, co.Status(ctx))
	}
}

// Status reports the shard's local cluster view.
func (s *Shard) Status() ClusterStatus {
	s.mu.Lock()
	st := ClusterStatus{
		Role:          "shard",
		Shard:         s.id,
		AssignVersion: s.assignVer,
		Mode:          s.mode.String(),
		LastWinner:    -1,
	}
	ctrl := s.ctrl
	s.mu.Unlock()
	if ctrl != nil {
		st.EpochVersion = ctrl.Current().Version
	}
	if s.coord != nil {
		for _, p := range s.coord.Snapshot() {
			st.Shards = append(st.Shards, ShardInfo{ID: -1, Addr: p.Addr, State: p.State.String()})
		}
	}
	return st
}

// HTTPHandler serves GET /cluster on the shard's API server.
func (s *Shard) HTTPHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeStatus(w, s.Status())
	}
}

func writeStatus(w http.ResponseWriter, st ClusterStatus) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// Backend adapts the shard to the HTTP facade: the shard daemon serves the
// same endpoint set as the single daemon, answered from its regional
// controller. Requests use global ids and are translated through the
// assignment's index mapping; the epoch stream (Current/Subscribe) is the
// regional controller's and therefore in region-local coordinates — for a
// 1-shard cluster the mapping is the identity, so epoch clients see exactly
// the single daemon's stream. Deltas posted directly to a shard pass the
// same ownership guard as forwarded ones (add-object is coordinator-only:
// global object ids are allocated by the mirror); solves run the regional
// game. The daemon waits for the first assignment (WaitAssigned) before
// serving HTTP, so the controller is always live here.
func (s *Shard) Backend() server.Backend { return shardBackend{s} }

type shardBackend struct{ s *Shard }

func (b shardBackend) Current() *online.Epoch { return b.s.controller().Current() }

func (b shardBackend) Route(server int, object int32) (int32, error) {
	return b.s.routeGlobal(server, object)
}

func (b shardBackend) ApplyDeltas(ds []online.Delta) (online.Applied, error) {
	return b.s.applyGuarded(0, ds)
}

func (b shardBackend) SolveNow(ctx context.Context) error {
	_, err := b.s.SolveNow(ctx)
	return err
}

func (b shardBackend) Metrics() online.Metrics {
	ctrl := b.s.controller()
	if ctrl == nil {
		return online.Metrics{}
	}
	return ctrl.Metrics()
}

func (b shardBackend) Subscribe(since uint64, buf int) *online.Subscription {
	return b.s.controller().Subscribe(since, buf)
}

func (b shardBackend) Unsubscribe(sub *online.Subscription) {
	if ctrl := b.s.controller(); ctrl != nil {
		ctrl.Unsubscribe(sub)
	}
}

func (b shardBackend) DrainSubscribers() {
	if ctrl := b.s.controller(); ctrl != nil {
		ctrl.DrainSubscribers()
	}
}

// WaitAssigned blocks until the shard holds an assignment (or ctx ends) —
// the daemon's gate before serving HTTP from the regional controller.
func (s *Shard) WaitAssigned(ctx context.Context) error {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.controller() != nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}
