// Package cluster shards one DRP instance across daemons: a coordinator
// partitions the servers into communication-cost regions (hierarchy's
// partitioner), ships each region's masked state to a shard daemon over a
// small length-prefixed RPC transport, runs the regional AGT-RAM games
// concurrently, and merges the regional winners through a top-level delegate
// game — the paper's semi-distributed mechanism stretched over processes.
//
// The layer cake, bottom to top:
//
//   - rpc.go: the transport. 4-byte big-endian length-prefixed frames carrying
//     a gob- or JSON-encoded envelope; a synchronous Client with lazy redial
//     and an Endpoint dispatching registered handlers, one goroutine per
//     connection. Dialers compose with internal/faultnet, so the fault
//     matrix drives the same deterministic fault model as the engine tests.
//   - membership.go: static seed list + health probes with a consecutive-
//     failure threshold (Alive → Suspect → Dead, probes recover the peer).
//   - shard.go: one regional game. Holds an online.Controller over the
//     masked state the coordinator assigned, degrades to autonomous
//     self-solves when the coordinator stops answering probes.
//   - coordinator.go: membership + partition + delta forwarding + the
//     fan-out solve and top-level merge, behind the same server.Backend
//     interface the single daemon serves HTTP from.
//
// Determinism boundary: regional games are deterministic in (masked state,
// seed) exactly like the single daemon; the merge is deterministic in the
// set of regional placements. Membership timing (when a probe declares a
// peer dead) is wall-clock and therefore not deterministic — tests pin it by
// calling ProbeOnce/AssignNow/MergeNow explicitly instead of running the
// background loops.
package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/faultnet"
)

// Codec selects the frame payload encoding. Gob is the compact default for
// daemon-to-daemon links; JSON keeps frames greppable for debugging.
type Codec string

// The two codecs.
const (
	CodecGob  Codec = "gob"
	CodecJSON Codec = "json"
)

// ParseCodec validates a -codec flag value ("" means gob).
func ParseCodec(s string) (Codec, error) {
	switch Codec(s) {
	case "", CodecGob:
		return CodecGob, nil
	case CodecJSON:
		return CodecJSON, nil
	default:
		return "", fmt.Errorf("cluster: unknown codec %q (want gob|json)", s)
	}
}

func (c Codec) marshal(v any) ([]byte, error) {
	if c == CodecJSON {
		return json.Marshal(v)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (c Codec) unmarshal(b []byte, v any) error {
	if c == CodecJSON {
		return json.Unmarshal(b, v)
	}
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// maxFrame bounds a single RPC frame: a full M=100k state snapshot with
// dense demand fits comfortably; anything bigger is a protocol error, not a
// bigger buffer.
const maxFrame = 256 << 20

// frame is the wire envelope. Method is set on requests; Err carries a
// remote handler failure on responses. Body is the codec-encoded payload —
// encoded separately from the envelope so handlers decode into their own
// types.
type frame struct {
	ID     uint64
	Method string
	Err    string
	Body   []byte
}

// writeFrame encodes f and writes it length-prefixed (4-byte big-endian).
func writeFrame(w io.Writer, c Codec, f *frame) error {
	b, err := c.marshal(f)
	if err != nil {
		return fmt.Errorf("cluster: encode frame: %w", err)
	}
	if len(b) > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds the %d limit", len(b), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader, c Codec) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("cluster: frame of %d bytes exceeds the %d limit", n, maxFrame)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	f := new(frame)
	if err := c.unmarshal(b, f); err != nil {
		return nil, fmt.Errorf("cluster: decode frame: %w", err)
	}
	return f, nil
}

// RemoteError is a handler failure that crossed the wire: the call reached
// the peer and the peer's handler said no. Transport failures (dial, broken
// connection, deadline) surface as ordinary errors instead, which is how
// callers distinguish "peer rejected it" from "peer unreachable".
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("cluster: %s: %s", e.Method, e.Msg) }

// DialFunc opens a connection to an RPC address.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// NetDialer is the plain TCP dialer.
func NetDialer() DialFunc {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
}

// FaultyDialer wraps the TCP dialer with the faultnet schedule for one peer
// id: FailDial refuses the connect outright, Drop/Delay/Truncate shape the
// write path of every connection — the cluster fault matrix runs on the same
// deterministic fault model as the engine tests. A nil config is fault-free.
func FaultyDialer(cfg *faultnet.Config, peer int) DialFunc {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		if cfg.DialFails(peer) {
			return nil, fmt.Errorf("cluster: injected dial failure to peer %d (%s)", peer, addr)
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return faultnet.Wrap(conn, peer, cfg), nil
	}
}

// Client is a synchronous RPC client over one connection: calls are
// serialized (the cluster's control plane is low-rate; concurrency comes
// from one client per peer), the connection is dialed lazily and redialed
// after any transport error.
type Client struct {
	addr  string
	codec Codec
	dial  DialFunc

	mu     sync.Mutex
	conn   net.Conn
	nextID uint64
}

// NewClient builds a client for one peer address. A nil dial uses plain TCP.
func NewClient(addr string, codec Codec, dial DialFunc) *Client {
	if dial == nil {
		dial = NetDialer()
	}
	return &Client{addr: addr, codec: codec, dial: dial}
}

// Addr returns the peer address the client dials.
func (c *Client) Addr() string { return c.addr }

// Call invokes method on the peer: req is encoded into the request body,
// the response body decoded into resp (ignored when resp is nil). The
// context's deadline bounds the whole exchange; transport errors close the
// connection so the next call redials.
func (c *Client) Call(ctx context.Context, method string, req, resp any) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	if c.conn == nil {
		conn, err := c.dial(ctx, c.addr)
		if err != nil {
			return fmt.Errorf("cluster: dial %s: %w", c.addr, err)
		}
		c.conn = conn
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Time{}
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.dropConn()
		return err
	}

	body, err := c.codec.marshal(req)
	if err != nil {
		return fmt.Errorf("cluster: encode %s request: %w", method, err)
	}
	c.nextID++
	id := c.nextID
	if err := writeFrame(c.conn, c.codec, &frame{ID: id, Method: method, Body: body}); err != nil {
		c.dropConn()
		return fmt.Errorf("cluster: send %s to %s: %w", method, c.addr, err)
	}
	f, err := readFrame(c.conn, c.codec)
	if err != nil {
		c.dropConn()
		return fmt.Errorf("cluster: receive %s from %s: %w", method, c.addr, err)
	}
	if f.ID != id {
		c.dropConn()
		return fmt.Errorf("cluster: response id %d for request %d from %s", f.ID, id, c.addr)
	}
	if f.Err != "" {
		return &RemoteError{Method: method, Msg: f.Err}
	}
	if resp == nil {
		return nil
	}
	if err := c.codec.unmarshal(f.Body, resp); err != nil {
		return fmt.Errorf("cluster: decode %s response: %w", method, err)
	}
	return nil
}

func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Close drops the connection; a later Call redials.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropConn()
}

// Handler serves one RPC method: decode the request from body, return the
// response value (encoded by the endpoint) or an error (sent as a
// RemoteError to the caller).
type Handler func(ctx context.Context, body []byte) (any, error)

// Endpoint is the server side of the transport: a handler registry serving
// framed requests, one goroutine per accepted connection, requests on one
// connection handled in order (each Client is synchronous anyway).
type Endpoint struct {
	codec    Codec
	handlers map[string]Handler

	mu      sync.Mutex
	lis     net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// NewEndpoint builds an endpoint with no handlers registered.
func NewEndpoint(codec Codec) *Endpoint {
	ctx, cancel := context.WithCancel(context.Background())
	return &Endpoint{
		codec:    codec,
		handlers: map[string]Handler{},
		conns:    map[net.Conn]struct{}{},
		baseCtx:  ctx,
		cancel:   cancel,
	}
}

// Handle registers a method handler. Must be called before Serve.
func (e *Endpoint) Handle(method string, h Handler) { e.handlers[method] = h }

// HandleFunc registers a handler with typed request/response decoding: the
// endpoint decodes the request into a fresh Req and encodes whatever the
// handler returns.
func HandleFunc[Req any](e *Endpoint, method string, h func(ctx context.Context, req *Req) (any, error)) {
	e.Handle(method, func(ctx context.Context, body []byte) (any, error) {
		req := new(Req)
		if err := e.codec.unmarshal(body, req); err != nil {
			return nil, fmt.Errorf("decode %s request: %w", method, err)
		}
		return h(ctx, req)
	})
}

// Serve starts accepting on lis and returns immediately; Close stops the
// accept loop, closes every connection and waits for the per-connection
// goroutines (LeakCheck-clean teardown).
func (e *Endpoint) Serve(lis net.Listener) {
	e.mu.Lock()
	e.lis = lis
	e.mu.Unlock()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			e.mu.Lock()
			if e.closed {
				e.mu.Unlock()
				conn.Close()
				return
			}
			e.conns[conn] = struct{}{}
			e.mu.Unlock()
			e.wg.Add(1)
			go e.serveConn(conn)
		}
	}()
}

// Addr returns the listening address (host:port with the resolved port).
func (e *Endpoint) Addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lis == nil {
		return ""
	}
	return e.lis.Addr().String()
}

func (e *Endpoint) serveConn(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
	}()
	for {
		req, err := readFrame(conn, e.codec)
		if err != nil {
			return
		}
		resp := &frame{ID: req.ID}
		if h, ok := e.handlers[req.Method]; !ok {
			resp.Err = fmt.Sprintf("unknown method %q", req.Method)
		} else if v, herr := h(e.baseCtx, req.Body); herr != nil {
			resp.Err = herr.Error()
		} else if v != nil {
			if resp.Body, err = e.codec.marshal(v); err != nil {
				resp.Body, resp.Err = nil, fmt.Sprintf("encode %s response: %v", req.Method, err)
			}
		}
		if err := writeFrame(conn, e.codec, resp); err != nil {
			return
		}
	}
}

// Close stops the endpoint: the listener closes, in-flight handlers are
// canceled through their context, every connection is closed, and Close
// waits for all goroutines to exit. Idempotent.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	if e.lis != nil {
		e.lis.Close()
	}
	for conn := range e.conns {
		conn.Close()
	}
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
}

// errClosed reports endpoint-side rejections of work after Close.
var errClosed = errors.New("cluster: endpoint closed")
