// Package cluster shards one DRP instance across daemons: a coordinator
// partitions the servers into communication-cost regions (hierarchy's
// partitioner), compacts each region into an M'×N' sub-instance with a dense
// index mapping back to global ids, ships it to a shard daemon over a small
// length-prefixed RPC transport, runs the regional AGT-RAM games
// concurrently, and merges the regional winners — translated back through
// their mappings — through a top-level delegate game with a boundary-replica
// exchange: the paper's semi-distributed mechanism stretched over processes.
//
// The layer cake, bottom to top:
//
//   - rpc.go: the transport. 4-byte big-endian length-prefixed frames with a
//     hand-encoded envelope (id, method, error) wrapping a gob- or
//     JSON-encoded body; a synchronous Client with lazy redial and an
//     Endpoint dispatching registered handlers, one goroutine per
//     connection. Read and write buffers are owned per client / per
//     connection and reused across calls — the control plane's frames never
//     allocate in steady state beyond the codec's own work. Dialers compose
//     with internal/faultnet, so the fault matrix drives the same
//     deterministic fault model as the engine tests.
//   - membership.go: static seed list + health probes with a consecutive-
//     failure threshold (Alive → Suspect → Dead, probes recover the peer).
//   - shard.go: one regional game. Holds an online.Controller over the
//     compacted sub-instance the coordinator assigned (arena, kernel and
//     oracle rows all sized to the region), translates global ids at the RPC
//     boundary, degrades to autonomous self-solves when the coordinator
//     stops answering probes.
//   - coordinator.go: membership + partition + compaction + mapping-aware
//     delta forwarding + the fan-out solve and translate-then-union merge,
//     behind the same server.Backend interface the single daemon serves
//     HTTP from.
//
// Determinism boundary: regional games are deterministic in (sub-instance,
// seed) exactly like the single daemon; the merge — including the boundary
// exchange's sorted ad ordering — is deterministic in the set of regional
// placements. Membership timing (when a probe declares a peer dead) is
// wall-clock and therefore not deterministic — tests pin it by calling
// ProbeOnce/AssignNow/MergeNow explicitly instead of running the background
// loops.
package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultnet"
)

// Codec selects the frame payload encoding. Gob is the compact default for
// daemon-to-daemon links; JSON keeps frames greppable for debugging.
type Codec string

// The two codecs.
const (
	CodecGob  Codec = "gob"
	CodecJSON Codec = "json"
)

// ParseCodec validates a -codec flag value ("" means gob).
func ParseCodec(s string) (Codec, error) {
	switch Codec(s) {
	case "", CodecGob:
		return CodecGob, nil
	case CodecJSON:
		return CodecJSON, nil
	default:
		return "", fmt.Errorf("cluster: unknown codec %q (want gob|json)", s)
	}
}

func (c Codec) marshal(v any) ([]byte, error) {
	if c == CodecJSON {
		return json.Marshal(v)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (c Codec) unmarshal(b []byte, v any) error {
	if c == CodecJSON {
		return json.Unmarshal(b, v)
	}
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// maxFrame bounds a single RPC frame: a full M=100k state snapshot with
// dense demand fits comfortably; anything bigger is a protocol error, not a
// bigger buffer.
const maxFrame = 256 << 20

// The wire envelope, hand-encoded into one buffer so a frame costs a single
// Write and zero intermediate allocations (the old envelope was itself
// codec-encoded around the codec-encoded body — every frame paid a second
// full encode and a fresh byte slice; BENCH_9 showed that at 47k allocs/op
// for a 2-shard solve). Layout after the 4-byte big-endian length prefix,
// which covers everything that follows:
//
//	8B id | 2B method len | method | 4B err len | err | body...
//
// Method is set on requests; Err carries a remote handler failure on
// responses. Body is the codec-encoded payload, decoded by the receiver into
// its own types.
type frame struct {
	ID     uint64
	Method string
	Err    string
	Body   []byte // sub-slice of the read buffer: valid until the next read reuses it
}

// envelopeMin is the smallest legal frame: empty method, error and body.
const envelopeMin = 8 + 2 + 4

// sliceWriter lets the codecs encode straight into the frame buffer.
type sliceWriter struct{ b *[]byte }

func (s sliceWriter) Write(p []byte) (int, error) {
	*s.b = append(*s.b, p...)
	return len(p), nil
}

// appendFrame builds one framed message into buf (reusing its capacity) and
// returns the full frame including the length prefix. Errors are
// encode/size-only — nothing has touched the wire, so the caller can still
// send a replacement frame on the same connection.
func appendFrame(buf []byte, c Codec, id uint64, method, errMsg string, v any) ([]byte, error) {
	if len(method) > 0xffff {
		return nil, fmt.Errorf("cluster: method name of %d bytes", len(method))
	}
	b := append(buf[:0], 0, 0, 0, 0) // length prefix placeholder
	b = binary.BigEndian.AppendUint64(b, id)
	b = binary.BigEndian.AppendUint16(b, uint16(len(method)))
	b = append(b, method...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(errMsg)))
	b = append(b, errMsg...)
	if v != nil {
		sw := sliceWriter{&b}
		var err error
		if c == CodecJSON {
			err = json.NewEncoder(sw).Encode(v)
		} else {
			err = gob.NewEncoder(sw).Encode(v)
		}
		if err != nil {
			return b[:0], fmt.Errorf("cluster: encode frame body: %w", err)
		}
	}
	n := len(b) - 4
	if n > maxFrame {
		return b[:0], fmt.Errorf("cluster: frame of %d bytes exceeds the %d limit", n, maxFrame)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	return b, nil
}

// readFrame reads one length-prefixed frame into buf (growing and reusing it
// across calls) and parses the envelope. The returned frame's Body aliases
// buf — the caller decodes it before the next readFrame on the same buffer.
// The length prefix is validated against maxFrame before any allocation.
func readFrame(r io.Reader, buf *[]byte) (*frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, 4, fmt.Errorf("cluster: frame of %d bytes exceeds the %d limit", n, maxFrame)
	}
	if n < envelopeMin {
		return nil, 4, fmt.Errorf("cluster: frame of %d bytes is below the %d-byte envelope", n, envelopeMin)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, 4, err
	}
	f := new(frame)
	f.ID = binary.BigEndian.Uint64(b)
	off := 8
	ml := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if off+ml+4 > len(b) {
		return nil, 4 + int(n), fmt.Errorf("cluster: frame method field overruns the envelope")
	}
	f.Method = string(b[off : off+ml])
	off += ml
	el := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if off+el > len(b) {
		return nil, 4 + int(n), fmt.Errorf("cluster: frame error field overruns the envelope")
	}
	f.Err = string(b[off : off+el])
	off += el
	f.Body = b[off:]
	return f, 4 + int(n), nil
}

// RemoteError is a handler failure that crossed the wire: the call reached
// the peer and the peer's handler said no. Transport failures (dial, broken
// connection, deadline) surface as ordinary errors instead, which is how
// callers distinguish "peer rejected it" from "peer unreachable".
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("cluster: %s: %s", e.Method, e.Msg) }

// DialFunc opens a connection to an RPC address.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// NetDialer is the plain TCP dialer.
func NetDialer() DialFunc {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
}

// FaultyDialer wraps the TCP dialer with the faultnet schedule for one peer
// id: FailDial refuses the connect outright, Drop/Delay/Truncate shape the
// write path of every connection — the cluster fault matrix runs on the same
// deterministic fault model as the engine tests. A nil config is fault-free.
func FaultyDialer(cfg *faultnet.Config, peer int) DialFunc {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		if cfg.DialFails(peer) {
			return nil, fmt.Errorf("cluster: injected dial failure to peer %d (%s)", peer, addr)
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return faultnet.Wrap(conn, peer, cfg), nil
	}
}

// Client is a synchronous RPC client over one connection: calls are
// serialized (the cluster's control plane is low-rate; concurrency comes
// from one client per peer), the connection is dialed lazily and redialed
// after any transport error. The frame buffers are owned by the client and
// reused across calls under the same serialization.
type Client struct {
	addr  string
	codec Codec
	dial  DialFunc

	mu     sync.Mutex
	conn   net.Conn
	nextID uint64
	wbuf   []byte
	rbuf   []byte

	sent atomic.Uint64
	recv atomic.Uint64
}

// NewClient builds a client for one peer address. A nil dial uses plain TCP.
func NewClient(addr string, codec Codec, dial DialFunc) *Client {
	if dial == nil {
		dial = NetDialer()
	}
	return &Client{addr: addr, codec: codec, dial: dial}
}

// Addr returns the peer address the client dials.
func (c *Client) Addr() string { return c.addr }

// WireBytes reports the cumulative bytes this client has sent and received,
// frames included — the per-phase benchmark's wire-cost column.
func (c *Client) WireBytes() (sent, recv uint64) {
	return c.sent.Load(), c.recv.Load()
}

// Call invokes method on the peer: req is encoded into the request body,
// the response body decoded into resp (ignored when resp is nil). The
// context's deadline bounds the whole exchange; transport errors close the
// connection so the next call redials.
func (c *Client) Call(ctx context.Context, method string, req, resp any) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	if c.conn == nil {
		conn, err := c.dial(ctx, c.addr)
		if err != nil {
			return fmt.Errorf("cluster: dial %s: %w", c.addr, err)
		}
		c.conn = conn
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Time{}
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.dropConn()
		return err
	}

	c.nextID++
	id := c.nextID
	b, err := appendFrame(c.wbuf, c.codec, id, method, "", req)
	c.wbuf = b
	if err != nil {
		return fmt.Errorf("cluster: encode %s request: %w", method, err)
	}
	if _, err := c.conn.Write(b); err != nil {
		c.dropConn()
		return fmt.Errorf("cluster: send %s to %s: %w", method, c.addr, err)
	}
	c.sent.Add(uint64(len(b)))
	f, nr, err := readFrame(c.conn, &c.rbuf)
	c.recv.Add(uint64(nr))
	if err != nil {
		c.dropConn()
		return fmt.Errorf("cluster: receive %s from %s: %w", method, c.addr, err)
	}
	if f.ID != id {
		c.dropConn()
		return fmt.Errorf("cluster: response id %d for request %d from %s", f.ID, id, c.addr)
	}
	if f.Err != "" {
		return &RemoteError{Method: method, Msg: f.Err}
	}
	if resp == nil {
		return nil
	}
	if err := c.codec.unmarshal(f.Body, resp); err != nil {
		return fmt.Errorf("cluster: decode %s response: %w", method, err)
	}
	return nil
}

func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Close drops the connection; a later Call redials.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropConn()
}

// Handler serves one RPC method: decode the request from body, return the
// response value (encoded by the endpoint) or an error (sent as a
// RemoteError to the caller).
type Handler func(ctx context.Context, body []byte) (any, error)

// Endpoint is the server side of the transport: a handler registry serving
// framed requests, one goroutine per accepted connection, requests on one
// connection handled in order (each Client is synchronous anyway).
type Endpoint struct {
	codec    Codec
	handlers map[string]Handler

	mu      sync.Mutex
	lis     net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// NewEndpoint builds an endpoint with no handlers registered.
func NewEndpoint(codec Codec) *Endpoint {
	ctx, cancel := context.WithCancel(context.Background())
	return &Endpoint{
		codec:    codec,
		handlers: map[string]Handler{},
		conns:    map[net.Conn]struct{}{},
		baseCtx:  ctx,
		cancel:   cancel,
	}
}

// Handle registers a method handler. Must be called before Serve.
func (e *Endpoint) Handle(method string, h Handler) { e.handlers[method] = h }

// HandleFunc registers a handler with typed request/response decoding: the
// endpoint decodes the request into a fresh Req and encodes whatever the
// handler returns.
func HandleFunc[Req any](e *Endpoint, method string, h func(ctx context.Context, req *Req) (any, error)) {
	e.Handle(method, func(ctx context.Context, body []byte) (any, error) {
		req := new(Req)
		if err := e.codec.unmarshal(body, req); err != nil {
			return nil, fmt.Errorf("decode %s request: %w", method, err)
		}
		return h(ctx, req)
	})
}

// Serve starts accepting on lis and returns immediately; Close stops the
// accept loop, closes every connection and waits for the per-connection
// goroutines (LeakCheck-clean teardown).
func (e *Endpoint) Serve(lis net.Listener) {
	e.mu.Lock()
	e.lis = lis
	e.mu.Unlock()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			e.mu.Lock()
			if e.closed {
				e.mu.Unlock()
				conn.Close()
				return
			}
			e.conns[conn] = struct{}{}
			e.mu.Unlock()
			e.wg.Add(1)
			go e.serveConn(conn)
		}
	}()
}

// Addr returns the listening address (host:port with the resolved port).
func (e *Endpoint) Addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lis == nil {
		return ""
	}
	return e.lis.Addr().String()
}

func (e *Endpoint) serveConn(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
	}()
	var rbuf, wbuf []byte // reused across this connection's frames
	for {
		req, _, err := readFrame(conn, &rbuf)
		if err != nil {
			return
		}
		var v any
		var errMsg string
		if h, ok := e.handlers[req.Method]; !ok {
			errMsg = fmt.Sprintf("unknown method %q", req.Method)
		} else if r, herr := h(e.baseCtx, req.Body); herr != nil {
			errMsg = herr.Error()
		} else {
			v = r
		}
		b, aerr := appendFrame(wbuf, e.codec, req.ID, "", errMsg, v)
		wbuf = b
		if aerr != nil {
			// Encode failures never touch the wire, so the connection is
			// still in sync — report them to the caller as a remote error.
			b, aerr = appendFrame(wbuf, e.codec, req.ID, "", fmt.Sprintf("encode %s response: %v", req.Method, aerr), nil)
			wbuf = b
			if aerr != nil {
				return
			}
		}
		if _, err := conn.Write(b); err != nil {
			return
		}
	}
}

// Close stops the endpoint: the listener closes, in-flight handlers are
// canceled through their context, every connection is closed, and Close
// waits for all goroutines to exit. Idempotent.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	if e.lis != nil {
		e.lis.Close()
	}
	for conn := range e.conns {
		conn.Close()
	}
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
}

// errClosed reports endpoint-side rejections of work after Close.
var errClosed = errors.New("cluster: endpoint closed")
