package cluster

import (
	"repro/internal/online"
)

// The RPC vocabulary. Every daemon answers "ping"; shards additionally serve
// the regional-game methods the coordinator drives.
const (
	MethodPing      = "ping"
	MethodAssign    = "assign"
	MethodDeltas    = "deltas"
	MethodSolve     = "solve"
	MethodPlacement = "placement"
	MethodMetrics   = "metrics"
	MethodRoute     = "route"
)

// PingRequest is the health probe; PingReply identifies the peer.
type PingRequest struct{}

// PingReply reports the peer's role and where it stands.
type PingReply struct {
	Role string `json:"role"` // "coordinator" or "shard"
	// Shard is the responder's shard id (shards only).
	Shard int `json:"shard"`
	// Assign is the assignment version the shard currently runs (0 before
	// the first assignment).
	Assign uint64 `json:"assign"`
	// Mode is the shard's current mode (hierarchical|autonomous).
	Mode string `json:"mode,omitempty"`
	// Version is the responder's current epoch version.
	Version uint64 `json:"version"`
}

// AssignRequest ships a region to a shard: the compacted M'×N' sub-instance
// with its index mapping (member servers, the objects they own or demand,
// boundary primaries), the member set in global ids, and the current global
// placement — already translated into region coordinates — to carry over (so
// a freshly assigned shard starts from the merged placement instead of
// primaries).
type AssignRequest struct {
	// Version is the coordinator's assignment generation; a shard rejects
	// versions at or below the one it already runs (stale re-sends).
	Version uint64                `json:"version"`
	Members []int32               `json:"members"`
	Region  *online.CompactRegion `json:"region"`
	// Carry is in region-local coordinates (rows per regional object,
	// replica lists of regional server indexes).
	Carry [][]int32 `json:"carry,omitempty"`
}

// AssignReply acknowledges an installed assignment.
type AssignReply struct {
	Version uint64 `json:"version"`
	// Dropped counts carried replicas that were infeasible on the masked
	// instance.
	Dropped int `json:"dropped"`
}

// DeltasRequest forwards a delta sub-batch to the owning shard.
type DeltasRequest struct {
	// Assign pins the assignment generation the batch was routed under; a
	// shard on a different generation rejects it (the coordinator re-syncs
	// by re-assigning).
	Assign uint64         `json:"assign"`
	Deltas []online.Delta `json:"deltas"`
}

// SolveRequest asks a shard to run its regional game now.
type SolveRequest struct{}

// SolveReply reports the regional solve. Payments are indexed by regional
// server — the coordinator translates them through the assignment's mapping.
type SolveReply struct {
	// Assign is the assignment generation the solve ran under; the
	// coordinator discards replies from a different generation (their
	// payment indexes would be meaningless against its mapping).
	Assign  uint64  `json:"assign"`
	Version uint64  `json:"version"`
	OTC     int64   `json:"otc"`
	BaseOTC int64   `json:"base_otc"`
	Savings float64 `json:"savings_percent"`
	Work    int64   `json:"work"`
	// ElapsedNs is the wall-clock the regional solve took shard-side — the
	// per-phase benchmark's regional-solve component, free of RPC overhead.
	ElapsedNs int64   `json:"elapsed_ns"`
	Payments  []int64 `json:"payments,omitempty"`
}

// PlacementRequest pulls a shard's regional placement for the merge.
type PlacementRequest struct{}

// BorderAd advertises one surplus replica a region placed, with the
// region's reserve price for it: Gain is the regional cost increase if the
// replica were removed (its local marginal value). Coordinates are
// region-local; the coordinator translates through the assignment's mapping.
// The merge's boundary-replica exchange uses the ads to decide which
// replicas are redundant once every region's placement is visible — the
// cross-region savings the mask-era merge forfeited.
type BorderAd struct {
	Object int32 `json:"object"`
	Server int32 `json:"server"`
	Gain   int64 `json:"gain"`
}

// PlacementReply carries the regional placement — in region-local
// coordinates — and the region's delegate bid for the top-level game.
type PlacementReply struct {
	Assign  uint64    `json:"assign"`
	Version uint64    `json:"version"`
	Members []int32   `json:"members"`
	Matrix  [][]int32 `json:"matrix"`
	OTC     int64     `json:"otc"`
	BaseOTC int64     `json:"base_otc"`
	Savings float64   `json:"savings_percent"`
	// SavedOTC = BaseOTC - OTC: the transfer cost the regional game saved,
	// which is the region delegate's sealed bid in the top-level game.
	SavedOTC int64 `json:"saved_otc"`
	// Border lists the region's surplus replicas with reserve prices for
	// the merge's boundary exchange.
	Border []BorderAd `json:"border,omitempty"`
}

// MetricsRequest pulls a shard's controller metrics for aggregation.
type MetricsRequest struct{}

// MetricsReply is one shard's contribution to GET /cluster.
type MetricsReply struct {
	Shard   int     `json:"shard"`
	Assign  uint64  `json:"assign"`
	Mode    string  `json:"mode"`
	Members []int32 `json:"members"`
	// RegionServers and RegionObjects are the compacted instance's M'×N' —
	// the shape the regional game actually solves.
	RegionServers int            `json:"region_servers"`
	RegionObjects int            `json:"region_objects"`
	Metrics       online.Metrics `json:"metrics"`
}

// RouteRequest asks a shard for a nearest-replica answer from its regional
// placement.
type RouteRequest struct {
	Server int   `json:"server"`
	Object int32 `json:"object"`
}

// RouteReply is the answer.
type RouteReply struct {
	ReadFrom int32 `json:"read_from"`
}
