package cluster

import (
	"context"
	"fmt"
	"net"
	"testing"

	_ "repro/internal/agtram" // register the agt-ram solver
	"repro/internal/online"
	"repro/internal/replication"
	"repro/internal/testutil"
)

// benchProblem is the M=1000 instance behind BENCH_9.json: the scale the
// issue's acceptance gate names, big enough that regional games have real
// work to split.
func benchProblem(b *testing.B) *replication.Problem {
	b.Helper()
	p, err := testutil.Build(testutil.InstanceConfig{
		Servers:         1000,
		Objects:         3000,
		Requests:        180000,
		RWRatio:         0.9,
		CapacityPercent: 20,
		EdgeP:           0.05,
		Seed:            42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkClusterSolve compares one full cluster solve — regional games in
// parallel over loopback TCP plus the top-level merge — against the single
// daemon solving the whole instance, at M=1000. The savings-pct metric
// records what sharding costs in placement quality (the boundary-replica
// exchange recovers part of what pure region-local placement forfeits), the
// ns/op column what it buys in wall-clock. The sharded runs additionally
// break the wall-clock into phases from the coordinator's counters:
// partition-ns / ship-ns / assign-bytes for the (one) assignment,
// solve-ns (coordinator-side fan-out), region-solve-ns (slowest shard's
// own solve, RPC overhead excluded) and merge-ns per cluster solve.
func BenchmarkClusterSolve(b *testing.B) {
	p := benchProblem(b)
	cfg := online.Config{Seed: 42}
	ctx := context.Background()

	b.Run("single", func(b *testing.B) {
		ctrl, err := online.New(p.Cost, p.Work, p.Capacity, cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer ctrl.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ctrl.SolveNow(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(ctrl.Metrics().Savings, "savings-pct")
	})

	for _, shards := range []int{2, 4} {
		// "=" rather than "-" before the count: benchjson strips a trailing
		// "-N" as the GOMAXPROCS tag (which single-proc runs omit), and the
		// shard counts must not collapse into one compare-gate row.
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var addrs []string
			var shs []*Shard
			for i := 0; i < shards; i++ {
				sh := NewShard(i, p.Cost, ShardConfig{Codec: CodecGob, Controller: cfg})
				lis, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				sh.Serve(lis)
				defer sh.Close()
				shs = append(shs, sh)
				addrs = append(addrs, sh.Addr())
			}
			co, err := NewCoordinator(p, addrs, CoordinatorConfig{Codec: CodecGob, Controller: cfg})
			if err != nil {
				b.Fatal(err)
			}
			defer co.Close()
			if err := co.AssignNow(ctx); err != nil {
				b.Fatal(err)
			}
			ph0 := co.Phases()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := co.SolveNow(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(co.Metrics().Savings, "savings-pct")
			ph := co.Phases()
			if ph.Assigns > 0 {
				b.ReportMetric(float64(ph.PartitionNs)/float64(ph.Assigns), "partition-ns")
				b.ReportMetric(float64(ph.ShipNs)/float64(ph.Assigns), "ship-ns")
				b.ReportMetric(float64(ph.AssignBytes)/float64(ph.Assigns), "assign-bytes")
			}
			n := float64(b.N)
			b.ReportMetric(float64(ph.SolveNs-ph0.SolveNs)/n, "solve-ns")
			b.ReportMetric(float64(ph.RegionSolveNs), "region-solve-ns")
			b.ReportMetric(float64(ph.MergeNs-ph0.MergeNs)/n, "merge-ns")
		})
	}
}
