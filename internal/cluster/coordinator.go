package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/hierarchy"
	"repro/internal/mechanism"
	"repro/internal/online"
	"repro/internal/replication"
)

// CoordinatorConfig tunes the coordinator.
type CoordinatorConfig struct {
	// Codec is the RPC codec (must match the shards').
	Codec Codec
	// Controller configures the global mirror and sets the cluster-wide
	// drift semantics: DriftThreshold/SolveDebounce decide when the
	// coordinator fans a solve out to the shards, exactly like the single
	// daemon's auto-solve. The mirror itself never runs a solver.
	Controller online.Config
	// ProbeTimeout and DeathThreshold tune the shard failure detector.
	ProbeTimeout   time.Duration
	DeathThreshold int
	// ForwardTimeout bounds every forwarded RPC (assign, deltas, solve,
	// placement, metrics); default 30s — regional solves run inside it.
	ForwardTimeout time.Duration
	// Payment is the top-level delegate game's payment rule (default
	// second-price, the paper's truthful choice).
	Payment mechanism.PaymentRule
	// Dial overrides the dialer per shard (fault injection).
	Dial func(peer Peer) DialFunc
}

// MergeReport summarizes one top-level merge.
type MergeReport struct {
	// Version is the mirror epoch the merged placement was published as.
	Version uint64 `json:"version"`
	// Regions is how many regional placements contributed.
	Regions int `json:"regions"`
	// Winner is the delegate game's winning shard (-1 when no region bid).
	Winner int `json:"winner"`
	// Payment is the winner's second-price payment (the best runner-up
	// region's saved OTC).
	Payment int64 `json:"payment"`
	// Dropped counts merged replicas infeasible on the mirror instance.
	Dropped int `json:"dropped"`
	// BorderDropped and BorderPlaced count the boundary exchange's moves:
	// advertised replicas that priced below zero against the merged global
	// placement and were dropped, and replicas placed into the capacity that
	// freed. Recovered is the OTC the exchange recovered (≥ 0).
	BorderDropped int   `json:"border_dropped"`
	BorderPlaced  int   `json:"border_placed"`
	Recovered     int64 `json:"recovered"`
	// OTC and Savings are the merged placement's economics.
	OTC     int64   `json:"otc"`
	Savings float64 `json:"savings_percent"`
}

// PhaseStats breaks the coordinator's cluster operations into phases for the
// per-phase benchmark columns. Ns fields are cumulative wall-clock except
// RegionSolveNs, which is the slowest shard-reported regional solve of the
// most recent cluster solve (the parallel critical path, free of RPC time).
type PhaseStats struct {
	// Assigns counts assignment fan-outs; PartitionNs is the proximity
	// partition, ShipNs the compact-and-ship fan-out, AssignBytes the wire
	// bytes (sent+received) the fan-outs moved.
	Assigns     int64 `json:"assigns"`
	PartitionNs int64 `json:"partition_ns"`
	ShipNs      int64 `json:"ship_ns"`
	AssignBytes int64 `json:"assign_bytes"`
	// Solves counts cluster solves; SolveNs is the regional-solve fan-out
	// (slowest shard, including RPC), RegionSolveNs the shard-side solve
	// alone.
	Solves        int64 `json:"solves"`
	SolveNs       int64 `json:"solve_ns"`
	RegionSolveNs int64 `json:"region_solve_ns"`
	// Merges counts top-level merges; MergeNs covers placement pulls, the
	// delegate game, translate-and-union, the boundary exchange and the
	// mirror install.
	Merges  int64 `json:"merges"`
	MergeNs int64 `json:"merge_ns"`
}

// Coordinator is the cluster's top level: it mirrors the global state (the
// source of truth deltas apply to), partitions servers into regions by
// communication-cost proximity, ships compacted M'×N' sub-instances to shard
// daemons, runs their games concurrently, and merges the winners — translated
// back through each region's index mapping — through the paper's top-level
// delegate game, with a boundary-replica exchange recovering the cross-region
// savings isolated regional pricing leaves on the table. It implements server.Backend, so the single
// daemon's entire HTTP surface — /route, /epochs, /placement, /metrics —
// serves the merged placement unchanged.
type Coordinator struct {
	cfg        CoordinatorConfig
	mirror     *online.Controller
	shards     []Peer
	membership *Membership
	ep         *Endpoint

	// opMu serializes the state-changing operations (deltas, assign, solve,
	// merge) so an assignment always ships a consistent (state, carry) pair.
	// The read path (Route/Current) never takes it.
	opMu sync.Mutex

	mu               sync.Mutex
	assignVer        uint64
	regions          map[int][]int32 // live assignment: shard id -> members
	regionOf         []int32         // server -> shard id, -1 unassigned
	// mappings holds the coordinator's copy of each live region's index
	// mapping. Contents are only read and extended under opMu (routing
	// appends objects in lockstep with the owning shard); the map itself is
	// swapped under both locks on re-assignment.
	mappings map[int]*online.CompactRegion
	// lastMerge memoizes the most recent multi-region merge. The merge is
	// deterministic in (assignment generation, each region's epoch version,
	// the mirror's epoch version) — the documented determinism boundary —
	// so when a ping round shows none of them moved, the installed
	// placement is already this merge's outcome and the pull + carry +
	// exchange pipeline is skipped. Any delta, regional self-solve,
	// re-assignment or membership change moves one of the versions and
	// forces the full path.
	lastMerge struct {
		valid     bool
		assign    uint64
		shardVers map[int]uint64
		replies   map[int]*PlacementReply
		mirrorVer uint64
		report    MergeReport
	}
	phase        PhaseStats
	repartitions int64
	merges           int64
	topDecisions     int64
	delegatePayments map[int]int64
	lastWinner       int
	forwardErrors    int64
	lastPayments     []int64
	lastErr          string

	reassignKick chan struct{}
	solveKick    chan struct{}
	loopCancel   context.CancelFunc
	wg           sync.WaitGroup
}

// NewCoordinator builds the coordinator over the global instance and the
// static shard address list (shard i is addrs[i]). Call Serve to answer
// probes and Start for the background loops; the cluster forms on the first
// AssignNow.
func NewCoordinator(p *replication.Problem, shardAddrs []string, cfg CoordinatorConfig) (*Coordinator, error) {
	if len(shardAddrs) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one shard address")
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	mirror, err := online.New(p.Cost, p.Work, p.Capacity, cfg.Controller)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:              cfg,
		mirror:           mirror,
		ep:               NewEndpoint(cfg.Codec),
		regions:          map[int][]int32{},
		regionOf:         make([]int32, p.M),
		mappings:         map[int]*online.CompactRegion{},
		delegatePayments: map[int]int64{},
		lastWinner:       -1,
		reassignKick:     make(chan struct{}, 1),
		solveKick:        make(chan struct{}, 1),
	}
	for i := range co.regionOf {
		co.regionOf[i] = -1
	}
	for i, addr := range shardAddrs {
		co.shards = append(co.shards, Peer{ID: i, Addr: addr})
	}
	co.membership = NewMembership(co.shards, MembershipConfig{
		Codec:          cfg.Codec,
		ProbeTimeout:   cfg.ProbeTimeout,
		DeathThreshold: cfg.DeathThreshold,
		Dial:           cfg.Dial,
		OnChange: func(_ Peer, _, to PeerState) {
			// A shard died or came back: its region must move. The worker
			// re-partitions; until then the generation check keeps stale
			// shards from absorbing misrouted work.
			if to == Dead || to == Alive {
				co.kick(co.reassignKick)
			}
		},
	})
	HandleFunc(co.ep, MethodPing, func(ctx context.Context, req *PingRequest) (any, error) {
		return &PingReply{Role: "coordinator", Assign: co.AssignVersion(), Version: co.mirror.Current().Version}, nil
	})
	return co, nil
}

func (co *Coordinator) kick(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// Serve starts answering RPC probes on lis.
func (co *Coordinator) Serve(lis net.Listener) { co.ep.Serve(lis) }

// Addr returns the coordinator's RPC listen address.
func (co *Coordinator) Addr() string { return co.ep.Addr() }

// AssignVersion reports the current assignment generation.
func (co *Coordinator) AssignVersion() uint64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.assignVer
}

// Phases snapshots the per-phase counters.
func (co *Coordinator) Phases() PhaseStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.phase
}

// Start launches the background loops: shard probes, the re-partition
// worker, and the drift-triggered cluster solve worker (debounced like the
// single daemon's).
func (co *Coordinator) Start(ctx context.Context, probeInterval time.Duration) {
	ctx, cancel := context.WithCancel(ctx)
	co.loopCancel = cancel
	co.membership.Start(ctx, probeInterval)
	co.wg.Add(2)
	go func() {
		defer co.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-co.reassignKick:
			}
			if err := co.AssignNow(ctx); err != nil {
				co.noteErr(err)
			}
		}
	}()
	go func() {
		defer co.wg.Done()
		var lastSolve time.Time
		for {
			select {
			case <-ctx.Done():
				return
			case <-co.solveKick:
			}
			if wait := co.cfg.Controller.SolveDebounce - time.Since(lastSolve); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-ctx.Done():
					t.Stop()
					return
				case <-t.C:
				}
			}
			lastSolve = time.Now()
			if err := co.SolveNow(ctx); err != nil {
				co.noteErr(err)
			}
		}
	}()
}

func (co *Coordinator) noteErr(err error) {
	co.mu.Lock()
	co.lastErr = err.Error()
	co.mu.Unlock()
}

// liveAssigned snapshots the shards that are both alive and hold a region.
func (co *Coordinator) liveAssigned() []int {
	alive := co.membership.Alive()
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]int, 0, len(alive))
	for _, id := range alive {
		if _, ok := co.regions[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// AssignNow re-partitions the servers over the live shards and ships every
// region as a compacted M'×N' sub-instance with its index mapping, plus the
// current merged placement — translated into region coordinates — as carry.
// The coordinator keeps its own copy of each mapping: delta routing and the
// merge translate through it. Shards on a dead list keep their stale
// generation and are fenced out by the generation check until they rejoin
// and get a fresh region.
func (co *Coordinator) AssignNow(ctx context.Context) error {
	co.opMu.Lock()
	defer co.opMu.Unlock()

	live := co.membership.Alive()
	if len(live) == 0 {
		return errors.New("cluster: no live shards to assign")
	}
	e := co.mirror.Current()
	t0 := time.Now()
	parts := hierarchy.PartitionBalanced(e.Problem, len(live))
	partitionNs := time.Since(t0).Nanoseconds()
	full := co.mirror.ExportState()
	carry := e.Schema.Matrix()

	co.mu.Lock()
	co.assignVer++
	ver := co.assignVer
	co.mu.Unlock()

	bytesBefore := co.wireBytes(live)
	t1 := time.Now()
	type result struct {
		shard   int
		members []int32
		region  *online.CompactRegion
		err     error
	}
	results := make(chan result, len(live))
	for j, id := range live {
		go func(j, id int) {
			members := parts[j]
			region := full.Compact(members)
			req := &AssignRequest{
				Version: ver, Members: members, Region: region,
				Carry: region.CarryToLocal(carry),
			}
			cctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
			defer cancel()
			err := co.membership.Client(id).Call(cctx, MethodAssign, req, &AssignReply{})
			results <- result{shard: id, members: members, region: region, err: err}
		}(j, id)
	}
	regions := make(map[int][]int32, len(live))
	mappings := make(map[int]*online.CompactRegion, len(live))
	regionOf := make([]int32, e.Problem.M)
	for i := range regionOf {
		regionOf[i] = -1
	}
	var firstErr error
	var failed int64
	for range live {
		r := <-results
		if r.err != nil {
			failed++
			co.membership.ReportFailure(r.shard)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: assign shard %d: %w", r.shard, r.err)
			}
			continue
		}
		regions[r.shard] = r.members
		mappings[r.shard] = r.region
		for _, srv := range r.members {
			regionOf[srv] = int32(r.shard)
		}
	}
	shipNs := time.Since(t1).Nanoseconds()
	assignBytes := co.wireBytes(live) - bytesBefore
	co.mu.Lock()
	co.regions = regions
	co.regionOf = regionOf
	co.mappings = mappings
	co.repartitions++
	co.forwardErrors += failed
	co.phase.Assigns++
	co.phase.PartitionNs += partitionNs
	co.phase.ShipNs += shipNs
	co.phase.AssignBytes += assignBytes
	co.mu.Unlock()
	if len(regions) == 0 {
		return firstErr
	}
	return nil
}

// wireBytes sums the RPC clients' byte counters for the given shards.
func (co *Coordinator) wireBytes(ids []int) int64 {
	var total int64
	for _, id := range ids {
		sent, recv := co.membership.Client(id).WireBytes()
		total += int64(sent + recv)
	}
	return total
}

// Current, Route, Placement, Metrics, Subscribe, Unsubscribe and
// DrainSubscribers delegate to the mirror: the coordinator serves routes and
// the epoch stream from the merged global placement, so routing clients work
// against a cluster exactly as against a single daemon.

// Current returns the mirror's live epoch.
func (co *Coordinator) Current() *online.Epoch { return co.mirror.Current() }

// Route answers from the merged placement.
func (co *Coordinator) Route(server int, object int32) (int32, error) {
	return co.mirror.Route(server, object)
}

// Placement reports the merged placement.
func (co *Coordinator) Placement() replication.PlacementReport { return co.mirror.Placement() }

// Metrics reports the mirror's controller metrics.
func (co *Coordinator) Metrics() online.Metrics { return co.mirror.Metrics() }

// Subscribe opens an epoch stream on the mirror.
func (co *Coordinator) Subscribe(since uint64, buf int) *online.Subscription {
	return co.mirror.Subscribe(since, buf)
}

// Unsubscribe ends a mirror subscription.
func (co *Coordinator) Unsubscribe(sub *online.Subscription) { co.mirror.Unsubscribe(sub) }

// DrainSubscribers drains the mirror's epoch stream.
func (co *Coordinator) DrainSubscribers() { co.mirror.DrainSubscribers() }

// LastSolvePayments returns the per-server payments summed across the
// regional games of the most recent cluster solve.
func (co *Coordinator) LastSolvePayments() []int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.lastPayments == nil {
		return nil
	}
	return append([]int64(nil), co.lastPayments...)
}

// ApplyDeltas applies a batch to the global mirror, then fans it out through
// the region mappings: demand deltas go to the owning shard, add-object
// deltas — stamped with their freshly allocated global id — to the primary's
// shard (whose mapping extends in lockstep on both sides), remove-object
// deltas to every shard that maps the object, and membership deltas trigger
// a full re-partition (no piecemeal forwarding — the partition itself
// changed). A batch the live mappings cannot express (demand for an object
// outside its owner's region) also re-partitions: the fresh sub-instances
// include it. A shard that fails its forward is reported to the failure
// detector and re-synced by the next assignment; the mirror remains the
// source of truth either way.
func (co *Coordinator) ApplyDeltas(ds []online.Delta) (online.Applied, error) {
	co.opMu.Lock()
	preN := int32(co.mirror.Current().Problem.N)
	a, err := co.mirror.ApplyDeltas(ds)
	if err != nil {
		co.opMu.Unlock()
		return a, err
	}

	co.mu.Lock()
	regionOf := co.regionOf
	mappings := co.mappings
	ver := co.assignVer
	co.mu.Unlock()

	perShard, reassign, rerr := online.RouteDeltasCompact(ds, func(server int) int {
		if server < 0 || server >= len(regionOf) {
			return -1
		}
		return int(regionOf[server])
	}, mappings, preN)

	if ver == 0 || reassign || rerr != nil {
		// Unformed cluster, membership change, a server outside the live
		// assignment (it joined since), or demand the compaction does not
		// cover: re-partition from fresh state, which ships the new shape
		// inside the sub-instances.
		co.opMu.Unlock()
		if aerr := co.AssignNow(context.Background()); aerr != nil {
			co.noteErr(aerr)
		}
	} else {
		ctx := context.Background()
		var wg sync.WaitGroup
		for id, batch := range perShard {
			if len(batch) == 0 {
				continue
			}
			wg.Add(1)
			go func(id int, batch []online.Delta) {
				defer wg.Done()
				cctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
				defer cancel()
				req := &DeltasRequest{Assign: ver, Deltas: batch}
				if err := co.membership.Client(id).Call(cctx, MethodDeltas, req, &online.Applied{}); err != nil {
					co.mu.Lock()
					co.forwardErrors++
					co.mu.Unlock()
					co.membership.ReportFailure(id)
					co.kick(co.reassignKick)
				}
			}(id, batch)
		}
		wg.Wait()
		co.opMu.Unlock()
	}

	if a.SolveScheduled {
		co.kick(co.solveKick)
	}
	return a, nil
}

// SolveNow runs one cluster-wide solve: every live region's game in
// parallel, then the top-level merge. Implements server.Backend's solve, so
// POST /solve on the coordinator solves the whole cluster.
func (co *Coordinator) SolveNow(ctx context.Context) error {
	co.opMu.Lock()
	defer co.opMu.Unlock()
	return co.solveLocked(ctx)
}

func (co *Coordinator) solveLocked(ctx context.Context) error {
	live := co.liveAssigned()
	if len(live) == 0 {
		return errors.New("cluster: no live assigned shards to solve")
	}
	co.mu.Lock()
	ver := co.assignVer
	mappings := co.mappings
	co.mu.Unlock()
	t0 := time.Now()
	type result struct {
		shard int
		rep   SolveReply
		err   error
	}
	results := make(chan result, len(live))
	for _, id := range live {
		go func(id int) {
			cctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
			defer cancel()
			var rep SolveReply
			err := co.membership.Client(id).Call(cctx, MethodSolve, &SolveRequest{}, &rep)
			results <- result{shard: id, rep: rep, err: err}
		}(id)
	}
	payments := make([]int64, co.mirror.Current().Problem.M)
	solved := 0
	var regionNs int64
	var firstErr error
	for range live {
		r := <-results
		if r.err != nil {
			co.membership.ReportFailure(r.shard)
			co.kick(co.reassignKick)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: solve shard %d: %w", r.shard, r.err)
			}
			continue
		}
		mapping := mappings[r.shard]
		if r.rep.Assign != ver || mapping == nil {
			// The shard solved under a different assignment: its payment
			// indexes mean nothing against this mapping. Re-sync it.
			co.kick(co.reassignKick)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: solve shard %d ran assignment %d, coordinator at %d", r.shard, r.rep.Assign, ver)
			}
			continue
		}
		solved++
		mapping.PaymentsToGlobal(r.rep.Payments, payments)
		if r.rep.ElapsedNs > regionNs {
			regionNs = r.rep.ElapsedNs
		}
	}
	solveNs := time.Since(t0).Nanoseconds()
	if solved == 0 {
		return firstErr
	}
	co.mu.Lock()
	co.lastPayments = payments
	co.phase.Solves++
	co.phase.SolveNs += solveNs
	co.phase.RegionSolveNs = regionNs
	co.mu.Unlock()
	_, err := co.mergeLocked(ctx)
	return err
}

// MergeNow pulls every live region's placement, runs the top-level delegate
// game over the regional savings bids, and installs the union on the mirror
// as the next merged epoch.
func (co *Coordinator) MergeNow(ctx context.Context) (MergeReport, error) {
	co.opMu.Lock()
	defer co.opMu.Unlock()
	return co.mergeLocked(ctx)
}

func (co *Coordinator) mergeLocked(ctx context.Context) (MergeReport, error) {
	live := co.liveAssigned()
	if len(live) == 0 {
		return MergeReport{}, errors.New("cluster: no live assigned shards to merge")
	}
	co.mu.Lock()
	ver := co.assignVer
	mappings := co.mappings
	memo := co.lastMerge
	co.mu.Unlock()
	t0 := time.Now()

	if memo.valid && memo.assign == ver && co.mirror.Current().Version == memo.mirrorVer && len(memo.shardVers) == len(live) {
		stale := false
		for _, id := range live {
			if _, ok := memo.shardVers[id]; !ok {
				stale = true
				break
			}
		}
		if !stale && co.pingMatches(ctx, live, ver, memo.shardVers) {
			co.mu.Lock()
			co.merges++
			co.phase.Merges++
			co.phase.MergeNs += time.Since(t0).Nanoseconds()
			co.mu.Unlock()
			return memo.report, nil
		}
	}

	type pull struct {
		shard int
		rep   PlacementReply
		err   error
	}
	results := make(chan pull, len(live))
	for _, id := range live {
		go func(id int) {
			cctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
			defer cancel()
			var rep PlacementReply
			err := co.membership.Client(id).Call(cctx, MethodPlacement, &PlacementRequest{}, &rep)
			results <- pull{shard: id, rep: rep, err: err}
		}(id)
	}
	e := co.mirror.Current()
	var pulls []pull
	for range live {
		r := <-results
		if r.err != nil {
			co.membership.ReportFailure(r.shard)
			co.kick(co.reassignKick)
			continue
		}
		if r.rep.Assign != ver || mappings[r.shard] == nil {
			// A different generation's placement is in the wrong coordinate
			// system; drop it and re-sync the shard.
			co.kick(co.reassignKick)
			continue
		}
		pulls = append(pulls, r)
	}
	if len(pulls) == 0 {
		return MergeReport{}, errors.New("cluster: every placement pull failed")
	}
	sort.Slice(pulls, func(a, b int) bool { return pulls[a].shard < pulls[b].shard })

	// Second memo gate, on content: a regional re-solve bumps the region's
	// epoch version even when it lands on the same placement, so the ping
	// gate misses — but if every pulled placement (matrix, bid, ads) equals
	// what the last merge consumed and the mirror has not moved, the
	// translate + carry + exchange pipeline would reproduce the installed
	// placement exactly. Refresh the memo's versions so the next ping gate
	// can hit without pulling.
	if memo.valid && memo.assign == ver && co.mirror.Current().Version == memo.mirrorVer &&
		len(memo.replies) == len(pulls) {
		same := true
		for i := range pulls {
			prev, ok := memo.replies[pulls[i].shard]
			if !ok || !placementEqual(prev, &pulls[i].rep) {
				same = false
				break
			}
		}
		if same {
			co.mu.Lock()
			co.merges++
			co.phase.Merges++
			co.phase.MergeNs += time.Since(t0).Nanoseconds()
			if co.lastMerge.valid && co.lastMerge.assign == ver {
				vers := make(map[int]uint64, len(pulls))
				for i := range pulls {
					vers[pulls[i].shard] = pulls[i].rep.Version
				}
				co.lastMerge.shardVers = vers
			}
			co.mu.Unlock()
			return memo.report, nil
		}
	}

	var parts []regionPart
	shardVers := make(map[int]uint64, len(pulls))
	replies := make(map[int]*PlacementReply, len(pulls))
	for i := range pulls {
		r := &pulls[i]
		mapping := mappings[r.shard]
		shardVers[r.shard] = r.rep.Version
		replies[r.shard] = &r.rep
		pt := regionPart{
			shard:   r.shard,
			members: r.rep.Members,
			matrix:  mapping.MatrixToGlobal(r.rep.Matrix, e.Problem.N),
			saved:   r.rep.SavedOTC,
		}
		for _, ad := range r.rep.Border {
			gk, okK := mapping.GlobalObject(ad.Object)
			gs, okS := mapping.GlobalServer(int(ad.Server))
			if okK && okS {
				pt.border = append(pt.border, globalAd{object: gk, server: int32(gs), gain: ad.Gain})
			}
		}
		parts = append(parts, pt)
	}

	// The top-level delegate game: each region's delegate bids the transfer
	// cost its game saved; the winner is paid the runner-up's savings
	// (second-price — Axiom 5's incentive, applied one level up). The
	// allocation itself is the union: regions own disjoint server sets, so
	// every regional winner coexists in the merged placement, and the game
	// ranks the delegates for payment and precedence accounting.
	bids := make([]mechanism.Bid, 0, len(parts))
	for _, pt := range parts {
		bids = append(bids, mechanism.Bid{Agent: pt.shard, Value: pt.saved})
	}
	winner, payment := -1, int64(0)
	if round, ok := mechanism.RunRound(bids, co.cfg.Payment); ok {
		winner, payment = round.Winner.Agent, round.Payment
		co.mu.Lock()
		co.topDecisions++
		co.delegatePayments[winner] += payment
		co.lastWinner = winner
		co.mu.Unlock()
	}

	merged := mergeParts(e.Problem.N, e.Problem.M, e.Problem.Work.Primary, parts)
	var recovered int64
	borderDropped, borderPlaced := 0, 0
	dropped := 0
	if len(parts) > 1 {
		// Boundary-replica exchange: each region priced its surplus replicas
		// in isolation; against the merged placement some are redundant — a
		// neighbouring region's copy serves the same readers cheaper — and
		// removing them *reduces* global OTC (negative removal delta). Drop
		// those, cheapest local value first, then reinvest the freed
		// capacity where the merged placement still wants copies. This is
		// the cross-region coordination a masked merge structurally could
		// not do. The single-region case skips the exchange entirely, which
		// keeps the 1-shard cluster bit-identical to the single daemon.
		carried, firstDropped := e.Problem.CarryOver(merged)
		rec, bd, bp := exchangeBorders(carried, e.Problem, parts)
		recovered, borderDropped, borderPlaced = rec, bd, bp
		dropped = co.mirror.InstallSchema(carried, firstDropped)
	} else {
		dropped = co.mirror.InstallPlacement(merged)
	}
	mergeNs := time.Since(t0).Nanoseconds()
	cur := co.mirror.Current()
	report := MergeReport{
		Version:       cur.Version,
		Regions:       len(parts),
		Winner:        winner,
		Payment:       payment,
		Dropped:       dropped,
		BorderDropped: borderDropped,
		BorderPlaced:  borderPlaced,
		Recovered:     recovered,
		OTC:           cur.Schema.TotalCost(),
		Savings:       cur.Schema.Savings(),
	}
	co.mu.Lock()
	co.merges++
	co.phase.Merges++
	co.phase.MergeNs += mergeNs
	// Memoize multi-region merges only: the 1-shard path must keep
	// installing every merge so its epoch cadence stays bit-identical to
	// the single daemon's.
	co.lastMerge.valid = len(parts) > 1 && len(shardVers) == len(parts)
	if co.lastMerge.valid {
		co.lastMerge.assign = ver
		co.lastMerge.shardVers = shardVers
		co.lastMerge.replies = replies
		co.lastMerge.mirrorVer = cur.Version
		co.lastMerge.report = report
	}
	co.mu.Unlock()
	return report, nil
}

// placementEqual reports whether two placement replies describe the same
// regional outcome. Version is deliberately ignored: a re-solve that lands
// on the identical placement publishes a fresh epoch but changes nothing
// the merge consumes.
func placementEqual(a, b *PlacementReply) bool {
	if a.OTC != b.OTC || a.BaseOTC != b.BaseOTC || a.SavedOTC != b.SavedOTC ||
		len(a.Members) != len(b.Members) || len(a.Matrix) != len(b.Matrix) || len(a.Border) != len(b.Border) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	for i := range a.Matrix {
		ra, rb := a.Matrix[i], b.Matrix[i]
		if len(ra) != len(rb) {
			return false
		}
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
	}
	for i := range a.Border {
		if a.Border[i] != b.Border[i] {
			return false
		}
	}
	return true
}

// pingMatches checks whether every live shard still runs assignment ver at
// exactly the regional epoch version the last merge pulled — the cheap
// probe behind the merge memo. Any RPC failure counts as a mismatch; the
// full merge path reports it properly.
func (co *Coordinator) pingMatches(ctx context.Context, live []int, ver uint64, want map[int]uint64) bool {
	results := make(chan bool, len(live))
	for _, id := range live {
		go func(id int) {
			cctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
			defer cancel()
			var rep PingReply
			if err := co.membership.Client(id).Call(cctx, MethodPing, &PingRequest{}, &rep); err != nil {
				results <- false
				return
			}
			results <- rep.Assign == ver && rep.Version == want[id]
		}(id)
	}
	ok := true
	for range live {
		if !<-results {
			ok = false
		}
	}
	return ok
}

// regionPart is one region's contribution to a merge, already translated
// into global coordinates.
type regionPart struct {
	shard   int
	members []int32
	matrix  [][]int32
	saved   int64
	border  []globalAd
}

// globalAd is a BorderAd translated to global coordinates.
type globalAd struct {
	object int32
	server int32
	gain   int64
}

// mergeParts unions the regional placements: object k's merged replica set
// is its primary plus every member-owned replica each region placed.
// Replicas a region reports on servers outside its member set (it cannot
// create them — boundary capacity forbids it — but a stale carry might
// still list them) are ignored, as are replicas on regions that did not
// report (their servers' surplus replicas dissolve, the eviction
// semantics). Regional rows arrive sorted and regions own disjoint member
// sets, so the union stays allocation-light: one row per object, one sort.
func mergeParts(n, m int, primary []int32, parts []regionPart) [][]int32 {
	ownerOf := make([]int32, m)
	for i := range ownerOf {
		ownerOf[i] = -1
	}
	for i, pt := range parts {
		for _, s := range pt.members {
			if s >= 0 && int(s) < m {
				ownerOf[s] = int32(i)
			}
		}
	}
	out := make([][]int32, n)
	for k := 0; k < n; k++ {
		row := make([]int32, 1, 4)
		row[0] = primary[k]
		for i, pt := range parts {
			if k >= len(pt.matrix) || pt.matrix[k] == nil {
				continue
			}
			for _, s := range pt.matrix[k] {
				if int(s) < m && ownerOf[s] == int32(i) && s != primary[k] {
					row = append(row, s)
				}
			}
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		out[k] = row
	}
	return out
}

// exchangeBorders runs the boundary-replica exchange on the merged schema:
// repeated drop passes over the regions' advertisements (remove while the
// global removal delta is negative, cheapest regional value first — the ads
// a region valued least are the likeliest to be globally redundant), each
// followed by a reinvest pass that offers the freed capacity to the demand
// cells the drops disturbed. Deterministic: ads are sorted, affected sets
// are walked in ascending order. Returns the OTC recovered (≥ 0) and the
// move counts.
func exchangeBorders(carried *replication.Schema, p *replication.Problem, parts []regionPart) (recovered int64, borderDropped, borderPlaced int) {
	// Only objects holding non-primary replicas from two or more regions can
	// be over-replicated by the union: a single region's surplus already
	// passed its own game's pricing (non-negative regional value), and the
	// merge only adds readers to it, so its removal delta stays
	// non-negative. Ads the region itself priced negative are kept
	// regardless — they are redundant even regionally (stale carry the
	// regional game has not cleaned up yet). Everything else is filtered
	// before any global re-pricing, which is what keeps the exchange's cost
	// proportional to the contested boundary rather than the replica count.
	contributors := make([]int8, p.N)
	for _, pt := range parts {
		for k, row := range pt.matrix {
			for _, s := range row {
				if s != p.Work.Primary[k] {
					contributors[k]++
					break
				}
			}
		}
	}
	var ads []globalAd
	for _, pt := range parts {
		for _, ad := range pt.border {
			if ad.gain < 0 || (int(ad.object) < p.N && contributors[ad.object] >= 2) {
				ads = append(ads, ad)
			}
		}
	}
	sort.Slice(ads, func(a, b int) bool {
		if ads[a].gain != ads[b].gain {
			return ads[a].gain < ads[b].gain
		}
		if ads[a].object != ads[b].object {
			return ads[a].object < ads[b].object
		}
		return ads[a].server < ads[b].server
	})
	// Pass 1 prices every ad; later passes only revisit objects whose
	// replica set changed in the previous pass — removal and placement
	// deltas are object-local, so an untouched object kept its pricing and
	// re-checking it would repeat the previous pass's verdict. The first
	// pass does ~all the moves (the tail passes converge in a handful), so
	// this caps the exchange at roughly one full sweep.
	var prev map[int32]bool // nil: first pass, consider everything
	const maxPasses = 3
	for pass := 0; pass < maxPasses; pass++ {
		changed := map[int32]bool{} // objects whose replica set moved this pass
		freed := map[int]bool{}     // servers that gained residual this pass
		moves := 0
		for _, ad := range ads {
			if prev != nil && !prev[ad.object] {
				continue
			}
			m := int(ad.server)
			if !carried.HasReplica(ad.object, m) {
				continue
			}
			if carried.DeltaIfRemoved(ad.object, m) >= 0 {
				continue
			}
			d, err := carried.RemoveReplica(ad.object, m)
			if err != nil {
				continue
			}
			recovered -= d
			borderDropped++
			moves++
			changed[ad.object] = true
			freed[m] = true
		}
		placed, rec := reinvestFreed(carried, p, changed, freed)
		borderPlaced += placed
		recovered += rec
		moves += placed
		if moves == 0 {
			break
		}
		prev = changed
	}
	return recovered, borderDropped, borderPlaced
}

// reinvestFreed offers freed capacity back to the placement: the demanders
// of every object whose replica set shrank, and the demand cells of every
// server that gained residual, are re-judged against the merged schema and
// placed where the global delta is negative.
func reinvestFreed(carried *replication.Schema, p *replication.Problem, affected map[int32]bool, freed map[int]bool) (placed int, recovered int64) {
	try := func(k int32, m int) {
		if carried.HasReplica(k, m) || carried.CanPlace(k, m) != nil {
			return
		}
		if carried.DeltaIfPlaced(k, m) >= 0 {
			return
		}
		if d, err := carried.PlaceReplica(k, m); err == nil {
			recovered -= d
			placed++
			affected[k] = true // revisit the object next pass
		}
	}
	objs := make([]int32, 0, len(affected))
	for k := range affected {
		objs = append(objs, k)
	}
	sort.Slice(objs, func(a, b int) bool { return objs[a] < objs[b] })
	for _, k := range objs {
		for _, ref := range p.DemandersOf(k) {
			try(k, int(ref.Server))
		}
	}
	srvs := make([]int, 0, len(freed))
	for m := range freed {
		srvs = append(srvs, m)
	}
	sort.Ints(srvs)
	for _, m := range srvs {
		for _, dem := range p.Work.PerServer[m] {
			try(dem.Object, m)
		}
	}
	return placed, recovered
}

// Close tears the coordinator down: loops, membership clients, endpoint,
// then the mirror.
func (co *Coordinator) Close() {
	if co.loopCancel != nil {
		co.loopCancel()
	}
	co.wg.Wait()
	co.membership.Close()
	co.ep.Close()
	co.mirror.Close()
}
