package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/hierarchy"
	"repro/internal/mechanism"
	"repro/internal/online"
	"repro/internal/replication"
)

// CoordinatorConfig tunes the coordinator.
type CoordinatorConfig struct {
	// Codec is the RPC codec (must match the shards').
	Codec Codec
	// Controller configures the global mirror and sets the cluster-wide
	// drift semantics: DriftThreshold/SolveDebounce decide when the
	// coordinator fans a solve out to the shards, exactly like the single
	// daemon's auto-solve. The mirror itself never runs a solver.
	Controller online.Config
	// ProbeTimeout and DeathThreshold tune the shard failure detector.
	ProbeTimeout   time.Duration
	DeathThreshold int
	// ForwardTimeout bounds every forwarded RPC (assign, deltas, solve,
	// placement, metrics); default 30s — regional solves run inside it.
	ForwardTimeout time.Duration
	// Payment is the top-level delegate game's payment rule (default
	// second-price, the paper's truthful choice).
	Payment mechanism.PaymentRule
	// Dial overrides the dialer per shard (fault injection).
	Dial func(peer Peer) DialFunc
}

// MergeReport summarizes one top-level merge.
type MergeReport struct {
	// Version is the mirror epoch the merged placement was published as.
	Version uint64 `json:"version"`
	// Regions is how many regional placements contributed.
	Regions int `json:"regions"`
	// Winner is the delegate game's winning shard (-1 when no region bid).
	Winner int `json:"winner"`
	// Payment is the winner's second-price payment (the best runner-up
	// region's saved OTC).
	Payment int64 `json:"payment"`
	// Dropped counts merged replicas infeasible on the mirror instance.
	Dropped int `json:"dropped"`
	// OTC and Savings are the merged placement's economics.
	OTC     int64   `json:"otc"`
	Savings float64 `json:"savings_percent"`
}

// Coordinator is the cluster's top level: it mirrors the global state (the
// source of truth deltas apply to), partitions servers into regions by
// communication-cost proximity, ships masked regions to shard daemons, runs
// their games concurrently, and merges the winners through the paper's
// top-level delegate game. It implements server.Backend, so the single
// daemon's entire HTTP surface — /route, /epochs, /placement, /metrics —
// serves the merged placement unchanged.
type Coordinator struct {
	cfg        CoordinatorConfig
	mirror     *online.Controller
	shards     []Peer
	membership *Membership
	ep         *Endpoint

	// opMu serializes the state-changing operations (deltas, assign, solve,
	// merge) so an assignment always ships a consistent (state, carry) pair.
	// The read path (Route/Current) never takes it.
	opMu sync.Mutex

	mu               sync.Mutex
	assignVer        uint64
	regions          map[int][]int32 // live assignment: shard id -> members
	regionOf         []int32         // server -> shard id, -1 unassigned
	repartitions     int64
	merges           int64
	topDecisions     int64
	delegatePayments map[int]int64
	lastWinner       int
	forwardErrors    int64
	lastPayments     []int64
	lastErr          string

	reassignKick chan struct{}
	solveKick    chan struct{}
	loopCancel   context.CancelFunc
	wg           sync.WaitGroup
}

// NewCoordinator builds the coordinator over the global instance and the
// static shard address list (shard i is addrs[i]). Call Serve to answer
// probes and Start for the background loops; the cluster forms on the first
// AssignNow.
func NewCoordinator(p *replication.Problem, shardAddrs []string, cfg CoordinatorConfig) (*Coordinator, error) {
	if len(shardAddrs) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one shard address")
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	mirror, err := online.New(p.Cost, p.Work, p.Capacity, cfg.Controller)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:              cfg,
		mirror:           mirror,
		ep:               NewEndpoint(cfg.Codec),
		regions:          map[int][]int32{},
		regionOf:         make([]int32, p.M),
		delegatePayments: map[int]int64{},
		lastWinner:       -1,
		reassignKick:     make(chan struct{}, 1),
		solveKick:        make(chan struct{}, 1),
	}
	for i := range co.regionOf {
		co.regionOf[i] = -1
	}
	for i, addr := range shardAddrs {
		co.shards = append(co.shards, Peer{ID: i, Addr: addr})
	}
	co.membership = NewMembership(co.shards, MembershipConfig{
		Codec:          cfg.Codec,
		ProbeTimeout:   cfg.ProbeTimeout,
		DeathThreshold: cfg.DeathThreshold,
		Dial:           cfg.Dial,
		OnChange: func(_ Peer, _, to PeerState) {
			// A shard died or came back: its region must move. The worker
			// re-partitions; until then the generation check keeps stale
			// shards from absorbing misrouted work.
			if to == Dead || to == Alive {
				co.kick(co.reassignKick)
			}
		},
	})
	HandleFunc(co.ep, MethodPing, func(ctx context.Context, req *PingRequest) (any, error) {
		return &PingReply{Role: "coordinator", Assign: co.AssignVersion(), Version: co.mirror.Current().Version}, nil
	})
	return co, nil
}

func (co *Coordinator) kick(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// Serve starts answering RPC probes on lis.
func (co *Coordinator) Serve(lis net.Listener) { co.ep.Serve(lis) }

// Addr returns the coordinator's RPC listen address.
func (co *Coordinator) Addr() string { return co.ep.Addr() }

// AssignVersion reports the current assignment generation.
func (co *Coordinator) AssignVersion() uint64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.assignVer
}

// Start launches the background loops: shard probes, the re-partition
// worker, and the drift-triggered cluster solve worker (debounced like the
// single daemon's).
func (co *Coordinator) Start(ctx context.Context, probeInterval time.Duration) {
	ctx, cancel := context.WithCancel(ctx)
	co.loopCancel = cancel
	co.membership.Start(ctx, probeInterval)
	co.wg.Add(2)
	go func() {
		defer co.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-co.reassignKick:
			}
			if err := co.AssignNow(ctx); err != nil {
				co.noteErr(err)
			}
		}
	}()
	go func() {
		defer co.wg.Done()
		var lastSolve time.Time
		for {
			select {
			case <-ctx.Done():
				return
			case <-co.solveKick:
			}
			if wait := co.cfg.Controller.SolveDebounce - time.Since(lastSolve); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-ctx.Done():
					t.Stop()
					return
				case <-t.C:
				}
			}
			lastSolve = time.Now()
			if err := co.SolveNow(ctx); err != nil {
				co.noteErr(err)
			}
		}
	}()
}

func (co *Coordinator) noteErr(err error) {
	co.mu.Lock()
	co.lastErr = err.Error()
	co.mu.Unlock()
}

// liveAssigned snapshots the shards that are both alive and hold a region.
func (co *Coordinator) liveAssigned() []int {
	alive := co.membership.Alive()
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]int, 0, len(alive))
	for _, id := range alive {
		if _, ok := co.regions[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// AssignNow re-partitions the servers over the live shards and ships every
// region: a masked state snapshot plus the current merged placement as
// carry. Shards on a dead list keep their stale generation and are fenced
// out by the generation check until they rejoin and get a fresh region.
func (co *Coordinator) AssignNow(ctx context.Context) error {
	co.opMu.Lock()
	defer co.opMu.Unlock()

	live := co.membership.Alive()
	if len(live) == 0 {
		return errors.New("cluster: no live shards to assign")
	}
	e := co.mirror.Current()
	parts := hierarchy.Partition(e.Problem, len(live))
	full := co.mirror.ExportState()
	carry := e.Schema.Matrix()

	co.mu.Lock()
	co.assignVer++
	ver := co.assignVer
	co.mu.Unlock()

	type result struct {
		shard   int
		members []int32
		err     error
	}
	results := make(chan result, len(live))
	for j, id := range live {
		go func(j, id int) {
			members := parts[j]
			req := &AssignRequest{Version: ver, Members: members, State: full.Mask(members), Carry: carry}
			cctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
			defer cancel()
			err := co.membership.Client(id).Call(cctx, MethodAssign, req, &AssignReply{})
			results <- result{shard: id, members: members, err: err}
		}(j, id)
	}
	regions := make(map[int][]int32, len(live))
	regionOf := make([]int32, e.Problem.M)
	for i := range regionOf {
		regionOf[i] = -1
	}
	var firstErr error
	for range live {
		r := <-results
		if r.err != nil {
			co.membership.ReportFailure(r.shard)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: assign shard %d: %w", r.shard, r.err)
			}
			continue
		}
		regions[r.shard] = r.members
		for _, srv := range r.members {
			regionOf[srv] = int32(r.shard)
		}
	}
	co.mu.Lock()
	co.regions = regions
	co.regionOf = regionOf
	co.repartitions++
	co.mu.Unlock()
	if len(regions) == 0 {
		return firstErr
	}
	return nil
}

// Current, Route, Placement, Metrics, Subscribe, Unsubscribe and
// DrainSubscribers delegate to the mirror: the coordinator serves routes and
// the epoch stream from the merged global placement, so routing clients work
// against a cluster exactly as against a single daemon.

// Current returns the mirror's live epoch.
func (co *Coordinator) Current() *online.Epoch { return co.mirror.Current() }

// Route answers from the merged placement.
func (co *Coordinator) Route(server int, object int32) (int32, error) {
	return co.mirror.Route(server, object)
}

// Placement reports the merged placement.
func (co *Coordinator) Placement() replication.PlacementReport { return co.mirror.Placement() }

// Metrics reports the mirror's controller metrics.
func (co *Coordinator) Metrics() online.Metrics { return co.mirror.Metrics() }

// Subscribe opens an epoch stream on the mirror.
func (co *Coordinator) Subscribe(since uint64, buf int) *online.Subscription {
	return co.mirror.Subscribe(since, buf)
}

// Unsubscribe ends a mirror subscription.
func (co *Coordinator) Unsubscribe(sub *online.Subscription) { co.mirror.Unsubscribe(sub) }

// DrainSubscribers drains the mirror's epoch stream.
func (co *Coordinator) DrainSubscribers() { co.mirror.DrainSubscribers() }

// LastSolvePayments returns the per-server payments summed across the
// regional games of the most recent cluster solve.
func (co *Coordinator) LastSolvePayments() []int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.lastPayments == nil {
		return nil
	}
	return append([]int64(nil), co.lastPayments...)
}

// ApplyDeltas applies a batch to the global mirror, then fans it out: demand
// deltas go to the owning shard, catalogue deltas to every shard, and
// membership deltas trigger a full re-partition (no piecemeal forwarding —
// the partition itself changed). A shard that fails its forward is reported
// to the failure detector and re-synced by the next assignment; the mirror
// remains the source of truth either way.
func (co *Coordinator) ApplyDeltas(ds []online.Delta) (online.Applied, error) {
	co.opMu.Lock()
	a, err := co.mirror.ApplyDeltas(ds)
	if err != nil {
		co.opMu.Unlock()
		return a, err
	}

	co.mu.Lock()
	regionOf := co.regionOf
	ver := co.assignVer
	co.mu.Unlock()

	perShard, membership, rerr := online.RouteDeltas(ds, func(server int) int {
		if server < 0 || server >= len(regionOf) {
			return -1
		}
		return int(regionOf[server])
	}, len(co.shards))

	if ver == 0 || membership || rerr != nil {
		// Unformed cluster, membership change, or a server outside the live
		// assignment (it joined since): re-partition from fresh state, which
		// ships the new demand inside the snapshots.
		co.opMu.Unlock()
		if aerr := co.AssignNow(context.Background()); aerr != nil {
			co.noteErr(aerr)
		}
	} else {
		ctx := context.Background()
		var wg sync.WaitGroup
		for id, batch := range perShard {
			if len(batch) == 0 {
				continue
			}
			wg.Add(1)
			go func(id int, batch []online.Delta) {
				defer wg.Done()
				cctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
				defer cancel()
				req := &DeltasRequest{Assign: ver, Deltas: batch}
				if err := co.membership.Client(id).Call(cctx, MethodDeltas, req, &online.Applied{}); err != nil {
					co.mu.Lock()
					co.forwardErrors++
					co.mu.Unlock()
					co.membership.ReportFailure(id)
					co.kick(co.reassignKick)
				}
			}(id, batch)
		}
		wg.Wait()
		co.opMu.Unlock()
	}

	if a.SolveScheduled {
		co.kick(co.solveKick)
	}
	return a, nil
}

// SolveNow runs one cluster-wide solve: every live region's game in
// parallel, then the top-level merge. Implements server.Backend's solve, so
// POST /solve on the coordinator solves the whole cluster.
func (co *Coordinator) SolveNow(ctx context.Context) error {
	co.opMu.Lock()
	defer co.opMu.Unlock()
	return co.solveLocked(ctx)
}

func (co *Coordinator) solveLocked(ctx context.Context) error {
	live := co.liveAssigned()
	if len(live) == 0 {
		return errors.New("cluster: no live assigned shards to solve")
	}
	type result struct {
		shard int
		rep   SolveReply
		err   error
	}
	results := make(chan result, len(live))
	for _, id := range live {
		go func(id int) {
			cctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
			defer cancel()
			var rep SolveReply
			err := co.membership.Client(id).Call(cctx, MethodSolve, &SolveRequest{}, &rep)
			results <- result{shard: id, rep: rep, err: err}
		}(id)
	}
	payments := make([]int64, co.mirror.Current().Problem.M)
	solved := 0
	var firstErr error
	for range live {
		r := <-results
		if r.err != nil {
			co.membership.ReportFailure(r.shard)
			co.kick(co.reassignKick)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: solve shard %d: %w", r.shard, r.err)
			}
			continue
		}
		solved++
		for i, p := range r.rep.Payments {
			if i < len(payments) {
				payments[i] += p
			}
		}
	}
	if solved == 0 {
		return firstErr
	}
	co.mu.Lock()
	co.lastPayments = payments
	co.mu.Unlock()
	_, err := co.mergeLocked(ctx)
	return err
}

// MergeNow pulls every live region's placement, runs the top-level delegate
// game over the regional savings bids, and installs the union on the mirror
// as the next merged epoch.
func (co *Coordinator) MergeNow(ctx context.Context) (MergeReport, error) {
	co.opMu.Lock()
	defer co.opMu.Unlock()
	return co.mergeLocked(ctx)
}

func (co *Coordinator) mergeLocked(ctx context.Context) (MergeReport, error) {
	live := co.liveAssigned()
	if len(live) == 0 {
		return MergeReport{}, errors.New("cluster: no live assigned shards to merge")
	}
	type pull struct {
		part regionPart
		err  error
	}
	results := make(chan pull, len(live))
	for _, id := range live {
		go func(id int) {
			cctx, cancel := context.WithTimeout(ctx, co.cfg.ForwardTimeout)
			defer cancel()
			var rep PlacementReply
			err := co.membership.Client(id).Call(cctx, MethodPlacement, &PlacementRequest{}, &rep)
			results <- pull{part: regionPart{shard: id, rep: rep}, err: err}
		}(id)
	}
	var parts []regionPart
	for range live {
		r := <-results
		if r.err != nil {
			co.membership.ReportFailure(r.part.shard)
			co.kick(co.reassignKick)
			continue
		}
		parts = append(parts, r.part)
	}
	if len(parts) == 0 {
		return MergeReport{}, errors.New("cluster: every placement pull failed")
	}
	sort.Slice(parts, func(a, b int) bool { return parts[a].shard < parts[b].shard })

	// The top-level delegate game: each region's delegate bids the transfer
	// cost its game saved; the winner is paid the runner-up's savings
	// (second-price — Axiom 5's incentive, applied one level up). The
	// allocation itself is the union: regions own disjoint server sets, so
	// every regional winner coexists in the merged placement, and the game
	// ranks the delegates for payment and precedence accounting.
	bids := make([]mechanism.Bid, 0, len(parts))
	for _, pt := range parts {
		bids = append(bids, mechanism.Bid{Agent: pt.shard, Value: pt.rep.SavedOTC})
	}
	winner, payment := -1, int64(0)
	if round, ok := mechanism.RunRound(bids, co.cfg.Payment); ok {
		winner, payment = round.Winner.Agent, round.Payment
		co.mu.Lock()
		co.topDecisions++
		co.delegatePayments[winner] += payment
		co.lastWinner = winner
		co.mu.Unlock()
	}

	e := co.mirror.Current()
	merged := mergeParts(e.Problem.N, e.Problem.Work.Primary, parts)
	dropped := co.mirror.InstallPlacement(merged)
	co.mu.Lock()
	co.merges++
	co.mu.Unlock()
	cur := co.mirror.Current()
	return MergeReport{
		Version: cur.Version,
		Regions: len(parts),
		Winner:  winner,
		Payment: payment,
		Dropped: dropped,
		OTC:     cur.Schema.TotalCost(),
		Savings: cur.Schema.Savings(),
	}, nil
}

// regionPart is one region's contribution to a merge.
type regionPart struct {
	shard int
	rep   PlacementReply
}

// mergeParts unions the regional placements: object k's merged replica set
// is its primary plus every member-owned replica each region placed.
// Replicas a region reports on servers outside its member set (it cannot
// create them — masked capacity forbids it — but a stale carry might still
// list them) are ignored, as are replicas on regions that did not report
// (their servers' surplus replicas dissolve, the eviction semantics).
func mergeParts(n int, primary []int32, parts []regionPart) [][]int32 {
	memberOf := make([]map[int32]bool, len(parts))
	for i, pt := range parts {
		memberOf[i] = make(map[int32]bool, len(pt.rep.Members))
		for _, s := range pt.rep.Members {
			memberOf[i][s] = true
		}
	}
	out := make([][]int32, n)
	for k := 0; k < n; k++ {
		set := map[int32]bool{primary[k]: true}
		for i, pt := range parts {
			if k >= len(pt.rep.Matrix) {
				continue
			}
			for _, s := range pt.rep.Matrix[k] {
				if memberOf[i][s] {
					set[s] = true
				}
			}
		}
		row := make([]int32, 0, len(set))
		for s := range set {
			row = append(row, s)
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		out[k] = row
	}
	return out
}

// Close tears the coordinator down: loops, membership clients, endpoint,
// then the mirror.
func (co *Coordinator) Close() {
	if co.loopCancel != nil {
		co.loopCancel()
	}
	co.wg.Wait()
	co.membership.Close()
	co.ep.Close()
	co.mirror.Close()
}
