package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// PeerState is a peer's health as seen by this member.
type PeerState int

// Alive → Suspect (first failed probe) → Dead (DeathThreshold consecutive
// failures); any successful probe returns the peer to Alive.
const (
	Alive PeerState = iota
	Suspect
	Dead
)

// String names the state.
func (s PeerState) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("PeerState(%d)", int(s))
	}
}

// Peer is one statically seeded cluster member.
type Peer struct {
	ID   int    `json:"id"`
	Addr string `json:"addr"`
}

// PeerStatus is a point-in-time health snapshot of one peer.
type PeerStatus struct {
	Peer
	State PeerState `json:"state"`
	// Fails is the current consecutive-failure streak.
	Fails int `json:"fails"`
	// Probes counts probe attempts since construction.
	Probes int64 `json:"probes"`
}

// MembershipConfig tunes the prober.
type MembershipConfig struct {
	// Codec is the RPC codec shared with the probed endpoints.
	Codec Codec
	// ProbeTimeout bounds one ping exchange (default 500ms).
	ProbeTimeout time.Duration
	// DeathThreshold is the consecutive-failure count that declares a peer
	// Dead (default 2; below that it is Suspect).
	DeathThreshold int
	// Dial builds the dialer for one peer — the seam the fault matrix
	// injects faultnet schedules through. Nil means plain TCP for all.
	Dial func(peer Peer) DialFunc
	// OnChange, when set, fires after a probe round for every peer whose
	// state changed, outside the membership lock.
	OnChange func(peer Peer, from, to PeerState)
}

// Membership probes a static seed list and tracks per-peer health. It is the
// failure detector both cluster roles run: the coordinator probes its shards
// (a Dead shard is evicted and its region re-assigned), each shard probes
// the coordinator (a Dead coordinator flips the shard to autonomous mode).
type Membership struct {
	cfg     MembershipConfig
	peers   []Peer
	clients map[int]*Client

	mu     sync.Mutex
	status map[int]*PeerStatus

	loopWG     sync.WaitGroup
	loopCancel context.CancelFunc
}

// NewMembership builds the prober over a static peer list. Peers start
// Alive: the cluster forms optimistically and the probes demote whoever
// fails to answer.
func NewMembership(peers []Peer, cfg MembershipConfig) *Membership {
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.DeathThreshold <= 0 {
		cfg.DeathThreshold = 2
	}
	m := &Membership{
		cfg:     cfg,
		peers:   append([]Peer(nil), peers...),
		clients: make(map[int]*Client, len(peers)),
		status:  make(map[int]*PeerStatus, len(peers)),
	}
	for _, p := range m.peers {
		var dial DialFunc
		if cfg.Dial != nil {
			dial = cfg.Dial(p)
		}
		m.clients[p.ID] = NewClient(p.Addr, cfg.Codec, dial)
		m.status[p.ID] = &PeerStatus{Peer: p, State: Alive}
	}
	return m
}

// Client returns the RPC client for a peer (shared with the prober; calls
// are serialized per client).
func (m *Membership) Client(id int) *Client { return m.clients[id] }

// ProbeOnce runs one probe round — every peer pinged concurrently, each
// bounded by ProbeTimeout — and returns when the round completes. Tests call
// it directly to step the failure detector deterministically; Start wraps it
// in a timer loop for the daemons.
func (m *Membership) ProbeOnce(ctx context.Context) {
	type outcome struct {
		id int
		ok bool
	}
	results := make(chan outcome, len(m.peers))
	for _, p := range m.peers {
		go func(p Peer) {
			pctx, cancel := context.WithTimeout(ctx, m.cfg.ProbeTimeout)
			defer cancel()
			err := m.clients[p.ID].Call(pctx, "ping", &PingRequest{}, &PingReply{})
			results <- outcome{id: p.ID, ok: err == nil}
		}(p)
	}
	type change struct {
		peer     Peer
		from, to PeerState
	}
	var changes []change
	m.mu.Lock()
	for range m.peers {
		r := <-results
		st := m.status[r.id]
		st.Probes++
		from := st.State
		if r.ok {
			st.Fails = 0
			st.State = Alive
		} else {
			st.Fails++
			if st.Fails >= m.cfg.DeathThreshold {
				st.State = Dead
			} else {
				st.State = Suspect
			}
		}
		if st.State != from {
			changes = append(changes, change{peer: st.Peer, from: from, to: st.State})
		}
	}
	m.mu.Unlock()
	if m.cfg.OnChange != nil {
		for _, c := range changes {
			m.cfg.OnChange(c.peer, c.from, c.to)
		}
	}
}

// ReportFailure feeds an out-of-band RPC failure (a delta forward or solve
// call that died) into the failure detector, so the next decision does not
// wait for a probe round to notice.
func (m *Membership) ReportFailure(id int) {
	var fire func()
	m.mu.Lock()
	if st, ok := m.status[id]; ok {
		from := st.State
		st.Fails++
		if st.Fails >= m.cfg.DeathThreshold {
			st.State = Dead
		} else {
			st.State = Suspect
		}
		if st.State != from && m.cfg.OnChange != nil {
			peer, to := st.Peer, st.State
			fire = func() { m.cfg.OnChange(peer, from, to) }
		}
	}
	m.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// State returns one peer's current state (Dead for unknown ids).
func (m *Membership) State(id int) PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.status[id]; ok {
		return st.State
	}
	return Dead
}

// Alive lists the ids of non-Dead peers, ascending. Suspect peers count as
// alive: one missed probe must not re-partition the cluster.
func (m *Membership) Alive() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]int, 0, len(m.status))
	for id, st := range m.status {
		if st.State != Dead {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Snapshot lists every peer's status, ascending by id.
func (m *Membership) Snapshot() []PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerStatus, 0, len(m.status))
	for _, st := range m.status {
		out = append(out, *st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Start runs ProbeOnce every interval until the context ends or Close is
// called.
func (m *Membership) Start(ctx context.Context, interval time.Duration) {
	ctx, cancel := context.WithCancel(ctx)
	m.loopCancel = cancel
	m.loopWG.Add(1)
	go func() {
		defer m.loopWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				m.ProbeOnce(ctx)
			}
		}
	}()
}

// Close stops the probe loop and closes every peer client.
func (m *Membership) Close() {
	if m.loopCancel != nil {
		m.loopCancel()
	}
	m.loopWG.Wait()
	for _, c := range m.clients {
		c.Close()
	}
}
