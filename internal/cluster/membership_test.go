package cluster

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/testutil"
)

// pingEndpoint is a minimal peer that only answers MethodPing.
func pingEndpoint(t *testing.T) *Endpoint {
	t.Helper()
	ep := NewEndpoint(CodecGob)
	HandleFunc(ep, MethodPing, func(ctx context.Context, req *PingRequest) (any, error) {
		return &PingReply{Role: "test"}, nil
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep.Serve(lis)
	t.Cleanup(ep.Close)
	return ep
}

func TestMembershipProbeTransitions(t *testing.T) {
	testutil.LeakCheck(t)
	up := pingEndpoint(t)
	faults := &faultnet.Config{FailDial: map[int]bool{1: true}}

	type change struct {
		id       int
		from, to PeerState
	}
	var mu sync.Mutex
	var changes []change

	m := NewMembership([]Peer{
		{ID: 0, Addr: up.Addr()},
		{ID: 1, Addr: up.Addr()}, // same endpoint, but the dialer refuses peer 1
	}, MembershipConfig{
		DeathThreshold: 2,
		Dial: func(p Peer) DialFunc {
			return FaultyDialer(faults, p.ID)
		},
		OnChange: func(p Peer, from, to PeerState) {
			mu.Lock()
			changes = append(changes, change{p.ID, from, to})
			mu.Unlock()
		},
	})
	defer m.Close()

	ctx := context.Background()
	if got := m.State(0); got != Alive {
		t.Fatalf("initial state of peer 0 = %v", got)
	}

	// Probe 1: peer 1 has one consecutive failure -> Suspect.
	m.ProbeOnce(ctx)
	if got := m.State(1); got != Suspect {
		t.Fatalf("after 1 failed probe peer 1 = %v, want Suspect", got)
	}
	// Suspect still counts as alive: the coordinator keeps assigning to it.
	if alive := m.Alive(); len(alive) != 2 {
		t.Fatalf("Alive() with a Suspect peer = %v, want both", alive)
	}

	// Probe 2: second consecutive failure crosses DeathThreshold -> Dead.
	m.ProbeOnce(ctx)
	if got := m.State(1); got != Dead {
		t.Fatalf("after 2 failed probes peer 1 = %v, want Dead", got)
	}
	if alive := m.Alive(); len(alive) != 1 || alive[0] != 0 {
		t.Fatalf("Alive() after death = %v, want just peer 0", alive)
	}
	if got := m.State(0); got != Alive {
		t.Fatalf("healthy peer 0 = %v", got)
	}

	// Recovery: lift the fault, the next probe resurrects the peer.
	delete(faults.FailDial, 1)
	m.ProbeOnce(ctx)
	if got := m.State(1); got != Alive {
		t.Fatalf("after recovery peer 1 = %v, want Alive", got)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []change{
		{1, Alive, Suspect},
		{1, Suspect, Dead},
		{1, Dead, Alive},
	}
	if len(changes) != len(want) {
		t.Fatalf("OnChange log = %v, want %v", changes, want)
	}
	for i, c := range changes {
		if c != want[i] {
			t.Fatalf("OnChange[%d] = %v, want %v", i, c, want[i])
		}
	}
}

func TestMembershipReportFailure(t *testing.T) {
	testutil.LeakCheck(t)
	up := pingEndpoint(t)
	m := NewMembership([]Peer{{ID: 0, Addr: up.Addr()}}, MembershipConfig{DeathThreshold: 2})
	defer m.Close()

	// Out-of-band failures (forwarding errors) feed the same state machine.
	m.ReportFailure(0)
	if got := m.State(0); got != Suspect {
		t.Fatalf("after 1 reported failure = %v, want Suspect", got)
	}
	m.ReportFailure(0)
	if got := m.State(0); got != Dead {
		t.Fatalf("after 2 reported failures = %v, want Dead", got)
	}
	// A successful probe clears the counter.
	m.ProbeOnce(context.Background())
	if got := m.State(0); got != Alive {
		t.Fatalf("after successful probe = %v, want Alive", got)
	}
}

func TestMembershipUnknownPeerIsDead(t *testing.T) {
	up := pingEndpoint(t)
	m := NewMembership([]Peer{{ID: 0, Addr: up.Addr()}}, MembershipConfig{})
	defer m.Close()
	if got := m.State(42); got != Dead {
		t.Fatalf("unknown peer state = %v, want Dead", got)
	}
	if m.Client(42) != nil {
		t.Fatal("Client for unknown peer is non-nil")
	}
}

func TestMembershipStartLoopProbes(t *testing.T) {
	testutil.LeakCheck(t)
	faults := &faultnet.Config{FailDial: map[int]bool{0: true}}
	m := NewMembership([]Peer{{ID: 0, Addr: "127.0.0.1:1"}}, MembershipConfig{
		DeathThreshold: 1,
		ProbeTimeout:   100 * time.Millisecond,
		Dial:           func(p Peer) DialFunc { return FaultyDialer(faults, p.ID) },
	})
	ctx, cancel := context.WithCancel(context.Background())
	m.Start(ctx, 10*time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for m.State(0) != Dead {
		if time.Now().After(deadline) {
			t.Fatal("background probe loop never declared the peer dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	m.Close()
}
