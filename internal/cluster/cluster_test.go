package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	_ "repro/internal/agtram" // register the agt-ram solver
	"repro/internal/faultnet"
	"repro/internal/hierarchy"
	"repro/internal/online"
	"repro/internal/replication"
	"repro/internal/testutil"
)

func listen(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return lis
}

// demandTrace builds a deterministic delta trace: batches of demand bumps
// over random (server, object) pairs from a seeded generator. The same seed
// yields the same trace, so both sides of a differential test see identical
// input.
func demandTrace(p *replication.Problem, seed int64, batches, perBatch int) [][]online.Delta {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]online.Delta, batches)
	for b := range out {
		batch := make([]online.Delta, perBatch)
		for i := range batch {
			batch[i] = online.Delta{
				Kind:   online.KindDemand,
				Server: rng.Intn(p.M),
				Object: int32(rng.Intn(p.N)),
				Reads:  int64(rng.Intn(40) + 1),
				Writes: int64(rng.Intn(5)),
			}
		}
		out[b] = batch
	}
	return out
}

// TestOneShardClusterBitIdentical is the keystone differential test: a
// cluster of exactly one shard, driven over real loopback TCP, must be
// bit-identical to a single daemon fed the same seeded trace — same epoch
// versions, same placement matrices, same Vickrey payments, same route
// answer for every (server, object) pair. The masking argument says a
// 1-shard mask is the identity, so any divergence is a bug in the RPC
// plane, the state export, or the merge — not a tolerable approximation.
func TestOneShardClusterBitIdentical(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(7))
	cfg := online.Config{Seed: 42}
	ctx := context.Background()

	single, err := online.New(p.Cost, p.Work, p.Capacity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	sh := NewShard(0, p.Cost, ShardConfig{Codec: CodecGob, Controller: cfg})
	sh.Serve(listen(t))
	defer sh.Close()

	co, err := NewCoordinator(p, []string{sh.Addr()}, CoordinatorConfig{Codec: CodecGob, Controller: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if err := co.AssignNow(ctx); err != nil {
		t.Fatal(err)
	}

	compare := func(step string) {
		t.Helper()
		se, ce := single.Current(), co.Current()
		if se.Version != ce.Version {
			t.Fatalf("%s: version diverged: single %d, cluster %d", step, se.Version, ce.Version)
		}
		sm, cm := se.Schema.Matrix(), ce.Schema.Matrix()
		if !reflect.DeepEqual(sm, cm) {
			t.Fatalf("%s: placement matrices diverged at version %d", step, se.Version)
		}
		if so, com := se.Schema.TotalCost(), ce.Schema.TotalCost(); so != com {
			t.Fatalf("%s: OTC diverged: single %d, cluster %d", step, so, com)
		}
		for server := 0; server < p.M; server++ {
			for k := int32(0); k < int32(p.N); k += 7 { // stride keeps the sweep cheap
				sf, serr := single.Route(server, k)
				cf, cerr := co.Route(server, k)
				if (serr != nil) != (cerr != nil) {
					t.Fatalf("%s: route(%d,%d) error diverged: single %v, cluster %v", step, server, k, serr, cerr)
				}
				if serr == nil && sf != cf {
					t.Fatalf("%s: route(%d,%d) diverged: single %d, cluster %d", step, server, k, sf, cf)
				}
			}
		}
	}

	solveBoth := func(step string) {
		t.Helper()
		if err := single.SolveNow(ctx); err != nil {
			t.Fatalf("%s: single solve: %v", step, err)
		}
		if err := co.SolveNow(ctx); err != nil {
			t.Fatalf("%s: cluster solve: %v", step, err)
		}
		if sp, cp := single.LastSolvePayments(), co.LastSolvePayments(); !reflect.DeepEqual(sp, cp) {
			t.Fatalf("%s: payments diverged:\nsingle  %v\ncluster %v", step, sp, cp)
		}
		compare(step)
	}

	compare("init")
	solveBoth("initial solve")

	for i, batch := range demandTrace(p, 99, 6, 5) {
		step := fmt.Sprintf("batch %d", i)
		if _, err := single.ApplyDeltas(batch); err != nil {
			t.Fatalf("%s: single apply: %v", step, err)
		}
		if _, err := co.ApplyDeltas(batch); err != nil {
			t.Fatalf("%s: cluster apply: %v", step, err)
		}
		compare(step)
		if i%2 == 1 {
			solveBoth(step + " solve")
		}
	}

	// Membership churn: a server leaves and later rejoins. On the cluster
	// side this forces a re-partition (the coordinator ships fresh masked
	// state); the mirror must stay in lockstep with the single daemon
	// through both the eviction and the cold re-solve.
	victim := 3
	leave := []online.Delta{{Kind: online.KindServerLeave, Server: victim}}
	if _, err := single.ApplyDeltas(leave); err != nil {
		t.Fatal(err)
	}
	if _, err := co.ApplyDeltas(leave); err != nil {
		t.Fatal(err)
	}
	if got := co.AssignVersion(); got < 2 {
		t.Fatalf("membership delta did not re-partition: assign version %d", got)
	}
	compare("server leave")
	solveBoth("post-leave solve")

	join := []online.Delta{{Kind: online.KindServerJoin, Server: victim, Capacity: p.Capacity[victim]}}
	if _, err := single.ApplyDeltas(join); err != nil {
		t.Fatal(err)
	}
	if _, err := co.ApplyDeltas(join); err != nil {
		t.Fatal(err)
	}
	compare("server rejoin")
	solveBoth("post-rejoin solve")
}

// TestMultiShardClusterInvariants checks what a multi-shard cluster must
// preserve even though its placements legitimately differ from the single
// daemon's: every route answer serves from a server that actually holds the
// object, primaries are never lost, and the merged economics are coherent.
func TestMultiShardClusterInvariants(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(11))
	cfg := online.Config{Seed: 5}
	ctx := context.Background()

	const shards = 3
	var shs []*Shard
	var addrs []string
	for i := 0; i < shards; i++ {
		sh := NewShard(i, p.Cost, ShardConfig{Codec: CodecGob, Controller: cfg})
		sh.Serve(listen(t))
		defer sh.Close()
		shs = append(shs, sh)
		addrs = append(addrs, sh.Addr())
	}
	co, err := NewCoordinator(p, addrs, CoordinatorConfig{Codec: CodecGob, Controller: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if err := co.AssignNow(ctx); err != nil {
		t.Fatal(err)
	}

	// The partition must cover every server exactly once across the shards.
	seen := make([]int, p.M)
	total := 0
	for _, sh := range shs {
		sh.mu.Lock()
		members := append([]int32(nil), sh.members...)
		sh.mu.Unlock()
		for _, s := range members {
			seen[s]++
			total++
		}
	}
	if total != p.M {
		t.Fatalf("partition covers %d of %d servers", total, p.M)
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("server %d assigned to %d regions", s, n)
		}
	}

	for i, batch := range demandTrace(p, 17, 4, 6) {
		if _, err := co.ApplyDeltas(batch); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if err := co.SolveNow(ctx); err != nil {
		t.Fatal(err)
	}

	e := co.Current()
	matrix := e.Schema.Matrix()
	for k := 0; k < p.N; k++ {
		holders := map[int32]bool{}
		for _, s := range matrix[k] {
			holders[s] = true
		}
		if !holders[p.Work.Primary[k]] {
			t.Fatalf("object %d lost its primary %d in the merge", k, p.Work.Primary[k])
		}
	}
	for server := 0; server < p.M; server++ {
		for k := int32(0); k < int32(p.N); k += 5 {
			from, err := co.Route(server, k)
			if err != nil {
				t.Fatalf("route(%d,%d): %v", server, k, err)
			}
			found := false
			for _, s := range matrix[k] {
				if s == from {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("route(%d,%d) = %d, which holds no replica", server, k, from)
			}
		}
	}
	if e.Schema.TotalCost() > e.Schema.BaseCost() {
		t.Fatalf("merged OTC %d exceeds base %d", e.Schema.TotalCost(), e.Schema.BaseCost())
	}
	rep, err := co.MergeNow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regions != shards {
		t.Fatalf("merge saw %d regions, want %d", rep.Regions, shards)
	}
	if rep.Winner < 0 || rep.Winner >= shards {
		t.Fatalf("delegate game winner %d out of range", rep.Winner)
	}
}

// TestClusterCoordinatorCrashFallsBackAutonomous drives the degradation
// switch: a shard that loses its coordinator mid-stream must flip to
// autonomous mode, keep serving routes, and re-solve itself on drift — the
// paper's availability story — then rejoin hierarchical mode when the
// coordinator answers probes again.
func TestClusterCoordinatorCrashFallsBackAutonomous(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(13))
	ctx := context.Background()
	faults := &faultnet.Config{FailDial: map[int]bool{}}

	coLis := listen(t)
	cfg := online.Config{Seed: 9, DriftThreshold: 0.000001}
	sh := NewShard(0, p.Cost, ShardConfig{
		Codec:          CodecGob,
		Controller:     cfg,
		Coordinator:    coLis.Addr().String(),
		DeathThreshold: 2,
		Dial:           func(peer Peer) DialFunc { return FaultyDialer(faults, peer.ID) },
	})
	sh.Serve(listen(t))
	defer sh.Close()

	co, err := NewCoordinator(p, []string{sh.Addr()}, CoordinatorConfig{Codec: CodecGob, Controller: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	co.Serve(coLis)
	if err := co.AssignNow(ctx); err != nil {
		t.Fatal(err)
	}
	if err := co.SolveNow(ctx); err != nil {
		t.Fatal(err)
	}
	// The self-solve worker must be live for the degraded path; a huge probe
	// interval keeps the background failure detector out of the test's way
	// (probes are stepped explicitly).
	sh.Start(ctx, time.Hour)

	sh.ProbeCoordinator(ctx)
	if got := sh.Mode(); got != hierarchy.Hierarchical {
		t.Fatalf("mode with live coordinator = %v", got)
	}

	// Crash: the coordinator stops answering. Two failed probe rounds cross
	// DeathThreshold and flip the shard to autonomous.
	faults.FailDial[0] = true
	sh.coord.Client(0).Close() // drop the cached conn so the next probe redials
	sh.ProbeCoordinator(ctx)
	if got := sh.Mode(); got != hierarchy.Hierarchical {
		t.Fatalf("one missed probe already degraded the shard: %v", got)
	}
	sh.ProbeCoordinator(ctx)
	if got := sh.Mode(); got != hierarchy.Autonomous {
		t.Fatalf("mode after coordinator death = %v, want autonomous", got)
	}

	// Degraded service: deltas posted straight to the shard still apply, the
	// drift trigger kicks the self-solve worker, and routes keep answering.
	backend := sh.Backend()
	v0 := sh.controller().Current().Version
	// Drift only counts savings *drops*, so aim heavy writes at a replicated
	// object: update traffic makes its replicas expensive and the carried
	// placement's savings fall.
	target := int32(-1)
	for k, row := range sh.controller().Current().Schema.Matrix() {
		if len(row) > 1 {
			target = int32(k)
			break
		}
	}
	if target < 0 {
		t.Fatal("solved placement holds no replicas to drift against")
	}
	a, err := backend.ApplyDeltas([]online.Delta{
		{Kind: online.KindDemand, Server: 1, Object: target, Writes: 100000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.SolveScheduled {
		t.Fatalf("heavy write delta did not schedule a solve (drift %v)", a.Drift)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sh.controller().Current().Version < v0+2 { // +1 delta epoch, +1 self-solve epoch
		if time.Now().After(deadline) {
			t.Fatalf("autonomous self-solve never published (version %d)", sh.controller().Current().Version)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := backend.Route(1, 0); err != nil {
		t.Fatalf("degraded shard stopped routing: %v", err)
	}

	// Recovery: the coordinator answers again, one good probe resurrects it
	// and the shard returns to hierarchical mode.
	delete(faults.FailDial, 0)
	sh.ProbeCoordinator(ctx)
	if got := sh.Mode(); got != hierarchy.Hierarchical {
		t.Fatalf("mode after coordinator recovery = %v, want hierarchical", got)
	}
}

// TestClusterShardEvictionRepartitions drives the other half of the fault
// matrix: a shard dies, the coordinator's failure detector evicts it, the
// next assignment re-partitions the full server set over the survivors, and
// the stale generation is fenced out.
func TestClusterShardEvictionRepartitions(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(19))
	cfg := online.Config{Seed: 3}
	ctx := context.Background()

	sh0 := NewShard(0, p.Cost, ShardConfig{Codec: CodecGob, Controller: cfg})
	sh0.Serve(listen(t))
	defer sh0.Close()
	sh1 := NewShard(1, p.Cost, ShardConfig{Codec: CodecGob, Controller: cfg})
	sh1.Serve(listen(t))

	co, err := NewCoordinator(p, []string{sh0.Addr(), sh1.Addr()}, CoordinatorConfig{
		Codec: CodecGob, Controller: cfg, DeathThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if err := co.AssignNow(ctx); err != nil {
		t.Fatal(err)
	}
	if err := co.SolveNow(ctx); err != nil {
		t.Fatal(err)
	}
	if sh0.AssignVersion() != 1 || sh1.AssignVersion() != 1 {
		t.Fatalf("assign versions after first assignment: %d, %d", sh0.AssignVersion(), sh1.AssignVersion())
	}
	// Remember a server shard 1 owns, to target deltas at after the crash.
	sh1.mu.Lock()
	orphan := int(sh1.members[0])
	sh1.mu.Unlock()

	// Crash shard 1 for real: its endpoint closes, every future dial is
	// refused.
	sh1.Close()

	// A delta for the dead shard's region: the mirror absorbs it (source of
	// truth), the forward fails and feeds the failure detector.
	if _, err := co.ApplyDeltas([]online.Delta{
		{Kind: online.KindDemand, Server: orphan, Object: 0, Reads: 50},
	}); err != nil {
		t.Fatal(err)
	}
	co.mu.Lock()
	forwardErrors := co.forwardErrors
	co.mu.Unlock()
	if forwardErrors == 0 {
		t.Fatal("failed forward to the dead shard was not counted")
	}

	// Probe rounds cross the threshold and evict it.
	co.membership.ProbeOnce(ctx)
	co.membership.ProbeOnce(ctx)
	if got := co.membership.State(1); got != Dead {
		t.Fatalf("dead shard state = %v", got)
	}

	// Re-partition: the survivor takes the whole server set at a fresh
	// generation.
	if err := co.AssignNow(ctx); err != nil {
		t.Fatal(err)
	}
	if got := sh0.AssignVersion(); got < 2 {
		t.Fatalf("survivor still on generation %d after re-partition", got)
	}
	sh0.mu.Lock()
	members := len(sh0.members)
	sh0.mu.Unlock()
	if members != p.M {
		t.Fatalf("survivor owns %d of %d servers after eviction", members, p.M)
	}

	// The cluster still solves and routes with one region.
	if err := co.SolveNow(ctx); err != nil {
		t.Fatal(err)
	}
	for server := 0; server < p.M; server++ {
		if _, err := co.Route(server, 0); err != nil {
			t.Fatalf("route(%d,0) after eviction: %v", server, err)
		}
	}

	// Generation fencing: a delta batch stamped with the pre-eviction
	// assignment must be rejected by the survivor.
	cl := NewClient(sh0.Addr(), CodecGob, nil)
	defer cl.Close()
	err = cl.Call(ctx, MethodDeltas, &DeltasRequest{
		Assign: 1,
		Deltas: []online.Delta{{Kind: online.KindDemand, Server: 0, Object: 0, Reads: 1}},
	}, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "assignment") {
		t.Fatalf("stale-generation batch not fenced: %v", err)
	}
}

// TestShardRejectsForeignAndMembershipDeltas pins the ownership guards: a
// shard must refuse demand for servers outside its region and any
// join/leave delta (membership is the coordinator's job).
func TestShardRejectsForeignAndMembershipDeltas(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(23))
	cfg := online.Config{Seed: 1}
	ctx := context.Background()

	sh0 := NewShard(0, p.Cost, ShardConfig{Codec: CodecGob, Controller: cfg})
	sh0.Serve(listen(t))
	defer sh0.Close()
	sh1 := NewShard(1, p.Cost, ShardConfig{Codec: CodecGob, Controller: cfg})
	sh1.Serve(listen(t))
	defer sh1.Close()

	co, err := NewCoordinator(p, []string{sh0.Addr(), sh1.Addr()}, CoordinatorConfig{Codec: CodecGob, Controller: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if err := co.AssignNow(ctx); err != nil {
		t.Fatal(err)
	}

	sh1.mu.Lock()
	foreign := int(sh1.members[0])
	sh1.mu.Unlock()

	if _, err := sh0.applyGuarded(0, []online.Delta{
		{Kind: online.KindDemand, Server: foreign, Object: 0, Reads: 1},
	}); err == nil {
		t.Fatal("shard accepted demand for a server it does not own")
	}
	if _, err := sh0.applyGuarded(0, []online.Delta{
		{Kind: online.KindServerLeave, Server: 0},
	}); err == nil {
		t.Fatal("shard accepted a membership delta")
	}
}
