package sim

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/online"
)

// TestReplayOnlineMatchesAnalyticalOTC drives the full trace through the
// online controller in chronological delta batches and checks the ISSUE's
// invariant: the realized transfer cost of replaying the trace equals the
// analytical OTC of the placement the controller ended on.
func TestReplayOnlineMatchesAnalyticalOTC(t *testing.T) {
	l, cm, p := buildSystem(t, 21)

	// The controller starts with the catalogue (sizes, primaries) and zero
	// demand: everything it learns arrives through deltas.
	w0 := p.Work.Clone()
	for i := range w0.PerServer {
		w0.PerServer[i] = nil
	}
	w0.Finalize()

	for _, solvePerBatch := range []bool{false, true} {
		ctrl, err := online.New(p.Cost, w0, p.Capacity, online.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ReplayOnline(context.Background(), ctrl, l, cm, 8, solvePerBatch, 2)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Batches != 8 || rep.Deltas == 0 {
			t.Fatalf("solvePerBatch=%v: fed %d batches / %d deltas", solvePerBatch, rep.Batches, rep.Deltas)
		}
		if rep.Clients != 2 || rep.ClientChecks == 0 {
			t.Fatalf("solvePerBatch=%v: %d clients verified over %d checks", solvePerBatch, rep.Clients, rep.ClientChecks)
		}
		if rep.Metrics.TransferCost != rep.FinalOTC {
			t.Fatalf("solvePerBatch=%v: realized transfer cost %d != analytical OTC %d",
				solvePerBatch, rep.Metrics.TransferCost, rep.FinalOTC)
		}
		wantSolves := int64(1)
		if solvePerBatch {
			wantSolves = int64(rep.Batches)
		}
		if rep.Solves != wantSolves {
			t.Fatalf("solvePerBatch=%v: ran %d solves, want %d", solvePerBatch, rep.Solves, wantSolves)
		}
		if err := ctrl.Current().Schema.ValidateInvariants(); err != nil {
			t.Fatal(err)
		}

		// The incrementally accumulated demand must equal the offline
		// aggregation (workload.FromTrace) exactly.
		got := ctrl.Current().Problem.Work
		if !reflect.DeepEqual(got.PerServer, p.Work.PerServer) {
			t.Fatalf("solvePerBatch=%v: delta-fed demand diverges from offline aggregation", solvePerBatch)
		}
	}
}

// TestReplayOnlineBadInput covers the error paths.
func TestReplayOnlineBadInput(t *testing.T) {
	l, cm, p := buildSystem(t, 22)
	w0 := p.Work.Clone()
	for i := range w0.PerServer {
		w0.PerServer[i] = nil
	}
	w0.Finalize()
	ctrl, err := online.New(p.Cost, w0, p.Capacity, online.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayOnline(context.Background(), ctrl, l, cm[:1], 4, false, 0); err == nil {
		t.Fatal("client map short of the trace's clients was accepted")
	}
	empty := *l
	empty.Events = nil
	if _, err := ReplayOnline(context.Background(), ctrl, &empty, cm, 4, false, 0); err == nil {
		t.Fatal("empty trace was accepted")
	}
}
