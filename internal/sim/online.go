package sim

import (
	"context"
	"fmt"

	"repro/internal/online"
	"repro/internal/trace"
	"repro/internal/workload"
)

// OnlineReplay summarizes driving a trace through the online controller.
type OnlineReplay struct {
	// Batches is the number of delta batches fed; Deltas the aggregated
	// (server, object) demand deltas across them.
	Batches int
	Deltas  int
	// Solves counts the controller solves this replay ran.
	Solves int64
	// FinalOTC is the analytical OTC of the placement the controller ended
	// on; Metrics is the event-by-event replay of the full trace against
	// that same placement. For a controller whose demand came entirely from
	// this trace, Metrics.TransferCost equals FinalOTC exactly — the
	// incremental delta path and the aggregate OTC formula agree.
	FinalOTC int64
	Metrics  *Metrics
	// Clients is how many routing clients followed the epoch stream during
	// the replay; ClientChecks how many (server, object) lookups were
	// verified bit-identical between the clients and the controller once all
	// clients converged on the final epoch.
	Clients      int
	ClientChecks int
}

// ReplayOnline feeds the trace into the controller as chronological delta
// batches — the daemon's POST /deltas path exercised in-process — solves,
// and replays the full trace against the final placement. cm maps trace
// clients onto the controller's servers and must cover every client (the
// same map Replay requires). With solvePerBatch the controller re-solves
// after every batch, modelling a daemon that keeps up with its feed;
// otherwise it solves once at the end.
//
// clients > 0 additionally runs that many routing.Clients following the
// controller's epoch stream while the deltas and solves land — the
// client-side routing path exercised under churn. After the last publish,
// every client is waited onto the final epoch and its answer for every
// (server, object) pair is checked bit-identical to the controller's.
func ReplayOnline(ctx context.Context, ctrl *online.Controller, l *trace.Log, cm workload.ClientMap, batches int, solvePerBatch bool, clients int) (*OnlineReplay, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if batches < 1 {
		batches = 1
	}
	if len(l.Events) == 0 {
		return nil, fmt.Errorf("sim: trace has no events")
	}

	f := startFollowers(ctx, ctrl, clients)
	defer f.stop()

	servers := ctrl.Current().Problem.M
	out := &OnlineReplay{Clients: clients}
	per := (len(l.Events) + batches - 1) / batches
	for start := 0; start < len(l.Events); start += per {
		end := start + per
		if end > len(l.Events) {
			end = len(l.Events)
		}
		ds, err := online.DeltasFromEvents(l.Events[start:end], cm, servers)
		if err != nil {
			return nil, err
		}
		if _, err := ctrl.ApplyDeltas(ds); err != nil {
			return nil, fmt.Errorf("sim: batch %d: %w", out.Batches, err)
		}
		out.Batches++
		out.Deltas += len(ds)
		if solvePerBatch {
			if err := ctrl.SolveNow(ctx); err != nil {
				return nil, err
			}
		}
	}
	if !solvePerBatch {
		if err := ctrl.SolveNow(ctx); err != nil {
			return nil, err
		}
	}
	v := ctrl.Current()

	// Converge every client onto the final epoch and check its routing table
	// answers exactly like the controller — the epoch stream carried the
	// placement through every intermediate version without divergence.
	checks, err := f.converge(ctx, ctrl, v)
	out.ClientChecks = checks
	if err != nil {
		return nil, err
	}

	m, err := Replay(l, cm, v.Schema)
	if err != nil {
		return nil, err
	}
	out.Solves = ctrl.Metrics().SolvesRun
	out.FinalOTC = v.Schema.TotalCost()
	out.Metrics = m
	return out, nil
}
