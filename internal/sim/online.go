package sim

import (
	"context"
	"fmt"

	"repro/internal/online"
	"repro/internal/trace"
	"repro/internal/workload"
)

// OnlineReplay summarizes driving a trace through the online controller.
type OnlineReplay struct {
	// Batches is the number of delta batches fed; Deltas the aggregated
	// (server, object) demand deltas across them.
	Batches int
	Deltas  int
	// Solves counts the controller solves this replay ran.
	Solves int64
	// FinalOTC is the analytical OTC of the placement the controller ended
	// on; Metrics is the event-by-event replay of the full trace against
	// that same placement. For a controller whose demand came entirely from
	// this trace, Metrics.TransferCost equals FinalOTC exactly — the
	// incremental delta path and the aggregate OTC formula agree.
	FinalOTC int64
	Metrics  *Metrics
}

// ReplayOnline feeds the trace into the controller as chronological delta
// batches — the daemon's POST /deltas path exercised in-process — solves,
// and replays the full trace against the final placement. cm maps trace
// clients onto the controller's servers and must cover every client (the
// same map Replay requires). With solvePerBatch the controller re-solves
// after every batch, modelling a daemon that keeps up with its feed;
// otherwise it solves once at the end.
func ReplayOnline(ctx context.Context, ctrl *online.Controller, l *trace.Log, cm workload.ClientMap, batches int, solvePerBatch bool) (*OnlineReplay, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if batches < 1 {
		batches = 1
	}
	if len(l.Events) == 0 {
		return nil, fmt.Errorf("sim: trace has no events")
	}
	servers := ctrl.Current().Problem.M
	out := &OnlineReplay{}
	per := (len(l.Events) + batches - 1) / batches
	for start := 0; start < len(l.Events); start += per {
		end := start + per
		if end > len(l.Events) {
			end = len(l.Events)
		}
		ds, err := online.DeltasFromEvents(l.Events[start:end], cm, servers)
		if err != nil {
			return nil, err
		}
		if _, err := ctrl.ApplyDeltas(ds); err != nil {
			return nil, fmt.Errorf("sim: batch %d: %w", out.Batches, err)
		}
		out.Batches++
		out.Deltas += len(ds)
		if solvePerBatch {
			if err := ctrl.SolveNow(ctx); err != nil {
				return nil, err
			}
		}
	}
	if !solvePerBatch {
		if err := ctrl.SolveNow(ctx); err != nil {
			return nil, err
		}
	}
	v := ctrl.Current()
	m, err := Replay(l, cm, v.Schema)
	if err != nil {
		return nil, err
	}
	out.Solves = ctrl.Metrics().SolvesRun
	out.FinalOTC = v.Schema.TotalCost()
	out.Metrics = m
	return out, nil
}
