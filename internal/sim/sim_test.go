package sim

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/agtram"
	"repro/internal/replication"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// buildSystem wires trace -> client map -> workload -> problem, the full
// paper pipeline, so replayed cost can be compared to analytical OTC.
func buildSystem(t testing.TB, seed int64) (*trace.Log, workload.ClientMap, *replication.Problem) {
	t.Helper()
	l, err := trace.Generate(trace.Config{
		Objects: 120, Clients: 40, Events: 8000, WriteRatio: 0.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(seed + 1)
	const servers = 15
	cm, err := workload.MapClients(40, servers, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.FromTrace(l, cm, servers, r)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.Random(servers, 0.3, topology.DefaultWeights, r)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := replication.GenerateCapacities(w, 25, r)
	if err != nil {
		t.Fatal(err)
	}
	p, err := replication.NewProblem(topology.AllPairs(g, 0), w, caps)
	if err != nil {
		t.Fatal(err)
	}
	return l, cm, p
}

// The central validation: replaying the trace event by event against the
// primary-only placement realizes exactly the analytical base OTC.
func TestReplayMatchesAnalyticalBaseCost(t *testing.T) {
	l, cm, p := buildSystem(t, 1)
	s := p.NewSchema()
	m, err := Replay(l, cm, s)
	if err != nil {
		t.Fatal(err)
	}
	if m.TransferCost != s.BaseCost() {
		t.Fatalf("replayed cost %d != analytical base OTC %d", m.TransferCost, s.BaseCost())
	}
	if m.Events != 8000 {
		t.Fatalf("replayed %d events", m.Events)
	}
	if m.ReadCost+m.WriteCost != m.TransferCost {
		t.Fatal("component accounting broken")
	}
}

// After the mechanism places replicas, the replay still matches the
// analytical OTC exactly — the incremental engine and the event router
// agree on the cost model.
func TestReplayMatchesAnalyticalAfterMechanism(t *testing.T) {
	l, cm, p := buildSystem(t, 2)
	res, err := agtram.Solve(context.Background(), p, agtram.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Replay(l, cm, res.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if m.TransferCost != res.Schema.TotalCost() {
		t.Fatalf("replayed cost %d != analytical OTC %d", m.TransferCost, res.Schema.TotalCost())
	}
	// Replication must have created locally served reads.
	if m.LocalReads == 0 {
		t.Fatal("no local reads after replication")
	}
	// And reduced the realized cost against the primary-only replay.
	base, err := Replay(l, cm, p.NewSchema())
	if err != nil {
		t.Fatal(err)
	}
	if m.TransferCost >= base.TransferCost {
		t.Fatalf("replication did not reduce realized cost: %d vs %d",
			m.TransferCost, base.TransferCost)
	}
}

func TestReplayTrafficConservation(t *testing.T) {
	l, cm, p := buildSystem(t, 3)
	res, err := agtram.Solve(context.Background(), p, agtram.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Replay(l, cm, res.Schema)
	if err != nil {
		t.Fatal(err)
	}
	var sent, recv int64
	for i := range m.PerServerSent {
		if m.PerServerSent[i] < 0 || m.PerServerReceived[i] < 0 {
			t.Fatal("negative traffic")
		}
		sent += m.PerServerSent[i]
		recv += m.PerServerReceived[i]
	}
	if sent != recv {
		t.Fatalf("traffic not conserved: sent %d, received %d", sent, recv)
	}
}

func TestReplayLoadMetrics(t *testing.T) {
	l, cm, p := buildSystem(t, 4)
	m, err := Replay(l, cm, p.NewSchema())
	if err != nil {
		t.Fatal(err)
	}
	g := m.LoadImbalance()
	if g < 0 || g >= 1 {
		t.Fatalf("load Gini %v out of range", g)
	}
	hot := m.HottestServers(3)
	if len(hot) != 3 {
		t.Fatalf("got %d hottest servers", len(hot))
	}
	t1 := m.PerServerSent[hot[0]] + m.PerServerReceived[hot[0]]
	t2 := m.PerServerSent[hot[1]] + m.PerServerReceived[hot[1]]
	if t1 < t2 {
		t.Fatal("hottest servers not sorted")
	}
	if len(m.HottestServers(999)) != p.M {
		t.Fatal("HottestServers should clamp")
	}
	if sum := m.ReadCostSummary(); sum.N == 0 {
		t.Fatal("no read cost samples")
	}
}

// Replication spreads load: the mechanism's placement should not leave the
// traffic more concentrated than primary-only ("ensuring that no hosts
// become overloaded").
func TestReplicationReducesLoadImbalance(t *testing.T) {
	l, cm, p := buildSystem(t, 5)
	base, err := Replay(l, cm, p.NewSchema())
	if err != nil {
		t.Fatal(err)
	}
	res, err := agtram.Solve(context.Background(), p, agtram.Config{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Replay(l, cm, res.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if after.LoadImbalance() > base.LoadImbalance()+0.05 {
		t.Fatalf("replication concentrated load: Gini %.3f -> %.3f",
			base.LoadImbalance(), after.LoadImbalance())
	}
}

func TestReplayErrors(t *testing.T) {
	l, cm, p := buildSystem(t, 6)
	s := p.NewSchema()
	if _, err := Replay(l, cm[:5], s); err == nil {
		t.Fatal("short client map accepted")
	}
	bad := *l
	bad.Objects = 999
	if _, err := Replay(&bad, cm, s); err == nil {
		t.Fatal("object count mismatch accepted")
	}
	cm2 := append(workload.ClientMap(nil), cm...)
	cm2[0] = 9999
	if _, err := Replay(l, cm2, s); err == nil {
		t.Fatal("invalid mapping accepted")
	}
}

// Property: replay equals analytical OTC for any seed and any number of
// random placements.
func TestReplayExactnessProperty(t *testing.T) {
	f := func(seed int64, rawPlacements uint8) bool {
		l, err := trace.Generate(trace.Config{
			Objects: 40, Clients: 12, Events: 1500, WriteRatio: 0.15, Seed: seed,
		})
		if err != nil {
			return false
		}
		r := stats.NewRNG(seed + 7)
		const servers = 8
		cm, err := workload.MapClients(12, servers, r)
		if err != nil {
			return false
		}
		w, err := workload.FromTrace(l, cm, servers, r)
		if err != nil {
			return false
		}
		g, err := topology.Random(servers, 0.4, topology.DefaultWeights, r)
		if err != nil {
			return false
		}
		caps, err := replication.GenerateCapacities(w, 30, r)
		if err != nil {
			return false
		}
		p, err := replication.NewProblem(topology.AllPairs(g, 0), w, caps)
		if err != nil {
			return false
		}
		s := p.NewSchema()
		for i := 0; i < int(rawPlacements%40); i++ {
			k := int32(r.Intn(p.N))
			m := r.Intn(p.M)
			if s.CanPlace(k, m) == nil {
				if _, err := s.PlaceReplica(k, m); err != nil {
					return false
				}
			}
		}
		m, err := Replay(l, cm, s)
		if err != nil {
			return false
		}
		return m.TransferCost == s.TotalCost()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
