// Package sim replays access traces against replica placements, event by
// event: every read is routed to the requester's nearest replica, every
// write is shipped to the object's primary and broadcast to the other
// replicators — exactly the traffic model of Section 2. The realized
// transfer cost of a replay equals the analytical OTC of the schema built
// from the same trace (verified in tests), and the replay additionally
// yields what the aggregate formula cannot: per-request cost
// distributions and per-server load, the "no hosts become overloaded"
// concern of the paper's conclusions.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/replication"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Metrics summarizes one replay.
type Metrics struct {
	Events int

	// TransferCost is the total realized object transfer cost; for a
	// schema built from the same trace and client map it equals the
	// schema's analytical OTC exactly.
	TransferCost int64
	ReadCost     int64
	WriteCost    int64

	// LocalReads counts reads served by a replica on the requesting
	// server itself (zero transfer cost).
	LocalReads int

	// PerServerSent / PerServerReceived count data units moved out of and
	// into each server: reads are sent by the serving replica and received
	// by the requester; writes are sent by the writer, received by the
	// primary, then sent by the primary and received by each other
	// replicator.
	PerServerSent     []int64
	PerServerReceived []int64

	// ReadCosts holds the per-read transfer cost sample (size × distance),
	// for latency-proxy percentiles.
	ReadCosts []float64
}

// ReadCostSummary returns descriptive statistics of the per-read costs.
func (m *Metrics) ReadCostSummary() stats.Summary { return stats.Summarize(m.ReadCosts) }

// LoadImbalance reports the Gini coefficient of total per-server traffic
// (sent + received): 0 is perfectly even, values near 1 mean a few servers
// carry everything.
func (m *Metrics) LoadImbalance() float64 {
	total := make([]float64, len(m.PerServerSent))
	for i := range total {
		total[i] = float64(m.PerServerSent[i] + m.PerServerReceived[i])
	}
	return stats.GiniCoefficient(total)
}

// HottestServers returns the n busiest servers by total traffic.
func (m *Metrics) HottestServers(n int) []int {
	ids := make([]int, len(m.PerServerSent))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ta := m.PerServerSent[ids[a]] + m.PerServerReceived[ids[a]]
		tb := m.PerServerSent[ids[b]] + m.PerServerReceived[ids[b]]
		if ta != tb {
			return ta > tb
		}
		return ids[a] < ids[b]
	})
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}

// Replay routes every event of the trace against the placement. The client
// map must cover the trace's clients and target servers inside the
// schema's problem.
func Replay(l *trace.Log, cm workload.ClientMap, s *replication.Schema) (*Metrics, error) {
	p := s.Problem()
	if len(cm) < int(l.Clients) {
		return nil, fmt.Errorf("sim: client map covers %d clients, trace has %d", len(cm), l.Clients)
	}
	if int(l.Objects) != p.N {
		return nil, fmt.Errorf("sim: trace has %d objects, problem has %d", l.Objects, p.N)
	}
	m := &Metrics{
		PerServerSent:     make([]int64, p.M),
		PerServerReceived: make([]int64, p.M),
	}
	for _, e := range l.Events {
		server := int(cm[e.Client])
		if server < 0 || server >= p.M {
			return nil, fmt.Errorf("sim: client %d maps to invalid server %d", e.Client, server)
		}
		k := e.Object
		size := int64(p.Work.ObjectSize[k])
		if size != int64(e.Size) {
			return nil, fmt.Errorf("sim: object %d size mismatch: trace %d, problem %d", k, e.Size, size)
		}
		m.Events++
		if e.Write {
			pk := int(p.Work.Primary[k])
			// Ship the new version to the primary...
			cost := size * int64(p.Cost.At(server, pk))
			m.PerServerSent[server] += size
			m.PerServerReceived[pk] += size
			// ...which broadcasts it to every other replicator (Eq. 2's
			// j != i exclusion: the writer already has the version).
			for _, j := range s.Replicas(k) {
				if int(j) == server {
					continue
				}
				cost += size * int64(p.Cost.At(pk, int(j)))
				if int(j) != pk {
					m.PerServerSent[pk] += size
					m.PerServerReceived[j] += size
				}
			}
			m.WriteCost += cost
			m.TransferCost += cost
		} else {
			nn := int(s.NN(server, k))
			cost := size * int64(p.Cost.At(server, nn))
			m.ReadCost += cost
			m.TransferCost += cost
			m.ReadCosts = append(m.ReadCosts, float64(cost))
			if nn == server {
				m.LocalReads++
			} else {
				m.PerServerSent[nn] += size
				m.PerServerReceived[server] += size
			}
		}
	}
	return m, nil
}
