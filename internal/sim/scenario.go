package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/online"
	"repro/internal/replication"
	"repro/internal/routing"
	"repro/internal/stats"
)

// Generator is one workload scenario: a deterministic schedule of delta
// batches the online controller ingests tick by tick. Generators are pure —
// all randomness is fixed at construction from the seed, and Batch(t) for
// the same t always returns the same deltas — so a scenario replays
// bit-identically across runs, methods and processes.
type Generator interface {
	// Name identifies the scenario ("flash-crowd", "diurnal", ...).
	Name() string
	// Ticks is the schedule length; Batch accepts t in [0, Ticks).
	Ticks() int
	// Batch returns tick t's delta batch (possibly empty).
	Batch(t int) []online.Delta
}

// Shape describes the system a scenario is generated against. It must match
// the controller the batches are fed to: server and object ids are drawn
// from these ranges, and topology scenarios rejoin departed servers with
// their Capacity entry.
type Shape struct {
	// Servers and Objects bound the id ranges deltas reference.
	Servers int
	Objects int
	// Capacity is the per-server storage a rejoining server declares
	// (server-join needs one). Nil means rejoin with zero declared capacity
	// — the controller then clamps to the primary load, so set it (or use
	// ShapeOf) for meaningful topology scenarios.
	Capacity []int64
	// Reads is the demand quantum one scenario tick moves per touched
	// (server, object) cell; default 50.
	Reads int64
}

func (s Shape) withDefaults() Shape {
	if s.Reads <= 0 {
		s.Reads = 50
	}
	return s
}

// ShapeOf derives the scenario shape of a live instance.
func ShapeOf(p *replication.Problem) Shape {
	return Shape{
		Servers:  p.M,
		Objects:  p.N,
		Capacity: append([]int64(nil), p.Capacity...),
	}
}

func (s Shape) rejoinCapacity(server int) int64 {
	if server < len(s.Capacity) {
		return s.Capacity[server]
	}
	return 0
}

// scenario is the shared Generator implementation: every constructor
// precomputes its full batch schedule, which is what makes Batch pure.
type scenario struct {
	name    string
	batches [][]online.Delta
}

func (s *scenario) Name() string { return s.name }
func (s *scenario) Ticks() int   { return len(s.batches) }
func (s *scenario) Batch(t int) []online.Delta {
	if t < 0 || t >= len(s.batches) {
		return nil
	}
	return s.batches[t]
}

// pickDistinct draws n distinct values from [0, limit) deterministically.
func pickDistinct(rng *stats.RNG, n, limit int) []int {
	if n > limit {
		n = limit
	}
	perm := rng.Perm32(limit)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = int(perm[i])
	}
	sort.Ints(out)
	return out
}

// demandBatch builds one sorted demand batch over the (server, object)
// cross product with the given signed read adjustment.
func demandBatch(servers []int, objects []int, reads int64) []online.Delta {
	ds := make([]online.Delta, 0, len(servers)*len(objects))
	for _, s := range servers {
		for _, o := range objects {
			ds = append(ds, online.Delta{
				Kind: online.KindDemand, Server: s, Object: int32(o), Reads: reads,
			})
		}
	}
	return ds
}

// NewFlashCrowd models a flash crowd: a small set of hot objects draws a
// read surge from a crowd of servers for four ticks, then the surge decays
// back over four more — net zero demand, but the placement must chase the
// spike there and back.
func NewFlashCrowd(shape Shape, seed int64) Generator {
	shape = shape.withDefaults()
	rng := stats.NewRNG(stats.Mix64(seed, 0x11))
	hot := pickDistinct(rng, max(1, shape.Objects/15), shape.Objects)
	crowd := pickDistinct(rng, max(2, shape.Servers/3), shape.Servers)
	const surge, decay = 4, 4
	batches := make([][]online.Delta, 0, surge+decay)
	for t := 0; t < surge; t++ {
		batches = append(batches, demandBatch(crowd, hot, shape.Reads))
	}
	for t := 0; t < decay; t++ {
		batches = append(batches, demandBatch(crowd, hot, -shape.Reads))
	}
	return &scenario{name: "flash-crowd", batches: batches}
}

// NewDiurnalWave models a diurnal demand wave: a cohort of (server, object)
// cells follows one full raised-cosine day in twelve ticks, so cumulative
// added demand stays in [0, amplitude] and returns to zero at the end.
func NewDiurnalWave(shape Shape, seed int64) Generator {
	shape = shape.withDefaults()
	rng := stats.NewRNG(stats.Mix64(seed, 0x22))
	cells := max(4, min(64, shape.Servers*shape.Objects/50))
	srv := make([]int, cells)
	obj := make([]int, cells)
	for i := range srv {
		srv[i] = rng.Intn(shape.Servers)
		obj[i] = rng.Intn(shape.Objects)
	}
	const ticks = 12
	amplitude := float64(shape.Reads * 4)
	level := func(t int) int64 {
		return int64(math.Round(amplitude * (1 - math.Cos(2*math.Pi*float64(t)/ticks)) / 2))
	}
	batches := make([][]online.Delta, 0, ticks)
	for t := 1; t <= ticks; t++ {
		step := level(t) - level(t-1)
		if step == 0 {
			batches = append(batches, nil)
			continue
		}
		ds := make([]online.Delta, 0, cells)
		for i := range srv {
			ds = append(ds, online.Delta{
				Kind: online.KindDemand, Server: srv[i], Object: int32(obj[i]), Reads: step,
			})
		}
		sortDeltas(ds)
		batches = append(batches, ds)
	}
	return &scenario{name: "diurnal", batches: batches}
}

// NewCorrelatedFailures models a correlated outage: background demand churn,
// then a whole server group fails at once (rack or zone loss), survivors
// absorb extra reads, and the group rejoins with its original capacities.
func NewCorrelatedFailures(shape Shape, seed int64) Generator {
	shape = shape.withDefaults()
	rng := stats.NewRNG(stats.Mix64(seed, 0x33))
	group := pickDistinct(rng, max(1, shape.Servers/4), shape.Servers)
	down := make(map[int]bool, len(group))
	for _, s := range group {
		down[s] = true
	}
	var survivors []int
	for s := 0; s < shape.Servers; s++ {
		if !down[s] {
			survivors = append(survivors, s)
		}
	}
	someObjects := pickDistinct(rng, max(1, shape.Objects/10), shape.Objects)

	leave := make([]online.Delta, 0, len(group))
	rejoin := make([]online.Delta, 0, len(group))
	for _, s := range group {
		leave = append(leave, online.Delta{Kind: online.KindServerLeave, Server: s})
		rejoin = append(rejoin, online.Delta{
			Kind: online.KindServerJoin, Server: s, Capacity: shape.rejoinCapacity(s),
		})
	}
	churnSrv := pickDistinct(rng, max(1, len(survivors)/2), len(survivors))
	for i, idx := range churnSrv {
		churnSrv[i] = survivors[idx]
	}
	batches := [][]online.Delta{
		demandBatch(churnSrv, someObjects, shape.Reads), // background load builds
		leave,                                        // the group fails together
		demandBatch(churnSrv, someObjects, shape.Reads), // survivors absorb more
		rejoin,                                       // the group comes back
		demandBatch(churnSrv, someObjects, -shape.Reads), // load relaxes
	}
	return &scenario{name: "failures", batches: batches}
}

// NewRollingTopology models a rolling restart: one server of a window is
// down at any time — each tick the downed server rejoins (original
// capacity) and the next one leaves — with light demand churn on the
// servers that stay up throughout.
func NewRollingTopology(shape Shape, seed int64) Generator {
	shape = shape.withDefaults()
	rng := stats.NewRNG(stats.Mix64(seed, 0x44))
	window := pickDistinct(rng, max(2, min(6, shape.Servers/5)), shape.Servers)
	inWindow := make(map[int]bool, len(window))
	for _, s := range window {
		inWindow[s] = true
	}
	var steady []int
	for s := 0; s < shape.Servers; s++ {
		if !inWindow[s] {
			steady = append(steady, s)
		}
	}
	churnSrv := pickDistinct(rng, max(1, len(steady)/3), len(steady))
	for i, idx := range churnSrv {
		churnSrv[i] = steady[idx]
	}
	churnObj := pickDistinct(rng, max(1, shape.Objects/20), shape.Objects)

	batches := make([][]online.Delta, 0, len(window)+1)
	for i, s := range window {
		var ds []online.Delta
		if i > 0 {
			prev := window[i-1]
			ds = append(ds, online.Delta{
				Kind: online.KindServerJoin, Server: prev, Capacity: shape.rejoinCapacity(prev),
			})
		}
		ds = append(ds, online.Delta{Kind: online.KindServerLeave, Server: s})
		reads := shape.Reads
		if i%2 == 1 {
			reads = -shape.Reads
		}
		ds = append(ds, demandBatch(churnSrv, churnObj, reads)...)
		batches = append(batches, ds)
	}
	last := window[len(window)-1]
	batches = append(batches, []online.Delta{{
		Kind: online.KindServerJoin, Server: last, Capacity: shape.rejoinCapacity(last),
	}})
	return &scenario{name: "rolling", batches: batches}
}

// Compose concatenates generators tick-wise under one name: Batch(t) is the
// concatenation of every component's Batch(t), Ticks the maximum. Components
// must not contend for the same servers (two generators leaving one server
// in the same tick is an invalid batch); the canonical generators each draw
// from their own seeded stream, so compose groups you know are disjoint.
func Compose(name string, gens ...Generator) Generator {
	ticks := 0
	for _, g := range gens {
		if g.Ticks() > ticks {
			ticks = g.Ticks()
		}
	}
	batches := make([][]online.Delta, ticks)
	for t := 0; t < ticks; t++ {
		for _, g := range gens {
			batches[t] = append(batches[t], g.Batch(t)...)
		}
	}
	return &scenario{name: name, batches: batches}
}

// ScenarioNames lists the canonical scenario classes NewScenario accepts.
func ScenarioNames() []string {
	return []string{"flash-crowd", "diurnal", "failures", "rolling"}
}

// NewScenario builds one canonical scenario by name (the -scenario flag's
// vocabulary).
func NewScenario(name string, shape Shape, seed int64) (Generator, error) {
	switch name {
	case "flash-crowd":
		return NewFlashCrowd(shape, seed), nil
	case "diurnal":
		return NewDiurnalWave(shape, seed), nil
	case "failures":
		return NewCorrelatedFailures(shape, seed), nil
	case "rolling":
		return NewRollingTopology(shape, seed), nil
	default:
		return nil, fmt.Errorf("sim: unknown scenario %q (have %v)", name, ScenarioNames())
	}
}

// ScenarioMatrix builds the four canonical scenario classes over one shape:
// the adversarial workloads every method is benchmarked across.
func ScenarioMatrix(shape Shape, seed int64) []Generator {
	return []Generator{
		NewFlashCrowd(shape, seed),
		NewDiurnalWave(shape, seed),
		NewCorrelatedFailures(shape, seed),
		NewRollingTopology(shape, seed),
	}
}

// ScenarioResult summarizes one scenario run against a controller.
type ScenarioResult struct {
	// Scenario is the generator's name; Ticks the schedule length.
	Scenario string
	Ticks    int
	// Batches counts non-empty delta batches applied; Deltas the deltas
	// across them.
	Batches int
	Deltas  int
	// Solves and SolverWork count the controller's solver runs and their
	// cumulative dominant-operation work (valuations, evaluations, ...).
	Solves     int64
	SolverWork int64
	// CarriedDrops counts replicas evicted during epoch carry-over — the
	// churn cost of topology scenarios.
	CarriedDrops int64
	// FinalOTC and FinalSavings describe the placement the controller ended
	// on after the scenario's last tick and solve.
	FinalOTC     int64
	FinalSavings float64
	// Clients and ClientChecks mirror OnlineReplay: routing clients that
	// followed the epoch stream through the churn, and the bit-identical
	// route verifications against the final epoch.
	Clients      int
	ClientChecks int
}

// RunScenario feeds the generator's schedule through the controller tick by
// tick — the daemon's POST /deltas path under an adversarial workload.
// solvePerTick re-solves after every non-empty batch; otherwise the
// controller solves once after the last tick. clients > 0 runs that many
// routing clients following the epoch stream while the churn lands, then
// verifies every (server, object) route bit-identical to the controller —
// the scenario engine doubling as a load generator for the epoch plane.
func RunScenario(ctx context.Context, ctrl *online.Controller, gen Generator, solvePerTick bool, clients int) (*ScenarioResult, error) {
	f := startFollowers(ctx, ctrl, clients)
	defer f.stop()

	out := &ScenarioResult{Scenario: gen.Name(), Ticks: gen.Ticks(), Clients: clients}
	for t := 0; t < gen.Ticks(); t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: scenario %s: %w", gen.Name(), err)
		}
		ds := gen.Batch(t)
		if len(ds) == 0 {
			continue
		}
		if _, err := ctrl.ApplyDeltas(ds); err != nil {
			return nil, fmt.Errorf("sim: scenario %s tick %d: %w", gen.Name(), t, err)
		}
		out.Batches++
		out.Deltas += len(ds)
		if solvePerTick {
			if err := ctrl.SolveNow(ctx); err != nil {
				return nil, fmt.Errorf("sim: scenario %s tick %d solve: %w", gen.Name(), t, err)
			}
		}
	}
	if !solvePerTick {
		if err := ctrl.SolveNow(ctx); err != nil {
			return nil, fmt.Errorf("sim: scenario %s final solve: %w", gen.Name(), err)
		}
	}
	v := ctrl.Current()
	checks, err := f.converge(ctx, ctrl, v)
	out.ClientChecks = checks
	if err != nil {
		return nil, err
	}
	m := ctrl.Metrics()
	out.Solves = m.SolvesRun
	out.SolverWork = m.SolverWork
	out.CarriedDrops = m.CarriedDrops
	out.FinalOTC = v.Schema.TotalCost()
	out.FinalSavings = v.Schema.Savings()
	return out, nil
}

func sortDeltas(ds []online.Delta) {
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].Server != ds[b].Server {
			return ds[a].Server < ds[b].Server
		}
		return ds[a].Object < ds[b].Object
	})
}

// followers is the shared client-side of the epoch stream: n routing
// clients following the controller while a replay or scenario churns it.
type followers struct {
	ctrl *online.Controller
	cs   []*routing.Client
	done chan error
	halt context.CancelFunc
}

func startFollowers(ctx context.Context, ctrl *online.Controller, n int) *followers {
	fctx, halt := context.WithCancel(ctx)
	f := &followers{ctrl: ctrl, cs: make([]*routing.Client, n), done: make(chan error, n), halt: halt}
	for i := range f.cs {
		f.cs[i] = routing.NewClient(ctrl.Current().Problem.Cost)
		go func(c *routing.Client) {
			f.done <- routing.Follow(fctx, c, &routing.ControllerSource{Ctrl: ctrl})
		}(f.cs[i])
	}
	return f
}

// stop cancels the follow loops; safe to call more than once. The done
// channel is buffered for every client, so the loops always exit.
func (f *followers) stop() { f.halt() }

// converge waits every client onto epoch v, verifies each (server, object)
// route bit-identical to the controller, then stops and reaps the follow
// loops. It returns the number of verified routes.
func (f *followers) converge(ctx context.Context, ctrl *online.Controller, v *online.Epoch) (int, error) {
	checks := 0
	for ci, c := range f.cs {
		if err := c.WaitVersion(ctx, v.Version, 5*time.Second); err != nil {
			return checks, fmt.Errorf("sim: client %d: %w", ci, err)
		}
		for i := 0; i < v.Problem.M; i++ {
			for k := int32(0); int(k) < v.Problem.N; k++ {
				want, err := ctrl.Route(i, k)
				if err != nil {
					return checks, err
				}
				got, err := c.Route(i, k)
				if err != nil {
					return checks, fmt.Errorf("sim: client %d route(%d,%d): %w", ci, i, k, err)
				}
				if got != want {
					return checks, fmt.Errorf("sim: client %d route(%d,%d) = %d, controller says %d", ci, i, k, got, want)
				}
				checks++
			}
		}
	}
	f.stop()
	for range f.cs {
		if err := <-f.done; err != nil && ctx.Err() == nil && err != context.Canceled {
			return checks, fmt.Errorf("sim: follow: %w", err)
		}
	}
	return checks, nil
}
