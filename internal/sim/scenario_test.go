package sim

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/online"
	"repro/internal/replication"
	"repro/internal/solver"
	"repro/internal/testutil"

	// The scenario matrix runs every registered method through the
	// controller; register them all.
	_ "repro/internal/agtram"
	_ "repro/internal/astar"
	_ "repro/internal/auction"
	_ "repro/internal/genetic"
	_ "repro/internal/glauber"
	_ "repro/internal/greedy"
)

func scenarioProblem(t testing.TB, seed int64) *replication.Problem {
	t.Helper()
	return testutil.MustBuild(testutil.Small(seed))
}

func scenarioController(t testing.TB, p *replication.Problem, method string) *online.Controller {
	t.Helper()
	ctrl, err := online.New(p.Cost, p.Work, p.Capacity, online.Config{Method: method, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func allBatches(g Generator) [][]online.Delta {
	out := make([][]online.Delta, g.Ticks())
	for t := range out {
		out[t] = g.Batch(t)
	}
	return out
}

// Generators are pure: the same (shape, seed) reproduces the identical
// schedule, and Batch is stable across calls.
func TestScenarioGeneratorsDeterministic(t *testing.T) {
	p := scenarioProblem(t, 31)
	shape := ShapeOf(p)
	for _, name := range ScenarioNames() {
		a, err := NewScenario(name, shape, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewScenario(name, shape, 5)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name || a.Ticks() <= 0 {
			t.Fatalf("%s: name %q, %d ticks", name, a.Name(), a.Ticks())
		}
		if !reflect.DeepEqual(allBatches(a), allBatches(b)) {
			t.Fatalf("%s: two constructions from one seed diverge", name)
		}
		if !reflect.DeepEqual(a.Batch(0), a.Batch(0)) {
			t.Fatalf("%s: Batch is not stable", name)
		}
		if a.Batch(-1) != nil || a.Batch(a.Ticks()) != nil {
			t.Fatalf("%s: out-of-range ticks must be empty", name)
		}
	}
}

// The demand scenarios are net zero: every read they add, they later take
// back, so the workload ends where it started and only the path differed.
func TestScenarioDemandNetZero(t *testing.T) {
	p := scenarioProblem(t, 32)
	shape := ShapeOf(p)
	for _, gen := range []Generator{NewFlashCrowd(shape, 9), NewDiurnalWave(shape, 9)} {
		type cell struct {
			s int
			o int32
		}
		sum := map[cell]int64{}
		for _, batch := range allBatches(gen) {
			for _, d := range batch {
				if d.Kind != online.KindDemand {
					t.Fatalf("%s: unexpected %s delta in a demand scenario", gen.Name(), d.Kind)
				}
				sum[cell{d.Server, d.Object}] += d.Reads
			}
		}
		if len(sum) == 0 {
			t.Fatalf("%s: empty schedule", gen.Name())
		}
		for c, v := range sum {
			if v != 0 {
				t.Fatalf("%s: cell (%d,%d) ends %+d reads from where it started", gen.Name(), c.s, c.o, v)
			}
		}
	}
}

// Every canonical schedule applies cleanly through the controller's
// validation, and the topology scenarios return every server to service.
func TestScenarioBatchesApplyCleanly(t *testing.T) {
	p := scenarioProblem(t, 33)
	shape := ShapeOf(p)
	for _, name := range ScenarioNames() {
		gen, err := NewScenario(name, shape, 11)
		if err != nil {
			t.Fatal(err)
		}
		ctrl := scenarioController(t, p, "greedy")
		for tick := 0; tick < gen.Ticks(); tick++ {
			ds := gen.Batch(tick)
			if len(ds) == 0 {
				continue
			}
			if _, err := ctrl.ApplyDeltas(ds); err != nil {
				t.Fatalf("%s tick %d: %v", name, tick, err)
			}
		}
		m := ctrl.Metrics()
		if m.ActiveServers != p.M {
			t.Fatalf("%s: %d of %d servers active after the schedule", name, m.ActiveServers, p.M)
		}
		if err := ctrl.Current().Schema.ValidateInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// The acceptance matrix: every registered method survives every scenario
// class, produces a feasible improving placement, and the epoch stream
// carries the churn to routing clients bit-identically.
func TestScenarioMatrixAllMethods(t *testing.T) {
	testutil.LeakCheck(t)
	p := scenarioProblem(t, 34)
	shape := ShapeOf(p)
	for _, method := range solver.Names() {
		for _, gen := range ScenarioMatrix(shape, 13) {
			ctrl := scenarioController(t, p, method)
			res, err := RunScenario(context.Background(), ctrl, gen, false, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", method, gen.Name(), err)
			}
			if res.Batches == 0 || res.Deltas == 0 {
				t.Fatalf("%s/%s: empty run %+v", method, gen.Name(), res)
			}
			if res.Solves < 1 || res.SolverWork <= 0 {
				t.Fatalf("%s/%s: solves %d work %d", method, gen.Name(), res.Solves, res.SolverWork)
			}
			if res.FinalSavings <= 0 {
				t.Fatalf("%s/%s: final savings %.2f", method, gen.Name(), res.FinalSavings)
			}
			if res.Clients != 1 || res.ClientChecks == 0 {
				t.Fatalf("%s/%s: %d clients, %d checks", method, gen.Name(), res.Clients, res.ClientChecks)
			}
			if err := ctrl.Current().Schema.ValidateInvariants(); err != nil {
				t.Fatalf("%s/%s: %v", method, gen.Name(), err)
			}
			ctrl.Close()
		}
	}
}

// Per-tick solving exercises warm carry-over against topology churn: the
// placement survives every intermediate instance.
func TestScenarioSolvePerTick(t *testing.T) {
	testutil.LeakCheck(t)
	p := scenarioProblem(t, 35)
	gen := NewRollingTopology(ShapeOf(p), 17)
	ctrl := scenarioController(t, p, "glauber")
	res, err := RunScenario(context.Background(), ctrl, gen, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solves != int64(res.Batches) {
		t.Fatalf("solvePerTick ran %d solves over %d batches", res.Solves, res.Batches)
	}
	wantChecks := 2 * p.M * p.N
	if res.ClientChecks != wantChecks {
		t.Fatalf("%d client checks, want %d", res.ClientChecks, wantChecks)
	}
	ctrl.Close()
}

func TestRunScenarioHonoursContext(t *testing.T) {
	testutil.LeakCheck(t)
	p := scenarioProblem(t, 36)
	ctrl := scenarioController(t, p, "greedy")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunScenario(ctx, ctrl, NewFlashCrowd(ShapeOf(p), 1), false, 0); err == nil {
		t.Fatal("cancelled context accepted")
	}
	ctrl.Close()
}

func TestComposeAndNames(t *testing.T) {
	p := scenarioProblem(t, 37)
	shape := ShapeOf(p)
	a, b := NewFlashCrowd(shape, 3), NewDiurnalWave(shape, 3)
	c := Compose("mixed", a, b)
	if c.Name() != "mixed" {
		t.Fatalf("name %q", c.Name())
	}
	want := a.Ticks()
	if b.Ticks() > want {
		want = b.Ticks()
	}
	if c.Ticks() != want {
		t.Fatalf("compose ticks %d, want max %d", c.Ticks(), want)
	}
	if len(c.Batch(0)) != len(a.Batch(0))+len(b.Batch(0)) {
		t.Fatal("compose lost deltas at tick 0")
	}
	if _, err := NewScenario("nope", shape, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if len(ScenarioNames()) != 4 {
		t.Fatalf("%d scenario classes, want 4", len(ScenarioNames()))
	}
}
