package exhaustive

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/agtram"
	"repro/internal/astar"
	"repro/internal/auction"
	"repro/internal/greedy"
	"repro/internal/replication"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// tinyInstance builds a DRP small enough for exhaustive search:
// 4 servers x 6 objects = 18 non-primary pairs.
func tinyInstance(t testing.TB, seed int64) *replication.Problem {
	t.Helper()
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: 4, Objects: 6, Requests: 800, RWRatio: 0.85,
		DemandFraction: 0.6, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(seed + 1)
	g, err := topology.Random(4, 0.5, topology.DefaultWeights, r)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := replication.GenerateCapacities(w, 20, r)
	if err != nil {
		t.Fatal(err)
	}
	p, err := replication.NewProblem(topology.AllPairs(g, 1), w, caps)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSolveBasics(t *testing.T) {
	p := tinyInstance(t, 1)
	res, err := Solve(context.Background(), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema == nil || res.Nodes <= 0 || res.Pairs != 18 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Schema.TotalCost() > res.Schema.BaseCost() {
		t.Fatal("optimum worse than doing nothing")
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(context.Background(), nil, 0); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := tinyInstance(t, 2)
	if _, err := Solve(context.Background(), p, 5); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

// The branch-and-bound must agree with plain brute force (no pruning).
func TestMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p := tinyInstance(t, seed)
		res, err := Solve(context.Background(), p, 0)
		if err != nil {
			t.Fatal(err)
		}
		brute := bruteForce(t, p)
		if res.Schema.TotalCost() != brute {
			t.Fatalf("seed %d: B&B %d != brute force %d", seed, res.Schema.TotalCost(), brute)
		}
	}
}

// bruteForce enumerates every subset without pruning.
func bruteForce(t *testing.T, p *replication.Problem) int64 {
	t.Helper()
	type pr struct {
		k int32
		m int
	}
	var pairs []pr
	for k := 0; k < p.N; k++ {
		for i := 0; i < p.M; i++ {
			if int(p.Work.Primary[k]) != i {
				pairs = append(pairs, pr{k: int32(k), m: i})
			}
		}
	}
	if len(pairs) > 20 {
		t.Skip("too many pairs for brute force")
	}
	best := p.NewSchema().TotalCost()
	for mask := 0; mask < 1<<len(pairs); mask++ {
		s := p.NewSchema()
		ok := true
		for b, pa := range pairs {
			if mask&(1<<b) == 0 {
				continue
			}
			if s.CanPlace(pa.k, pa.m) != nil {
				ok = false
				break
			}
			if _, err := s.PlaceReplica(pa.k, pa.m); err != nil {
				ok = false
				break
			}
		}
		if ok && s.TotalCost() < best {
			best = s.TotalCost()
		}
	}
	return best
}

// No heuristic may beat the proven optimum, and the mechanism should land
// close to it on these tiny instances.
func TestHeuristicsNeverBeatOptimum(t *testing.T) {
	var gapSum float64
	const seeds = 10
	for seed := int64(0); seed < seeds; seed++ {
		p := tinyInstance(t, seed)
		opt, err := Solve(context.Background(), p, 0)
		if err != nil {
			t.Fatal(err)
		}
		optCost := opt.Schema.TotalCost()

		check := func(name string, cost int64) {
			if cost < optCost {
				t.Fatalf("seed %d: %s (%d) beat the proven optimum (%d)", seed, name, cost, optCost)
			}
		}
		a, err := agtram.Solve(context.Background(), tinyInstance(t, seed), agtram.Config{})
		if err != nil {
			t.Fatal(err)
		}
		check("agt-ram", a.Schema.TotalCost())
		g, err := greedy.Solve(context.Background(), tinyInstance(t, seed), greedy.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		check("greedy", g.Schema.TotalCost())
		as, err := astar.Solve(context.Background(), tinyInstance(t, seed), astar.Config{})
		if err != nil {
			t.Fatal(err)
		}
		check("ae-star", as.Schema.TotalCost())
		da, err := auction.Solve(context.Background(), tinyInstance(t, seed), auction.Config{})
		if err != nil {
			t.Fatal(err)
		}
		check("da", da.Schema.TotalCost())

		if optCost > 0 {
			gapSum += float64(a.Schema.TotalCost()-optCost) / float64(optCost)
		}
	}
	// The mechanism's mean optimality gap on tiny instances stays small.
	if mean := gapSum / seeds; mean > 0.10 {
		t.Fatalf("AGT-RAM mean optimality gap %.1f%% — suspiciously large", 100*mean)
	}
}

// Property: the incumbent returned by the search is always feasible and its
// incremental cost is exact.
func TestOptimumValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := tinyInstance(quietTB{}, seed)
		res, err := Solve(context.Background(), p, 0)
		if err != nil {
			return false
		}
		return res.Schema.ValidateInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// quietTB lets tinyInstance run inside quick.Check (which has no *testing.T
// per call); any build failure panics instead of failing a test.
type quietTB struct{ testing.TB }

func (quietTB) Helper()                           {}
func (quietTB) Fatal(args ...interface{})         { panic(args) }
func (quietTB) Fatalf(f string, a ...interface{}) { panic(f) }
