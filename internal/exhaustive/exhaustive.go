// Package exhaustive solves tiny DRP instances to proven optimality by
// branch-and-bound over placement sets. The DRP's objective depends only on
// the *set* of replicas (not the order they were placed), so the search
// enumerates include/exclude decisions over all (server, object) pairs,
// pruning with an admissible bound: a pair's possible improvement only
// shrinks as other replicas appear, so the sum of the currently possible
// improvements of the undecided pairs bounds everything the remaining
// subtree can gain.
//
// The point of the package is calibration, not production: it gives the
// true optimum the paper's NP-completeness discussion refers to, so the
// heuristics' optimality gaps can be measured exactly (see the
// optimality-gap experiment and tests).
package exhaustive

import (
	"context"
	"fmt"

	"repro/internal/replication"
)

// DefaultMaxPairs bounds the search width; beyond ~26 decision pairs the
// tree is impractical even with pruning.
const DefaultMaxPairs = 26

// Result is a proven-optimal placement.
type Result struct {
	Schema *replication.Schema
	// Nodes counts search-tree nodes visited.
	Nodes int64
	// Pairs is the number of decision pairs enumerated.
	Pairs int
}

type pair struct {
	object int32
	server int
	size   int64
}

// Solve finds the optimal placement. maxPairs <= 0 selects DefaultMaxPairs;
// instances with more decision pairs are rejected rather than silently
// truncated. ctx is checked at entry and every 1024 visited nodes; on
// cancellation Solve returns ctx.Err() wrapped with the package name.
func Solve(ctx context.Context, p *replication.Problem, maxPairs int) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("exhaustive: nil problem")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("exhaustive: %w", err)
	}
	if maxPairs <= 0 {
		maxPairs = DefaultMaxPairs
	}
	// Every non-primary (server, object) pair is a decision: a replica can
	// help remote readers even when its host never reads the object.
	var pairs []pair
	for k := 0; k < p.N; k++ {
		for i := 0; i < p.M; i++ {
			if int(p.Work.Primary[k]) == i {
				continue
			}
			pairs = append(pairs, pair{object: int32(k), server: i, size: p.Work.ObjectSize[k]})
		}
	}
	if len(pairs) > maxPairs {
		return nil, fmt.Errorf("exhaustive: %d decision pairs exceed the %d limit — this solver is for tiny calibration instances",
			len(pairs), maxPairs)
	}

	s := p.NewSchema()
	best := s.Clone()
	bestCost := best.TotalCost()
	res := &Result{Pairs: len(pairs)}

	canceled := false
	var dfs func(idx int)
	dfs = func(idx int) {
		if canceled {
			return
		}
		res.Nodes++
		if res.Nodes&1023 == 0 && ctx.Err() != nil {
			canceled = true
			return
		}
		if cost := s.TotalCost(); cost < bestCost {
			bestCost = cost
			best = s.Clone()
		}
		if idx == len(pairs) {
			return
		}
		// Admissible bound: the most any completion can still save.
		var optimistic int64
		for j := idx; j < len(pairs); j++ {
			pr := pairs[j]
			if s.CanPlace(pr.object, pr.server) != nil {
				continue
			}
			if d := s.DeltaIfPlaced(pr.object, pr.server); d < 0 {
				optimistic += -d
			}
		}
		if s.TotalCost()-optimistic >= bestCost {
			return // even the optimistic completion cannot beat the incumbent
		}

		pr := pairs[idx]
		// Branch 1: include the pair (if feasible).
		if s.CanPlace(pr.object, pr.server) == nil {
			if _, err := s.PlaceReplica(pr.object, pr.server); err == nil {
				dfs(idx + 1)
				if _, err := s.RemoveReplica(pr.object, pr.server); err != nil {
					panic(fmt.Sprintf("exhaustive: undo failed: %v", err))
				}
			}
		}
		// Branch 2: exclude the pair.
		dfs(idx + 1)
	}
	dfs(0)
	if canceled {
		return nil, fmt.Errorf("exhaustive: %w", ctx.Err())
	}
	res.Schema = best
	return res, nil
}
