// Package glauber implements a Glauber-dynamics annealing solver for the
// DRP: the stochastic local-search family the registry lacked, after
// Etesami's distributed computation for the non-metric data placement
// problem using Glauber dynamics (PAPERS.md).
//
// The state is the placement itself — per-server replica sets under the
// capacity constraint — and one move is a single-site flip: pick a
// candidate (server, object) pair and propose toggling that replica. The
// proposal is accepted with the Metropolis rule against the exact OTC
// delta (Schema.DeltaIfPlaced / DeltaIfRemoved), so downhill moves always
// land and uphill moves land with probability exp(-Δ/T). The temperature
// follows a geometric schedule from a landscape-derived T0 down to
// CoolTo·T0, and the best placement ever visited — not the final chain
// state — is returned after a deterministic zero-temperature quench that
// applies improving flips until none remains, so the result is at least a
// single-flip local optimum.
//
// Determinism boundary: the chain is a single goroutine drawing from one
// seeded stream, so a fixed (problem, Config) pair reproduces the identical
// placement bit-for-bit; Workers-style parallelism is deliberately absent
// because racing acceptances would trade reproducibility for speed.
package glauber

import (
	"context"
	"fmt"
	"math"

	"repro/internal/candidates"
	"repro/internal/replication"
	"repro/internal/stats"
)

// Config tunes the chain.
type Config struct {
	// Sweeps is the annealing budget: each sweep proposes one flip per
	// candidate pair. Zero or negative picks DefaultSweeps for the problem's
	// size; a fixed positive value is used verbatim, so fixed-(seed, sweeps)
	// runs stay bit-reproducible across default changes.
	Sweeps int
	// CoolTo is the final temperature as a fraction of the initial one
	// (default 1e-3); the per-sweep schedule is geometric between them.
	CoolTo float64
	// Seed seeds the chain's single random stream.
	Seed int64
	// Warm, when non-nil, starts the chain from the carried placement
	// (per-object replica server lists, Schema.Matrix form) instead of the
	// primary-only schema; infeasible entries are dropped.
	Warm [][]int32
	// OnSweep, when non-nil, observes each sweep's best OTC so far
	// (1-based sweep index).
	OnSweep func(sweep int, bestCost int64)
}

// withDefaults fills size-independent defaults; Sweeps is defaulted in Solve
// where the problem's shape is known (see DefaultSweeps).
func (c Config) withDefaults() Config {
	if c.CoolTo <= 0 || c.CoolTo >= 1 {
		c.CoolTo = 1e-3
	}
	return c
}

// DefaultSweeps is the adaptive annealing budget: the flat 60-sweep default
// is right for unit-test instances (M·N up to ~1k sites) but starves the
// chain at daemon scale, where the landscape has a thousand times as many
// sites yet each sweep still proposes only one flip per candidate pair. The
// budget therefore grows logarithmically with the site count — one extra
// 60-sweep block per doubling past 1024 sites — so an M=1000, N=3000
// instance gets a few hundred sweeps, not sixty, while small instances and
// every fixed-Sweeps caller are untouched.
func DefaultSweeps(m, n int) int {
	const base, pivot = 60, 1024
	sites := float64(m) * float64(n)
	if sites <= pivot {
		return base
	}
	return int(base * (1 + math.Log2(sites/pivot)))
}

// Result is the outcome of a run.
type Result struct {
	Schema *replication.Schema
	// Evaluations counts OTC delta evaluations (the dominant cost).
	Evaluations int64
	// Accepted counts accepted flips across the whole chain.
	Accepted int64
	// History records the best OTC per sweep (for convergence plots).
	History []int64
}

// move is one accepted flip; the journal of accepted moves replayed up to
// the best prefix rebuilds the best placement without per-improvement
// schema clones.
type move struct {
	object int32
	server int
	place  bool
}

// Solve runs the chain. ctx is checked before every sweep and every quench
// pass; on cancellation Solve returns ctx.Err() wrapped with the package
// name and the problem is left untouched (the chain works on a fresh
// schema).
func Solve(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("glauber: nil problem")
	}
	cfg = cfg.withDefaults()
	if cfg.Sweeps <= 0 {
		cfg.Sweeps = DefaultSweeps(p.M, p.N)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("glauber: %w", err)
	}

	start := func() *replication.Schema {
		if cfg.Warm != nil {
			s, _ := p.CarryOver(cfg.Warm)
			return s
		}
		return p.NewSchema()
	}

	pairs := candidates.Build(p, false)
	res := &Result{}
	s := start()
	if len(pairs) == 0 {
		res.Schema = s
		return res, nil
	}

	// T0 is the mean |ΔOTC| of one flip against the starting placement: the
	// natural energy scale of the landscape, so acceptance probabilities are
	// shape-independent instead of hand-tuned per instance.
	var scale float64
	for _, pr := range pairs {
		var d int64
		if s.HasReplica(pr.Object, pr.Server) {
			d = s.DeltaIfRemoved(pr.Object, pr.Server)
		} else {
			d = s.DeltaIfPlaced(pr.Object, pr.Server)
		}
		res.Evaluations++
		scale += math.Abs(float64(d))
	}
	t0 := scale / float64(len(pairs))
	if t0 < 1 {
		t0 = 1
	}
	temperature := func(sweep int) float64 {
		if cfg.Sweeps == 1 {
			return t0
		}
		return t0 * math.Pow(cfg.CoolTo, float64(sweep)/float64(cfg.Sweeps-1))
	}

	rng := stats.NewRNG(cfg.Seed)
	var journal []move
	bestLen := 0
	bestCost := s.TotalCost()

	for sweep := 0; sweep < cfg.Sweeps; sweep++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("glauber: %w", err)
		}
		temp := temperature(sweep)
		for step := 0; step < len(pairs); step++ {
			pr := pairs[rng.Intn(len(pairs))]
			held := s.HasReplica(pr.Object, pr.Server)
			if held {
				if s.CanRemove(pr.Object, pr.Server) != nil {
					continue // the primary, never a chain site
				}
			} else if s.CanPlace(pr.Object, pr.Server) != nil {
				continue // capacity-blocked this instant
			}
			var d int64
			if held {
				d = s.DeltaIfRemoved(pr.Object, pr.Server)
			} else {
				d = s.DeltaIfPlaced(pr.Object, pr.Server)
			}
			res.Evaluations++
			if d > 0 && rng.Float64() >= math.Exp(-float64(d)/temp) {
				continue
			}
			if held {
				if _, err := s.RemoveReplica(pr.Object, pr.Server); err != nil {
					return nil, fmt.Errorf("glauber: remove (%d,%d): %w", pr.Object, pr.Server, err)
				}
			} else if _, err := s.PlaceReplica(pr.Object, pr.Server); err != nil {
				return nil, fmt.Errorf("glauber: place (%d,%d): %w", pr.Object, pr.Server, err)
			}
			journal = append(journal, move{object: pr.Object, server: pr.Server, place: !held})
			res.Accepted++
			if cost := s.TotalCost(); cost < bestCost {
				bestCost = cost
				bestLen = len(journal)
			}
		}
		res.History = append(res.History, bestCost)
		if cfg.OnSweep != nil {
			cfg.OnSweep(sweep+1, bestCost)
		}
	}

	// Rebuild the best placement by replaying the accepted-move prefix onto
	// a fresh start; every replayed move was feasible in this exact order.
	best := start()
	for _, mv := range journal[:bestLen] {
		var err error
		if mv.place {
			_, err = best.PlaceReplica(mv.object, mv.server)
		} else {
			_, err = best.RemoveReplica(mv.object, mv.server)
		}
		if err != nil {
			return nil, fmt.Errorf("glauber: replay (%d,%d): %w", mv.object, mv.server, err)
		}
	}

	// Zero-temperature quench: deterministic sorted-order passes applying
	// strictly improving flips until a fixpoint. Integer costs shrink by at
	// least 1 per flip, so this terminates; the result is a single-flip
	// local optimum regardless of where the chain wandered.
	for changed := true; changed; {
		changed = false
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("glauber: %w", err)
		}
		for _, pr := range pairs {
			if best.HasReplica(pr.Object, pr.Server) {
				if best.CanRemove(pr.Object, pr.Server) != nil {
					continue
				}
				res.Evaluations++
				if best.DeltaIfRemoved(pr.Object, pr.Server) < 0 {
					if _, err := best.RemoveReplica(pr.Object, pr.Server); err != nil {
						return nil, fmt.Errorf("glauber: quench remove (%d,%d): %w", pr.Object, pr.Server, err)
					}
					changed = true
				}
				continue
			}
			if best.CanPlace(pr.Object, pr.Server) != nil {
				continue
			}
			res.Evaluations++
			if best.DeltaIfPlaced(pr.Object, pr.Server) < 0 {
				if _, err := best.PlaceReplica(pr.Object, pr.Server); err != nil {
					return nil, fmt.Errorf("glauber: quench place (%d,%d): %w", pr.Object, pr.Server, err)
				}
				changed = true
			}
		}
	}

	res.Schema = best
	return res, nil
}
