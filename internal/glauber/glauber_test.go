package glauber

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/greedy"
	"repro/internal/solver"
	"repro/internal/testutil"
)

func TestSolveRuns(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(1))
	res, err := Solve(context.Background(), p, Config{Sweeps: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema == nil {
		t.Fatal("nil schema")
	}
	if res.Evaluations <= 0 {
		t.Fatal("no evaluations counted")
	}
	if res.Accepted <= 0 {
		t.Fatal("chain accepted no moves")
	}
	if len(res.History) != 20 {
		t.Fatalf("history length %d, want 20", len(res.History))
	}
	if res.Schema.Savings() <= 0 {
		t.Fatalf("savings %.2f, want > 0", res.Schema.Savings())
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNilProblem(t *testing.T) {
	if _, err := Solve(context.Background(), nil, Config{}); err == nil {
		t.Fatal("nil problem accepted")
	}
}

// The best-so-far history must be monotone: the journal replay returns the
// best placement ever visited, never the chain's final wander.
func TestBestHistoryMonotone(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(2))
	res, err := Solve(context.Background(), p, Config{Sweeps: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("best cost regressed at sweep %d: %d -> %d",
				i, res.History[i-1], res.History[i])
		}
	}
	// The quench can only improve on the chain's best.
	if got := res.Schema.TotalCost(); got > res.History[len(res.History)-1] {
		t.Fatalf("final cost %d above the chain's best %d", got, res.History[len(res.History)-1])
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := Config{Sweeps: 12, Seed: 3}
	a, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(3)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(3)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	am, bm := a.Schema.Matrix(), b.Schema.Matrix()
	if len(am) != len(bm) {
		t.Fatalf("matrix lengths differ: %d vs %d", len(am), len(bm))
	}
	for k := range am {
		if len(am[k]) != len(bm[k]) {
			t.Fatalf("object %d: replica sets differ", k)
		}
		for i := range am[k] {
			if am[k][i] != bm[k][i] {
				t.Fatalf("object %d: replica sets differ at %d", k, i)
			}
		}
	}
	if a.Evaluations != b.Evaluations || a.Accepted != b.Accepted {
		t.Fatalf("work differs across identical runs: (%d,%d) vs (%d,%d)",
			a.Evaluations, a.Accepted, b.Evaluations, b.Accepted)
	}
}

func TestDifferentSeedsExplore(t *testing.T) {
	p := func() *testutil.InstanceConfig { c := testutil.Small(4); return &c }()
	a, err := Solve(context.Background(), testutil.MustBuild(*p), Config{Sweeps: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), testutil.MustBuild(*p), Config{Sweeps: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds walk different chains; the accepted-move counts all
	// but surely differ even when final costs coincide.
	if a.Accepted == b.Accepted && a.Evaluations == b.Evaluations && a.Schema.TotalCost() == b.Schema.TotalCost() {
		t.Fatal("two seeds produced an identical run; the seed is not wired into the chain")
	}
}

// The quench alone makes the result at least a single-flip local optimum,
// which for this landscape means it is competitive with greedy: within a
// few points of savings, not degenerate.
func TestCompetitiveWithGreedy(t *testing.T) {
	cfg := testutil.Small(6)
	gres, err := greedy.Solve(context.Background(), testutil.MustBuild(cfg), greedy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{Sweeps: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Savings() < gres.Schema.Savings()-5 {
		t.Fatalf("glauber %.2f%% more than 5 points behind greedy %.2f%%",
			res.Schema.Savings(), gres.Schema.Savings())
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := testutil.MustBuild(testutil.Small(7))
	_, err := Solve(ctx, p, Config{Sweeps: 10, Seed: 7})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCancelledMidChain(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(8))
	// The first poll passes (pre-chain check), later ones cancel mid-sweep.
	ctx := testutil.CancelAfterPolls(3)
	_, err := Solve(ctx, p, Config{Sweeps: 50, Seed: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWarmStart(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(9))
	cold, err := Solve(context.Background(), p, Config{Sweeps: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(9)),
		Config{Sweeps: 5, Seed: 10, Warm: cold.Schema.Matrix()})
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
	// Starting from a good placement, the best-so-far can never fall below
	// what the carried placement already achieved.
	if warm.Schema.TotalCost() > cold.Schema.TotalCost() {
		t.Fatalf("warm start ended at %d, worse than its seed placement %d",
			warm.Schema.TotalCost(), cold.Schema.TotalCost())
	}
}

func TestOnSweepObserved(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(10))
	var sweeps []int
	_, err := Solve(context.Background(), p, Config{
		Sweeps: 8, Seed: 10,
		OnSweep: func(sweep int, bestCost int64) { sweeps = append(sweeps, sweep) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 8 {
		t.Fatalf("observed %d sweeps, want 8", len(sweeps))
	}
	for i, s := range sweeps {
		if s != i+1 {
			t.Fatalf("sweep %d reported as %d, want 1-based sequence", i, s)
		}
	}
}

// Property: the chain's result always satisfies the DRP constraints.
func TestResultAlwaysFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := testutil.InstanceConfig{
			Servers: 8, Objects: 20, Requests: 1500, RWRatio: 0.8,
			CapacityPercent: 30, EdgeP: 0.4, Seed: seed,
		}
		p, err := testutil.Build(cfg)
		if err != nil {
			return false
		}
		res, err := Solve(context.Background(), p, Config{Sweeps: 6, Seed: seed})
		if err != nil {
			return false
		}
		return res.Schema.ValidateInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Registry adapter: single engine, sweeps/seed pass-through, GRA-style
// per-sweep events.
func TestAdapter(t *testing.T) {
	s, ok := solver.Lookup("glauber")
	if !ok {
		t.Fatal("glauber not registered")
	}
	if _, err := s.Solve(context.Background(), testutil.MustBuild(testutil.Small(11)),
		solver.Options{Engine: "sync"}); err == nil {
		t.Fatal("engine selection accepted by a single-engine method")
	}
	out, err := s.Solve(context.Background(), testutil.MustBuild(testutil.Small(11)),
		solver.Options{Seed: 11, GlauberSweeps: 7, RecordEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 7 {
		t.Fatalf("rounds %d, want the 7 configured sweeps", out.Rounds)
	}
	if len(out.Events) != 7 {
		t.Fatalf("%d events, want one per sweep", len(out.Events))
	}
	for i, ev := range out.Events {
		if ev.Round != i+1 || ev.Object != -1 || ev.Server != -1 {
			t.Fatalf("event %d = %+v, want per-sweep shape", i, ev)
		}
	}
	if out.Work <= 0 || out.Schema == nil {
		t.Fatalf("outcome missing work or schema: %+v", out)
	}
}

func TestDefaultSweepsScaling(t *testing.T) {
	// Small instances keep the historical 60-sweep budget.
	if got := DefaultSweeps(16, 60); got != 60 {
		t.Fatalf("DefaultSweeps(16,60) = %d, want 60", got)
	}
	if got := DefaultSweeps(32, 32); got != 60 {
		t.Fatalf("DefaultSweeps(32,32) = %d, want 60 at the pivot", got)
	}
	// One doubling past the pivot adds one 60-sweep block.
	if got := DefaultSweeps(64, 32); got != 120 {
		t.Fatalf("DefaultSweeps(64,32) = %d, want 120", got)
	}
	// Budget is monotone in the site count.
	prev := 0
	for _, m := range []int{16, 48, 100, 500, 1000, 10000} {
		got := DefaultSweeps(m, 3*m)
		if got < prev {
			t.Fatalf("DefaultSweeps(%d,%d) = %d < previous %d", m, 3*m, got, prev)
		}
		prev = got
	}
	// Daemon scale gets a real budget, not sixty.
	if got := DefaultSweeps(1000, 3000); got < 400 {
		t.Fatalf("DefaultSweeps(1000,3000) = %d, want a few hundred", got)
	}
}

func TestAdaptiveDefaultUsedWhenSweepsZero(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(2))
	res, err := Solve(context.Background(), p, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultSweeps(p.M, p.N)
	if len(res.History) != want {
		t.Fatalf("defaulted run did %d sweeps, want DefaultSweeps = %d", len(res.History), want)
	}
	// An explicit budget is used verbatim, bit-reproducibly.
	a, err := Solve(context.Background(), p, Config{Sweeps: 17, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), p, Config{Sweeps: 17, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.History) != 17 || len(b.History) != 17 {
		t.Fatalf("explicit budget not honored: %d, %d sweeps", len(a.History), len(b.History))
	}
	am, bm := a.Schema.Matrix(), b.Schema.Matrix()
	for k := range am {
		if len(am[k]) != len(bm[k]) {
			t.Fatalf("fixed (seed, sweeps) run diverged at object %d", k)
		}
		for i := range am[k] {
			if am[k][i] != bm[k][i] {
				t.Fatalf("fixed (seed, sweeps) run diverged at object %d", k)
			}
		}
	}
}
