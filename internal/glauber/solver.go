package glauber

import (
	"context"
	"fmt"

	"repro/internal/replication"
	"repro/internal/solver"
)

// glSolver adapts the Glauber chain to the solver registry.
type glSolver struct{}

func init() { solver.Register(glSolver{}) }

func (glSolver) Name() string  { return "glauber" }
func (glSolver) Label() string { return "Glauber" }
func (glSolver) Description() string {
	return "Glauber-dynamics annealing after Etesami: seeded single-site Metropolis flips, geometric cooling, zero-temperature quench"
}

func (glSolver) Solve(ctx context.Context, p *replication.Problem, opts solver.Options) (*solver.Outcome, error) {
	if opts.Engine != "" {
		return nil, fmt.Errorf("glauber: unknown engine %q (glauber has a single engine)", opts.Engine)
	}
	cfg := Config{
		Sweeps: opts.GlauberSweeps,
		Seed:   opts.Seed,
		Warm:   opts.Warm,
	}
	out := &solver.Outcome{}
	if opts.OnEvent != nil || opts.RecordEvents {
		// The chain flips replicas in and out rather than committing them
		// once, so its event stream is per sweep: Round is the sweep, Value
		// the best OTC so far, Object/Server -1 (like GRA's generations).
		cfg.OnSweep = func(sweep int, bestCost int64) {
			out.Emit(opts, solver.Event{Round: sweep, Object: -1, Server: -1, Value: bestCost})
		}
	}
	res, err := Solve(ctx, p, cfg)
	if err != nil {
		return nil, err
	}
	out.Schema = res.Schema
	out.Replicas = res.Schema.Placed()
	out.Work = res.Evaluations
	out.Rounds = len(res.History)
	return out, nil
}
