package topology

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// WeightRange is the closed range of integer link costs used by the
// generators. The paper reverse-maps node distances to the cost of
// transmitting 1 kB; we draw integer costs uniformly from this range.
type WeightRange struct {
	Lo, Hi int32
}

// DefaultWeights matches the flavor of the paper's setup: small positive
// integer per-link costs with meaningful spread.
var DefaultWeights = WeightRange{Lo: 1, Hi: 10}

func (w WeightRange) sample(r *stats.RNG) int32 {
	if w.Lo <= 0 || w.Hi < w.Lo {
		panic(fmt.Sprintf("topology: invalid weight range [%d,%d]", w.Lo, w.Hi))
	}
	return w.Lo + int32(r.Int63n(int64(w.Hi-w.Lo+1)))
}

// Random generates the paper's "pure random topology": a G(n, p) graph in
// which every possible edge is present independently with probability p,
// with uniform integer link costs. The result is patched to be connected
// (isolated components are stitched with random edges), mirroring how
// GT-ITM-generated instances are used in practice.
func Random(n int, p float64, w WeightRange, r *stats.RNG) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: Random needs n > 0, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: Random needs p in [0,1], got %v", p)
	}
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				if err := g.AddEdge(u, v, w.sample(r)); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := ensureConnected(g, w, r); err != nil {
		return nil, err
	}
	return g, nil
}

// Waxman generates a Waxman random graph: nodes are placed uniformly in the
// unit square and the probability of a link between u and v is
// alpha * exp(-d(u,v) / (beta * L)) with L the maximum possible distance.
// Link cost is the Euclidean distance scaled into the weight range, so that
// geography shapes communication cost as in wide-area topologies.
func Waxman(n int, alpha, beta float64, w WeightRange, r *stats.RNG) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: Waxman needs n > 0, got %d", n)
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("topology: Waxman needs alpha, beta in (0,1], got alpha=%v beta=%v", alpha, beta)
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	maxD := math.Sqrt2
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
			if r.Float64() < alpha*math.Exp(-d/(beta*maxD)) {
				cost := w.Lo + int32(d/maxD*float64(w.Hi-w.Lo))
				if err := g.AddEdge(u, v, cost); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := ensureConnected(g, w, r); err != nil {
		return nil, err
	}
	return g, nil
}

// PowerLaw generates a preferential-attachment (Barabási–Albert) graph whose
// degree distribution follows a power law, the family the Inet generator
// produces for AS-level Internet topologies. Each new node attaches to m
// existing nodes chosen proportionally to their current degree.
func PowerLaw(n, m int, w WeightRange, r *stats.RNG) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: PowerLaw needs n > 0, got %d", n)
	}
	if m <= 0 {
		return nil, fmt.Errorf("topology: PowerLaw needs m > 0, got %d", m)
	}
	if m >= n {
		m = n - 1
	}
	g := NewGraph(n)
	if n == 1 {
		return g, nil
	}
	// Seed clique of m+1 nodes.
	seed := m + 1
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			if err := g.AddEdge(u, v, w.sample(r)); err != nil {
				return nil, err
			}
		}
	}
	// Repeated-endpoint list implements degree-proportional sampling.
	var targets []int32
	for u := 0; u < seed; u++ {
		for range g.adj[u] {
			targets = append(targets, int32(u))
		}
	}
	for u := seed; u < n; u++ {
		chosen := make(map[int32]bool, m)
		for len(chosen) < m {
			t := targets[r.Intn(len(targets))]
			chosen[t] = true
		}
		for t := range chosen {
			if err := g.AddEdge(u, int(t), w.sample(r)); err != nil {
				return nil, err
			}
			targets = append(targets, t, int32(u))
		}
	}
	return g, nil
}

// RandomTree generates a random recursive tree with weighted edges: node u
// (u >= 1) attaches to a uniformly random earlier node. Trees are the
// topology family for which the exact O(1)-query LCA distance oracle in
// internal/distoracle applies, following the tree-network replica placement
// line of work; this generator makes those scenarios reproducible.
func RandomTree(n int, w WeightRange, r *stats.RNG) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: RandomTree needs n > 0, got %d", n)
	}
	g := NewGraph(n)
	for u := 1; u < n; u++ {
		parent := r.Intn(u)
		if err := g.AddEdge(u, parent, w.sample(r)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// TransitStubConfig parameterizes the GT-ITM-style hierarchical generator.
type TransitStubConfig struct {
	TransitDomains  int // number of transit domains
	TransitSize     int // nodes per transit domain
	StubsPerTransit int // stub domains attached to each transit node
	StubSize        int // nodes per stub domain
	IntraP          float64
	Weights         WeightRange
	// TransitCostFactor scales link costs on the transit backbone relative
	// to stub links (backbone hops are long-haul and expensive).
	TransitCostFactor int32
}

// TransitStub generates a two-level transit-stub topology in the style of
// GT-ITM: dense transit (backbone) domains interconnected in a ring, with
// stub domains hanging off transit nodes. Total node count is
// TransitDomains*TransitSize*(1 + StubsPerTransit*StubSize).
func TransitStub(cfg TransitStubConfig, r *stats.RNG) (*Graph, error) {
	if cfg.TransitDomains <= 0 || cfg.TransitSize <= 0 || cfg.StubsPerTransit < 0 || cfg.StubSize <= 0 {
		return nil, fmt.Errorf("topology: invalid transit-stub config %+v", cfg)
	}
	if cfg.IntraP <= 0 || cfg.IntraP > 1 {
		return nil, fmt.Errorf("topology: transit-stub IntraP must be in (0,1], got %v", cfg.IntraP)
	}
	w := cfg.Weights
	if w.Lo == 0 && w.Hi == 0 {
		w = DefaultWeights
	}
	tf := cfg.TransitCostFactor
	if tf <= 0 {
		tf = 4
	}
	transitNodes := cfg.TransitDomains * cfg.TransitSize
	n := transitNodes * (1 + cfg.StubsPerTransit*cfg.StubSize)
	g := NewGraph(n)

	addDomain := func(nodes []int, weights WeightRange) error {
		// Random intra-domain graph over the node set, made connected by a
		// random spanning chain first.
		perm := r.Perm(len(nodes))
		for i := 1; i < len(perm); i++ {
			if err := g.AddEdge(nodes[perm[i-1]], nodes[perm[i]], weights.sample(r)); err != nil {
				return err
			}
		}
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if g.HasEdge(nodes[i], nodes[j]) {
					continue
				}
				if r.Float64() < cfg.IntraP {
					if err := g.AddEdge(nodes[i], nodes[j], weights.sample(r)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	transitW := WeightRange{Lo: w.Lo * tf, Hi: w.Hi * tf}
	next := 0
	transit := make([][]int, cfg.TransitDomains)
	for d := 0; d < cfg.TransitDomains; d++ {
		nodes := make([]int, cfg.TransitSize)
		for i := range nodes {
			nodes[i] = next
			next++
		}
		transit[d] = nodes
		if err := addDomain(nodes, transitW); err != nil {
			return nil, err
		}
	}
	// Ring between transit domains via random gateway nodes.
	for d := 0; d < cfg.TransitDomains && cfg.TransitDomains > 1; d++ {
		a := transit[d][r.Intn(cfg.TransitSize)]
		b := transit[(d+1)%cfg.TransitDomains][r.Intn(cfg.TransitSize)]
		if !g.HasEdge(a, b) {
			if err := g.AddEdge(a, b, transitW.sample(r)); err != nil {
				return nil, err
			}
		}
	}
	// Stub domains.
	for d := 0; d < cfg.TransitDomains; d++ {
		for _, tn := range transit[d] {
			for s := 0; s < cfg.StubsPerTransit; s++ {
				nodes := make([]int, cfg.StubSize)
				for i := range nodes {
					nodes[i] = next
					next++
				}
				if err := addDomain(nodes, w); err != nil {
					return nil, err
				}
				// Uplink from a random stub node to its transit node.
				if err := g.AddEdge(nodes[r.Intn(len(nodes))], tn, w.sample(r)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Ring returns an n-cycle with unit weights: a deterministic fixture whose
// shortest paths are known in closed form.
func Ring(n int) *Graph {
	g := NewGraph(n)
	for u := 0; u+1 < n; u++ {
		must(g.AddEdge(u, u+1, 1))
	}
	if n > 2 {
		must(g.AddEdge(n-1, 0, 1))
	}
	return g
}

// Grid returns a rows x cols grid with unit weights.
func Grid(rows, cols int) *Graph {
	g := NewGraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				must(g.AddEdge(id(r, c), id(r, c+1), 1))
			}
			if r+1 < rows {
				must(g.AddEdge(id(r, c), id(r+1, c), 1))
			}
		}
	}
	return g
}

// Star returns a star with n leaves around hub node 0 and unit weights.
func Star(n int) *Graph {
	g := NewGraph(n + 1)
	for u := 1; u <= n; u++ {
		must(g.AddEdge(0, u, 1))
	}
	return g
}

// Line returns an n-node path graph with unit weights.
func Line(n int) *Graph {
	g := NewGraph(n)
	for u := 0; u+1 < n; u++ {
		must(g.AddEdge(u, u+1, 1))
	}
	return g
}

// ensureConnected stitches disconnected components together with random
// edges so that every c(i,j) is finite, as the DRP requires. The stitch
// edge joins two distinct components, but a sampled weight can still be
// rejected by the graph, so the error is propagated rather than panicked.
func ensureConnected(g *Graph, w WeightRange, r *stats.RNG) error {
	comps := g.Components()
	for len(comps) > 1 {
		a := comps[0][r.Intn(len(comps[0]))]
		b := comps[1][r.Intn(len(comps[1]))]
		if err := g.AddEdge(a, b, w.sample(r)); err != nil {
			return fmt.Errorf("topology: stitching components: %w", err)
		}
		merged := append(comps[0], comps[1]...)
		comps = append([][]int{merged}, comps[2:]...)
	}
	return nil
}

// must panics on error. Reserved for the literal constructors (Ring, Grid,
// Star, Line) whose edges are provably valid by construction; generator
// code paths with data-dependent failure modes return errors instead.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
