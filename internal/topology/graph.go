// Package topology builds the network substrate of the distributed system:
// the server interconnect graphs the paper draws from GT-ITM and Inet, and
// the all-pairs communication cost matrix c(i,j) defined in Section 2 of the
// paper (shortest-path sums over link costs, symmetric, integer).
//
// The paper's experimental setups use flat random graphs G(M, p) with
// p ∈ {0.4 .. 0.8} (the GT-ITM "pure random" method), plus Inet-estimated
// AS-level topologies (power-law). This package implements both families
// from scratch, along with Waxman and transit-stub generators and small
// deterministic fixtures for tests.
package topology

import (
	"fmt"
	"sort"
)

// Edge is one directed half of an undirected link.
type Edge struct {
	To     int32
	Weight int32
}

// Graph is an undirected weighted multigraph-free adjacency structure. Edge
// weights are the positive integer communication costs of transferring one
// simple data unit across the link, as in Section 2 of the paper.
type Graph struct {
	adj [][]Edge
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("topology: negative node count")
	}
	return &Graph{adj: make([][]Edge, n)}
}

// N reports the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// Neighbors returns the adjacency list of node u. The returned slice must
// not be mutated.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// AddEdge inserts an undirected edge between u and v with weight w. Adding
// a duplicate or self edge, a non-positive weight, or an out-of-range
// endpoint is an error.
func (g *Graph) AddEdge(u, v int, w int32) error {
	if u == v {
		return fmt.Errorf("topology: self edge at node %d", u)
	}
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return fmt.Errorf("topology: edge (%d,%d) out of range [0,%d)", u, v, g.N())
	}
	if w <= 0 {
		return fmt.Errorf("topology: edge (%d,%d) needs positive weight, got %d", u, v, w)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("topology: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], Edge{To: int32(v), Weight: w})
	g.adj[v] = append(g.adj[v], Edge{To: int32(u), Weight: w})
	return nil
}

// HasEdge reports whether an undirected edge between u and v exists.
func (g *Graph) HasEdge(u, v int) bool {
	for _, e := range g.adj[u] {
		if int(e.To) == v {
			return true
		}
	}
	return false
}

// Edges reports the number of undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, g.N())
	for u := range g.adj {
		ds[u] = len(g.adj[u])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// Connected reports whether the graph is connected (true for the empty and
// single-node graphs).
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	return len(g.component(0)) == n
}

// component returns the set of nodes reachable from start via BFS.
func (g *Graph) component(start int) []int {
	seen := make([]bool, g.N())
	queue := []int{start}
	seen[start] = true
	var out []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		out = append(out, u)
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, int(e.To))
			}
		}
	}
	return out
}

// Components returns all connected components as node lists.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for u := 0; u < g.N(); u++ {
		if seen[u] {
			continue
		}
		comp := g.component(u)
		for _, v := range comp {
			seen[v] = true
		}
		comps = append(comps, comp)
	}
	return comps
}

// Validate checks structural invariants: symmetric adjacency, positive
// weights, no self or duplicate edges.
func (g *Graph) Validate() error {
	for u, a := range g.adj {
		seen := make(map[int32]bool, len(a))
		for _, e := range a {
			if int(e.To) == u {
				return fmt.Errorf("topology: self edge at node %d", u)
			}
			if e.To < 0 || int(e.To) >= g.N() {
				return fmt.Errorf("topology: node %d has edge to out-of-range %d", u, e.To)
			}
			if e.Weight <= 0 {
				return fmt.Errorf("topology: edge (%d,%d) has non-positive weight %d", u, e.To, e.Weight)
			}
			if seen[e.To] {
				return fmt.Errorf("topology: duplicate edge (%d,%d)", u, e.To)
			}
			seen[e.To] = true
			// Symmetry: the reverse edge must exist with the same weight.
			found := false
			for _, re := range g.adj[e.To] {
				if int(re.To) == u {
					if re.Weight != e.Weight {
						return fmt.Errorf("topology: asymmetric weight on edge (%d,%d): %d vs %d", u, e.To, e.Weight, re.Weight)
					}
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("topology: missing reverse edge for (%d,%d)", u, e.To)
			}
		}
	}
	return nil
}
