package topology

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestClusteringCoefficientKnownGraphs(t *testing.T) {
	// A triangle has coefficient 1.
	tri := NewGraph(3)
	must(tri.AddEdge(0, 1, 1))
	must(tri.AddEdge(1, 2, 1))
	must(tri.AddEdge(0, 2, 1))
	if c := tri.ClusteringCoefficient(); math.Abs(c-1) > 1e-9 {
		t.Fatalf("triangle coefficient = %v, want 1", c)
	}
	// A star has coefficient 0 (no neighbor of the hub is connected).
	if c := Star(5).ClusteringCoefficient(); c != 0 {
		t.Fatalf("star coefficient = %v, want 0", c)
	}
	// A path has no node with two connected neighbors.
	if c := Line(5).ClusteringCoefficient(); c != 0 {
		t.Fatalf("line coefficient = %v, want 0", c)
	}
	// Degenerate graphs.
	if c := NewGraph(0).ClusteringCoefficient(); c != 0 {
		t.Fatalf("empty graph coefficient = %v", c)
	}
}

func TestClusteringCoefficientGNP(t *testing.T) {
	// For G(n,p), the expected coefficient is about p.
	g, err := Random(120, 0.3, DefaultWeights, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if c := g.ClusteringCoefficient(); math.Abs(c-0.3) > 0.05 {
		t.Fatalf("G(n, 0.3) coefficient = %v, want about 0.3", c)
	}
}

func TestAveragePathCost(t *testing.T) {
	m := AllPairs(Line(3), 1) // distances 1,1,2 over pairs (0,1),(1,2),(0,2)
	want := (1.0 + 1.0 + 2.0) / 3
	if got := AveragePathCost(m); math.Abs(got-want) > 1e-9 {
		t.Fatalf("average path cost = %v, want %v", got, want)
	}
	if AveragePathCost(AllPairs(NewGraph(1), 1)) != 0 {
		t.Fatal("single node average should be 0")
	}
	// Disconnected pairs are excluded, not counted as infinite.
	g := NewGraph(3)
	must(g.AddEdge(0, 1, 4))
	if got := AveragePathCost(AllPairs(g, 1)); got != 4 {
		t.Fatalf("disconnected average = %v, want 4", got)
	}
}

func TestGraphSerializationRoundTrip(t *testing.T) {
	g, err := Random(40, 0.2, DefaultWeights, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.Edges() != g.Edges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.N(), back.Edges(), g.N(), g.Edges())
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if !back.HasEdge(u, int(e.To)) {
				t.Fatalf("edge (%d,%d) lost", u, e.To)
			}
		}
	}
	// Distances must be identical.
	a, b := AllPairs(g, 2), AllPairs(back, 2)
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("distance (%d,%d) changed", i, j)
			}
		}
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := []string{
		"",
		"NOPE 3 1\n0 1 5\n",
		"GRAPH -1 0\n",
		"GRAPH 3 2\n0 1 5\n", // truncated
		"GRAPH 3 1\n0 0 5\n", // self edge
		"GRAPH 3 1\n0 9 5\n", // out of range
		"GRAPH 3 1\n0 1 0\n", // zero weight
	}
	for _, c := range cases {
		if _, err := ReadGraph(strings.NewReader(c)); err == nil {
			t.Errorf("bad input accepted: %q", c)
		}
	}
}

func TestReadGraphHostileHeader(t *testing.T) {
	if _, err := ReadGraph(strings.NewReader("GRAPH 999999999 999999999\n")); err == nil {
		t.Fatal("oversized node count accepted")
	}
	if _, err := ReadGraph(strings.NewReader("GRAPH 3 99\n")); err == nil {
		t.Fatal("impossible edge count accepted")
	}
}
