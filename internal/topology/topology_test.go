package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestAddEdgeAndAccessors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 7); err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.Edges() != 2 {
		t.Fatalf("N=%d Edges=%d, want 3 and 2", g.N(), g.Edges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d, want 2", g.Degree(1))
	}
	ds := g.DegreeSequence()
	if ds[0] != 2 || ds[1] != 1 || ds[2] != 1 {
		t.Fatalf("degree sequence %v", ds)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self edge accepted")
	}
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 1, 1); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0, 2); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := NewGraph(4)
	must(g.AddEdge(0, 1, 1))
	must(g.AddEdge(2, 3, 1))
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	must(g.AddEdge(1, 2, 1))
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if !NewGraph(0).Connected() || !NewGraph(1).Connected() {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestRandomGenerator(t *testing.T) {
	r := stats.NewRNG(1)
	for _, p := range []float64{0.4, 0.5, 0.6, 0.7, 0.8} {
		g, err := Random(60, p, DefaultWeights, r)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatalf("Random(p=%v) not connected", p)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		// Edge density should be near p.
		maxEdges := 60 * 59 / 2
		density := float64(g.Edges()) / float64(maxEdges)
		if density < p-0.15 || density > p+0.15 {
			t.Fatalf("p=%v: density %v too far off", p, density)
		}
	}
}

func TestRandomErrors(t *testing.T) {
	r := stats.NewRNG(1)
	if _, err := Random(0, 0.5, DefaultWeights, r); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Random(5, -0.1, DefaultWeights, r); err == nil {
		t.Error("p<0 accepted")
	}
	if _, err := Random(5, 1.1, DefaultWeights, r); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestRandomSparseStillConnected(t *testing.T) {
	// p=0 relies entirely on the connectivity patch.
	g, err := Random(50, 0, DefaultWeights, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("patched graph not connected")
	}
	if g.Edges() != 49 {
		t.Fatalf("expected spanning-tree edge count 49, got %d", g.Edges())
	}
}

func TestWaxmanGenerator(t *testing.T) {
	g, err := Waxman(80, 0.8, 0.4, DefaultWeights, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("Waxman graph not connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWaxmanErrors(t *testing.T) {
	r := stats.NewRNG(3)
	if _, err := Waxman(0, 0.5, 0.5, DefaultWeights, r); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Waxman(5, 0, 0.5, DefaultWeights, r); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Waxman(5, 0.5, 1.5, DefaultWeights, r); err == nil {
		t.Error("beta>1 accepted")
	}
}

func TestPowerLawGenerator(t *testing.T) {
	g, err := PowerLaw(300, 2, DefaultWeights, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("PowerLaw graph not connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ds := g.DegreeSequence()
	// Power-law: max degree should be much larger than the median degree.
	if ds[0] < 3*ds[len(ds)/2] {
		t.Fatalf("degree sequence not heavy-tailed: max=%d median=%d", ds[0], ds[len(ds)/2])
	}
}

func TestPowerLawSmall(t *testing.T) {
	// m >= n clamps; n=1 returns a single node.
	g, err := PowerLaw(1, 3, DefaultWeights, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1 || g.Edges() != 0 {
		t.Fatalf("single-node power law wrong: N=%d E=%d", g.N(), g.Edges())
	}
	g2, err := PowerLaw(4, 10, DefaultWeights, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Connected() {
		t.Fatal("clamped power law not connected")
	}
	if _, err := PowerLaw(0, 2, DefaultWeights, stats.NewRNG(5)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := PowerLaw(5, 0, DefaultWeights, stats.NewRNG(5)); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestTransitStub(t *testing.T) {
	cfg := TransitStubConfig{
		TransitDomains:  3,
		TransitSize:     4,
		StubsPerTransit: 2,
		StubSize:        3,
		IntraP:          0.5,
	}
	g, err := TransitStub(cfg, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	wantN := 3 * 4 * (1 + 2*3)
	if g.N() != wantN {
		t.Fatalf("N = %d, want %d", g.N(), wantN)
	}
	if !g.Connected() {
		t.Fatal("transit-stub not connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransitStubErrors(t *testing.T) {
	if _, err := TransitStub(TransitStubConfig{}, stats.NewRNG(1)); err == nil {
		t.Error("zero config accepted")
	}
	bad := TransitStubConfig{TransitDomains: 1, TransitSize: 1, StubSize: 1, IntraP: 2}
	if _, err := TransitStub(bad, stats.NewRNG(1)); err == nil {
		t.Error("IntraP > 1 accepted")
	}
}

func TestFixtures(t *testing.T) {
	ring := Ring(6)
	if ring.Edges() != 6 || !ring.Connected() {
		t.Fatalf("Ring(6): E=%d connected=%v", ring.Edges(), ring.Connected())
	}
	two := Ring(2)
	if two.Edges() != 1 {
		t.Fatalf("Ring(2) edges = %d, want 1", two.Edges())
	}
	grid := Grid(3, 4)
	if grid.N() != 12 || grid.Edges() != 3*3+2*4 {
		t.Fatalf("Grid(3,4): N=%d E=%d", grid.N(), grid.Edges())
	}
	star := Star(5)
	if star.N() != 6 || star.Degree(0) != 5 {
		t.Fatalf("Star(5): N=%d deg0=%d", star.N(), star.Degree(0))
	}
	line := Line(4)
	if line.Edges() != 3 {
		t.Fatalf("Line(4) edges = %d", line.Edges())
	}
	for _, g := range []*Graph{ring, two, grid, star, line} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllPairsRing(t *testing.T) {
	g := Ring(8)
	m := AllPairs(g, 2)
	// On a unit-weight 8-cycle, d(i,j) = min(|i-j|, 8-|i-j|).
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			diff := i - j
			if diff < 0 {
				diff = -diff
			}
			want := diff
			if 8-diff < want {
				want = 8 - diff
			}
			if got := m.At(i, j); got != int32(want) {
				t.Fatalf("d(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestAllPairsLineWeights(t *testing.T) {
	g := NewGraph(4)
	must(g.AddEdge(0, 1, 2))
	must(g.AddEdge(1, 2, 3))
	must(g.AddEdge(2, 3, 4))
	must(g.AddEdge(0, 3, 20)) // longer direct edge must lose to the path
	m := AllPairs(g, 1)
	if m.At(0, 3) != 9 {
		t.Fatalf("d(0,3) = %d, want 9 (path through middle)", m.At(0, 3))
	}
	if m.At(0, 2) != 5 || m.At(1, 3) != 7 {
		t.Fatalf("unexpected distances: %d %d", m.At(0, 2), m.At(1, 3))
	}
}

func TestAllPairsValidateMetric(t *testing.T) {
	g, err := Random(70, 0.1, DefaultWeights, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	m := AllPairs(g, 0)
	if err := m.Validate(70); err != nil {
		t.Fatal(err)
	}
	if m.MaxFinite() <= 0 {
		t.Fatal("diameter should be positive")
	}
}

func TestAllPairsDisconnectedInfinity(t *testing.T) {
	g := NewGraph(3)
	must(g.AddEdge(0, 1, 1))
	m := AllPairs(g, 1)
	if m.At(0, 2) != Infinity || m.At(2, 0) != Infinity {
		t.Fatal("unreachable pair should be Infinity")
	}
	if m.At(0, 1) != 1 {
		t.Fatal("reachable pair wrong")
	}
}

func TestAllPairsWorkerCountsAgree(t *testing.T) {
	g, err := Random(50, 0.2, DefaultWeights, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	m1 := AllPairs(g, 1)
	m8 := AllPairs(g, 8)
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if m1.At(i, j) != m8.At(i, j) {
				t.Fatalf("worker counts disagree at (%d,%d)", i, j)
			}
		}
	}
}

func TestAllPairsEmpty(t *testing.T) {
	m := AllPairs(NewGraph(0), 4)
	if m.N() != 0 {
		t.Fatal("empty graph should give empty matrix")
	}
}

func TestDistMatrixRow(t *testing.T) {
	g := Line(3)
	m := AllPairs(g, 1)
	row := m.Row(0)
	if len(row) != 3 || row[0] != 0 || row[1] != 1 || row[2] != 2 {
		t.Fatalf("Row(0) = %v", row)
	}
}

// Property: on any connected random graph, APSP distances are symmetric,
// zero-diagonal, and bounded by (n-1)*maxWeight.
func TestAllPairsProperty(t *testing.T) {
	f := func(seed int64, rawN uint8, rawP uint8) bool {
		n := int(rawN%30) + 2
		p := float64(rawP%100) / 100
		g, err := Random(n, p, DefaultWeights, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		m := AllPairs(g, 2)
		bound := int32(n-1) * DefaultWeights.Hi
		for i := 0; i < n; i++ {
			if m.At(i, i) != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if m.At(i, j) != m.At(j, i) {
					return false
				}
				if m.At(i, j) > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := NewGraph(3)
	must(g.AddEdge(0, 1, 1))
	// Corrupt: make adjacency asymmetric by hand.
	g.adj[2] = append(g.adj[2], Edge{To: 0, Weight: 1})
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric edge")
	}
}

// floydWarshall is an independent APSP oracle for cross-checking Dijkstra.
func floydWarshall(g *Graph) [][]int64 {
	n := g.N()
	const inf = int64(1) << 40
	d := make([][]int64, n)
	for i := range d {
		d[i] = make([]int64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(u) {
			d[u][e.To] = int64(e.Weight)
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

func TestAllPairsAgainstFloydWarshall(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, err := Random(40, 0.15, DefaultWeights, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		m := AllPairs(g, 0)
		fw := floydWarshall(g)
		for i := 0; i < g.N(); i++ {
			for j := 0; j < g.N(); j++ {
				want := fw[i][j]
				got := int64(m.At(i, j))
				if want >= int64(1)<<40 {
					if m.At(i, j) != Infinity {
						t.Fatalf("seed %d: (%d,%d) should be unreachable", seed, i, j)
					}
					continue
				}
				if got != want {
					t.Fatalf("seed %d: d(%d,%d) dijkstra %d != floyd-warshall %d", seed, i, j, got, want)
				}
			}
		}
	}
}
