package topology

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

// ReadGraph must never panic on arbitrary input. Run with
// `go test -fuzz=FuzzReadGraph ./internal/topology` to explore; the seed
// corpus runs on every plain `go test`.
func FuzzReadGraph(f *testing.F) {
	g, err := Random(10, 0.3, DefaultWeights, stats.NewRNG(1))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("GRAPH 3 1\n0 1 5\n")
	f.Add("GRAPH 999999999 999999999\n")
	f.Add("GRAPH 2 1\n0 1 -5\n")

	f.Fuzz(func(t *testing.T, data string) {
		parsed, err := ReadGraph(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted graphs must satisfy every structural invariant.
		if err := parsed.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}
