package topology

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// DistMatrix is the dense all-pairs shortest-path matrix c(i,j) of a graph:
// the communication cost of moving one simple data unit between servers i
// and j. It is symmetric with a zero diagonal. Entries are int32 (paper
// costs are small positive integers; path sums stay well inside int32 for
// any graph this package generates).
type DistMatrix struct {
	n int
	d []int32 // row-major n*n
}

// Infinity marks an unreachable pair. Generators in this package always
// return connected graphs, so user code normally never sees it.
const Infinity int32 = math.MaxInt32

// N reports the node count.
func (m *DistMatrix) N() int { return m.n }

// At returns c(i,j).
func (m *DistMatrix) At(i, j int) int32 { return m.d[i*m.n+j] }

// Row returns the i-th row as a shared slice; callers must not mutate it.
func (m *DistMatrix) Row(i int) []int32 { return m.d[i*m.n : (i+1)*m.n] }

// MaxFinite returns the largest finite entry (the weighted diameter).
func (m *DistMatrix) MaxFinite() int32 {
	var max int32
	for _, v := range m.d {
		if v != Infinity && v > max {
			max = v
		}
	}
	return max
}

// Validate checks the metric invariants: zero diagonal, symmetry, and the
// triangle inequality (the latter only up to sampleLimit rows to keep the
// check affordable on big instances; pass n for an exhaustive check).
func (m *DistMatrix) Validate(sampleLimit int) error {
	for i := 0; i < m.n; i++ {
		if m.At(i, i) != 0 {
			return fmt.Errorf("topology: nonzero diagonal at %d: %d", i, m.At(i, i))
		}
		for j := i + 1; j < m.n; j++ {
			if m.At(i, j) != m.At(j, i) {
				return fmt.Errorf("topology: asymmetric distance (%d,%d): %d vs %d", i, j, m.At(i, j), m.At(j, i))
			}
		}
	}
	lim := sampleLimit
	if lim > m.n {
		lim = m.n
	}
	for i := 0; i < lim; i++ {
		for j := 0; j < m.n; j++ {
			for k := 0; k < lim; k++ {
				a, b, c := m.At(i, j), m.At(i, k), m.At(k, j)
				if a == Infinity || b == Infinity || c == Infinity {
					continue
				}
				if int64(a) > int64(b)+int64(c) {
					return fmt.Errorf("topology: triangle violation d(%d,%d)=%d > d(%d,%d)+d(%d,%d)=%d",
						i, j, a, i, k, k, j, int64(b)+int64(c))
				}
			}
		}
	}
	return nil
}

// MaxDenseNodes is the largest node count for which a dense n*n int32
// matrix can be indexed without overflowing int32 arithmetic on row
// offsets (floor(sqrt(2^31-1)) = 46340). Beyond this, use the lazy or
// landmark oracles in internal/distoracle instead of a dense matrix.
const MaxDenseNodes = 46340

// AllPairs computes the all-pairs shortest-path matrix with one Dijkstra per
// source, fanned out over a worker pool. workers <= 0 selects GOMAXPROCS.
// Panics for n > MaxDenseNodes, where the n*n element count would silently
// wrap int32 index math; such instances must use internal/distoracle.
func AllPairs(g *Graph, workers int) *DistMatrix {
	n := g.N()
	if n > MaxDenseNodes {
		panic(fmt.Sprintf("topology: AllPairs with n=%d exceeds MaxDenseNodes=%d (n*n overflows int32); use internal/distoracle", n, MaxDenseNodes))
	}
	m := &DistMatrix{n: n, d: make([]int32, n*n)}
	StreamRows(g, workers, m.Row)
	return m
}

// StreamRows runs one Dijkstra per source over a worker pool, writing each
// source's finished distance row into the slice returned by rowOf(src).
// rowOf must return a caller-owned []int32 of length g.N(); it is invoked
// from worker goroutines and must be safe for concurrent calls with
// distinct sources. Unlike AllPairs this never allocates n*n storage
// itself, so oracle layers can stream rows into bounded caches or K-row
// landmark tables. workers <= 0 selects GOMAXPROCS.
func StreamRows(g *Graph, workers int, rowOf func(src int) []int32) {
	n := g.N()
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	src := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch reused across sources.
			scratch := newDijkstraScratch(n)
			for s := range src {
				scratch.run(g, s, rowOf(s))
			}
		}()
	}
	for s := 0; s < n; s++ {
		src <- s
	}
	close(src)
	wg.Wait()
}

// ShortestPathsFrom fills dist (length g.N()) with single-source shortest
// paths from src. It allocates fresh scratch per call; hot loops that run
// many sources should go through StreamRows or keep their own scratch.
func ShortestPathsFrom(g *Graph, src int, dist []int32) {
	newDijkstraScratch(g.N()).run(g, src, dist)
}

// dijkstraScratch holds reusable per-worker buffers for Dijkstra runs.
type dijkstraScratch struct {
	visited []bool
	pq      pqueue
}

func newDijkstraScratch(n int) *dijkstraScratch {
	return &dijkstraScratch{
		visited: make([]bool, n),
		pq:      make(pqueue, 0, n),
	}
}

// run fills dist with single-source shortest paths from s.
func (sc *dijkstraScratch) run(g *Graph, s int, dist []int32) {
	for i := range dist {
		dist[i] = Infinity
		sc.visited[i] = false
	}
	dist[s] = 0
	sc.pq = sc.pq[:0]
	heap.Push(&sc.pq, pqItem{node: int32(s), dist: 0})
	for sc.pq.Len() > 0 {
		it := heap.Pop(&sc.pq).(pqItem)
		u := int(it.node)
		if sc.visited[u] {
			continue
		}
		sc.visited[u] = true
		du := dist[u]
		for _, e := range g.Neighbors(u) {
			v := int(e.To)
			if sc.visited[v] {
				continue
			}
			nd := du + e.Weight
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(&sc.pq, pqItem{node: e.To, dist: nd})
			}
		}
	}
}

type pqItem struct {
	node int32
	dist int32
}

type pqueue []pqItem

func (q pqueue) Len() int            { return len(q) }
func (q pqueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pqueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pqueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pqueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
