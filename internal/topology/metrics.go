package topology

import (
	"bufio"
	"fmt"
	"io"
)

// ClusteringCoefficient returns the average local clustering coefficient:
// for each node, the fraction of its neighbor pairs that are themselves
// connected, averaged over nodes of degree >= 2. Power-law and transit-stub
// graphs cluster; G(n,p) graphs cluster at about p.
func (g *Graph) ClusteringCoefficient() float64 {
	var sum float64
	counted := 0
	for u := 0; u < g.N(); u++ {
		deg := g.Degree(u)
		if deg < 2 {
			continue
		}
		links := 0
		nbrs := g.Neighbors(u)
		for a := 0; a < len(nbrs); a++ {
			for b := a + 1; b < len(nbrs); b++ {
				if g.HasEdge(int(nbrs[a].To), int(nbrs[b].To)) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(deg*(deg-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// AveragePathCost returns the mean finite c(i,j) over distinct pairs —
// the expected cost of a random one-unit transfer, the quantity the DRP
// minimizes traffic against.
func AveragePathCost(m *DistMatrix) float64 {
	var sum float64
	pairs := 0
	for i := 0; i < m.N(); i++ {
		for j := i + 1; j < m.N(); j++ {
			if d := m.At(i, j); d != Infinity {
				sum += float64(d)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}

// Graph serialization: a minimal text edge-list format in the spirit of the
// GT-ITM output files the paper's tooling consumed.
//
//	GRAPH <n> <edges>
//	<u> <v> <weight>     (one line per undirected edge, u < v)

// WriteTo serializes the graph. It implements io.WriterTo.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := fmt.Fprintf(bw, "GRAPH %d %d\n", g.N(), g.Edges())
	written += int64(n)
	if err != nil {
		return written, err
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if int(e.To) < u {
				continue // each undirected edge once
			}
			n, err := fmt.Fprintf(bw, "%d %d %d\n", u, e.To, e.Weight)
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// MaxSerializedNodes bounds the node count ReadGraph accepts, so a hostile
// header cannot force an enormous allocation.
const MaxSerializedNodes = 1 << 22

// ReadGraph parses a graph written by WriteTo, validating the header
// counts and every edge.
func ReadGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n, edges int
	if _, err := fmt.Fscanf(br, "GRAPH %d %d\n", &n, &edges); err != nil {
		return nil, fmt.Errorf("topology: bad graph header: %w", err)
	}
	if n < 0 || edges < 0 {
		return nil, fmt.Errorf("topology: negative counts in header: %d %d", n, edges)
	}
	if n > MaxSerializedNodes {
		return nil, fmt.Errorf("topology: header declares %d nodes, limit %d", n, MaxSerializedNodes)
	}
	if maxE := int64(n) * int64(n-1) / 2; int64(edges) > maxE {
		return nil, fmt.Errorf("topology: header declares %d edges, a %d-node simple graph holds at most %d", edges, n, maxE)
	}
	g := NewGraph(n)
	for i := 0; i < edges; i++ {
		var u, v int
		var w int32
		if _, err := fmt.Fscanf(br, "%d %d %d\n", &u, &v, &w); err != nil {
			return nil, fmt.Errorf("topology: reading edge %d: %w", i, err)
		}
		if err := g.AddEdge(u, v, w); err != nil {
			return nil, fmt.Errorf("topology: edge %d: %w", i, err)
		}
	}
	return g, nil
}
