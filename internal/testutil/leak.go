package testutil

import (
	"runtime"
	"testing"
	"time"
)

// LeakCheck snapshots the goroutine count and registers a cleanup that fails
// the test if goroutines are still outstanding at test end. Call it before
// starting the code under test. The check polls because legitimate teardown
// (conn closes, WaitGroup wakeups) takes a few scheduler ticks to settle.
func LeakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
		}
	})
}
