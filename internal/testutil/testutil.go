// Package testutil builds small, deterministic DRP instances shared by the
// solver test suites. It depends only on the substrates (topology, workload,
// replication), never on solvers, so every solver package can use it.
package testutil

import (
	"fmt"

	"repro/internal/replication"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// InstanceConfig describes a synthetic DRP instance.
type InstanceConfig struct {
	Servers         int
	Objects         int
	Requests        int
	RWRatio         float64 // read share in (0,1]
	CapacityPercent float64 // server capacity as % of total object size
	EdgeP           float64 // G(n,p) edge probability
	Seed            int64
}

// Small returns a quick configuration for unit tests.
func Small(seed int64) InstanceConfig {
	return InstanceConfig{
		Servers:         16,
		Objects:         60,
		Requests:        8000,
		RWRatio:         0.8,
		CapacityPercent: 30,
		EdgeP:           0.3,
		Seed:            seed,
	}
}

// Medium returns a configuration big enough for behavioural comparisons.
func Medium(seed int64) InstanceConfig {
	return InstanceConfig{
		Servers:         48,
		Objects:         300,
		Requests:        60000,
		RWRatio:         0.85,
		CapacityPercent: 25,
		EdgeP:           0.3,
		Seed:            seed,
	}
}

// Build constructs a complete replication problem from the configuration.
func Build(cfg InstanceConfig) (*replication.Problem, error) {
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers:  cfg.Servers,
		Objects:  cfg.Objects,
		Requests: cfg.Requests,
		RWRatio:  cfg.RWRatio,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("testutil: workload: %w", err)
	}
	r := stats.NewRNG(stats.Mix64(cfg.Seed, 101))
	g, err := topology.Random(cfg.Servers, cfg.EdgeP, topology.DefaultWeights, r)
	if err != nil {
		return nil, fmt.Errorf("testutil: topology: %w", err)
	}
	caps, err := replication.GenerateCapacities(w, cfg.CapacityPercent, r)
	if err != nil {
		return nil, fmt.Errorf("testutil: capacities: %w", err)
	}
	return replication.NewProblem(topology.AllPairs(g, 0), w, caps)
}

// MustBuild is Build for tests that treat construction failure as fatal.
func MustBuild(cfg InstanceConfig) *replication.Problem {
	p, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return p
}
