package testutil

import (
	"context"
	"sync/atomic"
)

// pollContext flips Err() to context.Canceled after a fixed number of calls.
type pollContext struct {
	context.Context
	remaining int64
}

// CancelAfterPolls returns a context whose Err() reports context.Canceled
// from the (n+1)-th call on. Solvers poll ctx.Err() at their loop boundaries,
// so this cancels deterministically mid-solve without timers — exactly one
// code path sees the flip, on every run, under -race.
//
// The context is otherwise inert: Done() returns a channel that never closes,
// and it carries no deadline. Engines whose teardown hangs off Done() (the
// network and TCP engines) must be cancelled with a real cancelable context
// instead.
func CancelAfterPolls(n int) context.Context {
	return &pollContext{Context: context.Background(), remaining: int64(n)}
}

func (c *pollContext) Err() error {
	if atomic.AddInt64(&c.remaining, -1) < 0 {
		return context.Canceled
	}
	return nil
}
