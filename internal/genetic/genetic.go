// Package genetic implements the GRA baseline of the paper's comparison
// (Loukopoulos and Ahmad [21]): a genetic algorithm over replica
// placements.
//
// An individual encodes a placement as (priority permutation, selection
// mask) over the instance's candidate (server, object) pairs; decoding
// places the selected candidates in priority order while they fit. Fitness
// is the exact OTC of the decoded schema. Search uses tournament selection,
// order crossover on the permutation, uniform crossover on the mask,
// swap/flip mutation and single-individual elitism. Fitness evaluation of a
// generation fans out over a worker pool.
//
// As in the paper, GRA's quality hinges on the initial gene population and
// its localized view of the placement interactions, so with practical
// budgets it trails the constructive methods in both quality and time —
// the behaviour Figures 3-4 and Tables 1-2 report.
package genetic

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/candidates"
	"repro/internal/replication"
	"repro/internal/stats"
)

// Config tunes the GA.
type Config struct {
	Population  int     // default 16 (must be even, >= 4)
	Generations int     // default 30
	Mutation    float64 // per-gene mutation probability, default 0.05
	Tournament  int     // tournament size, default 3
	Workers     int     // parallel fitness workers; <= 0 selects GOMAXPROCS
	Seed        int64
	// OnGeneration, when non-nil, observes each generation's best OTC as
	// the search progresses (1-based generation index).
	OnGeneration func(gen int, bestCost int64)
}

func (c Config) withDefaults() Config {
	if c.Population == 0 {
		c.Population = 16
	}
	if c.Generations == 0 {
		c.Generations = 30
	}
	if c.Mutation == 0 {
		c.Mutation = 0.05
	}
	if c.Tournament == 0 {
		c.Tournament = 3
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Result is the outcome of a run.
type Result struct {
	Schema *replication.Schema
	// Evaluations counts schema decodings (the dominant cost).
	Evaluations int64
	// History records the best OTC per generation (for convergence plots).
	History []int64
}

type individual struct {
	perm []int32 // priority order over candidate indices
	mask []bool  // selected candidates
	cost int64
}

// Solve runs the GA. ctx is checked before every generation; on
// cancellation Solve returns ctx.Err() wrapped with the package name.
func Solve(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("genetic: nil problem")
	}
	cfg = cfg.withDefaults()
	if cfg.Population < 4 || cfg.Population%2 != 0 {
		return nil, fmt.Errorf("genetic: population must be even and >= 4, got %d", cfg.Population)
	}
	if cfg.Mutation < 0 || cfg.Mutation > 1 {
		return nil, fmt.Errorf("genetic: mutation rate %v outside [0,1]", cfg.Mutation)
	}
	rng := stats.NewRNG(cfg.Seed)
	pairs := candidates.Build(p, true)
	res := &Result{}

	if len(pairs) == 0 {
		res.Schema = p.NewSchema()
		return res, nil
	}

	decode := func(ind *individual) *replication.Schema {
		s := p.NewSchema()
		for _, gi := range ind.perm {
			if !ind.mask[gi] {
				continue
			}
			pr := pairs[gi]
			if s.CanPlace(pr.Object, pr.Server) != nil {
				continue
			}
			if _, err := s.PlaceReplica(pr.Object, pr.Server); err != nil {
				continue
			}
		}
		return s
	}

	newIndividual := func(r *stats.RNG) *individual {
		ind := &individual{perm: r.Perm32(len(pairs)), mask: make([]bool, len(pairs))}
		for i := range ind.mask {
			ind.mask[i] = r.Bool(0.5)
		}
		return ind
	}

	pop := make([]*individual, cfg.Population)
	for i := range pop {
		pop[i] = newIndividual(rng.Split(int64(i)))
	}

	evaluate := func(inds []*individual) {
		var wg sync.WaitGroup
		work := make(chan *individual, len(inds))
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ind := range work {
					ind.cost = decode(ind).TotalCost()
				}
			}()
		}
		for _, ind := range inds {
			work <- ind
		}
		close(work)
		wg.Wait()
		res.Evaluations += int64(len(inds))
	}

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("genetic: %w", err)
	}
	evaluate(pop)
	best := fittest(pop)

	for gen := 0; gen < cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("genetic: %w", err)
		}
		next := make([]*individual, 0, cfg.Population)
		next = append(next, best) // elitism
		for len(next) < cfg.Population {
			a := tournament(pop, cfg.Tournament, rng)
			b := tournament(pop, cfg.Tournament, rng)
			child := crossover(a, b, rng)
			mutate(child, cfg.Mutation, rng)
			next = append(next, child)
		}
		evaluate(next[1:]) // the elite keeps its cost
		pop = next
		best = fittest(pop)
		res.History = append(res.History, best.cost)
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(gen+1, best.cost)
		}
	}
	res.Schema = decode(best)
	return res, nil
}

func fittest(pop []*individual) *individual {
	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.cost < best.cost {
			best = ind
		}
	}
	return best
}

func tournament(pop []*individual, k int, r *stats.RNG) *individual {
	best := pop[r.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[r.Intn(len(pop))]
		if c.cost < best.cost {
			best = c
		}
	}
	return best
}

// crossover combines two parents: order crossover (OX) on the permutation,
// uniform crossover on the mask.
func crossover(a, b *individual, r *stats.RNG) *individual {
	n := len(a.perm)
	child := &individual{perm: make([]int32, n), mask: make([]bool, n)}
	// OX: copy a random slice from parent a, fill the rest in b's order.
	lo := r.Intn(n)
	hi := lo + r.Intn(n-lo)
	taken := make(map[int32]bool, hi-lo+1)
	for i := lo; i <= hi; i++ {
		child.perm[i] = a.perm[i]
		taken[a.perm[i]] = true
	}
	pos := 0
	for _, g := range b.perm {
		if taken[g] {
			continue
		}
		for pos >= lo && pos <= hi {
			pos++
		}
		if pos >= n {
			break
		}
		child.perm[pos] = g
		pos++
	}
	for i := range child.mask {
		if r.Bool(0.5) {
			child.mask[i] = a.mask[i]
		} else {
			child.mask[i] = b.mask[i]
		}
	}
	return child
}

// mutate applies swap mutations on the permutation and bit flips on the
// mask, each gene with probability rate.
func mutate(ind *individual, rate float64, r *stats.RNG) {
	n := len(ind.perm)
	for i := 0; i < n; i++ {
		if r.Bool(rate) {
			j := r.Intn(n)
			ind.perm[i], ind.perm[j] = ind.perm[j], ind.perm[i]
		}
		if r.Bool(rate) {
			ind.mask[i] = !ind.mask[i]
		}
	}
}
