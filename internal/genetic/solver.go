package genetic

import (
	"context"
	"fmt"

	"repro/internal/replication"
	"repro/internal/solver"
)

// gaSolver adapts GRA to the solver registry.
type gaSolver struct{}

func init() { solver.Register(gaSolver{}) }

func (gaSolver) Name() string  { return "gra" }
func (gaSolver) Label() string { return "GRA" }
func (gaSolver) Description() string {
	return "genetic replication algorithm of [21]: GA over placements, exact-OTC fitness"
}

func (gaSolver) Solve(ctx context.Context, p *replication.Problem, opts solver.Options) (*solver.Outcome, error) {
	if opts.Engine != "" {
		return nil, fmt.Errorf("genetic: unknown engine %q (gra has a single engine)", opts.Engine)
	}
	cfg := Config{
		Workers:     opts.Workers,
		Seed:        opts.Seed,
		Generations: opts.GRAGenerations,
	}
	out := &solver.Outcome{}
	if opts.OnEvent != nil || opts.RecordEvents {
		// GRA evolves whole placements rather than committing replicas one
		// by one, so its event stream is per generation: Round is the
		// generation, Value the generation's best OTC, Object/Server -1.
		cfg.OnGeneration = func(gen int, bestCost int64) {
			out.Emit(opts, solver.Event{Round: gen, Object: -1, Server: -1, Value: bestCost})
		}
	}
	res, err := Solve(ctx, p, cfg)
	if err != nil {
		return nil, err
	}
	out.Schema = res.Schema
	out.Replicas = res.Schema.Placed()
	out.Work = res.Evaluations
	out.Rounds = len(res.History)
	return out, nil
}
