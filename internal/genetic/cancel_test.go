package genetic

import (
	"context"
	"errors"
	"testing"

	"repro/internal/testutil"
)

func TestSolveCancelled(t *testing.T) {
	testutil.LeakCheck(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, testutil.MustBuild(testutil.Small(41)), Config{Seed: 41}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveCancelMidRun(t *testing.T) {
	testutil.LeakCheck(t)
	// Survive the entry check and one generation boundary, then die.
	ctx := testutil.CancelAfterPolls(2)
	_, err := Solve(ctx, testutil.MustBuild(testutil.Small(42)), Config{Seed: 42, Generations: 50})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
