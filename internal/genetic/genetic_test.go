package genetic

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/agtram"
	"repro/internal/testutil"
)

func TestSolveRuns(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(1))
	res, err := Solve(context.Background(), p, Config{Generations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema == nil {
		t.Fatal("nil schema")
	}
	if res.Evaluations <= 0 {
		t.Fatal("no evaluations counted")
	}
	if len(res.History) != 10 {
		t.Fatalf("history length %d, want 10", len(res.History))
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(context.Background(), nil, Config{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := testutil.MustBuild(testutil.Small(2))
	if _, err := Solve(context.Background(), p, Config{Population: 3}); err == nil {
		t.Fatal("odd tiny population accepted")
	}
	if _, err := Solve(context.Background(), p, Config{Mutation: 1.5}); err == nil {
		t.Fatal("mutation > 1 accepted")
	}
}

func TestElitismMonotone(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(3))
	res, err := Solve(context.Background(), p, Config{Generations: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("best cost regressed at generation %d: %d -> %d",
				i, res.History[i-1], res.History[i])
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := Config{Generations: 8, Seed: 4, Workers: 4}
	a, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema.TotalCost() != b.Schema.TotalCost() {
		t.Fatalf("non-deterministic: %d vs %d", a.Schema.TotalCost(), b.Schema.TotalCost())
	}
}

func TestMoreGenerationsHelp(t *testing.T) {
	short, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(5)), Config{Generations: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Solve(context.Background(), testutil.MustBuild(testutil.Small(5)), Config{Generations: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if long.Schema.TotalCost() > short.Schema.TotalCost() {
		t.Fatalf("40 generations (%d) worse than 2 (%d)",
			long.Schema.TotalCost(), short.Schema.TotalCost())
	}
}

// The paper's headline comparison: with practical budgets, GRA trails the
// constructive mechanism in solution quality.
func TestGRATrailsAGTRAM(t *testing.T) {
	cfg := testutil.Medium(6)
	gres, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{Generations: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ares, err := agtram.Solve(context.Background(), testutil.MustBuild(cfg), agtram.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if gres.Schema.Savings() >= ares.Schema.Savings() {
		t.Fatalf("GRA (%v%%) should trail AGT-RAM (%v%%) on this budget",
			gres.Schema.Savings(), ares.Schema.Savings())
	}
}

// Property: decoded schemas always satisfy the DRP constraints.
func TestDecodedAlwaysFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := testutil.InstanceConfig{
			Servers: 8, Objects: 20, Requests: 1500, RWRatio: 0.8,
			CapacityPercent: 30, EdgeP: 0.4, Seed: seed,
		}
		p, err := testutil.Build(cfg)
		if err != nil {
			return false
		}
		res, err := Solve(context.Background(), p, Config{Generations: 4, Population: 8, Seed: seed})
		if err != nil {
			return false
		}
		return res.Schema.ValidateInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
