// Package stats provides the statistical substrate shared by every other
// package in the repository: deterministic seedable random sources, the
// heavy-tailed samplers (Zipf, lognormal, Pareto) that drive the synthetic
// World Cup 1998 workload, and summary statistics used by the experiment
// harness.
//
// Everything here is deterministic given a seed, so every experiment in the
// paper reproduction is replayable bit-for-bit.
package stats

import (
	"math/rand"
)

// RNG wraps math/rand.Rand with deterministic splitting so that independent
// subsystems (topology, trace, workload, solvers) can draw from independent
// streams derived from one experiment seed without coupling their consumption
// order.
type RNG struct {
	*rand.Rand
	seed int64
}

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed reports the seed the RNG was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Split derives an independent child stream. The child seed mixes the parent
// seed with the label using a SplitMix64-style finalizer so that nearby
// labels produce uncorrelated streams.
func (r *RNG) Split(label int64) *RNG {
	return NewRNG(Mix64(r.seed, label))
}

// Mix64 mixes two 64-bit values into a well-distributed 64-bit value using
// the SplitMix64 finalizer. It is the basis of deterministic stream
// splitting.
func Mix64(a, b int64) int64 {
	z := uint64(a) + 0x9e3779b97f4a7c15*(uint64(b)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// IntnInclusive returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntnInclusive(lo, hi int) int {
	if hi < lo {
		panic("stats: IntnInclusive called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Int64Range returns a uniform int64 in [lo, hi]. It panics if hi < lo.
func (r *RNG) Int64Range(lo, hi int64) int64 {
	if hi < lo {
		panic("stats: Int64Range called with hi < lo")
	}
	return lo + r.Int63n(hi-lo+1)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm32 returns a random permutation of [0, n) as int32 values.
func (r *RNG) Perm32(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
