package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^s. It is a
// thin deterministic wrapper over math/rand.Zipf that reports its own
// parameters, used to model the heavily skewed object popularity observed in
// the World Cup 1998 access logs.
type Zipf struct {
	z   *rand.Zipf
	n   uint64
	s   float64
	cdf []float64 // inverse-CDF table, used only when s <= 1
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s > 1e-9.
// Exponents at or below zero are rejected.
func NewZipf(r *RNG, s float64, n uint64) (*Zipf, error) {
	if n == 0 {
		return nil, fmt.Errorf("stats: Zipf needs n > 0, got 0")
	}
	if s <= 0 {
		return nil, fmt.Errorf("stats: Zipf needs exponent > 0, got %v", s)
	}
	// math/rand.Zipf requires s > 1; for s <= 1 fall back to CDF inversion.
	if s > 1 {
		return &Zipf{z: rand.NewZipf(r.Rand, s, 1, n-1), n: n, s: s}, nil
	}
	return &Zipf{n: n, s: s, z: nil}, nil
}

// Sample draws one rank in [0, n). For s <= 1 it uses inverse-CDF sampling
// over the generalized harmonic weights (lazily built on first use).
func (z *Zipf) Sample(r *RNG) uint64 {
	if z.z != nil {
		return z.z.Uint64()
	}
	// Inverse CDF over weights 1/(k+1)^s. The table is rebuilt per sampler,
	// not per draw.
	if z.cdf == nil {
		z.cdf = make([]float64, z.n)
		sum := 0.0
		for k := uint64(0); k < z.n; k++ {
			sum += 1 / math.Pow(float64(k+1), z.s)
			z.cdf[k] = sum
		}
		for k := range z.cdf {
			z.cdf[k] /= sum
		}
	}
	u := r.Float64()
	lo, hi := 0, int(z.n)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}

// N reports the support size.
func (z *Zipf) N() uint64 { return z.n }

// S reports the exponent.
func (z *Zipf) S() float64 { return z.s }

// Lognormal samples a lognormal distribution with the given location mu and
// scale sigma of the underlying normal. Object sizes in web traces are well
// modelled as lognormal; the paper keeps both the mean and the variance of
// object sizes from the logs.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// Sample draws one lognormal value.
func (l Lognormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// LognormalFromMeanStd builds a Lognormal whose resulting distribution has
// the given mean and standard deviation (both must be positive).
func LognormalFromMeanStd(mean, std float64) (Lognormal, error) {
	if mean <= 0 || std < 0 {
		return Lognormal{}, fmt.Errorf("stats: lognormal needs mean > 0 and std >= 0, got mean=%v std=%v", mean, std)
	}
	if std == 0 {
		return Lognormal{Mu: math.Log(mean), Sigma: 0}, nil
	}
	v := std * std
	m2 := mean * mean
	sigma2 := math.Log(1 + v/m2)
	return Lognormal{
		Mu:    math.Log(mean) - sigma2/2,
		Sigma: math.Sqrt(sigma2),
	}, nil
}

// Mean reports the distribution mean exp(mu + sigma^2/2).
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Pareto samples a bounded Pareto distribution on [Lo, Hi] with shape Alpha.
// It is used for heavy-tailed request counts per client.
type Pareto struct {
	Alpha  float64
	Lo, Hi float64
}

// Sample draws one bounded Pareto value via inverse CDF.
func (p Pareto) Sample(r *RNG) float64 {
	if p.Lo <= 0 || p.Hi <= p.Lo {
		panic(fmt.Sprintf("stats: bounded Pareto needs 0 < Lo < Hi, got [%v,%v]", p.Lo, p.Hi))
	}
	u := r.Float64()
	la := math.Pow(p.Lo, p.Alpha)
	ha := math.Pow(p.Hi, p.Alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
}
