package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Std      float64
	Min, Max float64
	Median   float64
	P90, P99 float64
}

// Summarize computes descriptive statistics over xs. An empty sample yields
// the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Mean = Mean(xs)
	s.Std = Std(xs)
	s.Median = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P90, s.P99, s.Max)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than 2 points).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (0..100) of an already sorted
// sample using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GiniCoefficient measures the inequality of a non-negative sample in
// [0, 1): 0 is perfectly even, values near 1 are extremely skewed. Used to
// validate that the synthetic workload is as skewed as the paper's logs.
func GiniCoefficient(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	n := float64(len(sorted))
	return (2*cum)/(n*total) - (n+1)/n
}
