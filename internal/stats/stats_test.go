package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("RNGs with same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeed(t *testing.T) {
	if got := NewRNG(7).Seed(); got != 7 {
		t.Fatalf("Seed() = %d, want 7", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(1)
	a := r.Split(1)
	b := r.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/64 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	x := NewRNG(99).Split(5).Int63()
	y := NewRNG(99).Split(5).Int63()
	if x != y {
		t.Fatalf("Split not deterministic: %d vs %d", x, y)
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[int64]bool)
	for a := int64(0); a < 50; a++ {
		for b := int64(0); b < 50; b++ {
			v := Mix64(a, b)
			if seen[v] {
				t.Fatalf("Mix64 collision at (%d,%d)", a, b)
			}
			seen[v] = true
		}
	}
}

func TestIntnInclusiveBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.IntnInclusive(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntnInclusive(5,9) = %d out of range", v)
		}
	}
	// Degenerate single-value range.
	if v := r.IntnInclusive(4, 4); v != 4 {
		t.Fatalf("IntnInclusive(4,4) = %d, want 4", v)
	}
}

func TestIntnInclusivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	NewRNG(1).IntnInclusive(5, 4)
}

func TestInt64RangeBounds(t *testing.T) {
	r := NewRNG(4)
	lo, hi := int64(100), int64(200)
	hitLo, hitHi := false, false
	for i := 0; i < 20000; i++ {
		v := r.Int64Range(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Int64Range out of range: %d", v)
		}
		hitLo = hitLo || v == lo
		hitHi = hitHi || v == hi
	}
	if !hitLo || !hitHi {
		t.Fatalf("Int64Range never hit an endpoint: lo=%v hi=%v", hitLo, hitHi)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(5)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v too far from 0.3", frac)
	}
}

func TestPerm32IsPermutation(t *testing.T) {
	r := NewRNG(6)
	p := r.Perm32(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm32 not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(7)
	z, err := NewZipf(r, 1.2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("Zipf counts not decreasing across ranks: c0=%d c10=%d c100=%d",
			counts[0], counts[10], counts[100])
	}
	// Top rank should dominate with s=1.2.
	if counts[0] < 10000 {
		t.Fatalf("Zipf rank-0 count %d suspiciously low", counts[0])
	}
}

func TestZipfLowExponentFallback(t *testing.T) {
	r := NewRNG(8)
	z, err := NewZipf(r, 0.8, 500)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 500)
	for i := 0; i < 50000; i++ {
		v := z.Sample(r)
		if v >= 500 {
			t.Fatalf("sample %d out of support", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[250] {
		t.Fatalf("Zipf(0.8) not skewed: c0=%d c250=%d", counts[0], counts[250])
	}
	if z.N() != 500 || z.S() != 0.8 {
		t.Fatalf("accessors wrong: N=%d S=%v", z.N(), z.S())
	}
}

func TestZipfErrors(t *testing.T) {
	r := NewRNG(9)
	if _, err := NewZipf(r, 1.1, 0); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := NewZipf(r, 0, 10); err == nil {
		t.Fatal("expected error for s=0")
	}
	if _, err := NewZipf(r, -1, 10); err == nil {
		t.Fatal("expected error for s<0")
	}
}

func TestLognormalFromMeanStd(t *testing.T) {
	ln, err := LognormalFromMeanStd(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ln.Mean()-100) > 1e-9 {
		t.Fatalf("analytic mean %v, want 100", ln.Mean())
	}
	r := NewRNG(10)
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = ln.Sample(r)
	}
	m := Mean(xs)
	if math.Abs(m-100) > 2 {
		t.Fatalf("empirical mean %v too far from 100", m)
	}
	s := Std(xs)
	if math.Abs(s-50) > 3 {
		t.Fatalf("empirical std %v too far from 50", s)
	}
}

func TestLognormalZeroStd(t *testing.T) {
	ln, err := LognormalFromMeanStd(42, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(11)
	for i := 0; i < 10; i++ {
		if v := ln.Sample(r); math.Abs(v-42) > 1e-9 {
			t.Fatalf("zero-std lognormal returned %v, want 42", v)
		}
	}
}

func TestLognormalErrors(t *testing.T) {
	if _, err := LognormalFromMeanStd(0, 1); err == nil {
		t.Fatal("expected error for mean=0")
	}
	if _, err := LognormalFromMeanStd(10, -1); err == nil {
		t.Fatal("expected error for std<0")
	}
}

func TestParetoBounds(t *testing.T) {
	p := Pareto{Alpha: 1.5, Lo: 1, Hi: 1000}
	r := NewRNG(12)
	for i := 0; i < 10000; i++ {
		v := p.Sample(r)
		if v < 1 || v > 1000 {
			t.Fatalf("bounded Pareto sample %v escaped [1,1000]", v)
		}
	}
}

func TestParetoPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Hi <= Lo")
		}
	}()
	Pareto{Alpha: 1, Lo: 5, Hi: 5}.Sample(NewRNG(1))
}

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := Std(xs); s != 2 {
		t.Fatalf("Std = %v, want 2", s)
	}
}

func TestMeanVarianceEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty-sample statistics should be zero")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single-point variance should be zero")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {150, 5}}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String() empty")
	}
	zero := Summarize(nil)
	if zero.N != 0 {
		t.Fatalf("empty summary N = %d", zero.N)
	}
}

func TestGiniCoefficient(t *testing.T) {
	even := []float64{5, 5, 5, 5}
	if g := GiniCoefficient(even); math.Abs(g) > 1e-9 {
		t.Fatalf("even sample Gini = %v, want 0", g)
	}
	skewed := []float64{0, 0, 0, 100}
	if g := GiniCoefficient(skewed); g < 0.7 {
		t.Fatalf("skewed sample Gini = %v, want > 0.7", g)
	}
	if GiniCoefficient(nil) != 0 {
		t.Fatal("empty Gini should be 0")
	}
	if GiniCoefficient([]float64{0, 0}) != 0 {
		t.Fatal("all-zero Gini should be 0")
	}
}

// Property: Gini is always in [0, 1) for non-negative samples.
func TestGiniRangeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		g := GiniCoefficient(xs)
		return g >= -1e-9 && g < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs) // sorts internally; use sorted copy here
		_ = s
		sorted := append([]float64(nil), xs...)
		sortFloats(sorted)
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(sorted, pa) <= Percentile(sorted, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
