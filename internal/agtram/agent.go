// Package agtram implements the paper's contribution: the Axiomatic Game
// Theoretical Replica Allocation Mechanism (AGT-RAM) of Section 4 and
// Figure 2.
//
// Each server is a selfish agent holding private valuations — the cost of
// replication CoR_ik of every object it could host. In every round all
// agents, in parallel, compute their dominant (best) valuation and report
// only that single number to the central mechanism; the mechanism picks the
// globally best report, replicates that object on that server, pays the
// winner the second-best report, and broadcasts the placement so every
// agent can update its nearest-neighbor table. The loop ends when no agent
// has a beneficial feasible replica left.
//
// Four engines share the same agent logic and produce identical
// allocations and payments:
//
//   - Solve: synchronous rounds with the per-agent scans fanned out over a
//     worker pool (the PARFOR loops of Figure 2, reproduced literally);
//   - SolveIncremental: the event-driven default — cached dominant bids in
//     lazy max-heaps, re-pricing only the agents a broadcast can actually
//     have changed (see incremental.go);
//   - SolveDistributed: one goroutine per agent exchanging messages with a
//     mechanism goroutine over channels — agents keep purely local state;
//   - SolveNetwork: the same protocol serialized with encoding/gob over
//     net.Pipe connections, demonstrating the semi-distributed deployment.
package agtram

import (
	"sort"

	"repro/internal/replication"
)

// candidate is one entry of an agent's list L_i: an object the agent might
// replicate, with the locally cached state needed to price it in O(1).
type candidate struct {
	object int32
	size   int64
	reads  int64
	nnCost int32 // agent-local copy of c(i, NN_ik); only ever decreases
	// updCost is the constant update-traffic term of CoR:
	// (Σ_{x≠i} w_xk) · o_k · c(P_k, i).
	updCost int64
}

// benefit is the agent's private valuation CoR_ik (Eq. 5's essence).
func (c *candidate) benefit() int64 {
	return c.reads*c.size*int64(c.nnCost) - c.updCost
}

// agentState is the purely local state of one agent. It never reads the
// shared schema after construction: placements reach it only through
// observe, exactly as broadcasts reach a remote server.
type agentState struct {
	id       int
	residual int64
	cands    []candidate // sorted by object id
}

// newAgentState builds agent i's candidate list L_i from the public problem
// data and the agent's private demand: every object the agent reads, except
// those whose primary already sits on the agent's server, priced against
// the initial (primary-only) placement.
func newAgentState(p *replication.Problem, i int) *agentState {
	a := &agentState{id: i, residual: p.Capacity[i] - p.PrimaryLoad(i)}
	w := p.Work
	for _, d := range w.PerServer[i] {
		if d.Reads == 0 {
			continue // a write-only object can never benefit from a local copy
		}
		k := d.Object
		if int(w.Primary[k]) == i {
			continue // the primary copy is already local
		}
		pk := int(w.Primary[k])
		c := candidate{
			object:  k,
			size:    w.ObjectSize[k],
			reads:   d.Reads,
			nnCost:  p.Cost.At(i, pk),
			updCost: (w.TotalWrites[k] - d.Writes) * w.ObjectSize[k] * int64(p.Cost.At(pk, i)),
		}
		if c.benefit() > 0 && c.size <= a.residual {
			a.cands = append(a.cands, c)
		}
	}
	sort.Slice(a.cands, func(x, y int) bool { return a.cands[x].object < a.cands[y].object })
	return a
}

// newAgentStateFrom builds agent i's candidate list priced against an
// existing placement instead of the primary-only start: nearest-neighbor
// costs come from the base schema's NN tables, residual capacity from its
// accounting, and objects the agent already replicates are excluded. With a
// primary-only base it is equivalent to newAgentState. It reads the schema
// but never mutates it.
func newAgentStateFrom(s *replication.Schema, i int) *agentState {
	p := s.Problem()
	w := p.Work
	a := &agentState{id: i, residual: s.Residual(i)}
	for _, d := range w.PerServer[i] {
		if d.Reads == 0 {
			continue // a write-only object can never benefit from a local copy
		}
		k := d.Object
		if s.HasReplica(k, i) {
			continue // a copy (primary or carried replica) is already local
		}
		pk := int(w.Primary[k])
		c := candidate{
			object:  k,
			size:    w.ObjectSize[k],
			reads:   d.Reads,
			nnCost:  p.Cost.At(i, int(s.NN(i, k))),
			updCost: (w.TotalWrites[k] - d.Writes) * w.ObjectSize[k] * int64(p.Cost.At(pk, i)),
		}
		if c.benefit() > 0 && c.size <= a.residual {
			a.cands = append(a.cands, c)
		}
	}
	// PerServer demand is sorted by object, so cands already is.
	return a
}

// observe processes the broadcast "object k was replicated on server m":
// the agent refreshes its nearest-neighbor cost for k if the new replica is
// closer. cost is c(id, m), computed by the agent from public knowledge.
func (a *agentState) observe(k int32, cost int32) {
	idx := sort.Search(len(a.cands), func(j int) bool { return a.cands[j].object >= k })
	if idx < len(a.cands) && a.cands[idx].object == k && cost < a.cands[idx].nnCost {
		a.cands[idx].nnCost = cost
	}
}

// best returns the agent's dominant valuation: the candidate with the
// highest positive benefit that still fits in the residual capacity.
// Candidates that can never become attractive again — benefit is
// non-increasing (nnCost only drops) and residual capacity only shrinks —
// are pruned permanently, which is what drives termination.
func (a *agentState) best() (obj int32, value int64, ok bool) {
	out := a.cands[:0]
	var bestVal int64
	var bestObj int32
	found := false
	for _, c := range a.cands {
		if c.size > a.residual {
			continue // prune: residual only shrinks
		}
		b := c.benefit()
		if b <= 0 {
			continue // prune: benefit only shrinks
		}
		out = append(out, c)
		if !found || b > bestVal || (b == bestVal && c.object < bestObj) {
			bestVal, bestObj, found = b, c.object, true
		}
	}
	a.cands = out
	return bestObj, bestVal, found
}

// won records that the agent's bid for object k was accepted: the replica
// is now local, capacity shrinks, and the candidate leaves the list.
func (a *agentState) won(k int32) {
	idx := sort.Search(len(a.cands), func(j int) bool { return a.cands[j].object >= k })
	if idx < len(a.cands) && a.cands[idx].object == k {
		a.residual -= a.cands[idx].size
		a.cands = append(a.cands[:idx], a.cands[idx+1:]...)
	}
}

// active reports whether the agent still has candidates (the LS membership
// of Figure 2, line 18).
func (a *agentState) active() bool { return len(a.cands) > 0 }
