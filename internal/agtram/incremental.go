package agtram

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/candidates"
	"repro/internal/mechanism"
	"repro/internal/pool"
	"repro/internal/replication"
)

// SolveIncremental runs AGT-RAM event-driven: instead of re-scanning every
// agent's full candidate list each round (the PARFOR of Figure 2, which
// Solve reproduces literally), it caches each agent's dominant bid and,
// after each broadcast OMAX, re-prices only the agents whose valuations can
// actually have changed — the round's winner, and demanders of the placed
// object whose nearest-neighbor cost dropped. Everyone else's cached bid is
// still exact, because a broadcast for object k can only lower benefits of
// candidates for k.
//
// Exactness rests on monotonicity: a candidate's benefit is non-increasing
// over a run (nnCost only falls, residual capacity only shrinks), so every
// cached value is an upper bound on the current one. The kernel (kernel.go)
// exploits that with lazy max-heaps over flat arenas — per agent over its
// candidates, per shard of agents over their cached dominant bids — and
// settles each round's (winner, second-best) with a sharded refresh plus a
// deterministic tournament reduction. The data layout is struct-of-arrays
// end to end, allocated once up front, so steady-state rounds allocate
// nothing and the re-pricing fans out across cfg.Workers with no
// synchronization beyond the phase barriers.
//
// The allocations, round count, and payments are bit-identical to Solve's
// for every worker count; only Result.Valuations differs in magnitude (see
// its doc comment), which is the point: the engine performs strictly fewer
// valuation computations.
//
// The ExactDelta valuation is rejected: it needs the shared schema and is
// served by Solve (the ablation path).
//
// ctx is checked at the top of every round, same contract as Solve.
func SolveIncremental(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("agtram: nil problem")
	}
	if cfg.Valuation == ExactDelta {
		return nil, fmt.Errorf("agtram: exact-delta valuation re-prices against global state every round; use Solve")
	}
	return solveIncrementalOn(ctx, p.NewSchema(), false, cfg)
}

// SolveIncrementalFrom is the warm re-solve entry point: it continues the
// mechanism from an existing placement instead of the primary-only start.
// Agents price their candidates against base's NN tables and residual
// capacities and the auction then only adds replicas that are still
// beneficial — the online controller's low-churn alternative to solving the
// drifted problem from scratch. base is cloned; neither it nor its problem
// is mutated. Exactness is unchanged: benefits are non-increasing from any
// start state, so the lazy-heap argument of SolveIncremental holds verbatim.
//
// With a primary-only base the result is bit-identical to SolveIncremental.
func SolveIncrementalFrom(ctx context.Context, base *replication.Schema, cfg Config) (*Result, error) {
	if base == nil {
		return nil, fmt.Errorf("agtram: nil base schema")
	}
	if cfg.Valuation == ExactDelta {
		return nil, fmt.Errorf("agtram: exact-delta valuation re-prices against global state every round; use Solve")
	}
	return solveIncrementalOn(ctx, base.Clone(), base.Placed() > 0, cfg)
}

// solveIncrementalOn owns schema and runs the event-driven mechanism on it:
// arena construction (fanned out — servers are independent), then the round
// loop over the kernel. The kernel never reads the schema; placements reach
// it only through its own award/broadcast path, exactly as broadcasts reach
// a remote server, and the schema stays the outcome bookkeeper.
func solveIncrementalOn(ctx context.Context, schema *replication.Schema, warm bool, cfg Config) (*Result, error) {
	p := schema.Problem()
	res := &Result{Schema: schema, Payments: make([]int64, p.M)}
	// Rounds typically run to a few replicas per server; presizing keeps the
	// trace append out of the allocator for most solves.
	res.Allocations = make([]Allocation, 0, 4*p.M)

	workers := cfg.workers()
	pl := pool.New(workers)
	defer pl.Close()
	var ar *candidates.Arena
	if warm {
		ar = candidates.BuildArenaFrom(schema, pl)
	} else {
		ar = candidates.BuildArena(p, pl)
	}

	// The shard count — and with it the exact refresh schedule and the
	// Valuations count — is fixed by cfg.Workers alone; whether shards
	// actually run on the pool additionally requires a multi-core runtime,
	// and never affects any result field.
	k := newKernel(p, ar, pl, workers, cfg.Payment, runtime.GOMAXPROCS(0) > 1)
	res.Valuations += k.seedValuations()

	for cfg.MaxRounds <= 0 || res.Rounds < cfg.MaxRounds {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("agtram: %w", err)
		}
		winner, value, second, ok := k.settle(&res.Valuations)
		if !ok {
			break
		}
		payment := second
		if cfg.Payment == mechanism.FirstPrice {
			payment = value
		}
		obj := k.bidObj[winner]
		if _, err := schema.PlaceReplica(obj, int(winner)); err != nil {
			return nil, fmt.Errorf("agtram: winning bid infeasible: %w", err)
		}
		alloc := Allocation{
			Round: res.Rounds, Object: obj, Server: winner,
			Value: value, Payment: payment,
		}
		res.Allocations = append(res.Allocations, alloc)
		res.Payments[winner] += payment
		res.Rounds++
		if cfg.OnRound != nil {
			cfg.OnRound(alloc)
		}
		k.award(winner)
		k.broadcast(obj, winner)
	}
	return res, nil
}
