package agtram

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/mechanism"
	"repro/internal/pool"
	"repro/internal/replication"
)

// SolveIncremental runs AGT-RAM event-driven: instead of re-scanning every
// agent's full candidate list each round (the PARFOR of Figure 2, which
// Solve reproduces literally), it caches each agent's dominant bid and,
// after each broadcast OMAX, re-prices only the agents whose valuations can
// actually have changed — the round's winner, and demanders of the placed
// object whose nearest-neighbor cost dropped. Everyone else's cached bid is
// still exact, because a broadcast for object k can only lower benefits of
// candidates for k.
//
// Exactness rests on monotonicity: a candidate's benefit is non-increasing
// over a run (nnCost only falls, residual capacity only shrinks), so every
// cached value is an upper bound on the current one. Two lazy max-heaps
// exploit that:
//
//   - per agent, a heap over its candidates keyed by the last benefit
//     computed, so finding the agent's dominant bid re-prices only the
//     candidates that float to the top instead of the whole list;
//   - globally, a heap over the agents' cached dominant bids, from which
//     the mechanism settles both the winner and — critical for the Vickrey
//     payment — the second-best report, refreshing stale entries until the
//     top (and, under second-price, the runner-up) are provably current.
//
// The allocations, round count, and payments are bit-identical to Solve's;
// only Result.Valuations differs in magnitude (see its doc comment), which
// is the point: the engine performs strictly fewer valuation computations.
//
// The ExactDelta valuation is rejected: it needs the shared schema and is
// served by Solve (the ablation path).
//
// ctx is checked at the top of every round, same contract as Solve.
func SolveIncremental(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("agtram: nil problem")
	}
	if cfg.Valuation == ExactDelta {
		return nil, fmt.Errorf("agtram: exact-delta valuation re-prices against global state every round; use Solve")
	}
	return solveIncrementalOn(ctx, p.NewSchema(), false, cfg)
}

// SolveIncrementalFrom is the warm re-solve entry point: it continues the
// mechanism from an existing placement instead of the primary-only start.
// Agents price their candidates against base's NN tables and residual
// capacities and the auction then only adds replicas that are still
// beneficial — the online controller's low-churn alternative to solving the
// drifted problem from scratch. base is cloned; neither it nor its problem
// is mutated. Exactness is unchanged: benefits are non-increasing from any
// start state, so the lazy-heap argument of SolveIncremental holds verbatim.
//
// With a primary-only base the result is bit-identical to SolveIncremental.
func SolveIncrementalFrom(ctx context.Context, base *replication.Schema, cfg Config) (*Result, error) {
	if base == nil {
		return nil, fmt.Errorf("agtram: nil base schema")
	}
	if cfg.Valuation == ExactDelta {
		return nil, fmt.Errorf("agtram: exact-delta valuation re-prices against global state every round; use Solve")
	}
	return solveIncrementalOn(ctx, base.Clone(), base.Placed() > 0, cfg)
}

// solveIncrementalOn owns schema and runs the event-driven mechanism on it.
// warm selects schema-aware agent construction; the cold path keeps the
// cheaper direct form (no NN lookups through the schema).
func solveIncrementalOn(ctx context.Context, schema *replication.Schema, warm bool, cfg Config) (*Result, error) {
	p := schema.Problem()
	res := &Result{Schema: schema, Payments: make([]int64, p.M)}

	// Agent construction is independent per agent; fan it out. Slots are
	// disjoint, so no synchronization beyond the batch barrier is needed.
	// Warm construction only reads the shared schema, never writes it.
	built := make([]*heapAgent, p.M)
	workers := pool.New(cfg.workers())
	workers.Batch(p.M, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var a *heapAgent
			if warm {
				a = newHeapAgentOn(newAgentStateFrom(schema, i))
			} else {
				a = newHeapAgent(p, i)
			}
			if a.Len() > 0 {
				built[i] = a
			}
		}
	})
	workers.Close()

	// Seed the global bid heap. Keys are exact right after construction, so
	// every agent's dominant bid is simply its heap top; count the pricing
	// of each candidate exactly as Solve's first-round scan does.
	bh := &bidHeap{entries: make([]*bidEntry, 0, p.M), byAgent: make([]*bidEntry, p.M)}
	for _, a := range built {
		if a == nil {
			continue
		}
		res.Valuations += int64(a.Len())
		e := &bidEntry{agent: a, obj: a.h[0].object, val: a.h[0].key, fresh: true}
		bh.entries = append(bh.entries, e)
		bh.byAgent[a.id] = e
	}
	heap.Init(bh)

	for cfg.MaxRounds <= 0 || res.Rounds < cfg.MaxRounds {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("agtram: %w", err)
		}
		winner, second, ok := bh.settle(cfg.Payment, &res.Valuations)
		if !ok {
			break
		}
		payment := second
		if cfg.Payment == mechanism.FirstPrice {
			payment = winner.val
		}
		if _, err := schema.PlaceReplica(winner.obj, winner.agent.id); err != nil {
			return nil, fmt.Errorf("agtram: winning bid infeasible: %w", err)
		}
		alloc := Allocation{
			Round: res.Rounds, Object: winner.obj, Server: int32(winner.agent.id),
			Value: winner.val, Payment: payment,
		}
		res.Allocations = append(res.Allocations, alloc)
		res.Payments[winner.agent.id] += payment
		res.Rounds++
		if cfg.OnRound != nil {
			cfg.OnRound(alloc)
		}

		// BROADCAST OMAX, event-driven: the winner consumed capacity and
		// retired the candidate, so its cached bid is stale; a demander's
		// cached bid goes stale only when the broadcast lowered the price of
		// the very object it was bidding on. All other cached bids remain
		// exact — their bid candidate's benefit did not move, and every
		// other candidate's benefit can only have fallen.
		winner.agent.won(winner.obj)
		winner.fresh = false
		for _, ref := range p.DemandersOf(winner.obj) {
			i := int(ref.Server)
			if i == winner.agent.id {
				continue
			}
			e := bh.byAgent[i]
			if e == nil {
				continue // agent already out of the game
			}
			if e.agent.observe(winner.obj, p.Cost.At(i, winner.agent.id)) && e.obj == winner.obj {
				e.fresh = false
			}
		}
	}
	return res, nil
}

// hcand is a candidate plus its cached priority: the benefit at the last
// pricing. The true benefit only shrinks, so key is always an upper bound.
type hcand struct {
	candidate
	key int64
}

// heapAgent is an agent whose candidate list is a lazy max-heap ordered by
// (cached benefit desc, object id asc) — the same dominance order as
// agentState.best, so the exact top carries the same tie-break.
type heapAgent struct {
	id       int
	residual int64
	h        []hcand
	pos      map[int32]int // object id -> index in h
}

// newHeapAgent builds the heap form of agent i's candidate list. Keys start
// exact: newAgentState prices every candidate against the primary-only
// placement, which is the state of round one.
func newHeapAgent(p *replication.Problem, i int) *heapAgent {
	return newHeapAgentOn(newAgentState(p, i))
}

// newHeapAgentOn lifts an already-priced agent state into heap form. Keys
// start exact because the state was priced against the solve's start
// placement, which is the state of round one (primary-only for the cold
// path, the carried placement for warm re-solves).
func newHeapAgentOn(base *agentState) *heapAgent {
	a := &heapAgent{
		id:       base.id,
		residual: base.residual,
		h:        make([]hcand, len(base.cands)),
		pos:      make(map[int32]int, len(base.cands)),
	}
	for j, c := range base.cands {
		a.h[j] = hcand{candidate: c, key: c.benefit()}
		a.pos[c.object] = j
	}
	heap.Init(a)
	return a
}

func (a *heapAgent) Len() int { return len(a.h) }
func (a *heapAgent) Less(i, j int) bool {
	if a.h[i].key != a.h[j].key {
		return a.h[i].key > a.h[j].key
	}
	return a.h[i].object < a.h[j].object
}
func (a *heapAgent) Swap(i, j int) {
	a.h[i], a.h[j] = a.h[j], a.h[i]
	a.pos[a.h[i].object] = i
	a.pos[a.h[j].object] = j
}
func (a *heapAgent) Push(x interface{}) {
	c := x.(hcand)
	a.pos[c.object] = len(a.h)
	a.h = append(a.h, c)
}
func (a *heapAgent) Pop() interface{} {
	n := len(a.h)
	c := a.h[n-1]
	a.h = a.h[:n-1]
	delete(a.pos, c.object)
	return c
}

// best returns the agent's exact dominant bid, re-pricing lazily: only
// candidates that reach the heap top are touched, and candidates pruned by
// capacity or non-positive benefit leave permanently (both conditions are
// monotone). evals counts the benefit computations performed.
func (a *heapAgent) best(evals *int64) (obj int32, value int64, ok bool) {
	for len(a.h) > 0 {
		top := &a.h[0]
		if top.size > a.residual {
			heap.Pop(a) // prune: residual only shrinks
			continue
		}
		b := top.benefit()
		*evals++
		if b <= 0 {
			heap.Pop(a) // prune: benefit only shrinks
			continue
		}
		if b < top.key {
			top.key = b
			heap.Fix(a, 0)
			continue
		}
		// key == b: the cached upper bound is tight, so this candidate
		// dominates every other cached (hence true) benefit.
		return top.object, b, true
	}
	return 0, 0, false
}

// observe processes a broadcast: if the new replica of k is closer than the
// agent's cached nearest neighbor, the candidate's nnCost drops (its heap
// key intentionally stays put as a stale upper bound). Reports whether the
// candidate's benefit actually changed.
func (a *heapAgent) observe(k int32, cost int32) bool {
	i, here := a.pos[k]
	if !here || cost >= a.h[i].nnCost {
		return false
	}
	a.h[i].nnCost = cost
	return true
}

// won retires the awarded candidate and consumes capacity.
func (a *heapAgent) won(k int32) {
	if i, here := a.pos[k]; here {
		a.residual -= a.h[i].size
		heap.Remove(a, i)
	}
}

// bidEntry is one agent's cached dominant bid in the global heap. fresh
// records whether (obj, val) is the agent's exact current best; a stale val
// is always an upper bound on it.
type bidEntry struct {
	agent *heapAgent
	obj   int32
	val   int64
	fresh bool
}

// bidHeap orders cached bids by (value desc, agent id asc) — exactly
// mechanism.RunRound's winner rule, so a fresh top is the exact winner.
type bidHeap struct {
	entries []*bidEntry
	byAgent []*bidEntry // agent id -> live entry, nil once retired
}

func (h *bidHeap) Len() int { return len(h.entries) }
func (h *bidHeap) Less(i, j int) bool {
	if h.entries[i].val != h.entries[j].val {
		return h.entries[i].val > h.entries[j].val
	}
	return h.entries[i].agent.id < h.entries[j].agent.id
}
func (h *bidHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *bidHeap) Push(x interface{}) {
	h.entries = append(h.entries, x.(*bidEntry))
}
func (h *bidHeap) Pop() interface{} {
	n := len(h.entries)
	e := h.entries[n-1]
	h.entries = h.entries[:n-1]
	return e
}

// refresh re-prices the agent at heap index i. Agents left without a
// beneficial feasible candidate leave the game (Figure 2, line 18).
func (h *bidHeap) refresh(i int, evals *int64) {
	e := h.entries[i]
	obj, val, ok := e.agent.best(evals)
	if !ok {
		heap.Remove(h, i)
		h.byAgent[e.agent.id] = nil
		return
	}
	e.obj, e.val, e.fresh = obj, val, true
	heap.Fix(h, i)
}

// settle drives the lazy heap to a provably exact round outcome: the winner
// (top of heap, once fresh) and, under second-price, the exact second-best
// report. The runner-up must be refreshed too — its cached value is an
// upper bound, and paying it unrefreshed would overstate the Vickrey
// payment. Refreshes only lower values, so a settled top stays on top
// unless a refreshed runner-up ties it with a lower agent id — in which
// case the heap reorders and the new top is the correct winner under
// RunRound's tie-break.
func (h *bidHeap) settle(rule mechanism.PaymentRule, evals *int64) (winner *bidEntry, second int64, ok bool) {
	for {
		if h.Len() == 0 {
			return nil, 0, false
		}
		top := h.entries[0]
		if !top.fresh {
			h.refresh(0, evals)
			continue
		}
		if rule == mechanism.FirstPrice {
			return top, 0, true // payment is the winner's own report
		}
		if h.Len() == 1 {
			return top, 0, true // a lone bidder is paid 0
		}
		// The second-best cached bid is the larger of the root's children.
		si := 1
		if h.Len() > 2 && h.Less(2, 1) {
			si = 2
		}
		runner := h.entries[si]
		if !runner.fresh {
			h.refresh(si, evals)
			continue
		}
		// Both fresh: every other entry's cached value (an upper bound on
		// its true value) is <= runner.val by the heap property.
		return top, runner.val, true
	}
}
