package agtram

import (
	"context"
	"fmt"

	"repro/internal/mechanism"
	"repro/internal/replication"
	"repro/internal/solver"
)

// Engine names accepted by the "agt-ram" solver's Options.Engine. The five
// engines run the identical mechanism — same allocations, same payments —
// over different execution substrates.
const (
	EngineIncremental = "incremental"
	EngineSync        = "sync"
	EngineDistributed = "distributed"
	EngineNetwork     = "network"
	EngineTCP         = "tcp"
)

// Engines lists the selectable engines in documentation order.
func Engines() []string {
	return []string{EngineIncremental, EngineSync, EngineDistributed, EngineNetwork, EngineTCP}
}

// agtSolver adapts the five AGT-RAM engines to the solver registry; the
// facade's old engine sub-switch lives here now, as Options.Engine.
type agtSolver struct{}

func init() { solver.Register(agtSolver{}) }

func (agtSolver) Name() string  { return "agt-ram" }
func (agtSolver) Label() string { return "AGT-RAM" }
func (agtSolver) Description() string {
	return "the paper's mechanism: sealed-bid rounds, Vickrey payments, five interchangeable engines"
}

func (agtSolver) Solve(ctx context.Context, p *replication.Problem, opts solver.Options) (*solver.Outcome, error) {
	cfg := Config{Workers: opts.Workers}
	if opts.FirstPrice {
		cfg.Payment = mechanism.FirstPrice
	}
	if opts.ExactValuation {
		cfg.Valuation = ExactDelta
	}
	engine := opts.Engine
	if engine == "" {
		switch {
		case opts.TCPAddr != "":
			engine = EngineTCP
		case opts.Faults.Enabled() || opts.RoundTimeout > 0:
			// Fault injection and deadlines only make sense against a
			// wire; pick the in-process wire engine by default.
			engine = EngineNetwork
		case opts.ExactValuation:
			// The incremental engine's lazy heaps need the local CoR
			// valuation; the exact-delta ablation runs synchronous.
			engine = EngineSync
		default:
			engine = EngineIncremental
		}
	}
	if (opts.Faults.Enabled() || opts.RoundTimeout > 0) &&
		engine != EngineNetwork && engine != EngineTCP {
		return nil, fmt.Errorf("agtram: faults and round timeouts apply to the wire engines only (network|tcp), not %q", engine)
	}
	cfg.RoundTimeout = opts.RoundTimeout
	cfg.Faults = opts.Faults
	out := &solver.Outcome{}
	if opts.OnEvent != nil || opts.RecordEvents {
		cfg.OnRound = func(al Allocation) {
			out.Emit(opts, solver.Event{
				Round: al.Round + 1, Object: al.Object, Server: al.Server,
				Value: al.Value, Payment: al.Payment,
			})
		}
		cfg.OnEvict = func(ev Eviction) {
			out.Emit(opts, solver.Event{
				Round: ev.Round, Object: -1, Server: int32(ev.Agent), Evicted: true,
			})
		}
	}
	if opts.Warm != nil && engine != EngineIncremental {
		return nil, fmt.Errorf("agtram: warm re-solve is served by the incremental engine only, not %q", engine)
	}
	var (
		res *Result
		err error
	)
	switch engine {
	case EngineIncremental:
		if opts.Warm != nil {
			base, _ := p.CarryOver(opts.Warm)
			res, err = SolveIncrementalFrom(ctx, base, cfg)
		} else {
			res, err = SolveIncremental(ctx, p, cfg)
		}
	case EngineSync:
		res, err = Solve(ctx, p, cfg)
	case EngineDistributed:
		res, err = SolveDistributed(ctx, p, cfg)
	case EngineNetwork:
		res, err = SolveNetwork(ctx, p, cfg)
	case EngineTCP:
		addr := opts.TCPAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		res, err = SolveTCP(ctx, p, cfg, addr)
	default:
		return nil, fmt.Errorf("agtram: unknown engine %q (want incremental|sync|distributed|network|tcp)", engine)
	}
	if err != nil {
		return nil, err
	}
	out.Schema = res.Schema
	out.Replicas = len(res.Allocations)
	out.Work = res.Valuations
	out.Rounds = res.Rounds
	out.Payments = res.Payments
	for _, ev := range res.Evictions {
		out.Evictions = append(out.Evictions, solver.Eviction(ev))
	}
	return out, nil
}
