package agtram

import (
	"context"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/mechanism"
	"repro/internal/testutil"
)

func TestIncrementalNilProblem(t *testing.T) {
	if _, err := SolveIncremental(context.Background(), nil, Config{}); err == nil {
		t.Fatal("nil problem accepted")
	}
}

func TestIncrementalRejectsExactValuation(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(4))
	if _, err := SolveIncremental(context.Background(), p, Config{Valuation: ExactDelta}); err == nil {
		t.Fatal("exact valuation should be rejected by the incremental engine")
	}
}

func TestIncrementalMaxRounds(t *testing.T) {
	sync := mustSolve(t, testutil.MustBuild(testutil.Small(5)), Config{MaxRounds: 3})
	inc, err := SolveIncremental(context.Background(), testutil.MustBuild(testutil.Small(5)), Config{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Rounds > 3 {
		t.Fatalf("rounds = %d, want <= 3", inc.Rounds)
	}
	assertSameAllocations(t, sync, inc)
}

func TestIncrementalOnRound(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(16))
	var seen []Allocation
	res, err := SolveIncremental(context.Background(), p, Config{OnRound: func(a Allocation) { seen = append(seen, a) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Allocations) {
		t.Fatalf("observer saw %d rounds, result has %d", len(seen), len(res.Allocations))
	}
	for i := range seen {
		if seen[i] != res.Allocations[i] {
			t.Fatalf("round %d: observer %+v != result %+v", i, seen[i], res.Allocations[i])
		}
	}
}

func TestIncrementalFirstPriceAgrees(t *testing.T) {
	cfg := Config{Payment: mechanism.FirstPrice}
	sync := mustSolve(t, testutil.MustBuild(testutil.Small(9)), cfg)
	inc, err := SolveIncremental(context.Background(), testutil.MustBuild(testutil.Small(9)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAllocations(t, sync, inc)
	for _, a := range inc.Allocations {
		if a.Payment != a.Value {
			t.Fatalf("first-price payment %d != value %d", a.Payment, a.Value)
		}
	}
}

// TestIncrementalDoesLessWork is the algorithmic claim behind the engine:
// on a non-trivial instance it must re-price far fewer candidates than the
// per-round full rescan, while producing the identical outcome.
func TestIncrementalDoesLessWork(t *testing.T) {
	cfg := testutil.Medium(21)
	sync := mustSolve(t, testutil.MustBuild(cfg), Config{})
	inc, err := SolveIncremental(context.Background(), testutil.MustBuild(cfg), Config{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAllocations(t, sync, inc)
	if inc.Valuations >= sync.Valuations {
		t.Fatalf("incremental valuations %d not below synchronous %d", inc.Valuations, sync.Valuations)
	}
	t.Logf("valuations: sync=%d incremental=%d (%.1fx fewer)",
		sync.Valuations, inc.Valuations, float64(sync.Valuations)/float64(inc.Valuations))
}

// TestDifferentialEngines runs the synchronous, incremental, and
// message-passing engines over a batch of seeded random instances and
// requires identical allocation sequences (object, server, value, AND
// second-price payment per round), identical cumulative payments, and
// identical final OTC — plus schema invariants after every run.
func TestDifferentialEngines(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := testutil.InstanceConfig{
			Servers:         10 + int(seed%5)*4,
			Objects:         40 + int(seed%3)*30,
			Requests:        3000 + int(seed)*500,
			RWRatio:         0.75 + float64(seed%4)*0.05,
			CapacityPercent: 20 + float64(seed%3)*10,
			EdgeP:           0.35,
			Seed:            seed,
		}
		sync, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{})
		if err != nil {
			t.Fatalf("seed %d: sync: %v", seed, err)
		}
		inc, err := SolveIncremental(context.Background(), testutil.MustBuild(cfg), Config{})
		if err != nil {
			t.Fatalf("seed %d: incremental: %v", seed, err)
		}
		dist, err := SolveDistributed(context.Background(), testutil.MustBuild(cfg), Config{})
		if err != nil {
			t.Fatalf("seed %d: distributed: %v", seed, err)
		}
		// A zeroed fault config and a generous round deadline must take no
		// eviction path: the wire engines stay bit-identical to Solve.
		wireCfg := Config{RoundTimeout: 10 * time.Second, Faults: &faultnet.Config{}}
		netw, err := SolveNetwork(context.Background(), testutil.MustBuild(cfg), wireCfg)
		if err != nil {
			t.Fatalf("seed %d: network: %v", seed, err)
		}
		results := map[string]*Result{"sync": sync, "incremental": inc, "distributed": dist, "network": netw}
		if seed%5 == 0 {
			tcp, err := SolveTCP(context.Background(), testutil.MustBuild(cfg), wireCfg, "127.0.0.1:0")
			if err != nil {
				t.Fatalf("seed %d: tcp: %v", seed, err)
			}
			results["tcp"] = tcp
		}
		for name, res := range results {
			if err := res.Schema.ValidateInvariants(); err != nil {
				t.Fatalf("seed %d: %s invariants: %v", seed, name, err)
			}
			if len(res.Evictions) != 0 {
				t.Fatalf("seed %d: %s evicted agents on a fault-free run: %+v", seed, name, res.Evictions)
			}
			if name != "sync" {
				assertIdenticalRuns(t, seed, sync, res)
			}
		}
	}
}

func assertIdenticalRuns(t *testing.T, seed int64, a, b *Result) {
	t.Helper()
	if a.Rounds != b.Rounds || len(a.Allocations) != len(b.Allocations) {
		t.Fatalf("seed %d: rounds differ: %d/%d vs %d/%d",
			seed, a.Rounds, len(a.Allocations), b.Rounds, len(b.Allocations))
	}
	for i := range a.Allocations {
		if a.Allocations[i] != b.Allocations[i] {
			t.Fatalf("seed %d: allocation %d differs: %+v vs %+v",
				seed, i, a.Allocations[i], b.Allocations[i])
		}
	}
	if len(a.Payments) != len(b.Payments) {
		t.Fatalf("seed %d: payment vector lengths differ", seed)
	}
	for i := range a.Payments {
		if a.Payments[i] != b.Payments[i] {
			t.Fatalf("seed %d: server %d cumulative payment differs: %d vs %d",
				seed, i, a.Payments[i], b.Payments[i])
		}
	}
	if a.Schema.TotalCost() != b.Schema.TotalCost() {
		t.Fatalf("seed %d: final OTC differs: %d vs %d", seed, a.Schema.TotalCost(), b.Schema.TotalCost())
	}
}
