package agtram

import (
	"context"
	"net"
	"testing"
	"testing/quick"

	"repro/internal/mechanism"
	"repro/internal/replication"
	"repro/internal/testutil"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestSolveImproves(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(1))
	res, err := Solve(context.Background(), p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Savings() <= 0 {
		t.Fatalf("savings = %v, want > 0", res.Schema.Savings())
	}
	if res.Rounds != len(res.Allocations) {
		t.Fatalf("rounds %d != allocations %d", res.Rounds, len(res.Allocations))
	}
	if res.Valuations <= 0 {
		t.Fatal("no valuations counted")
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveNilProblem(t *testing.T) {
	if _, err := Solve(context.Background(), nil, Config{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	if _, err := SolveDistributed(context.Background(), nil, Config{}); err == nil {
		t.Fatal("nil problem accepted (distributed)")
	}
	if _, err := SolveNetwork(context.Background(), nil, Config{}); err == nil {
		t.Fatal("nil problem accepted (network)")
	}
}

func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	p1 := testutil.MustBuild(testutil.Small(2))
	p2 := testutil.MustBuild(testutil.Small(2))
	r1, err := Solve(context.Background(), p1, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Solve(context.Background(), p2, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAllocations(t, r1, r8)
}

func TestEnginesAgree(t *testing.T) {
	cfg := testutil.Small(3)
	sync := mustSolve(t, testutil.MustBuild(cfg), Config{})
	dist, err := SolveDistributed(context.Background(), testutil.MustBuild(cfg), Config{})
	if err != nil {
		t.Fatal(err)
	}
	netres, err := SolveNetwork(context.Background(), testutil.MustBuild(cfg), Config{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAllocations(t, sync, dist)
	assertSameAllocations(t, sync, netres)
}

func TestDistributedRejectsExactValuation(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(4))
	if _, err := SolveDistributed(context.Background(), p, Config{Valuation: ExactDelta}); err == nil {
		t.Fatal("exact valuation should be rejected by the distributed engine")
	}
	if _, err := SolveNetwork(context.Background(), p, Config{Valuation: ExactDelta}); err == nil {
		t.Fatal("exact valuation should be rejected by the network engine")
	}
}

func TestMaxRounds(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(5))
	res, err := Solve(context.Background(), p, Config{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 3 {
		t.Fatalf("rounds = %d, want <= 3", res.Rounds)
	}
	// Distributed engines honor the cap too.
	d, err := SolveDistributed(context.Background(), testutil.MustBuild(testutil.Small(5)), Config{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rounds > 3 {
		t.Fatalf("distributed rounds = %d", d.Rounds)
	}
	n, err := SolveNetwork(context.Background(), testutil.MustBuild(testutil.Small(5)), Config{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n.Rounds > 3 {
		t.Fatalf("network rounds = %d", n.Rounds)
	}
}

func TestPaymentsAreSecondPrice(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(6))
	res := mustSolve(t, p, Config{})
	for _, a := range res.Allocations {
		if a.Payment > a.Value {
			t.Fatalf("round %d: payment %d above winning value %d", a.Round, a.Payment, a.Value)
		}
	}
	var total int64
	for _, pay := range res.Payments {
		if pay < 0 {
			t.Fatal("negative cumulative payment")
		}
		total += pay
	}
	var fromAllocs int64
	for _, a := range res.Allocations {
		fromAllocs += a.Payment
	}
	if total != fromAllocs {
		t.Fatalf("payment accounting mismatch: %d vs %d", total, fromAllocs)
	}
}

func TestAllocationsRespectConstraints(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(7))
	res := mustSolve(t, p, Config{})
	seen := make(map[[2]int32]bool)
	for _, a := range res.Allocations {
		key := [2]int32{a.Object, a.Server}
		if seen[key] {
			t.Fatalf("object %d placed twice on server %d", a.Object, a.Server)
		}
		seen[key] = true
		if p.Work.Primary[a.Object] == a.Server {
			t.Fatalf("object %d re-placed on its primary", a.Object)
		}
		if a.Value <= 0 {
			t.Fatalf("non-positive winning valuation %d", a.Value)
		}
	}
	for i := 0; i < p.M; i++ {
		if res.Schema.Residual(i) < 0 {
			t.Fatalf("server %d over capacity", i)
		}
	}
}

func TestExactValuationAblation(t *testing.T) {
	pLocal := testutil.MustBuild(testutil.Small(8))
	pExact := testutil.MustBuild(testutil.Small(8))
	local := mustSolve(t, pLocal, Config{Valuation: LocalCoR})
	exact := mustSolve(t, pExact, Config{Valuation: ExactDelta})
	if err := exact.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
	// Both must improve; the exact valuation sees all read improvements so
	// it should do at least roughly as well.
	if local.Schema.Savings() <= 0 || exact.Schema.Savings() <= 0 {
		t.Fatalf("savings: local=%v exact=%v", local.Schema.Savings(), exact.Schema.Savings())
	}
	if exact.Schema.Savings() < local.Schema.Savings()-10 {
		t.Fatalf("exact valuation much worse than local: %v vs %v",
			exact.Schema.Savings(), local.Schema.Savings())
	}
}

func TestFirstPricePaymentRule(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(9))
	res := mustSolve(t, p, Config{Payment: mechanism.FirstPrice})
	for _, a := range res.Allocations {
		if a.Payment != a.Value {
			t.Fatalf("first-price payment %d != value %d", a.Payment, a.Value)
		}
	}
}

func TestValuationString(t *testing.T) {
	if LocalCoR.String() != "local-cor" || ExactDelta.String() != "exact-delta" {
		t.Fatal("valuation names wrong")
	}
}

// The worst case of Theorem 4: every agent can store everything. Rounds are
// bounded by the total number of (agent, object) candidates, and the run
// must terminate with every beneficial replica placed.
func TestTerminationWorstCase(t *testing.T) {
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: 10, Objects: 40, Requests: 5000, RWRatio: 0.9, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int64, 10)
	total := w.TotalPrimarySize()
	for i := range caps {
		caps[i] = total * 2 // room for every object on every server
	}
	dist := topology.AllPairs(topology.Ring(10), 1)
	p, err := replication.NewProblem(dist, w, caps)
	if err != nil {
		t.Fatal(err)
	}
	res := mustSolve(t, p, Config{})
	maxCands := 0
	for i := 0; i < p.M; i++ {
		maxCands += len(w.PerServer[i])
	}
	if res.Rounds > maxCands {
		t.Fatalf("rounds %d exceed candidate bound %d", res.Rounds, maxCands)
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Truthfulness at the system level (Theorem 5): an agent that over- or
// under-reports its best valuation never improves its round utility,
// holding the other agents fixed.
func TestSystemTruthfulnessProperty(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(11))
	// Reconstruct the first round's bids.
	var bids []mechanism.Bid
	for i := 0; i < p.M; i++ {
		a := newAgentState(p, i)
		if obj, v, ok := a.best(); ok {
			bids = append(bids, mechanism.Bid{Agent: i, Item: obj, Value: v})
		}
	}
	if len(bids) < 3 {
		t.Skip("instance too small for the scenario")
	}
	f := func(pick uint8, factorNum uint8) bool {
		idx := int(pick) % len(bids)
		agent := bids[idx]
		others := make([]mechanism.Bid, 0, len(bids)-1)
		for j, b := range bids {
			if j != idx {
				others = append(others, b)
			}
		}
		// Misreports from 0x to 3x the true value.
		mis := agent.Value * int64(factorNum%7) / 2
		return mechanism.TruthfulIsDominant(mechanism.SecondPrice, agent.Value, mis, others)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random instances, all three engines agree and never violate
// schema invariants.
func TestEnginesAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := testutil.InstanceConfig{
			Servers: 8, Objects: 25, Requests: 2000, RWRatio: 0.8,
			CapacityPercent: 35, EdgeP: 0.4, Seed: seed,
		}
		p1, err := testutil.Build(cfg)
		if err != nil {
			return false
		}
		p2, err := testutil.Build(cfg)
		if err != nil {
			return false
		}
		s, err := Solve(context.Background(), p1, Config{})
		if err != nil {
			return false
		}
		d, err := SolveDistributed(context.Background(), p2, Config{})
		if err != nil {
			return false
		}
		if len(s.Allocations) != len(d.Allocations) {
			return false
		}
		for i := range s.Allocations {
			if s.Allocations[i] != d.Allocations[i] {
				return false
			}
		}
		return s.Schema.ValidateInvariants() == nil && d.Schema.ValidateInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func mustSolve(t *testing.T, p *replication.Problem, cfg Config) *Result {
	t.Helper()
	res, err := Solve(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertSameAllocations(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Allocations) != len(b.Allocations) {
		t.Fatalf("allocation counts differ: %d vs %d", len(a.Allocations), len(b.Allocations))
	}
	for i := range a.Allocations {
		if a.Allocations[i] != b.Allocations[i] {
			t.Fatalf("allocation %d differs: %+v vs %+v", i, a.Allocations[i], b.Allocations[i])
		}
	}
	if a.Schema.TotalCost() != b.Schema.TotalCost() {
		t.Fatalf("final costs differ: %d vs %d", a.Schema.TotalCost(), b.Schema.TotalCost())
	}
}

func TestSolveTCPAgreesWithSync(t *testing.T) {
	cfg := testutil.Small(12)
	sync := mustSolve(t, testutil.MustBuild(cfg), Config{})
	tcp, err := SolveTCP(context.Background(), testutil.MustBuild(cfg), Config{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	assertSameAllocations(t, sync, tcp)
}

func TestSolveTCPErrors(t *testing.T) {
	if _, err := SolveTCP(context.Background(), nil, Config{}, "127.0.0.1:0"); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := testutil.MustBuild(testutil.Small(13))
	if _, err := SolveTCP(context.Background(), p, Config{Valuation: ExactDelta}, "127.0.0.1:0"); err == nil {
		t.Fatal("exact valuation accepted over TCP")
	}
	if _, err := SolveTCP(context.Background(), p, Config{}, "256.0.0.1:bad"); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestRunRemoteAgentBadID(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(14))
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if err := RunRemoteAgent(context.Background(), c1, p, -1); err == nil {
		t.Fatal("negative agent id accepted")
	}
	if err := RunRemoteAgent(context.Background(), c1, p, p.M); err == nil {
		t.Fatal("out-of-range agent id accepted")
	}
}

func TestSolveTCPMaxRounds(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(15))
	res, err := SolveTCP(context.Background(), p, Config{MaxRounds: 2}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 2 {
		t.Fatalf("rounds = %d, want <= 2", res.Rounds)
	}
}

func TestOnRoundObserver(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(16))
	var seen []Allocation
	res, err := Solve(context.Background(), p, Config{OnRound: func(a Allocation) { seen = append(seen, a) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Allocations) {
		t.Fatalf("observer saw %d rounds, result has %d", len(seen), len(res.Allocations))
	}
	for i := range seen {
		if seen[i] != res.Allocations[i] {
			t.Fatalf("round %d: observer %+v != result %+v", i, seen[i], res.Allocations[i])
		}
	}
}
