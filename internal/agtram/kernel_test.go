package agtram

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/candidates"
	"repro/internal/mechanism"
	"repro/internal/pool"
	"repro/internal/testutil"
)

// forceParallelKernel drops the dispatch thresholds to zero and raises
// GOMAXPROCS so the kernel's pool paths run even on small instances and
// single-core test machines. Restores everything on cleanup.
func forceParallelKernel(t *testing.T) {
	t.Helper()
	prevSettle, prevObserve := settleParallelThreshold, observeParallelThreshold
	prevProcs := runtime.GOMAXPROCS(4)
	settleParallelThreshold, observeParallelThreshold = 0, 0
	t.Cleanup(func() {
		settleParallelThreshold, observeParallelThreshold = prevSettle, prevObserve
		runtime.GOMAXPROCS(prevProcs)
	})
}

// TestDifferentialEnginesParallel is the parallel-kernel half of
// TestDifferentialEngines: for every seed and every worker count the
// incremental engine — with the pool paths forced on — must reproduce the
// synchronous engine's allocations, payments, round count, and final OTC
// bit for bit. Run under -race this doubles as the data-race proof of the
// sharded settle and the broadcast fan-out.
func TestDifferentialEnginesParallel(t *testing.T) {
	forceParallelKernel(t)
	for seed := int64(0); seed < 20; seed++ {
		cfg := testutil.InstanceConfig{
			Servers:         10 + int(seed%5)*4,
			Objects:         40 + int(seed%3)*30,
			Requests:        3000 + int(seed)*500,
			RWRatio:         0.75 + float64(seed%4)*0.05,
			CapacityPercent: 20 + float64(seed%3)*10,
			EdgeP:           0.35,
			Seed:            seed,
		}
		sync, err := Solve(context.Background(), testutil.MustBuild(cfg), Config{})
		if err != nil {
			t.Fatalf("seed %d: sync: %v", seed, err)
		}
		for _, workers := range []int{2, 4, 8} {
			inc, err := SolveIncremental(context.Background(), testutil.MustBuild(cfg), Config{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			assertIdenticalRuns(t, seed, sync, inc)
			if err := inc.Schema.ValidateInvariants(); err != nil {
				t.Fatalf("seed %d workers %d: invariants: %v", seed, workers, err)
			}
		}
	}
}

// TestWarmParallelEquivalence: the warm re-solve path through the parallel
// kernel matches its serial twin exactly, including from a drifted placement.
func TestWarmParallelEquivalence(t *testing.T) {
	forceParallelKernel(t)
	for seed := int64(1); seed <= 5; seed++ {
		p := testutil.MustBuild(testutil.Medium(seed))
		base, err := SolveIncremental(context.Background(), p, Config{MaxRounds: 10})
		if err != nil {
			t.Fatal(err)
		}
		serial, err := SolveIncrementalFrom(context.Background(), base.Schema, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := SolveIncrementalFrom(context.Background(), base.Schema, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		assertIdenticalRuns(t, seed, serial, par)
	}
}

// TestKernelZeroAllocRounds is the flat-arena claim, enforced: once the
// arena and kernel are built, a steady-state round — settle, award,
// broadcast — performs zero heap allocations, for one shard and for many.
func TestKernelZeroAllocRounds(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	p := testutil.MustBuild(testutil.Medium(7))
	for _, workers := range []int{1, 4} {
		pl := pool.New(1) // inline vehicle; shard logic still splits by workers
		ar := candidates.BuildArena(p, pl)
		k := newKernel(p, ar, pl, workers, mechanism.SecondPrice, false)
		var valuations int64
		// Warm up one round, then measure several: every steady-state round
		// must stay out of the allocator entirely.
		round := func() {
			winner, _, _, ok := k.settle(&valuations)
			if !ok {
				t.Fatalf("workers %d: auction ended before the measured rounds", workers)
			}
			obj := k.bidObj[winner]
			k.award(winner)
			k.broadcast(obj, winner)
		}
		round()
		if avg := testing.AllocsPerRun(20, round); avg != 0 {
			t.Fatalf("workers %d: %v allocs per steady-state round, want 0", workers, avg)
		}
		pl.Close()
	}
}
