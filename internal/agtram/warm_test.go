package agtram

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/replication"
	"repro/internal/solver"
	"repro/internal/testutil"
	"repro/internal/workload"
)

// TestWarmColdEquivalence: a warm re-solve from the primary-only placement
// is bit-identical to the cold incremental solve.
func TestWarmColdEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p := testutil.MustBuild(testutil.Small(seed))
		cold, err := SolveIncremental(context.Background(), p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := SolveIncrementalFrom(context.Background(), p.NewSchema(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold.Allocations, warm.Allocations) {
			t.Fatalf("seed %d: allocations differ between cold and primary-only warm solve", seed)
		}
		if !reflect.DeepEqual(cold.Payments, warm.Payments) {
			t.Fatalf("seed %d: payments differ", seed)
		}
		if cold.Schema.TotalCost() != warm.Schema.TotalCost() {
			t.Fatalf("seed %d: OTC %d != %d", seed, cold.Schema.TotalCost(), warm.Schema.TotalCost())
		}
	}
}

// TestWarmFixedPoint: re-solving warm from a converged placement places
// nothing — the auction already ended with no beneficial candidate left.
func TestWarmFixedPoint(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(3))
	first, err := SolveIncremental(context.Background(), p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := SolveIncrementalFrom(context.Background(), first.Schema, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Allocations) != 0 {
		t.Fatalf("warm re-solve from a converged placement placed %d replicas", len(again.Allocations))
	}
	if again.Schema.TotalCost() != first.Schema.TotalCost() {
		t.Fatalf("fixed-point OTC moved: %d != %d", again.Schema.TotalCost(), first.Schema.TotalCost())
	}
	// The base schema must not have been mutated.
	if err := first.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmResolveAfterDrift: carry a solved placement onto a drifted problem
// and warm re-solve; savings must not fall below the carried placement's and
// the result must satisfy every schema invariant.
func TestWarmResolveAfterDrift(t *testing.T) {
	cfg := testutil.Small(9)
	p := testutil.MustBuild(cfg)
	first, err := SolveIncremental(context.Background(), p, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Drifted demand over the same catalogue and capacities.
	w2, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: cfg.Servers, Objects: cfg.Objects, Requests: cfg.Requests,
		RWRatio: cfg.RWRatio, Seed: cfg.Seed, DemandSeed: cfg.Seed + 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := replication.NewProblem(p.Cost, w2, p.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	carried, _ := p2.CarryOver(first.Schema.Matrix())
	res, err := SolveIncrementalFrom(context.Background(), carried, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Savings() < carried.Savings() {
		t.Fatalf("warm re-solve worsened savings: %.3f%% < %.3f%%", res.Schema.Savings(), carried.Savings())
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmRegistry: the warm path is reachable through the solver registry
// and rejected on engines without it.
func TestWarmRegistry(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(4))
	s, ok := solver.Lookup("agt-ram")
	if !ok {
		t.Fatal("agt-ram not registered")
	}
	first, err := s.Solve(context.Background(), p, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Solve(context.Background(), p, solver.Options{Warm: first.Schema.Matrix()})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Replicas != 0 {
		t.Fatalf("registry warm re-solve from converged placement placed %d replicas", warm.Replicas)
	}
	if _, err := s.Solve(context.Background(), p, solver.Options{Warm: first.Schema.Matrix(), Engine: EngineSync}); err == nil {
		t.Fatal("warm solve on the sync engine must be rejected")
	}
}
