package agtram

import (
	"context"
	"errors"
	"net"
	"testing"

	"repro/internal/replication"
	"repro/internal/testutil"
)

// engineRuns lists every engine behind one uniform signature so the
// cancellation contract is tested identically across all five.
func engineRuns() []struct {
	name string
	run  func(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error)
} {
	return []struct {
		name string
		run  func(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error)
	}{
		{EngineSync, Solve},
		{EngineIncremental, SolveIncremental},
		{EngineDistributed, SolveDistributed},
		{EngineNetwork, SolveNetwork},
		{EngineTCP, func(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
			return SolveTCP(ctx, p, cfg, "127.0.0.1:0")
		}},
	}
}

// A context that is already cancelled must fail before the first round and
// tear down every goroutine, listener and connection the engine opened.
func TestEnginesRejectCancelledContext(t *testing.T) {
	for _, e := range engineRuns() {
		e := e
		t.Run(e.name, func(t *testing.T) {
			testutil.LeakCheck(t)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			p := testutil.MustBuild(testutil.Small(31))
			base := p.NewSchema().TotalCost()
			res, err := e.run(ctx, p, Config{})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res != nil {
				t.Fatalf("got a result alongside the cancellation error")
			}
			// The caller's problem must be untouched: a fresh schema still
			// prices at the primary-only baseline.
			if got := p.NewSchema().TotalCost(); got != base {
				t.Fatalf("problem mutated by cancelled solve: %d vs %d", got, base)
			}
		})
	}
}

// Cancelling from inside an OnRound observer must stop the mechanism at the
// next round boundary, on every engine, without leaking goroutines.
func TestEnginesCancelMidSolve(t *testing.T) {
	for _, e := range engineRuns() {
		e := e
		t.Run(e.name, func(t *testing.T) {
			testutil.LeakCheck(t)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			rounds := 0
			cfg := Config{OnRound: func(Allocation) {
				rounds++
				if rounds == 2 {
					cancel()
				}
			}}
			_, err := e.run(ctx, testutil.MustBuild(testutil.Small(32)), cfg)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v after %d rounds, want context.Canceled", err, rounds)
			}
			if rounds < 2 {
				t.Fatalf("cancelled after %d rounds, never reached the trigger", rounds)
			}
		})
	}
}

// RunRemoteAgent must unblock from its codec reads when its context dies.
func TestRunRemoteAgentCancel(t *testing.T) {
	testutil.LeakCheck(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	client, server := net.Pipe()
	defer server.Close()
	err := RunRemoteAgent(ctx, client, testutil.MustBuild(testutil.Small(33)), 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
