package agtram

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/faultnet"
	"repro/internal/mechanism"
	"repro/internal/replication"
)

// SolveNetwork runs the same semi-distributed protocol as SolveDistributed,
// but with every agent behind a real connection (net.Pipe) speaking
// gob-encoded messages — the shape of an actual deployment where the
// servers and the central body are separate processes. One agent goroutine
// per connection; the mechanism owns the other pipe ends.
//
// The allocation sequence is identical to Solve and SolveDistributed; the
// engine exists to exercise (and let tests verify) the wire protocol.
//
// Like SolveTCP, the engine honours Config.Faults and Config.RoundTimeout
// (net.Pipe supports deadlines): an agent whose link breaks, whose frames
// arrive truncated, who crashes on schedule, or who misses a round deadline
// is evicted and the auction continues over the remaining bidders. With a
// nil fault config and no deadline hits the run is bit-identical to Solve.
//
// ctx is checked at the top of every round; because the mechanism can also
// be blocked inside a gob read or a synchronous pipe write, a watcher
// goroutine closes every mechanism-side connection when ctx fires, which
// unblocks the codec calls and lets every agent goroutine exit before
// SolveNetwork returns ctx.Err() wrapped with the package name.
func SolveNetwork(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("agtram: nil problem")
	}
	if cfg.Valuation == ExactDelta {
		return nil, fmt.Errorf("agtram: exact-delta valuation needs global state and cannot run distributed")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("agtram: %w", err)
	}

	schema := p.NewSchema()
	res := &Result{Schema: schema, Payments: make([]int64, p.M)}
	evict := func(agent, round int, reason string) {
		ev := Eviction{Agent: agent, Round: round, Reason: reason}
		res.Evictions = append(res.Evictions, ev)
		if cfg.OnEvict != nil {
			cfg.OnEvict(ev)
		}
	}

	type peer struct {
		conn net.Conn
		enc  *gob.Encoder
		dec  *gob.Decoder
	}
	peers := make(map[int]*peer, p.M)

	var wg sync.WaitGroup

	// agentConnLoop is the remote-server side: purely local state, speaks
	// only the wire protocol. A positive crashRound makes the agent close
	// its link at the start of that (1-based) round instead of bidding.
	agentConnLoop := func(a *agentState, conn net.Conn, crashRound int) {
		defer wg.Done()
		defer conn.Close()
		enc := gob.NewEncoder(conn)
		dec := gob.NewDecoder(conn)
		for round := 1; ; round++ {
			if crashRound > 0 && round == crashRound {
				return // injected crash: the deferred Close breaks the link
			}
			obj, val, ok := a.best()
			if err := enc.Encode(bidMsg{Agent: a.id, Object: obj, Value: val, None: !ok}); err != nil {
				return
			}
			if !ok {
				return // leave the game; the mechanism closes its side
			}
			var aw awardMsg
			if err := dec.Decode(&aw); err != nil || aw.Done {
				return
			}
			if int(aw.Server) == a.id {
				a.won(aw.Object)
			} else {
				a.observe(aw.Object, p.Cost.At(a.id, int(aw.Server)))
			}
		}
	}

	order := make([]int, 0, p.M)
	mconns := make([]net.Conn, 0, p.M)
	for i := 0; i < p.M; i++ {
		a := newAgentState(p, i)
		if !a.active() {
			continue
		}
		if cfg.Faults.DialFails(i) {
			evict(i, 0, "dial failed: injected unroutable host")
			continue
		}
		mside, aside := net.Pipe()
		peers[i] = &peer{conn: mside, enc: gob.NewEncoder(mside), dec: gob.NewDecoder(mside)}
		order = append(order, i)
		mconns = append(mconns, mside)
		wg.Add(1)
		go agentConnLoop(a, faultnet.Wrap(aside, i, cfg.Faults), cfg.Faults.CrashRound(i))
	}
	// Teardown order (LIFO defers): close every mechanism-side pipe end —
	// which unblocks any agent stuck in a synchronous Encode/Decode — stop
	// the watcher, then wait for every agent goroutine to exit.
	defer wg.Wait()
	stop := make(chan struct{})
	defer close(stop)
	defer func() {
		for _, c := range mconns {
			c.Close()
		}
	}()
	// The watcher breaks codec calls blocked on the synchronous pipe when
	// ctx fires; net.Pipe Close is safe to race with the loop's own closes.
	go func() {
		select {
		case <-ctx.Done():
			for _, c := range mconns {
				c.Close()
			}
		case <-stop:
		}
	}()

	bids := make([]mechanism.Bid, 0, len(order))

	for len(order) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("agtram: %w", err)
		}
		roundNo := res.Rounds + 1
		bids = bids[:0]
		live := order[:0]
		for _, i := range order {
			pe := peers[i]
			if cfg.RoundTimeout > 0 {
				pe.conn.SetReadDeadline(time.Now().Add(cfg.RoundTimeout))
			}
			var m bidMsg
			if err := pe.dec.Decode(&m); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, fmt.Errorf("agtram: %w", cerr)
				}
				// Crashed, severed, truncated, or too slow: out of the
				// game; the auction continues over the remaining bidders.
				evict(i, roundNo, fmt.Sprintf("reading bid: %v", err))
				pe.conn.Close()
				delete(peers, i)
				continue
			}
			if m.None {
				pe.conn.Close()
				delete(peers, i)
				continue
			}
			bids = append(bids, mechanism.Bid{Agent: m.Agent, Item: m.Object, Value: m.Value})
			live = append(live, i)
		}
		order = live
		// Live agents are now blocked awaiting an award, so a graceful Done
		// frame (below) cannot deadlock on the synchronous pipe.
		if cfg.MaxRounds > 0 && res.Rounds >= cfg.MaxRounds {
			break
		}
		round, ok := mechanism.RunRound(bids, cfg.Payment)
		if !ok {
			break
		}
		winner := round.Winner
		if _, err := schema.PlaceReplica(winner.Item, winner.Agent); err != nil {
			return nil, fmt.Errorf("agtram: winning bid infeasible: %w", err)
		}
		alloc := Allocation{
			Round: res.Rounds, Object: winner.Item, Server: int32(winner.Agent),
			Value: winner.Value, Payment: round.Payment,
		}
		res.Allocations = append(res.Allocations, alloc)
		res.Payments[winner.Agent] += round.Payment
		res.Rounds++
		res.Valuations += int64(len(bids))
		if cfg.OnRound != nil {
			cfg.OnRound(alloc)
		}
		aw := awardMsg{Object: winner.Item, Server: int32(winner.Agent), Payment: round.Payment}
		live = order[:0]
		for _, i := range order {
			pe := peers[i]
			if cfg.RoundTimeout > 0 {
				pe.conn.SetWriteDeadline(time.Now().Add(cfg.RoundTimeout))
			}
			if err := pe.enc.Encode(aw); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, fmt.Errorf("agtram: %w", cerr)
				}
				// A committed placement stands even if its winner dies
				// right after; the agent is simply out of the rest of the
				// game.
				evict(i, roundNo, fmt.Sprintf("broadcasting award: %v", err))
				pe.conn.Close()
				delete(peers, i)
				continue
			}
			live = append(live, i)
		}
		order = live
	}
	// Done frames for any agents still waiting on an award.
	for _, i := range order {
		if cfg.RoundTimeout > 0 {
			peers[i].conn.SetWriteDeadline(time.Now().Add(cfg.RoundTimeout))
		}
		_ = peers[i].enc.Encode(awardMsg{Done: true})
	}
	return res, nil
}
