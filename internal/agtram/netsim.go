package agtram

import (
	"encoding/gob"
	"fmt"
	"net"

	"repro/internal/mechanism"
	"repro/internal/replication"
)

// SolveNetwork runs the same semi-distributed protocol as SolveDistributed,
// but with every agent behind a real connection (net.Pipe) speaking
// gob-encoded messages — the shape of an actual deployment where the
// servers and the central body are separate processes. One agent goroutine
// per connection; the mechanism owns the other pipe ends.
//
// The allocation sequence is identical to Solve and SolveDistributed; the
// engine exists to exercise (and let tests verify) the wire protocol.
func SolveNetwork(p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("agtram: nil problem")
	}
	if cfg.Valuation == ExactDelta {
		return nil, fmt.Errorf("agtram: exact-delta valuation needs global state and cannot run distributed")
	}

	type peer struct {
		conn net.Conn
		enc  *gob.Encoder
		dec  *gob.Decoder
	}
	peers := make(map[int]*peer, p.M)

	// agentConnLoop is the remote-server side: purely local state, speaks
	// only the wire protocol.
	agentConnLoop := func(a *agentState, conn net.Conn) {
		defer conn.Close()
		enc := gob.NewEncoder(conn)
		dec := gob.NewDecoder(conn)
		for {
			obj, val, ok := a.best()
			if err := enc.Encode(bidMsg{Agent: a.id, Object: obj, Value: val, None: !ok}); err != nil {
				return
			}
			if !ok {
				return // leave the game; the mechanism closes its side
			}
			var aw awardMsg
			if err := dec.Decode(&aw); err != nil || aw.Done {
				return
			}
			if int(aw.Server) == a.id {
				a.won(aw.Object)
			} else {
				a.observe(aw.Object, p.Cost.At(a.id, int(aw.Server)))
			}
		}
	}

	order := make([]int, 0, p.M)
	for i := 0; i < p.M; i++ {
		a := newAgentState(p, i)
		if !a.active() {
			continue
		}
		mside, aside := net.Pipe()
		peers[i] = &peer{conn: mside, enc: gob.NewEncoder(mside), dec: gob.NewDecoder(mside)}
		order = append(order, i)
		go agentConnLoop(a, aside)
	}
	defer func() {
		for _, pe := range peers {
			pe.conn.Close()
		}
	}()

	schema := p.NewSchema()
	res := &Result{Schema: schema, Payments: make([]int64, p.M)}
	bids := make([]mechanism.Bid, 0, len(order))

	for len(order) > 0 {
		bids = bids[:0]
		live := order[:0]
		for _, i := range order {
			var m bidMsg
			if err := peers[i].dec.Decode(&m); err != nil {
				return nil, fmt.Errorf("agtram: reading bid from agent %d: %w", i, err)
			}
			if m.None {
				peers[i].conn.Close()
				delete(peers, i)
				continue
			}
			bids = append(bids, mechanism.Bid{Agent: m.Agent, Item: m.Object, Value: m.Value})
			live = append(live, i)
		}
		order = live
		// Live agents are now blocked awaiting an award, so a graceful Done
		// frame (below) cannot deadlock on the synchronous pipe.
		if cfg.MaxRounds > 0 && res.Rounds >= cfg.MaxRounds {
			break
		}
		round, ok := mechanism.RunRound(bids, cfg.Payment)
		if !ok {
			break
		}
		winner := round.Winner
		if _, err := schema.PlaceReplica(winner.Item, winner.Agent); err != nil {
			return nil, fmt.Errorf("agtram: winning bid infeasible: %w", err)
		}
		res.Allocations = append(res.Allocations, Allocation{
			Round: res.Rounds, Object: winner.Item, Server: int32(winner.Agent),
			Value: winner.Value, Payment: round.Payment,
		})
		res.Payments[winner.Agent] += round.Payment
		res.Rounds++
		res.Valuations += int64(len(bids))
		aw := awardMsg{Object: winner.Item, Server: int32(winner.Agent), Payment: round.Payment}
		for _, i := range order {
			if err := peers[i].enc.Encode(aw); err != nil {
				return nil, fmt.Errorf("agtram: broadcasting to agent %d: %w", i, err)
			}
		}
	}
	// Done frames for any agents still waiting on an award.
	for _, i := range order {
		_ = peers[i].enc.Encode(awardMsg{Done: true})
	}
	return res, nil
}
