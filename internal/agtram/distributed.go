package agtram

import (
	"fmt"

	"repro/internal/mechanism"
	"repro/internal/replication"
)

// Message types of the semi-distributed protocol. The entire exchange per
// round is: M small bid messages up, one broadcast down — the "central body
// only takes a binary decision" property of Section 1.

// bidMsg is an agent's report for the current round. None=true means the
// agent has no beneficial candidate left and (per Figure 2 line 18) leaves
// the player set.
type bidMsg struct {
	Agent  int
	Object int32
	Value  int64
	None   bool
}

// awardMsg is the mechanism's broadcast. Done=true terminates the protocol.
type awardMsg struct {
	Object  int32
	Server  int32
	Payment int64
	Done    bool
}

// SolveDistributed runs AGT-RAM with one goroutine per agent and a central
// mechanism goroutine, communicating only through channels. Agents keep
// purely local state (their candidate lists and NN caches); the mechanism
// keeps the schema. The allocation sequence is identical to Solve.
func SolveDistributed(p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("agtram: nil problem")
	}
	if cfg.Valuation == ExactDelta {
		return nil, fmt.Errorf("agtram: exact-delta valuation needs global state and cannot run distributed")
	}

	bidCh := make(chan bidMsg, p.M)
	awardChs := make([]chan awardMsg, p.M)

	// Agent loop: bid, await broadcast, update local state, repeat. A nil
	// candidate list makes the agent send None once and exit.
	agentLoop := func(a *agentState, awards <-chan awardMsg) {
		for {
			obj, val, ok := a.best()
			bidCh <- bidMsg{Agent: a.id, Object: obj, Value: val, None: !ok}
			if !ok {
				// Out of the game; drain broadcasts until Done so the
				// mechanism can keep using a fixed fan-out.
				for aw := range awards {
					if aw.Done {
						return
					}
				}
				return
			}
			aw := <-awards
			if aw.Done {
				return
			}
			if int(aw.Server) == a.id {
				a.won(aw.Object)
			} else {
				a.observe(aw.Object, p.Cost.At(a.id, int(aw.Server)))
			}
		}
	}

	active := make(map[int]bool, p.M)
	for i := 0; i < p.M; i++ {
		a := newAgentState(p, i)
		if !a.active() {
			continue
		}
		awardChs[i] = make(chan awardMsg, 1)
		active[i] = true
		go agentLoop(a, awardChs[i])
	}

	schema := p.NewSchema()
	res := &Result{Schema: schema, Payments: make([]int64, p.M)}
	bids := make([]mechanism.Bid, 0, len(active))

	broadcast := func(aw awardMsg) {
		for i := range active {
			awardChs[i] <- aw
		}
	}

	for len(active) > 0 {
		if cfg.MaxRounds > 0 && res.Rounds >= cfg.MaxRounds {
			break
		}
		bids = bids[:0]
		expecting := len(active)
		for n := 0; n < expecting; n++ {
			m := <-bidCh
			if m.None {
				delete(active, m.Agent)
				close(awardChs[m.Agent])
				awardChs[m.Agent] = nil
				continue
			}
			bids = append(bids, mechanism.Bid{Agent: m.Agent, Item: m.Object, Value: m.Value})
		}
		round, ok := mechanism.RunRound(bids, cfg.Payment)
		if !ok {
			break
		}
		winner := round.Winner
		if _, err := schema.PlaceReplica(winner.Item, winner.Agent); err != nil {
			broadcast(awardMsg{Done: true})
			return nil, fmt.Errorf("agtram: winning bid infeasible: %w", err)
		}
		res.Allocations = append(res.Allocations, Allocation{
			Round: res.Rounds, Object: winner.Item, Server: int32(winner.Agent),
			Value: winner.Value, Payment: round.Payment,
		})
		res.Payments[winner.Agent] += round.Payment
		res.Rounds++
		res.Valuations += int64(len(bids)) // lower bound: one scan per live agent
		broadcast(awardMsg{Object: winner.Item, Server: int32(winner.Agent), Payment: round.Payment})
	}
	broadcast(awardMsg{Done: true})
	return res, nil
}
