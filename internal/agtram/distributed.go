package agtram

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/mechanism"
	"repro/internal/replication"
)

// Message types of the semi-distributed protocol. The entire exchange per
// round is: M small bid messages up, one broadcast down — the "central body
// only takes a binary decision" property of Section 1.

// bidMsg is an agent's report for the current round. None=true means the
// agent has no beneficial candidate left and (per Figure 2 line 18) leaves
// the player set.
type bidMsg struct {
	Agent  int
	Object int32
	Value  int64
	None   bool
}

// awardMsg is the mechanism's broadcast. Done=true terminates the protocol.
type awardMsg struct {
	Object  int32
	Server  int32
	Payment int64
	Done    bool
}

// SolveDistributed runs AGT-RAM with one goroutine per agent and a central
// mechanism goroutine, communicating only through channels. Agents keep
// purely local state (their candidate lists and NN caches); the mechanism
// keeps the schema. The allocation sequence is identical to Solve.
//
// ctx is checked at the top of every round. On cancellation the mechanism
// broadcasts the Done frame, waits for every agent goroutine to exit, and
// returns ctx.Err() wrapped with the package name. The broadcast cannot
// block: award channels are buffered and every live agent consumes exactly
// one award per bid it sent.
func SolveDistributed(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("agtram: nil problem")
	}
	if cfg.Valuation == ExactDelta {
		return nil, fmt.Errorf("agtram: exact-delta valuation needs global state and cannot run distributed")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("agtram: %w", err)
	}

	bidCh := make(chan bidMsg, p.M)
	awardChs := make([]chan awardMsg, p.M)
	var wg sync.WaitGroup

	// Agent loop: bid, await broadcast, update local state, repeat. A nil
	// candidate list makes the agent send None once and exit.
	agentLoop := func(a *agentState, awards <-chan awardMsg) {
		defer wg.Done()
		for {
			obj, val, ok := a.best()
			bidCh <- bidMsg{Agent: a.id, Object: obj, Value: val, None: !ok}
			if !ok {
				// Out of the game; drain broadcasts until Done so the
				// mechanism can keep using a fixed fan-out.
				for aw := range awards {
					if aw.Done {
						return
					}
				}
				return
			}
			aw := <-awards
			if aw.Done {
				return
			}
			if int(aw.Server) == a.id {
				a.won(aw.Object)
			} else {
				a.observe(aw.Object, p.Cost.At(a.id, int(aw.Server)))
			}
		}
	}

	active := make(map[int]bool, p.M)
	for i := 0; i < p.M; i++ {
		a := newAgentState(p, i)
		if !a.active() {
			continue
		}
		awardChs[i] = make(chan awardMsg, 1)
		active[i] = true
		wg.Add(1)
		go agentLoop(a, awardChs[i])
	}

	schema := p.NewSchema()
	res := &Result{Schema: schema, Payments: make([]int64, p.M)}
	bids := make([]mechanism.Bid, 0, len(active))

	broadcast := func(aw awardMsg) {
		for i := range active {
			awardChs[i] <- aw
		}
	}

	for len(active) > 0 {
		if err := ctx.Err(); err != nil {
			broadcast(awardMsg{Done: true})
			wg.Wait()
			return nil, fmt.Errorf("agtram: %w", err)
		}
		if cfg.MaxRounds > 0 && res.Rounds >= cfg.MaxRounds {
			break
		}
		bids = bids[:0]
		expecting := len(active)
		for n := 0; n < expecting; n++ {
			m := <-bidCh
			if m.None {
				delete(active, m.Agent)
				close(awardChs[m.Agent])
				awardChs[m.Agent] = nil
				continue
			}
			bids = append(bids, mechanism.Bid{Agent: m.Agent, Item: m.Object, Value: m.Value})
		}
		round, ok := mechanism.RunRound(bids, cfg.Payment)
		if !ok {
			break
		}
		winner := round.Winner
		if _, err := schema.PlaceReplica(winner.Item, winner.Agent); err != nil {
			broadcast(awardMsg{Done: true})
			wg.Wait()
			return nil, fmt.Errorf("agtram: winning bid infeasible: %w", err)
		}
		alloc := Allocation{
			Round: res.Rounds, Object: winner.Item, Server: int32(winner.Agent),
			Value: winner.Value, Payment: round.Payment,
		}
		res.Allocations = append(res.Allocations, alloc)
		res.Payments[winner.Agent] += round.Payment
		res.Rounds++
		res.Valuations += int64(len(bids)) // lower bound: one scan per live agent
		if cfg.OnRound != nil {
			cfg.OnRound(alloc)
		}
		broadcast(awardMsg{Object: winner.Item, Server: int32(winner.Agent), Payment: round.Payment})
	}
	broadcast(awardMsg{Done: true})
	wg.Wait()
	return res, nil
}
