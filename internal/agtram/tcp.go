package agtram

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/faultnet"
	"repro/internal/mechanism"
	"repro/internal/replication"
)

// helloMsg is the first frame an agent sends after dialing: it identifies
// the server the connection speaks for.
type helloMsg struct {
	Agent int
}

// Dial retry policy of the in-process agents: a handful of attempts with
// capped exponential backoff, matching what a deployed agent would do
// against a central body that is still coming up.
const (
	dialAttempts   = 3
	dialBackoffMin = 10 * time.Millisecond
	dialBackoffMax = 250 * time.Millisecond
)

// RunRemoteAgent speaks the agent side of the AGT-RAM wire protocol over an
// established connection: hello, then rounds of one bid up / one award
// down, leaving the game by sending a bid with None set. A real deployment
// runs this in the server process; the tests and SolveTCP run it in a
// goroutine over loopback. The function returns when the protocol ends, the
// connection breaks, or ctx is cancelled — cancellation closes conn to
// unblock any in-flight codec call and returns ctx.Err() wrapped with the
// package name.
func RunRemoteAgent(ctx context.Context, conn net.Conn, p *replication.Problem, agentID int) error {
	return runRemoteAgent(ctx, conn, p, agentID, 0)
}

// runRemoteAgent is RunRemoteAgent plus fault injection: when crashRound is
// positive the agent closes its connection at the start of that (1-based)
// round instead of bidding — a mid-game crash as the mechanism sees it.
func runRemoteAgent(ctx context.Context, conn net.Conn, p *replication.Problem, agentID, crashRound int) error {
	if agentID < 0 || agentID >= p.M {
		return fmt.Errorf("agtram: agent id %d out of range [0,%d)", agentID, p.M)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(helloMsg{Agent: agentID}); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("agtram: %w", cerr)
		}
		return fmt.Errorf("agtram: sending hello: %w", err)
	}
	a := newAgentState(p, agentID)
	for round := 1; ; round++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("agtram: %w", err)
		}
		if crashRound > 0 && round == crashRound {
			conn.Close()
			return fmt.Errorf("agtram: agent %d crashed at round %d (injected)", agentID, round)
		}
		obj, val, ok := a.best()
		if err := enc.Encode(bidMsg{Agent: agentID, Object: obj, Value: val, None: !ok}); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("agtram: %w", cerr)
			}
			return fmt.Errorf("agtram: sending bid: %w", err)
		}
		if !ok {
			return nil
		}
		var aw awardMsg
		if err := dec.Decode(&aw); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("agtram: %w", cerr)
			}
			return fmt.Errorf("agtram: reading award: %w", err)
		}
		if aw.Done {
			return nil
		}
		if int(aw.Server) == agentID {
			a.won(aw.Object)
		} else {
			a.observe(aw.Object, p.Cost.At(agentID, int(aw.Server)))
		}
	}
}

// dialAgent connects one agent to the mechanism with retry and capped
// backoff. Injected dial failures (an unroutable agent) short-circuit
// before touching the network.
func dialAgent(ctx context.Context, addr string, id int, faults *faultnet.Config, timeout time.Duration) (net.Conn, error) {
	if faults.DialFails(id) {
		return nil, fmt.Errorf("dial %s: injected unroutable host", addr)
	}
	d := net.Dialer{Timeout: timeout}
	backoff := dialBackoffMin
	var lastErr error
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
			backoff *= 2
			if backoff > dialBackoffMax {
				backoff = dialBackoffMax
			}
		}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("dial %s (%d attempts): %w", addr, dialAttempts, lastErr)
}

// SolveTCP runs the mechanism over real TCP sockets on the loopback
// interface: it listens on addr (use "127.0.0.1:0" for an ephemeral port),
// spawns one agent goroutine per active server that dials in and speaks
// RunRemoteAgent, and runs the central mechanism over the accepted
// connections. The allocation sequence is identical to Solve.
//
// This is the deployment-shaped engine: the agent side only needs the
// public problem data and its own id, so the same protocol runs unchanged
// with agents in separate processes or hosts.
//
// The engine degrades gracefully instead of failing atomically. Agents
// whose dial fails, whose hello never arrives within Config.HandshakeTimeout,
// or whose connection breaks or times out mid-game (Config.RoundTimeout)
// are EVICTED: recorded in Result.Evictions (and Config.OnEvict) and
// removed from the player set, and the auction continues over the
// remaining bidders. A connection that arrives but never identifies itself
// cannot block the game — the hello read carries its own deadline, and the
// identification phase as a whole is bounded. With no faults and no
// deadline hits the run is bit-identical to Solve.
//
// ctx is checked at the top of every round; a watcher goroutine closes the
// listener and every accepted connection when ctx fires, so accepts and
// codec calls blocked on the sockets unwind, every agent goroutine exits,
// and SolveTCP returns ctx.Err() wrapped with the package name.
func SolveTCP(ctx context.Context, p *replication.Problem, cfg Config, addr string) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("agtram: nil problem")
	}
	if cfg.Valuation == ExactDelta {
		return nil, fmt.Errorf("agtram: exact-delta valuation needs global state and cannot run distributed")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("agtram: %w", err)
	}
	handshakeTimeout := cfg.HandshakeTimeout
	if handshakeTimeout <= 0 {
		handshakeTimeout = defaultHandshakeTimeout
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agtram: listen: %w", err)
	}
	defer ln.Close()
	if cfg.OnListen != nil {
		cfg.OnListen(ln.Addr())
	}

	// The watcher tears the transport down when ctx fires. conns is
	// append-only under connMu; TCP closes are idempotent, so racing the
	// loop's own per-peer closes is safe.
	var connMu sync.Mutex
	var conns []net.Conn
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
			connMu.Lock()
			defer connMu.Unlock()
			for _, c := range conns {
				c.Close()
			}
		case <-stop:
		}
	}()

	// Which servers participate at all.
	var expected []int
	for i := 0; i < p.M; i++ {
		if newAgentState(p, i).active() {
			expected = append(expected, i)
		}
	}
	expectedSet := make(map[int]bool, len(expected))
	for _, id := range expected {
		expectedSet[id] = true
	}

	schema := p.NewSchema()
	res := &Result{Schema: schema, Payments: make([]int64, p.M)}
	evict := func(agent, round int, reason string) {
		ev := Eviction{Agent: agent, Round: round, Reason: reason}
		res.Evictions = append(res.Evictions, ev)
		if cfg.OnEvict != nil {
			cfg.OnEvict(ev)
		}
	}

	// Launch the agents; in a real deployment these are remote processes.
	// A failed dial is REPORTED to the handshake loop — the loop must not
	// wait for a hello that can never arrive (the old write-only error map
	// deadlocked the accept loop here).
	type dialFailure struct {
		agent int
		err   error
	}
	dialFailCh := make(chan dialFailure, len(expected))
	var wg sync.WaitGroup
	defer wg.Wait()
	for _, id := range expected {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := dialAgent(ctx, ln.Addr().String(), id, cfg.Faults, handshakeTimeout)
			if err != nil {
				dialFailCh <- dialFailure{agent: id, err: err}
				return
			}
			defer conn.Close()
			// The mechanism's own read errors decide evictions; the
			// agent-side error (if any) is the same broken link seen from
			// the other end, so it is not separately propagated.
			_ = runRemoteAgent(ctx, faultnet.Wrap(conn, id, cfg.Faults), p, id, cfg.Faults.CrashRound(id))
		}(id)
	}

	// Identification phase: accept asynchronously and read each hello
	// under its own deadline, so no single connection — silent, slow, or
	// hostile — can block the others. hellos and dial failures race into
	// the main loop until every expected agent is resolved one way or the
	// other, or the phase deadline fires.
	type peer struct {
		conn net.Conn
		enc  *gob.Encoder
		dec  *gob.Decoder
	}
	type hello struct {
		agent int
		peer  *peer
	}
	helloCh := make(chan hello, len(expected)+8)
	var hsMu sync.Mutex
	hsOver := false
	hsPending := make(map[net.Conn]bool)
	var hsWg sync.WaitGroup
	var hsOnce sync.Once
	// finishHandshake ends the identification phase: no new connections
	// (the game's transport set is fixed, and the port is freed), and any
	// connection still unidentified is closed, unblocking its hello read.
	finishHandshake := func() {
		hsOnce.Do(func() {
			hsMu.Lock()
			hsOver = true
			for c := range hsPending {
				c.Close()
			}
			hsMu.Unlock()
			ln.Close()
		})
	}
	defer func() {
		// Drain hellos that lost the race with the end of the phase so
		// their connections close. Runs after hsWg.Wait below (LIFO), so
		// no more sends can arrive.
		for {
			select {
			case h := <-helloCh:
				h.peer.conn.Close()
			default:
				return
			}
		}
	}()
	defer hsWg.Wait()
	defer finishHandshake()

	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed: phase over or ctx fired
			}
			connMu.Lock()
			conns = append(conns, conn)
			connMu.Unlock()
			hsMu.Lock()
			if hsOver {
				hsMu.Unlock()
				conn.Close()
				continue
			}
			hsPending[conn] = true
			hsWg.Add(1)
			hsMu.Unlock()
			go func(conn net.Conn) {
				defer hsWg.Done()
				// A peer that connects and goes silent must not hold the
				// game hostage: the hello read has its own deadline.
				conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
				dec := gob.NewDecoder(conn)
				var h helloMsg
				err := dec.Decode(&h)
				conn.SetReadDeadline(time.Time{})
				hsMu.Lock()
				delete(hsPending, conn)
				over := hsOver
				hsMu.Unlock()
				if err != nil || over {
					conn.Close()
					return
				}
				select {
				case helloCh <- hello{agent: h.Agent, peer: &peer{conn: conn, enc: gob.NewEncoder(conn), dec: dec}}:
				default:
					conn.Close() // channel full: flooded with impostors
				}
			}(conn)
		}
	}()

	peers := make(map[int]*peer, len(expected))
	defer func() {
		for _, pe := range peers {
			pe.conn.Close()
		}
	}()
	hsDeadline := time.NewTimer(handshakeTimeout)
	defer hsDeadline.Stop()
	dialFailed := make(map[int]bool, len(expected))
	for resolved := 0; resolved < len(expected); {
		select {
		case h := <-helloCh:
			if !expectedSet[h.agent] || peers[h.agent] != nil || dialFailed[h.agent] {
				h.peer.conn.Close() // impostor or duplicate: not part of the game
				continue
			}
			peers[h.agent] = h.peer
			resolved++
		case f := <-dialFailCh:
			dialFailed[f.agent] = true
			evict(f.agent, 0, fmt.Sprintf("dial failed: %v", f.err))
			resolved++
		case <-hsDeadline.C:
			for _, id := range expected {
				if peers[id] == nil && !dialFailed[id] {
					evict(id, 0, "handshake timeout: no hello")
				}
			}
			resolved = len(expected)
		case <-ctx.Done():
			return nil, fmt.Errorf("agtram: %w", ctx.Err())
		}
	}
	finishHandshake()

	order := make([]int, 0, len(peers))
	for _, id := range expected {
		if peers[id] != nil {
			order = append(order, id)
		}
	}
	bids := make([]mechanism.Bid, 0, len(order))

	for len(order) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("agtram: %w", err)
		}
		roundNo := res.Rounds + 1
		bids = bids[:0]
		live := order[:0]
		for _, i := range order {
			pe := peers[i]
			if cfg.RoundTimeout > 0 {
				pe.conn.SetReadDeadline(time.Now().Add(cfg.RoundTimeout))
			}
			var m bidMsg
			if err := pe.dec.Decode(&m); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, fmt.Errorf("agtram: %w", cerr)
				}
				// Timed out or disconnected: out of the game; the auction
				// continues over the remaining bidders.
				evict(i, roundNo, fmt.Sprintf("reading bid: %v", err))
				pe.conn.Close()
				delete(peers, i)
				continue
			}
			if m.None {
				pe.conn.Close()
				delete(peers, i)
				continue
			}
			bids = append(bids, mechanism.Bid{Agent: m.Agent, Item: m.Object, Value: m.Value})
			live = append(live, i)
		}
		order = live
		if cfg.MaxRounds > 0 && res.Rounds >= cfg.MaxRounds {
			break
		}
		round, ok := mechanism.RunRound(bids, cfg.Payment)
		if !ok {
			break
		}
		winner := round.Winner
		if _, err := schema.PlaceReplica(winner.Item, winner.Agent); err != nil {
			return nil, fmt.Errorf("agtram: winning bid infeasible: %w", err)
		}
		alloc := Allocation{
			Round: res.Rounds, Object: winner.Item, Server: int32(winner.Agent),
			Value: winner.Value, Payment: round.Payment,
		}
		res.Allocations = append(res.Allocations, alloc)
		res.Payments[winner.Agent] += round.Payment
		res.Rounds++
		res.Valuations += int64(len(bids))
		if cfg.OnRound != nil {
			cfg.OnRound(alloc)
		}
		aw := awardMsg{Object: winner.Item, Server: int32(winner.Agent), Payment: round.Payment}
		live = order[:0]
		for _, i := range order {
			pe := peers[i]
			if cfg.RoundTimeout > 0 {
				pe.conn.SetWriteDeadline(time.Now().Add(cfg.RoundTimeout))
			}
			if err := pe.enc.Encode(aw); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, fmt.Errorf("agtram: %w", cerr)
				}
				// A committed placement stands even if its winner dies
				// right after: the mechanism's accounting already happened;
				// the agent is simply out of the rest of the game.
				evict(i, roundNo, fmt.Sprintf("broadcasting award: %v", err))
				pe.conn.Close()
				delete(peers, i)
				continue
			}
			live = append(live, i)
		}
		order = live
	}
	for _, i := range order {
		if cfg.RoundTimeout > 0 {
			peers[i].conn.SetWriteDeadline(time.Now().Add(cfg.RoundTimeout))
		}
		_ = peers[i].enc.Encode(awardMsg{Done: true})
	}
	return res, nil
}
