package agtram

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/mechanism"
	"repro/internal/replication"
)

// helloMsg is the first frame an agent sends after dialing: it identifies
// the server the connection speaks for.
type helloMsg struct {
	Agent int
}

// RunRemoteAgent speaks the agent side of the AGT-RAM wire protocol over an
// established connection: hello, then rounds of one bid up / one award
// down, leaving the game by sending a bid with None set. A real deployment
// runs this in the server process; the tests and SolveTCP run it in a
// goroutine over loopback. The function returns when the protocol ends, the
// connection breaks, or ctx is cancelled — cancellation closes conn to
// unblock any in-flight codec call and returns ctx.Err() wrapped with the
// package name.
func RunRemoteAgent(ctx context.Context, conn net.Conn, p *replication.Problem, agentID int) error {
	if agentID < 0 || agentID >= p.M {
		return fmt.Errorf("agtram: agent id %d out of range [0,%d)", agentID, p.M)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(helloMsg{Agent: agentID}); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("agtram: %w", cerr)
		}
		return fmt.Errorf("agtram: sending hello: %w", err)
	}
	a := newAgentState(p, agentID)
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("agtram: %w", err)
		}
		obj, val, ok := a.best()
		if err := enc.Encode(bidMsg{Agent: agentID, Object: obj, Value: val, None: !ok}); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("agtram: %w", cerr)
			}
			return fmt.Errorf("agtram: sending bid: %w", err)
		}
		if !ok {
			return nil
		}
		var aw awardMsg
		if err := dec.Decode(&aw); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("agtram: %w", cerr)
			}
			return fmt.Errorf("agtram: reading award: %w", err)
		}
		if aw.Done {
			return nil
		}
		if int(aw.Server) == agentID {
			a.won(aw.Object)
		} else {
			a.observe(aw.Object, p.Cost.At(agentID, int(aw.Server)))
		}
	}
}

// SolveTCP runs the mechanism over real TCP sockets on the loopback
// interface: it listens on addr (use "127.0.0.1:0" for an ephemeral port),
// spawns one agent goroutine per active server that dials in and speaks
// RunRemoteAgent, and runs the central mechanism over the accepted
// connections. The allocation sequence is identical to Solve.
//
// This is the deployment-shaped engine: the agent side only needs the
// public problem data and its own id, so the same protocol runs unchanged
// with agents in separate processes or hosts.
//
// ctx is checked at the top of every round; a watcher goroutine closes the
// listener and every accepted connection when ctx fires, so accepts and
// codec calls blocked on the sockets unwind, every agent goroutine exits,
// and SolveTCP returns ctx.Err() wrapped with the package name.
func SolveTCP(ctx context.Context, p *replication.Problem, cfg Config, addr string) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("agtram: nil problem")
	}
	if cfg.Valuation == ExactDelta {
		return nil, fmt.Errorf("agtram: exact-delta valuation needs global state and cannot run distributed")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("agtram: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agtram: listen: %w", err)
	}
	defer ln.Close()

	// The watcher tears the transport down when ctx fires. conns is
	// append-only under connMu; TCP closes are idempotent, so racing the
	// loop's own per-peer closes is safe.
	var connMu sync.Mutex
	var conns []net.Conn
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
			connMu.Lock()
			defer connMu.Unlock()
			for _, c := range conns {
				c.Close()
			}
		case <-stop:
		}
	}()

	// Which servers participate at all.
	var expected []int
	for i := 0; i < p.M; i++ {
		if newAgentState(p, i).active() {
			expected = append(expected, i)
		}
	}

	// Launch the agents; in a real deployment these are remote processes.
	var agentErrs sync.Map
	var wg sync.WaitGroup
	for _, id := range expected {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				agentErrs.Store(id, err)
				return
			}
			defer conn.Close()
			if err := RunRemoteAgent(ctx, conn, p, id); err != nil {
				agentErrs.Store(id, err)
			}
		}(id)
	}
	defer wg.Wait()

	// Accept and identify every agent.
	type peer struct {
		conn net.Conn
		enc  *gob.Encoder
		dec  *gob.Decoder
	}
	peers := make(map[int]*peer, len(expected))
	defer func() {
		for _, pe := range peers {
			pe.conn.Close()
		}
	}()
	for range expected {
		conn, err := ln.Accept()
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("agtram: %w", cerr)
			}
			return nil, fmt.Errorf("agtram: accept: %w", err)
		}
		connMu.Lock()
		conns = append(conns, conn)
		connMu.Unlock()
		dec := gob.NewDecoder(conn)
		var hello helloMsg
		if err := dec.Decode(&hello); err != nil {
			conn.Close()
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("agtram: %w", cerr)
			}
			return nil, fmt.Errorf("agtram: reading hello: %w", err)
		}
		if hello.Agent < 0 || hello.Agent >= p.M || peers[hello.Agent] != nil {
			conn.Close()
			return nil, fmt.Errorf("agtram: bad or duplicate hello from agent %d", hello.Agent)
		}
		peers[hello.Agent] = &peer{conn: conn, enc: gob.NewEncoder(conn), dec: dec}
	}

	schema := p.NewSchema()
	res := &Result{Schema: schema, Payments: make([]int64, p.M)}
	order := append([]int(nil), expected...)
	bids := make([]mechanism.Bid, 0, len(order))

	for len(order) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("agtram: %w", err)
		}
		bids = bids[:0]
		live := order[:0]
		for _, i := range order {
			var m bidMsg
			if err := peers[i].dec.Decode(&m); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, fmt.Errorf("agtram: %w", cerr)
				}
				return nil, fmt.Errorf("agtram: reading bid from agent %d: %w", i, err)
			}
			if m.None {
				peers[i].conn.Close()
				delete(peers, i)
				continue
			}
			bids = append(bids, mechanism.Bid{Agent: m.Agent, Item: m.Object, Value: m.Value})
			live = append(live, i)
		}
		order = live
		if cfg.MaxRounds > 0 && res.Rounds >= cfg.MaxRounds {
			break
		}
		round, ok := mechanism.RunRound(bids, cfg.Payment)
		if !ok {
			break
		}
		winner := round.Winner
		if _, err := schema.PlaceReplica(winner.Item, winner.Agent); err != nil {
			return nil, fmt.Errorf("agtram: winning bid infeasible: %w", err)
		}
		alloc := Allocation{
			Round: res.Rounds, Object: winner.Item, Server: int32(winner.Agent),
			Value: winner.Value, Payment: round.Payment,
		}
		res.Allocations = append(res.Allocations, alloc)
		res.Payments[winner.Agent] += round.Payment
		res.Rounds++
		res.Valuations += int64(len(bids))
		if cfg.OnRound != nil {
			cfg.OnRound(alloc)
		}
		aw := awardMsg{Object: winner.Item, Server: int32(winner.Agent), Payment: round.Payment}
		for _, i := range order {
			if err := peers[i].enc.Encode(aw); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, fmt.Errorf("agtram: %w", cerr)
				}
				return nil, fmt.Errorf("agtram: broadcasting to agent %d: %w", i, err)
			}
		}
	}
	for _, i := range order {
		_ = peers[i].enc.Encode(awardMsg{Done: true})
	}

	var firstErr error
	agentErrs.Range(func(k, v interface{}) bool {
		firstErr = fmt.Errorf("agtram: agent %v: %w", k, v.(error))
		return false
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
