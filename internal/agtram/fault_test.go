package agtram

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/replication"
	"repro/internal/testutil"
)

// activeAgent returns the first server that participates in the game for p;
// fault schedules must name a live victim or they test nothing.
func activeAgent(t *testing.T, p *replication.Problem) int {
	t.Helper()
	for i := 0; i < p.M; i++ {
		if newAgentState(p, i).active() {
			return i
		}
	}
	t.Fatal("problem has no active agents")
	return -1
}

// assertEvicted checks that agent was evicted exactly once and that the
// run's placement is still a valid schema: every invariant holds and the
// victim won nothing after its eviction round.
func assertEvicted(t *testing.T, res *Result, agent int) Eviction {
	t.Helper()
	var found *Eviction
	for i := range res.Evictions {
		if res.Evictions[i].Agent == agent {
			if found != nil {
				t.Fatalf("agent %d evicted twice: %+v and %+v", agent, *found, res.Evictions[i])
			}
			found = &res.Evictions[i]
		}
	}
	if found == nil {
		t.Fatalf("agent %d not evicted; evictions: %+v", agent, res.Evictions)
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatalf("evicted run breaks schema invariants: %v", err)
	}
	// Allocation.Round is 0-based, Eviction.Round 1-based: an allocation in
	// 0-based round r happened in 1-based round r+1, so r >= found.Round
	// means a win strictly after the eviction round.
	for _, al := range res.Allocations {
		if int(al.Server) == agent && al.Round >= found.Round {
			t.Fatalf("agent %d won in round %d after eviction in round %d",
				agent, al.Round+1, found.Round)
		}
	}
	return *found
}

// Regression for the dial-failure deadlock: an unroutable agent used to
// leave the accept loop waiting forever for a hello that could never arrive
// while the error sat unread in a write-only map. Now the dial failure is
// surfaced, the agent evicted before the game, and the solve completes.
func TestSolveTCPDialFailureEvicts(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(41))
	victim := activeAgent(t, p)
	var observed []Eviction
	cfg := Config{
		Faults:  &faultnet.Config{FailDial: map[int]bool{victim: true}},
		OnEvict: func(ev Eviction) { observed = append(observed, ev) },
	}
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = SolveTCP(context.Background(), p, cfg, "127.0.0.1:0")
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SolveTCP hung on a failed dial (the old deadlock)")
	}
	if err != nil {
		t.Fatalf("solve errored instead of evicting: %v", err)
	}
	ev := assertEvicted(t, res, victim)
	if ev.Round != 0 {
		t.Fatalf("dial failure evicted in round %d, want 0 (pre-game)", ev.Round)
	}
	if len(observed) != len(res.Evictions) {
		t.Fatalf("OnEvict saw %d evictions, result records %d", len(observed), len(res.Evictions))
	}
}

// Regression for the silent-peer hang: a connection that says nothing used
// to block the synchronous hello read forever. The handshake now reads
// hellos under a deadline per connection, so a mute stranger neither blocks
// the game nor perturbs its outcome.
func TestSolveTCPSilentPeerDoesNotBlock(t *testing.T) {
	testutil.LeakCheck(t)
	scfg := testutil.Small(42)
	want := mustSolve(t, testutil.MustBuild(scfg), Config{})

	silent := make(chan net.Conn, 1)
	cfg := Config{
		HandshakeTimeout: 2 * time.Second,
		OnListen: func(addr net.Addr) {
			go func() {
				conn, err := net.Dial("tcp", addr.String())
				if err == nil {
					silent <- conn // connect, then say nothing
				}
			}()
		},
	}
	res, err := SolveTCP(context.Background(), testutil.MustBuild(scfg), cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evictions) != 0 {
		t.Fatalf("a stranger's silent connection caused evictions: %+v", res.Evictions)
	}
	assertSameAllocations(t, want, res)
	select {
	case conn := <-silent:
		conn.Close()
	case <-time.After(2 * time.Second):
		// The solve can finish before the stray dial lands; nothing to close.
	}
}

// faultMatrix is the shared crash/truncate/slow/drop schedule both wire
// engines must survive: the solve completes, the victim is evicted, and the
// surviving placement is a valid schema.
func faultMatrix(victim int) []struct {
	name   string
	faults faultnet.Config
} {
	return []struct {
		name   string
		faults faultnet.Config
	}{
		{"crash-mid-round", faultnet.Config{CrashAtRound: map[int]int{victim: 2}}},
		{"truncated-gob-frame", faultnet.Config{TruncateAfter: map[int]int{victim: 192}}},
		{"slow-agent-hits-deadline", faultnet.Config{Delay: map[int]time.Duration{victim: 300 * time.Millisecond}}},
		{"link-severs-immediately", faultnet.Config{Seed: 7, Drop: map[int]float64{victim: 1}}},
	}
}

func TestFaultMatrixNetwork(t *testing.T) {
	p0 := testutil.MustBuild(testutil.Small(43))
	victim := activeAgent(t, p0)
	for _, tc := range faultMatrix(victim) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			testutil.LeakCheck(t)
			faults := tc.faults
			cfg := Config{RoundTimeout: 100 * time.Millisecond, Faults: &faults}
			res, err := SolveNetwork(context.Background(), testutil.MustBuild(testutil.Small(43)), cfg)
			if err != nil {
				t.Fatalf("solve errored instead of evicting: %v", err)
			}
			assertEvicted(t, res, victim)
		})
	}
}

func TestFaultMatrixTCP(t *testing.T) {
	p0 := testutil.MustBuild(testutil.Small(44))
	victim := activeAgent(t, p0)
	matrix := faultMatrix(victim)
	matrix = append(matrix, struct {
		name   string
		faults faultnet.Config
	}{"dial-refused", faultnet.Config{FailDial: map[int]bool{victim: true}}})
	for _, tc := range matrix {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			testutil.LeakCheck(t)
			faults := tc.faults
			cfg := Config{
				RoundTimeout: 100 * time.Millisecond,
				// Short: drop=1 severs the hello itself, so the victim can
				// only be evicted when the identification phase gives up.
				HandshakeTimeout: 500 * time.Millisecond,
				Faults:           &faults,
			}
			res, err := SolveTCP(context.Background(), testutil.MustBuild(testutil.Small(44)), cfg, "127.0.0.1:0")
			if err != nil {
				t.Fatalf("solve errored instead of evicting: %v", err)
			}
			assertEvicted(t, res, victim)
		})
	}
}

// A solve stalled in its identification phase (every hello delayed past the
// cancel) must abort promptly on ctx and tear everything down — listener,
// accepted connections, agent goroutines.
func TestSolveTCPCancelDuringStalledHandshake(t *testing.T) {
	testutil.LeakCheck(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Faults: &faultnet.Config{DelayAll: 300 * time.Millisecond},
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	res, err := SolveTCP(ctx, testutil.MustBuild(testutil.Small(45)), cfg, "127.0.0.1:0")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("got a result alongside the cancellation error")
	}
}

// Evicting one agent must leave a placement that still satisfies every
// capacity and primary constraint, and the payments of the surviving
// winners must be non-negative.
func TestEvictedRunRespectsConstraints(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(46))
	victim := activeAgent(t, p)
	cfg := Config{
		RoundTimeout: 100 * time.Millisecond,
		Faults:       &faultnet.Config{CrashAtRound: map[int]int{victim: 1}},
	}
	res, err := SolveNetwork(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev := assertEvicted(t, res, victim)
	if ev.Round != 1 {
		t.Fatalf("crash at round 1 evicted in round %d", ev.Round)
	}
	if res.Payments[victim] != 0 {
		t.Fatalf("agent crashed before bidding but was paid %d", res.Payments[victim])
	}
	for i, pay := range res.Payments {
		if pay < 0 {
			t.Fatalf("server %d has negative cumulative payment %d", i, pay)
		}
	}
	if err := res.Schema.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}
