package agtram

import (
	"math"
	"sync/atomic"

	"repro/internal/candidates"
	"repro/internal/mechanism"
	"repro/internal/pool"
	"repro/internal/replication"
)

// kernel is the incremental engine's round machine: the whole mechanism
// state in flat arrays, allocated once, so the steady-state round loop
// (settle, award, broadcast) performs zero heap allocations.
//
// Layout. Every agent's candidate list is a segment of the candidates.Arena;
// the segment doubles as the backing store of the agent's lazy max-heap
// (candHeap holds arena slots, keys the cached benefit bounds, pos the
// slot's position in its heap). On top sit the cached dominant bids
// (bidVal/bidObj/stale), organized as one lazy max-heap per shard — agents
// are partitioned into nsh contiguous id ranges — keyed by the cached bid
// value, mechanism order (value desc, agent id asc).
//
// Rounds. settle drives each shard's heap until its top is provably exact
// (stale tops re-priced via the candidate heap, spent agents retired), then
// a serial tournament over the shard tops picks the global winner under the
// exact mechanism tie-break; under second-price the winning shard is
// additionally settled to its runner-up, and the Vickrey payment is the
// maximum of that runner-up and the other shards' tops (every other cached
// bid is bounded above by its shard top, so the reduction is exact).
// broadcast then walks the placed object's demand index, dropping
// nearest-neighbor costs and staleness-marking only demanders whose cached
// bid was for that very object — all other cached bids remain exact upper
// bounds, the invariant the laziness rests on.
//
// Parallelism. Shard heaps are disjoint by construction, and a broadcast
// write-set is disjoint per demander (each ref touches one server's arrays),
// so both phases fan out over the worker pool with no synchronization
// beyond the barrier. The shard partition is fixed by the worker count, and
// the merge is serial in shard order, so results are bit-identical whether
// the shards run on the pool or inline — the pool is only the execution
// vehicle, engaged when a round carries enough work to amortize dispatch.
// The tasks are pre-built closures and submission reuses them, keeping the
// parallel path allocation-free too.
type kernel struct {
	p       *replication.Problem
	ar      *candidates.Arena
	payment mechanism.PaymentRule

	// Per-candidate state (indexed by arena slot).
	keys     []int64 // cached benefit at last pricing; a true upper bound
	candHeap []int32 // per-agent segments: arena slots in heap order
	pos      []int32 // arena slot -> index in its agent's heap, -1 removed

	// Per-agent state.
	heapLen  []int32
	residual []int64
	bidVal   []int64 // cached dominant bid; exact iff !stale
	bidObj   []int32
	stale    []bool
	dead     []bool

	// Shard bid heaps: shardHeap[shardStart[s]:shardStart[s]+shardLen[s]]
	// holds the live agent ids of shard s in bid-heap order.
	nsh        int
	shardStart []int32
	shardHeap  []int32
	shardLen   []int32
	heapIdx    []int32 // agent -> index in its shard's heap, -1 retired
	evals      []int64 // per-shard valuation counters, summed in shard order

	// Execution vehicle.
	pl          *pool.Pool
	parallel    bool // pool dispatch permitted (never affects results)
	settleTasks []func()
	obsTasks    []func()
	obsCursor   atomic.Int64

	// Broadcast parameters, passed via fields so obsTasks stay closure-free
	// in the steady state.
	bcastObj    int32
	bcastServer int32
	bcastRefs   []replication.DemandRef
	bcastCol    []int32 // c(·, winner) column view, nil without a row oracle
	staleHint   int     // demanders touched by the last broadcast
}

// noBid is the "no second bid" sentinel. Real bids are positive, so it
// doubles as "refresh everything": with no exact bid to bound them, no
// stale agent may be skipped.
const noBid = math.MinInt64

// Dispatch thresholds: below them a phase runs inline — dispatching pool
// tasks for a few dozen O(1) operations costs more than the work. Vars, not
// consts, so tests can force the parallel paths on small instances.
var (
	settleParallelThreshold  = 256  // stale agents to justify parallel settle
	observeParallelThreshold = 2048 // broadcast refs to justify parallel observe
)

// obsChunk is the broadcast fan-out's guided chunk size.
const obsChunk = 256

// newKernel builds the round machine over an arena. workers fixes the shard
// count (and with it the exact refresh schedule); parallel decides whether
// shards may run on the pool.
func newKernel(p *replication.Problem, ar *candidates.Arena, pl *pool.Pool, workers int, payment mechanism.PaymentRule, parallel bool) *kernel {
	n := int32(ar.Cands())
	k := &kernel{
		p: p, ar: ar, payment: payment,
		keys:     make([]int64, n),
		candHeap: make([]int32, n),
		pos:      make([]int32, n),
		heapLen:  make([]int32, ar.M),
		residual: make([]int64, ar.M),
		bidVal:   make([]int64, ar.M),
		bidObj:   make([]int32, ar.M),
		stale:    make([]bool, ar.M),
		dead:     make([]bool, ar.M),
		nsh:      workers,
		pl:       pl,
		parallel: parallel && workers > 1,
	}
	copy(k.residual, ar.Residual)

	// Candidate heaps: keys start exact (the arena was priced against the
	// solve's start placement, the state of round one), so each agent's
	// dominant bid is simply its heap top.
	for c := int32(0); c < n; c++ {
		k.keys[c] = ar.Benefit(c)
		k.candHeap[c] = c
	}
	for i := 0; i < ar.M; i++ {
		b, n := ar.Start[i], int32(ar.Len(i))
		k.heapLen[i] = n
		for j := n/2 - 1; j >= 0; j-- {
			k.candSiftDown(b, j, n)
		}
		for j := int32(0); j < n; j++ {
			k.pos[k.candHeap[b+j]] = j
		}
		if n > 0 {
			top := k.candHeap[b]
			k.bidVal[i] = k.keys[top]
			k.bidObj[i] = ar.Objs[top]
		} else {
			k.dead[i] = true
		}
	}

	// Shard bid heaps over the live agents of each contiguous id range.
	k.shardStart = make([]int32, k.nsh+1)
	k.shardLen = make([]int32, k.nsh)
	k.evals = make([]int64, k.nsh)
	k.heapIdx = make([]int32, ar.M)
	live := int32(0)
	for i := 0; i < ar.M; i++ {
		if !k.dead[i] {
			live++
		}
	}
	k.shardHeap = make([]int32, live)
	at := int32(0)
	for s := 0; s < k.nsh; s++ {
		k.shardStart[s] = at
		lo, hi := s*ar.M/k.nsh, (s+1)*ar.M/k.nsh
		for i := lo; i < hi; i++ {
			if k.dead[i] {
				k.heapIdx[i] = -1
				continue
			}
			k.shardHeap[at] = int32(i)
			at++
		}
		n := at - k.shardStart[s]
		k.shardLen[s] = n
		b := k.shardStart[s]
		for j := n/2 - 1; j >= 0; j-- {
			k.bidSiftDown(s, j)
		}
		for j := int32(0); j < n; j++ {
			k.heapIdx[k.shardHeap[b+j]] = j
		}
	}
	k.shardStart[k.nsh] = at

	// Pre-build the pool tasks once; submitting an existing func allocates
	// nothing, which keeps the parallel rounds as allocation-free as the
	// serial ones.
	k.settleTasks = make([]func(), k.nsh)
	k.obsTasks = make([]func(), k.nsh)
	for s := 0; s < k.nsh; s++ {
		s := s
		k.settleTasks[s] = func() { k.evals[s] = k.settleShardTop(s) }
		k.obsTasks[s] = func() { k.observeChunks() }
	}
	// Everything is freshly priced, so the first settle has no stale agents.
	k.staleHint = 0
	return k
}

// seedValuations is the pricing work charged for round one: every candidate
// was valued once during construction, exactly as Solve's first-round scan.
func (k *kernel) seedValuations() int64 { return int64(k.ar.Cands()) }

// --- candidate heaps (per-agent, keyed by cached benefit desc, object asc) ---

func (k *kernel) candLess(x, y int32) bool {
	if k.keys[x] != k.keys[y] {
		return k.keys[x] > k.keys[y]
	}
	return k.ar.Objs[x] < k.ar.Objs[y]
}

// candSiftDown restores the heap below relative index j of the segment at
// base b with n entries. Callers fix pos afterwards only during heapify;
// steady-state paths maintain pos here.
func (k *kernel) candSiftDown(b, j, n int32) {
	h := k.candHeap[b : b+n : b+n]
	node := h[j]
	for {
		l := 2*j + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && k.candLess(h[r], h[l]) {
			c = r
		}
		if !k.candLess(h[c], node) {
			break
		}
		h[j] = h[c]
		k.pos[h[j]] = j
		j = c
	}
	h[j] = node
	k.pos[node] = j
}

// candPopTop removes agent i's heap top permanently.
func (k *kernel) candPopTop(i int32) {
	b := k.ar.Start[i]
	n := k.heapLen[i] - 1
	k.heapLen[i] = n
	k.pos[k.candHeap[b]] = -1
	if n > 0 {
		k.candHeap[b] = k.candHeap[b+n]
		k.candSiftDown(b, 0, n)
	}
}

// best re-prices agent i's dominant bid lazily: only candidates that reach
// the heap top are touched, and candidates pruned by capacity or
// non-positive benefit leave permanently (both conditions are monotone).
// Returns the eval count alongside the bid.
func (k *kernel) best(i int32) (obj int32, value int64, evals int64, ok bool) {
	ar := k.ar
	b := ar.Start[i]
	for k.heapLen[i] > 0 {
		top := k.candHeap[b]
		if ar.Sizes[top] > k.residual[i] {
			k.candPopTop(i) // prune: residual only shrinks
			continue
		}
		v := ar.Benefit(top)
		evals++
		if v <= 0 {
			k.candPopTop(i) // prune: benefit only shrinks
			continue
		}
		if v < k.keys[top] {
			k.keys[top] = v
			k.candSiftDown(b, 0, k.heapLen[i])
			continue
		}
		// The cached upper bound is tight: this candidate dominates every
		// other cached (hence true) benefit of the agent.
		return ar.Objs[top], v, evals, true
	}
	return 0, 0, evals, false
}

// --- shard bid heaps (keyed by cached bid value desc, agent id asc) ---

func (k *kernel) bidLess(x, y int32) bool {
	if k.bidVal[x] != k.bidVal[y] {
		return k.bidVal[x] > k.bidVal[y]
	}
	return x < y
}

func (k *kernel) bidSiftDown(s int, j int32) {
	b, n := k.shardStart[s], k.shardLen[s]
	h := k.shardHeap[b : b+n : b+n]
	node := h[j]
	for {
		l := 2*j + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && k.bidLess(h[r], h[l]) {
			c = r
		}
		if !k.bidLess(h[c], node) {
			break
		}
		h[j] = h[c]
		k.heapIdx[h[j]] = j
		j = c
	}
	h[j] = node
	k.heapIdx[node] = j
}

func (k *kernel) bidSiftUp(s int, j int32) {
	b := k.shardStart[s]
	h := k.shardHeap[b:]
	node := h[j]
	for j > 0 {
		parent := (j - 1) / 2
		if !k.bidLess(node, h[parent]) {
			break
		}
		h[j] = h[parent]
		k.heapIdx[h[j]] = j
		j = parent
	}
	h[j] = node
	k.heapIdx[node] = j
}

// bidRemove retires the agent at relative index j of shard s's heap. The
// hole is filled by the last entry, which may need to move either way
// (ties order by agent id, so an equal-valued mover can sort above its new
// parent).
func (k *kernel) bidRemove(s int, j int32) {
	b := k.shardStart[s]
	n := k.shardLen[s] - 1
	k.shardLen[s] = n
	k.heapIdx[k.shardHeap[b+j]] = -1
	if j == n {
		return
	}
	k.shardHeap[b+j] = k.shardHeap[b+n]
	k.heapIdx[k.shardHeap[b+j]] = j
	k.bidSiftDown(s, j)
	if k.shardHeap[b+j] == k.shardHeap[b+n] { // did not move down
		k.bidSiftUp(s, j)
	}
}

// refresh re-prices the stale agent at relative index j of shard s's heap:
// its cached bid becomes exact (values only fall, so the entry sifts down),
// or the agent leaves the game when nothing beneficial and feasible remains
// (Figure 2, line 18).
func (k *kernel) refresh(s int, j int32) int64 {
	i := k.shardHeap[k.shardStart[s]+j]
	obj, v, evals, ok := k.best(i)
	if !ok {
		k.dead[i] = true
		k.stale[i] = false
		k.bidRemove(s, j)
		return evals
	}
	k.bidObj[i], k.bidVal[i] = obj, v
	k.stale[i] = false
	k.bidSiftDown(s, j)
	return evals
}

// settleShardTop drives shard s until its top bid is provably exact: a
// stale top is refreshed in place (refreshes only lower values, so a new
// top can only surface from below, already bounded). Returns the evals
// spent; the settled top, if any, is shardHeap[shardStart[s]].
func (k *kernel) settleShardTop(s int) int64 {
	var evals int64
	for k.shardLen[s] > 0 {
		top := k.shardHeap[k.shardStart[s]]
		if !k.stale[top] {
			break
		}
		evals += k.refresh(s, 0)
	}
	return evals
}

// settleShardSecond additionally settles shard s's runner-up: the larger
// root child, refreshed until fresh. A refreshed runner that ties the top
// with a lower agent id takes the top (the mechanism tie-break), so the
// loop re-verifies the top each pass exactly like the serial engine did.
func (k *kernel) settleShardSecond(s int) (second int64, has bool, evals int64) {
	for {
		if k.shardLen[s] > 0 && k.stale[k.shardHeap[k.shardStart[s]]] {
			evals += k.refresh(s, 0)
			continue
		}
		if k.shardLen[s] < 2 {
			return 0, false, evals
		}
		b := k.shardStart[s]
		si := int32(1)
		if k.shardLen[s] > 2 && k.bidLess(k.shardHeap[b+2], k.shardHeap[b+1]) {
			si = 2
		}
		runner := k.shardHeap[b+si]
		if !k.stale[runner] {
			// Fresh top and runner: every other entry's cached value (an
			// upper bound on its true value) is <= the runner's by the heap
			// property.
			return k.bidVal[runner], true, evals
		}
		evals += k.refresh(s, si)
	}
}

// settle produces the round outcome: the exact winner under the mechanism
// order and, under second-price, the exact second-best report. Phase one
// settles every shard's top (on the pool when enough agents went stale);
// phase two is the serial tournament over shard tops; phase three settles
// the winning shard's runner-up and reduces the global second-best.
func (k *kernel) settle(valuations *int64) (winner int32, value int64, second int64, ok bool) {
	if k.parallel && k.staleHint >= settleParallelThreshold {
		for s := 0; s < k.nsh; s++ {
			k.pl.Submit(k.settleTasks[s])
		}
		k.pl.Wait()
	} else {
		for s := 0; s < k.nsh; s++ {
			k.evals[s] = k.settleShardTop(s)
		}
	}
	for s := 0; s < k.nsh; s++ {
		*valuations += k.evals[s]
	}

	sw := -1
	winner = -1
	for s := 0; s < k.nsh; s++ {
		if k.shardLen[s] == 0 {
			continue
		}
		top := k.shardHeap[k.shardStart[s]]
		if winner < 0 || k.bidLess(top, winner) {
			winner, sw = top, s
		}
	}
	if sw < 0 {
		return 0, 0, 0, false
	}

	if k.payment == mechanism.FirstPrice {
		return winner, k.bidVal[winner], 0, true
	}

	shardSecond, has, evals := k.settleShardSecond(sw)
	*valuations += evals
	// The runner-up settle can promote an equal-valued lower id to the
	// winning shard's top; other shards' tops lost the tournament to the
	// *old* top, so they lose to the new one too (same value, smaller id).
	winner = k.shardHeap[k.shardStart[sw]]
	second = noBid
	if has {
		second = shardSecond
	}
	for s := 0; s < k.nsh; s++ {
		if s == sw || k.shardLen[s] == 0 {
			continue
		}
		if v := k.bidVal[k.shardHeap[k.shardStart[s]]]; v > second {
			second = v
		}
	}
	if second == noBid {
		second = 0 // a lone bidder is paid 0
	}
	return winner, k.bidVal[winner], second, true
}

// award records the win locally: the replica is now on the winner, capacity
// shrinks, the candidate retires, and the winner's cached bid goes stale.
// The winner is fresh post-settle, so its winning candidate is exactly its
// heap top.
func (k *kernel) award(winner int32) {
	k.residual[winner] -= k.ar.Sizes[k.candHeap[k.ar.Start[winner]]]
	k.candPopTop(winner)
	k.stale[winner] = true
}

// broadcast is the event-driven OMAX: only the placed object's demanders
// can have been affected, and of those only ones whose candidate for that
// object both still lives and actually got a closer replica. A demander's
// cached bid goes stale only when the broadcast touched the very object it
// was bidding on — every other cached bid remains an exact value or a valid
// upper bound, because benefits only fall.
func (k *kernel) broadcast(obj, server int32) {
	refs := k.p.DemandersOf(obj)
	k.staleHint = len(refs) + 1 // demanders plus the stale winner
	k.bcastCol = k.p.CostColumn(int(server))
	if k.parallel && len(refs) >= observeParallelThreshold {
		k.bcastObj, k.bcastServer, k.bcastRefs = obj, server, refs
		k.obsCursor.Store(0)
		for s := 0; s < k.nsh; s++ {
			k.pl.Submit(k.obsTasks[s])
		}
		k.pl.Wait()
		k.bcastRefs = nil
		return
	}
	k.observe(obj, server, refs)
}

// observeChunks is the pre-built pool task: grab guided chunks of the
// broadcast's demand refs until none remain. Each ref touches only its own
// server's arrays, so chunk assignment is free to be scheduling-dependent.
func (k *kernel) observeChunks() {
	refs := k.bcastRefs
	for {
		lo := k.obsCursor.Add(obsChunk) - obsChunk
		if lo >= int64(len(refs)) {
			return
		}
		hi := lo + obsChunk
		if hi > int64(len(refs)) {
			hi = int64(len(refs))
		}
		k.observe(k.bcastObj, k.bcastServer, refs[lo:hi])
	}
}

// observe applies the broadcast to one slice of demand refs.
func (k *kernel) observe(obj, server int32, refs []replication.DemandRef) {
	ar, col := k.ar, k.bcastCol
	for _, ref := range refs {
		i := ref.Server
		if i == server || k.dead[i] {
			continue
		}
		c := ar.Slot2Cand[ref.Cell]
		if c < 0 || k.pos[c] < 0 {
			continue // never qualified, or pruned/awarded since
		}
		var cost int32
		if col != nil {
			cost = col[i]
		} else {
			cost = k.p.Cost.At(int(i), int(server))
		}
		if cost >= ar.NNCosts[c] {
			continue // the new replica is no closer
		}
		ar.NNCosts[c] = cost
		// The heap key stays put as a stale upper bound; only a bid on the
		// placed object itself must be re-settled.
		if k.bidObj[i] == obj {
			k.stale[i] = true
		}
	}
}
