package agtram

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/faultnet"
	"repro/internal/mechanism"
	"repro/internal/pool"
	"repro/internal/replication"
)

// Valuation selects how agents price candidate replicas.
type Valuation int

const (
	// LocalCoR is the paper's semi-distributed valuation: each agent prices
	// objects from its own reads and the public write volume only (Eq. 5).
	LocalCoR Valuation = iota
	// ExactDelta is the ablation valuation: the exact global OTC change of
	// the placement, which a real agent could not compute locally (it needs
	// every other server's NN table). Used by the valuation ablation bench.
	ExactDelta
)

// String names the valuation rule.
func (v Valuation) String() string {
	if v == ExactDelta {
		return "exact-delta"
	}
	return "local-cor"
}

// Config tunes the mechanism. The zero value is the paper's configuration.
type Config struct {
	// Workers bounds the PARFOR fan-out; <= 0 selects GOMAXPROCS.
	Workers int
	// Payment selects the payment rule (default: the paper's second-price).
	Payment mechanism.PaymentRule
	// Valuation selects the pricing rule (default: the paper's local CoR).
	Valuation Valuation
	// MaxRounds caps the number of rounds; <= 0 means unbounded.
	MaxRounds int
	// OnRound, when non-nil, observes every allocation as the mechanism
	// makes it (synchronous and incremental engines). Useful for tracing
	// and live dashboards; must not block.
	OnRound func(Allocation)

	// The remaining fields configure the wire engines (SolveNetwork and
	// SolveTCP) only; the in-process engines have no link to fail.

	// RoundTimeout bounds each per-agent bid read and award write via
	// SetReadDeadline/SetWriteDeadline. An agent that misses a deadline is
	// evicted from the game. 0 means no deadline — a disconnected agent
	// still evicts promptly (its reads fail), but a live-and-silent agent
	// can stall the round.
	RoundTimeout time.Duration
	// HandshakeTimeout bounds SolveTCP's connect-and-identify phase;
	// agents that have not completed the hello by then are evicted before
	// the first round. 0 selects a 10s default.
	HandshakeTimeout time.Duration
	// Faults injects deterministic faults into the wire engines' links
	// (nil = none; the fault-free run is bit-identical to Solve).
	Faults *faultnet.Config
	// OnEvict, when non-nil, observes every eviction as it happens; must
	// not block.
	OnEvict func(Eviction)
	// OnListen, when non-nil, receives the listener address once SolveTCP
	// is accepting — the only way to learn an ephemeral port while the
	// solve is still running.
	OnListen func(net.Addr)
}

// defaultHandshakeTimeout bounds SolveTCP's identification phase when
// Config.HandshakeTimeout is zero: long enough for any loopback or LAN
// deployment, short enough that a dead peer cannot wedge the solve.
const defaultHandshakeTimeout = 10 * time.Second

// Eviction records one agent's removal from a distributed game: the
// mechanism timed the agent out or lost its connection and continued with
// the remaining bidders (the iterative auction is well-defined over any
// live subset — each round simply takes the best of the bids that arrived).
type Eviction struct {
	// Agent is the evicted server.
	Agent int
	// Round is the 1-based round during which the agent was evicted;
	// 0 means before the game started (dial failure or handshake timeout).
	Round int
	// Reason describes the fault, for diagnostics.
	Reason string
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Allocation is one mechanism decision: in round Round, object Object was
// replicated on server Server, which had reported Value and was paid
// Payment.
type Allocation struct {
	Round   int
	Object  int32
	Server  int32
	Value   int64
	Payment int64
}

// Result is the outcome of a run.
type Result struct {
	// Schema is the final replica placement (the mechanism's accounting of
	// every binary replicate decision).
	Schema *replication.Schema
	// Allocations lists every placement in round order.
	Allocations []Allocation
	// Payments accumulates the motivational payments per server (Axiom 5).
	Payments []int64
	// Rounds is the number of mechanism rounds executed (== len(Allocations)).
	Rounds int
	// Valuations counts CoR computations across all agents: the "heavy
	// processing" that stays on the servers. Solve charges one valuation
	// per candidate scanned per round; SolveIncremental charges one per
	// candidate actually re-priced, which is the same work in round one and
	// strictly less afterwards — the allocations and payments are identical
	// either way, only this counter differs.
	Valuations int64
	// Evictions lists every agent the wire engines removed from the game
	// (timeouts, broken connections, failed dials), in eviction order.
	// Always empty for the in-process engines and for fault-free runs.
	Evictions []Eviction
}

// Solve runs AGT-RAM with synchronous parallel rounds (Figure 2). Agents
// scan their candidate lists concurrently; the central mechanism then takes
// its single binary decision and broadcasts it.
//
// ctx is checked at the top of every round; on cancellation Solve returns
// ctx.Err() wrapped with the package name and the caller's Problem is left
// untouched (the mechanism works on a fresh schema).
func Solve(ctx context.Context, p *replication.Problem, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("agtram: nil problem")
	}
	schema := p.NewSchema()
	res := &Result{Schema: schema, Payments: make([]int64, p.M)}

	agents := make([]*agentState, 0, p.M)
	for i := 0; i < p.M; i++ {
		a := newAgentState(p, i)
		if a.active() {
			agents = append(agents, a)
		}
	}

	workers := pool.New(cfg.workers())
	defer workers.Close()
	bids := make([]mechanism.Bid, 0, len(agents))
	bidSlots := make([]mechanism.Bid, len(agents))
	hasBid := make([]bool, len(agents))

	for cfg.MaxRounds <= 0 || res.Rounds < cfg.MaxRounds {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("agtram: %w", err)
		}
		if len(agents) == 0 {
			break
		}
		// PARFOR: every agent computes its dominant valuation.
		scanAgents(agents, bidSlots, hasBid, workers, cfg.Valuation, schema, &res.Valuations)

		bids = bids[:0]
		for idx := range agents {
			if hasBid[idx] {
				bids = append(bids, bidSlots[idx])
			}
		}
		round, ok := mechanism.RunRound(bids, cfg.Payment)
		if !ok {
			break
		}
		winner := round.Winner
		if err := schema.CanPlace(winner.Item, winner.Agent); err != nil {
			// Cannot happen with consistent agent state; treat as corruption.
			return nil, fmt.Errorf("agtram: winning bid infeasible: %w", err)
		}
		if _, err := schema.PlaceReplica(winner.Item, winner.Agent); err != nil {
			return nil, err
		}
		alloc := Allocation{
			Round: res.Rounds, Object: winner.Item, Server: int32(winner.Agent),
			Value: winner.Value, Payment: round.Payment,
		}
		res.Allocations = append(res.Allocations, alloc)
		res.Payments[winner.Agent] += round.Payment
		res.Rounds++
		if cfg.OnRound != nil {
			cfg.OnRound(alloc)
		}

		// BROADCAST OMAX: all agents refresh NN state; the winner also
		// consumes capacity and retires the candidate.
		live := agents[:0]
		for _, a := range agents {
			if a.id == winner.Agent {
				a.won(winner.Item)
			} else {
				a.observe(winner.Item, p.Cost.At(a.id, winner.Agent))
			}
			if a.active() {
				live = append(live, a)
			}
		}
		// bidSlots/hasBid keep their full length; only the first
		// len(agents) entries are meaningful and scanAgents rewrites all of
		// them each round, so no compaction of the buffers is needed.
		agents = live
	}
	return res, nil
}

// serialScanThreshold is the candidate-count below which a round's scan
// runs inline: dispatching goroutines for a few thousand O(1) valuations
// costs more than the scan itself.
const serialScanThreshold = 16384

// scanAgents runs the per-agent candidate scans, fanning out over the
// worker pool only when the round carries enough work to amortize the
// dispatch.
func scanAgents(agents []*agentState, bidSlots []mechanism.Bid, hasBid []bool,
	workers *pool.Pool, val Valuation, schema *replication.Schema, valuations *int64) {

	scanOne := func(idx int) int64 {
		a := agents[idx]
		n := int64(len(a.cands))
		var obj int32
		var v int64
		var ok bool
		if val == ExactDelta {
			obj, v, ok = bestExact(a, schema)
		} else {
			obj, v, ok = a.best()
		}
		hasBid[idx] = ok
		if ok {
			bidSlots[idx] = mechanism.Bid{Agent: a.id, Item: obj, Value: v}
		}
		return n
	}

	var total int64
	for _, a := range agents {
		total += int64(len(a.cands))
	}
	// ExactDelta valuations are much heavier per candidate (they read the
	// shared schema), so they amortize the pool dispatch at a far smaller
	// round size than the O(1) local pricings.
	threshold := int64(serialScanThreshold)
	if val == ExactDelta {
		threshold = 65
	}
	if workers.Workers() == 1 || total < threshold {
		for idx := range agents {
			*valuations += scanOne(idx)
		}
		return
	}
	var counted int64
	workers.Batch(len(agents), func(lo, hi int) {
		var n int64
		for idx := lo; idx < hi; idx++ {
			n += scanOne(idx)
		}
		atomic.AddInt64(&counted, n)
	})
	*valuations += counted
}

// bestExact prices the agent's candidates with the exact global OTC delta
// (read-only against the shared schema; the round barrier orders these
// reads before the mechanism's single writer applies the placement).
func bestExact(a *agentState, schema *replication.Schema) (int32, int64, bool) {
	out := a.cands[:0]
	var bestVal int64
	var bestObj int32
	found := false
	for _, c := range a.cands {
		if c.size > a.residual {
			continue
		}
		v := -schema.DeltaIfPlaced(c.object, a.id)
		if v <= 0 {
			continue
		}
		out = append(out, c)
		if !found || v > bestVal || (v == bestVal && c.object < bestObj) {
			bestVal, bestObj, found = v, c.object, true
		}
	}
	a.cands = out
	return bestObj, bestVal, found
}
