package online

import (
	"fmt"
	"sort"

	"repro/internal/replication"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Kind discriminates workload deltas. The taxonomy covers everything that
// drifts in a running system: demand frequencies, the object catalogue, and
// the server population.
type Kind string

// The five delta kinds.
const (
	// KindDemand adjusts one (server, object) cell's read/write frequencies
	// by a signed amount; the result is clamped at zero.
	KindDemand Kind = "demand"
	// KindAddObject appends a new object to the catalogue (size, primary);
	// it starts with no demand and no replicas beyond the primary copy.
	KindAddObject Kind = "add-object"
	// KindRemoveObject retires an object: all demand for it is dropped and
	// surplus replicas dissolve at the next re-pricing. The primary copy
	// stays — Section 2's "cannot be de-allocated" — and the id is never
	// reused.
	KindRemoveObject Kind = "remove-object"
	// KindServerJoin activates a server with the given capacity. The server
	// id must be the next unused id (growing the system, if the cost oracle
	// covers it) or a previously departed one rejoining.
	KindServerJoin Kind = "server-join"
	// KindServerLeave removes a server from the system, PR 3's eviction
	// semantics applied to the controller: its demand is dropped, its
	// capacity collapses to its primary load (primaries are never lost), and
	// its surplus replicas dissolve at the next re-pricing.
	KindServerLeave Kind = "server-leave"
)

// Delta is one workload mutation. Which fields apply depends on Kind; the
// zero values of inapplicable fields are ignored.
type Delta struct {
	Kind   Kind  `json:"kind"`
	Server int   `json:"server,omitempty"`
	Object int32 `json:"object,omitempty"`
	// Reads and Writes are signed frequency adjustments (KindDemand).
	Reads  int64 `json:"reads,omitempty"`
	Writes int64 `json:"writes,omitempty"`
	// Size and Primary describe a new object (KindAddObject).
	Size    int64 `json:"size,omitempty"`
	Primary int   `json:"primary,omitempty"`
	// Capacity is the joining server's storage (KindServerJoin).
	Capacity int64 `json:"capacity,omitempty"`
}

// state is the controller's mutable materialization source: the demand
// matrices, catalogue and server population that deltas mutate. A state is
// only ever touched under the controller's mutex; materialize derives the
// immutable Problem the read path serves from.
type state struct {
	cost     replication.CostFn
	capacity []int64 // declared capacity per server, len M
	active   []bool  // server participates, len M
	sizes    []int64 // o_k, len N (retired objects keep their size)
	primary  []int32 // P_k, len N
	retired  []bool  // object retired, len N
	demand   []map[int32]*demandCell
}

type demandCell struct{ reads, writes int64 }

// newState seeds the mutable state from an initial workload and capacities.
func newState(cost replication.CostFn, w *workload.Workload, capacity []int64) (*state, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if cost.N() < w.M {
		return nil, fmt.Errorf("online: cost oracle covers %d servers, workload needs %d", cost.N(), w.M)
	}
	if len(capacity) != w.M {
		return nil, fmt.Errorf("online: capacity has %d entries, want %d", len(capacity), w.M)
	}
	st := &state{
		cost:     cost,
		capacity: append([]int64(nil), capacity...),
		active:   make([]bool, w.M),
		sizes:    append([]int64(nil), w.ObjectSize...),
		primary:  append([]int32(nil), w.Primary...),
		retired:  make([]bool, w.N),
		demand:   make([]map[int32]*demandCell, w.M),
	}
	for i := range st.active {
		st.active[i] = true
	}
	for i, ds := range w.PerServer {
		st.demand[i] = make(map[int32]*demandCell, len(ds))
		for _, d := range ds {
			st.demand[i][d.Object] = &demandCell{reads: d.Reads, writes: d.Writes}
		}
	}
	return st, nil
}

func (st *state) servers() int { return len(st.capacity) }
func (st *state) objects() int { return len(st.sizes) }

// clone deep-copies the state so a delta batch can be validated and applied
// atomically: any error discards the clone and the live state is untouched.
func (st *state) clone() *state {
	c := &state{
		cost:     st.cost,
		capacity: append([]int64(nil), st.capacity...),
		active:   append([]bool(nil), st.active...),
		sizes:    append([]int64(nil), st.sizes...),
		primary:  append([]int32(nil), st.primary...),
		retired:  append([]bool(nil), st.retired...),
		demand:   make([]map[int32]*demandCell, len(st.demand)),
	}
	for i, cells := range st.demand {
		c.demand[i] = make(map[int32]*demandCell, len(cells))
		for k, cell := range cells {
			cp := *cell
			c.demand[i][k] = &cp
		}
	}
	return c
}

// primaryLoad is Σ_{k: P_k = i} o_k for server i (retired objects included:
// their primary copy still occupies storage).
func (st *state) primaryLoad(i int) int64 {
	var load int64
	for k, p := range st.primary {
		if int(p) == i {
			load += st.sizes[k]
		}
	}
	return load
}

// apply mutates the state with one delta, validating it first.
func (st *state) apply(d Delta) error {
	switch d.Kind {
	case KindDemand:
		if d.Server < 0 || d.Server >= st.servers() {
			return fmt.Errorf("online: demand delta for server %d outside [0,%d)", d.Server, st.servers())
		}
		if !st.active[d.Server] {
			return fmt.Errorf("online: demand delta for departed server %d", d.Server)
		}
		if d.Object < 0 || int(d.Object) >= st.objects() {
			return fmt.Errorf("online: demand delta for object %d outside [0,%d)", d.Object, st.objects())
		}
		if st.retired[d.Object] {
			return fmt.Errorf("online: demand delta for retired object %d", d.Object)
		}
		cell := st.demand[d.Server][d.Object]
		if cell == nil {
			cell = &demandCell{}
			st.demand[d.Server][d.Object] = cell
		}
		cell.reads += d.Reads
		cell.writes += d.Writes
		if cell.reads < 0 {
			cell.reads = 0
		}
		if cell.writes < 0 {
			cell.writes = 0
		}
		if cell.reads == 0 && cell.writes == 0 {
			delete(st.demand[d.Server], d.Object)
		}
		return nil

	case KindAddObject:
		if d.Size < 1 {
			return fmt.Errorf("online: add-object needs size >= 1, got %d", d.Size)
		}
		if d.Primary < 0 || d.Primary >= st.servers() || !st.active[d.Primary] {
			return fmt.Errorf("online: add-object primary %d is not an active server", d.Primary)
		}
		st.sizes = append(st.sizes, d.Size)
		st.primary = append(st.primary, int32(d.Primary))
		st.retired = append(st.retired, false)
		return nil

	case KindRemoveObject:
		if d.Object < 0 || int(d.Object) >= st.objects() {
			return fmt.Errorf("online: remove-object %d outside [0,%d)", d.Object, st.objects())
		}
		if st.retired[d.Object] {
			return fmt.Errorf("online: object %d already retired", d.Object)
		}
		st.retired[d.Object] = true
		for i := range st.demand {
			delete(st.demand[i], d.Object)
		}
		return nil

	case KindServerJoin:
		if d.Capacity < 0 {
			return fmt.Errorf("online: server-join needs capacity >= 0, got %d", d.Capacity)
		}
		switch {
		case d.Server >= 0 && d.Server < st.servers():
			if st.active[d.Server] {
				return fmt.Errorf("online: server %d is already active", d.Server)
			}
			st.active[d.Server] = true
			st.capacity[d.Server] = d.Capacity
		case d.Server == st.servers():
			if st.cost.N() <= d.Server {
				return fmt.Errorf("online: cost oracle covers %d servers, cannot grow to %d", st.cost.N(), d.Server+1)
			}
			st.capacity = append(st.capacity, d.Capacity)
			st.active = append(st.active, true)
			st.demand = append(st.demand, map[int32]*demandCell{})
		default:
			return fmt.Errorf("online: server-join id %d is neither an existing server nor the next id %d", d.Server, st.servers())
		}
		return nil

	case KindServerLeave:
		if d.Server < 0 || d.Server >= st.servers() {
			return fmt.Errorf("online: server-leave %d outside [0,%d)", d.Server, st.servers())
		}
		if !st.active[d.Server] {
			return fmt.Errorf("online: server %d already departed", d.Server)
		}
		st.active[d.Server] = false
		st.demand[d.Server] = map[int32]*demandCell{}
		return nil

	default:
		return fmt.Errorf("online: unknown delta kind %q", d.Kind)
	}
}

// materialize derives the immutable DRP instance of the current state.
// Departed servers contribute no demand and get exactly their primary load
// as capacity (they keep primaries, attract no new replicas); active
// servers' capacities are clamped up to their primary load so the instance
// stays feasible when objects were added onto a tight server.
func (st *state) materialize() (*replication.Problem, error) {
	m, n := st.servers(), st.objects()
	w := workload.New(m, n)
	w.ObjectSize = append([]int64(nil), st.sizes...)
	w.Primary = append([]int32(nil), st.primary...)
	for i, cells := range st.demand {
		if !st.active[i] {
			continue
		}
		for k, cell := range cells {
			w.PerServer[i] = append(w.PerServer[i], workload.Demand{
				Object: k, Reads: cell.reads, Writes: cell.writes,
			})
		}
	}
	w.Finalize()
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("online: materialized workload invalid: %w", err)
	}
	caps := make([]int64, m)
	for i := range caps {
		pl := st.primaryLoad(i)
		if !st.active[i] {
			caps[i] = pl
			continue
		}
		caps[i] = st.capacity[i]
		if caps[i] < pl {
			caps[i] = pl
		}
	}
	return replication.NewProblem(st.cost, w, caps)
}

// DeltasFromEvents aggregates trace events into demand deltas: one delta
// per touched (server, object) cell, reads and writes counted. cm maps
// trace clients onto servers; a nil map sends client c to server c mod
// servers — the daemon's convention for raw trace streams. The result is
// sorted (server, then object) so delta application is deterministic.
func DeltasFromEvents(events []trace.Event, cm workload.ClientMap, servers int) ([]Delta, error) {
	if servers <= 0 {
		return nil, fmt.Errorf("online: DeltasFromEvents needs servers > 0, got %d", servers)
	}
	type key struct {
		server int
		object int32
	}
	acc := make(map[key]*demandCell)
	for _, e := range events {
		var srv int
		if cm == nil {
			srv = int(e.Client) % servers
			if srv < 0 {
				srv += servers
			}
		} else {
			if int(e.Client) >= len(cm) || e.Client < 0 {
				return nil, fmt.Errorf("online: client map covers %d clients, event references %d", len(cm), e.Client)
			}
			srv = int(cm[e.Client])
		}
		kk := key{server: srv, object: e.Object}
		cell := acc[kk]
		if cell == nil {
			cell = &demandCell{}
			acc[kk] = cell
		}
		if e.Write {
			cell.writes++
		} else {
			cell.reads++
		}
	}
	out := make([]Delta, 0, len(acc))
	for kk, cell := range acc {
		out = append(out, Delta{
			Kind: KindDemand, Server: kk.server, Object: kk.object,
			Reads: cell.reads, Writes: cell.writes,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Server != out[b].Server {
			return out[a].Server < out[b].Server
		}
		return out[a].Object < out[b].Object
	})
	return out, nil
}
